package search_test

// Contract tests over the exported API: the Score-then-DocID tie-break
// (pinned against both the new evaluator and the frozen searchref
// baseline over a hand-crafted corpus of identical documents), query
// expansion semantics, and the service parameter surface through the
// HTTP facade.

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/lexicon"
	"repro/internal/search"
	"repro/internal/search/searchref"
	"repro/internal/service"
	"repro/internal/webcorpus"
)

// tieCorpus builds a corpus of n docs with identical bodies and titles
// (identical term profiles → identical scores) plus one strictly better
// doc at the given position, alternating kinds so the NewsOnly leg has
// ties too.
func tieCorpus(n, bestAt int) *webcorpus.Corpus {
	docs := make([]webcorpus.Document, n)
	for i := range docs {
		// The last third of the corpus omits "alpha" so its document
		// frequency stays below n (TF-IDF idf would otherwise collapse to
		// zero and tie everything).
		body := "alpha beta gamma delta market"
		if i >= n-n/3 {
			body = "beta gamma delta market"
		}
		if i == bestAt {
			body = "alpha alpha alpha beta gamma delta market"
		}
		kind := "news"
		if i%2 == 1 {
			kind = "blog"
		}
		docs[i] = webcorpus.Document{
			ID:        fmt.Sprintf("doc-%06d", i),
			URL:       fmt.Sprintf("http://web.local/docs/doc-%06d", i),
			Title:     "epsilon zeta",
			Body:      body,
			Kind:      kind,
			Published: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Hour),
		}
	}
	return &webcorpus.Corpus{Docs: docs}
}

// TestSearchTieBreakContract pins the ordering contract: score
// descending, ties broken by DocID ascending — identical across both
// evaluators, both scorers, any Limit, and with NewsOnly.
func TestSearchTieBreakContract(t *testing.T) {
	c := tieCorpus(12, 7)
	idx := search.BuildIndex(c)
	ref := searchref.BuildIndex(c)
	params := []struct {
		name string
		new  search.Params
		ref  searchref.Params
	}{
		{"bm25", search.Params{Scoring: search.BM25, TitleBoost: 1}, searchref.Params{Scoring: searchref.BM25, TitleBoost: 1}},
		{"tfidf", search.Params{Scoring: search.TFIDF, TitleBoost: 1}, searchref.Params{Scoring: searchref.TFIDF, TitleBoost: 1}},
	}
	for _, p := range params {
		for _, limit := range []int{1, 3, 5, 12, 50} {
			for _, news := range []bool{false, true} {
				label := fmt.Sprintf("%s limit=%d news=%v", p.name, limit, news)
				got := idx.Search("alpha market", p.new, search.Options{Limit: limit, NewsOnly: news})
				want := ref.Search("alpha market", p.ref, searchref.Options{Limit: limit, NewsOnly: news})
				if len(got) != len(want) {
					t.Fatalf("%s: %d vs %d results", label, len(got), len(want))
				}
				for i := range got {
					if got[i].DocID != want[i].DocID {
						t.Fatalf("%s: rank %d: %s vs reference %s", label, i, got[i].DocID, want[i].DocID)
					}
				}
				// The contract itself, not just baseline agreement: the
				// strictly-better doc first, then tied docs by ascending ID.
				if !news && limit >= 12 {
					if got[0].DocID != "doc-000007" {
						t.Fatalf("%s: best doc ranked %s first", label, got[0].DocID)
					}
					for i := 2; i < len(got); i++ {
						if got[i-1].Score == got[i].Score && got[i-1].DocID >= got[i].DocID {
							t.Fatalf("%s: tie at rank %d not broken by ascending DocID: %s then %s",
								label, i, got[i-1].DocID, got[i].DocID)
						}
					}
				}
			}
		}
	}
}

func expansionIndex(t *testing.T) (*search.Index, *webcorpus.Corpus) {
	t.Helper()
	c := webcorpus.Generate(webcorpus.Config{Seed: 42, NumDocs: 500})
	return search.BuildIndex(c, search.WithExpansion(lexicon.PMIConfig{})), c
}

// TestSearchExpansionChangesRanking verifies expansion is live and
// useful: an alias query with expansion on retrieves documents the
// literal query cannot see, and those documents really do carry only the
// alias's synonyms.
func TestSearchExpansionChangesRanking(t *testing.T) {
	idx, c := expansionIndex(t)
	p := search.Params{Scoring: search.BM25, TitleBoost: 2, ExpandWeight: 0.5, ExpandTerms: 4}
	plain, _ := idx.SearchStats("usa", p, search.Options{Limit: 200})
	expanded, stats := idx.SearchStats("usa", p, search.Options{Limit: 200, Expand: true})
	if stats.Expanded == 0 {
		t.Fatal("expansion added no terms for an alias query")
	}
	seen := make(map[string]bool, len(plain))
	for _, r := range plain {
		seen[r.DocID] = true
	}
	gained := 0
	for _, r := range expanded {
		if seen[r.DocID] {
			continue
		}
		gained++
		d, ok := c.ByID(r.DocID)
		if !ok {
			t.Fatalf("expanded hit %s not in corpus", r.DocID)
		}
		text := strings.ToLower(d.Body + " " + d.Title)
		if strings.Contains(text, "usa") {
			t.Errorf("doc %s contains the literal query term yet only the expanded query found it", r.DocID)
		}
	}
	if gained == 0 {
		t.Error("expanded query retrieved no documents beyond the literal query")
	}
}

// TestSearchExpansionWeightIsTunable pins that ExpandWeight actually
// scales expansion-term contributions: a doc reachable only through
// expansion scores proportionally higher under a heavier weight, so
// differently tuned profiles rank it differently.
func TestSearchExpansionWeightIsTunable(t *testing.T) {
	idx, _ := expansionIndex(t)
	light := search.Params{Scoring: search.BM25, ExpandWeight: 0.1, ExpandTerms: 4}
	heavy := search.Params{Scoring: search.BM25, ExpandWeight: 0.9, ExpandTerms: 4}
	opts := search.Options{Limit: 300, Expand: true}
	plain := idx.Search("usa", search.Params{Scoring: search.BM25}, search.Options{Limit: 300})
	literal := make(map[string]bool, len(plain))
	for _, r := range plain {
		literal[r.DocID] = true
	}
	lightRes := idx.Search("usa", light, opts)
	heavyRes := idx.Search("usa", heavy, opts)
	lightScore := make(map[string]float64, len(lightRes))
	for _, r := range lightRes {
		lightScore[r.DocID] = r.Score
	}
	checked := 0
	for _, r := range heavyRes {
		if literal[r.DocID] {
			continue // has a full-weight literal match; ratio not clean
		}
		if ls, ok := lightScore[r.DocID]; ok && ls > 0 {
			checked++
			if r.Score <= ls {
				t.Errorf("doc %s: heavy weight scored %v, light %v — expansion weight not scaling", r.DocID, r.Score, ls)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no expansion-only docs to compare across weights")
	}
}

// TestSearchExpansionOffMatchesBaseline: building with WithExpansion must
// not perturb default ranking — with Options.Expand unset the index
// agrees exactly with the frozen baseline.
func TestSearchExpansionOffMatchesBaseline(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 42, NumDocs: 300})
	idx := search.BuildIndex(c, search.WithExpansion(lexicon.PMIConfig{}))
	ref := searchref.BuildIndex(c)
	for _, q := range []string{"usa", "acme market", "germany trade policy"} {
		got := idx.Search(q, search.TuningG, search.Options{Limit: 25})
		want := ref.Search(q, searchref.Params{Scoring: searchref.BM25, K1: 1.2, B: 0.75, TitleBoost: 2}, searchref.Options{Limit: 25})
		if len(got) != len(want) {
			t.Fatalf("q=%q: %d vs %d results", q, len(got), len(want))
		}
		for i := range got {
			if got[i].DocID != want[i].DocID {
				t.Fatalf("q=%q rank %d: %s vs %s", q, i, got[i].DocID, want[i].DocID)
			}
		}
	}
}

// TestServiceParamsThroughHTTPFacade drives the engine service through
// Handler + HTTPClient and asserts both the happy paths of the new
// offset/expand params and that ErrBadRequest wrapping survives the HTTP
// round-trip for every malformed input.
func TestServiceParamsThroughHTTPFacade(t *testing.T) {
	idx, _ := expansionIndex(t)
	e := search.NewEngine("search-y", idx, search.TuningY)
	srv := httptest.NewServer(service.Handler(e.Service(service.Info{Name: "search-y", Category: "search"})))
	defer srv.Close()
	client := service.NewHTTPClient(service.Info{Name: "search-y", Category: "search"}, srv.URL, 5*time.Second)
	ctx := context.Background()

	t.Run("offset windows the ranking", func(t *testing.T) {
		full, err := client.Invoke(ctx, service.Request{Query: "market", Params: map[string]string{"limit": "10"}})
		if err != nil {
			t.Fatal(err)
		}
		page, err := client.Invoke(ctx, service.Request{Query: "market", Params: map[string]string{"limit": "5", "offset": "5"}})
		if err != nil {
			t.Fatal(err)
		}
		fr, err := search.DecodeResults(full)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := search.DecodeResults(page)
		if err != nil {
			t.Fatal(err)
		}
		if len(fr.Results) != 10 || len(pr.Results) != 5 {
			t.Fatalf("got %d full and %d paged results", len(fr.Results), len(pr.Results))
		}
		for i := range pr.Results {
			if pr.Results[i].DocID != fr.Results[5+i].DocID {
				t.Fatalf("page rank %d is %s, window has %s", i, pr.Results[i].DocID, fr.Results[5+i].DocID)
			}
		}
	})

	t.Run("expand param broadens results", func(t *testing.T) {
		plain, err := client.Invoke(ctx, service.Request{Query: "usa", Params: map[string]string{"limit": "200"}})
		if err != nil {
			t.Fatal(err)
		}
		wide, err := client.Invoke(ctx, service.Request{Query: "usa", Params: map[string]string{"limit": "200", "expand": "true"}})
		if err != nil {
			t.Fatal(err)
		}
		pr, _ := search.DecodeResults(plain)
		wr, _ := search.DecodeResults(wide)
		if len(wr.Results) <= len(pr.Results) {
			t.Errorf("expand=true returned %d results, plain %d — expansion had no effect", len(wr.Results), len(pr.Results))
		}
	})

	t.Run("news param filters kinds", func(t *testing.T) {
		resp, err := client.Invoke(ctx, service.Request{Query: "market", Params: map[string]string{"news": "true", "limit": "50"}})
		if err != nil {
			t.Fatal(err)
		}
		rr, _ := search.DecodeResults(resp)
		if len(rr.Results) == 0 {
			t.Fatal("no news results")
		}
		for _, r := range rr.Results {
			if r.Kind != "news" {
				t.Errorf("non-news result %s (%s)", r.DocID, r.Kind)
			}
		}
	})

	bad := []struct {
		name string
		req  service.Request
	}{
		{"malformed op", service.Request{Op: "frobnicate", Query: "x"}},
		{"empty query", service.Request{Op: "search"}},
		{"non-numeric limit", service.Request{Query: "x", Params: map[string]string{"limit": "ten"}}},
		{"negative limit", service.Request{Query: "x", Params: map[string]string{"limit": "-1"}}},
		{"non-numeric offset", service.Request{Query: "x", Params: map[string]string{"offset": "2.5"}}},
		{"negative offset", service.Request{Query: "x", Params: map[string]string{"offset": "-3"}}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := client.Invoke(ctx, tc.req)
			if !errors.Is(err, service.ErrBadRequest) {
				t.Errorf("error %v does not wrap service.ErrBadRequest after the HTTP round-trip", err)
			}
		})
	}
}
