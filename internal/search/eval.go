package search

import (
	"math"
	"sort"
)

// This file is the top-k evaluator: a document-at-a-time MaxScore
// traversal with block-max refinement (WAND-family pruning). Query terms
// are sorted by their score upper bound; once the heap of k results is
// full, the prefix of terms whose combined upper bound cannot beat the
// k-th best score becomes "non-essential" — documents appearing only in
// those lists can never enter the heap, so the candidate scan walks only
// the essential lists and probes non-essential ones per candidate,
// abandoning a candidate (or skipping a whole posting block) as soon as
// its remaining upper bound falls below the threshold. With expansion
// off the results are exactly the searchref baseline's: same document
// set, same Score-then-DocID tie-break order.

// scorer precomputes one query's scoring profile. The score expressions
// are kept token-for-token identical to the seed engine's (searchref) so
// pruning decisions bound the very same floats the baseline computes.
// TitleBoost is assumed non-negative and B in [0, 1]; the stock tunings
// and the service layer never produce anything else.
type scorer struct {
	idx        *Index
	bm25       bool
	k1, b      float64
	titleBoost float64
}

func newScorer(idx *Index, p Params) scorer {
	k1, b := p.K1, p.B
	if k1 == 0 {
		k1 = 1.2
	}
	if b == 0 {
		b = 0.75
	}
	return scorer{idx: idx, bm25: p.Scoring == BM25, k1: k1, b: b, titleBoost: p.TitleBoost}
}

// idf for a term with document frequency df; always >= 0 (BM25's form is
// strictly positive, TF-IDF's reaches 0 when a term is in every doc).
func (s scorer) idf(df int) float64 {
	n := float64(len(s.idx.docs))
	if s.bm25 {
		return math.Log(1 + (n-float64(df)+0.5)/(float64(df)+0.5))
	}
	return math.Log((n + 1) / (float64(df) + 1))
}

// score returns one posting's contribution (idf applied, query weight
// not) and whether the posting matches at all (combined frequency > 0 —
// a title-only posting under TitleBoost 0 does not match, mirroring the
// seed's "tf == 0 → skip" rule).
func (s scorer) score(idf float64, p posting, dl uint32) (float64, bool) {
	t := float64(p.tf()) + s.titleBoost*float64(p.tit())
	if t == 0 {
		return 0, false
	}
	if s.bm25 {
		norm := t + s.k1*(1-s.b+s.b*float64(dl)/s.idx.avgLen)
		return idf * t * (s.k1 + 1) / norm, true
	}
	return idf * (1 + math.Log(t)), true
}

// bound returns the largest contribution any posting with tf <= maxTf,
// tit <= maxTit, and docLen >= minLen can produce: the score expression
// is monotone increasing in the combined frequency and (for BM25, with
// b >= 0) decreasing in document length, so evaluating it at the
// extremes bounds the block.
func (s scorer) bound(idf float64, maxTf, maxTit uint16, minLen uint32) float64 {
	t := float64(maxTf) + s.titleBoost*float64(maxTit)
	if t <= 0 {
		return 0
	}
	if s.bm25 {
		norm := t + s.k1*(1-s.b+s.b*float64(minLen)/s.idx.avgLen)
		return idf * t * (s.k1 + 1) / norm
	}
	return idf * (1 + math.Log(t))
}

// cursor walks one query term's posting list.
type cursor struct {
	tp     *termPostings
	idf    float64
	weight float64 // query-side weight (1 original, scaled for expansions)
	ub     float64 // list-wide upper bound × weight, clamped at 0
	pos    int
	blk    int
}

// seekBlock advances the block pointer to the first block whose last
// document is >= doc, pulling pos forward to the block start when blocks
// are skipped (never backward).
func (c *cursor) seekBlock(doc uint32) {
	if b := c.pos / blockSize; b > c.blk {
		c.blk = b
	}
	for c.blk < len(c.tp.blocks) && c.tp.blocks[c.blk].lastDoc < doc {
		c.blk++
	}
	if start := c.blk * blockSize; c.pos < start {
		c.pos = start
	}
}

// find binary-searches the current block for doc, leaving pos just past
// doc on a hit and at the first larger posting on a miss. seekBlock must
// have been called with the same doc first.
func (c *cursor) find(doc uint32) (posting, bool) {
	end := (c.blk + 1) * blockSize
	if end > len(c.tp.posts) {
		end = len(c.tp.posts)
	}
	lo, hi := c.pos, end
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.tp.posts[mid].doc < doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c.pos = lo
	if lo < end && c.tp.posts[lo].doc == doc {
		p := c.tp.posts[lo]
		c.pos++
		return p, true
	}
	return posting{}, false
}

// heapEntry is one top-k candidate. The heap is a min-heap whose root is
// the current worst entry: lowest score, ties broken by largest doc —
// documents are generated with IDs whose string order follows their
// index order (up to a million docs), so the later of two tied documents
// is the one the Score-then-DocID contract evicts first. Because the
// scan visits documents in increasing order, a later candidate that ties
// the root can never displace it, which is exactly the baseline's
// stable-sort behavior.
type heapEntry struct {
	score float64
	doc   uint32
}

// worse reports whether a should sit below b in the min-heap.
func worse(a, b heapEntry) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.doc > b.doc
}

func heapPush(h []heapEntry, e heapEntry) []heapEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// heapReplaceRoot overwrites the root and sifts it down.
func heapReplaceRoot(h []heapEntry, e heapEntry) {
	h[0] = e
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && worse(h[l], h[small]) {
			small = l
		}
		if r < len(h) && worse(h[r], h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// slack relaxes a threshold comparison by ~1e-12 relative so that
// floating-point rounding in upper-bound sums can never prune a document
// the exhaustive baseline would keep: a candidate is abandoned only when
// its bound is clearly below the threshold, and exact ties (which lose
// the DocID tie-break anyway) cost at most a wasted probe.
func slack(theta float64) float64 {
	return theta - (math.Abs(theta)+1)*1e-12
}

// evaluate runs the block-max MaxScore top-k scan.
func (idx *Index) evaluate(qterms []qterm, p Params, opts Options, stats *Stats) []Result {
	sc := newScorer(idx, p)
	cursors := make([]cursor, 0, len(qterms))
	for _, q := range qterms {
		tp := &idx.terms[q.id]
		if len(tp.posts) == 0 {
			continue
		}
		if float64(tp.maxTf)+sc.titleBoost*float64(tp.maxTit) <= 0 {
			// No posting in this list can match (title-only occurrences
			// under TitleBoost 0): the whole term is skipped.
			continue
		}
		ub := q.weight * sc.bound(sc.idf(len(tp.posts)), tp.maxTf, tp.maxTit, tp.minLen)
		if ub < 0 {
			ub = 0 // a negative contribution is never better than absence
		}
		cursors = append(cursors, cursor{tp: tp, idf: sc.idf(len(tp.posts)), weight: q.weight, ub: ub})
	}
	if len(cursors) == 0 {
		return []Result{}
	}
	stats.Terms = len(cursors)
	// Ascending upper bound; stable so equal bounds keep the sorted-term
	// query order and evaluation stays deterministic.
	sort.SliceStable(cursors, func(i, j int) bool { return cursors[i].ub < cursors[j].ub })
	prefix := make([]float64, len(cursors))
	sum := 0.0
	for i := range cursors {
		sum += cursors[i].ub
		prefix[i] = sum
	}

	k := opts.Limit + opts.Offset
	topk := make([]heapEntry, 0, k)
	theta := math.Inf(-1)
	full := false
	nonEss := 0
	contrib := make([]float64, len(cursors))
	has := make([]bool, len(cursors))

	for {
		if full {
			// Terms whose cumulative upper bound cannot beat the
			// threshold become non-essential; when every term is, no
			// unseen document can enter the heap.
			for nonEss < len(cursors) && prefix[nonEss] < slack(theta) {
				nonEss++
			}
			if nonEss == len(cursors) {
				break
			}
		}
		// Next candidate: smallest current doc among essential lists.
		doc := ^uint32(0)
		for i := nonEss; i < len(cursors); i++ {
			c := &cursors[i]
			if c.pos < len(c.tp.posts) && c.tp.posts[c.pos].doc < doc {
				doc = c.tp.posts[c.pos].doc
			}
		}
		if doc == ^uint32(0) {
			break
		}
		stats.Candidates++
		if opts.NewsOnly && !idx.isNews(doc) {
			// Kind filtering at score time: never score a document that
			// cannot be returned.
			for i := nonEss; i < len(cursors); i++ {
				c := &cursors[i]
				if c.pos < len(c.tp.posts) && c.tp.posts[c.pos].doc == doc {
					c.pos++
				}
			}
			continue
		}
		for i := range contrib {
			contrib[i], has[i] = 0, false
		}
		matched := false
		run := 0.0 // running partial for bound checks only
		for i := nonEss; i < len(cursors); i++ {
			c := &cursors[i]
			if c.pos < len(c.tp.posts) && c.tp.posts[c.pos].doc == doc {
				s, m := sc.score(c.idf, c.tp.posts[c.pos], idx.docLen[doc])
				s *= c.weight
				c.pos++
				contrib[i], has[i] = s, m
				if m {
					matched = true
					run += s
				}
			}
		}
		abandoned := false
		for j := nonEss - 1; j >= 0; j-- {
			if full && run+prefix[j] < slack(theta) {
				abandoned = true
				break
			}
			c := &cursors[j]
			c.seekBlock(doc)
			if c.blk >= len(c.tp.blocks) {
				continue // list exhausted; no contribution possible
			}
			below := 0.0
			if j > 0 {
				below = prefix[j-1]
			}
			if full {
				blk := &c.tp.blocks[c.blk]
				bb := c.weight * sc.bound(c.idf, blk.maxTf, blk.maxTit, blk.minLen)
				if bb < 0 {
					bb = 0
				}
				if run+bb+below < slack(theta) {
					// Even this block's best posting plus every
					// lower-bound term cannot lift the doc over the
					// threshold: skip the block probe and the doc.
					stats.BlockSkips++
					abandoned = true
					break
				}
			}
			stats.BlockScans++
			if p, found := c.find(doc); found {
				s, m := sc.score(c.idf, p, idx.docLen[doc])
				s *= c.weight
				contrib[j], has[j] = s, m
				if m {
					matched = true
					run += s
				}
			}
		}
		if abandoned {
			stats.Pruned++
			continue
		}
		if !matched {
			continue
		}
		// Canonical sum: always in ascending-upper-bound cursor order,
		// independent of where the essential boundary sat when this doc
		// was scored, so structurally tied documents sum identically and
		// tie exactly — as they do in the baseline's single-pass scan.
		score := 0.0
		for i := range cursors {
			if has[i] {
				score += contrib[i]
			}
		}
		stats.Scored++
		if !full {
			topk = heapPush(topk, heapEntry{score, doc})
			if len(topk) == k {
				full = true
				theta = topk[0].score
			}
		} else if score > topk[0].score {
			heapReplaceRoot(topk, heapEntry{score, doc})
			theta = topk[0].score
		}
	}

	sort.Slice(topk, func(i, j int) bool {
		if topk[i].score != topk[j].score {
			return topk[i].score > topk[j].score
		}
		return topk[i].doc < topk[j].doc
	})
	if opts.Offset >= len(topk) {
		return []Result{}
	}
	topk = topk[opts.Offset:]
	out := make([]Result, 0, len(topk))
	for _, e := range topk {
		d := idx.docs[e.doc]
		out = append(out, Result{
			DocID:     d.ID,
			URL:       d.URL,
			Title:     d.Title,
			Kind:      d.Kind,
			Score:     e.score,
			Published: d.Published.Format("2006-01-02T15:04:05Z07:00"),
		})
	}
	return out
}
