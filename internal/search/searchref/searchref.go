// Package searchref is the seed-era search engine, frozen verbatim at the
// point the dictionary-coded block-max engine replaced it (the same
// pattern as internal/rdf/rdfref): string-keyed postings, a full scan of
// every matching posting list, a score map over all candidate docs, and a
// final sort. It serves two purposes:
//
//   - randomized equivalence oracle: the pruned top-k evaluator in
//     internal/search must return exactly this engine's results (same doc
//     set, same Score-then-DocID tie-break order) with expansion disabled
//     (internal/search/oracle_test.go, FuzzSearchQuery);
//   - perf baseline: experiment E18 and TestSearchShape measure the new
//     engine's near-flat query latency against this engine's linear
//     corpus-size growth.
//
// Do not "fix" or optimize this package; it is the reference being
// compared against. Known seed quirks are preserved deliberately — in
// particular the dead stopword-only fallback in Search (the raw-field
// fallback looks up terms the index never stores, so an all-stopword
// query always returns zero hits), which the new engine turns into a
// documented early return with identical observable behavior.
package searchref

import (
	"math"
	"sort"
	"strings"

	"repro/internal/lexicon"
	"repro/internal/nlu"
	"repro/internal/webcorpus"
)

// posting records one document containing a term.
type posting struct {
	doc int // index into docs
	tf  int // term frequency in the body
	tit int // term frequency in the title
}

// Index is an immutable inverted index over a corpus. Build once, search
// concurrently.
type Index struct {
	docs     []webcorpus.Document
	postings map[string][]posting
	docLen   []int
	avgLen   float64
	stop     map[string]bool
}

// BuildIndex indexes every document in the corpus.
func BuildIndex(c *webcorpus.Corpus) *Index {
	idx := &Index{
		docs:     c.Docs,
		postings: make(map[string][]posting),
		docLen:   make([]int, len(c.Docs)),
		stop:     lexicon.StopwordSet(),
	}
	var totalLen int
	for i, d := range c.Docs {
		bodyCounts := termCounts(d.Body, idx.stop)
		titleCounts := termCounts(d.Title, idx.stop)
		length := 0
		for _, n := range bodyCounts {
			length += n
		}
		idx.docLen[i] = length
		totalLen += length
		terms := make(map[string]posting)
		for t, n := range bodyCounts {
			p := terms[t]
			p.doc = i
			p.tf = n
			terms[t] = p
		}
		for t, n := range titleCounts {
			p := terms[t]
			p.doc = i
			p.tit = n
			terms[t] = p
		}
		for t, p := range terms {
			idx.postings[t] = append(idx.postings[t], p)
		}
	}
	if len(c.Docs) > 0 {
		idx.avgLen = float64(totalLen) / float64(len(c.Docs))
	}
	return idx
}

func termCounts(text string, stop map[string]bool) map[string]int {
	counts := make(map[string]int)
	for _, tok := range nlu.Tokenize(text) {
		if len(tok.Lower) < 2 || stop[tok.Lower] {
			continue
		}
		counts[tok.Lower]++
	}
	return counts
}

// Result is one search hit.
type Result struct {
	DocID     string  `json:"docId"`
	URL       string  `json:"url"`
	Title     string  `json:"title"`
	Kind      string  `json:"kind"`
	Score     float64 `json:"score"`
	Published string  `json:"published"`
}

// Options controls one search.
type Options struct {
	// Limit bounds the result count. 0 means 10.
	Limit int
	// NewsOnly restricts hits to documents of kind "news".
	NewsOnly bool
}

// Scoring selects the ranking function.
type Scoring int

// Scoring functions.
const (
	TFIDF Scoring = iota + 1
	BM25
)

// Params tunes scoring.
type Params struct {
	Scoring    Scoring
	K1         float64 // BM25 term-frequency saturation (typical 1.2)
	B          float64 // BM25 length normalization (typical 0.75)
	TitleBoost float64 // extra weight for title matches
}

// Search runs a ranked query against the index.
func (idx *Index) Search(query string, p Params, opts Options) []Result {
	if opts.Limit <= 0 {
		opts.Limit = 10
	}
	qterms := termCounts(query, idx.stop)
	if len(qterms) == 0 {
		// Fall back to raw lower-cased terms: the query may consist of
		// stopwords or short tokens only.
		for _, f := range strings.Fields(strings.ToLower(query)) {
			qterms[f]++
		}
	}
	scores := make(map[int]float64)
	n := float64(len(idx.docs))
	for term := range qterms {
		plist := idx.postings[term]
		if len(plist) == 0 {
			continue
		}
		df := float64(len(plist))
		var idf float64
		switch p.Scoring {
		case BM25:
			idf = math.Log(1 + (n-df+0.5)/(df+0.5))
		default:
			idf = math.Log((n + 1) / (df + 1))
		}
		for _, post := range plist {
			tf := float64(post.tf) + p.TitleBoost*float64(post.tit)
			if tf == 0 {
				continue
			}
			var s float64
			switch p.Scoring {
			case BM25:
				k1, b := p.K1, p.B
				if k1 == 0 {
					k1 = 1.2
				}
				if b == 0 {
					b = 0.75
				}
				norm := tf + k1*(1-b+b*float64(idx.docLen[post.doc])/idx.avgLen)
				s = idf * tf * (k1 + 1) / norm
			default:
				s = idf * (1 + math.Log(tf))
			}
			scores[post.doc] += s
		}
	}
	out := make([]Result, 0, len(scores))
	for doc, score := range scores {
		d := idx.docs[doc]
		if opts.NewsOnly && d.Kind != "news" {
			continue
		}
		out = append(out, Result{
			DocID:     d.ID,
			URL:       d.URL,
			Title:     d.Title,
			Kind:      d.Kind,
			Score:     score,
			Published: d.Published.Format("2006-01-02T15:04:05Z07:00"),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DocID < out[j].DocID
	})
	if len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	return out
}
