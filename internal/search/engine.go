package search

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/service"
)

// Engine is one search-engine profile over a shared index. Distinct tunings
// produce distinct rankings, giving the SDK genuinely different services to
// choose among (the paper lets users pick Google, Bing, or Yahoo).
type Engine struct {
	name   string
	index  *Index
	params Params
}

// Stock engine tunings. The expansion fields only apply to searches that
// opt in (Options.Expand against an index built WithExpansion); they make
// the profiles diverge on how aggressively they broaden a query as well
// as on how they score it.
var (
	// TuningG approximates a modern BM25 web ranker with title boost and
	// moderate query expansion.
	TuningG = Params{Scoring: BM25, K1: 1.2, B: 0.75, TitleBoost: 2, ExpandWeight: 0.35, ExpandTerms: 3}
	// TuningB is a TF-IDF ranker with mild title boost and conservative
	// expansion.
	TuningB = Params{Scoring: TFIDF, TitleBoost: 1.5, ExpandWeight: 0.2, ExpandTerms: 2}
	// TuningY is BM25 with heavier saturation, no title boost, and the
	// broadest expansion.
	TuningY = Params{Scoring: BM25, K1: 2.0, B: 0.5, ExpandWeight: 0.5, ExpandTerms: 4}
)

// NewEngine returns a named engine over idx with the given tuning.
func NewEngine(name string, idx *Index, params Params) *Engine {
	return &Engine{name: name, index: idx, params: params}
}

// Name returns the engine name.
func (e *Engine) Name() string { return e.name }

// Search runs a query with this engine's tuning.
func (e *Engine) Search(query string, opts Options) []Result {
	return e.index.Search(query, e.params, opts)
}

// Results is the JSON body returned by the search service.
type Results struct {
	Engine  string   `json:"engine"`
	Query   string   `json:"query"`
	Results []Result `json:"results"`
}

// DecodeResults parses a search service response.
func DecodeResults(resp service.Response) (Results, error) {
	var r Results
	if err := json.Unmarshal(resp.Body, &r); err != nil {
		return Results{}, fmt.Errorf("search: decode results: %w", err)
	}
	return r, nil
}

// Service wraps the engine as a service.Service understanding op "search"
// with Query set; Params may carry "limit" (int), "offset" (int), "news"
// ("true"), and "expand" ("true").
func (e *Engine) Service(info service.Info) service.Service {
	return service.Func{
		Meta: info,
		Fn: func(_ context.Context, req service.Request) (service.Response, error) {
			if req.Op != "search" && req.Op != "" {
				return service.Response{}, fmt.Errorf("search: unsupported op %q: %w", req.Op, service.ErrBadRequest)
			}
			if req.Query == "" {
				return service.Response{}, fmt.Errorf("search: empty query: %w", service.ErrBadRequest)
			}
			var opts Options
			if v := req.Params["limit"]; v != "" {
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return service.Response{}, fmt.Errorf("search: bad limit %q: %w", v, service.ErrBadRequest)
				}
				opts.Limit = n
			}
			if v := req.Params["offset"]; v != "" {
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return service.Response{}, fmt.Errorf("search: bad offset %q: %w", v, service.ErrBadRequest)
				}
				opts.Offset = n
			}
			if req.Params["news"] == "true" {
				opts.NewsOnly = true
			}
			if req.Params["expand"] == "true" {
				opts.Expand = true
			}
			body, err := json.Marshal(Results{
				Engine:  e.name,
				Query:   req.Query,
				Results: e.Search(req.Query, opts),
			})
			if err != nil {
				return service.Response{}, fmt.Errorf("search: encode results: %w", err)
			}
			return service.Response{Body: body, ContentType: "application/json"}, nil
		},
	}
}
