package search

import (
	"fmt"
	"testing"

	"repro/internal/lexicon"
	"repro/internal/search/searchref"
	"repro/internal/webcorpus"
)

func benchIndex(b *testing.B) *Index {
	b.Helper()
	return BuildIndex(webcorpus.Generate(webcorpus.Config{Seed: 4, NumDocs: 1000}))
}

func BenchmarkBuildIndex1k(b *testing.B) {
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 4, NumDocs: 1000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx := BuildIndex(corpus); idx == nil {
			b.Fatal("nil index")
		}
	}
}

func BenchmarkSearchBM25(b *testing.B) {
	idx := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := idx.Search("market technology growth investment", TuningG, Options{Limit: 10}); len(got) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkSearchTFIDF(b *testing.B) {
	idx := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := idx.Search("market technology growth investment", TuningB, Options{Limit: 10}); len(got) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkSearchNewsOnly(b *testing.B) {
	idx := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := idx.Search("market", TuningG, Options{Limit: 10, NewsOnly: true}); len(got) == 0 {
			b.Fatal("no results")
		}
	}
}

// Baseline-vs-pruned benchmarks: the same query against the frozen seed
// engine (full scan + sort) and the block-max evaluator at growing corpus
// sizes. Run via `make bench-search`.

func benchCorpus(n int) *webcorpus.Corpus {
	return webcorpus.Generate(webcorpus.Config{Seed: 4, NumDocs: n})
}

const benchQuery = "market technology growth investment"

func benchSizes(b *testing.B, run func(b *testing.B, c *webcorpus.Corpus)) {
	for _, n := range []int{1000, 10000, 50000} {
		n := n
		b.Run(fmt.Sprintf("docs=%d", n), func(b *testing.B) {
			run(b, benchCorpus(n))
		})
	}
}

func BenchmarkSearchBaseline(b *testing.B) {
	benchSizes(b, func(b *testing.B, c *webcorpus.Corpus) {
		idx := searchref.BuildIndex(c)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := idx.Search(benchQuery, searchref.Params{Scoring: searchref.BM25, K1: 1.2, B: 0.75, TitleBoost: 2}, searchref.Options{Limit: 10}); len(got) == 0 {
				b.Fatal("no results")
			}
		}
	})
}

func BenchmarkSearchPruned(b *testing.B) {
	benchSizes(b, func(b *testing.B, c *webcorpus.Corpus) {
		idx := BuildIndex(c)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := idx.Search(benchQuery, TuningG, Options{Limit: 10}); len(got) == 0 {
				b.Fatal("no results")
			}
		}
	})
}

func BenchmarkSearchExpanded(b *testing.B) {
	benchSizes(b, func(b *testing.B, c *webcorpus.Corpus) {
		idx := BuildIndex(c, WithExpansion(lexicon.PMIConfig{}))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := idx.Search(benchQuery, TuningG, Options{Limit: 10, Expand: true}); len(got) == 0 {
				b.Fatal("no results")
			}
		}
	})
}
