package search

import (
	"testing"

	"repro/internal/webcorpus"
)

func benchIndex(b *testing.B) *Index {
	b.Helper()
	return BuildIndex(webcorpus.Generate(webcorpus.Config{Seed: 4, NumDocs: 1000}))
}

func BenchmarkBuildIndex1k(b *testing.B) {
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 4, NumDocs: 1000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx := BuildIndex(corpus); idx == nil {
			b.Fatal("nil index")
		}
	}
}

func BenchmarkSearchBM25(b *testing.B) {
	idx := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := idx.Search("market technology growth investment", TuningG, Options{Limit: 10}); len(got) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkSearchTFIDF(b *testing.B) {
	idx := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := idx.Search("market technology growth investment", TuningB, Options{Limit: 10}); len(got) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkSearchNewsOnly(b *testing.B) {
	idx := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := idx.Search("market", TuningG, Options{Limit: 10, NewsOnly: true}); len(got) == 0 {
			b.Fatal("no results")
		}
	}
}
