package search_test

// Equivalence oracle: the block-max top-k evaluator is exercised against
// the frozen seed engine (internal/search/searchref) over randomized
// corpora, query shapes, tunings, limits, and the news restriction. With
// expansion off the two must agree exactly — same document sequence, same
// Score-then-DocID tie-break order — which proves the pruning lossless.
// Scores are compared with a small relative tolerance: the engines
// accumulate per-term contributions in different orders, so last-ulp
// differences are expected while ranking differences are not.

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/search"
	"repro/internal/search/searchref"
	"repro/internal/webcorpus"
)

// oracleParams covers the stock tunings plus stress shapes: explicit
// defaults, no title boost, a fractional boost (title-only TF-IDF
// contributions go negative below 1/e), and extreme BM25 constants.
var oracleParams = []struct {
	name string
	new  search.Params
	ref  searchref.Params
}{
	{"tuningG", search.TuningG, searchref.Params{Scoring: searchref.BM25, K1: 1.2, B: 0.75, TitleBoost: 2}},
	{"tuningB", search.TuningB, searchref.Params{Scoring: searchref.TFIDF, TitleBoost: 1.5}},
	{"tuningY", search.TuningY, searchref.Params{Scoring: searchref.BM25, K1: 2.0, B: 0.5}},
	{"bm25-noboost", search.Params{Scoring: search.BM25}, searchref.Params{Scoring: searchref.BM25}},
	{"tfidf-fractional-boost", search.Params{Scoring: search.TFIDF, TitleBoost: 0.2}, searchref.Params{Scoring: searchref.TFIDF, TitleBoost: 0.2}},
	{"tfidf-noboost", search.Params{Scoring: search.TFIDF}, searchref.Params{Scoring: searchref.TFIDF}},
	{"bm25-saturated", search.Params{Scoring: search.BM25, K1: 0.4, B: 1, TitleBoost: 3}, searchref.Params{Scoring: searchref.BM25, K1: 0.4, B: 1, TitleBoost: 3}},
}

// oracleQuery samples a query from the corpus vocabulary: words drawn
// from random documents (so most terms match something), occasionally
// polluted with stopwords, short tokens, and unknown terms.
func oracleQuery(rng *rand.Rand, c *webcorpus.Corpus) string {
	d := c.Docs[rng.Intn(len(c.Docs))]
	words := strings.Fields(d.Body + " " + d.Title)
	n := 1 + rng.Intn(4)
	var parts []string
	for i := 0; i < n; i++ {
		parts = append(parts, words[rng.Intn(len(words))])
	}
	switch rng.Intn(6) {
	case 0:
		parts = append(parts, "the", "of")
	case 1:
		parts = append(parts, "zzzunknownterm")
	case 2:
		parts = append(parts, parts[0]) // duplicate term
	}
	return strings.Join(parts, " ")
}

func compareResults(t *testing.T, label string, got []search.Result, want []searchref.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, reference %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].DocID != want[i].DocID {
			t.Fatalf("%s: rank %d: got %s (%.9f), reference %s (%.9f)",
				label, i, got[i].DocID, got[i].Score, want[i].DocID, want[i].Score)
		}
		diff := math.Abs(got[i].Score - want[i].Score)
		if diff > 1e-9*(math.Abs(want[i].Score)+1) {
			t.Fatalf("%s: rank %d (%s): score %v, reference %v",
				label, i, got[i].DocID, got[i].Score, want[i].Score)
		}
		if got[i].URL != want[i].URL || got[i].Title != want[i].Title ||
			got[i].Kind != want[i].Kind || got[i].Published != want[i].Published {
			t.Fatalf("%s: rank %d (%s): result fields diverge from reference",
				label, i, got[i].DocID)
		}
	}
}

func TestSearchOracle(t *testing.T) {
	sizes := []int{40, 300, 1500}
	for _, size := range sizes {
		size := size
		t.Run(fmt.Sprintf("docs=%d", size), func(t *testing.T) {
			t.Parallel()
			corpus := webcorpus.Generate(webcorpus.Config{Seed: int64(size), NumDocs: size})
			idx := search.BuildIndex(corpus)
			ref := searchref.BuildIndex(corpus)
			rng := rand.New(rand.NewSource(int64(size) * 7))
			limits := []int{0, 1, 3, 10, 50, size + 10}
			for q := 0; q < 60; q++ {
				query := oracleQuery(rng, corpus)
				pi := rng.Intn(len(oracleParams))
				limit := limits[rng.Intn(len(limits))]
				news := rng.Intn(3) == 0
				label := fmt.Sprintf("q=%q params=%s limit=%d news=%v",
					query, oracleParams[pi].name, limit, news)
				got := idx.Search(query, oracleParams[pi].new,
					search.Options{Limit: limit, NewsOnly: news})
				want := ref.Search(query, oracleParams[pi].ref,
					searchref.Options{Limit: limit, NewsOnly: news})
				compareResults(t, label, got, want)
			}
		})
	}
}

// TestSearchOffsetIsSuffix pins the pagination contract: page o of size l
// is exactly the window [o, o+l) of the unpaginated ranking.
func TestSearchOffsetIsSuffix(t *testing.T) {
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 5, NumDocs: 400})
	idx := search.BuildIndex(corpus)
	rng := rand.New(rand.NewSource(11))
	for q := 0; q < 40; q++ {
		query := oracleQuery(rng, corpus)
		limit := 1 + rng.Intn(8)
		offset := rng.Intn(30)
		full := idx.Search(query, search.TuningG, search.Options{Limit: limit + offset})
		page := idx.Search(query, search.TuningG, search.Options{Limit: limit, Offset: offset})
		want := full
		if offset < len(full) {
			want = full[offset:]
		} else {
			want = nil
		}
		if len(page) != len(want) {
			t.Fatalf("q=%q limit=%d offset=%d: page has %d results, window has %d",
				query, limit, offset, len(page), len(want))
		}
		for i := range page {
			if page[i] != want[i] {
				t.Fatalf("q=%q limit=%d offset=%d rank %d: page %+v != window %+v",
					query, limit, offset, i, page[i], want[i])
			}
		}
	}
}

// TestSearchStopwordOnlyQuery is the regression test for the seed's dead
// fallback: a query of nothing but stopwords and single characters can
// never match (such tokens are stripped at indexing time), and both
// engines return an empty, non-nil result.
func TestSearchStopwordOnlyQuery(t *testing.T) {
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 3, NumDocs: 50})
	idx := search.BuildIndex(corpus)
	ref := searchref.BuildIndex(corpus)
	for _, query := range []string{"the", "of the and", "a b c", "  ", "to be or not to be"} {
		got := idx.Search(query, search.TuningG, search.Options{})
		if got == nil || len(got) != 0 {
			t.Errorf("Search(%q) = %v, want empty non-nil result", query, got)
		}
		if want := ref.Search(query, searchref.Params{Scoring: searchref.BM25, K1: 1.2, B: 0.75, TitleBoost: 2}, searchref.Options{}); len(want) != 0 {
			t.Errorf("reference engine unexpectedly returned %d hits for %q", len(want), query)
		}
	}
}
