package search

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/service"
	"repro/internal/webcorpus"
)

func testIndex(t *testing.T) (*Index, *webcorpus.Corpus) {
	t.Helper()
	c := webcorpus.Generate(webcorpus.Config{Seed: 21, NumDocs: 150})
	return BuildIndex(c), c
}

func TestSearchFindsRelevantDocs(t *testing.T) {
	idx, c := testIndex(t)
	// Search for a company known to appear in the corpus.
	results := idx.Search("Acme Corporation", TuningG, Options{Limit: 10})
	if len(results) == 0 {
		t.Fatal("no results for Acme Corporation")
	}
	// Top hit should actually mention the company.
	top, ok := c.ByID(results[0].DocID)
	if !ok {
		t.Fatalf("result doc %s not in corpus", results[0].DocID)
	}
	if !strings.Contains(strings.ToLower(top.Body+" "+top.Title), "acme") {
		t.Errorf("top hit does not mention acme: %s", top.Body)
	}
}

func TestSearchScoresDescending(t *testing.T) {
	idx, _ := testIndex(t)
	results := idx.Search("market growth technology", TuningG, Options{Limit: 50})
	for i := 1; i < len(results); i++ {
		if results[i-1].Score < results[i].Score {
			t.Fatalf("scores not descending at %d: %v then %v", i, results[i-1].Score, results[i].Score)
		}
	}
}

func TestSearchLimit(t *testing.T) {
	idx, _ := testIndex(t)
	results := idx.Search("market", TuningG, Options{Limit: 3})
	if len(results) > 3 {
		t.Errorf("got %d results, want <= 3", len(results))
	}
	// Default limit.
	results = idx.Search("market", TuningG, Options{})
	if len(results) > 10 {
		t.Errorf("default limit: got %d results, want <= 10", len(results))
	}
}

func TestSearchNewsOnly(t *testing.T) {
	idx, _ := testIndex(t)
	results := idx.Search("market", TuningG, Options{Limit: 50, NewsOnly: true})
	if len(results) == 0 {
		t.Fatal("no news results")
	}
	for _, r := range results {
		if r.Kind != "news" {
			t.Errorf("non-news result %s (%s) with NewsOnly", r.DocID, r.Kind)
		}
	}
}

func TestSearchNoResults(t *testing.T) {
	idx, _ := testIndex(t)
	if results := idx.Search("xylophonic quuxification", TuningG, Options{}); len(results) != 0 {
		t.Errorf("nonsense query returned %d results", len(results))
	}
}

func TestSearchDeterministic(t *testing.T) {
	idx, _ := testIndex(t)
	a := idx.Search("trade agreement", TuningG, Options{Limit: 10})
	b := idx.Search("trade agreement", TuningG, Options{Limit: 10})
	if len(a) != len(b) {
		t.Fatal("result counts differ")
	}
	for i := range a {
		if a[i].DocID != b[i].DocID {
			t.Fatal("result order unstable")
		}
	}
}

func TestEngineTuningsDisagree(t *testing.T) {
	idx, _ := testIndex(t)
	g := NewEngine("search-g", idx, TuningG)
	y := NewEngine("search-y", idx, TuningY)
	query := "technology market investment growth"
	rg := g.Search(query, Options{Limit: 10})
	ry := y.Search(query, Options{Limit: 10})
	if len(rg) == 0 || len(ry) == 0 {
		t.Fatal("empty results")
	}
	same := true
	for i := range rg {
		if i >= len(ry) || rg[i].DocID != ry[i].DocID {
			same = false
			break
		}
	}
	if same {
		t.Error("different tunings produced identical rankings — engines are not distinct")
	}
}

func TestServiceAdapterSearch(t *testing.T) {
	idx, _ := testIndex(t)
	e := NewEngine("search-g", idx, TuningG)
	svc := e.Service(service.Info{Name: "search-g", Category: "search"})
	resp, err := svc.Invoke(context.Background(), service.Request{
		Op:     "search",
		Query:  "Germany trade",
		Params: map[string]string{"limit": "5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodeResults(resp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "search-g" || res.Query != "Germany trade" {
		t.Errorf("results meta = %+v", res)
	}
	if len(res.Results) == 0 || len(res.Results) > 5 {
		t.Errorf("got %d results", len(res.Results))
	}
	for _, r := range res.Results {
		if r.URL == "" || r.DocID == "" {
			t.Errorf("incomplete result %+v", r)
		}
	}
}

func TestServiceAdapterNewsParam(t *testing.T) {
	idx, _ := testIndex(t)
	svc := NewEngine("s", idx, TuningG).Service(service.Info{Name: "s", Category: "search"})
	resp, err := svc.Invoke(context.Background(), service.Request{
		Query:  "market",
		Params: map[string]string{"news": "true", "limit": "50"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodeResults(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Results {
		if r.Kind != "news" {
			t.Errorf("non-news result with news=true: %+v", r)
		}
	}
}

func TestServiceAdapterErrors(t *testing.T) {
	idx, _ := testIndex(t)
	svc := NewEngine("s", idx, TuningG).Service(service.Info{Name: "s", Category: "search"})
	if _, err := svc.Invoke(context.Background(), service.Request{Op: "search"}); !errors.Is(err, service.ErrBadRequest) {
		t.Errorf("empty query error = %v", err)
	}
	if _, err := svc.Invoke(context.Background(), service.Request{Op: "frobnicate", Query: "x"}); !errors.Is(err, service.ErrBadRequest) {
		t.Errorf("bad op error = %v", err)
	}
	if _, err := svc.Invoke(context.Background(), service.Request{Query: "x", Params: map[string]string{"limit": "-2"}}); !errors.Is(err, service.ErrBadRequest) {
		t.Errorf("bad limit error = %v", err)
	}
}

func TestBM25PrefersShorterDocsAtEqualTF(t *testing.T) {
	// Construct a tiny corpus by hand via the generator? Simpler: verify
	// BM25 length normalization moves rankings relative to TF-IDF.
	idx, _ := testIndex(t)
	q := "committee schedule"
	bm := idx.Search(q, Params{Scoring: BM25, K1: 1.2, B: 0.9}, Options{Limit: 20})
	tf := idx.Search(q, Params{Scoring: TFIDF}, Options{Limit: 20})
	if len(bm) == 0 || len(tf) == 0 {
		t.Skip("query too sparse in this corpus")
	}
	// Both must return valid rankings; identical or not, scores must be
	// positive and finite.
	for _, r := range append(bm, tf...) {
		if r.Score <= 0 {
			t.Errorf("non-positive score %v", r.Score)
		}
	}
}

func TestEmptyIndex(t *testing.T) {
	idx := BuildIndex(webcorpus.Generate(webcorpus.Config{Seed: 1, NumDocs: 1}))
	if got := idx.Search("anything at all", TuningG, Options{}); got == nil {
		_ = got // empty or nil both fine; must not panic
	}
}
