package search

import (
	"testing"

	"repro/internal/lexicon"
	"repro/internal/metrics"
	"repro/internal/webcorpus"
)

func TestWithMetricsRecordsQueries(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 21, NumDocs: 150})
	set := metrics.NewSet()
	idx := BuildIndex(c, WithExpansion(lexicon.PMIConfig{}), WithMetrics(set))

	queries := []string{"market growth technology", "Acme Corporation", "energy policy"}
	var wantScans, wantSkips, wantPruned, wantExpanded int
	for _, q := range queries {
		_, stats := idx.SearchStats(q, TuningG, Options{Limit: 10, Expand: true})
		wantScans += stats.BlockScans
		wantSkips += stats.BlockSkips
		wantPruned += stats.Pruned
		wantExpanded += stats.Expanded
	}

	// Set lookups are idempotent: re-asking by name+labels returns the
	// instruments BuildIndex registered.
	hist := set.Histogram("richsdk_search_query_seconds", "")
	if got := hist.Snapshot().Count; got != uint64(len(queries)) {
		t.Errorf("query histogram count = %d, want %d", got, len(queries))
	}
	scanned := set.Counter("richsdk_search_blocks_total", "", metrics.Label{Name: "outcome", Value: "scanned"})
	skipped := set.Counter("richsdk_search_blocks_total", "", metrics.Label{Name: "outcome", Value: "skipped"})
	if got := scanned.Value(); got != uint64(wantScans) {
		t.Errorf("scanned counter = %d, want %d", got, wantScans)
	}
	if got := skipped.Value(); got != uint64(wantSkips) {
		t.Errorf("skipped counter = %d, want %d", got, wantSkips)
	}
	if wantScans == 0 {
		t.Error("expected at least one probed block across the query batch")
	}
	if got := set.Counter("richsdk_search_pruned_candidates_total", "").Value(); got != uint64(wantPruned) {
		t.Errorf("pruned counter = %d, want %d", got, wantPruned)
	}
	if got := set.Counter("richsdk_search_expansion_terms_total", "").Value(); got != uint64(wantExpanded) {
		t.Errorf("expansion counter = %d, want %d", got, wantExpanded)
	}
	gauge := set.Gauge("richsdk_intern_dict_size", "", metrics.Label{Name: "dict", Value: "search"})
	if got := gauge.Value(); got != int64(idx.dict.Len()) {
		t.Errorf("dict gauge = %d, want %d", got, idx.dict.Len())
	}
}

func TestWithMetricsEmptyQueryStillObserved(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 21, NumDocs: 40})
	set := metrics.NewSet()
	idx := BuildIndex(c, WithMetrics(set))
	// A query with no indexable terms takes the early return; its latency
	// must still land in the histogram so count == queries issued.
	idx.Search("!!! ???", TuningG, Options{})
	if got := set.Histogram("richsdk_search_query_seconds", "").Snapshot().Count; got != 1 {
		t.Errorf("histogram count after no-term query = %d, want 1", got)
	}
}

func TestUninstrumentedIndexHasNoObs(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 21, NumDocs: 40})
	idx := BuildIndex(c)
	if idx.obs != nil {
		t.Fatal("index built without WithMetrics has obs set")
	}
	// And a nil set behaves like omitting the option.
	idx = BuildIndex(c, WithMetrics(nil))
	if idx.obs != nil {
		t.Fatal("WithMetrics(nil) attached instruments")
	}
	idx.Search("market", TuningG, Options{})
}
