package search_test

// FuzzSearchQuery drives both search engines — the block-max top-k
// evaluator and the frozen seed baseline — with arbitrary query strings
// and knob settings (go test -fuzz=FuzzSearchQuery ./internal/search).
// Neither may panic, and with expansion off they must agree exactly:
// same document sequence, same tie-break order, near-identical scores.

import (
	"math"
	"sync"
	"testing"

	"repro/internal/search"
	"repro/internal/search/searchref"
	"repro/internal/webcorpus"
)

var fuzzIndexes = sync.OnceValues(func() (*search.Index, *searchref.Index) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 99, NumDocs: 250})
	return search.BuildIndex(c), searchref.BuildIndex(c)
})

func FuzzSearchQuery(f *testing.F) {
	f.Add("acme market", uint8(10), false, false)
	f.Add("the of and", uint8(0), true, false)
	f.Add("germany trade policy usa", uint8(3), false, true)
	f.Add("MARKET Market market", uint8(1), true, true)
	f.Add("zzz unknown terms only", uint8(50), false, false)
	f.Add("a b c d e f", uint8(255), true, true)
	f.Add("committee,schedule—conference", uint8(7), false, true)
	f.Fuzz(func(t *testing.T, query string, limit uint8, news, tfidf bool) {
		idx, ref := fuzzIndexes()
		np := search.Params{Scoring: search.BM25, TitleBoost: 2}
		rp := searchref.Params{Scoring: searchref.BM25, TitleBoost: 2}
		if tfidf {
			np = search.Params{Scoring: search.TFIDF, TitleBoost: 0.3}
			rp = searchref.Params{Scoring: searchref.TFIDF, TitleBoost: 0.3}
		}
		got := idx.Search(query, np, search.Options{Limit: int(limit), NewsOnly: news})
		want := ref.Search(query, rp, searchref.Options{Limit: int(limit), NewsOnly: news})
		if len(got) != len(want) {
			t.Fatalf("q=%q limit=%d news=%v tfidf=%v: %d results, reference %d",
				query, limit, news, tfidf, len(got), len(want))
		}
		for i := range got {
			if got[i].DocID != want[i].DocID {
				t.Fatalf("q=%q limit=%d news=%v tfidf=%v rank %d: %s, reference %s",
					query, limit, news, tfidf, i, got[i].DocID, want[i].DocID)
			}
			if d := math.Abs(got[i].Score - want[i].Score); d > 1e-9*(math.Abs(want[i].Score)+1) {
				t.Fatalf("q=%q rank %d: score %v, reference %v", query, i, got[i].Score, want[i].Score)
			}
		}
	})
}
