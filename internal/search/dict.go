package search

// termDict is the search index's symbol table, the same design as
// internal/rdf/dict.go: each distinct term is assigned a dense uint32 ID
// on first sight, after which postings, query compilation, and the
// evaluator handle IDs only — term bytes are touched once at the index
// boundary, never inside the scoring loop.
//
// The dictionary is immutable after BuildIndex returns, so concurrent
// searches need no synchronization.
type termDict struct {
	ids   map[string]uint32
	terms []string
}

func newTermDict() *termDict {
	return &termDict{ids: make(map[string]uint32)}
}

// intern returns t's ID, assigning the next free one on first sight.
func (d *termDict) intern(t string) uint32 {
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := uint32(len(d.terms))
	d.ids[t] = id
	d.terms = append(d.terms, t)
	return id
}

// lookup returns t's ID without assigning one. A miss means no document
// contains t.
func (d *termDict) lookup(t string) (uint32, bool) {
	id, ok := d.ids[t]
	return id, ok
}

// len returns the number of distinct terms.
func (d *termDict) len() int { return len(d.terms) }
