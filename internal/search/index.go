// Package search implements the web-search substrate: an inverted index
// over the synthetic web corpus with TF-IDF and BM25 ranking, several
// differently tuned engine profiles standing in for Google, Bing, and
// Yahoo, and a news-only restriction (paper §2.2: "searches can also be
// restricted to news stories"). Engines expose the uniform service
// interface so the SDK can rank them, fail over between them, and cache
// their results.
//
// The index is dictionary-coded: terms are interned to dense uint32 IDs
// (through the shared internal/intern symbol table, frozen once the
// build finishes) and postings are compact per-term
// slices of {docID, packed tf/tit} sorted by document, carved into
// fixed-size blocks carrying score upper-bound metadata (max body/title
// frequency, min document length). Queries run through a block-max
// MaxScore top-k evaluator (eval.go) that skips terms and blocks whose
// upper bound cannot beat the current k-th best score, so query latency
// stays near-flat as the corpus grows. The seed-era full-scan engine is
// frozen in internal/search/searchref as the equivalence oracle and perf
// baseline.
package search

import (
	"sort"
	"time"

	"repro/internal/intern"
	"repro/internal/lexicon"
	"repro/internal/metrics"
	"repro/internal/nlu"
	"repro/internal/webcorpus"
)

// blockSize is the posting-block granularity: each block of up to 64
// postings carries its own score upper-bound metadata so the evaluator
// can skip it wholesale when the block cannot beat the current
// threshold. 64 keeps block metadata ~1.5% of posting bytes while
// leaving blocks small enough that skipping one matters.
const blockSize = 64

// posting records one document containing a term: the document's dense
// ID and the term's body (tf) and title (tit) frequencies packed into
// one word. Frequencies saturate at 65535, far beyond any real document.
type posting struct {
	doc  uint32
	freq uint32 // tf in the low 16 bits, tit in the high 16
}

func packFreq(tf, tit int) uint32 {
	if tf > 0xffff {
		tf = 0xffff
	}
	if tit > 0xffff {
		tit = 0xffff
	}
	return uint32(tf) | uint32(tit)<<16
}

func (p posting) tf() uint32  { return p.freq & 0xffff }
func (p posting) tit() uint32 { return p.freq >> 16 }

// block is the upper-bound metadata for one blockSize-chunk of a posting
// list. maxTf/maxTit bound the packed frequencies and minLen the BM25
// length normalizer, so score(maxTf + TitleBoost·maxTit, minLen) bounds
// every posting in the block for any monotone scoring profile.
type block struct {
	lastDoc uint32 // doc of the block's final posting (skip key)
	maxTf   uint16
	maxTit  uint16
	minLen  uint32
}

// termPostings is one term's posting list plus its block and list-wide
// upper-bound metadata.
type termPostings struct {
	posts  []posting
	blocks []block
	maxTf  uint16
	maxTit uint16
	minLen uint32
}

// Index is an immutable inverted index over a corpus. Build once, search
// concurrently.
type Index struct {
	docs []webcorpus.Document
	// dict is the index's symbol table, frozen when BuildIndex returns
	// (the index is immutable, so concurrent searches share it with no
	// synchronization — intern.Frozen's contract).
	dict   *intern.Frozen[string]
	terms  []termPostings // indexed by term ID
	docLen []uint32
	avgLen float64
	stop   map[string]bool
	news   []uint64 // bitmap over docs: kind == "news"
	// expander is the query-expansion source (nil when the index was
	// built without WithExpansion). Expansion applies only when a search
	// opts in via Options.Expand and the engine's Params enable it, so
	// the default ranking is bit-identical to the searchref baseline.
	expander *lexicon.Expander
	// obs holds the index's instruments (nil when built without
	// WithMetrics): queries pay one nil check, nothing else.
	obs *searchObs
}

// searchObs bundles the query-path instruments registered by
// WithMetrics. Recording happens once per query from the Stats the
// evaluator already collects, so the per-posting hot loops stay
// untouched.
type searchObs struct {
	queries    *metrics.Histogram
	scanned    *metrics.Counter
	skipped    *metrics.Counter
	pruned     *metrics.Counter
	expansions *metrics.Counter
}

func newSearchObs(set *metrics.Set) *searchObs {
	return &searchObs{
		queries: set.Histogram("richsdk_search_query_seconds",
			"Latency of index queries (block-max top-k evaluation)."),
		scanned: set.Counter("richsdk_search_blocks_total",
			"Posting blocks probed or skipped during evaluation.",
			metrics.Label{Name: "outcome", Value: "scanned"}),
		skipped: set.Counter("richsdk_search_blocks_total",
			"Posting blocks probed or skipped during evaluation.",
			metrics.Label{Name: "outcome", Value: "skipped"}),
		pruned: set.Counter("richsdk_search_pruned_candidates_total",
			"Candidate documents abandoned because their score upper bound could not beat the threshold."),
		expansions: set.Counter("richsdk_search_expansion_terms_total",
			"Query terms added by lexicon-driven expansion."),
	}
}

// record folds one query's evaluator stats into the instruments.
func (o *searchObs) record(elapsed time.Duration, stats Stats) {
	if o == nil {
		return
	}
	o.queries.Observe(elapsed)
	o.scanned.Add(uint64(stats.BlockScans))
	o.skipped.Add(uint64(stats.BlockSkips))
	o.pruned.Add(uint64(stats.Pruned))
	o.expansions.Add(uint64(stats.Expanded))
}

// IndexOption configures BuildIndex.
type IndexOption func(*indexConfig)

type indexConfig struct {
	expansion bool
	pmi       lexicon.PMIConfig
	set       *metrics.Set
}

// WithMetrics registers the index's instrument families in set and turns
// on query-path instrumentation: a query latency histogram, blocks
// scanned/skipped, pruning-abandonment and expansion-term counters, plus
// a dictionary-size gauge. A nil set leaves the index uninstrumented
// (identical to omitting the option).
func WithMetrics(set *metrics.Set) IndexOption {
	return func(c *indexConfig) { c.set = set }
}

// WithExpansion builds the query-expansion tables alongside the index:
// the gazetteer synonym table plus a corpus-derived PMI co-occurrence
// table accumulated from each document's filtered tokens during the
// indexing pass. cfg tunes the PMI build; the zero value means defaults
// (see lexicon.PMIConfig).
func WithExpansion(cfg lexicon.PMIConfig) IndexOption {
	return func(c *indexConfig) {
		c.expansion = true
		c.pmi = cfg
	}
}

// BuildIndex indexes every document in the corpus.
func BuildIndex(c *webcorpus.Corpus, opts ...IndexOption) *Index {
	var cfg indexConfig
	for _, o := range opts {
		o(&cfg)
	}
	dict := intern.NewDict[string]()
	idx := &Index{
		docs:   c.Docs,
		docLen: make([]uint32, len(c.Docs)),
		stop:   lexicon.StopwordSet(),
		news:   make([]uint64, (len(c.Docs)+63)/64),
	}
	var pmi *lexicon.PMIBuilder
	if cfg.expansion {
		pmi = lexicon.NewPMIBuilder(cfg.pmi)
	}
	var totalLen int
	// Scratch maps are reused across documents; term IDs are dense so the
	// per-doc term set stays small and cheap to reset.
	tfs := make(map[uint32]int)
	tits := make(map[uint32]int)
	for i, d := range c.Docs {
		if d.Kind == "news" {
			idx.news[i>>6] |= 1 << (uint(i) & 63)
		}
		bodyToks := idx.filterTokens(d.Body)
		titleToks := idx.filterTokens(d.Title)
		idx.docLen[i] = uint32(len(bodyToks))
		totalLen += len(bodyToks)
		if pmi != nil {
			pmi.AddDoc(bodyToks)
			pmi.AddDoc(titleToks)
		}
		clear(tfs)
		clear(tits)
		for _, t := range bodyToks {
			tfs[dict.Intern(t)]++
		}
		for _, t := range titleToks {
			tits[dict.Intern(t)]++
		}
		if n := dict.Len(); n > len(idx.terms) {
			idx.terms = append(idx.terms, make([]termPostings, n-len(idx.terms))...)
		}
		// Documents are indexed in increasing order, so each append keeps
		// the posting list sorted by doc with no explicit sort.
		for tid, tf := range tfs {
			idx.terms[tid].posts = append(idx.terms[tid].posts,
				posting{doc: uint32(i), freq: packFreq(tf, tits[tid])})
		}
		for tid, tit := range tits {
			if _, body := tfs[tid]; !body {
				idx.terms[tid].posts = append(idx.terms[tid].posts,
					posting{doc: uint32(i), freq: packFreq(0, tit)})
			}
		}
	}
	if len(c.Docs) > 0 {
		idx.avgLen = float64(totalLen) / float64(len(c.Docs))
	}
	for tid := range idx.terms {
		idx.buildBlocks(&idx.terms[tid])
	}
	idx.dict = dict.Freeze()
	if cfg.expansion {
		idx.expander = lexicon.NewExpander().WithCooccurrence(pmi.Build())
	}
	if cfg.set != nil {
		idx.obs = newSearchObs(cfg.set)
		// The dictionary is frozen, so the gauge is a one-shot reading.
		cfg.set.Gauge("richsdk_intern_dict_size",
			"Distinct terms in an interned symbol table.",
			metrics.Label{Name: "dict", Value: "search"}).Set(int64(idx.dict.Len()))
	}
	return idx
}

// buildBlocks carves tp's posting list into blockSize chunks and records
// the per-block and list-wide upper-bound metadata.
func (idx *Index) buildBlocks(tp *termPostings) {
	n := len(tp.posts)
	if n == 0 {
		return
	}
	tp.blocks = make([]block, 0, (n+blockSize-1)/blockSize)
	tp.minLen = ^uint32(0)
	for start := 0; start < n; start += blockSize {
		end := start + blockSize
		if end > n {
			end = n
		}
		b := block{lastDoc: tp.posts[end-1].doc, minLen: ^uint32(0)}
		for _, p := range tp.posts[start:end] {
			if tf := uint16(p.tf()); tf > b.maxTf {
				b.maxTf = tf
			}
			if tit := uint16(p.tit()); tit > b.maxTit {
				b.maxTit = tit
			}
			if l := idx.docLen[p.doc]; l < b.minLen {
				b.minLen = l
			}
		}
		if b.maxTf > tp.maxTf {
			tp.maxTf = b.maxTf
		}
		if b.maxTit > tp.maxTit {
			tp.maxTit = b.maxTit
		}
		if b.minLen < tp.minLen {
			tp.minLen = b.minLen
		}
		tp.blocks = append(tp.blocks, b)
	}
}

// filterTokens lower-cases and filters text the same way the seed engine
// did — tokens shorter than two bytes and stopwords are dropped —
// returning the surviving tokens in document order (the PMI builder
// needs the sequence, not just counts).
func (idx *Index) filterTokens(text string) []string {
	toks := nlu.Tokenize(text)
	out := make([]string, 0, len(toks))
	for _, tok := range toks {
		if len(tok.Lower) < 2 || idx.stop[tok.Lower] {
			continue
		}
		out = append(out, tok.Lower)
	}
	return out
}

// isNews reports whether doc is a news document (kind bitmap probe).
func (idx *Index) isNews(doc uint32) bool {
	return idx.news[doc>>6]&(1<<(doc&63)) != 0
}

// Result is one search hit.
type Result struct {
	DocID     string  `json:"docId"`
	URL       string  `json:"url"`
	Title     string  `json:"title"`
	Kind      string  `json:"kind"`
	Score     float64 `json:"score"`
	Published string  `json:"published"`
}

// Options controls one search.
type Options struct {
	// Limit bounds the result count. 0 means 10.
	Limit int
	// Offset skips that many top-ranked hits before collecting Limit
	// results (pagination). The evaluator keeps a heap of Limit+Offset
	// entries, so deep pagination costs proportionally more.
	Offset int
	// NewsOnly restricts hits to documents of kind "news". The
	// restriction is a doc-kind bitmap consulted during evaluation —
	// non-news documents are never scored — not a post-filter.
	NewsOnly bool
	// Expand turns on query expansion for this search. It has effect
	// only when the index was built with WithExpansion and the engine's
	// Params carry a positive ExpandWeight.
	Expand bool
}

// Scoring selects the ranking function.
type Scoring int

// Scoring functions.
const (
	TFIDF Scoring = iota + 1
	BM25
)

// Params tunes scoring.
type Params struct {
	Scoring    Scoring
	K1         float64 // BM25 term-frequency saturation (typical 1.2)
	B          float64 // BM25 length normalization (typical 0.75)
	TitleBoost float64 // extra weight for title matches

	// ExpandWeight scales the score contribution of expansion terms
	// relative to original query terms (0 disables expansion for this
	// profile). ExpandTerms caps how many expansion terms a query gains;
	// 0 means 2. Both only apply when Options.Expand is set, so profiles
	// tune how aggressively they broaden a query — one of the axes on
	// which the stock G/B/Y tunings differ.
	ExpandWeight float64
	ExpandTerms  int
}

// Stats reports what one evaluation did; see SearchStats.
type Stats struct {
	// Terms is how many query terms (originals plus expansions) had
	// posting lists and entered evaluation.
	Terms int
	// Expanded is how many of those were added by query expansion.
	Expanded int
	// Candidates counts documents proposed by the essential-list
	// document-at-a-time scan.
	Candidates int
	// Scored counts candidates that survived every bound check and had
	// their full score computed.
	Scored int
	// Pruned counts candidates abandoned because their score upper
	// bound could not beat the running threshold.
	Pruned int
	// BlockSkips counts posting blocks skipped via block-max metadata.
	BlockSkips int
	// BlockScans counts posting blocks actually probed (binary-searched)
	// for a candidate; BlockScans + BlockSkips is the non-essential probe
	// volume, and the scanned:skipped ratio is the live measure of how
	// much work the block-max metadata is avoiding.
	BlockScans int
}

// Search runs a ranked query against the index: top Limit results after
// Offset, scores descending, ties broken by ascending DocID — the same
// contract as the searchref baseline.
//
// A query whose every token is filtered out (stopwords or single
// characters) returns an empty result immediately: stopwords are
// stripped at build time, so the index holds no posting that could match
// them. The seed engine "fell back" to looking the raw tokens up anyway
// and necessarily found nothing; the early return makes that contract
// explicit at zero cost.
func (idx *Index) Search(query string, p Params, opts Options) []Result {
	res, _ := idx.SearchStats(query, p, opts)
	return res
}

// SearchStats is Search plus evaluation statistics (pruning and skip
// counters for experiments and benchmarks).
func (idx *Index) SearchStats(query string, p Params, opts Options) ([]Result, Stats) {
	var start time.Time
	if idx.obs != nil {
		start = time.Now()
	}
	if opts.Limit <= 0 {
		opts.Limit = 10
	}
	if opts.Offset < 0 {
		opts.Offset = 0
	}
	qterms := idx.queryTerms(query)
	if len(qterms) == 0 {
		if idx.obs != nil {
			idx.obs.record(time.Since(start), Stats{})
		}
		return []Result{}, Stats{}
	}
	var stats Stats
	qterms = idx.expandQuery(qterms, p, opts, &stats)
	res := idx.evaluate(qterms, p, opts, &stats)
	if idx.obs != nil {
		idx.obs.record(time.Since(start), stats)
	}
	return res, stats
}

// qterm is one compiled query term: a term ID and the query-side weight
// its contributions are multiplied by (1 for original terms, the scaled
// expansion weight for expansion terms).
type qterm struct {
	id     uint32
	weight float64
}

// queryTerms tokenizes and dedupes the query, keeping only terms the
// dictionary knows (anything else cannot match), sorted by term string
// for determinism.
func (idx *Index) queryTerms(query string) []qterm {
	toks := idx.filterTokens(query)
	if len(toks) == 0 {
		return nil
	}
	sort.Strings(toks)
	out := make([]qterm, 0, len(toks))
	var prev string
	for i, t := range toks {
		if i > 0 && t == prev {
			continue
		}
		prev = t
		if id, ok := idx.dict.Lookup(t); ok {
			out = append(out, qterm{id: id, weight: 1})
		}
	}
	return out
}

// expandQuery appends up to ExpandTerms weighted expansion terms when
// the search opts in and the index carries expansion tables. Candidates
// from all original terms are merged (keeping each candidate's strongest
// weight), ranked by weight then term, and never duplicate an original.
func (idx *Index) expandQuery(qterms []qterm, p Params, opts Options, stats *Stats) []qterm {
	if !opts.Expand || idx.expander == nil || p.ExpandWeight <= 0 {
		return qterms
	}
	maxTerms := p.ExpandTerms
	if maxTerms <= 0 {
		maxTerms = 2
	}
	present := make(map[uint32]bool, len(qterms))
	for _, q := range qterms {
		present[q.id] = true
	}
	best := make(map[string]float64)
	for _, q := range qterms {
		for _, ex := range idx.expander.Expand(idx.dict.Value(q.id), maxTerms) {
			if ex.Weight > best[ex.Term] {
				best[ex.Term] = ex.Weight
			}
		}
	}
	candidates := make([]lexicon.Expansion, 0, len(best))
	for t, w := range best {
		candidates = append(candidates, lexicon.Expansion{Term: t, Weight: w})
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Weight != candidates[j].Weight {
			return candidates[i].Weight > candidates[j].Weight
		}
		return candidates[i].Term < candidates[j].Term
	})
	added := 0
	for _, c := range candidates {
		if added >= maxTerms {
			break
		}
		id, ok := idx.dict.Lookup(c.Term)
		if !ok || present[id] {
			continue
		}
		present[id] = true
		qterms = append(qterms, qterm{id: id, weight: p.ExpandWeight * c.Weight})
		added++
	}
	stats.Expanded = added
	return qterms
}
