package webcorpus

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lexicon"
	"repro/internal/nlu"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 42, NumDocs: 20})
	b := Generate(Config{Seed: 42, NumDocs: 20})
	if !reflect.DeepEqual(a.Docs, b.Docs) {
		t.Error("same seed produced different corpora")
	}
	c := Generate(Config{Seed: 43, NumDocs: 20})
	same := 0
	for i := range a.Docs {
		if a.Docs[i].Body == c.Docs[i].Body {
			same++
		}
	}
	if same == len(a.Docs) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGenerateDefaults(t *testing.T) {
	c := Generate(Config{Seed: 1})
	if c.Len() != 200 {
		t.Errorf("Len = %d, want 200", c.Len())
	}
	d := c.Docs[0]
	if !strings.HasPrefix(d.URL, "http://web.local/docs/") {
		t.Errorf("URL = %s", d.URL)
	}
	if d.Published.IsZero() {
		t.Error("zero Published")
	}
}

func TestGroundTruthEntitiesAppearInBody(t *testing.T) {
	c := Generate(Config{Seed: 7, NumDocs: 50})
	byID := lexicon.ByID()
	for _, d := range c.Docs {
		if len(d.TrueEntities) == 0 {
			t.Fatalf("doc %s has no true entities", d.ID)
		}
		for _, id := range d.TrueEntities {
			e, ok := byID[id]
			if !ok {
				t.Fatalf("doc %s true entity %s not in gazetteer", d.ID, id)
			}
			found := false
			lower := strings.ToLower(d.Body)
			for _, s := range e.Surface() {
				if strings.Contains(lower, strings.ToLower(s)) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("doc %s claims %s but no surface form in body: %s", d.ID, id, d.Body)
			}
			if _, ok := d.TruePolarity[id]; !ok {
				t.Errorf("doc %s missing polarity for %s", d.ID, id)
			}
		}
	}
}

func TestGroundTruthPolarityDetectable(t *testing.T) {
	// An oracle-grade analyzer should recover the intended polarity sign
	// for a clear majority of non-neutral entities.
	c := Generate(Config{Seed: 11, NumDocs: 120})
	engine := nlu.NewEngine(nlu.Profile{Name: "oracle", Seed: 1})
	agree, total := 0, 0
	for _, d := range c.Docs {
		a := engine.Analyze(d.Body)
		scores := map[string]float64{}
		for _, es := range a.EntitySentiments {
			scores[es.EntityID] = es.Score
		}
		for id, pol := range d.TruePolarity {
			if pol == 0 {
				continue
			}
			got, ok := scores[id]
			if !ok {
				continue
			}
			total++
			if (pol > 0) == (got > 0) && got != 0 {
				agree++
			}
		}
	}
	if total < 50 {
		t.Fatalf("only %d scored entities, generation too sparse", total)
	}
	frac := float64(agree) / float64(total)
	if frac < 0.8 {
		t.Errorf("polarity agreement = %.2f, want >= 0.8", frac)
	}
}

func TestCorpusLookups(t *testing.T) {
	c := Generate(Config{Seed: 3, NumDocs: 10})
	d := c.Docs[4]
	got, ok := c.ByID(d.ID)
	if !ok || got.ID != d.ID {
		t.Errorf("ByID failed for %s", d.ID)
	}
	got, ok = c.ByURL(d.URL)
	if !ok || got.URL != d.URL {
		t.Errorf("ByURL failed for %s", d.URL)
	}
	if _, ok := c.ByID("nope"); ok {
		t.Error("ByID(nope) = true")
	}
}

func TestKindsDistribution(t *testing.T) {
	c := Generate(Config{Seed: 5, NumDocs: 200})
	counts := map[string]int{}
	for _, d := range c.Docs {
		counts[d.Kind]++
	}
	for _, k := range []string{"news", "blog", "reference"} {
		if counts[k] == 0 {
			t.Errorf("no %s documents generated", k)
		}
	}
	if counts["news"] <= counts["blog"] {
		t.Errorf("news (%d) should dominate blog (%d)", counts["news"], counts["blog"])
	}
}

func TestRenderHTMLAndExtractText(t *testing.T) {
	c := Generate(Config{Seed: 9, NumDocs: 5})
	d := c.Docs[0]
	page := RenderHTML(d)
	if !strings.Contains(page, "<title>") || !strings.Contains(page, "<p>") {
		t.Error("HTML structure missing")
	}
	text := ExtractText(page)
	if strings.Contains(text, "<") || strings.Contains(text, ">") {
		t.Errorf("tags leaked into text: %s", text)
	}
	// Every body word should survive the HTML round trip.
	for _, w := range strings.Fields(d.Body)[:10] {
		if !strings.Contains(text, strings.Trim(w, ".,!?")) {
			t.Errorf("word %q lost in round trip", w)
		}
	}
}

func TestExtractTextStripsScriptAndEntities(t *testing.T) {
	in := `<html><head><script>var x = "<danger>";</script></head>` +
		`<body><p>A &amp; B</p><style>p { color: red }</style><p>C</p></body></html>`
	got := ExtractText(in)
	if strings.Contains(got, "danger") || strings.Contains(got, "color") {
		t.Errorf("script/style content leaked: %q", got)
	}
	if !strings.Contains(got, "A & B") || !strings.Contains(got, "C") {
		t.Errorf("content lost: %q", got)
	}
}

func TestHTTPServerServesCorpus(t *testing.T) {
	c := Generate(Config{Seed: 13, NumDocs: 8})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/docs/" + c.Docs[2].ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), c.Docs[2].Title) {
		t.Error("served page missing title")
	}

	idx, err := http.Get(srv.URL + "/index")
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Body.Close()
	idxBody, _ := io.ReadAll(idx.Body)
	if got := strings.Count(string(idxBody), "\n"); got != 8 {
		t.Errorf("index lines = %d, want 8", got)
	}

	missing, err := http.Get(srv.URL + "/docs/absent")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("missing doc status = %d, want 404", missing.StatusCode)
	}
}
