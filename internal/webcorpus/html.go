package webcorpus

import (
	"fmt"
	"html"
	"net/http"
	"strings"
)

// RenderHTML renders the document as a minimal HTML page.
func RenderHTML(d Document) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "  <title>%s</title>\n", html.EscapeString(d.Title))
	fmt.Fprintf(&b, "  <meta name=\"kind\" content=%q>\n", d.Kind)
	fmt.Fprintf(&b, "  <meta name=\"published\" content=%q>\n", d.Published.Format("2006-01-02T15:04:05Z07:00"))
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "  <h1>%s</h1>\n", html.EscapeString(d.Title))
	for _, para := range splitParagraphs(d.Body) {
		fmt.Fprintf(&b, "  <p>%s</p>\n", html.EscapeString(para))
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// splitParagraphs groups sentences into paragraphs of three.
func splitParagraphs(body string) []string {
	var paras []string
	var cur []string
	count := 0
	for _, part := range strings.SplitAfter(body, ". ") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		cur = append(cur, strings.TrimSpace(part))
		count++
		if count%3 == 0 {
			paras = append(paras, strings.Join(cur, " "))
			cur = nil
		}
	}
	if len(cur) > 0 {
		paras = append(paras, strings.Join(cur, " "))
	}
	return paras
}

// ExtractText strips HTML tags and collapses whitespace, recovering
// analyzable plain text from a fetched page — the step between "fetch HTML
// documents corresponding to URLs returned from a Web search" and "pass
// them to natural language understanding services" (paper §2.2).
func ExtractText(htmlSrc string) string {
	var b strings.Builder
	inTag := false
	inScript := false
	i := 0
	lower := strings.ToLower(htmlSrc)
	for i < len(htmlSrc) {
		ch := htmlSrc[i]
		if !inTag && ch == '<' {
			if strings.HasPrefix(lower[i:], "<script") || strings.HasPrefix(lower[i:], "<style") {
				inScript = true
			}
			if inScript && (strings.HasPrefix(lower[i:], "</script") || strings.HasPrefix(lower[i:], "</style")) {
				inScript = false
			}
			inTag = true
			i++
			continue
		}
		if inTag {
			if ch == '>' {
				inTag = false
				b.WriteByte(' ')
			}
			i++
			continue
		}
		if inScript {
			i++
			continue
		}
		b.WriteByte(ch)
		i++
	}
	text := html.UnescapeString(b.String())
	return strings.Join(strings.Fields(text), " ")
}

// Handler serves the corpus over HTTP:
//
//	GET /docs/<id>   -> HTML page
//	GET /index       -> newline-separated list of "id url"
func (c *Corpus) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /docs/{id}", func(w http.ResponseWriter, r *http.Request) {
		d, ok := c.ByID(r.PathValue("id"))
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(RenderHTML(*d)))
	})
	mux.HandleFunc("GET /index", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, d := range c.Docs {
			fmt.Fprintf(w, "%s %s\n", d.ID, d.URL)
		}
	})
	return mux
}
