// Package webcorpus generates a deterministic synthetic web: documents with
// known ground truth (which entities they mention and with what sentiment),
// rendered as HTML and served over real local HTTP. It substitutes for the
// live web the paper's SDK searches and fetches — the same code paths
// (search, URL fetch, HTML extraction, NLU analysis) run against content
// whose truth is known, which is what lets experiments score NLU engines
// and aggregation quality.
package webcorpus

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/lexicon"
	"repro/internal/xrand"
)

// Document is one synthetic web page with its generation ground truth.
type Document struct {
	// ID is the document's stable identifier ("doc-000042").
	ID string
	// URL is where the corpus server serves the page.
	URL string
	// Title is the page title.
	Title string
	// Body is the plain-text content.
	Body string
	// Kind is the page type: "news", "blog", or "reference". Search
	// engines can restrict to news (paper §2.2).
	Kind string
	// Published is the page timestamp.
	Published time.Time
	// TrueEntities are the canonical IDs of entities deliberately
	// written into the body.
	TrueEntities []string
	// TruePolarity maps entity ID to the intended sentiment sign
	// (+1, 0, -1).
	TruePolarity map[string]float64
}

// Corpus is a generated document collection with lookups.
type Corpus struct {
	Docs  []Document
	byID  map[string]*Document
	byURL map[string]*Document
}

// Config controls generation.
type Config struct {
	// Seed makes the corpus reproducible.
	Seed int64
	// NumDocs is the corpus size. 0 means 200.
	NumDocs int
	// BaseURL prefixes document URLs. Empty means "http://web.local".
	BaseURL string
	// Start is the timestamp of the oldest document. Zero means
	// 2026-01-01 UTC.
	Start time.Time
	// MaxEntities caps how many entities a document mentions (each doc
	// draws 1..MaxEntities). 0 means 3. At the default the generator's
	// random sequence is unchanged, so existing seeds produce identical
	// corpora.
	MaxEntities int
	// FillerMin/FillerMax bound the neutral filler sentences per document
	// (inclusive), controlling document length and vocabulary spread.
	// FillerMin 0 means 2; FillerMax below FillerMin means FillerMin+4
	// (so the defaults are 2..6). Defaults again leave the random
	// sequence untouched.
	FillerMin int
	FillerMax int
}

// fill applies Config defaults for the document-shape knobs.
func (cfg Config) fill() Config {
	if cfg.NumDocs <= 0 {
		cfg.NumDocs = 200
	}
	if cfg.BaseURL == "" {
		cfg.BaseURL = "http://web.local"
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if cfg.MaxEntities <= 0 {
		cfg.MaxEntities = 3
	}
	if cfg.FillerMin <= 0 {
		cfg.FillerMin = 2
	}
	if cfg.FillerMax < cfg.FillerMin {
		cfg.FillerMax = cfg.FillerMin + 4
	}
	return cfg
}

var kinds = []string{"news", "news", "blog", "reference"} // news-heavy web

// sentence templates; %e is the entity, %a a sentiment adjective, %n a noun.
var positiveTemplates = []string{
	"%e reported %a results that impressed the %n this quarter.",
	"Analysts praised %e for its %a performance in the %n sector.",
	"%e announced a %a breakthrough that could reshape the %n industry.",
	"Shares of %e surged after the %a earnings report lifted the %n.",
	"%e won a major award for its %a work on %n technology.",
}

var negativeTemplates = []string{
	"%e reported %a results that worried the %n this quarter.",
	"Critics condemned %e for its %a handling of the %n crisis.",
	"%e suffered a %a setback amid the ongoing %n scandal.",
	"Shares of %e plunged after the %a earnings report shook the %n.",
	"%e faces a lawsuit over its %a conduct in the %n dispute.",
}

var neutralTemplates = []string{
	"%e held a meeting to discuss the %n schedule.",
	"Representatives of %e attended the annual %n conference.",
	"%e published its routine report on %n statistics.",
	"A spokesperson for %e commented on the %n agenda.",
}

var fillerTemplates = []string{
	"The %n committee reviewed the quarterly %n figures in detail.",
	"Observers expect the %n market to follow the usual seasonal pattern.",
	"Regional %n programs continued according to the published plan.",
	"The %n forum gathered experts to compare %n methods.",
	"Officials released updated guidance on %n regulation.",
}

// Generate builds a corpus from cfg.
func Generate(cfg Config) *Corpus {
	cfg = cfg.fill()
	rng := xrand.New(cfg.Seed)
	entities := lexicon.AllEntities()
	c := &Corpus{
		Docs:  make([]Document, 0, cfg.NumDocs),
		byID:  make(map[string]*Document, cfg.NumDocs),
		byURL: make(map[string]*Document, cfg.NumDocs),
	}
	for i := 0; i < cfg.NumDocs; i++ {
		doc := generateDoc(i, cfg, rng, entities)
		c.Docs = append(c.Docs, doc)
	}
	for i := range c.Docs {
		d := &c.Docs[i]
		c.byID[d.ID] = d
		c.byURL[d.URL] = d
	}
	return c
}

func generateDoc(i int, cfg Config, rng *xrand.Source, entities []lexicon.Entity) Document {
	id := fmt.Sprintf("doc-%06d", i)
	kind := kinds[rng.Intn(len(kinds))]
	nEntities := 1 + rng.Intn(cfg.MaxEntities)
	chosen := xrand.Sample(rng, entities, nEntities)

	var sentences []string
	trueIDs := make([]string, 0, nEntities)
	polarity := make(map[string]float64, nEntities)
	for _, e := range chosen {
		surface := xrand.Choice(rng, e.Surface())
		pol := rng.Intn(3) - 1 // -1, 0, +1
		var tmpl string
		var adjPool []string
		switch pol {
		case 1:
			tmpl = xrand.Choice(rng, positiveTemplates)
			adjPool = lexicon.Positive
		case -1:
			tmpl = xrand.Choice(rng, negativeTemplates)
			adjPool = lexicon.Negative
		default:
			tmpl = xrand.Choice(rng, neutralTemplates)
		}
		s := strings.ReplaceAll(tmpl, "%e", surface)
		if strings.Contains(s, "%a") {
			s = strings.ReplaceAll(s, "%a", xrand.Choice(rng, adjPool))
		}
		for strings.Contains(s, "%n") {
			s = strings.Replace(s, "%n", xrand.Choice(rng, lexicon.Vocabulary), 1)
		}
		sentences = append(sentences, s)
		trueIDs = append(trueIDs, e.ID)
		polarity[e.ID] = float64(pol)
		// Reinforce the polarity with a second sentence sometimes, so
		// sentiment signal is detectable over noise.
		if pol != 0 && rng.Bernoulli(0.6) {
			var tmpl2 string
			if pol == 1 {
				tmpl2 = xrand.Choice(rng, positiveTemplates)
			} else {
				tmpl2 = xrand.Choice(rng, negativeTemplates)
			}
			s2 := strings.ReplaceAll(tmpl2, "%e", surface)
			if pol == 1 {
				s2 = strings.ReplaceAll(s2, "%a", xrand.Choice(rng, lexicon.Positive))
			} else {
				s2 = strings.ReplaceAll(s2, "%a", xrand.Choice(rng, lexicon.Negative))
			}
			for strings.Contains(s2, "%n") {
				s2 = strings.Replace(s2, "%n", xrand.Choice(rng, lexicon.Vocabulary), 1)
			}
			sentences = append(sentences, s2)
		}
	}
	// Neutral filler to vary length and vocabulary.
	nFiller := cfg.FillerMin + rng.Intn(cfg.FillerMax-cfg.FillerMin+1)
	for f := 0; f < nFiller; f++ {
		s := xrand.Choice(rng, fillerTemplates)
		for strings.Contains(s, "%n") {
			s = strings.Replace(s, "%n", xrand.Choice(rng, lexicon.Vocabulary), 1)
		}
		sentences = append(sentences, s)
	}
	rng.Shuffle(len(sentences), func(a, b int) { sentences[a], sentences[b] = sentences[b], sentences[a] })

	titleEntity := chosen[0]
	title := fmt.Sprintf("%s and the %s %s", titleEntity.Name,
		xrand.Choice(rng, lexicon.Vocabulary), xrand.Choice(rng, lexicon.Vocabulary))

	return Document{
		ID:           id,
		URL:          fmt.Sprintf("%s/docs/%s", cfg.BaseURL, id),
		Title:        title,
		Body:         strings.Join(sentences, " "),
		Kind:         kind,
		Published:    cfg.Start.Add(time.Duration(i) * time.Hour),
		TrueEntities: trueIDs,
		TruePolarity: polarity,
	}
}

// ByID returns the document with the given ID.
func (c *Corpus) ByID(id string) (*Document, bool) {
	d, ok := c.byID[id]
	return d, ok
}

// ByURL returns the document served at url.
func (c *Corpus) ByURL(url string) (*Document, bool) {
	d, ok := c.byURL[url]
	return d, ok
}

// Len returns the corpus size.
func (c *Corpus) Len() int { return len(c.Docs) }
