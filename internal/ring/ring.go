// Package ring implements a consistent-hash ring with virtual nodes, the
// key-placement substrate for the distributed cloud store. Each physical
// node is projected onto the ring at VirtualNodes pseudo-random points
// (derived deterministically from the node name and a placement seed), a
// key maps to the first point at or clockwise after its hash, and the R
// replicas of a key are the first R *distinct* nodes encountered walking
// clockwise. Virtual nodes smooth the load split (the classic consistent
// hashing result: with k·log(n) points per node the max/mean load ratio
// approaches 1), and make membership changes move only ~1/n of the key
// space.
//
// Placement is fully deterministic for a given (member set, VirtualNodes,
// Seed) triple — two clients configured identically agree on every key's
// replica set without coordination, which is what lets the sharded store
// client route without a metadata service.
package ring

import (
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-node point count used when the option is
// left zero. 64 points per node keeps the max/mean shard imbalance under
// ~15% for small clusters while keeping Add/Remove cost trivial.
const DefaultVirtualNodes = 64

// point is one virtual node: a position on the ring owned by a node.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring. It is safe for concurrent use; lookups
// take a read lock only.
type Ring struct {
	vnodes int
	seed   uint64

	mu     sync.RWMutex
	points []point // sorted by (hash, node)
	nodes  map[string]struct{}
}

// Option configures a Ring.
type Option func(*Ring)

// WithVirtualNodes sets how many points each node projects onto the ring
// (default DefaultVirtualNodes). Higher is smoother and slightly slower to
// mutate; lookups stay O(log points) regardless.
func WithVirtualNodes(n int) Option {
	return func(r *Ring) {
		if n > 0 {
			r.vnodes = n
		}
	}
}

// WithSeed sets the placement seed. Clients that must agree on placement
// must share the seed (and the virtual-node count).
func WithSeed(seed uint64) Option {
	return func(r *Ring) { r.seed = seed }
}

// New returns an empty ring.
func New(opts ...Option) *Ring {
	r := &Ring{vnodes: DefaultVirtualNodes, nodes: make(map[string]struct{})}
	for _, o := range opts {
		o(r)
	}
	return r
}

// hashPoint hashes one virtual node (node name + point index + seed) onto
// the ring. FNV-1a over the raw bytes keeps placement identical across
// processes and platforms; the splitmix finalizer fixes FNV's weak
// avalanche on trailing bytes (without it, points for sequential vnode
// indices cluster and the ring balances badly).
func (r *Ring) hashPoint(node string, idx int) uint64 {
	h := fnv.New64a()
	var b [16]byte
	enc64(b[:8], r.seed)
	enc64(b[8:], uint64(idx))
	_, _ = h.Write([]byte(node))
	_, _ = h.Write(b[:])
	return mix64(h.Sum64())
}

// hashKey hashes a key onto the ring (seed folded in, so two rings with
// different seeds disagree on placement as well as point positions).
func (r *Ring) hashKey(key string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	enc64(b[:], r.seed)
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler with full
// avalanche, applied on top of FNV so ring positions are uniform even for
// structured inputs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func enc64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

// Add inserts nodes into the ring. Adding a member twice is a no-op, so
// membership can be reasserted idempotently.
func (r *Ring) Add(nodes ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	changed := false
	for _, node := range nodes {
		if _, ok := r.nodes[node]; ok {
			continue
		}
		r.nodes[node] = struct{}{}
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, point{hash: r.hashPoint(node, i), node: node})
		}
		changed = true
	}
	if changed {
		sort.Slice(r.points, func(i, j int) bool {
			if r.points[i].hash != r.points[j].hash {
				return r.points[i].hash < r.points[j].hash
			}
			// Hash ties (vanishingly rare at 64 bits) break by name so
			// placement stays deterministic across insertion orders.
			return r.points[i].node < r.points[j].node
		})
	}
}

// Remove deletes a node and its points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the number of member nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Contains reports membership.
func (r *Ring) Contains(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.nodes[node]
	return ok
}

// Lookup returns the node owning key (the key's primary). ok is false on
// an empty ring.
func (r *Ring) Lookup(key string) (node string, ok bool) {
	owners := r.LookupN(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// LookupN returns the first n distinct nodes at or clockwise after key's
// hash — the key's replica set, primary first. Fewer than n members
// returns them all. The walk wraps at the top of the ring.
func (r *Ring) LookupN(key string, n int) []string {
	if n < 1 {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := r.hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
