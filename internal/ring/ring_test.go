package ring

import (
	"fmt"
	"testing"
)

func TestEmptyRing(t *testing.T) {
	r := New()
	if _, ok := r.Lookup("k"); ok {
		t.Fatal("Lookup on empty ring should report !ok")
	}
	if got := r.LookupN("k", 2); got != nil {
		t.Fatalf("LookupN on empty ring = %v, want nil", got)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
}

func TestDeterministicPlacement(t *testing.T) {
	build := func() *Ring {
		r := New(WithSeed(42), WithVirtualNodes(64))
		// Insertion order must not matter.
		return r
	}
	a := build()
	a.Add("n0", "n1", "n2", "n3")
	b := build()
	b.Add("n3", "n1")
	b.Add("n0")
	b.Add("n2")
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		ga, gb := a.LookupN(key, 3), b.LookupN(key, 3)
		if len(ga) != len(gb) {
			t.Fatalf("key %q: lens differ %v vs %v", key, ga, gb)
		}
		for j := range ga {
			if ga[j] != gb[j] {
				t.Fatalf("key %q: replica sets differ %v vs %v", key, ga, gb)
			}
		}
	}
}

func TestSeedChangesPlacement(t *testing.T) {
	a := New(WithSeed(1))
	b := New(WithSeed(2))
	a.Add("n0", "n1", "n2", "n3")
	b.Add("n0", "n1", "n2", "n3")
	diff := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		pa, _ := a.Lookup(key)
		pb, _ := b.Lookup(key)
		if pa != pb {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical placement for all 200 keys")
	}
}

func TestLookupNDistinct(t *testing.T) {
	r := New(WithSeed(7))
	r.Add("a", "b", "c", "d", "e")
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.LookupN(key, 3)
		if len(owners) != 3 {
			t.Fatalf("key %q: got %d owners, want 3", key, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner in %v", key, owners)
			}
			seen[o] = true
		}
	}
	// Asking for more replicas than members returns every member.
	if got := r.LookupN("k", 99); len(got) != 5 {
		t.Fatalf("LookupN(99) = %v, want all 5 members", got)
	}
}

func TestBalance(t *testing.T) {
	r := New(WithSeed(11), WithVirtualNodes(128))
	const nodes = 4
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("n%d", i))
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		owner, _ := r.Lookup(fmt.Sprintf("key-%d", i))
		counts[owner]++
	}
	mean := float64(keys) / nodes
	for node, c := range counts {
		ratio := float64(c) / mean
		if ratio < 0.5 || ratio > 1.5 {
			t.Fatalf("node %s owns %d/%d keys (%.2fx mean) — ring badly unbalanced: %v",
				node, c, keys, ratio, counts)
		}
	}
}

func TestMinimalMovement(t *testing.T) {
	r := New(WithSeed(3))
	r.Add("n0", "n1", "n2", "n3")
	const keys = 2000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k], _ = r.Lookup(k)
	}
	r.Add("n4")
	moved := 0
	for k, was := range before {
		now, _ := r.Lookup(k)
		if now != was {
			if now != "n4" {
				t.Fatalf("key %q moved %s -> %s, but only moves to the new node are allowed", k, was, now)
			}
			moved++
		}
	}
	// Adding a 5th node should claim roughly 1/5 of the space, certainly
	// far less than a naive mod-N rehash (which moves ~4/5).
	if moved == 0 || moved > keys/2 {
		t.Fatalf("adding one node moved %d/%d keys; want (0, %d]", moved, keys, keys/2)
	}

	// Removing it restores the exact prior placement.
	r.Remove("n4")
	for k, was := range before {
		if now, _ := r.Lookup(k); now != was {
			t.Fatalf("key %q: placement not restored after Remove (was %s, now %s)", k, was, now)
		}
	}
}

func TestAddRemoveIdempotent(t *testing.T) {
	r := New()
	r.Add("a", "a", "b")
	r.Add("a")
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if got := len(r.points); got != 2*DefaultVirtualNodes {
		t.Fatalf("points = %d, want %d (duplicate Add must not add points)", got, 2*DefaultVirtualNodes)
	}
	r.Remove("missing")
	r.Remove("a")
	r.Remove("a")
	if r.Len() != 1 || !r.Contains("b") || r.Contains("a") {
		t.Fatalf("after removes: Len=%d nodes=%v", r.Len(), r.Nodes())
	}
}

func TestNodesSorted(t *testing.T) {
	r := New()
	r.Add("zeta", "alpha", "mid")
	got := r.Nodes()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
}
