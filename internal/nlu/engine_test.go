package nlu

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lexicon"
	"repro/internal/service"
)

const sampleDoc = "Acme Corporation reported excellent quarterly earnings. " +
	"Analysts in Germany praised the strong growth, while investors in Japan " +
	"remained confident about the technology market."

func TestEngineAnalyzeBasics(t *testing.T) {
	e := NewEngine(ProfileAlpha)
	a := e.Analyze(sampleDoc)
	if a.Engine != "nlu-alpha" || a.Language != "en" {
		t.Errorf("metadata = %+v", a)
	}
	ids := a.EntityIDs()
	for _, want := range []string{"company:acme", "country:de", "country:jp"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("entity %s missing from %v", want, ids)
		}
	}
	if a.Sentiment <= 0 {
		t.Errorf("sentiment = %v, want positive", a.Sentiment)
	}
	if len(a.Keywords) == 0 {
		t.Error("no keywords")
	}
	if len(a.Concepts) == 0 {
		t.Error("no concepts")
	}
}

func TestEngineDeterministicPerDocument(t *testing.T) {
	e := NewEngine(ProfileGamma) // noisiest profile
	a1 := e.Analyze(sampleDoc)
	a2 := e.Analyze(sampleDoc)
	if !reflect.DeepEqual(a1, a2) {
		t.Error("same engine and document produced different analyses (breaks caching semantics)")
	}
}

func TestEnginesDiffer(t *testing.T) {
	alpha := NewEngine(ProfileAlpha).Analyze(sampleDoc)
	gamma := NewEngine(ProfileGamma).Analyze(sampleDoc)
	if reflect.DeepEqual(alpha.Entities, gamma.Entities) && alpha.Sentiment == gamma.Sentiment {
		t.Error("different profiles produced identical analyses")
	}
}

func TestEngineQualityOrdering(t *testing.T) {
	// Over many generated docs, alpha (low drop, no spurious) should find
	// more true gazetteer entities than gamma (high drop).
	docs := make([]string, 40)
	for i := range docs {
		c1 := lexicon.Countries[i%len(lexicon.Countries)]
		c2 := lexicon.Companies[i%len(lexicon.Companies)]
		docs[i] = c1.Name + " welcomed " + c2.Name + " with a favorable trade deal, " +
			"document number " + strings.Repeat("x", i%7) + "."
	}
	alpha := NewEngine(ProfileAlpha)
	gamma := NewEngine(ProfileGamma)
	countKnown := func(e *Engine) int {
		n := 0
		for _, d := range docs {
			for _, m := range e.Analyze(d).Entities {
				if !strings.HasPrefix(m.EntityID, "unknown:") {
					n++
				}
			}
		}
		return n
	}
	if a, g := countKnown(alpha), countKnown(gamma); a <= g {
		t.Errorf("alpha found %d known mentions, gamma %d; want alpha > gamma", a, g)
	}
}

func TestEngineServiceAdapter(t *testing.T) {
	e := NewEngine(ProfileAlpha)
	svc := e.Service(service.Info{Name: "nlu-alpha", Category: "nlu", CostPerCall: 0.01})
	resp, err := svc.Invoke(context.Background(), service.Request{Op: "analyze", Text: sampleDoc})
	if err != nil {
		t.Fatal(err)
	}
	a, err := DecodeAnalysis(resp)
	if err != nil {
		t.Fatal(err)
	}
	if a.Engine != "nlu-alpha" || len(a.Entities) == 0 {
		t.Errorf("decoded analysis = %+v", a)
	}
}

func TestEngineServiceRejectsEmptyAndUnknownOp(t *testing.T) {
	svc := NewEngine(ProfileAlpha).Service(service.Info{Name: "n", Category: "nlu"})
	if _, err := svc.Invoke(context.Background(), service.Request{Op: "analyze"}); !errors.Is(err, service.ErrBadRequest) {
		t.Errorf("empty doc error = %v, want ErrBadRequest", err)
	}
	if _, err := svc.Invoke(context.Background(), service.Request{Op: "translate", Text: "x"}); !errors.Is(err, service.ErrBadRequest) {
		t.Errorf("unknown op error = %v, want ErrBadRequest", err)
	}
}

func TestAnalysisEncodeDecodeRoundTrip(t *testing.T) {
	a := NewEngine(ProfileBeta).Analyze(sampleDoc)
	resp, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if resp.ContentType != "application/json" {
		t.Errorf("ContentType = %s", resp.ContentType)
	}
	back, err := DecodeAnalysis(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(a), normalize(back)) {
		t.Error("round trip changed the analysis")
	}
}

// normalize maps empty slices to nil so JSON round-trip comparison is fair.
func normalize(a Analysis) Analysis {
	if len(a.Entities) == 0 {
		a.Entities = nil
	}
	if len(a.Keywords) == 0 {
		a.Keywords = nil
	}
	if len(a.EntitySentiments) == 0 {
		a.EntitySentiments = nil
	}
	if len(a.Concepts) == 0 {
		a.Concepts = nil
	}
	if len(a.Relations) == 0 {
		a.Relations = nil
	}
	return a
}

func TestDecodeAnalysisBadBody(t *testing.T) {
	if _, err := DecodeAnalysis(service.Response{Body: []byte("{oops")}); err == nil {
		t.Error("expected decode error")
	}
}

func TestKeywordsExcludeStopwordsAndShort(t *testing.T) {
	tokens := Tokenize("the the the market market growth of at it is")
	kws := ExtractKeywords(tokens, lexicon.StopwordSet(), 10)
	for _, k := range kws {
		if k.Text == "the" || k.Text == "of" || k.Text == "it" {
			t.Errorf("stopword %q extracted", k.Text)
		}
	}
	if len(kws) == 0 || kws[0].Text != "market" {
		t.Errorf("keywords = %+v, want market first", kws)
	}
}

func TestKeywordsTopK(t *testing.T) {
	tokens := Tokenize("alpha beta gamma delta epsilon zeta market economy trade policy")
	kws := ExtractKeywords(tokens, lexicon.StopwordSet(), 3)
	if len(kws) != 3 {
		t.Errorf("got %d keywords, want 3", len(kws))
	}
}

func TestConceptsFromTopicsAndKinds(t *testing.T) {
	text := "Acme Corporation stock surged as earnings beat forecasts in the market."
	tokens := Tokenize(text)
	m := NewMatcher(lexicon.AllEntities())
	mentions := m.Match(text, tokens)
	cs := ExtractConcepts(tokens, mentions, 5)
	labels := map[string]bool{}
	for _, c := range cs {
		labels[c.Label] = true
		if c.Confidence <= 0 || c.Confidence > 1 {
			t.Errorf("confidence %v out of (0,1]", c.Confidence)
		}
	}
	if !labels["/finance"] {
		t.Errorf("concepts = %+v, want /finance", cs)
	}
	if !labels["/business/companies"] {
		t.Errorf("concepts = %+v, want /business/companies", cs)
	}
}
