package nlu_test

// Per-profile Engine.Analyze micro-benchmarks against the frozen
// pre-interning reference. TestNLUShape (repo root) is the pass/fail
// guard; these give the per-profile breakdown:
//
//	go test ./internal/nlu -run '^$' -bench BenchmarkAnalyze -benchmem

import (
	"testing"

	"repro/internal/nlu"
	"repro/internal/nlu/nluref"
	"repro/internal/webcorpus"
)

func benchTexts() []string {
	c := webcorpus.Generate(webcorpus.Config{Seed: 19, NumDocs: 64})
	out := make([]string, len(c.Docs))
	for i, d := range c.Docs {
		out[i] = d.Body
	}
	return out
}

func BenchmarkAnalyzeInterned(b *testing.B) {
	for _, p := range []nlu.Profile{nlu.ProfileAlpha, nlu.ProfileBeta, nlu.ProfileGamma} {
		b.Run(p.Name, func(b *testing.B) {
			texts := benchTexts()
			e := nlu.NewEngine(p)
			for _, t := range texts {
				e.Analyze(t)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Analyze(texts[i%len(texts)])
			}
		})
	}
}

func BenchmarkAnalyzeReference(b *testing.B) {
	for _, p := range []nluref.Profile{nluref.ProfileAlpha, nluref.ProfileBeta, nluref.ProfileGamma} {
		b.Run(p.Name, func(b *testing.B) {
			texts := benchTexts()
			e := nluref.NewEngine(p)
			for _, t := range texts {
				e.Analyze(t)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Analyze(texts[i%len(texts)])
			}
		})
	}
}
