package nlu

import (
	"strings"
	"testing"

	"repro/internal/lexicon"
)

var benchDoc = strings.Repeat(
	"Acme Corporation reported excellent quarterly earnings while analysts in "+
		"Germany praised the remarkable growth of the technology market. "+
		"Globex Industries suffered a dismal decline amid the scandal. ", 5)

func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(benchDoc)))
	for i := 0; i < b.N; i++ {
		if got := Tokenize(benchDoc); len(got) == 0 {
			b.Fatal("no tokens")
		}
	}
}

func BenchmarkMatcherNER(b *testing.B) {
	m := NewMatcher(lexicon.AllEntities())
	tokens := Tokenize(benchDoc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := m.Match(benchDoc, tokens); len(got) == 0 {
			b.Fatal("no mentions")
		}
	}
}

func BenchmarkDocumentSentiment(b *testing.B) {
	tokens := Tokenize(benchDoc)
	weights := lexicon.SentimentWeights()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DocumentSentiment(tokens, weights)
	}
}

func BenchmarkFullAnalysis(b *testing.B) {
	e := NewEngine(ProfileAlpha)
	b.ReportAllocs()
	b.SetBytes(int64(len(benchDoc)))
	for i := 0; i < b.N; i++ {
		a := e.Analyze(benchDoc)
		if len(a.Entities) == 0 {
			b.Fatal("no entities")
		}
	}
}

func BenchmarkDisambiguatorResolve(b *testing.B) {
	d := NewDisambiguator()
	surfaces := []string{"USA", "Germany", "Acme Corp", "the states", "Nippon"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Resolve(surfaces[i%len(surfaces)]); !ok {
			b.Fatal("unresolved")
		}
	}
}
