package nlu

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/lexicon"
)

// Resolution is the result of disambiguating a surface form: the canonical
// entity plus the linked-data URLs, mirroring the paper's Watson example
// where "US" resolves to the country with website, DBpedia, and Yago links.
type Resolution struct {
	EntityID string `json:"entityId"`
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Website  string `json:"website,omitempty"`
	DBpedia  string `json:"dbpedia,omitempty"`
	Yago     string `json:"yago,omitempty"`
}

// Disambiguator maps surface forms to canonical entities. It combines the
// built-in gazetteer with user-provided synonym tables (paper §3: "for
// domains for which there are no existing services or tools to help with
// entity disambiguation, users can provide their own files which identify
// synonyms which map to the same entity"). It is safe for concurrent use.
type Disambiguator struct {
	mu       sync.RWMutex
	aliases  map[string]string         // lower surface -> entity ID
	entities map[string]lexicon.Entity // entity ID -> entity
	custom   map[string]lexicon.Entity // user-defined entities
}

// NewDisambiguator returns a disambiguator over the built-in gazetteer.
func NewDisambiguator() *Disambiguator {
	return &Disambiguator{
		aliases:  lexicon.AliasIndex(),
		entities: lexicon.ByID(),
		custom:   make(map[string]lexicon.Entity),
	}
}

// AddSynonym maps a surface form to an entity ID. Unknown entity IDs create
// a new user-defined entity whose name is the ID's suffix.
func (d *Disambiguator) AddSynonym(surface, entityID string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.aliases[strings.ToLower(strings.TrimSpace(surface))] = entityID
	if _, ok := d.entities[entityID]; ok {
		return
	}
	if _, ok := d.custom[entityID]; ok {
		return
	}
	name := entityID
	if i := strings.LastIndex(entityID, ":"); i >= 0 {
		name = entityID[i+1:]
	}
	d.custom[entityID] = lexicon.Entity{ID: entityID, Name: name}
}

// LoadSynonyms reads a CSV synonym table (surface,entityID per row) and
// adds every mapping. Blank lines and rows with fewer than two fields are
// rejected.
func (d *Disambiguator) LoadSynonyms(r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	n := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("nlu: read synonyms: %w", err)
		}
		if len(rec) < 2 {
			return n, fmt.Errorf("nlu: synonym row %v needs surface,entityID", rec)
		}
		d.AddSynonym(rec[0], rec[1])
		n++
	}
}

// Resolve maps a surface form to its canonical entity. It reports false for
// unknown surfaces.
func (d *Disambiguator) Resolve(surface string) (Resolution, bool) {
	key := strings.ToLower(strings.TrimSpace(surface))
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.aliases[key]
	if !ok {
		return Resolution{}, false
	}
	e, ok := d.entities[id]
	if !ok {
		e, ok = d.custom[id]
		if !ok {
			return Resolution{EntityID: id}, true
		}
	}
	return Resolution{
		EntityID: e.ID,
		Name:     e.Name,
		Kind:     e.Kind.String(),
		Website:  e.Website,
		DBpedia:  e.DBpedia,
		Yago:     e.Yago,
	}, true
}

// CanonicalIDs disambiguates every surface in the list and returns the
// distinct canonical IDs, sorted. Surfaces that cannot be resolved map to
// "unknown:<lower surface>" — preserved so callers can see the residue.
// This is the operation that prevents "the proliferation of redundant
// database entries" the paper describes.
func (d *Disambiguator) CanonicalIDs(surfaces []string) []string {
	set := make(map[string]bool)
	for _, s := range surfaces {
		if r, ok := d.Resolve(s); ok {
			set[r.EntityID] = true
		} else {
			set["unknown:"+strings.ToLower(strings.TrimSpace(s))] = true
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
