package nlu

import (
	"math"
	"slices"
	"sort"
	"strings"
	"sync"

	"repro/internal/intern"
	"repro/internal/xrand"
)

// span is the internal token representation on the hot path: byte
// offsets, the interned ID of the lower-cased form, and precomputed
// classification flags. Compare Token, the public string-carrying shape.
type span struct {
	start, end int32
	id         uint32
	flags      uint8
}

const (
	fSentStart uint8 = 1 << iota // first token of a sentence
	fCapital                     // starts with an upper-case letter
	fStop                        // stopword
	fKeyword                     // eligible for keyword counting
)

// oovID is the shared ID for out-of-vocabulary tokens that never need a
// distinct identity (too short or numeric, so no counting path reads
// them): every consumer either checks a flag first or skips IDs outside
// the vocabulary, and gazetteer entries never carry it, so sharing one
// sentinel is safe and skips the per-word interning.
const oovID = ^uint32(0)

// localCap bounds the pooled overflow dict; past it the dict is reset at
// release so an adversarial stream of unique words cannot grow it
// without bound.
const localCap = 4096

// doc is the pooled per-document scratch: one allocation-heavy bundle
// reused across Analyze calls instead of rebuilt per document. Token IDs
// live in a three-segment namespace — [0, nVocab) is the shared
// vocabulary, [nVocab, nVocab+nExtra) the matcher's gazetteer overflow,
// and everything above that the per-document local dict — so every token
// has a unique ID and matching is pure integer comparison.
type doc struct {
	spans    []span
	local    *intern.Dict[string]
	extra    *intern.Frozen[string]
	nVocab   uint32
	nExtra   uint32
	lower    []byte
	counts   []int32  // keyword counts indexed by token ID, sparse-reset via touched
	touched  []uint32 // IDs with nonzero counts
	hits     []sentimentHit
	sentence []int32
	votes    []int32 // concept votes indexed by label
	kws      []kwPair
	entIDs   []string
	entSum   []float64
	entN     []int
	rng      *xrand.Source
	nOOV     int32 // tokens in the last scan not in the shared vocabulary
}

var docPool = sync.Pool{
	New: func() any {
		// A pool miss is the allocation the pooling exists to avoid;
		// count it so the reuse rate shows up on /metrics.
		if o := obsPtr.Load(); o != nil {
			o.allocs.Inc()
		}
		return &doc{local: intern.NewDict[string](), rng: xrand.New(0)}
	},
}

// scan tokenizes text into d's span buffer, lowering each token into a
// reusable byte buffer and resolving it to an ID: shared vocabulary
// first (zero-allocation byte lookup), then the matcher's overflow
// table, then the per-document dict (which allocates only the first time
// a given out-of-vocabulary word appears in the document).
func (d *doc) scan(text string, v *vocabTables, extra *intern.Frozen[string]) {
	d.extra = extra
	d.nVocab = uint32(v.dict.Len())
	d.nExtra = uint32(extra.Len())
	d.nOOV = 0
	scanWords(text, func(start, end int, sentenceStart bool) {
		sp := span{start: int32(start), end: int32(end)}
		if sentenceStart {
			sp.flags |= fSentStart
		}
		tok := text[start:end]
		if c := tok[0]; c >= 'A' && c <= 'Z' {
			sp.flags |= fCapital
		} else if c >= 0x80 && IsCapitalized(tok) {
			sp.flags |= fCapital
		}
		ascii := true
		for i := 0; i < len(tok); i++ {
			if tok[i] >= 0x80 {
				ascii = false
				break
			}
		}
		lower := d.lower[:0]
		if ascii {
			for i := 0; i < len(tok); i++ {
				c := tok[i]
				if c >= 'A' && c <= 'Z' {
					c += 'a' - 'A'
				}
				lower = append(lower, c)
			}
		} else {
			lower = append(lower, strings.ToLower(tok)...)
		}
		d.lower = lower

		eligible := len(lower) >= 3 && !numericBytes(lower)
		id, ok := intern.LookupBytes(v.dict, lower)
		if ok {
			if v.stop[id] {
				sp.flags |= fStop
				eligible = false
			}
		} else {
			d.nOOV++
			if eid, eok := intern.LookupBytes(extra, lower); eok {
				id = d.nVocab + eid
			} else if eligible {
				// Only keyword-eligible words need a distinct identity; the
				// local dict persists across pooled documents so a word costs
				// one allocation the first time this scratch doc ever sees it,
				// not once per document.
				lid, lok := intern.DictLookupBytes(d.local, lower)
				if !lok {
					lid = d.local.Intern(string(lower))
				}
				id = d.nVocab + d.nExtra + lid
			} else {
				id = oovID
			}
		}
		sp.id = id
		if eligible {
			sp.flags |= fKeyword
		}
		d.spans = append(d.spans, sp)
	})
}

func numericBytes(b []byte) bool {
	for _, c := range b {
		if c < '0' || c > '9' {
			return false
		}
	}
	return len(b) > 0
}

// release sparse-resets the scratch and returns the doc to the pool.
func (d *doc) release() {
	for _, id := range d.touched {
		d.counts[id] = 0
	}
	d.touched = d.touched[:0]
	d.spans = d.spans[:0]
	d.hits = d.hits[:0]
	d.sentence = d.sentence[:0]
	d.entIDs = d.entIDs[:0]
	d.entSum = d.entSum[:0]
	d.entN = d.entN[:0]
	if d.local.Len() > localCap {
		d.local.Reset()
	}
	d.extra = nil
	docPool.Put(d)
}

// value maps a token ID back through whichever of the three segments
// issued it.
func (d *doc) value(v *vocabTables, id uint32) string {
	if id < d.nVocab {
		return v.dict.Value(id)
	}
	if id < d.nVocab+d.nExtra {
		return d.extra.Value(id - d.nVocab)
	}
	return d.local.Value(id - d.nVocab - d.nExtra)
}

// tokenAt returns the index of the token containing byte offset off, or
// the first token after it, or the last token — the same answer the
// reference implementation's linear scan gives, found by binary search
// over the sorted non-overlapping spans.
func (d *doc) tokenAt(off int32) int {
	spans := d.spans
	i := sort.Search(len(spans), func(j int) bool { return spans[j].end > off })
	if i == len(spans) {
		return len(spans) - 1
	}
	return i
}

// heuristicMentions is HeuristicMentions on spans: capitalized runs not
// covered by a gazetteer mention become Unknown entities. covered must
// be sorted by Start and non-overlapping (the matcher's output order),
// which lets a two-pointer sweep replace the per-byte coverage map.
func (d *doc) heuristicMentions(text string, covered []Mention) []Mention {
	spans := d.spans
	mi := 0
	coveredAt := func(off int32) bool {
		for mi < len(covered) && int32(covered[mi].End) <= off {
			mi++
		}
		return mi < len(covered) && int32(covered[mi].Start) <= off
	}
	eligible := func(sp span) bool {
		return sp.flags&fCapital != 0 && sp.flags&fStop == 0 && !coveredAt(sp.start)
	}
	var out []Mention
	for i := 0; i < len(spans); {
		if !eligible(spans[i]) {
			i++
			continue
		}
		j := i
		for j < len(spans) && eligible(spans[j]) {
			j++
		}
		// A single sentence-initial capitalized word is ordinary sentence
		// case, not evidence of an entity.
		if j-i == 1 && spans[i].flags&fSentStart != 0 {
			i = j
			continue
		}
		start, end := int(spans[i].start), int(spans[j-1].end)
		surface := text[start:end]
		out = append(out, Mention{
			EntityID: "unknown:" + strings.ToLower(surface),
			Surface:  surface,
			Kind:     "Unknown",
			Start:    start,
			End:      end,
		})
		i = j
	}
	return out
}

// kwPair is the compact sort element for keyword ranking.
type kwPair struct {
	id    uint32
	count int32
}

// keywords is ExtractKeywords on spans: counts accumulate into the
// ID-indexed scratch slice (sparse-reset on release) instead of a
// per-document map. The comparator is a strict total order (texts are
// unique), so the output is identical regardless of accumulation order.
func (d *doc) keywords(v *vocabTables, k int) []Keyword {
	need := int(d.nVocab+d.nExtra) + d.local.Len()
	if need > len(d.counts) {
		d.counts = append(d.counts, make([]int32, need-len(d.counts))...)
	}
	total := 0
	for _, sp := range d.spans {
		if sp.flags&fKeyword == 0 {
			continue
		}
		if d.counts[sp.id] == 0 {
			d.touched = append(d.touched, sp.id)
		}
		d.counts[sp.id]++
		total++
	}
	if total == 0 || k <= 0 {
		return nil
	}
	norm := math.Log(float64(total) + math.E)
	kws := d.kws[:0]
	for _, id := range d.touched {
		kws = append(kws, kwPair{id: id, count: d.counts[id]})
	}
	// Sort compact (id, count) pairs instead of the 32-byte output
	// structs; equal scores are exactly equal counts (same norm), so
	// ordering by count then interned text reproduces the reference's
	// (score desc, text asc). Unstable generic sort, but the comparator
	// is a strict total order (IDs, hence texts, are unique), so the
	// result is the unique sorted permutation — identical to the
	// reference regardless of sort algorithm.
	slices.SortFunc(kws, func(a, b kwPair) int {
		if a.count != b.count {
			return int(b.count) - int(a.count)
		}
		return strings.Compare(d.value(v, a.id), d.value(v, b.id))
	})
	d.kws = kws
	if len(kws) > k {
		kws = kws[:k]
	}
	out := make([]Keyword, len(kws))
	for i, p := range kws {
		out[i] = Keyword{Text: d.value(v, p.id), Count: int(p.count), Score: float64(p.count) / norm}
	}
	return out
}

// scanSentiment fills d.hits with the sentiment-bearing tokens, reading
// weights and negation/intensification from the ID-indexed tables.
func (d *doc) scanSentiment(v *vocabTables) {
	d.hits = d.hits[:0]
	for i, sp := range d.spans {
		if sp.id >= d.nVocab {
			continue
		}
		w := v.weight[sp.id]
		if w == 0 {
			continue
		}
		factor := 1.0
		for back := 1; back <= 2 && i-back >= 0; back++ {
			pid := d.spans[i-back].id
			if pid >= d.nVocab {
				continue
			}
			if v.negator[pid] {
				factor = -factor
			} else if v.intensifier[pid] {
				factor *= 1.5
			}
		}
		d.hits = append(d.hits, sentimentHit{tokenIndex: i, weight: w * factor})
	}
}

// entitySentiments is EntitySentiments on spans and the precomputed hit
// list, with small parallel slices instead of a per-document accumulator
// map. Additions happen in exactly the reference order (mention by
// mention, hit by hit), keeping the floating-point sums bit-identical.
func (d *doc) entitySentiments(mentions []Mention) []EntitySentiment {
	if len(mentions) == 0 {
		return nil
	}
	for _, m := range mentions {
		idx := -1
		for x, id := range d.entIDs {
			if id == m.EntityID {
				idx = x
				break
			}
		}
		if idx < 0 {
			d.entIDs = append(d.entIDs, m.EntityID)
			d.entSum = append(d.entSum, 0)
			d.entN = append(d.entN, 0)
			idx = len(d.entIDs) - 1
		}
		d.entN[idx]++
		center := d.tokenAt(int32(m.Start))
		lo, hi := center-entitySentimentWindow, center+entitySentimentWindow
		for _, h := range d.hits {
			if h.tokenIndex >= lo && h.tokenIndex <= hi {
				d.entSum[idx] += h.weight
			}
		}
	}
	out := make([]EntitySentiment, 0, len(d.entIDs))
	for x, id := range d.entIDs {
		out = append(out, EntitySentiment{
			EntityID: id,
			Score:    math.Tanh(d.entSum[x] / (2 * float64(d.entN[x]))),
			Mentions: d.entN[x],
		})
	}
	return out
}

// concepts is ExtractConcepts on spans: votes accumulate into a dense
// label-indexed slice (the label space is the small fixed taxonomy).
func (d *doc) concepts(v *vocabTables, mentions []Mention, k int) []Concept {
	if len(d.votes) < len(v.conceptLabels) {
		d.votes = make([]int32, len(v.conceptLabels))
	}
	votes := d.votes[:len(v.conceptLabels)]
	for i := range votes {
		votes[i] = 0
	}
	n := 0
	for _, sp := range d.spans {
		if sp.id >= d.nVocab {
			continue
		}
		if t := v.topicOf[sp.id]; t != 0 {
			if votes[t-1] == 0 {
				n++
			}
			votes[t-1]++
		}
	}
	for _, m := range mentions {
		if t := v.kindOf[m.Kind]; t != 0 {
			if votes[t-1] == 0 {
				n++
			}
			votes[t-1]++
		}
	}
	if n == 0 || k <= 0 {
		return nil
	}
	maxVotes := int32(0)
	for _, c := range votes {
		if c > maxVotes {
			maxVotes = c
		}
	}
	out := make([]Concept, 0, n)
	for x, c := range votes {
		if c == 0 {
			continue
		}
		out = append(out, Concept{Label: v.conceptLabels[x], Confidence: float64(c) / float64(maxVotes)})
	}
	// Labels are unique, so this comparator is a strict total order and
	// the unstable sort is deterministic.
	slices.SortFunc(out, func(a, b Concept) int {
		if a.Confidence != b.Confidence {
			if a.Confidence > b.Confidence {
				return -1
			}
			return 1
		}
		return strings.Compare(a.Label, b.Label)
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// relations is ExtractRelations on spans with the compiled trigger
// table: sentence IDs come from the span flags, mention positions from
// binary search, and trigger words from a vocabulary-indexed predicate
// table.
func (d *doc) relations(v *vocabTables, text string, mentions []Mention) []Relation {
	if len(mentions) < 2 {
		return nil
	}
	spans := d.spans
	d.sentence = d.sentence[:0]
	sid := int32(0)
	for i, sp := range spans {
		if sp.flags&fSentStart != 0 && i > 0 {
			sid++
		}
		d.sentence = append(d.sentence, sid)
	}
	var out []Relation
	for i := 0; i < len(mentions); i++ {
		for j := i + 1; j < len(mentions); j++ {
			a, b := mentions[i], mentions[j]
			if a.EntityID == b.EntityID {
				continue
			}
			ta, tb := d.tokenAt(int32(a.Start)), d.tokenAt(int32(b.Start))
			if d.sentence[ta] != d.sentence[tb] {
				continue
			}
			lo, hi := ta, tb
			if lo > hi {
				lo, hi = hi, lo
			}
			if hi-lo > maxTriggerDistance {
				continue
			}
			for k := lo + 1; k < hi; k++ {
				id := spans[k].id
				if id >= d.nVocab {
					continue
				}
				t := v.triggerOf[id]
				if t == 0 {
					continue
				}
				distance := hi - lo
				conf := 1 - float64(distance-1)/float64(maxTriggerDistance+4)
				if conf < 0.1 {
					conf = 0.1
				}
				subj, obj := a, b
				if ta > tb {
					subj, obj = b, a
				}
				out = append(out, Relation{
					SubjectID:  subj.EntityID,
					Predicate:  v.predicates[t-1],
					ObjectID:   obj.EntityID,
					Trigger:    text[spans[k].start:spans[k].end],
					Confidence: conf,
				})
				break // one relation per mention pair
			}
		}
	}
	// Deliberately sort.Slice, not slices.SortFunc: the key
	// (subject, predicate, object) is NOT unique — two mentions of the
	// same entity pair tie while differing in Trigger — so the output
	// order of ties depends on the sort algorithm, which must stay
	// byte-for-byte the reference's.
	sort.Slice(out, func(x, y int) bool {
		if out[x].SubjectID != out[y].SubjectID {
			return out[x].SubjectID < out[y].SubjectID
		}
		if out[x].Predicate != out[y].Predicate {
			return out[x].Predicate < out[y].Predicate
		}
		return out[x].ObjectID < out[y].ObjectID
	})
	return out
}
