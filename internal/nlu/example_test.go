package nlu_test

import (
	"fmt"

	"repro/internal/nlu"
)

func ExampleEngine_Analyze() {
	engine := nlu.NewEngine(nlu.ProfileAlpha)
	a := engine.Analyze("Acme Corporation reported excellent growth in Germany.")
	fmt.Println(a.EntityIDs())
	fmt.Println(a.Sentiment > 0)
	// Output:
	// [company:acme country:de]
	// true
}

func ExampleDisambiguator_Resolve() {
	d := nlu.NewDisambiguator()
	// The paper's running example: many surface forms, one country.
	for _, surface := range []string{"USA", "United States of America", "the states"} {
		r, _ := d.Resolve(surface)
		fmt.Println(surface, "->", r.EntityID)
	}
	// Output:
	// USA -> country:us
	// United States of America -> country:us
	// the states -> country:us
}
