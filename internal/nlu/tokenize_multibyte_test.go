package nlu

// Tests for the multibyte tokenizer fix: the old scanner treated every
// byte >= 0x80 as a word byte, so UTF-8 punctuation glued adjacent words
// into one token and "…" never ended a sentence. These cases pin the
// corrected rune-aware behavior.

import (
	"reflect"
	"testing"
)

func TestTokenizeEmDashSeparates(t *testing.T) {
	tokens := Tokenize("profits—losses")
	want := []string{"profits", "losses"}
	if !reflect.DeepEqual(tokenTexts(tokens), want) {
		t.Errorf("tokens = %v, want %v", tokenTexts(tokens), want)
	}
}

func TestTokenizeEllipsisEndsSentence(t *testing.T) {
	tokens := Tokenize("It faded… Then it returned")
	var starts []string
	for _, tok := range tokens {
		if tok.SentenceStart {
			starts = append(starts, tok.Text)
		}
	}
	want := []string{"It", "Then"}
	if !reflect.DeepEqual(starts, want) {
		t.Errorf("sentence starts = %v, want %v", starts, want)
	}
}

func TestTokenizeCurlyQuotesSeparate(t *testing.T) {
	tokens := Tokenize("“Profit” and ‘loss’ here")
	want := []string{"Profit", "and", "loss", "here"}
	if !reflect.DeepEqual(tokenTexts(tokens), want) {
		t.Errorf("tokens = %v, want %v", tokenTexts(tokens), want)
	}
}

func TestTokenizeTypographicApostropheInternal(t *testing.T) {
	tokens := Tokenize("It’s the People’s republic’")
	want := []string{"It’s", "the", "People’s", "republic"}
	if !reflect.DeepEqual(tokenTexts(tokens), want) {
		t.Errorf("tokens = %v, want %v", tokenTexts(tokens), want)
	}
	if tokens[0].Lower != "it’s" {
		t.Errorf("Lower = %q", tokens[0].Lower)
	}
}

func TestTokenizeNonASCIILetters(t *testing.T) {
	text := "Zürichança 東京 café"
	tokens := Tokenize(text)
	want := []string{"Zürich" + "ança", "東京", "café"}
	if !reflect.DeepEqual(tokenTexts(tokens), want) {
		t.Errorf("tokens = %v, want %v", tokenTexts(tokens), want)
	}
	for _, tok := range tokens {
		if text[tok.Start:tok.End] != tok.Text {
			t.Errorf("offsets wrong for %q", tok.Text)
		}
	}
	if tokens[0].Lower != "züricha"+"nça" {
		t.Errorf("Lower = %q", tokens[0].Lower)
	}
}

func TestSentencesEllipsis(t *testing.T) {
	got := Sentences("One fades… Two returns. Three")
	want := []string{"One fades…", "Two returns.", "Three"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Sentences = %v, want %v", got, want)
	}
}

func TestTokenizeInvalidUTF8DoesNotGlue(t *testing.T) {
	// A lone 0x80 continuation byte decodes as RuneError, which is not a
	// letter: it must separate the words, not join them.
	tokens := Tokenize("ab\x80cd")
	want := []string{"ab", "cd"}
	if !reflect.DeepEqual(tokenTexts(tokens), want) {
		t.Errorf("tokens = %v, want %v", tokenTexts(tokens), want)
	}
}
