package nlu

import (
	"testing"

	"repro/internal/lexicon"
)

func docScore(text string) float64 {
	return DocumentSentiment(Tokenize(text), lexicon.SentimentWeights())
}

func TestDocumentSentimentPolarity(t *testing.T) {
	pos := docScore("The excellent results were praised as a remarkable success with strong growth.")
	neg := docScore("The terrible losses and the alarming decline caused a dismal crisis.")
	neutral := docScore("The committee met on Tuesday to discuss the schedule.")
	if pos <= 0 {
		t.Errorf("positive doc scored %v", pos)
	}
	if neg >= 0 {
		t.Errorf("negative doc scored %v", neg)
	}
	if neutral != 0 {
		t.Errorf("neutral doc scored %v", neutral)
	}
}

func TestSentimentBounded(t *testing.T) {
	long := ""
	for i := 0; i < 200; i++ {
		long += "excellent outstanding great "
	}
	if s := docScore(long); s > 1 || s < -1 {
		t.Errorf("score %v out of [-1,1]", s)
	}
}

func TestNegationFlips(t *testing.T) {
	plain := docScore("The product is good.")
	negated := docScore("The product is not good.")
	if plain <= 0 {
		t.Fatalf("baseline positive = %v", plain)
	}
	if negated >= 0 {
		t.Errorf("negated score = %v, want negative", negated)
	}
}

func TestIntensifierAmplifies(t *testing.T) {
	plain := docScore("The result was good.")
	strong := docScore("The result was very good.")
	if strong <= plain {
		t.Errorf("intensified %v <= plain %v", strong, plain)
	}
}

func TestEntitySentimentSeparation(t *testing.T) {
	// One entity praised, the other condemned, far apart in the text.
	text := "Acme Corporation reported excellent profits and strong impressive growth this quarter, winning praise. " +
		"Meanwhile analysts watched the markets with detached interest across many regions and several sectors overall. " +
		"Globex Industries suffered terrible losses and a dismal decline amid the deepening scandal."
	tokens := Tokenize(text)
	m := NewMatcher(lexicon.AllEntities())
	mentions := m.Match(text, tokens)
	if len(mentions) != 2 {
		t.Fatalf("mentions = %+v", mentions)
	}
	es := EntitySentiments(tokens, mentions, lexicon.SentimentWeights())
	if len(es) != 2 {
		t.Fatalf("entity sentiments = %+v", es)
	}
	byID := map[string]float64{}
	for _, e := range es {
		byID[e.EntityID] = e.Score
	}
	if byID["company:acme"] <= 0 {
		t.Errorf("Acme sentiment = %v, want positive", byID["company:acme"])
	}
	if byID["company:globex"] >= 0 {
		t.Errorf("Globex sentiment = %v, want negative", byID["company:globex"])
	}
}

func TestEntitySentimentMentionCounts(t *testing.T) {
	text := "France grew. France prospered. Germany stalled."
	tokens := Tokenize(text)
	m := NewMatcher(lexicon.AllEntities())
	mentions := m.Match(text, tokens)
	es := EntitySentiments(tokens, mentions, lexicon.SentimentWeights())
	counts := map[string]int{}
	for _, e := range es {
		counts[e.EntityID] = e.Mentions
	}
	if counts["country:fr"] != 2 || counts["country:de"] != 1 {
		t.Errorf("mention counts = %v", counts)
	}
}

func TestEntitySentimentEmpty(t *testing.T) {
	tokens := Tokenize("Nothing notable here.")
	if es := EntitySentiments(tokens, nil, lexicon.SentimentWeights()); es != nil {
		t.Errorf("EntitySentiments = %v, want nil", es)
	}
}
