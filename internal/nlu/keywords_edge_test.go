package nlu_test

// Edge-case coverage for ExtractKeywords and ExtractConcepts, asserted
// against both the live package and the frozen nluref reference so the
// public string-based helpers and the engines' interned path can never
// drift apart on the boundaries: all-stopword documents, k=0, and the
// deterministic alphabetical tie-break.

import (
	"reflect"
	"testing"

	"repro/internal/lexicon"
	"repro/internal/nlu"
	"repro/internal/nlu/nluref"
)

// keywordsBoth runs both implementations over the same text and fails if
// they disagree, returning the live result.
func keywordsBoth(t *testing.T, text string, k int) []nlu.Keyword {
	t.Helper()
	stop := lexicon.StopwordSet()
	got := nlu.ExtractKeywords(nlu.Tokenize(text), stop, k)
	refRaw := nluref.ExtractKeywords(nluref.Tokenize(text), stop, k)
	ref := make([]nlu.Keyword, len(refRaw))
	for i, kw := range refRaw {
		ref[i] = nlu.Keyword(kw)
	}
	if len(refRaw) == 0 {
		ref = nil
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("keyword divergence for %q k=%d:\n got %+v\n ref %+v", text, k, got, ref)
	}
	return got
}

func conceptsBoth(t *testing.T, text string, k int) []nlu.Concept {
	t.Helper()
	tokens := nlu.Tokenize(text)
	got := nlu.ExtractConcepts(tokens, nil, k)
	refRaw := nluref.ExtractConcepts(nluref.Tokenize(text), nil, k)
	ref := make([]nlu.Concept, len(refRaw))
	for i, c := range refRaw {
		ref[i] = nlu.Concept(c)
	}
	if len(refRaw) == 0 {
		ref = nil
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("concept divergence for %q k=%d:\n got %+v\n ref %+v", text, k, got, ref)
	}
	return got
}

func TestExtractKeywordsAllStopwords(t *testing.T) {
	if got := keywordsBoth(t, "the and of with from they were been", 10); got != nil {
		t.Errorf("all-stopword doc produced keywords: %+v", got)
	}
}

func TestExtractKeywordsShortAndNumericOnly(t *testing.T) {
	if got := keywordsBoth(t, "a an 42 7 99 xy z 2026", 10); got != nil {
		t.Errorf("short/numeric doc produced keywords: %+v", got)
	}
}

func TestExtractKeywordsZeroK(t *testing.T) {
	if got := keywordsBoth(t, "markets rallied strongly today", 0); got != nil {
		t.Errorf("k=0 produced keywords: %+v", got)
	}
	if got := keywordsBoth(t, "markets rallied strongly today", -3); got != nil {
		t.Errorf("k<0 produced keywords: %+v", got)
	}
}

func TestExtractKeywordsTieBreakAlphabetical(t *testing.T) {
	// Every content word appears exactly once: scores tie everywhere, so
	// the ordering must be purely alphabetical.
	got := keywordsBoth(t, "zebra apple mango kiwi banana", 10)
	want := []string{"apple", "banana", "kiwi", "mango", "zebra"}
	texts := make([]string, len(got))
	for i, kw := range got {
		texts[i] = kw.Text
	}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("tie-break order = %v, want %v", texts, want)
	}
}

func TestExtractKeywordsTruncationAfterSort(t *testing.T) {
	// "alpha..." words appear twice, the rest once; k=2 must keep the two
	// doubled words, not the first two seen.
	got := keywordsBoth(t, "zulu yankee xray alphaone alphaone alphatwo alphatwo", 2)
	if len(got) != 2 || got[0].Text != "alphaone" || got[1].Text != "alphatwo" {
		t.Errorf("top-2 = %+v", got)
	}
	if got[0].Count != 2 || got[1].Count != 2 {
		t.Errorf("counts = %+v", got)
	}
}

func TestExtractConceptsEmptyAndZeroK(t *testing.T) {
	if got := conceptsBoth(t, "plain words without any taxonomy triggers", 5); got != nil {
		t.Errorf("topicless doc produced concepts: %+v", got)
	}
	if got := conceptsBoth(t, "technology market climate", 0); got != nil {
		t.Errorf("k=0 produced concepts: %+v", got)
	}
}

func TestExtractConceptsTieBreakAlphabetical(t *testing.T) {
	// One vote each for /economics (trade), /finance (market), and
	// /technology (software): equal confidence 1.0, alphabetical order.
	got := conceptsBoth(t, "trade market software", 5)
	want := []string{"/economics", "/finance", "/technology"}
	labels := make([]string, len(got))
	for i, c := range got {
		labels[i] = c.Label
		if c.Confidence != 1.0 {
			t.Errorf("confidence for %s = %v, want 1.0", c.Label, c.Confidence)
		}
	}
	if !reflect.DeepEqual(labels, want) {
		t.Errorf("tie-break order = %v, want %v", labels, want)
	}
}

func TestExtractConceptsMentionKindVotes(t *testing.T) {
	tokens := nlu.Tokenize("nothing topical here")
	mentions := []nlu.Mention{
		{EntityID: "country:de", Kind: "Country"},
		{EntityID: "company:acme", Kind: "Company"},
		{EntityID: "country:fr", Kind: "Country"},
	}
	got := nlu.ExtractConcepts(tokens, mentions, 5)
	refRaw := nluref.ExtractConcepts(nluref.Tokenize("nothing topical here"), []nluref.Mention{
		{EntityID: "country:de", Kind: "Country"},
		{EntityID: "company:acme", Kind: "Company"},
		{EntityID: "country:fr", Kind: "Country"},
	}, 5)
	if len(got) != len(refRaw) {
		t.Fatalf("len %d != ref %d", len(got), len(refRaw))
	}
	for i := range got {
		if got[i] != nlu.Concept(refRaw[i]) {
			t.Fatalf("concept %d: %+v != %+v", i, got[i], refRaw[i])
		}
	}
	if len(got) != 2 || got[0].Label != "/geography/countries" || got[0].Confidence != 1.0 {
		t.Errorf("concepts = %+v", got)
	}
	if got[1].Label != "/business/companies" || got[1].Confidence != 0.5 {
		t.Errorf("concepts = %+v", got)
	}
}
