// Package nluref is the frozen reference implementation of the NLU
// substrate: a verbatim copy of internal/nlu as it stood before the
// interned hot path landed (PR 7), kept as the equivalence oracle the
// same way rdfref and searchref pin their optimized packages. The
// randomized oracle tests in internal/nlu assert that the rebuilt
// Engine.Analyze produces bit-identical Analysis values to this package
// across every profile, and the benchmark guards use it as the
// before-side baseline. Do not optimize or fix this package; its value
// is that it does not change. (The one behavior the oracle does NOT pin
// is multibyte tokenization, where nlu deliberately diverges to fix the
// byte-oriented scanner; the oracle corpus is ASCII.)
package nluref

import (
	"strings"
	"unicode"
)

// Token is one word-level token with its byte offsets in the source text.
type Token struct {
	// Text is the token as it appears in the source.
	Text string
	// Lower is the lower-cased form, precomputed for matching.
	Lower string
	// Start and End are byte offsets into the source ([Start, End)).
	Start int
	End   int
	// SentenceStart marks the first token of a sentence.
	SentenceStart bool
}

// Tokenize splits text into word tokens, recording offsets and sentence
// boundaries. Tokens are maximal runs of letters, digits, and internal
// apostrophes; everything else separates tokens.
func Tokenize(text string) []Token {
	var tokens []Token
	sentenceStart := true
	i := 0
	n := len(text)
	for i < n {
		r := rune(text[i])
		// ASCII fast path covers the corpus; fall back for multibyte.
		if !isWordByte(text[i]) {
			if r == '.' || r == '!' || r == '?' {
				sentenceStart = true
			}
			i++
			continue
		}
		start := i
		for i < n && (isWordByte(text[i]) || (text[i] == '\'' && i+1 < n && isWordByte(text[i+1]))) {
			i++
		}
		tok := text[start:i]
		tokens = append(tokens, Token{
			Text:          tok,
			Lower:         strings.ToLower(tok),
			Start:         start,
			End:           i,
			SentenceStart: sentenceStart,
		})
		sentenceStart = false
	}
	return tokens
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b >= 0x80
}

// Sentences splits text into sentences on ., !, ? boundaries, trimming
// whitespace and dropping empties.
func Sentences(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		s := strings.TrimSpace(b.String())
		if s != "" {
			out = append(out, s)
		}
		b.Reset()
	}
	for _, r := range text {
		b.WriteRune(r)
		if r == '.' || r == '!' || r == '?' {
			flush()
		}
	}
	flush()
	return out
}

// IsCapitalized reports whether the token begins with an upper-case letter.
func IsCapitalized(tok string) bool {
	for _, r := range tok {
		return unicode.IsUpper(r)
	}
	return false
}
