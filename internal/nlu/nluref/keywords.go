package nluref

import (
	"math"
	"sort"
)

// ExtractKeywords returns the top-k keywords by score. The score is term
// frequency damped by log-length so long documents don't drown short ones;
// stopwords, short tokens, and numbers are excluded. Ties break
// alphabetically for determinism.
func ExtractKeywords(tokens []Token, stop map[string]bool, k int) []Keyword {
	counts := make(map[string]int)
	total := 0
	for _, t := range tokens {
		if len(t.Lower) < 3 || stop[t.Lower] || isNumeric(t.Lower) {
			continue
		}
		counts[t.Lower]++
		total++
	}
	if total == 0 || k <= 0 {
		return nil
	}
	norm := math.Log(float64(total) + math.E)
	out := make([]Keyword, 0, len(counts))
	for w, c := range counts {
		out = append(out, Keyword{Text: w, Count: c, Score: float64(c) / norm})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Text < out[j].Text
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func isNumeric(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}

// topicConcepts maps topic trigger words to taxonomy labels for concept
// extraction.
var topicConcepts = map[string]string{
	"technology": "/technology", "software": "/technology", "hardware": "/technology",
	"artificial": "/technology/ai", "intelligence": "/technology/ai", "algorithm": "/technology/ai",
	"cloud": "/technology/cloud", "computing": "/technology/cloud", "data": "/technology/data",
	"market": "/finance", "stock": "/finance", "shares": "/finance", "earnings": "/finance",
	"revenue": "/finance", "investor": "/finance", "investment": "/finance", "bank": "/finance",
	"economy": "/economics", "inflation": "/economics", "trade": "/economics", "currency": "/economics",
	"health": "/health", "hospital": "/health", "medicine": "/health", "vaccine": "/health",
	"climate": "/environment", "energy": "/environment/energy", "solar": "/environment/energy",
	"election": "/politics", "parliament": "/politics", "government": "/politics", "minister": "/politics",
	"education": "/education", "university": "/education", "student": "/education",
	"transport": "/transport", "aviation": "/transport", "railway": "/transport", "shipping": "/transport",
}

// kindConcepts maps mention kinds to taxonomy labels.
var kindConcepts = map[string]string{
	"Country": "/geography/countries",
	"Company": "/business/companies",
	"Person":  "/people",
	"City":    "/geography/cities",
}

// ExtractConcepts derives taxonomy labels from the document's topic words
// and entity kinds, with confidence proportional to evidence count.
func ExtractConcepts(tokens []Token, mentions []Mention, k int) []Concept {
	votes := make(map[string]int)
	for _, t := range tokens {
		if label, ok := topicConcepts[t.Lower]; ok {
			votes[label]++
		}
	}
	for _, m := range mentions {
		if label, ok := kindConcepts[m.Kind]; ok {
			votes[label]++
		}
	}
	if len(votes) == 0 || k <= 0 {
		return nil
	}
	maxVotes := 0
	for _, v := range votes {
		if v > maxVotes {
			maxVotes = v
		}
	}
	out := make([]Concept, 0, len(votes))
	for label, v := range votes {
		out = append(out, Concept{Label: label, Confidence: float64(v) / float64(maxVotes)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Label < out[j].Label
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
