package nluref

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/lexicon"
	"repro/internal/service"
	"repro/internal/xrand"
)

// Profile tunes an engine's quality characteristics. Real NLU vendors
// differ in precision, recall, and noise; the three stock profiles below
// stand in for competing services so the SDK's ranking, result comparison,
// and consensus aggregation have genuine quality differences to observe.
type Profile struct {
	// Name identifies the engine ("nlu-alpha" etc.).
	Name string
	// UseHeuristics enables capitalized-run detection on top of the
	// gazetteer: more recall, more false positives.
	UseHeuristics bool
	// DropRate is the probability of missing a true gazetteer mention.
	DropRate float64
	// SpuriousRate is the probability per sentence of emitting a
	// fabricated mention.
	SpuriousRate float64
	// SentimentNoise is the standard deviation of Gaussian noise added
	// to sentiment scores.
	SentimentNoise float64
	// MaxKeywords bounds keyword output. 0 means 10.
	MaxKeywords int
	// MaxConcepts bounds concept output. 0 means 5.
	MaxConcepts int
	// Seed decorrelates this engine's noise from other engines'.
	Seed int64
}

// Stock profiles: alpha is the precision-oriented vendor, beta the
// recall-oriented one, gamma the cheap noisy one.
var (
	ProfileAlpha = Profile{Name: "nlu-alpha", UseHeuristics: false, DropRate: 0.02, SentimentNoise: 0.02, Seed: 101}
	ProfileBeta  = Profile{Name: "nlu-beta", UseHeuristics: true, DropRate: 0.08, SpuriousRate: 0.05, SentimentNoise: 0.05, Seed: 202}
	ProfileGamma = Profile{Name: "nlu-gamma", UseHeuristics: true, DropRate: 0.25, SpuriousRate: 0.15, SentimentNoise: 0.15, Seed: 303}
)

// Engine analyzes documents according to its profile. It is immutable after
// construction and safe for concurrent use: per-document noise derives from
// a hash of the text, so the same document always produces the same
// analysis (the behaviour that makes caching semantically sound).
type Engine struct {
	profile Profile
	matcher *Matcher
	stop    map[string]bool
	weights map[string]float64
}

// NewEngine returns an engine with the given profile over the built-in
// gazetteer and lexicons.
func NewEngine(profile Profile) *Engine {
	if profile.MaxKeywords <= 0 {
		profile.MaxKeywords = 10
	}
	if profile.MaxConcepts <= 0 {
		profile.MaxConcepts = 5
	}
	return &Engine{
		profile: profile,
		matcher: NewMatcher(lexicon.AllEntities()),
		stop:    lexicon.StopwordSet(),
		weights: lexicon.SentimentWeights(),
	}
}

// Profile returns the engine's profile.
func (e *Engine) Profile() Profile { return e.profile }

// docRNG derives a deterministic noise source from the engine seed and the
// document content.
func (e *Engine) docRNG(text string) *xrand.Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(text))
	return xrand.New(e.profile.Seed ^ int64(h.Sum64()))
}

// Analyze performs the full analysis of one document.
func (e *Engine) Analyze(text string) Analysis {
	tokens := Tokenize(text)
	rng := e.docRNG(text)

	mentions := e.matcher.Match(text, tokens)
	// Profile-driven recall loss.
	if e.profile.DropRate > 0 {
		kept := mentions[:0]
		for _, m := range mentions {
			if !rng.Bernoulli(e.profile.DropRate) {
				kept = append(kept, m)
			}
		}
		mentions = kept
	}
	if e.profile.UseHeuristics {
		mentions = append(mentions, HeuristicMentions(text, tokens, mentions, e.stop)...)
	}
	// Profile-driven false positives: fabricate a mention per sentence
	// with some probability.
	if e.profile.SpuriousRate > 0 {
		for _, s := range Sentences(text) {
			if rng.Bernoulli(e.profile.SpuriousRate) {
				words := strings.Fields(s)
				if len(words) == 0 {
					continue
				}
				w := words[rng.Intn(len(words))]
				w = strings.Trim(w, ".,!?;:'\"")
				if len(w) < 3 {
					continue
				}
				mentions = append(mentions, Mention{
					EntityID: "unknown:" + strings.ToLower(w),
					Surface:  w,
					Kind:     "Unknown",
				})
			}
		}
	}
	sortMentions(mentions)

	sentiment := DocumentSentiment(tokens, e.weights)
	if e.profile.SentimentNoise > 0 {
		sentiment += rng.NormFloat64() * e.profile.SentimentNoise
		if sentiment > 1 {
			sentiment = 1
		}
		if sentiment < -1 {
			sentiment = -1
		}
	}

	return Analysis{
		Engine:           e.profile.Name,
		Entities:         mentions,
		Keywords:         ExtractKeywords(tokens, e.stop, e.profile.MaxKeywords),
		Sentiment:        sentiment,
		EntitySentiments: EntitySentiments(tokens, mentions, e.weights),
		Concepts:         ExtractConcepts(tokens, mentions, e.profile.MaxConcepts),
		Relations:        ExtractRelations(text, tokens, mentions, nil),
		Language:         "en",
	}
}

func sortMentions(ms []Mention) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Start < ms[j-1].Start; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// Service wraps the engine as a service.Service understanding op "analyze"
// (field Text carries the document). info supplies the metadata under which
// the engine is registered.
func (e *Engine) Service(info service.Info) service.Service {
	return service.Func{
		Meta: info,
		Fn: func(_ context.Context, req service.Request) (service.Response, error) {
			switch req.Op {
			case "analyze", "":
				if req.Text == "" {
					return service.Response{}, fmt.Errorf("nlu: empty document: %w", service.ErrBadRequest)
				}
				return e.Analyze(req.Text).Encode()
			default:
				return service.Response{}, fmt.Errorf("nlu: unsupported op %q: %w", req.Op, service.ErrBadRequest)
			}
		},
	}
}
