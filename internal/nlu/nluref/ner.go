package nluref

import (
	"strings"

	"repro/internal/lexicon"
)

// gazEntry is one compiled surface form.
type gazEntry struct {
	tokens    []string // lower-cased token sequence
	exactCase string   // required exact form for short acronyms, "" otherwise
	entityID  string
	kind      string
}

// Matcher performs gazetteer-based NER with longest-match-wins semantics.
// Construct once with NewMatcher and share; it is immutable and safe for
// concurrent use.
type Matcher struct {
	// byFirst maps the first (lower-cased) token of each surface form to
	// its candidate entries, longest first.
	byFirst map[string][]gazEntry
}

// acronymMaxLen bounds surface forms that require an exact-case match:
// "US" must not match the pronoun "us", but "germany" may match "Germany".
const acronymMaxLen = 3

// NewMatcher compiles the given gazetteer entities into a matcher.
func NewMatcher(entities []lexicon.Entity) *Matcher {
	m := &Matcher{byFirst: make(map[string][]gazEntry)}
	for _, e := range entities {
		for _, surface := range e.Surface() {
			words := strings.Fields(surface)
			if len(words) == 0 {
				continue
			}
			entry := gazEntry{
				tokens:   make([]string, len(words)),
				entityID: e.ID,
				kind:     e.Kind.String(),
			}
			for i, w := range words {
				entry.tokens[i] = strings.ToLower(w)
			}
			if len(words) == 1 && len(words[0]) <= acronymMaxLen && words[0] == strings.ToUpper(words[0]) {
				entry.exactCase = words[0]
			}
			first := entry.tokens[0]
			m.byFirst[first] = append(m.byFirst[first], entry)
		}
	}
	// Longest surface first so "United States of America" beats "United
	// States".
	for first, entries := range m.byFirst {
		sortByLenDesc(entries)
		m.byFirst[first] = entries
	}
	return m
}

func sortByLenDesc(entries []gazEntry) {
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && len(entries[j].tokens) > len(entries[j-1].tokens); j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
}

// Match finds gazetteer entity mentions in the token stream, scanning left
// to right with longest-match-wins and no overlaps.
func (m *Matcher) Match(text string, tokens []Token) []Mention {
	var out []Mention
	for i := 0; i < len(tokens); {
		entries := m.byFirst[tokens[i].Lower]
		matched := false
		for _, e := range entries {
			if i+len(e.tokens) > len(tokens) {
				continue
			}
			if e.exactCase != "" && tokens[i].Text != e.exactCase {
				continue
			}
			ok := true
			for j, want := range e.tokens {
				if tokens[i+j].Lower != want {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			start := tokens[i].Start
			end := tokens[i+len(e.tokens)-1].End
			out = append(out, Mention{
				EntityID: e.entityID,
				Surface:  text[start:end],
				Kind:     e.kind,
				Start:    start,
				End:      end,
			})
			i += len(e.tokens)
			matched = true
			break
		}
		if !matched {
			i++
		}
	}
	return out
}

// HeuristicMentions finds capitalized token runs that the gazetteer did not
// match and reports them as Unknown entities. Sentence-initial single
// capitalized words are skipped (ordinary sentence case), as are stopwords
// — this is the recall-over-precision half of NER that some engine
// profiles enable.
func HeuristicMentions(text string, tokens []Token, covered []Mention, stop map[string]bool) []Mention {
	coveredAt := make(map[int]bool)
	for _, m := range covered {
		for b := m.Start; b < m.End; b++ {
			coveredAt[b] = true
		}
	}
	var out []Mention
	for i := 0; i < len(tokens); {
		t := tokens[i]
		if !IsCapitalized(t.Text) || coveredAt[t.Start] || stop[t.Lower] {
			i++
			continue
		}
		// Collect the full capitalized run.
		j := i
		for j < len(tokens) && IsCapitalized(tokens[j].Text) && !coveredAt[tokens[j].Start] && !stop[tokens[j].Lower] {
			j++
		}
		runLen := j - i
		// A single sentence-initial capitalized word is ordinary
		// sentence case, not evidence of an entity.
		if runLen == 1 && t.SentenceStart {
			i = j
			continue
		}
		start := tokens[i].Start
		end := tokens[j-1].End
		surface := text[start:end]
		out = append(out, Mention{
			EntityID: "unknown:" + strings.ToLower(surface),
			Surface:  surface,
			Kind:     "Unknown",
			Start:    start,
			End:      end,
		})
		i = j
	}
	return out
}
