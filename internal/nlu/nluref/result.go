package nluref

import (
	"encoding/json"
	"fmt"

	"repro/internal/service"
)

// Mention is one recognized entity occurrence.
type Mention struct {
	// EntityID is the canonical gazetteer ID, or "unknown:<surface>" for
	// heuristic detections with no gazetteer entry.
	EntityID string `json:"entityId"`
	// Surface is the text as matched.
	Surface string `json:"surface"`
	// Kind is the NER label (Country, Company, Person, Unknown).
	Kind string `json:"kind"`
	// Start and End are byte offsets into the analyzed text.
	Start int `json:"start"`
	End   int `json:"end"`
}

// Keyword is one extracted keyword. Keywords are not disambiguated (paper
// §2.2: "named entities are disambiguated, while keywords are not").
type Keyword struct {
	Text  string  `json:"text"`
	Count int     `json:"count"`
	Score float64 `json:"score"`
}

// EntitySentiment is the aggregated sentiment toward one entity within a
// document (paper §2.2: "it is often more meaningful to obtain sentiment
// scores for individual entities rather than an entire document").
type EntitySentiment struct {
	EntityID string  `json:"entityId"`
	Score    float64 `json:"score"`
	Mentions int     `json:"mentions"`
}

// Concept is a taxonomy label assigned to the document.
type Concept struct {
	Label      string  `json:"label"`
	Confidence float64 `json:"confidence"`
}

// Analysis is the full result of analyzing one document — the typed
// equivalent of the JSON a cognitive service returns.
type Analysis struct {
	// Engine names the service that produced the analysis.
	Engine string `json:"engine"`
	// Entities are the recognized entity mentions in document order.
	Entities []Mention `json:"entities"`
	// Keywords are the top extracted keywords, best first.
	Keywords []Keyword `json:"keywords"`
	// Sentiment is the document-level sentiment in [-1, 1].
	Sentiment float64 `json:"sentiment"`
	// EntitySentiments are per-entity scores for entities mentioned in
	// the document.
	EntitySentiments []EntitySentiment `json:"entitySentiments"`
	// Concepts are taxonomy labels, best first.
	Concepts []Concept `json:"concepts"`
	// Relations are extracted entity relationships (paper §2.1's
	// "relationship extraction").
	Relations []Relation `json:"relations,omitempty"`
	// Language is the detected language code.
	Language string `json:"language"`
}

// EntityIDs returns the distinct entity IDs mentioned, in first-mention
// order.
func (a Analysis) EntityIDs() []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range a.Entities {
		if !seen[m.EntityID] {
			seen[m.EntityID] = true
			out = append(out, m.EntityID)
		}
	}
	return out
}

// Encode serializes the analysis as a service response.
func (a Analysis) Encode() (service.Response, error) {
	body, err := json.Marshal(a)
	if err != nil {
		return service.Response{}, fmt.Errorf("nlu: encode analysis: %w", err)
	}
	return service.Response{Body: body, ContentType: "application/json"}, nil
}

// DecodeAnalysis parses an analysis from a service response.
func DecodeAnalysis(resp service.Response) (Analysis, error) {
	var a Analysis
	if err := json.Unmarshal(resp.Body, &a); err != nil {
		return Analysis{}, fmt.Errorf("nlu: decode analysis: %w", err)
	}
	return a, nil
}
