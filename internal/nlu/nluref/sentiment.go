package nluref

import (
	"math"

	"repro/internal/lexicon"
)

// sentimentHit is one sentiment-bearing token with its resolved weight
// after negation and intensification.
type sentimentHit struct {
	tokenIndex int
	weight     float64
}

var (
	intensifierSet = toSet(lexicon.Intensifiers)
	negatorSet     = toSet(lexicon.Negators)
)

func toSet(words []string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}

// scanSentiment finds sentiment-bearing tokens, applying negation ("not
// good" flips) and intensification ("very good" amplifies) from the two
// preceding tokens.
func scanSentiment(tokens []Token, weights map[string]float64) []sentimentHit {
	var hits []sentimentHit
	for i, t := range tokens {
		w, ok := weights[t.Lower]
		if !ok {
			continue
		}
		factor := 1.0
		for back := 1; back <= 2 && i-back >= 0; back++ {
			prev := tokens[i-back].Lower
			if negatorSet[prev] {
				factor = -factor
			} else if intensifierSet[prev] {
				factor *= 1.5
			}
		}
		hits = append(hits, sentimentHit{tokenIndex: i, weight: w * factor})
	}
	return hits
}

// DocumentSentiment scores the whole document in [-1, 1]: the weighted sum
// of sentiment hits squashed by tanh so long documents saturate rather than
// overflow.
func DocumentSentiment(tokens []Token, weights map[string]float64) float64 {
	hits := scanSentiment(tokens, weights)
	if len(hits) == 0 {
		return 0
	}
	var sum float64
	for _, h := range hits {
		sum += h.weight
	}
	return math.Tanh(sum / 3)
}

// entitySentimentWindow is how many tokens on each side of a mention
// contribute to that entity's sentiment.
const entitySentimentWindow = 8

// EntitySentiments scores each mentioned entity from the sentiment hits
// within a window around its mentions — the paper's per-entity sentiment
// (offered by Watson Developer Cloud) rather than one score for a document
// that "may describe several different entities".
func EntitySentiments(tokens []Token, mentions []Mention, weights map[string]float64) []EntitySentiment {
	hits := scanSentiment(tokens, weights)
	if len(mentions) == 0 {
		return nil
	}
	// Map byte offsets to token indices for the mentions.
	tokenAt := func(byteOff int) int {
		for i, t := range tokens {
			if t.Start <= byteOff && byteOff < t.End {
				return i
			}
			if t.Start > byteOff {
				return i
			}
		}
		return len(tokens) - 1
	}
	type acc struct {
		sum      float64
		mentions int
	}
	accs := make(map[string]*acc)
	order := make([]string, 0, 8)
	for _, m := range mentions {
		a, ok := accs[m.EntityID]
		if !ok {
			a = &acc{}
			accs[m.EntityID] = a
			order = append(order, m.EntityID)
		}
		a.mentions++
		center := tokenAt(m.Start)
		lo, hi := center-entitySentimentWindow, center+entitySentimentWindow
		for _, h := range hits {
			if h.tokenIndex >= lo && h.tokenIndex <= hi {
				a.sum += h.weight
			}
		}
	}
	out := make([]EntitySentiment, 0, len(order))
	for _, id := range order {
		a := accs[id]
		out = append(out, EntitySentiment{
			EntityID: id,
			Score:    math.Tanh(a.sum / (2 * float64(a.mentions))),
			Mentions: a.mentions,
		})
	}
	return out
}
