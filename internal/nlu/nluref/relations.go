package nluref

import (
	"sort"
	"strings"
)

// Relationship extraction (paper §2.1: documents may be analyzed "for named
// entity recognition or relationship extraction", and outputs from several
// such services can be combined). A relation is extracted when two entity
// mentions share a sentence and a trigger word between them names the
// relationship; confidence decays with the distance between the mentions.

// Relation is one extracted (subject, predicate, object) relationship.
type Relation struct {
	// SubjectID and ObjectID are entity IDs of the related mentions.
	SubjectID string `json:"subjectId"`
	// Predicate is the canonical relation name ("kb:acquired").
	Predicate string `json:"predicate"`
	ObjectID  string `json:"objectId"`
	// Trigger is the surface word that signaled the relation.
	Trigger string `json:"trigger"`
	// Confidence in (0, 1]: closer mentions score higher.
	Confidence float64 `json:"confidence"`
}

// RelationTriggers maps trigger words to canonical predicates. The
// vocabulary matches the corpus generator's templates plus common business
// relations, and users may extend it per engine.
var RelationTriggers = map[string]string{
	"acquired":   "kb:acquired",
	"acquires":   "kb:acquired",
	"bought":     "kb:acquired",
	"merged":     "kb:mergedWith",
	"praised":    "kb:praised",
	"condemned":  "kb:condemned",
	"criticized": "kb:condemned",
	"blamed":     "kb:condemned",
	"welcomed":   "kb:welcomed",
	"sued":       "kb:sued",
	"partnered":  "kb:partneredWith",
	"supplies":   "kb:supplies",
	"employs":    "kb:employs",
	"visited":    "kb:visited",
	"signed":     "kb:signedWith",
	"invested":   "kb:investedIn",
}

// maxTriggerDistance bounds how many tokens may separate the mentions for
// a relation to be emitted.
const maxTriggerDistance = 12

// ExtractRelations finds trigger-mediated relations between entity mention
// pairs within a sentence. triggers may be nil to use RelationTriggers.
// Results are sorted by text order then predicate, deterministic for a
// given input.
func ExtractRelations(text string, tokens []Token, mentions []Mention, triggers map[string]string) []Relation {
	if triggers == nil {
		triggers = RelationTriggers
	}
	if len(mentions) < 2 {
		return nil
	}
	// Token index of each mention start and the sentence id per token.
	sentenceOf := make([]int, len(tokens))
	sid := 0
	for i, t := range tokens {
		if t.SentenceStart && i > 0 {
			sid++
		}
		sentenceOf[i] = sid
	}
	tokenAt := func(byteOff int) int {
		for i, t := range tokens {
			if t.Start <= byteOff && byteOff < t.End {
				return i
			}
			if t.Start > byteOff {
				return i
			}
		}
		return len(tokens) - 1
	}
	var out []Relation
	for i := 0; i < len(mentions); i++ {
		for j := i + 1; j < len(mentions); j++ {
			a, b := mentions[i], mentions[j]
			if a.EntityID == b.EntityID {
				continue
			}
			ta, tb := tokenAt(a.Start), tokenAt(b.Start)
			if sentenceOf[ta] != sentenceOf[tb] {
				continue
			}
			lo, hi := ta, tb
			if lo > hi {
				lo, hi = hi, lo
			}
			if hi-lo > maxTriggerDistance {
				continue
			}
			// Scan the span between the mentions for a trigger.
			for k := lo + 1; k < hi; k++ {
				pred, ok := triggers[tokens[k].Lower]
				if !ok {
					continue
				}
				distance := hi - lo
				conf := 1 - float64(distance-1)/float64(maxTriggerDistance+4)
				if conf < 0.1 {
					conf = 0.1
				}
				// Direction: textual order (subject before object).
				subj, obj := a, b
				if ta > tb {
					subj, obj = b, a
				}
				out = append(out, Relation{
					SubjectID:  subj.EntityID,
					Predicate:  pred,
					ObjectID:   obj.EntityID,
					Trigger:    tokens[k].Text,
					Confidence: conf,
				})
				break // one relation per mention pair
			}
		}
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x].SubjectID != out[y].SubjectID {
			return out[x].SubjectID < out[y].SubjectID
		}
		if out[x].Predicate != out[y].Predicate {
			return out[x].Predicate < out[y].Predicate
		}
		return out[x].ObjectID < out[y].ObjectID
	})
	return out
}

// RelationKey renders a relation as "subject predicate object" for
// cross-service comparison and deduplication.
func RelationKey(r Relation) string {
	return strings.Join([]string{r.SubjectID, r.Predicate, r.ObjectID}, " ")
}
