package nlu

import (
	"testing"

	"repro/internal/lexicon"
)

func matchText(t *testing.T, text string) []Mention {
	t.Helper()
	m := NewMatcher(lexicon.AllEntities())
	return m.Match(text, Tokenize(text))
}

func TestMatcherFindsCanonicalNames(t *testing.T) {
	mentions := matchText(t, "Germany signed a trade agreement with Japan.")
	if len(mentions) != 2 {
		t.Fatalf("mentions = %+v, want 2", mentions)
	}
	if mentions[0].EntityID != "country:de" || mentions[1].EntityID != "country:jp" {
		t.Errorf("mentions = %+v", mentions)
	}
	if mentions[0].Kind != "Country" {
		t.Errorf("Kind = %s, want Country", mentions[0].Kind)
	}
}

func TestMatcherLongestMatchWins(t *testing.T) {
	mentions := matchText(t, "The United States of America announced new tariffs.")
	if len(mentions) != 1 {
		t.Fatalf("mentions = %+v, want 1", mentions)
	}
	if mentions[0].Surface != "United States of America" || mentions[0].EntityID != "country:us" {
		t.Errorf("mention = %+v", mentions[0])
	}
}

func TestMatcherAliases(t *testing.T) {
	for _, alias := range []string{"USA", "America", "United States"} {
		mentions := matchText(t, "Exports to "+alias+" rose sharply.")
		if len(mentions) != 1 || mentions[0].EntityID != "country:us" {
			t.Errorf("alias %q: mentions = %+v", alias, mentions)
		}
	}
}

func TestMatcherAcronymCaseSensitive(t *testing.T) {
	// "US" the country requires exact case; the pronoun "us" must not
	// match.
	mentions := matchText(t, "They told us the US economy improved.")
	if len(mentions) != 1 {
		t.Fatalf("mentions = %+v, want exactly the capitalized US", mentions)
	}
	if mentions[0].Surface != "US" || mentions[0].EntityID != "country:us" {
		t.Errorf("mention = %+v", mentions[0])
	}
}

func TestMatcherCaseInsensitiveForLongNames(t *testing.T) {
	mentions := matchText(t, "exports from germany grew.")
	if len(mentions) != 1 || mentions[0].EntityID != "country:de" {
		t.Errorf("mentions = %+v, want lowercase germany to match", mentions)
	}
}

func TestMatcherCompanies(t *testing.T) {
	mentions := matchText(t, "Acme Corporation acquired Globex Industries for two billion.")
	if len(mentions) != 2 {
		t.Fatalf("mentions = %+v", mentions)
	}
	if mentions[0].EntityID != "company:acme" || mentions[1].EntityID != "company:globex" {
		t.Errorf("mentions = %+v", mentions)
	}
	if mentions[0].Kind != "Company" {
		t.Errorf("Kind = %s", mentions[0].Kind)
	}
}

func TestMatcherNoOverlaps(t *testing.T) {
	mentions := matchText(t, "Acme Corporation and Acme Corp and Acme all reported gains.")
	if len(mentions) != 3 {
		t.Fatalf("mentions = %+v, want 3", mentions)
	}
	for i := 1; i < len(mentions); i++ {
		if mentions[i].Start < mentions[i-1].End {
			t.Errorf("overlapping mentions: %+v", mentions)
		}
	}
}

func TestMatcherOffsetsSliceSource(t *testing.T) {
	text := "Officials in France praised the agreement."
	mentions := matchText(t, text)
	if len(mentions) != 1 {
		t.Fatalf("mentions = %+v", mentions)
	}
	if text[mentions[0].Start:mentions[0].End] != "France" {
		t.Errorf("offsets select %q", text[mentions[0].Start:mentions[0].End])
	}
}

func TestHeuristicMentions(t *testing.T) {
	text := "Yesterday Zorblax Dynamics unveiled a new engine."
	tokens := Tokenize(text)
	m := NewMatcher(lexicon.AllEntities())
	covered := m.Match(text, tokens)
	hs := HeuristicMentions(text, tokens, covered, lexicon.StopwordSet())
	if len(hs) != 1 {
		t.Fatalf("heuristic mentions = %+v, want 1", hs)
	}
	if hs[0].Surface != "Zorblax Dynamics" || hs[0].Kind != "Unknown" {
		t.Errorf("mention = %+v", hs[0])
	}
	if hs[0].EntityID != "unknown:zorblax dynamics" {
		t.Errorf("EntityID = %s", hs[0].EntityID)
	}
}

func TestHeuristicSkipsSentenceInitialSingles(t *testing.T) {
	text := "Revenue grew. Analysts cheered."
	tokens := Tokenize(text)
	hs := HeuristicMentions(text, tokens, nil, lexicon.StopwordSet())
	if len(hs) != 0 {
		t.Errorf("sentence-initial words flagged as entities: %+v", hs)
	}
}

func TestHeuristicSkipsCoveredSpans(t *testing.T) {
	text := "Acme Corporation shares rose."
	tokens := Tokenize(text)
	m := NewMatcher(lexicon.AllEntities())
	covered := m.Match(text, tokens)
	hs := HeuristicMentions(text, tokens, covered, lexicon.StopwordSet())
	if len(hs) != 0 {
		t.Errorf("covered span re-reported: %+v", hs)
	}
}
