package nlu

import (
	"reflect"
	"strings"
	"testing"
)

func TestResolvePaperExample(t *testing.T) {
	d := NewDisambiguator()
	// The paper: "US" resolves to the country with website, DBpedia, and
	// Yago URLs.
	r, ok := d.Resolve("US")
	if !ok {
		t.Fatal("US not resolved")
	}
	if r.EntityID != "country:us" || r.Name != "United States" {
		t.Errorf("resolution = %+v", r)
	}
	if r.Website != "http://www.usa.gov/" {
		t.Errorf("Website = %s", r.Website)
	}
	if !strings.Contains(r.DBpedia, "dbpedia.org") || !strings.Contains(r.Yago, "yago-knowledge.org") {
		t.Errorf("linked URLs = %+v", r)
	}
}

func TestResolveAllUSAliasesCollapse(t *testing.T) {
	d := NewDisambiguator()
	aliases := []string{"United States of America", "USA", "US", "United States", "America", "the states"}
	ids := d.CanonicalIDs(aliases)
	if !reflect.DeepEqual(ids, []string{"country:us"}) {
		t.Errorf("CanonicalIDs = %v, want single country:us", ids)
	}
}

func TestResolveUnknown(t *testing.T) {
	d := NewDisambiguator()
	if _, ok := d.Resolve("Atlantis"); ok {
		t.Error("Atlantis resolved unexpectedly")
	}
	ids := d.CanonicalIDs([]string{"Atlantis", "atlantis "})
	if !reflect.DeepEqual(ids, []string{"unknown:atlantis"}) {
		t.Errorf("CanonicalIDs = %v", ids)
	}
}

func TestAddSynonymUserDomain(t *testing.T) {
	// Paper: for domains without tools (for example diseases), users
	// provide synonym files.
	d := NewDisambiguator()
	d.AddSynonym("heart attack", "disease:mi")
	d.AddSynonym("myocardial infarction", "disease:mi")
	d.AddSynonym("MI", "disease:mi")
	ids := d.CanonicalIDs([]string{"Heart Attack", "myocardial infarction", "mi"})
	if !reflect.DeepEqual(ids, []string{"disease:mi"}) {
		t.Errorf("CanonicalIDs = %v, want single disease:mi", ids)
	}
	r, ok := d.Resolve("heart attack")
	if !ok || r.Name != "mi" {
		t.Errorf("Resolve = (%+v, %v)", r, ok)
	}
}

func TestLoadSynonymsCSV(t *testing.T) {
	d := NewDisambiguator()
	csvData := "diabetes,disease:dm\nsugar disease,disease:dm\ntype 2 diabetes,disease:dm\n"
	n, err := d.LoadSynonyms(strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("loaded %d rows, want 3", n)
	}
	ids := d.CanonicalIDs([]string{"Diabetes", "SUGAR DISEASE", "type 2 diabetes"})
	if !reflect.DeepEqual(ids, []string{"disease:dm"}) {
		t.Errorf("CanonicalIDs = %v", ids)
	}
}

func TestLoadSynonymsBadRow(t *testing.T) {
	d := NewDisambiguator()
	if _, err := d.LoadSynonyms(strings.NewReader("only-one-field\n")); err == nil {
		t.Error("expected error for short row")
	}
}

func TestUserSynonymOverridesGazetteer(t *testing.T) {
	d := NewDisambiguator()
	d.AddSynonym("america", "continent:americas")
	r, ok := d.Resolve("America")
	if !ok || r.EntityID != "continent:americas" {
		t.Errorf("Resolve = (%+v, %v), user mapping should win", r, ok)
	}
}
