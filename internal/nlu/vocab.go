package nlu

import (
	"sort"
	"sync"

	"repro/internal/intern"
	"repro/internal/lexicon"
)

// The engines share one process-wide frozen vocabulary: every word the
// lexicons, gazetteer, topic taxonomy, or relation triggers know about,
// interned once through intern.Dict and then frozen. Per-document work
// resolves each token to a vocabulary ID with a zero-allocation byte
// lookup and consults dense ID-indexed side tables instead of per-call
// string maps: stopwordness, sentiment weight, negator/intensifier
// flags, topic-concept labels, and relation-trigger predicates.
//
// Tokens outside the vocabulary still get IDs — first from the matcher's
// per-gazetteer overflow table, then from a per-document local dict (see
// doc.go) — so matching and counting stay pure integer comparisons for
// every token, known or not.
type vocabTables struct {
	dict *intern.Frozen[string]
	// stop, weight, negator, and intensifier are indexed by vocabulary ID.
	stop        []bool
	weight      []float64
	negator     []bool
	intensifier []bool
	// topicOf and triggerOf are indexed by vocabulary ID; 0 means "none",
	// otherwise 1+index into conceptLabels / predicates.
	topicOf   []uint16
	triggerOf []uint16
	// conceptLabels are the distinct taxonomy labels, sorted; kindOf maps
	// a mention Kind to 1+index into conceptLabels (0 = none).
	conceptLabels []string
	kindOf        map[string]uint16
	// predicates are the distinct relation predicates, sorted.
	predicates []string
}

var (
	vocabOnce sync.Once
	vocabTab  *vocabTables
)

// vocab returns the shared tables, building them on first use. The build
// snapshots RelationTriggers and topicConcepts at that point; the public
// ExtractRelations function still reads the live map for callers that
// extend it.
func vocab() *vocabTables {
	vocabOnce.Do(buildVocab)
	return vocabTab
}

func buildVocab() {
	d := intern.NewDict[string]()
	// Dictionary() is sorted and already contains the stopword, sentiment,
	// and gazetteer-surface vocabularies. The taxonomy and trigger tables
	// are nlu's own and may hold words the lexicon does not ("acquired").
	for _, w := range lexicon.Dictionary() {
		d.Intern(w)
	}
	for _, w := range sortedKeys(topicConcepts) {
		d.Intern(w)
	}
	for _, w := range sortedKeys(RelationTriggers) {
		d.Intern(w)
	}
	f := d.Freeze()
	n := f.Len()
	v := &vocabTables{
		dict:        f,
		stop:        make([]bool, n),
		weight:      make([]float64, n),
		negator:     make([]bool, n),
		intensifier: make([]bool, n),
		topicOf:     make([]uint16, n),
		triggerOf:   make([]uint16, n),
	}
	for _, w := range lexicon.Stopwords {
		if id, ok := f.Lookup(w); ok {
			v.stop[id] = true
		}
	}
	for w, wt := range lexicon.SentimentWeights() {
		if id, ok := f.Lookup(w); ok {
			v.weight[id] = wt
		}
	}
	for _, w := range lexicon.Negators {
		if id, ok := f.Lookup(w); ok {
			v.negator[id] = true
		}
	}
	for _, w := range lexicon.Intensifiers {
		if id, ok := f.Lookup(w); ok {
			v.intensifier[id] = true
		}
	}

	labelSet := make(map[string]bool)
	for _, l := range topicConcepts {
		labelSet[l] = true
	}
	for _, l := range kindConcepts {
		labelSet[l] = true
	}
	v.conceptLabels = sortedKeys(labelSet)
	labelIdx := make(map[string]uint16, len(v.conceptLabels))
	for i, l := range v.conceptLabels {
		labelIdx[l] = uint16(i + 1)
	}
	for w, l := range topicConcepts {
		if id, ok := f.Lookup(w); ok {
			v.topicOf[id] = labelIdx[l]
		}
	}
	v.kindOf = make(map[string]uint16, len(kindConcepts))
	for k, l := range kindConcepts {
		v.kindOf[k] = labelIdx[l]
	}

	predSet := make(map[string]bool)
	for _, p := range RelationTriggers {
		predSet[p] = true
	}
	v.predicates = sortedKeys(predSet)
	predIdx := make(map[string]uint16, len(v.predicates))
	for i, p := range v.predicates {
		predIdx[p] = uint16(i + 1)
	}
	for w, p := range RelationTriggers {
		if id, ok := f.Lookup(w); ok {
			v.triggerOf[id] = predIdx[p]
		}
	}
	vocabTab = v
}

// sortedKeys returns a map's keys in sorted order, for deterministic
// vocabulary IDs and table layouts.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
