package nlu

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// nluObs bundles the NLU hot-path instruments. The vocabulary (and the
// scratch pool) are process-wide, so instrumentation is too: one
// atomic.Pointer load per Analyze when detached, loaded exactly once per
// document when attached.
type nluObs struct {
	analyze *metrics.Histogram
	tokens  *metrics.Counter
	oov     *metrics.Counter
	gets    *metrics.Counter
	allocs  *metrics.Counter
}

var obsPtr atomic.Pointer[nluObs]

// Instrument registers the NLU instrument families in set and turns on
// per-document instrumentation across every engine in the process: an
// Analyze latency histogram, tokens-scanned and out-of-vocabulary-token
// counters, scratch-pool acquisition/allocation counters (gets − allocs
// is how many documents reused pooled scratch), and a vocabulary-size
// gauge. Calling it with a nil set detaches the instruments again.
func Instrument(set *metrics.Set) {
	if set == nil {
		obsPtr.Store(nil)
		return
	}
	o := &nluObs{
		analyze: set.Histogram("richsdk_nlu_analyze_seconds",
			"Latency of full single-document NLU analyses."),
		tokens: set.Counter("richsdk_nlu_tokens_total",
			"Tokens scanned across all analyzed documents."),
		oov: set.Counter("richsdk_nlu_oov_tokens_total",
			"Scanned tokens not found in the shared frozen vocabulary."),
		gets: set.Counter("richsdk_nlu_scratch_gets_total",
			"Per-document scratch acquisitions from the pool."),
		allocs: set.Counter("richsdk_nlu_scratch_allocs_total",
			"Scratch acquisitions that had to allocate a fresh doc (pool miss)."),
	}
	set.Gauge("richsdk_intern_dict_size",
		"Distinct terms in an interned symbol table.",
		metrics.Label{Name: "dict", Value: "nlu-vocab"}).Set(int64(vocab().dict.Len()))
	obsPtr.Store(o)
}
