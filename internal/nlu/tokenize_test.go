package nlu

import (
	"reflect"
	"testing"
)

func tokenTexts(ts []Token) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	tokens := Tokenize("The quick brown fox.")
	want := []string{"The", "quick", "brown", "fox"}
	if !reflect.DeepEqual(tokenTexts(tokens), want) {
		t.Errorf("tokens = %v, want %v", tokenTexts(tokens), want)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	text := "Acme won big."
	tokens := Tokenize(text)
	for _, tok := range tokens {
		if text[tok.Start:tok.End] != tok.Text {
			t.Errorf("offsets wrong: [%d:%d] = %q, token %q", tok.Start, tok.End, text[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestTokenizeSentenceBoundaries(t *testing.T) {
	tokens := Tokenize("First here. Second there! Third one?")
	var starts []string
	for _, tok := range tokens {
		if tok.SentenceStart {
			starts = append(starts, tok.Text)
		}
	}
	want := []string{"First", "Second", "Third"}
	if !reflect.DeepEqual(starts, want) {
		t.Errorf("sentence starts = %v, want %v", starts, want)
	}
}

func TestTokenizeApostrophes(t *testing.T) {
	tokens := Tokenize("It's the People's Republic")
	texts := tokenTexts(tokens)
	want := []string{"It's", "the", "People's", "Republic"}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}

func TestTokenizeNumbersAndPunct(t *testing.T) {
	tokens := Tokenize("Revenue rose 42% in Q3, beating forecasts.")
	texts := tokenTexts(tokens)
	want := []string{"Revenue", "rose", "42", "in", "Q3", "beating", "forecasts"}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("...!!!"); len(got) != 0 {
		t.Errorf("Tokenize(punct) = %v", got)
	}
}

func TestTokenizeLowerPrecomputed(t *testing.T) {
	tokens := Tokenize("HELLO World")
	if tokens[0].Lower != "hello" || tokens[1].Lower != "world" {
		t.Errorf("Lower fields wrong: %+v", tokens)
	}
}

func TestSentences(t *testing.T) {
	got := Sentences("One here. Two there! Is three? Four")
	want := []string{"One here.", "Two there!", "Is three?", "Four"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Sentences = %v, want %v", got, want)
	}
}

func TestSentencesEmpty(t *testing.T) {
	if got := Sentences("   "); len(got) != 0 {
		t.Errorf("Sentences(blank) = %v", got)
	}
}

func TestIsCapitalized(t *testing.T) {
	tests := []struct {
		in   string
		want bool
	}{
		{"Hello", true}, {"hello", false}, {"HELLO", true}, {"", false}, {"123", false},
	}
	for _, tt := range tests {
		if got := IsCapitalized(tt.in); got != tt.want {
			t.Errorf("IsCapitalized(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
