package nlu

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"

	"repro/internal/lexicon"
	"repro/internal/service"
	"repro/internal/xrand"
)

// Profile tunes an engine's quality characteristics. Real NLU vendors
// differ in precision, recall, and noise; the three stock profiles below
// stand in for competing services so the SDK's ranking, result comparison,
// and consensus aggregation have genuine quality differences to observe.
type Profile struct {
	// Name identifies the engine ("nlu-alpha" etc.).
	Name string
	// UseHeuristics enables capitalized-run detection on top of the
	// gazetteer: more recall, more false positives.
	UseHeuristics bool
	// DropRate is the probability of missing a true gazetteer mention.
	DropRate float64
	// SpuriousRate is the probability per sentence of emitting a
	// fabricated mention.
	SpuriousRate float64
	// SentimentNoise is the standard deviation of Gaussian noise added
	// to sentiment scores.
	SentimentNoise float64
	// MaxKeywords bounds keyword output. 0 means 10.
	MaxKeywords int
	// MaxConcepts bounds concept output. 0 means 5.
	MaxConcepts int
	// Seed decorrelates this engine's noise from other engines'.
	Seed int64
}

// Stock profiles: alpha is the precision-oriented vendor, beta the
// recall-oriented one, gamma the cheap noisy one.
var (
	ProfileAlpha = Profile{Name: "nlu-alpha", UseHeuristics: false, DropRate: 0.02, SentimentNoise: 0.02, Seed: 101}
	ProfileBeta  = Profile{Name: "nlu-beta", UseHeuristics: true, DropRate: 0.08, SpuriousRate: 0.05, SentimentNoise: 0.05, Seed: 202}
	ProfileGamma = Profile{Name: "nlu-gamma", UseHeuristics: true, DropRate: 0.25, SpuriousRate: 0.15, SentimentNoise: 0.15, Seed: 303}
)

// Engine analyzes documents according to its profile. It is immutable after
// construction and safe for concurrent use: per-document noise derives from
// a hash of the text, so the same document always produces the same
// analysis (the behaviour that makes caching semantically sound).
//
// Analyze runs on interned token IDs against the shared process-wide
// vocabulary, with all per-document scratch drawn from a pool; the frozen
// string-based implementation it is pinned against lives in nluref.
type Engine struct {
	profile Profile
	matcher *Matcher
}

// NewEngine returns an engine with the given profile over the built-in
// gazetteer and lexicons.
func NewEngine(profile Profile) *Engine {
	if profile.MaxKeywords <= 0 {
		profile.MaxKeywords = 10
	}
	if profile.MaxConcepts <= 0 {
		profile.MaxConcepts = 5
	}
	return &Engine{
		profile: profile,
		matcher: NewMatcher(lexicon.AllEntities()),
	}
}

// Profile returns the engine's profile.
func (e *Engine) Profile() Profile { return e.profile }

// fnv64a is hash/fnv's 64-bit FNV-1a inlined to avoid the per-document
// hasher allocation on the Analyze hot path.
func fnv64a(s string) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Analyze performs the full analysis of one document. The noise source is
// reseeded (not reallocated) per document from the engine seed and the
// text hash, and every random draw happens in the same sequence as the
// reference implementation, keeping results bit-identical to nluref.
func (e *Engine) Analyze(text string) Analysis {
	o := obsPtr.Load()
	var start time.Time
	if o != nil {
		start = time.Now()
		o.gets.Inc()
	}
	v := vocab()
	d := docPool.Get().(*doc)
	d.scan(text, v, e.matcher.extra)
	rng := d.rng
	rng.Reseed(e.profile.Seed ^ int64(fnv64a(text)))

	mentions := e.matcher.matchDoc(text, d)
	// Profile-driven recall loss.
	if e.profile.DropRate > 0 {
		kept := mentions[:0]
		for _, m := range mentions {
			if !rng.Bernoulli(e.profile.DropRate) {
				kept = append(kept, m)
			}
		}
		mentions = kept
	}
	if e.profile.UseHeuristics {
		mentions = append(mentions, d.heuristicMentions(text, mentions)...)
	}
	// Profile-driven false positives: fabricate a mention per sentence
	// with some probability. Sentences and their whitespace-split words
	// are walked in place rather than materialized — same sentence
	// sequence and random draws as `for _, s := range Sentences(text)`
	// with a strings.Fields pick, without the per-sentence allocations.
	if e.profile.SpuriousRate > 0 {
		for off := 0; ; {
			s, next, more := nextSentence(text, off)
			if !more {
				break
			}
			off = next
			if s == "" || !rng.Bernoulli(e.profile.SpuriousRate) {
				continue
			}
			w, ok := spuriousWord(s, rng)
			if !ok {
				continue
			}
			w = strings.Trim(w, ".,!?;:'\"")
			if len(w) < 3 {
				continue
			}
			mentions = append(mentions, Mention{
				EntityID: "unknown:" + strings.ToLower(w),
				Surface:  w,
				Kind:     "Unknown",
			})
		}
	}
	sortMentions(mentions)

	d.scanSentiment(v)
	sentiment := 0.0
	if len(d.hits) > 0 {
		var sum float64
		for _, h := range d.hits {
			sum += h.weight
		}
		sentiment = math.Tanh(sum / 3)
	}
	if e.profile.SentimentNoise > 0 {
		sentiment += rng.NormFloat64() * e.profile.SentimentNoise
		if sentiment > 1 {
			sentiment = 1
		}
		if sentiment < -1 {
			sentiment = -1
		}
	}

	a := Analysis{
		Engine:           e.profile.Name,
		Entities:         mentions,
		Keywords:         d.keywords(v, e.profile.MaxKeywords),
		Sentiment:        sentiment,
		EntitySentiments: d.entitySentiments(mentions),
		Concepts:         d.concepts(v, mentions, e.profile.MaxConcepts),
		Relations:        d.relations(v, text, mentions),
		Language:         "en",
	}
	if o != nil {
		o.tokens.Add(uint64(len(d.spans)))
		o.oov.Add(uint64(d.nOOV))
	}
	d.release()
	if o != nil {
		o.analyze.Observe(time.Since(start))
	}
	return a
}

// nextSentence returns the trimmed sentence beginning at byte offset off
// and the offset just past its terminator. more is false once off is at
// the end of the text. The sequence of non-empty values is exactly what
// Sentences(text) returns (including its replacement of invalid UTF-8
// with U+FFFD), with empty flushes surfacing as s == "".
func nextSentence(text string, off int) (s string, next int, more bool) {
	if off >= len(text) {
		return "", off, false
	}
	for i, r := range text[off:] {
		if r == '.' || r == '!' || r == '?' || r == '…' {
			// The terminator matched, so r is a genuinely decoded rune
			// (never the 1-byte RuneError) and RuneLen is its true width.
			end := off + i + utf8.RuneLen(r)
			return sentenceChunk(text[off:end]), end, true
		}
	}
	return sentenceChunk(text[off:]), len(text), true
}

// sentenceChunk reproduces one flush of the rune-builder in Sentences:
// for valid UTF-8 that is just a trimmed substring; invalid bytes decode
// to U+FFFD, which only then forces a rebuild.
func sentenceChunk(chunk string) string {
	if !utf8.ValidString(chunk) {
		var b strings.Builder
		for _, r := range chunk {
			b.WriteRune(r)
		}
		chunk = b.String()
	}
	return strings.TrimSpace(chunk)
}

// spuriousWord picks the same word as indexing strings.Fields(s) with
// rng.Intn would, consuming randomness identically (no draw when the
// sentence has no fields), but walks the fields in place.
func spuriousWord(s string, rng *xrand.Source) (string, bool) {
	n := 0
	inField := false
	for _, r := range s {
		if unicode.IsSpace(r) {
			inField = false
		} else if !inField {
			inField = true
			n++
		}
	}
	if n == 0 {
		return "", false
	}
	idx := rng.Intn(n)
	k := -1
	start := 0
	inField = false
	for pos, r := range s {
		if unicode.IsSpace(r) {
			if inField && k == idx {
				return s[start:pos], true
			}
			inField = false
		} else if !inField {
			inField = true
			k++
			start = pos
		}
	}
	return s[start:], true
}

func sortMentions(ms []Mention) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Start < ms[j-1].Start; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// Service wraps the engine as a service.Service understanding op "analyze"
// (field Text carries the document). info supplies the metadata under which
// the engine is registered.
func (e *Engine) Service(info service.Info) service.Service {
	return service.Func{
		Meta: info,
		Fn: func(_ context.Context, req service.Request) (service.Response, error) {
			switch req.Op {
			case "analyze", "":
				if req.Text == "" {
					return service.Response{}, fmt.Errorf("nlu: empty document: %w", service.ErrBadRequest)
				}
				return e.Analyze(req.Text).Encode()
			default:
				return service.Response{}, fmt.Errorf("nlu: unsupported op %q: %w", req.Op, service.ErrBadRequest)
			}
		},
	}
}
