// Package nlu implements the natural-language-understanding substrate: the
// local equivalents of the cognitive services the paper's SDK invokes
// (IBM Watson, Microsoft, Google, Amazon NLU). It provides tokenization,
// named entity recognition over a gazetteer, keyword extraction, document
// and per-entity sentiment analysis, concept/taxonomy mapping, and named
// entity disambiguation. Three differently tuned engine profiles stand in
// for competing vendors so the SDK's ranking, aggregation, and comparison
// features have real services to exercise.
//
// The analysis hot path works on interned token IDs against a process-wide
// vocabulary (see vocab.go and doc.go); the frozen pre-interning
// implementation lives in nluref and pins Engine.Analyze bit-for-bit.
package nlu

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is one word-level token with its byte offsets in the source text.
type Token struct {
	// Text is the token as it appears in the source.
	Text string
	// Lower is the lower-cased form, precomputed for matching.
	Lower string
	// Start and End are byte offsets into the source ([Start, End)).
	Start int
	End   int
	// SentenceStart marks the first token of a sentence.
	SentenceStart bool
}

// Tokenize splits text into word tokens, recording offsets and sentence
// boundaries. Tokens are maximal runs of letters, digits, and internal
// apostrophes; everything else separates tokens.
func Tokenize(text string) []Token {
	var tokens []Token
	scanWords(text, func(start, end int, sentenceStart bool) {
		tok := text[start:end]
		tokens = append(tokens, Token{
			Text:          tok,
			Lower:         strings.ToLower(tok),
			Start:         start,
			End:           end,
			SentenceStart: sentenceStart,
		})
	})
	return tokens
}

// scanWords is the tokenizer core shared by Tokenize and the engines'
// pooled document scan: it walks text once and emits each token's byte
// span plus whether it opens a sentence.
//
// ASCII is the fast path and keeps the historical rules exactly: letters
// and digits are word bytes, '.', '!', '?' end sentences, and an
// apostrophe is part of a token only when a word rune follows ("it's").
// Bytes >= 0x80 are decoded as runes rather than blindly treated as word
// bytes (the old behavior), so multibyte punctuation — em-dashes,
// ellipses, curly quotes — separates tokens instead of gluing them
// together: only unicode letters and digits extend a token, an ellipsis
// rune ends a sentence, and U+2019 (the typographic apostrophe) behaves
// like the ASCII apostrophe.
func scanWords(text string, emit func(start, end int, sentenceStart bool)) {
	sentenceStart := true
	i := 0
	n := len(text)
	for i < n {
		b := text[i]
		if b < utf8.RuneSelf {
			if !isWordByte(b) {
				if b == '.' || b == '!' || b == '?' {
					sentenceStart = true
				}
				i++
				continue
			}
		} else {
			r, size := utf8.DecodeRuneInString(text[i:])
			if !isWordRune(r) {
				if r == '…' {
					sentenceStart = true
				}
				i += size
				continue
			}
		}
		start := i
		for i < n {
			b := text[i]
			if b < utf8.RuneSelf {
				if isWordByte(b) || (b == '\'' && isWordRuneAt(text, i+1)) {
					i++
					continue
				}
				break
			}
			r, size := utf8.DecodeRuneInString(text[i:])
			if isWordRune(r) || (r == '’' && isWordRuneAt(text, i+size)) {
				i += size
				continue
			}
			break
		}
		emit(start, i, sentenceStart)
		sentenceStart = false
	}
}

// isWordByte classifies ASCII word bytes only; multibyte sequences are
// decoded and classified as runes by the scanner.
func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// isWordRune reports whether a non-ASCII rune extends a token.
func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// isWordRuneAt reports whether a word rune starts at byte offset i,
// deciding whether an apostrophe is internal ("it's") or trailing
// ("runners' ").
func isWordRuneAt(text string, i int) bool {
	if i >= len(text) {
		return false
	}
	b := text[i]
	if b < utf8.RuneSelf {
		return isWordByte(b)
	}
	r, _ := utf8.DecodeRuneInString(text[i:])
	return isWordRune(r)
}

// Sentences splits text into sentences on ., !, ?, … boundaries, trimming
// whitespace and dropping empties.
func Sentences(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		s := strings.TrimSpace(b.String())
		if s != "" {
			out = append(out, s)
		}
		b.Reset()
	}
	for _, r := range text {
		b.WriteRune(r)
		if r == '.' || r == '!' || r == '?' || r == '…' {
			flush()
		}
	}
	flush()
	return out
}

// IsCapitalized reports whether the token begins with an upper-case letter.
func IsCapitalized(tok string) bool {
	for _, r := range tok {
		return unicode.IsUpper(r)
	}
	return false
}
