// Package nlu implements the natural-language-understanding substrate: the
// local equivalents of the cognitive services the paper's SDK invokes
// (IBM Watson, Microsoft, Google, Amazon NLU). It provides tokenization,
// named entity recognition over a gazetteer, keyword extraction, document
// and per-entity sentiment analysis, concept/taxonomy mapping, and named
// entity disambiguation. Three differently tuned engine profiles stand in
// for competing vendors so the SDK's ranking, aggregation, and comparison
// features have real services to exercise.
package nlu

import (
	"strings"
	"unicode"
)

// Token is one word-level token with its byte offsets in the source text.
type Token struct {
	// Text is the token as it appears in the source.
	Text string
	// Lower is the lower-cased form, precomputed for matching.
	Lower string
	// Start and End are byte offsets into the source ([Start, End)).
	Start int
	End   int
	// SentenceStart marks the first token of a sentence.
	SentenceStart bool
}

// Tokenize splits text into word tokens, recording offsets and sentence
// boundaries. Tokens are maximal runs of letters, digits, and internal
// apostrophes; everything else separates tokens.
func Tokenize(text string) []Token {
	var tokens []Token
	sentenceStart := true
	i := 0
	n := len(text)
	for i < n {
		r := rune(text[i])
		// ASCII fast path covers the corpus; fall back for multibyte.
		if !isWordByte(text[i]) {
			if r == '.' || r == '!' || r == '?' {
				sentenceStart = true
			}
			i++
			continue
		}
		start := i
		for i < n && (isWordByte(text[i]) || (text[i] == '\'' && i+1 < n && isWordByte(text[i+1]))) {
			i++
		}
		tok := text[start:i]
		tokens = append(tokens, Token{
			Text:          tok,
			Lower:         strings.ToLower(tok),
			Start:         start,
			End:           i,
			SentenceStart: sentenceStart,
		})
		sentenceStart = false
	}
	return tokens
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b >= 0x80
}

// Sentences splits text into sentences on ., !, ? boundaries, trimming
// whitespace and dropping empties.
func Sentences(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		s := strings.TrimSpace(b.String())
		if s != "" {
			out = append(out, s)
		}
		b.Reset()
	}
	for _, r := range text {
		b.WriteRune(r)
		if r == '.' || r == '!' || r == '?' {
			flush()
		}
	}
	flush()
	return out
}

// IsCapitalized reports whether the token begins with an upper-case letter.
func IsCapitalized(tok string) bool {
	for _, r := range tok {
		return unicode.IsUpper(r)
	}
	return false
}
