package nlu

import (
	"testing"

	"repro/internal/lexicon"
)

func extract(t *testing.T, text string) []Relation {
	t.Helper()
	tokens := Tokenize(text)
	m := NewMatcher(lexicon.AllEntities())
	mentions := m.Match(text, tokens)
	return ExtractRelations(text, tokens, mentions, nil)
}

func TestExtractAcquisition(t *testing.T) {
	rels := extract(t, "Acme Corporation acquired Globex Industries last month.")
	if len(rels) != 1 {
		t.Fatalf("relations = %+v", rels)
	}
	r := rels[0]
	if r.SubjectID != "company:acme" || r.Predicate != "kb:acquired" || r.ObjectID != "company:globex" {
		t.Errorf("relation = %+v", r)
	}
	if r.Trigger != "acquired" {
		t.Errorf("trigger = %s", r.Trigger)
	}
	if r.Confidence <= 0 || r.Confidence > 1 {
		t.Errorf("confidence = %v", r.Confidence)
	}
}

func TestExtractDirectionality(t *testing.T) {
	rels := extract(t, "Globex Industries acquired Acme Corporation.")
	if len(rels) != 1 {
		t.Fatalf("relations = %+v", rels)
	}
	if rels[0].SubjectID != "company:globex" || rels[0].ObjectID != "company:acme" {
		t.Errorf("direction wrong: %+v", rels[0])
	}
}

func TestExtractRequiresSameSentence(t *testing.T) {
	rels := extract(t, "Acme Corporation reported results. Analysts praised Globex Industries.")
	for _, r := range rels {
		if r.SubjectID == "company:acme" && r.ObjectID == "company:globex" {
			t.Errorf("cross-sentence relation extracted: %+v", r)
		}
	}
}

func TestExtractRequiresTrigger(t *testing.T) {
	rels := extract(t, "Acme Corporation and Globex Industries attended the forum.")
	if len(rels) != 0 {
		t.Errorf("triggerless relation extracted: %+v", rels)
	}
}

func TestExtractDistanceBound(t *testing.T) {
	// The trigger sits between the mentions but the pair is far apart.
	text := "Acme Corporation together with many other well known large firms across several " +
		"different regions and markets acquired yesterday by surprise Globex Industries."
	rels := extract(t, text)
	if len(rels) != 0 {
		t.Errorf("distant relation extracted: %+v", rels)
	}
}

func TestConfidenceDecreasesWithDistance(t *testing.T) {
	near := extract(t, "Acme Corporation acquired Globex Industries.")
	far := extract(t, "Acme Corporation quietly and rather unexpectedly acquired the struggling Globex Industries.")
	if len(near) != 1 || len(far) != 1 {
		t.Fatalf("near=%v far=%v", near, far)
	}
	if near[0].Confidence <= far[0].Confidence {
		t.Errorf("near conf %v should exceed far conf %v", near[0].Confidence, far[0].Confidence)
	}
}

func TestExtractMultipleRelations(t *testing.T) {
	text := "Acme Corporation acquired Globex Industries. Maria Silva praised Initech Systems."
	rels := extract(t, text)
	if len(rels) != 2 {
		t.Fatalf("relations = %+v", rels)
	}
	keys := map[string]bool{}
	for _, r := range rels {
		keys[RelationKey(r)] = true
	}
	if !keys["company:acme kb:acquired company:globex"] {
		t.Errorf("missing acquisition: %v", keys)
	}
	if !keys["person:maria-silva kb:praised company:initech"] {
		t.Errorf("missing praise: %v", keys)
	}
}

func TestExtractCustomTriggers(t *testing.T) {
	text := "Acme Corporation sponsors Globex Industries."
	tokens := Tokenize(text)
	m := NewMatcher(lexicon.AllEntities())
	mentions := m.Match(text, tokens)
	custom := map[string]string{"sponsors": "kb:sponsors"}
	rels := ExtractRelations(text, tokens, mentions, custom)
	if len(rels) != 1 || rels[0].Predicate != "kb:sponsors" {
		t.Errorf("relations = %+v", rels)
	}
}

func TestEngineIncludesRelations(t *testing.T) {
	e := NewEngine(ProfileAlpha)
	a := e.Analyze("Acme Corporation acquired Globex Industries.")
	if len(a.Relations) != 1 {
		t.Fatalf("analysis relations = %+v", a.Relations)
	}
	// Round trip through the service envelope keeps them.
	resp, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAnalysis(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Relations) != 1 {
		t.Error("relations lost in JSON round trip")
	}
}

func TestExtractSameEntityPairSkipped(t *testing.T) {
	rels := extract(t, "Acme praised Acme Corporation.")
	for _, r := range rels {
		if r.SubjectID == r.ObjectID {
			t.Errorf("self-relation extracted: %+v", r)
		}
	}
}
