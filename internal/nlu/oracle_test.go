package nlu_test

// The equivalence oracle for the interned Engine.Analyze: nluref is the
// pre-interning implementation frozen verbatim, and every analysis here
// must come out bit-identical between the two packages — entities,
// keywords, sentiment floats, concepts, relations, field for field —
// across all three engine profiles, including the profiles whose
// drop/spurious/noise paths consume randomness. Equality is asserted on
// the marshaled JSON, which distinguishes nil from empty slices and
// pins every float bit (encoding/json renders the shortest exact
// representation).
//
// The one deliberate divergence is multibyte tokenization, which nlu
// fixes and nluref preserves; the oracle corpus is ASCII, so it is not
// exercised here (tokenize_multibyte_test.go covers the fix).

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/nlu"
	"repro/internal/nlu/nluref"
	"repro/internal/webcorpus"
)

var oracleProfiles = []struct {
	nu  nlu.Profile
	ref nluref.Profile
}{
	{nlu.ProfileAlpha, nluref.ProfileAlpha},
	{nlu.ProfileBeta, nluref.ProfileBeta},
	{nlu.ProfileGamma, nluref.ProfileGamma},
}

// oracleTexts returns the generated document bodies plus hand-picked
// edge cases: empty-ish inputs, punctuation-only sentences (spurious
// mentions with no tokens), acronym case sensitivity, negation and
// intensification, multiword gazetteer surfaces, and relation triggers.
func oracleTexts(t *testing.T) []string {
	t.Helper()
	var texts []string
	for _, seed := range []int64{7, 99, 2026} {
		c := webcorpus.Generate(webcorpus.Config{Seed: seed, NumDocs: 40})
		for _, d := range c.Docs {
			texts = append(texts, d.Body)
			texts = append(texts, d.Title)
		}
	}
	texts = append(texts,
		"",
		"...",
		"!!! ??? ...",
		"#### $$$$ abc.",
		"The US praised Germany. But us and germany are lowercase.",
		"United States of America signed with United Kingdom yesterday.",
		"Acme Corp acquired Globex Corporation in a very good deal.",
		"This is not good. That was extremely bad! Hardly excellent?",
		"Word",
		"a b c d e f",
		"Alice visited Berlin. Berlin praised Alice. Alice praised Berlin.",
		"it's the people's republic of runners' code",
	)
	// Randomized word soup over a mixed alphabet of known and unknown
	// words stresses every counting path with out-of-vocabulary tokens.
	rng := rand.New(rand.NewSource(42))
	alphabet := []string{
		"technology", "market", "Germany", "Acme", "excellent", "terrible",
		"not", "very", "acquired", "praised", "zzyzx", "Qwerty", "banana",
		"the", "of", "and", ".", "!", "?", "US", "united", "states",
	}
	for i := 0; i < 40; i++ {
		var s string
		for j := 0; j < 5+rng.Intn(60); j++ {
			if j > 0 {
				s += " "
			}
			s += alphabet[rng.Intn(len(alphabet))]
		}
		texts = append(texts, s)
	}
	if len(texts) < 100 {
		t.Fatalf("oracle corpus too small: %d texts", len(texts))
	}
	return texts
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestAnalyzeMatchesReference is the oracle: the interned Analyze must be
// bit-identical to the frozen reference on every text and every profile.
func TestAnalyzeMatchesReference(t *testing.T) {
	texts := oracleTexts(t)
	for _, p := range oracleProfiles {
		p := p
		t.Run(p.nu.Name, func(t *testing.T) {
			eng := nlu.NewEngine(p.nu)
			ref := nluref.NewEngine(p.ref)
			for i, text := range texts {
				got := mustJSON(t, eng.Analyze(text))
				want := mustJSON(t, ref.Analyze(text))
				if got != want {
					t.Fatalf("text %d diverged\ntext: %.120q\n got: %s\nwant: %s", i, text, got, want)
				}
			}
		})
	}
}

// TestAnalyzeDeterministicAcrossCalls re-analyzes the same documents with
// the same engine: pooled scratch reuse must not leak state between
// documents.
func TestAnalyzeDeterministicAcrossCalls(t *testing.T) {
	texts := oracleTexts(t)[:50]
	eng := nlu.NewEngine(nlu.ProfileGamma)
	first := make([]string, len(texts))
	for i, text := range texts {
		first[i] = mustJSON(t, eng.Analyze(text))
	}
	// Second pass in reverse order so each document is preceded by
	// different pool contents than on the first pass.
	for i := len(texts) - 1; i >= 0; i-- {
		if again := mustJSON(t, eng.Analyze(texts[i])); again != first[i] {
			t.Fatalf("text %d changed between calls\nfirst: %s\nagain: %s", i, first[i], again)
		}
	}
}

// TestTokenizeMatchesReferenceOnASCII pins the public tokenizer to the
// frozen one wherever they are specified to agree (pure-ASCII input).
func TestTokenizeMatchesReferenceOnASCII(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 5, NumDocs: 30})
	for _, d := range c.Docs {
		got := nlu.Tokenize(d.Body)
		ref := nluref.Tokenize(d.Body)
		if len(got) != len(ref) {
			t.Fatalf("token count %d != %d for %.80q", len(got), len(ref), d.Body)
		}
		for i := range got {
			r := nlu.Token(ref[i])
			if !reflect.DeepEqual(got[i], r) {
				t.Fatalf("token %d: %+v != %+v", i, got[i], r)
			}
		}
	}
}

// TestAnalyzeConcurrent exercises the doc pool from many goroutines; run
// with -race this is the guard against scratch sharing bugs.
func TestAnalyzeConcurrent(t *testing.T) {
	texts := oracleTexts(t)[:40]
	eng := nlu.NewEngine(nlu.ProfileBeta)
	want := make([]string, len(texts))
	for i, text := range texts {
		want[i] = mustJSON(t, eng.Analyze(text))
	}
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := range texts {
				j := (i + g) % len(texts)
				if got := mustJSON(t, eng.Analyze(texts[j])); got != want[j] {
					errc <- fmt.Errorf("goroutine %d text %d diverged", g, j)
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
