package nlu

import (
	"testing"

	"repro/internal/metrics"
)

func TestInstrumentRecordsPerDocument(t *testing.T) {
	set := metrics.NewSet()
	Instrument(set)
	t.Cleanup(func() { Instrument(nil) })

	e := NewEngine(ProfileAlpha)
	docs := []string{
		"IBM Watson announced strong results. The market reacted well.",
		"Quuxly zorgleblat frobnicated wildly.", // mostly out-of-vocabulary
		"Energy prices fell sharply in Europe today.",
	}
	for _, d := range docs {
		e.Analyze(d)
	}

	hist := set.Histogram("richsdk_nlu_analyze_seconds", "")
	if got := hist.Snapshot().Count; got != uint64(len(docs)) {
		t.Errorf("analyze histogram count = %d, want %d", got, len(docs))
	}
	tokens := set.Counter("richsdk_nlu_tokens_total", "").Value()
	if tokens == 0 {
		t.Error("tokens counter stayed zero")
	}
	oov := set.Counter("richsdk_nlu_oov_tokens_total", "").Value()
	if oov == 0 {
		t.Error("OOV counter stayed zero despite nonsense document")
	}
	if oov >= tokens {
		t.Errorf("OOV %d >= tokens %d", oov, tokens)
	}
	gets := set.Counter("richsdk_nlu_scratch_gets_total", "").Value()
	allocs := set.Counter("richsdk_nlu_scratch_allocs_total", "").Value()
	if gets != uint64(len(docs)) {
		t.Errorf("scratch gets = %d, want %d", gets, len(docs))
	}
	if allocs > gets {
		t.Errorf("pool allocs %d > gets %d", allocs, gets)
	}
	gauge := set.Gauge("richsdk_intern_dict_size", "", metrics.Label{Name: "dict", Value: "nlu-vocab"})
	if got := gauge.Value(); got != int64(vocab().dict.Len()) {
		t.Errorf("vocab gauge = %d, want %d", got, vocab().dict.Len())
	}
}

func TestInstrumentNilDetaches(t *testing.T) {
	set := metrics.NewSet()
	Instrument(set)
	e := NewEngine(ProfileAlpha)
	e.Analyze("The market grew.")
	hist := set.Histogram("richsdk_nlu_analyze_seconds", "")
	if got := hist.Snapshot().Count; got != 1 {
		t.Fatalf("histogram count = %d, want 1", got)
	}
	Instrument(nil)
	e.Analyze("The market grew again.")
	if got := hist.Snapshot().Count; got != 1 {
		t.Errorf("detached engine still recorded: count = %d, want 1", got)
	}
}

// TestInstrumentedAnalysisIdentical pins that instrumentation never
// perturbs results: the same document analyzed with instruments attached
// and detached must be bit-identical (the property that keeps caching
// semantically sound).
func TestInstrumentedAnalysisIdentical(t *testing.T) {
	e := NewEngine(ProfileGamma) // noisiest profile: most random draws
	text := "IBM and Microsoft compete fiercely. Analysts expect growth! Prices rose."
	plain := e.Analyze(text)
	Instrument(metrics.NewSet())
	instrumented := e.Analyze(text)
	Instrument(nil)
	if !analysesEqual(plain, instrumented) {
		t.Errorf("instrumented analysis differs:\nplain: %+v\ninstrumented: %+v", plain, instrumented)
	}
}

func analysesEqual(a, b Analysis) bool {
	if a.Engine != b.Engine || a.Sentiment != b.Sentiment || a.Language != b.Language {
		return false
	}
	if len(a.Entities) != len(b.Entities) || len(a.Keywords) != len(b.Keywords) ||
		len(a.Concepts) != len(b.Concepts) || len(a.Relations) != len(b.Relations) {
		return false
	}
	for i := range a.Entities {
		if a.Entities[i] != b.Entities[i] {
			return false
		}
	}
	for i := range a.Keywords {
		if a.Keywords[i] != b.Keywords[i] {
			return false
		}
	}
	return true
}
