package nlu_test

// FuzzTokenize asserts the tokenizer's structural invariants on
// arbitrary byte soup — offsets in bounds and strictly ordered, Text
// slicing back out of the input, Lower really being the lower-casing,
// sentence flags starting the stream — and locks the tokenizer to the
// frozen reference on pure-ASCII input, where the two are specified to
// agree byte for byte.

import (
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/nlu"
	"repro/internal/nlu/nluref"
)

func FuzzTokenize(f *testing.F) {
	f.Add("The quick brown fox. It's fast!")
	f.Add("profits—losses… “quotes” and it’s")
	f.Add("Zürich 東京 café naïve")
	f.Add("a\x80b\xff\xfe…")
	f.Add("... !!! ??? 42% Q3, runners' it's")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		tokens := nlu.Tokenize(text)
		prevEnd := 0
		for i, tok := range tokens {
			if tok.Start < prevEnd || tok.End <= tok.Start || tok.End > len(text) {
				t.Fatalf("token %d span [%d,%d) out of order or bounds (prev end %d, len %d)",
					i, tok.Start, tok.End, prevEnd, len(text))
			}
			prevEnd = tok.End
			if text[tok.Start:tok.End] != tok.Text {
				t.Fatalf("token %d Text %q != text[%d:%d] %q", i, tok.Text, tok.Start, tok.End, text[tok.Start:tok.End])
			}
			if tok.Lower != strings.ToLower(tok.Text) {
				t.Fatalf("token %d Lower %q != ToLower(%q)", i, tok.Lower, tok.Text)
			}
			if i == 0 && !tok.SentenceStart {
				t.Fatal("first token does not start a sentence")
			}
		}
		// On pure-ASCII input the fixed tokenizer and the frozen
		// reference must agree exactly.
		if utf8.ValidString(text) {
			ascii := true
			for i := 0; i < len(text); i++ {
				if text[i] >= 0x80 {
					ascii = false
					break
				}
			}
			if ascii {
				ref := nluref.Tokenize(text)
				if len(ref) != len(tokens) {
					t.Fatalf("ASCII divergence: %d tokens vs reference %d", len(tokens), len(ref))
				}
				for i := range tokens {
					if tokens[i] != nlu.Token(ref[i]) {
						t.Fatalf("ASCII divergence at token %d: %+v vs %+v", i, tokens[i], ref[i])
					}
				}
			}
		}
	})
}
