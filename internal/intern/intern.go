// Package intern is the shared symbol-table layer beneath the interned
// subsystems: the RDF store, the search index, the lexicon's PMI builder,
// and the NLU hot path all map their vocabularies through it instead of
// keeping private copies of the same two-way dictionary.
//
// It offers two concrete shapes for the two ownership models those
// consumers actually have:
//
//   - Dict is the mutable table: each distinct value is assigned a dense
//     uint32 ID on first sight and IDs stay stable forever (they are never
//     reclaimed, matching the RDF store's contract that compiled rule
//     patterns and concurrent readers can hold IDs across removals).
//     A Dict is not synchronized; the owner supplies the lock.
//
//   - Frozen is the immutable snapshot for read-mostly consumers: the
//     search index builds its dictionary once and then serves concurrent
//     queries with no synchronization, and the NLU engines share one
//     process-wide vocabulary across goroutines. Freeze takes ownership
//     of the Dict's tables, so snapshotting is O(1).
//
// IDs are dense from zero in both shapes, so ^uint32(0) is safe as an
// out-of-band sentinel (the RDF store's wildcard, the NLU matcher's
// unknown-token marker) and ID-indexed side tables are plain slices.
package intern

import "repro/internal/metrics"

// Dict is a mutable two-way symbol table assigning dense uint32 IDs.
// The zero value is not ready for use; call NewDict.
type Dict[T comparable] struct {
	ids   map[T]uint32
	vals  []T
	gauge *metrics.Gauge // optional size gauge; nil-safe, updated on growth
}

// NewDict returns an empty dictionary.
func NewDict[T comparable]() *Dict[T] {
	return &Dict[T]{ids: make(map[T]uint32)}
}

// Intern returns v's ID, assigning the next free one on first sight.
func (d *Dict[T]) Intern(v T) uint32 {
	if id, ok := d.ids[v]; ok {
		return id
	}
	id := uint32(len(d.vals))
	d.ids[v] = id
	d.vals = append(d.vals, v)
	d.gauge.Set(int64(len(d.vals)))
	return id
}

// WatchLen attaches a dictionary-size gauge: it is set to the current
// size immediately and kept current by every Intern that assigns a new
// ID (hit-path lookups never touch it) and by Reset. A nil gauge is
// inert, so uninstrumented dictionaries pay one nil check per new term.
// The owner's locking discipline covers the gauge: WatchLen must be
// called under the same synchronization as Intern.
func (d *Dict[T]) WatchLen(g *metrics.Gauge) {
	d.gauge = g
	g.Set(int64(len(d.vals)))
}

// Lookup returns v's ID without assigning one. A miss means no interned
// datum can contain v.
func (d *Dict[T]) Lookup(v T) (uint32, bool) {
	id, ok := d.ids[v]
	return id, ok
}

// Value maps an ID back to its value. It panics on IDs the dictionary
// never issued, the same contract as indexing a slice.
func (d *Dict[T]) Value(id uint32) T { return d.vals[id] }

// Len returns the number of distinct values interned.
func (d *Dict[T]) Len() int { return len(d.vals) }

// Reset empties the dictionary while keeping its allocated tables, so a
// pooled per-document overflow dict can be reused across documents
// without reallocating. IDs restart from zero; any IDs issued before the
// reset are invalidated.
func (d *Dict[T]) Reset() {
	clear(d.ids)
	d.vals = d.vals[:0]
	d.gauge.Set(0)
}

// Freeze converts the dictionary into an immutable snapshot, taking
// ownership of its tables: the Dict must not be used afterwards (every
// method panics, making accidental post-freeze writes loud rather than
// racy). The O(1) handoff is what lets index builds intern millions of
// terms and still freeze for free.
func (d *Dict[T]) Freeze() *Frozen[T] {
	f := &Frozen[T]{ids: d.ids, vals: d.vals}
	d.ids = nil
	d.vals = nil
	return f
}

// Frozen is an immutable two-way symbol table. It is safe for concurrent
// use with no synchronization: nothing mutates after Freeze.
type Frozen[T comparable] struct {
	ids  map[T]uint32
	vals []T
}

// Lookup returns v's ID. A miss means v was not in the dictionary when it
// was frozen.
func (f *Frozen[T]) Lookup(v T) (uint32, bool) {
	id, ok := f.ids[v]
	return id, ok
}

// Value maps an ID back to its value.
func (f *Frozen[T]) Value(id uint32) T { return f.vals[id] }

// Len returns the number of distinct values.
func (f *Frozen[T]) Len() int { return len(f.vals) }

// LookupBytes is Frozen[string].Lookup keyed by a byte slice. The
// compiler elides the string conversion in the map probe, so hot paths
// (the NLU tokenizer lowering into a reusable buffer) can look tokens up
// with zero allocations. It is a free function because Go does not allow
// methods on a specialized instantiation.
func LookupBytes(f *Frozen[string], b []byte) (uint32, bool) {
	id, ok := f.ids[string(b)]
	return id, ok
}

// DictLookupBytes is Dict[string].Lookup keyed by a byte slice, the
// mutable-table counterpart of LookupBytes.
func DictLookupBytes(d *Dict[string], b []byte) (uint32, bool) {
	id, ok := d.ids[string(b)]
	return id, ok
}
