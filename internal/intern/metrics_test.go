package intern

import (
	"testing"

	"repro/internal/metrics"
)

func TestWatchLenTracksDictionary(t *testing.T) {
	d := NewDict[string]()
	d.Intern("a")
	d.Intern("b")
	set := metrics.NewSet()
	g := set.Gauge("dict_size", "test gauge")
	// Attaching seeds the gauge with the current size.
	d.WatchLen(g)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge after WatchLen = %d, want 2", got)
	}
	d.Intern("c")
	d.Intern("a") // duplicate: no growth
	if got := g.Value(); got != 3 {
		t.Errorf("gauge after interning = %d, want 3", got)
	}
	d.Reset()
	if got := g.Value(); got != 0 {
		t.Errorf("gauge after Reset = %d, want 0", got)
	}
	d.Intern("x")
	if got := g.Value(); got != 1 {
		t.Errorf("gauge after post-Reset intern = %d, want 1", got)
	}
	// Detach: further growth leaves the gauge alone.
	d.WatchLen(nil)
	d.Intern("y")
	if got := g.Value(); got != 1 {
		t.Errorf("detached gauge moved to %d, want 1", got)
	}
}
