package intern

import (
	"fmt"
	"testing"
)

func TestDictInternAssignsDenseStableIDs(t *testing.T) {
	d := NewDict[string]()
	words := []string{"alpha", "beta", "gamma", "beta", "alpha", "delta"}
	want := []uint32{0, 1, 2, 1, 0, 3}
	for i, w := range words {
		if id := d.Intern(w); id != want[i] {
			t.Errorf("Intern(%q) = %d, want %d", w, id, want[i])
		}
	}
	if d.Len() != 4 {
		t.Errorf("Len = %d, want 4", d.Len())
	}
	for id, w := range []string{"alpha", "beta", "gamma", "delta"} {
		if got := d.Value(uint32(id)); got != w {
			t.Errorf("Value(%d) = %q, want %q", id, got, w)
		}
	}
}

func TestDictLookupDoesNotAssign(t *testing.T) {
	d := NewDict[string]()
	d.Intern("known")
	if _, ok := d.Lookup("unknown"); ok {
		t.Error("Lookup invented an ID")
	}
	if d.Len() != 1 {
		t.Errorf("Lookup grew the dictionary to %d entries", d.Len())
	}
	if id, ok := d.Lookup("known"); !ok || id != 0 {
		t.Errorf("Lookup(known) = %d, %v", id, ok)
	}
}

func TestDictNonStringKeys(t *testing.T) {
	type term struct {
		kind int
		val  string
	}
	d := NewDict[term]()
	a := d.Intern(term{1, "x"})
	b := d.Intern(term{2, "x"}) // same value, different kind: distinct
	if a == b {
		t.Error("distinct composite keys shared an ID")
	}
	if got := d.Value(a); got != (term{1, "x"}) {
		t.Errorf("Value(%d) = %+v", a, got)
	}
}

func TestFreezeSnapshotsAndDisablesDict(t *testing.T) {
	d := NewDict[string]()
	for i := 0; i < 100; i++ {
		d.Intern(fmt.Sprintf("w%03d", i))
	}
	f := d.Freeze()
	if f.Len() != 100 {
		t.Fatalf("frozen Len = %d, want 100", f.Len())
	}
	for i := 0; i < 100; i++ {
		w := fmt.Sprintf("w%03d", i)
		id, ok := f.Lookup(w)
		if !ok || id != uint32(i) {
			t.Fatalf("Lookup(%q) = %d, %v", w, id, ok)
		}
		if f.Value(uint32(i)) != w {
			t.Fatalf("Value(%d) = %q", i, f.Value(uint32(i)))
		}
	}
	if _, ok := f.Lookup("absent"); ok {
		t.Error("frozen Lookup invented an ID")
	}
	// The source Dict is dead after Freeze: interning must panic, not race.
	defer func() {
		if recover() == nil {
			t.Error("Intern after Freeze did not panic")
		}
	}()
	d.Intern("late")
}

func TestLookupBytes(t *testing.T) {
	d := NewDict[string]()
	d.Intern("hello")
	d.Intern("world")
	if id, ok := DictLookupBytes(d, []byte("world")); !ok || id != 1 {
		t.Errorf("DictLookupBytes(world) = %d, %v", id, ok)
	}
	f := d.Freeze()
	if id, ok := LookupBytes(f, []byte("hello")); !ok || id != 0 {
		t.Errorf("LookupBytes(hello) = %d, %v", id, ok)
	}
	if _, ok := LookupBytes(f, []byte("nope")); ok {
		t.Error("LookupBytes invented an ID")
	}
}

func TestLookupBytesZeroAlloc(t *testing.T) {
	d := NewDict[string]()
	d.Intern("steady")
	f := d.Freeze()
	buf := []byte("steady")
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := LookupBytes(f, buf); !ok {
			t.Fatal("lost the key")
		}
	})
	if allocs != 0 {
		t.Errorf("LookupBytes allocates %.1f/op, want 0", allocs)
	}
}
