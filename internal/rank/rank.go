// Package rank implements the rich SDK's service ranking (paper §2): each
// service providing similar functionality is assigned a score combining its
// predicted response time, monetary cost, and response quality, and
// services are ranked by ascending score — "the service with the lowest
// score is the most desirable one". Both the raw weighted formula
// (Equation 1) and the normalized formula (Equation 2) are provided, along
// with support for user-supplied custom scoring.
package rank

import (
	"errors"
	"sort"
)

// Estimate carries the predicted properties of one service, produced from
// the SDK's collected monitoring data (or defaults when data is missing).
type Estimate struct {
	// Name identifies the service.
	Name string
	// ResponseTimeMS is the predicted response time in milliseconds (r).
	ResponseTimeMS float64
	// Cost is the predicted monetary cost per invocation (c).
	Cost float64
	// Quality is the predicted quality of returned data (q); higher is
	// better.
	Quality float64
}

// Weights are the relative importances of response time, cost, and quality
// (the paper's alpha, beta, gamma). They may be supplied by the user.
type Weights struct {
	Alpha float64 // response time weight
	Beta  float64 // monetary cost weight
	Gamma float64 // quality weight
}

// DefaultWeights balance the three factors equally.
var DefaultWeights = Weights{Alpha: 1, Beta: 1, Gamma: 1}

// Scorer assigns a score to one service's estimate; all carries every
// candidate's estimate for scorers that need population context (for
// example normalization). Lower scores rank higher.
type Scorer interface {
	Score(e Estimate, all []Estimate) float64
}

// Weighted implements the paper's Equation 1:
//
//	S = alpha*r + beta*c - gamma*q
type Weighted struct {
	W Weights
}

var _ Scorer = Weighted{}

// Score implements Scorer.
func (s Weighted) Score(e Estimate, _ []Estimate) float64 {
	return s.W.Alpha*e.ResponseTimeMS + s.W.Beta*e.Cost - s.W.Gamma*e.Quality
}

// Normalized implements the paper's Equation 2, which normalizes each
// factor by its maximum over all services with similar functionality:
//
//	Sn = alpha*r/rmax + beta*c/cmax - gamma*q/qmax
//
// Factors whose maximum is zero contribute zero (all candidates tie on that
// factor).
type Normalized struct {
	W Weights
}

var _ Scorer = Normalized{}

// Score implements Scorer.
func (s Normalized) Score(e Estimate, all []Estimate) float64 {
	var rmax, cmax, qmax float64
	for _, a := range all {
		if a.ResponseTimeMS > rmax {
			rmax = a.ResponseTimeMS
		}
		if a.Cost > cmax {
			cmax = a.Cost
		}
		if a.Quality > qmax {
			qmax = a.Quality
		}
	}
	var score float64
	if rmax > 0 {
		score += s.W.Alpha * e.ResponseTimeMS / rmax
	}
	if cmax > 0 {
		score += s.W.Beta * e.Cost / cmax
	}
	if qmax > 0 {
		score -= s.W.Gamma * e.Quality / qmax
	}
	return score
}

// Custom adapts a user-provided scoring function (paper §2: "the rich SDK
// allows scores to be assigned to services using Equation 1, Equation 2, or
// a customized formula provided by the user").
type Custom func(e Estimate, all []Estimate) float64

var _ Scorer = Custom(nil)

// Score implements Scorer.
func (c Custom) Score(e Estimate, all []Estimate) float64 { return c(e, all) }

// Scored is an estimate with its computed score.
type Scored struct {
	Estimate
	Score float64
}

// ErrNoCandidates is returned when ranking is asked to choose among zero
// services.
var ErrNoCandidates = errors.New("rank: no candidate services")

// Rank scores every estimate and returns them sorted by ascending score
// (best first). Ties preserve input order, making ranking deterministic.
func Rank(estimates []Estimate, scorer Scorer) []Scored {
	out := make([]Scored, len(estimates))
	for i, e := range estimates {
		out[i] = Scored{Estimate: e, Score: scorer.Score(e, estimates)}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score < out[j].Score })
	return out
}

// Best returns the top-ranked estimate.
func Best(estimates []Estimate, scorer Scorer) (Scored, error) {
	if len(estimates) == 0 {
		return Scored{}, ErrNoCandidates
	}
	ranked := Rank(estimates, scorer)
	return ranked[0], nil
}

// Order returns the service names from best to worst — the order in which
// failover should try services (paper §2.1: "start with higher ranked
// services and continue with lower ranked services until a responsive
// service is found").
func Order(estimates []Estimate, scorer Scorer) []string {
	ranked := Rank(estimates, scorer)
	names := make([]string, len(ranked))
	for i, r := range ranked {
		names[i] = r.Name
	}
	return names
}
