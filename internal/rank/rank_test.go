package rank

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

var candidates = []Estimate{
	{Name: "fast-expensive", ResponseTimeMS: 10, Cost: 5, Quality: 0.8},
	{Name: "slow-cheap", ResponseTimeMS: 100, Cost: 0.5, Quality: 0.8},
	{Name: "balanced", ResponseTimeMS: 40, Cost: 2, Quality: 0.9},
}

func TestWeightedEquation1(t *testing.T) {
	s := Weighted{W: Weights{Alpha: 1, Beta: 2, Gamma: 3}}
	e := Estimate{ResponseTimeMS: 10, Cost: 5, Quality: 2}
	// S = 1*10 + 2*5 - 3*2 = 14
	if got := s.Score(e, nil); got != 14 {
		t.Errorf("Score = %v, want 14", got)
	}
}

func TestWeightedLatencyOnlyPicksFastest(t *testing.T) {
	scorer := Weighted{W: Weights{Alpha: 1}}
	best, err := Best(candidates, scorer)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name != "fast-expensive" {
		t.Errorf("Best = %s, want fast-expensive", best.Name)
	}
}

func TestWeightedCostOnlyPicksCheapest(t *testing.T) {
	scorer := Weighted{W: Weights{Beta: 1}}
	best, err := Best(candidates, scorer)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name != "slow-cheap" {
		t.Errorf("Best = %s, want slow-cheap", best.Name)
	}
}

func TestWeightedQualityOnlyPicksBestQuality(t *testing.T) {
	scorer := Weighted{W: Weights{Gamma: 1}}
	best, err := Best(candidates, scorer)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name != "balanced" {
		t.Errorf("Best = %s, want balanced", best.Name)
	}
}

func TestNormalizedEquation2(t *testing.T) {
	s := Normalized{W: Weights{Alpha: 1, Beta: 1, Gamma: 1}}
	all := []Estimate{
		{Name: "a", ResponseTimeMS: 10, Cost: 4, Quality: 1},
		{Name: "b", ResponseTimeMS: 20, Cost: 2, Quality: 0.5},
	}
	// a: 10/20 + 4/4 - 1/1 = 0.5; b: 20/20 + 2/4 - 0.5/1 = 1.0
	if got := s.Score(all[0], all); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Score(a) = %v, want 0.5", got)
	}
	if got := s.Score(all[1], all); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Score(b) = %v, want 1.0", got)
	}
}

func TestNormalizedZeroMaxFactorsIgnored(t *testing.T) {
	s := Normalized{W: DefaultWeights}
	all := []Estimate{
		{Name: "a", ResponseTimeMS: 0, Cost: 0, Quality: 0},
		{Name: "b", ResponseTimeMS: 0, Cost: 0, Quality: 0},
	}
	if got := s.Score(all[0], all); got != 0 {
		t.Errorf("all-zero Score = %v, want 0 (no NaN)", got)
	}
}

func TestNormalizedScoreBounded(t *testing.T) {
	// Property: with unit weights and non-negative inputs, Sn is within
	// [-1, 2].
	f := func(r1, c1, q1, r2, c2, q2 float64) bool {
		abs := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Abs(x)
		}
		all := []Estimate{
			{Name: "a", ResponseTimeMS: abs(r1), Cost: abs(c1), Quality: abs(q1)},
			{Name: "b", ResponseTimeMS: abs(r2), Cost: abs(c2), Quality: abs(q2)},
		}
		s := Normalized{W: DefaultWeights}
		for _, e := range all {
			sc := s.Score(e, all)
			if sc < -1-1e-9 || sc > 2+1e-9 || math.IsNaN(sc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCustomScorer(t *testing.T) {
	// A scorer that only cares about name length.
	scorer := Custom(func(e Estimate, _ []Estimate) float64 { return float64(len(e.Name)) })
	best, err := Best(candidates, scorer)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name != "balanced" {
		t.Errorf("Best = %s, want balanced (shortest name)", best.Name)
	}
}

func TestRankAscendingAndStable(t *testing.T) {
	ests := []Estimate{
		{Name: "x", ResponseTimeMS: 5},
		{Name: "tie-1", ResponseTimeMS: 10},
		{Name: "tie-2", ResponseTimeMS: 10},
		{Name: "y", ResponseTimeMS: 1},
	}
	ranked := Rank(ests, Weighted{W: Weights{Alpha: 1}})
	wantOrder := []string{"y", "x", "tie-1", "tie-2"}
	for i, w := range wantOrder {
		if ranked[i].Name != w {
			t.Errorf("rank[%d] = %s, want %s", i, ranked[i].Name, w)
		}
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Score > ranked[i].Score {
			t.Error("scores not ascending")
		}
	}
}

func TestOrder(t *testing.T) {
	got := Order(candidates, Weighted{W: Weights{Alpha: 1}})
	want := []string{"fast-expensive", "balanced", "slow-cheap"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Order = %v, want %v", got, want)
	}
}

func TestBestEmpty(t *testing.T) {
	if _, err := Best(nil, Weighted{W: DefaultWeights}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("error = %v, want ErrNoCandidates", err)
	}
}

func TestRankEmpty(t *testing.T) {
	if got := Rank(nil, Weighted{}); len(got) != 0 {
		t.Errorf("Rank(nil) = %v, want empty", got)
	}
}

func TestEq1VsEq2CanDisagree(t *testing.T) {
	// Raw weighting is dominated by the large-magnitude latency factor;
	// normalization rebalances. These candidates are constructed so the
	// two formulas pick different winners with equal weights.
	ests := []Estimate{
		{Name: "low-latency", ResponseTimeMS: 90, Cost: 10, Quality: 0},
		{Name: "cheap", ResponseTimeMS: 100, Cost: 1, Quality: 0},
	}
	b1, err := Best(ests, Weighted{W: DefaultWeights})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Best(ests, Normalized{W: DefaultWeights})
	if err != nil {
		t.Fatal(err)
	}
	// Eq1: low-latency = 100, cheap = 101 -> low-latency wins.
	// Eq2: low-latency = 0.9+1.0 = 1.9, cheap = 1.0+0.1 = 1.1 -> cheap wins.
	if b1.Name != "low-latency" {
		t.Errorf("Eq1 Best = %s, want low-latency", b1.Name)
	}
	if b2.Name != "cheap" {
		t.Errorf("Eq2 Best = %s, want cheap", b2.Name)
	}
}
