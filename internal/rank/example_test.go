package rank_test

import (
	"fmt"

	"repro/internal/rank"
)

// The paper's Equation 1: pick a service by weighted response time, cost,
// and quality.
func ExampleBest() {
	candidates := []rank.Estimate{
		{Name: "watson-like", ResponseTimeMS: 80, Cost: 0.004, Quality: 0.95},
		{Name: "budget-nlu", ResponseTimeMS: 15, Cost: 0.0005, Quality: 0.70},
	}
	// A latency-sensitive user: alpha dominates.
	best, err := rank.Best(candidates, rank.Weighted{W: rank.Weights{Alpha: 1, Beta: 100, Gamma: 10}})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(best.Name)
	// Output: budget-nlu
}

// Equation 2 normalizes factors so magnitudes don't drown each other.
func ExampleNormalized() {
	candidates := []rank.Estimate{
		{Name: "low-latency", ResponseTimeMS: 90, Cost: 10},
		{Name: "cheap", ResponseTimeMS: 100, Cost: 1},
	}
	order := rank.Order(candidates, rank.Normalized{W: rank.DefaultWeights})
	fmt.Println(order[0])
	// Output: cheap
}
