package docstore

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/nlu"
)

func newStore(t *testing.T) (*Store, *clock.Virtual) {
	t.Helper()
	v := clock.NewVirtual(time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC))
	s, err := New(t.TempDir(), v)
	if err != nil {
		t.Fatal(err)
	}
	return s, v
}

func sampleDocs() []SavedDoc {
	return []SavedDoc{
		{URL: "http://web.local/docs/doc-1", Title: "One", HTML: "<p>alpha</p>", Text: "alpha"},
		{URL: "http://web.local/docs/doc-2", Title: "Two", HTML: "<p>beta</p>", Text: "beta"},
	}
}

func TestSaveAndLoadSearch(t *testing.T) {
	s, _ := newStore(t)
	id, err := s.SaveSearch("acme earnings", "search-g", sampleDocs())
	if err != nil {
		t.Fatal(err)
	}
	saved, err := s.LoadSearch(id)
	if err != nil {
		t.Fatal(err)
	}
	if saved.Query != "acme earnings" || saved.Engine != "search-g" || len(saved.Docs) != 2 {
		t.Errorf("saved = %+v", saved)
	}
	if saved.When.IsZero() {
		t.Error("timestamp not recorded")
	}
}

func TestSameQueryLaterIsDistinctSnapshot(t *testing.T) {
	s, v := newStore(t)
	id1, err := s.SaveSearch("q", "e", sampleDocs())
	if err != nil {
		t.Fatal(err)
	}
	v.Advance(time.Hour)
	id2, err := s.SaveSearch("q", "e", sampleDocs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("re-running a query overwrote the earlier snapshot")
	}
	s1, _ := s.LoadSearch(id1)
	s2, _ := s.LoadSearch(id2)
	if len(s1.Docs) != 2 || len(s2.Docs) != 1 {
		t.Errorf("snapshots corrupted: %d, %d docs", len(s1.Docs), len(s2.Docs))
	}
}

func TestListMostRecentFirst(t *testing.T) {
	s, v := newStore(t)
	if _, err := s.SaveSearch("first", "e", nil); err != nil {
		t.Fatal(err)
	}
	v.Advance(time.Hour)
	if _, err := s.SaveSearch("second", "e", sampleDocs()); err != nil {
		t.Fatal(err)
	}
	metas, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 || metas[0].Query != "second" || metas[1].Query != "first" {
		t.Errorf("List = %+v", metas)
	}
	if metas[0].Docs != 2 {
		t.Errorf("doc count = %d", metas[0].Docs)
	}
}

func TestTexts(t *testing.T) {
	s, _ := newStore(t)
	id, err := s.SaveSearch("q", "e", sampleDocs())
	if err != nil {
		t.Fatal(err)
	}
	texts, err := s.Texts(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(texts) != 2 || texts[0] != "alpha" || texts[1] != "beta" {
		t.Errorf("Texts = %v", texts)
	}
}

func TestLoadSearchMissing(t *testing.T) {
	s, _ := newStore(t)
	if _, err := s.LoadSearch("nope"); err == nil {
		t.Error("expected error for missing search")
	}
}

func TestAnalysisRoundTrip(t *testing.T) {
	s, _ := newStore(t)
	a := nlu.Analysis{Engine: "nlu-alpha", Sentiment: 0.4,
		Entities: []nlu.Mention{{EntityID: "country:us", Surface: "US", Kind: "Country"}}}
	if err := s.SaveAnalysis("some document", "nlu-alpha", a); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.LoadAnalysis("some document", "nlu-alpha")
	if err != nil || !ok {
		t.Fatalf("LoadAnalysis = (%v, %v)", ok, err)
	}
	if got.Sentiment != 0.4 || len(got.Entities) != 1 {
		t.Errorf("got = %+v", got)
	}
}

func TestLoadAnalysisMissingIsNotError(t *testing.T) {
	s, _ := newStore(t)
	_, ok, err := s.LoadAnalysis("never analyzed", "nlu-alpha")
	if err != nil {
		t.Fatalf("unexpected error %v", err)
	}
	if ok {
		t.Error("ok = true for missing analysis")
	}
}

func TestAnalysisKeyedByEngine(t *testing.T) {
	s, _ := newStore(t)
	if err := s.SaveAnalysis("doc", "alpha", nlu.Analysis{Engine: "alpha"}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.LoadAnalysis("doc", "beta"); ok {
		t.Error("analysis leaked across engines")
	}
}

func TestAnalyzeOnce(t *testing.T) {
	s, _ := newStore(t)
	calls := 0
	analyze := func(text string) nlu.Analysis {
		calls++
		return nlu.Analysis{Engine: "x", Sentiment: 0.9}
	}
	a1, cached1, err := s.AnalyzeOnce("document body", "x", analyze)
	if err != nil || cached1 {
		t.Fatalf("first = (%v, %v)", cached1, err)
	}
	a2, cached2, err := s.AnalyzeOnce("document body", "x", analyze)
	if err != nil || !cached2 {
		t.Fatalf("second = (%v, %v), want cached", cached2, err)
	}
	if calls != 1 {
		t.Errorf("analyze ran %d times, want 1", calls)
	}
	if a1.Sentiment != a2.Sentiment {
		t.Error("cached analysis differs")
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.SaveSearch("persist", "e", sampleDocs())
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.SaveAnalysis("doc", "e", nlu.Analysis{Engine: "e"}); err != nil {
		t.Fatal(err)
	}
	s2, err := New(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.LoadSearch(id); err != nil {
		t.Errorf("search lost across reopen: %v", err)
	}
	if _, ok, _ := s2.LoadAnalysis("doc", "e"); !ok {
		t.Error("analysis lost across reopen")
	}
}

// TestAnalyzeOnceConcurrent pins the single-flight guarantee: N concurrent
// callers for the same cold (document, engine) key trigger exactly one
// analysis, and every caller but the winner observes cached=true.
func TestAnalyzeOnceConcurrent(t *testing.T) {
	s, _ := newStore(t)
	const callers = 16
	var calls atomic.Int32
	release := make(chan struct{})
	analyze := func(text string) nlu.Analysis {
		calls.Add(1)
		<-release // hold the flight open so every caller piles on
		return nlu.Analysis{Engine: "x", Sentiment: 0.5}
	}

	var wg sync.WaitGroup
	var fresh atomic.Int32
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, cached, err := s.AnalyzeOnce("contended doc", "x", analyze)
			if err != nil {
				errs <- err
				return
			}
			if !cached {
				fresh.Add(1)
			}
		}()
	}
	// Wait until at least one caller is inside the flight, then let it run.
	key := s.analysisPath("contended doc", "x")
	for s.flight.Waiters(key) < 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := calls.Load(); got != 1 {
		t.Errorf("analyze ran %d times under %d concurrent callers, want 1", got, callers)
	}
	if got := fresh.Load(); got != 1 {
		t.Errorf("%d callers saw cached=false, want exactly 1", got)
	}
}

// TestAnalyzeOnceEFailureNotStored checks that a failed analysis is not
// persisted, so the next call retries instead of loading a phantom result.
func TestAnalyzeOnceEFailureNotStored(t *testing.T) {
	s, _ := newStore(t)
	boom := errors.New("engine down")
	_, _, err := s.AnalyzeOnceE("doc", "x", func(string) (nlu.Analysis, error) {
		return nlu.Analysis{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	a, cached, err := s.AnalyzeOnceE("doc", "x", func(string) (nlu.Analysis, error) {
		return nlu.Analysis{Engine: "x", Sentiment: 1}, nil
	})
	if err != nil || cached {
		t.Fatalf("retry = (%v, %v), want fresh success", cached, err)
	}
	if a.Sentiment != 1 {
		t.Errorf("Sentiment = %v, want 1", a.Sentiment)
	}
}
