// Package docstore persists documents fetched from web searches together
// with the query and the time the query was made (paper §2.2: "it is thus
// valuable to be able to store all of the documents from a particular Web
// search along with the query itself and the time the query was made"), and
// persists NLU analysis results so each document "only has to be analyzed
// once" — avoiding repeat latency, monetary cost, and quota consumption.
package docstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/nlu"
)

// SavedDoc is one stored document.
type SavedDoc struct {
	URL   string `json:"url"`
	Title string `json:"title"`
	// HTML is the raw fetched page.
	HTML string `json:"html"`
	// Text is the extracted plain text, ready for analysis.
	Text string `json:"text"`
}

// SavedSearch is one stored search: the query, which engine ran it, when,
// and every fetched document.
type SavedSearch struct {
	ID     string     `json:"id"`
	Query  string     `json:"query"`
	Engine string     `json:"engine"`
	When   time.Time  `json:"when"`
	Docs   []SavedDoc `json:"docs"`
}

// Meta is a stored search's summary line.
type Meta struct {
	ID     string    `json:"id"`
	Query  string    `json:"query"`
	Engine string    `json:"engine"`
	When   time.Time `json:"when"`
	Docs   int       `json:"docs"`
}

// Store is a directory-backed document store. Searches live under
// dir/searches, analyses under dir/analyses. Safe for concurrent use by a
// single process via write-to-temp-then-rename, with AnalyzeOnce calls for
// the same (document, engine) single-flighted.
type Store struct {
	dir    string
	clk    clock.Clock
	flight *cache.Group[analyzeRes]
}

// New opens (creating if needed) a store rooted at dir.
func New(dir string, clk clock.Clock) (*Store, error) {
	if clk == nil {
		clk = clock.Real()
	}
	for _, sub := range []string{"searches", "analyses"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("docstore: create %s: %w", sub, err)
		}
	}
	return &Store{dir: dir, clk: clk, flight: cache.NewGroup[analyzeRes]()}, nil
}

// SaveSearch persists a search and returns its ID. The ID is derived from
// query, engine, and timestamp, so re-running the same query later stores a
// distinct snapshot — the paper notes "the results from a Web search can
// change over time".
func (s *Store) SaveSearch(query, engine string, docs []SavedDoc) (string, error) {
	when := s.clk.Now()
	id := searchID(query, engine, when)
	saved := SavedSearch{ID: id, Query: query, Engine: engine, When: when, Docs: docs}
	if err := writeJSON(filepath.Join(s.dir, "searches", id+".json"), saved); err != nil {
		return "", err
	}
	return id, nil
}

func searchID(query, engine string, when time.Time) string {
	h := sha256.Sum256([]byte(query + "\x00" + engine + "\x00" + when.Format(time.RFC3339Nano)))
	return hex.EncodeToString(h[:8])
}

// LoadSearch retrieves a stored search by ID.
func (s *Store) LoadSearch(id string) (SavedSearch, error) {
	var saved SavedSearch
	if err := readJSON(filepath.Join(s.dir, "searches", id+".json"), &saved); err != nil {
		return SavedSearch{}, err
	}
	return saved, nil
}

// List returns metadata for every stored search, most recent first.
func (s *Store) List() ([]Meta, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "searches"))
	if err != nil {
		return nil, fmt.Errorf("docstore: list: %w", err)
	}
	metas := make([]Meta, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		var saved SavedSearch
		if err := readJSON(filepath.Join(s.dir, "searches", e.Name()), &saved); err != nil {
			return nil, err
		}
		metas = append(metas, Meta{
			ID: saved.ID, Query: saved.Query, Engine: saved.Engine,
			When: saved.When, Docs: len(saved.Docs),
		})
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].When.After(metas[j].When) })
	return metas, nil
}

// Texts returns the extracted texts of a stored search's documents, the
// form consumed by NLU analysis.
func (s *Store) Texts(id string) ([]string, error) {
	saved, err := s.LoadSearch(id)
	if err != nil {
		return nil, err
	}
	texts := make([]string, len(saved.Docs))
	for i, d := range saved.Docs {
		texts[i] = d.Text
	}
	return texts, nil
}

// SaveAnalysis persists the analysis an engine produced for a document
// (keyed by content, so the same document re-fetched under another URL
// still hits). Overwrites are allowed: analyses are deterministic per
// engine, so a rewrite is a no-op semantically.
func (s *Store) SaveAnalysis(docText, engine string, a nlu.Analysis) error {
	return writeJSON(s.analysisPath(docText, engine), a)
}

// LoadAnalysis retrieves a stored analysis; ok is false when the document
// has not been analyzed by that engine yet.
func (s *Store) LoadAnalysis(docText, engine string) (nlu.Analysis, bool, error) {
	var a nlu.Analysis
	err := readJSON(s.analysisPath(docText, engine), &a)
	if err != nil {
		if os.IsNotExist(unwrapPathError(err)) {
			return nlu.Analysis{}, false, nil
		}
		return nlu.Analysis{}, false, err
	}
	return a, true, nil
}

// AnalyzeOnce returns the stored analysis if present, otherwise runs
// analyze, stores, and returns its result. cached reports whether the
// store satisfied the request without a fresh analysis. Concurrent callers
// for the same (document, engine) are single-flighted: exactly one runs
// analyze, the rest share its result.
func (s *Store) AnalyzeOnce(docText, engine string, analyze func(string) nlu.Analysis) (a nlu.Analysis, cached bool, err error) {
	return s.AnalyzeOnceE(docText, engine, func(t string) (nlu.Analysis, error) {
		return analyze(t), nil
	})
}

// analyzeRes carries an AnalyzeOnce outcome through the single-flight
// group.
type analyzeRes struct {
	a      nlu.Analysis
	cached bool
}

// AnalyzeOnceE is AnalyzeOnce for analyzers that can fail — a remote NLU
// service behind the SDK, for example. The analysis is persisted only on
// success; failures are returned to every caller sharing the flight and
// nothing is stored, so a later call retries.
func (s *Store) AnalyzeOnceE(docText, engine string, analyze func(string) (nlu.Analysis, error)) (a nlu.Analysis, cached bool, err error) {
	key := s.analysisPath(docText, engine)
	ran := false
	res, err, _ := s.flight.Do(key, func() (analyzeRes, error) {
		ran = true
		if a, ok, err := s.LoadAnalysis(docText, engine); err != nil {
			return analyzeRes{}, err
		} else if ok {
			return analyzeRes{a: a, cached: true}, nil
		}
		a, err := analyze(docText)
		if err != nil {
			return analyzeRes{}, err
		}
		if err := s.SaveAnalysis(docText, engine, a); err != nil {
			return analyzeRes{}, err
		}
		return analyzeRes{a: a}, nil
	})
	if err != nil {
		return nlu.Analysis{}, false, err
	}
	// A caller whose closure never ran joined another caller's flight: it
	// did not trigger an analysis of its own, so from its point of view
	// the store satisfied the request.
	return res.a, res.cached || !ran, nil
}

func (s *Store) analysisPath(docText, engine string) string {
	h := sha256.Sum256([]byte(engine + "\x00" + docText))
	return filepath.Join(s.dir, "analyses", hex.EncodeToString(h[:16])+".json")
}

func writeJSON(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("docstore: encode: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("docstore: write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("docstore: rename: %w", err)
	}
	return nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("docstore: read: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("docstore: decode %s: %w", filepath.Base(path), err)
	}
	return nil
}

func unwrapPathError(err error) error {
	for {
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return err
		}
		next := u.Unwrap()
		if next == nil {
			return err
		}
		err = next
	}
}
