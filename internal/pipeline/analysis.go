package pipeline

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/metrics"
	"repro/internal/nlu"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/webcorpus"
)

// AnalysisConfig wires the paper's canonical analytics workload — the
// Fig. 3/5 loop query → search → fetch documents → NLU-analyze →
// aggregate → persist → knowledge-base sink — onto the streaming engine.
// Search and analysis go through the rich SDK's core.Client, so caching,
// circuit breaking, quotas, deadlines, and monitoring all apply to every
// call the pipeline makes.
type AnalysisConfig struct {
	// Client is the rich SDK client the pipeline invokes services
	// through. Required.
	Client *core.Client
	// Search is the name of a search service registered on Client.
	// Required for Run; unused by RunDocs.
	Search string
	// NLU lists the NLU services (registered on Client) that analyze
	// every document. The first is the primary engine used for
	// aggregation; the rest feed per-document consensus. Required.
	NLU []string
	// FetchURL is the base URL documents are fetched from over HTTP
	// (document ID appended to FetchURL + "/docs/"). Required for Run.
	FetchURL string
	// HTTPClient performs document fetches. Nil means
	// http.DefaultClient.
	HTTPClient *http.Client
	// Limit caps search results. Values < 1 mean 10.
	Limit int
	// Offset skips that many top-ranked search hits before the pipeline
	// consumes Limit of them (pagination across runs). Values < 1 mean 0.
	Offset int
	// NewsOnly restricts the search to news documents (paper §2.2's
	// news-story restriction).
	NewsOnly bool
	// Expand turns on the search engine's query expansion, broadening
	// the search with alias and co-occurrence terms. The engine must have
	// been built with expansion tables for this to have any effect.
	Expand bool
	// Workers is the fetch/analyze fan-out width. Values < 1 mean 4.
	Workers int
	// Store, when non-nil, persists the search snapshot (query + time +
	// documents) and every analysis so re-runs skip the services
	// entirely (paper §2.2).
	Store *docstore.Store
	// SkipFailedDocs selects the Skip error policy for the fetch and
	// analyze stages: a document that cannot be fetched or analyzed is
	// dropped (and counted) instead of aborting the run.
	SkipFailedDocs bool
	// FetchRetries / AnalyzeRetries grant failing items extra attempts
	// before the error policy applies.
	FetchRetries   int
	AnalyzeRetries int
	// NoCache bypasses the SDK response cache for search and analysis
	// calls (cold-path measurements).
	NoCache bool
	// Sentiments, when non-nil, receives the aggregated per-entity
	// sentiment after the stream drains — the pipeline's knowledge-base
	// sink (kb.StoreWebSentiments turns them into RDF facts).
	Sentiments func(ctx context.Context, sentiments []aggregate.EntitySentiment) error
	// Metrics, when non-nil, receives per-stage latency monitors in
	// place of the pipeline's private registry.
	Metrics *metrics.Registry
	// Tracer, when non-nil, traces the run: a root span per Run/RunDocs
	// with one child span per stage per item, and the SDK invocations the
	// stages make nested inside them. Nil falls back to the Client's
	// tracer, so a traced client traces its pipelines too.
	Tracer *trace.Tracer
}

// DocResult is one document's trip through the pipeline.
type DocResult struct {
	// Index is the document's position in the source stream (search
	// rank for Run, slice index for RunDocs), stable across skips.
	Index int
	// Doc is the fetched document.
	Doc docstore.SavedDoc
	// Analyses holds one analysis per configured NLU service, in
	// AnalysisConfig.NLU order.
	Analyses []nlu.Analysis
	// Cached counts how many of those analyses the docstore satisfied
	// without invoking a service.
	Cached int
}

// Primary returns the primary engine's analysis.
func (d DocResult) Primary() nlu.Analysis { return d.Analyses[0] }

// AnalysisResult is one pipeline run's full outcome.
type AnalysisResult struct {
	// Query is what was searched for (Run) or the label given to
	// RunDocs.
	Query string
	// Hits is how many documents the search returned (Run) or was
	// given (RunDocs); len(Docs) can be smaller when SkipFailedDocs
	// dropped some.
	Hits int
	// SearchID is the docstore snapshot ID ("" without a Store).
	SearchID string
	// Docs are the analyzed documents in stream order.
	Docs []DocResult
	// Analyses are the primary-engine analyses, one per doc.
	Analyses []nlu.Analysis
	// PerDoc are all engines' analyses per doc (consensus input).
	PerDoc [][]nlu.Analysis
	// Entities, Sentiments, Keywords are the Fig. 3 aggregates over the
	// primary analyses.
	Entities   []aggregate.EntityCount
	Sentiments []aggregate.EntitySentiment
	Keywords   []nlu.Keyword
	// CachedAnalyses counts analyses served from the docstore.
	CachedAnalyses int
	// Stages are the engine's per-stage counters and latency summaries.
	Stages []StageStats
	// Skipped holds the errors behind dropped documents (bounded).
	Skipped []error
	// TraceID identifies the run's trace tree ("" when the run was not
	// traced or not sampled); fetch it from /v1/traces/{id}.
	TraceID string
}

func (cfg *AnalysisConfig) fill() error {
	if cfg.Client == nil {
		return fmt.Errorf("pipeline: AnalysisConfig.Client is required")
	}
	if len(cfg.NLU) == 0 {
		return fmt.Errorf("pipeline: AnalysisConfig.NLU is empty")
	}
	if cfg.Limit < 1 {
		cfg.Limit = 10
	}
	if cfg.Workers < 1 {
		cfg.Workers = 4
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	return nil
}

func (cfg *AnalysisConfig) policy() Policy {
	if cfg.SkipFailedDocs {
		return Skip
	}
	return Abort
}

// tracer resolves the run's tracer: the explicit one, else the Client's.
// Both may be nil; the nil tracer is inert.
func (cfg *AnalysisConfig) tracer() *trace.Tracer {
	if cfg.Tracer != nil {
		return cfg.Tracer
	}
	if cfg.Client != nil {
		return cfg.Client.Tracer()
	}
	return nil
}

func (cfg *AnalysisConfig) invokeOpts() []core.InvokeOption {
	if cfg.NoCache {
		return []core.InvokeOption{core.NoCache()}
	}
	return nil
}

// Run executes the full pipeline for one query: search through the SDK,
// fetch every hit over HTTP, analyze each document with every configured
// NLU service, aggregate, persist, and feed the sentiment sink.
func (cfg AnalysisConfig) Run(ctx context.Context, query string) (*AnalysisResult, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if cfg.Search == "" {
		return nil, fmt.Errorf("pipeline: AnalysisConfig.Search is required")
	}
	if cfg.FetchURL == "" {
		return nil, fmt.Errorf("pipeline: AnalysisConfig.FetchURL is required")
	}

	ctx, root := cfg.tracer().Start(ctx, "analysis")
	root.SetAttr("query", query)
	defer root.End()

	p := cfg.newPipeline(ctx)
	hits := 0
	// Stage 1 — search: one SDK invocation, fanned out into a stream of
	// (rank, result) items.
	results := SourceFunc(p, "search", func(ctx context.Context, emit func(indexed[search.Result]) error) error {
		params := map[string]string{"limit": strconv.Itoa(cfg.Limit)}
		if cfg.Offset > 0 {
			params["offset"] = strconv.Itoa(cfg.Offset)
		}
		if cfg.NewsOnly {
			params["news"] = "true"
		}
		if cfg.Expand {
			params["expand"] = "true"
		}
		req := service.Request{
			Op:     "search",
			Query:  query,
			Params: params,
		}
		resp, err := cfg.Client.Invoke(ctx, cfg.Search, req, cfg.invokeOpts()...)
		if err != nil {
			return fmt.Errorf("search %q: %w", query, err)
		}
		found, err := search.DecodeResults(resp)
		if err != nil {
			return err
		}
		hits = len(found.Results)
		for i, r := range found.Results {
			if err := emit(indexed[search.Result]{i, r}); err != nil {
				return err
			}
		}
		return nil
	})

	// Stage 2 — fetch: each hit's page over real HTTP, text extracted.
	base := strings.TrimSuffix(cfg.FetchURL, "/")
	docs := Via(results, Stage[indexed[search.Result], indexed[docstore.SavedDoc]]{
		Name:    "fetch",
		Workers: cfg.Workers,
		Policy:  cfg.policy(),
		Retries: cfg.FetchRetries,
		Fn: func(ctx context.Context, item indexed[search.Result]) (indexed[docstore.SavedDoc], error) {
			page, err := cfg.fetch(ctx, base+"/docs/"+item.v.DocID)
			if err != nil {
				return indexed[docstore.SavedDoc]{}, fmt.Errorf("fetch %s: %w", item.v.DocID, err)
			}
			return indexed[docstore.SavedDoc]{item.i, docstore.SavedDoc{
				URL:   item.v.URL,
				Title: item.v.Title,
				HTML:  page,
				Text:  webcorpus.ExtractText(page),
			}}, nil
		},
	})

	res, err := cfg.finish(ctx, p, docs, query, &hits)
	if err != nil {
		root.SetError(err)
		return nil, err
	}
	res.TraceID = root.TraceID()
	if cfg.Store != nil {
		saved := make([]docstore.SavedDoc, len(res.Docs))
		for i, d := range res.Docs {
			saved[i] = d.Doc
		}
		id, err := cfg.Store.SaveSearch(query, cfg.Search, saved)
		if err != nil {
			return nil, err
		}
		res.SearchID = id
	}
	return res, nil
}

// RunDocs executes the analyze → aggregate → sink tail of the pipeline
// over already-fetched documents — re-analysis of a stored search
// snapshot, or a corpus that never came from a search.
func (cfg AnalysisConfig) RunDocs(ctx context.Context, label string, docs []docstore.SavedDoc) (*AnalysisResult, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ctx, root := cfg.tracer().Start(ctx, "analysis")
	root.SetAttr("query", label)
	defer root.End()
	p := cfg.newPipeline(ctx)
	items := make([]indexed[docstore.SavedDoc], len(docs))
	for i, d := range docs {
		items[i] = indexed[docstore.SavedDoc]{i, d}
	}
	hits := len(docs)
	flow := Source(p, "docs", items)
	res, err := cfg.finish(ctx, p, flow, label, &hits)
	if err != nil {
		root.SetError(err)
		return nil, err
	}
	res.TraceID = root.TraceID()
	return res, nil
}

func (cfg *AnalysisConfig) newPipeline(ctx context.Context) *Pipeline {
	var opts []Option
	if cfg.Metrics != nil {
		opts = append(opts, WithMetrics(cfg.Metrics))
	}
	return New(ctx, opts...)
}

// finish wires the shared tail — analyze, aggregate, persist, sink — onto
// a flow of indexed documents and runs the pipeline to completion.
func (cfg *AnalysisConfig) finish(ctx context.Context, p *Pipeline, docs *Flow[indexed[docstore.SavedDoc]], query string, hits *int) (*AnalysisResult, error) {
	// Stage 3 — analyze: every document through every NLU service, via
	// the SDK (and the docstore's analyze-once guard when configured).
	analyzed := Via(docs, Stage[indexed[docstore.SavedDoc], DocResult]{
		Name:    "analyze",
		Workers: cfg.Workers,
		Policy:  cfg.policy(),
		Retries: cfg.AnalyzeRetries,
		Fn: func(ctx context.Context, item indexed[docstore.SavedDoc]) (DocResult, error) {
			analyses := make([]nlu.Analysis, 0, len(cfg.NLU))
			cached := 0
			for _, name := range cfg.NLU {
				a, fromStore, err := cfg.analyzeOne(ctx, name, item.v.Text)
				if err != nil {
					return DocResult{}, fmt.Errorf("analyze %s with %s: %w", item.v.URL, name, err)
				}
				if fromStore {
					cached++
				}
				analyses = append(analyses, a)
			}
			return DocResult{Index: item.i, Doc: item.v, Analyses: analyses, Cached: cached}, nil
		},
	})

	// Stage 4 — aggregate: the terminal collector; cross-document
	// aggregation itself needs the whole stream, so it runs on the
	// collected results below.
	col := Collect(analyzed, "aggregate")
	if err := p.Wait(); err != nil {
		return nil, err
	}

	res := &AnalysisResult{
		Query:   query,
		Hits:    *hits,
		Docs:    col.Items(),
		Stages:  p.Stats(),
		Skipped: p.SkippedErrors(),
	}
	for _, d := range res.Docs {
		res.Analyses = append(res.Analyses, d.Primary())
		res.PerDoc = append(res.PerDoc, d.Analyses)
		res.CachedAnalyses += d.Cached
	}
	res.Entities = aggregate.Entities(res.Analyses)
	res.Sentiments = aggregate.Sentiments(res.Analyses)
	res.Keywords = aggregate.Keywords(res.Analyses, 10)
	if cfg.Sentiments != nil {
		if err := cfg.Sentiments(ctx, res.Sentiments); err != nil {
			return nil, fmt.Errorf("pipeline: sentiment sink: %w", err)
		}
	}
	return res, nil
}

// analyzeOne analyzes text with one service, preferring the docstore's
// persisted result when a Store is configured.
func (cfg *AnalysisConfig) analyzeOne(ctx context.Context, name, text string) (nlu.Analysis, bool, error) {
	if cfg.Store != nil {
		return cfg.Store.AnalyzeOnceE(text, name, func(t string) (nlu.Analysis, error) {
			return cfg.invokeNLU(ctx, name, t)
		})
	}
	a, err := cfg.invokeNLU(ctx, name, text)
	return a, false, err
}

func (cfg *AnalysisConfig) invokeNLU(ctx context.Context, name, text string) (nlu.Analysis, error) {
	resp, err := cfg.Client.Invoke(ctx, name, service.Request{Op: "analyze", Text: text}, cfg.invokeOpts()...)
	if err != nil {
		return nlu.Analysis{}, err
	}
	return nlu.DecodeAnalysis(resp)
}

func (cfg *AnalysisConfig) fetch(ctx context.Context, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := cfg.HTTPClient.Do(req)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// indexed pairs an item with its stable position in the source stream, so
// results can be mapped back to inputs even after skips.
type indexed[T any] struct {
	i int
	v T
}
