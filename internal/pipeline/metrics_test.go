package pipeline

import (
	"context"
	"testing"

	"repro/internal/metrics"
)

func TestWithInstrumentsStageGauges(t *testing.T) {
	set := metrics.NewSet()
	p := New(context.Background(), WithInstruments(set))
	flow := Source(p, "src", intRange(200))
	doubled := Via(flow, Stage[int, int]{
		Name:    "double",
		Workers: 4,
		Fn:      func(_ context.Context, v int) (int, error) { return v * 2, nil },
	})
	col := Collect(doubled, "collect")
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(col.Items()) != 200 {
		t.Fatalf("collected %d, want 200", len(col.Items()))
	}
	// After Wait every dispatched item has been collected, so the in-flight
	// gauge must balance back to zero; the queue gauge holds its last
	// sampled depth, which after drain is also zero.
	inflight := set.Gauge("richsdk_pipeline_stage_inflight", "", metrics.Label{Name: "stage", Value: "double"})
	if got := inflight.Value(); got != 0 {
		t.Errorf("in-flight gauge = %d after Wait, want 0", got)
	}
	queue := set.Gauge("richsdk_pipeline_stage_queue_depth", "", metrics.Label{Name: "stage", Value: "double"})
	if got := queue.Value(); got != 0 {
		t.Errorf("queue-depth gauge = %d after drain, want 0", got)
	}
}

func TestWithInstrumentsNilSetInert(t *testing.T) {
	p := New(context.Background(), WithInstruments(nil))
	flow := Source(p, "src", intRange(10))
	out := Via(flow, Stage[int, int]{
		Name:    "id",
		Workers: 2,
		Fn:      func(_ context.Context, v int) (int, error) { return v, nil },
	})
	col := Collect(out, "collect")
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(col.Items()) != 10 {
		t.Fatalf("collected %d, want 10", len(col.Items()))
	}
}
