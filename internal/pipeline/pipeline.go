// Package pipeline implements a generic staged dataflow engine: typed
// stages connected by bounded channels, with a configurable number of
// fan-out workers per stage (backed by internal/future's bounded pools),
// context cancellation, per-stage error policy (skip, retry, abort),
// natural backpressure, and per-stage counters plus latency summaries fed
// into internal/metrics.
//
// The engine exists for the paper's core workload — the Fig. 3/5 loop
// search → fetch → analyze → aggregate → store → infer — which
// analysis.go packages as the canonical AnalysisPipeline, but the engine
// itself is workload-agnostic: any staged transformation over a stream of
// items can run on it.
//
// Ordering: a stage dispatches items to its workers in arrival order and
// collects results in that same order, so parallelism inside a stage never
// reorders the stream. Downstream stages (and Collect) therefore see items
// in exactly the order the source emitted them, minus skipped ones.
//
// Backpressure: every inter-stage channel is unbuffered and every stage
// holds at most Workers+Buffer items in flight, so a slow stage throttles
// the stages upstream of it instead of letting queues grow without bound.
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/future"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Policy selects how a stage responds to an item whose processing failed
// (after the stage's retries, if any, are exhausted).
type Policy int

const (
	// Abort cancels the whole pipeline; Wait returns the failing item's
	// error. The zero value: losing data must be opted into.
	Abort Policy = iota
	// Skip drops the failed item, counts it in the stage's stats, and
	// keeps the stream flowing — the right policy when one bad document
	// must not sink a thousand good ones.
	Skip
)

// Stage describes one processing step: Fn applied to every item of the
// input stream by Workers concurrent workers.
type Stage[In, Out any] struct {
	// Name identifies the stage in stats and metrics. Required.
	Name string
	// Workers is the fan-out width. Values < 1 mean 1 (sequential).
	Workers int
	// Buffer is how many completed-but-undelivered results the stage may
	// hold beyond its in-flight work, bounding its memory use. Values < 1
	// mean Workers.
	Buffer int
	// Policy is what to do when Fn fails after retries: Abort (default)
	// or Skip.
	Policy Policy
	// Retries is how many extra attempts each failing item gets before
	// Policy applies.
	Retries int
	// Fn transforms one item. It must honor ctx cancellation for the
	// pipeline to shut down promptly.
	Fn func(ctx context.Context, item In) (Out, error)
}

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithMetrics directs per-stage latency observations into reg (stage name
// → monitor). By default each pipeline records into a private registry
// exposed via Metrics().
func WithMetrics(reg *metrics.Registry) Option {
	return func(p *Pipeline) {
		if reg != nil {
			p.metrics = reg
		}
	}
}

// WithClock sets the clock used for latency measurement. Nil means the
// real clock.
func WithClock(clk clock.Clock) Option {
	return func(p *Pipeline) {
		if clk != nil {
			p.clk = clk
		}
	}
}

// WithInstruments registers per-stage in-flight and queue-depth gauges
// in set, labelled stage="<name>", for every Via stage: in-flight is how
// many items the stage has dispatched to workers but not yet collected,
// queue depth how many completed-or-running result futures sit in its
// ordering channel. Stage names are reused across pipeline runs sharing
// one set (registration is idempotent), so long-lived servers see the
// live occupancy of the current run. A nil set is ignored.
func WithInstruments(set *metrics.Set) Option {
	return func(p *Pipeline) { p.set = set }
}

// Pipeline is one run of the dataflow engine: build it with New, wire
// stages with Source / Via / Drain / Collect, then Wait for completion.
// A Pipeline is single-use.
type Pipeline struct {
	ctx     context.Context
	cancel  context.CancelCauseFunc
	clk     clock.Clock
	metrics *metrics.Registry
	set     *metrics.Set // optional instrument set for per-stage gauges
	wg      sync.WaitGroup

	mu      sync.Mutex
	stages  []*counters
	skipped []error // first few skip-policy errors, for diagnosis
}

// maxSkippedErrors bounds how many skip-policy errors a pipeline retains.
const maxSkippedErrors = 32

// New returns an empty pipeline whose stages run under a context derived
// from ctx: cancelling ctx cancels the pipeline.
func New(ctx context.Context, opts ...Option) *Pipeline {
	runCtx, cancel := context.WithCancelCause(ctx)
	p := &Pipeline{
		ctx:     runCtx,
		cancel:  cancel,
		clk:     clock.Real(),
		metrics: metrics.NewRegistry(),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Wait blocks until every stage has drained and returns the pipeline's
// outcome: nil on success, the aborting stage's error after an Abort, or
// the context cause if the surrounding context was cancelled.
func (p *Pipeline) Wait() error {
	p.wg.Wait()
	cancelled := p.ctx.Err() != nil
	cause := context.Cause(p.ctx)
	p.cancel(nil) // release the context once everything has drained
	if !cancelled {
		return nil
	}
	if cause != nil {
		return cause
	}
	return context.Canceled
}

// Metrics returns the registry holding each stage's latency monitor.
func (p *Pipeline) Metrics() *metrics.Registry { return p.metrics }

// SkippedErrors returns the errors behind skipped items (bounded; the
// per-stage counts in Stats are exact).
func (p *Pipeline) SkippedErrors() []error {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]error, len(p.skipped))
	copy(out, p.skipped)
	return out
}

func (p *Pipeline) noteSkip(stage string, err error) {
	p.mu.Lock()
	if len(p.skipped) < maxSkippedErrors {
		p.skipped = append(p.skipped, fmt.Errorf("pipeline: stage %s: %w", stage, err))
	}
	p.mu.Unlock()
}

func (p *Pipeline) abort(stage string, err error) {
	p.cancel(fmt.Errorf("pipeline: stage %s: %w", stage, err))
}

// StageStats is a point-in-time summary of one stage.
type StageStats struct {
	Name    string
	In      int64 // items received
	Out     int64 // items emitted downstream
	Skipped int64 // items dropped by the Skip policy
	Retries int64 // extra attempts made by the retry policy
	// Latency summarizes per-item processing time (successful attempts);
	// Failures counts failed attempts. Both come from the stage monitor.
	Mean     time.Duration
	P95      time.Duration
	Failures uint64
}

// Stats summarizes every stage in wiring order.
func (p *Pipeline) Stats() []StageStats {
	p.mu.Lock()
	stages := make([]*counters, len(p.stages))
	copy(stages, p.stages)
	p.mu.Unlock()
	out := make([]StageStats, 0, len(stages))
	for _, c := range stages {
		snap := p.metrics.Monitor(c.name).Snapshot()
		out = append(out, StageStats{
			Name:     c.name,
			In:       c.in.Load(),
			Out:      c.out.Load(),
			Skipped:  c.skipped.Load(),
			Retries:  c.retries.Load(),
			Mean:     snap.MeanLatency,
			P95:      snap.P95Latency,
			Failures: snap.Failures,
		})
	}
	return out
}

// counters is one stage's live counter set.
type counters struct {
	name                      string
	in, out, skipped, retries atomic.Int64
}

func (p *Pipeline) newCounters(name string) *counters {
	c := &counters{name: name}
	p.mu.Lock()
	p.stages = append(p.stages, c)
	p.mu.Unlock()
	return c
}

// Flow is a typed stream of items moving between stages of one Pipeline.
type Flow[T any] struct {
	p  *Pipeline
	ch <-chan T
}

// Pipeline returns the pipeline this flow belongs to.
func (f *Flow[T]) Pipeline() *Pipeline { return f.p }

// Source emits items, in order, as a new flow.
func Source[T any](p *Pipeline, name string, items []T) *Flow[T] {
	return SourceFunc(p, name, func(_ context.Context, emit func(T) error) error {
		for _, item := range items {
			if err := emit(item); err != nil {
				return err
			}
		}
		return nil
	})
}

// SourceFunc runs gen as the pipeline's source: each emit call feeds one
// item downstream, blocking for backpressure and returning an error once
// the pipeline is cancelled (gen should stop then). A non-nil error from
// gen — other than the cancellation error emit handed it — aborts the
// pipeline.
func SourceFunc[T any](p *Pipeline, name string, gen func(ctx context.Context, emit func(T) error) error) *Flow[T] {
	c := p.newCounters(name)
	out := make(chan T)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(out)
		// When the pipeline context carries a trace span (the run's root),
		// the source runs under its own child span, so SDK invocations made
		// by gen — a search call, say — nest inside the stage span.
		sp := trace.SpanFromContext(p.ctx).Child(name)
		genCtx := p.ctx
		if sp.Recording() {
			genCtx = trace.ContextWithSpan(genCtx, sp)
		}
		emit := func(v T) error {
			select {
			case out <- v:
				c.out.Add(1)
				return nil
			case <-p.ctx.Done():
				return context.Cause(p.ctx)
			}
		}
		err := gen(genCtx, emit)
		sp.SetInt("emitted", c.out.Load())
		if err != nil && p.ctx.Err() == nil {
			sp.SetError(err)
			p.abort(name, err)
		}
		sp.End()
	}()
	return &Flow[T]{p: p, ch: out}
}

// Via connects f through stage s and returns the stage's output flow. It
// is a package function rather than a method because Go methods cannot
// introduce new type parameters.
func Via[In, Out any](f *Flow[In], s Stage[In, Out]) *Flow[Out] {
	p := f.p
	workers := s.Workers
	if workers < 1 {
		workers = 1
	}
	buffer := s.Buffer
	if buffer < 1 {
		buffer = workers
	}
	c := p.newCounters(s.Name)
	mon := p.metrics.Monitor(s.Name)
	// Nil when the pipeline has no instrument set: every update below is
	// then an inert nil-receiver call.
	inflightG := p.set.Gauge("richsdk_pipeline_stage_inflight",
		"Items dispatched to a stage's workers and not yet collected.",
		metrics.Label{Name: "stage", Value: s.Name})
	queueG := p.set.Gauge("richsdk_pipeline_stage_queue_depth",
		"Result futures waiting in a stage's ordering channel.",
		metrics.Label{Name: "stage", Value: s.Name})
	parent := trace.SpanFromContext(p.ctx)
	out := make(chan Out)
	pool, err := future.NewPool(workers, 0)
	if err != nil {
		// Unreachable: workers is clamped ≥ 1 above.
		panic(err)
	}
	// inflight carries result futures from dispatcher to collector in
	// dispatch order, preserving stream order and bounding the stage's
	// outstanding work: once it fills, the dispatcher blocks, which
	// blocks the upstream stage — backpressure end to end.
	inflight := make(chan *future.Future[Out], workers+buffer)

	p.wg.Add(2)
	go func() { // dispatcher
		defer p.wg.Done()
		defer close(inflight)
		for {
			var item In
			var ok bool
			select {
			case item, ok = <-f.ch:
				if !ok {
					return
				}
			case <-p.ctx.Done():
				return
			}
			c.in.Add(1)
			inflightG.Inc()
			fut := future.SubmitCtx(p.ctx, pool, func() (Out, error) {
				return runItem(p, s, c, mon, parent, item)
			})
			select {
			case inflight <- fut:
				queueG.Set(int64(len(inflight)))
			case <-p.ctx.Done():
				inflightG.Dec()
				return
			}
		}
	}()
	go func() { // collector
		defer p.wg.Done()
		defer pool.Close()
		defer close(out)
		for fut := range inflight {
			queueG.Set(int64(len(inflight)))
			v, err := fut.Get()
			inflightG.Dec()
			if err != nil {
				if p.ctx.Err() != nil {
					continue // already shutting down; just drain
				}
				if s.Policy == Skip {
					c.skipped.Add(1)
					p.noteSkip(s.Name, err)
					continue
				}
				p.abort(s.Name, err)
				continue // drain remaining futures so the dispatcher exits
			}
			select {
			case out <- v:
				c.out.Add(1)
			case <-p.ctx.Done():
				// Keep draining so upstream goroutines unblock.
			}
		}
	}()
	return &Flow[Out]{p: p, ch: out}
}

// runItem applies s.Fn to one item with the stage's retry budget,
// recording every attempt's latency and outcome in the stage monitor. On a
// traced run each item gets a span (named for the stage, covering all
// attempts) whose context flows into Fn, so SDK invocations made while
// processing the item join the run's trace tree.
func runItem[In, Out any](p *Pipeline, s Stage[In, Out], c *counters, mon *metrics.Monitor, parent trace.Span, item In) (Out, error) {
	var zero Out
	sp := parent.Child(s.Name)
	ctx := p.ctx
	if sp.Recording() {
		ctx = trace.ContextWithSpan(ctx, sp)
	}
	defer sp.End()
	for attempt := 0; ; attempt++ {
		start := p.clk.Now()
		v, err := s.Fn(ctx, item)
		mon.Record(metrics.Observation{Latency: p.clk.Since(start), Err: err})
		if attempt > 0 {
			sp.SetInt("retries", int64(attempt))
		}
		if err == nil {
			return v, nil
		}
		if attempt >= s.Retries || p.ctx.Err() != nil {
			sp.SetError(err)
			return zero, err
		}
		c.retries.Add(1)
	}
}

// Drain terminates a flow: fn runs once per item, sequentially, in stream
// order. A non-nil error from fn aborts the pipeline.
func Drain[T any](f *Flow[T], name string, fn func(ctx context.Context, item T) error) {
	p := f.p
	c := p.newCounters(name)
	mon := p.metrics.Monitor(name)
	parent := trace.SpanFromContext(p.ctx)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for item := range f.ch {
			c.in.Add(1)
			sp := parent.Child(name)
			ctx := p.ctx
			if sp.Recording() {
				ctx = trace.ContextWithSpan(ctx, sp)
			}
			start := p.clk.Now()
			err := fn(ctx, item)
			mon.Record(metrics.Observation{Latency: p.clk.Since(start), Err: err})
			if err != nil {
				sp.SetError(err)
				sp.End()
				if p.ctx.Err() == nil {
					p.abort(name, err)
				}
				continue // keep draining so upstream unblocks
			}
			sp.End()
			c.out.Add(1)
		}
	}()
}

// Collected holds a terminal stage's gathered output. Items is valid only
// after the pipeline's Wait returns.
type Collected[T any] struct {
	items []T
}

// Items returns the collected items in stream order. Call after Wait.
func (c *Collected[T]) Items() []T { return c.items }

// Collect terminates a flow by gathering every item, in stream order, for
// retrieval after Wait.
func Collect[T any](f *Flow[T], name string) *Collected[T] {
	col := &Collected[T]{}
	Drain(f, name, func(_ context.Context, item T) error {
		col.items = append(col.items, item)
		return nil
	})
	return col
}
