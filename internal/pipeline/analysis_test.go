package pipeline

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/nlu"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/simsvc"
	"repro/internal/webcorpus"
)

// newAnalysisEnv builds the canonical test environment for the analysis
// pipeline: a corpus served over HTTP, one search engine and three NLU
// engines registered on a rich SDK client (tiny latencies for test speed).
func newAnalysisEnv(t *testing.T) (*core.Client, *httptest.Server) {
	t.Helper()
	return newAnalysisEnvCfg(t, core.Config{CacheTTL: time.Minute})
}

// newAnalysisEnvCfg is newAnalysisEnv with a caller-supplied client config.
func newAnalysisEnvCfg(t *testing.T, ccfg core.Config) (*core.Client, *httptest.Server) {
	t.Helper()
	client, err := core.NewClient(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	corpus := webcorpus.Generate(webcorpus.Config{Seed: 42, NumDocs: 80})
	index := search.BuildIndex(corpus)
	sengine := search.NewEngine("search-g", index, search.TuningG)
	sinfo := service.Info{Name: "search-g", Category: "search"}
	if err := client.Register(simsvc.New(simsvc.Config{
		Info:    sinfo,
		Latency: simsvc.Constant{D: time.Millisecond},
		Handler: sengine.Service(sinfo).Invoke,
	}), core.WithCacheable()); err != nil {
		t.Fatal(err)
	}
	for i, p := range []nlu.Profile{nlu.ProfileAlpha, nlu.ProfileBeta, nlu.ProfileGamma} {
		engine := nlu.NewEngine(p)
		info := service.Info{Name: p.Name, Category: "nlu"}
		if err := client.Register(simsvc.New(simsvc.Config{
			Info:    info,
			Latency: simsvc.Constant{D: time.Millisecond},
			Seed:    int64(i),
			Handler: engine.Service(info).Invoke,
		}), core.WithCacheable()); err != nil {
			t.Fatal(err)
		}
	}

	web := httptest.NewServer(corpus.Handler())
	t.Cleanup(web.Close)
	return client, web
}

func TestAnalysisRunEndToEnd(t *testing.T) {
	client, web := newAnalysisEnv(t)
	cfg := AnalysisConfig{
		Client:   client,
		Search:   "search-g",
		NLU:      []string{"nlu-alpha", "nlu-beta", "nlu-gamma"},
		FetchURL: web.URL,
		Limit:    8,
		Workers:  4,
	}
	res, err := cfg.Run(context.Background(), "market technology growth")
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits == 0 || len(res.Docs) != res.Hits {
		t.Fatalf("hits = %d, docs = %d", res.Hits, len(res.Docs))
	}
	// Stream order survives the parallel fetch/analyze fan-out.
	for i, d := range res.Docs {
		if d.Index != i {
			t.Fatalf("docs out of order: Docs[%d].Index = %d", i, d.Index)
		}
		if len(d.Analyses) != 3 {
			t.Fatalf("Docs[%d] has %d analyses, want 3", i, len(d.Analyses))
		}
		if d.Doc.Text == "" {
			t.Fatalf("Docs[%d] has empty extracted text", i)
		}
	}
	if len(res.Analyses) != len(res.Docs) || len(res.PerDoc) != len(res.Docs) {
		t.Fatalf("Analyses = %d, PerDoc = %d, want %d each", len(res.Analyses), len(res.PerDoc), len(res.Docs))
	}
	if len(res.Entities) == 0 || len(res.Sentiments) == 0 {
		t.Error("aggregates are empty")
	}
	// Every stage reported counters; search emitted as many as fetch/analyze
	// consumed.
	if len(res.Stages) != 4 {
		t.Fatalf("Stages = %+v, want 4 stages", res.Stages)
	}
	for _, s := range res.Stages {
		if s.Out == 0 {
			t.Errorf("stage %s processed nothing", s.Name)
		}
	}
	// The SDK saw every invocation: 1 search + hits×3 analyses.
	if got := client.Monitor("search-g").Count(); got != 1 {
		t.Errorf("search-g monitored count = %d, want 1", got)
	}
	for _, name := range cfg.NLU {
		if got := client.Monitor(name).Count(); got != uint64(res.Hits) {
			t.Errorf("%s monitored count = %d, want %d", name, got, res.Hits)
		}
	}
}

func TestAnalysisRunPersistsAndReusesStore(t *testing.T) {
	client, web := newAnalysisEnv(t)
	store, err := docstore.New(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := AnalysisConfig{
		Client:   client,
		Search:   "search-g",
		NLU:      []string{"nlu-alpha"},
		FetchURL: web.URL,
		Limit:    5,
		Store:    store,
		NoCache:  true, // isolate docstore reuse from the SDK response cache
	}
	ctx := context.Background()
	first, err := cfg.Run(ctx, "company revenue")
	if err != nil {
		t.Fatal(err)
	}
	if first.SearchID == "" {
		t.Fatal("no docstore snapshot ID")
	}
	if first.CachedAnalyses != 0 {
		t.Errorf("cold run reported %d cached analyses", first.CachedAnalyses)
	}
	saved, err := store.LoadSearch(first.SearchID)
	if err != nil {
		t.Fatal(err)
	}
	if len(saved.Docs) != len(first.Docs) {
		t.Errorf("snapshot has %d docs, run produced %d", len(saved.Docs), len(first.Docs))
	}

	// Re-running analyzes nothing: every analysis comes from the store.
	before := client.Monitor("nlu-alpha").Count()
	second, err := cfg.Run(ctx, "company revenue")
	if err != nil {
		t.Fatal(err)
	}
	if second.CachedAnalyses != len(second.Docs) {
		t.Errorf("warm run cached %d of %d analyses", second.CachedAnalyses, len(second.Docs))
	}
	if after := client.Monitor("nlu-alpha").Count(); after != before {
		t.Errorf("warm run still invoked the NLU service %d times", after-before)
	}
}

func TestAnalysisRunDocs(t *testing.T) {
	client, _ := newAnalysisEnv(t)
	docs := []docstore.SavedDoc{
		{URL: "u1", Title: "t1", Text: "Acme Corporation reported excellent growth in Germany."},
		{URL: "u2", Title: "t2", Text: "Globex suffered a terrible decline in France."},
	}
	cfg := AnalysisConfig{
		Client: client,
		NLU:    []string{"nlu-alpha", "nlu-beta"},
	}
	res, err := cfg.RunDocs(context.Background(), "prepared", docs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Query != "prepared" || res.Hits != 2 || len(res.Docs) != 2 {
		t.Fatalf("res = %+v", res)
	}
	if res.Docs[0].Doc.URL != "u1" || res.Docs[1].Doc.URL != "u2" {
		t.Error("RunDocs reordered its input")
	}
	if len(res.PerDoc[0]) != 2 {
		t.Errorf("PerDoc[0] = %d analyses, want 2", len(res.PerDoc[0]))
	}
}

func TestAnalysisSkipFailedDocs(t *testing.T) {
	client, web := newAnalysisEnv(t)
	// A proxy in front of the corpus that refuses every other document.
	flip := 0
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		flip++
		if flip%2 == 0 {
			http.Error(w, "gone", http.StatusNotFound)
			return
		}
		resp, err := http.Get(web.URL + r.URL.Path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	defer proxy.Close()

	cfg := AnalysisConfig{
		Client:         client,
		Search:         "search-g",
		NLU:            []string{"nlu-alpha"},
		FetchURL:       proxy.URL,
		Limit:          6,
		Workers:        1, // deterministic alternation through the proxy
		SkipFailedDocs: true,
	}
	res, err := cfg.Run(context.Background(), "market technology growth")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) >= res.Hits {
		t.Fatalf("docs = %d, hits = %d: nothing was skipped", len(res.Docs), res.Hits)
	}
	if len(res.Skipped) == 0 {
		t.Fatal("skip policy recorded no errors")
	}
	for _, err := range res.Skipped {
		if !strings.Contains(err.Error(), "HTTP 404") {
			t.Errorf("unexpected skip cause: %v", err)
		}
	}
	// Surviving docs keep their original search ranks.
	last := -1
	for _, d := range res.Docs {
		if d.Index <= last {
			t.Fatalf("indices not strictly increasing: %d after %d", d.Index, last)
		}
		last = d.Index
	}
}

func TestAnalysisAbortOnFetchFailure(t *testing.T) {
	client, _ := newAnalysisEnv(t)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer dead.Close()
	cfg := AnalysisConfig{
		Client:   client,
		Search:   "search-g",
		NLU:      []string{"nlu-alpha"},
		FetchURL: dead.URL,
		Limit:    3,
	}
	_, err := cfg.Run(context.Background(), "market technology growth")
	if err == nil || !strings.Contains(err.Error(), "fetch") {
		t.Fatalf("err = %v, want fetch abort", err)
	}
}

func TestAnalysisSentimentSink(t *testing.T) {
	client, web := newAnalysisEnv(t)
	var sunk []aggregate.EntitySentiment
	cfg := AnalysisConfig{
		Client:   client,
		Search:   "search-g",
		NLU:      []string{"nlu-alpha"},
		FetchURL: web.URL,
		Limit:    5,
		Sentiments: func(_ context.Context, s []aggregate.EntitySentiment) error {
			sunk = s
			return nil
		},
	}
	res, err := cfg.Run(context.Background(), "market technology growth")
	if err != nil {
		t.Fatal(err)
	}
	if len(sunk) != len(res.Sentiments) {
		t.Fatalf("sink received %d sentiments, result has %d", len(sunk), len(res.Sentiments))
	}

	// A failing sink aborts the run.
	boom := errors.New("kb down")
	cfg.Sentiments = func(context.Context, []aggregate.EntitySentiment) error { return boom }
	cfg.NoCache = true
	if _, err := cfg.Run(context.Background(), "market technology growth"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink failure", err)
	}
}

func TestAnalysisConfigValidation(t *testing.T) {
	client, _ := newAnalysisEnv(t)
	for name, cfg := range map[string]AnalysisConfig{
		"no client": {Search: "search-g", NLU: []string{"nlu-alpha"}, FetchURL: "http://x"},
		"no nlu":    {Client: client, Search: "search-g", FetchURL: "http://x"},
		"no search": {Client: client, NLU: []string{"nlu-alpha"}, FetchURL: "http://x"},
		"no fetch":  {Client: client, Search: "search-g", NLU: []string{"nlu-alpha"}},
	} {
		if _, err := cfg.Run(context.Background(), "q"); err == nil {
			t.Errorf("%s: Run succeeded, want config error", name)
		}
	}
}
