package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// intRange returns [0, n).
func intRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestSingleStagePreservesOrder(t *testing.T) {
	p := New(context.Background())
	flow := Source(p, "src", intRange(100))
	doubled := Via(flow, Stage[int, int]{
		Name:    "double",
		Workers: 8,
		Fn: func(_ context.Context, v int) (int, error) {
			// Stagger completion so out-of-order bugs would surface.
			time.Sleep(time.Duration(v%3) * time.Millisecond)
			return v * 2, nil
		},
	})
	col := Collect(doubled, "collect")
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	items := col.Items()
	if len(items) != 100 {
		t.Fatalf("collected %d items, want 100", len(items))
	}
	for i, v := range items {
		if v != i*2 {
			t.Fatalf("items[%d] = %d, want %d (order not preserved)", i, v, i*2)
		}
	}
}

func TestMultiStageChain(t *testing.T) {
	p := New(context.Background())
	flow := Source(p, "src", intRange(50))
	strs := Via(flow, Stage[int, string]{
		Name:    "fmt",
		Workers: 4,
		Fn:      func(_ context.Context, v int) (string, error) { return fmt.Sprintf("item-%03d", v), nil },
	})
	lens := Via(strs, Stage[string, int]{
		Name:    "len",
		Workers: 2,
		Fn:      func(_ context.Context, s string) (int, error) { return len(s), nil },
	})
	col := Collect(lens, "collect")
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(col.Items()) != 50 {
		t.Fatalf("collected %d, want 50", len(col.Items()))
	}
	for _, v := range col.Items() {
		if v != len("item-000") {
			t.Fatalf("bad length %d", v)
		}
	}
}

func TestParallelStageOverlapsLatency(t *testing.T) {
	const items, delay, workers = 16, 5 * time.Millisecond, 8
	elapsed := make(map[int]time.Duration)
	for _, w := range []int{1, workers} {
		p := New(context.Background())
		flow := Source(p, "src", intRange(items))
		slow := Via(flow, Stage[int, int]{
			Name:    "slow",
			Workers: w,
			Fn: func(_ context.Context, v int) (int, error) {
				time.Sleep(delay)
				return v, nil
			},
		})
		Drain(slow, "sink", func(context.Context, int) error { return nil })
		start := time.Now()
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
		elapsed[w] = time.Since(start)
	}
	// 16 items × 5 ms sequential ≈ 80 ms; 8 workers ≈ 10 ms. Assert a
	// conservative 2x so loaded CI machines cannot flake the test.
	if elapsed[workers]*2 > elapsed[1] {
		t.Errorf("parallel (%v) not meaningfully faster than sequential (%v)", elapsed[workers], elapsed[1])
	}
}

func TestAbortPolicyStopsPipeline(t *testing.T) {
	boom := errors.New("boom")
	var processed atomic.Int64
	p := New(context.Background())
	flow := Source(p, "src", intRange(1000))
	stage := Via(flow, Stage[int, int]{
		Name:    "explode",
		Workers: 2,
		Fn: func(_ context.Context, v int) (int, error) {
			if v == 5 {
				return 0, boom
			}
			processed.Add(1)
			return v, nil
		},
	})
	Drain(stage, "sink", func(context.Context, int) error { return nil })
	err := p.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
	if !strings.Contains(err.Error(), "explode") {
		t.Errorf("error %q does not name the failing stage", err)
	}
	if n := processed.Load(); n >= 1000 {
		t.Errorf("abort did not stop the stream: %d items processed", n)
	}
}

func TestSkipPolicyDropsFailedItems(t *testing.T) {
	bad := errors.New("bad item")
	p := New(context.Background())
	flow := Source(p, "src", intRange(20))
	stage := Via(flow, Stage[int, int]{
		Name:    "picky",
		Workers: 4,
		Policy:  Skip,
		Fn: func(_ context.Context, v int) (int, error) {
			if v%5 == 0 {
				return 0, fmt.Errorf("%w: %d", bad, v)
			}
			return v, nil
		},
	})
	col := Collect(stage, "collect")
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(col.Items()) != 16 { // 20 minus {0,5,10,15}
		t.Fatalf("collected %d, want 16", len(col.Items()))
	}
	// Order preserved among survivors.
	prev := -1
	for _, v := range col.Items() {
		if v <= prev {
			t.Fatalf("order not preserved: %v", col.Items())
		}
		prev = v
	}
	var st StageStats
	for _, s := range p.Stats() {
		if s.Name == "picky" {
			st = s
		}
	}
	if st.In != 20 || st.Out != 16 || st.Skipped != 4 {
		t.Errorf("stats = %+v, want in=20 out=16 skipped=4", st)
	}
	errs := p.SkippedErrors()
	if len(errs) != 4 {
		t.Fatalf("SkippedErrors = %d, want 4", len(errs))
	}
	for _, err := range errs {
		if !errors.Is(err, bad) {
			t.Errorf("skipped error %v does not wrap the cause", err)
		}
	}
}

func TestRetryPolicyRecovers(t *testing.T) {
	var mu sync.Mutex
	failures := map[int]int{3: 2, 7: 1} // item → failures before success
	p := New(context.Background())
	flow := Source(p, "src", intRange(10))
	stage := Via(flow, Stage[int, int]{
		Name:    "flaky",
		Workers: 2,
		Retries: 2,
		Fn: func(_ context.Context, v int) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			if failures[v] > 0 {
				failures[v]--
				return 0, errors.New("transient")
			}
			return v, nil
		},
	})
	col := Collect(stage, "collect")
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(col.Items()) != 10 {
		t.Fatalf("collected %d, want 10 (retries should recover)", len(col.Items()))
	}
	for _, s := range p.Stats() {
		if s.Name == "flaky" && s.Retries != 3 {
			t.Errorf("retries = %d, want 3", s.Retries)
		}
	}
}

func TestRetryExhaustionAppliesPolicy(t *testing.T) {
	always := errors.New("always fails")
	var attempts atomic.Int64
	p := New(context.Background())
	flow := Source(p, "src", []int{1})
	stage := Via(flow, Stage[int, int]{
		Name:    "doomed",
		Retries: 2,
		Fn: func(_ context.Context, _ int) (int, error) {
			attempts.Add(1)
			return 0, always
		},
	})
	Drain(stage, "sink", func(context.Context, int) error { return nil })
	if err := p.Wait(); !errors.Is(err, always) {
		t.Fatalf("Wait = %v, want %v", err, always)
	}
	if n := attempts.Load(); n != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", n)
	}
}

func TestContextCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	var processed atomic.Int64
	p := New(ctx)
	flow := Source(p, "src", intRange(10_000))
	stage := Via(flow, Stage[int, int]{
		Name:    "work",
		Workers: 2,
		Fn: func(c context.Context, v int) (int, error) {
			once.Do(func() { close(started) })
			processed.Add(1)
			select {
			case <-c.Done():
				return 0, c.Err()
			case <-time.After(100 * time.Microsecond):
				return v, nil
			}
		},
	})
	Drain(stage, "sink", func(context.Context, int) error { return nil })
	<-started
	cancel()
	done := make(chan error, 1)
	go func() { done <- p.Wait() }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline did not shut down after cancellation")
	}
	if n := processed.Load(); n >= 10_000 {
		t.Errorf("cancellation did not cut the stream short (%d processed)", n)
	}
}

func TestSourceFuncErrorAborts(t *testing.T) {
	genErr := errors.New("generator failed")
	p := New(context.Background())
	flow := SourceFunc(p, "gen", func(_ context.Context, emit func(int) error) error {
		if err := emit(1); err != nil {
			return err
		}
		return genErr
	})
	Drain(flow, "sink", func(context.Context, int) error { return nil })
	if err := p.Wait(); !errors.Is(err, genErr) {
		t.Fatalf("Wait = %v, want %v", err, genErr)
	}
}

func TestDrainErrorAborts(t *testing.T) {
	sinkErr := errors.New("sink failed")
	p := New(context.Background())
	flow := Source(p, "src", intRange(100))
	Drain(flow, "sink", func(_ context.Context, v int) error {
		if v == 3 {
			return sinkErr
		}
		return nil
	})
	if err := p.Wait(); !errors.Is(err, sinkErr) {
		t.Fatalf("Wait = %v, want %v", err, sinkErr)
	}
}

func TestStatsAndMetrics(t *testing.T) {
	p := New(context.Background())
	flow := Source(p, "src", intRange(25))
	stage := Via(flow, Stage[int, int]{
		Name:    "work",
		Workers: 4,
		Fn: func(_ context.Context, v int) (int, error) {
			time.Sleep(100 * time.Microsecond)
			return v, nil
		},
	})
	col := Collect(stage, "collect")
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	_ = col
	stats := p.Stats()
	if len(stats) != 3 {
		t.Fatalf("stats for %d stages, want 3", len(stats))
	}
	names := []string{"src", "work", "collect"}
	for i, s := range stats {
		if s.Name != names[i] {
			t.Errorf("stage %d = %q, want %q (wiring order)", i, s.Name, names[i])
		}
	}
	work := stats[1]
	if work.In != 25 || work.Out != 25 {
		t.Errorf("work in/out = %d/%d, want 25/25", work.In, work.Out)
	}
	if work.Mean <= 0 {
		t.Error("work stage recorded no latency")
	}
	// The stage monitor is reachable through the pipeline's registry.
	if got := p.Metrics().Monitor("work").Count(); got != 25 {
		t.Errorf("monitor count = %d, want 25", got)
	}
}

func TestBackpressureBoundsInFlight(t *testing.T) {
	const workers, buffer = 2, 1
	var inFlight, maxSeen atomic.Int64
	gate := make(chan struct{})
	p := New(context.Background())
	flow := Source(p, "src", intRange(64))
	stage := Via(flow, Stage[int, int]{
		Name:    "gated",
		Workers: workers,
		Buffer:  buffer,
		Fn: func(_ context.Context, v int) (int, error) {
			cur := inFlight.Add(1)
			for {
				prev := maxSeen.Load()
				if cur <= prev || maxSeen.CompareAndSwap(prev, cur) {
					break
				}
			}
			<-gate
			inFlight.Add(-1)
			return v, nil
		},
	})
	Drain(stage, "sink", func(context.Context, int) error { return nil })
	// Let the pipeline saturate, then release everything.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if maxSeen.Load() > workers {
		t.Errorf("%d items executing concurrently, want <= %d workers", maxSeen.Load(), workers)
	}
}

func TestWaitReturnsNilOnEmptySource(t *testing.T) {
	p := New(context.Background())
	flow := Source(p, "src", []int(nil))
	col := Collect(Via(flow, Stage[int, int]{
		Name: "noop",
		Fn:   func(_ context.Context, v int) (int, error) { return v, nil },
	}), "collect")
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(col.Items()) != 0 {
		t.Fatalf("collected %d from empty source", len(col.Items()))
	}
}
