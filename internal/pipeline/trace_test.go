package pipeline

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/trace"
)

func sampleDocs() []docstore.SavedDoc {
	return []docstore.SavedDoc{
		{URL: "u1", Title: "t1", Text: "Acme Corporation reported excellent growth in Germany."},
		{URL: "u2", Title: "t2", Text: "Globex suffered a terrible decline in France."},
	}
}

// TestAnalysisRunTraceTree verifies the acceptance criterion that one
// pipeline run produces a single trace tree spanning search → fetch → NLU →
// aggregate, with the SDK invocations nested inside the stage spans.
func TestAnalysisRunTraceTree(t *testing.T) {
	tr := trace.New(trace.WithMaxSpans(4096))
	t.Cleanup(tr.Close)
	client, web := newAnalysisEnvCfg(t, core.Config{CacheTTL: time.Minute, Tracer: tr})
	cfg := AnalysisConfig{
		Client:   client,
		Search:   "search-g",
		NLU:      []string{"nlu-alpha", "nlu-beta"},
		FetchURL: web.URL,
		Limit:    5,
		Workers:  3,
	}
	res, err := cfg.Run(context.Background(), "market technology growth")
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("run reported no trace ID")
	}
	// One root trace covers the whole run — the SDK invocations made inside
	// it must not have opened their own traces.
	if got := tr.Traces(); len(got) != 1 {
		t.Fatalf("stored %d traces, want 1 tree for the whole run", len(got))
	}
	full, ok := tr.Trace(res.TraceID)
	if !ok {
		t.Fatalf("trace %s not retrievable", res.TraceID)
	}
	if full.Name != "analysis" {
		t.Errorf("root span = %q, want analysis", full.Name)
	}
	if full.DroppedSpans != 0 {
		t.Errorf("trace dropped %d spans; raise WithMaxSpans in the test", full.DroppedSpans)
	}

	byID := map[int]trace.SpanData{}
	for _, s := range full.Spans {
		byID[s.ID] = s
	}
	parentName := func(s trace.SpanData) string {
		if p, ok := byID[s.ParentID]; ok {
			return p.Name
		}
		return ""
	}
	count := map[string]int{}
	for _, s := range full.Spans {
		count[s.Name]++
		switch s.Name {
		case "search", "fetch", "analyze", "aggregate":
			if got := parentName(s); got != "analysis" {
				t.Errorf("stage span %q parent = %q, want analysis", s.Name, got)
			}
		case "invoke search-g":
			if got := parentName(s); got != "search" {
				t.Errorf("search invocation parent = %q, want search stage", got)
			}
		case "invoke nlu-alpha", "invoke nlu-beta":
			if got := parentName(s); got != "analyze" {
				t.Errorf("%s parent = %q, want analyze stage", s.Name, got)
			}
		}
	}
	// Stage spans: one search source span, one fetch/analyze/aggregate span
	// per document.
	if count["search"] != 1 {
		t.Errorf("search spans = %d, want 1", count["search"])
	}
	for _, stage := range []string{"fetch", "analyze", "aggregate"} {
		if count[stage] != res.Hits {
			t.Errorf("%s spans = %d, want one per doc (%d)", stage, count[stage], res.Hits)
		}
	}
	if count["invoke search-g"] != 1 {
		t.Errorf("search invocations = %d, want 1", count["invoke search-g"])
	}
	for _, n := range []string{"invoke nlu-alpha", "invoke nlu-beta"} {
		if count[n] != res.Hits {
			t.Errorf("%s spans = %d, want %d", n, count[n], res.Hits)
		}
	}
}

func TestRunDocsTraceAndFallbackTracer(t *testing.T) {
	client, web := newAnalysisEnv(t) // client has no tracer
	_ = web
	tr := trace.New()
	t.Cleanup(tr.Close)
	cfg := AnalysisConfig{
		Client: client,
		NLU:    []string{"nlu-alpha"},
		Tracer: tr, // explicit tracer overrides the (absent) client one
	}
	docs := sampleDocs()
	res, err := cfg.RunDocs(context.Background(), "relabel", docs)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("RunDocs reported no trace ID")
	}
	full, ok := tr.Trace(res.TraceID)
	if !ok {
		t.Fatal("trace not stored")
	}
	names := map[string]int{}
	for _, s := range full.Spans {
		names[s.Name]++
	}
	if names["docs"] != 1 || names["analyze"] != len(docs) || names["aggregate"] != len(docs) {
		t.Errorf("span counts = %v, want docs×1, analyze×%d, aggregate×%d", names, len(docs), len(docs))
	}
	// The client has no tracer, so "invoke nlu-alpha" spans cannot exist —
	// the stage spans still form the tree.
	if names["invoke nlu-alpha"] != 0 {
		t.Errorf("tracerless client produced invocation spans: %v", names)
	}
}

func TestUntracedRunHasNoTraceID(t *testing.T) {
	client, _ := newAnalysisEnv(t)
	cfg := AnalysisConfig{Client: client, NLU: []string{"nlu-alpha"}}
	res, err := cfg.RunDocs(context.Background(), "plain", sampleDocs())
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != "" {
		t.Errorf("untraced run has TraceID %q", res.TraceID)
	}
}
