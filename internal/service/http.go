package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Cloud services expose HTTP interfaces and return JSON (paper §1); the SDK
// encapsulates those HTTP calls in method calls. Handler and HTTPClient are
// the two halves: Handler exposes any Service over HTTP, HTTPClient makes a
// remote HTTP endpoint look like a local Service.

// invokeEnvelope is the wire format for an invocation error.
type errorEnvelope struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"` // "unavailable", "quota", "bad_request"
}

// Handler returns an http.Handler that serves svc:
//
//	POST /invoke  body: Request JSON  ->  200 Response JSON
//	GET  /info                        ->  200 Info JSON
//
// Transient errors map to 503, quota errors to 429, bad requests to 400.
func Handler(svc Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/info", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Info())
	})
	mux.HandleFunc("/invoke", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorEnvelope{Error: "use POST"})
			return
		}
		var req Request
		if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorEnvelope{Error: "decode request: " + err.Error(), Kind: "bad_request"})
			return
		}
		resp, err := svc.Invoke(r.Context(), req)
		if err != nil {
			status, kind := http.StatusInternalServerError, ""
			switch {
			case errors.Is(err, ErrUnavailable):
				status, kind = http.StatusServiceUnavailable, "unavailable"
			case errors.Is(err, ErrQuotaExceeded):
				status, kind = http.StatusTooManyRequests, "quota"
			case errors.Is(err, ErrBadRequest):
				status, kind = http.StatusBadRequest, "bad_request"
			}
			writeJSON(w, status, errorEnvelope{Error: err.Error(), Kind: kind})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is written cannot be reported to
	// the client; the connection error surfaces on their side.
	_ = json.NewEncoder(w).Encode(v)
}

// HTTPClient presents a remote service endpoint as a local Service. It is
// safe for concurrent use.
type HTTPClient struct {
	info    Info
	baseURL string
	client  *http.Client
}

var _ Service = (*HTTPClient)(nil)

// NewHTTPClient returns a client for the service at baseURL (for example
// "http://host:port"). info describes the remote service locally; timeout
// bounds each invocation (0 means no timeout).
func NewHTTPClient(info Info, baseURL string, timeout time.Duration) *HTTPClient {
	return &HTTPClient{
		info:    info,
		baseURL: baseURL,
		client:  &http.Client{Timeout: timeout},
	}
}

// Info implements Service.
func (c *HTTPClient) Info() Info { return c.info }

// Invoke implements Service by POSTing the request to the remote endpoint.
// HTTP 503 and transport errors map to ErrUnavailable so retry logic
// treats remote outages as transient; 429 maps to ErrQuotaExceeded.
func (c *HTTPClient) Invoke(ctx context.Context, req Request) (Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return Response{}, fmt.Errorf("service: encode request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/invoke", bytes.NewReader(body))
	if err != nil {
		return Response{}, fmt.Errorf("service: build request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		return Response{}, fmt.Errorf("service: %s: %w: %v", c.info.Name, ErrUnavailable, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, hresp.Body)
		_ = hresp.Body.Close()
	}()
	if hresp.StatusCode != http.StatusOK {
		var env errorEnvelope
		_ = json.NewDecoder(io.LimitReader(hresp.Body, 1<<20)).Decode(&env)
		base := fmt.Errorf("service: %s: HTTP %d: %s", c.info.Name, hresp.StatusCode, env.Error)
		switch hresp.StatusCode {
		case http.StatusServiceUnavailable, http.StatusBadGateway, http.StatusGatewayTimeout:
			return Response{}, fmt.Errorf("%w: %w", ErrUnavailable, base)
		case http.StatusTooManyRequests:
			return Response{}, fmt.Errorf("%w: %w", ErrQuotaExceeded, base)
		case http.StatusBadRequest:
			return Response{}, fmt.Errorf("%w: %w", ErrBadRequest, base)
		default:
			return Response{}, base
		}
	}
	var resp Response
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 64<<20)).Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("service: decode response: %w", err)
	}
	return resp, nil
}
