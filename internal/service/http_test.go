package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHandlerAndClientRoundTrip(t *testing.T) {
	backend := Func{
		Meta: Info{Name: "upper", Category: "transform"},
		Fn: func(_ context.Context, req Request) (Response, error) {
			return Response{
				Body:        []byte(req.Text + req.Text),
				ContentType: "text/plain",
				Meta:        map[string]string{"len": "2x"},
			}, nil
		},
	}
	srv := httptest.NewServer(Handler(backend))
	defer srv.Close()

	client := NewHTTPClient(Info{Name: "upper-remote", Category: "transform"}, srv.URL, 5*time.Second)
	resp, err := client.Invoke(context.Background(), Request{Op: "double", Text: "ab"})
	if err != nil {
		t.Fatalf("Invoke error = %v", err)
	}
	if string(resp.Body) != "abab" || resp.ContentType != "text/plain" || resp.Meta["len"] != "2x" {
		t.Errorf("response = %+v", resp)
	}
}

func TestHandlerInfoEndpoint(t *testing.T) {
	backend := echoService("svc-x", "cat-y")
	srv := httptest.NewServer(Handler(backend))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestHandlerRejectsGetInvoke(t *testing.T) {
	srv := httptest.NewServer(Handler(echoService("e", "c")))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/invoke")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d, want 405", resp.StatusCode)
	}
}

func TestClientMapsErrorKinds(t *testing.T) {
	tests := []struct {
		name    string
		backend error
		want    error
	}{
		{"unavailable", ErrUnavailable, ErrUnavailable},
		{"quota", ErrQuotaExceeded, ErrQuotaExceeded},
		{"bad request", ErrBadRequest, ErrBadRequest},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			backend := Func{
				Meta: Info{Name: "failing", Category: "c"},
				Fn: func(context.Context, Request) (Response, error) {
					return Response{}, fmt.Errorf("wrapped: %w", tt.backend)
				},
			}
			srv := httptest.NewServer(Handler(backend))
			defer srv.Close()
			client := NewHTTPClient(Info{Name: "failing", Category: "c"}, srv.URL, time.Second)
			_, err := client.Invoke(context.Background(), Request{})
			if !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestClientInternalErrorNotTransient(t *testing.T) {
	backend := Func{
		Meta: Info{Name: "broken", Category: "c"},
		Fn: func(context.Context, Request) (Response, error) {
			return Response{}, errors.New("some internal bug")
		},
	}
	srv := httptest.NewServer(Handler(backend))
	defer srv.Close()
	client := NewHTTPClient(Info{Name: "broken", Category: "c"}, srv.URL, time.Second)
	_, err := client.Invoke(context.Background(), Request{})
	if err == nil {
		t.Fatal("expected error")
	}
	if errors.Is(err, ErrUnavailable) {
		t.Error("500 must not look transient")
	}
}

func TestClientConnectionRefusedIsUnavailable(t *testing.T) {
	client := NewHTTPClient(Info{Name: "gone", Category: "c"}, "http://127.0.0.1:1", 500*time.Millisecond)
	_, err := client.Invoke(context.Background(), Request{})
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("error = %v, want ErrUnavailable", err)
	}
}

func TestClientContextCancellation(t *testing.T) {
	slow := Func{
		Meta: Info{Name: "slow", Category: "c"},
		Fn: func(ctx context.Context, _ Request) (Response, error) {
			select {
			case <-ctx.Done():
				return Response{}, ctx.Err()
			case <-time.After(10 * time.Second):
				return Response{}, nil
			}
		},
	}
	srv := httptest.NewServer(Handler(slow))
	defer srv.Close()
	client := NewHTTPClient(Info{Name: "slow", Category: "c"}, srv.URL, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Invoke(ctx, Request{})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not take effect promptly")
	}
}

func TestHandlerMalformedBody(t *testing.T) {
	srv := httptest.NewServer(Handler(echoService("e", "c")))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/invoke", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}
