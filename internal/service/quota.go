package service

import (
	"sync"
	"time"

	"repro/internal/clock"
)

// Quota enforces a maximum number of invocations per time period (paper
// §2.2: "the client may have a limited quota of service invocations in a
// time period ... There is thus an incentive to limit the number of service
// invocations"). It is used both server-side by simulated services and
// client-side by the SDK to avoid burning a limited allowance. Quota is
// safe for concurrent use.
type Quota struct {
	mu        sync.Mutex
	limit     int
	period    time.Duration
	clk       clock.Clock
	used      int
	windowEnd time.Time
}

// NewQuota returns a quota of limit invocations per period measured on clk.
// A nil clk uses the real clock.
func NewQuota(limit int, period time.Duration, clk clock.Clock) *Quota {
	if clk == nil {
		clk = clock.Real()
	}
	return &Quota{limit: limit, period: period, clk: clk}
}

// Take consumes one invocation if the quota allows it and reports whether
// it did.
func (q *Quota) Take() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.clk.Now()
	if now.After(q.windowEnd) || q.windowEnd.IsZero() {
		q.windowEnd = now.Add(q.period)
		q.used = 0
	}
	if q.used >= q.limit {
		return false
	}
	q.used++
	return true
}

// Remaining returns how many invocations are left in the current period.
func (q *Quota) Remaining() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.clk.Now()
	if now.After(q.windowEnd) || q.windowEnd.IsZero() {
		return q.limit
	}
	return q.limit - q.used
}
