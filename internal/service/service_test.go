package service

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
)

func echoService(name, category string) Func {
	return Func{
		Meta: Info{Name: name, Category: category, CostPerCall: 0.01},
		Fn: func(_ context.Context, req Request) (Response, error) {
			return Response{Body: []byte(req.Text)}, nil
		},
	}
}

func TestRequestCacheKeyStable(t *testing.T) {
	a := Request{Op: "analyze", Text: "hello", Params: map[string]string{"x": "1", "y": "2"}}
	b := Request{Op: "analyze", Text: "hello", Params: map[string]string{"y": "2", "x": "1"}}
	if a.CacheKey() != b.CacheKey() {
		t.Error("identical requests with reordered params produced different keys")
	}
}

func TestRequestCacheKeyDistinguishes(t *testing.T) {
	base := Request{Op: "analyze", Text: "hello"}
	variants := []Request{
		{Op: "analyze2", Text: "hello"},
		{Op: "analyze", Text: "hello!"},
		{Op: "analyze", Text: "hello", Key: "k"},
		{Op: "analyze", Text: "hello", Query: "q"},
		{Op: "analyze", Text: "hello", Data: []byte{1}},
		{Op: "analyze", Text: "hello", Params: map[string]string{"a": "b"}},
	}
	seen := map[string]bool{base.CacheKey(): true}
	for i, v := range variants {
		k := v.CacheKey()
		if seen[k] {
			t.Errorf("variant %d collided: %+v", i, v)
		}
		seen[k] = true
	}
}

func TestRequestCacheKeyFieldBoundaries(t *testing.T) {
	// Field-boundary ambiguity must not produce colliding keys.
	a := Request{Op: "ab", Key: "c"}
	b := Request{Op: "a", Key: "bc"}
	if a.CacheKey() == b.CacheKey() {
		t.Error("field boundary collision")
	}
}

func TestRequestCacheKeyProperty(t *testing.T) {
	// Property: the key is a pure function of the request.
	f := func(op, key, query, text string, data []byte) bool {
		r1 := Request{Op: op, Key: key, Query: query, Text: text, Data: data}
		r2 := Request{Op: op, Key: key, Query: query, Text: text, Data: data}
		return r1.CacheKey() == r2.CacheKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArgSize(t *testing.T) {
	r := Request{Key: "ab", Query: "cde", Text: "fg", Data: []byte{1, 2, 3}}
	if got := r.ArgSize(); got != 10 {
		t.Errorf("ArgSize = %d, want 10", got)
	}
}

func TestInfoCost(t *testing.T) {
	i := Info{CostPerCall: 0.5, CostPerByte: 0.001}
	req := Request{Data: make([]byte, 1000)}
	if got := i.Cost(req); got != 1.5 {
		t.Errorf("Cost = %v, want 1.5", got)
	}
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(echoService("a", "nlu")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(echoService("b", "nlu")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(echoService("c", "search")); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("a"); !ok {
		t.Error("Get(a) missing")
	}
	if _, ok := r.Get("zzz"); ok {
		t.Error("Get(zzz) should miss")
	}
	nlu := r.Category("nlu")
	if len(nlu) != 2 || nlu[0].Info().Name != "a" || nlu[1].Info().Name != "b" {
		t.Errorf("Category(nlu) wrong: %v", nlu)
	}
	if got := r.Categories(); len(got) != 2 || got[0] != "nlu" || got[1] != "search" {
		t.Errorf("Categories = %v", got)
	}
	if got := r.Names(); len(got) != 3 || got[0] != "a" {
		t.Errorf("Names = %v", got)
	}
}

func TestRegistryRejectsInvalid(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(echoService("", "nlu")); err == nil {
		t.Error("empty name should be rejected")
	}
	if err := r.Register(echoService("a", "")); err == nil {
		t.Error("empty category should be rejected")
	}
	if err := r.Register(echoService("a", "nlu")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(echoService("a", "other")); err == nil {
		t.Error("duplicate name should be rejected")
	}
}

func TestRegistryCategoryIsCopy(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(echoService("a", "nlu")); err != nil {
		t.Fatal(err)
	}
	got := r.Category("nlu")
	got[0] = nil
	if fresh := r.Category("nlu"); fresh[0] == nil {
		t.Error("Category returned shared backing array")
	}
}

func TestFuncAdapter(t *testing.T) {
	svc := echoService("echo", "test")
	resp, err := svc.Invoke(context.Background(), Request{Text: "hi"})
	if err != nil || string(resp.Body) != "hi" {
		t.Errorf("Invoke = (%q, %v)", resp.Body, err)
	}
	if svc.Info().Name != "echo" {
		t.Errorf("Info = %+v", svc.Info())
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	errs := []error{ErrUnavailable, ErrQuotaExceeded, ErrBadRequest}
	for i, a := range errs {
		for j, b := range errs {
			if i != j && errors.Is(a, b) {
				t.Errorf("error %d and %d should be distinct", i, j)
			}
		}
	}
}
