// Package service defines the rich SDK's service abstraction: a uniform
// request/response envelope, service metadata (functionality category and
// monetary cost model), and a registry that groups services providing
// similar functionality so the SDK can rank them and choose among them
// (paper §2).
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"sort"
	"strings"
)

// Common errors surfaced by service implementations.
var (
	// ErrUnavailable indicates a transient failure: the request may
	// succeed if retried (paper §2.1 failure handling).
	ErrUnavailable = errors.New("service: unavailable")
	// ErrQuotaExceeded indicates the caller's invocation quota for the
	// current period is exhausted (paper §2.2).
	ErrQuotaExceeded = errors.New("service: quota exceeded")
	// ErrBadRequest indicates a permanent, non-retryable request error.
	ErrBadRequest = errors.New("service: bad request")
)

// Request is the uniform invocation envelope. Services interpret the fields
// they need: NLU services read Text, storage services read Key/Data, search
// services read Query.
type Request struct {
	// Op names the operation, for example "analyze", "search", "put",
	// "get".
	Op string `json:"op"`
	// Key is the primary argument for storage-style operations.
	Key string `json:"key,omitempty"`
	// Query is the query string for search-style operations.
	Query string `json:"query,omitempty"`
	// Text is the document for analysis-style operations.
	Text string `json:"text,omitempty"`
	// Data is the binary payload for storage-style operations.
	Data []byte `json:"data,omitempty"`
	// Params carries operation-specific string arguments.
	Params map[string]string `json:"params,omitempty"`
}

// CacheKey returns a stable digest of the request suitable as a cache key:
// two identical requests always produce the same key.
func (r Request) CacheKey() string {
	h := sha256.New()
	h.Write([]byte(r.Op))
	h.Write([]byte{0})
	h.Write([]byte(r.Key))
	h.Write([]byte{0})
	h.Write([]byte(r.Query))
	h.Write([]byte{0})
	h.Write([]byte(r.Text))
	h.Write([]byte{0})
	h.Write(r.Data)
	if len(r.Params) > 0 {
		keys := make([]string, 0, len(r.Params))
		for k := range r.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h.Write([]byte{0})
			h.Write([]byte(k))
			h.Write([]byte{1})
			h.Write([]byte(r.Params[k]))
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// ArgSize returns the total size in bytes of the request's payload
// arguments. It is the default latency parameter (paper §2: "an example of
// a typical latency parameter is the size of an argument passed to a
// service").
func (r Request) ArgSize() int {
	return len(r.Text) + len(r.Data) + len(r.Query) + len(r.Key)
}

// Response is the uniform result envelope. Body is typically JSON produced
// by the service; typed packages (nlu, search) provide decoders.
type Response struct {
	// Body is the raw response payload.
	Body []byte `json:"body,omitempty"`
	// ContentType describes Body, typically "application/json".
	ContentType string `json:"contentType,omitempty"`
	// Meta carries response metadata such as result counts.
	Meta map[string]string `json:"meta,omitempty"`
}

// Info describes a service for registry, ranking, and cost decisions.
type Info struct {
	// Name uniquely identifies the service.
	Name string `json:"name"`
	// Category groups services providing similar functionality, for
	// example "nlu", "search", "storage". Ranking and failover operate
	// within one category.
	Category string `json:"category"`
	// CostPerCall is the monetary cost of one invocation, in arbitrary
	// currency units.
	CostPerCall float64 `json:"costPerCall"`
	// CostPerByte is the additional monetary cost per payload byte.
	CostPerByte float64 `json:"costPerByte"`
	// Description is a human-readable summary.
	Description string `json:"description,omitempty"`
}

// Cost returns the monetary cost of invoking the service with req.
func (i Info) Cost(req Request) float64 {
	return i.CostPerCall + i.CostPerByte*float64(req.ArgSize())
}

// Service is anything invocable through the SDK. Implementations must be
// safe for concurrent use.
type Service interface {
	// Info returns the service's metadata.
	Info() Info
	// Invoke performs one service call. Transient failures should wrap
	// or be ErrUnavailable so the SDK's retry logic can distinguish them
	// from permanent errors.
	Invoke(ctx context.Context, req Request) (Response, error)
}

// Func adapts a function to the Service interface.
type Func struct {
	Meta Info
	Fn   func(ctx context.Context, req Request) (Response, error)
}

var _ Service = Func{}

// Info implements Service.
func (f Func) Info() Info { return f.Meta }

// Invoke implements Service.
func (f Func) Invoke(ctx context.Context, req Request) (Response, error) {
	return f.Fn(ctx, req)
}

// Registry holds registered services grouped by category. It is safe for
// concurrent use after construction only if mutation has stopped; register
// everything up front (the SDK core does) or guard externally.
type Registry struct {
	byName     map[string]Service
	byCategory map[string][]Service
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName:     make(map[string]Service),
		byCategory: make(map[string][]Service),
	}
}

// Register adds svc. It returns an error for duplicate names or empty
// metadata.
func (r *Registry) Register(svc Service) error {
	info := svc.Info()
	if strings.TrimSpace(info.Name) == "" {
		return errors.New("service: empty name")
	}
	if strings.TrimSpace(info.Category) == "" {
		return errors.New("service: empty category")
	}
	if _, dup := r.byName[info.Name]; dup {
		return errors.New("service: duplicate name " + info.Name)
	}
	r.byName[info.Name] = svc
	r.byCategory[info.Category] = append(r.byCategory[info.Category], svc)
	return nil
}

// Get returns the service registered under name, or false.
func (r *Registry) Get(name string) (Service, bool) {
	svc, ok := r.byName[name]
	return svc, ok
}

// Category returns the services registered under category, in registration
// order. The returned slice is a copy.
func (r *Registry) Category(category string) []Service {
	svcs := r.byCategory[category]
	out := make([]Service, len(svcs))
	copy(out, svcs)
	return out
}

// Categories returns all categories in sorted order.
func (r *Registry) Categories() []string {
	out := make([]string, 0, len(r.byCategory))
	for c := range r.byCategory {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Names returns all registered service names in sorted order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
