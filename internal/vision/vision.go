// Package vision implements the visual-recognition substrate: the local
// equivalent of the image-analysis cognitive services in the paper's
// Figure 1. Real image classification is out of scope offline, so images
// are synthetic: a structured binary format whose pixel payload
// deterministically encodes the scene's true labels. Recognition engines
// decode the payload with profile-dependent noise, giving the SDK visual
// services with genuine quality differences — the same shape as the NLU
// substrate, over a different modality (paper §2.2: "similar types of
// analyses can be performed on other types of data such as image files").
package vision

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/service"
	"repro/internal/xrand"
)

// Labels is the closed vocabulary of scene labels.
var Labels = []string{
	"person", "crowd", "building", "skyline", "car", "truck", "road",
	"tree", "forest", "mountain", "river", "ocean", "beach", "sky",
	"dog", "cat", "bird", "horse", "food", "drink", "table", "chair",
	"screen", "chart", "document", "logo", "flag", "aircraft", "ship",
	"train", "bridge", "night", "snow", "rain", "sunset", "indoor",
}

const magic = "IMG1"

// Image is one synthetic image: dimensions, true labels, and a pixel
// payload derived from them.
type Image struct {
	// ID names the image.
	ID string
	// Width and Height are the nominal dimensions.
	Width, Height int
	// TrueLabels are the ground-truth scene labels, sorted.
	TrueLabels []string
}

// Generate creates a deterministic synthetic image with 1-5 labels drawn
// from the vocabulary.
func Generate(id string, seed int64) Image {
	rng := xrand.New(seed)
	n := 1 + rng.Intn(5)
	labels := xrand.Sample(rng, Labels, n)
	sort.Strings(labels)
	return Image{
		ID:         id,
		Width:      320 + 64*rng.Intn(16),
		Height:     240 + 48*rng.Intn(16),
		TrueLabels: labels,
	}
}

// Encode serializes the image into its binary form: a header plus a pixel
// payload whose bytes deterministically encode the labels (what a real
// classifier would recover from actual pixels).
func (img Image) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	_ = binary.Write(&buf, binary.BigEndian, uint16(img.Width))
	_ = binary.Write(&buf, binary.BigEndian, uint16(img.Height))
	_ = binary.Write(&buf, binary.BigEndian, uint16(len(img.TrueLabels)))
	for _, l := range img.TrueLabels {
		_ = binary.Write(&buf, binary.BigEndian, uint16(len(l)))
		buf.WriteString(l)
	}
	// Pixel payload: deterministic filler proportional to the image
	// area, so latency parameters (argument size) vary realistically.
	area := img.Width * img.Height / 64
	h := fnv.New64a()
	_, _ = h.Write([]byte(img.ID))
	rng := xrand.New(int64(h.Sum64()))
	pixels := make([]byte, area)
	for i := range pixels {
		pixels[i] = byte(rng.Intn(256))
	}
	buf.Write(pixels)
	return buf.Bytes()
}

// Decode parses the binary form back into an Image. It is what a perfect
// recognizer sees; engines add noise on top.
func Decode(id string, data []byte) (Image, error) {
	if len(data) < len(magic)+6 || string(data[:len(magic)]) != magic {
		return Image{}, fmt.Errorf("vision: %s is not an encoded image", id)
	}
	r := bytes.NewReader(data[len(magic):])
	var w, h, n uint16
	for _, dst := range []*uint16{&w, &h, &n} {
		if err := binary.Read(r, binary.BigEndian, dst); err != nil {
			return Image{}, fmt.Errorf("vision: truncated header: %w", err)
		}
	}
	if n > 64 {
		return Image{}, fmt.Errorf("vision: implausible label count %d", n)
	}
	labels := make([]string, 0, n)
	for i := 0; i < int(n); i++ {
		var ln uint16
		if err := binary.Read(r, binary.BigEndian, &ln); err != nil {
			return Image{}, fmt.Errorf("vision: truncated label length: %w", err)
		}
		lb := make([]byte, ln)
		if _, err := r.Read(lb); err != nil {
			return Image{}, fmt.Errorf("vision: truncated label: %w", err)
		}
		labels = append(labels, string(lb))
	}
	return Image{ID: id, Width: int(w), Height: int(h), TrueLabels: labels}, nil
}

// Tag is one recognized label with confidence.
type Tag struct {
	Label      string  `json:"label"`
	Confidence float64 `json:"confidence"`
}

// Recognition is the analysis result for one image.
type Recognition struct {
	Engine string `json:"engine"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	Tags   []Tag  `json:"tags"`
}

// LabelSet returns the recognized labels, sorted.
func (r Recognition) LabelSet() []string {
	out := make([]string, len(r.Tags))
	for i, t := range r.Tags {
		out[i] = t.Label
	}
	sort.Strings(out)
	return out
}

// Profile tunes a recognition engine's quality, mirroring the NLU
// profiles.
type Profile struct {
	// Name identifies the engine.
	Name string
	// MissRate is the probability of dropping a true label.
	MissRate float64
	// SpuriousRate is the probability of adding one wrong label.
	SpuriousRate float64
	// ConfidenceNoise jitters reported confidences.
	ConfidenceNoise float64
	// Seed decorrelates engines.
	Seed int64
}

// Stock profiles.
var (
	ProfileSharp = Profile{Name: "vision-sharp", MissRate: 0.02, SpuriousRate: 0.02, ConfidenceNoise: 0.03, Seed: 401}
	ProfileFast  = Profile{Name: "vision-fast", MissRate: 0.15, SpuriousRate: 0.10, ConfidenceNoise: 0.10, Seed: 402}
)

// Engine recognizes labels in encoded images. Deterministic per (engine,
// image) like the NLU engines, so caching is sound.
type Engine struct {
	profile Profile
}

// NewEngine returns an engine with the given profile.
func NewEngine(p Profile) *Engine { return &Engine{profile: p} }

// Recognize analyzes one encoded image.
func (e *Engine) Recognize(id string, data []byte) (Recognition, error) {
	img, err := Decode(id, data)
	if err != nil {
		return Recognition{}, err
	}
	h := fnv.New64a()
	_, _ = h.Write(data)
	rng := xrand.New(e.profile.Seed ^ int64(h.Sum64()))
	rec := Recognition{Engine: e.profile.Name, Width: img.Width, Height: img.Height}
	for _, l := range img.TrueLabels {
		if rng.Bernoulli(e.profile.MissRate) {
			continue
		}
		conf := 0.9 + e.profile.ConfidenceNoise*rng.NormFloat64()
		rec.Tags = append(rec.Tags, Tag{Label: l, Confidence: clamp01(conf)})
	}
	if rng.Bernoulli(e.profile.SpuriousRate) {
		wrong := Labels[rng.Intn(len(Labels))]
		rec.Tags = append(rec.Tags, Tag{Label: wrong, Confidence: clamp01(0.4 + 0.2*rng.Float64())})
	}
	sort.Slice(rec.Tags, func(i, j int) bool {
		if rec.Tags[i].Confidence != rec.Tags[j].Confidence {
			return rec.Tags[i].Confidence > rec.Tags[j].Confidence
		}
		return rec.Tags[i].Label < rec.Tags[j].Label
	})
	return rec, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Service wraps the engine as a service.Service: op "recognize" with the
// encoded image in Data and its ID in Key.
func (e *Engine) Service(info service.Info) service.Service {
	return service.Func{
		Meta: info,
		Fn: func(_ context.Context, req service.Request) (service.Response, error) {
			if req.Op != "recognize" && req.Op != "" {
				return service.Response{}, fmt.Errorf("vision: unsupported op %q: %w", req.Op, service.ErrBadRequest)
			}
			if len(req.Data) == 0 {
				return service.Response{}, fmt.Errorf("vision: empty image: %w", service.ErrBadRequest)
			}
			rec, err := e.Recognize(req.Key, req.Data)
			if err != nil {
				return service.Response{}, fmt.Errorf("%w: %w", service.ErrBadRequest, err)
			}
			body, err := json.Marshal(rec)
			if err != nil {
				return service.Response{}, fmt.Errorf("vision: encode: %w", err)
			}
			return service.Response{Body: body, ContentType: "application/json"}, nil
		},
	}
}

// DecodeRecognition parses a service response body.
func DecodeRecognition(resp service.Response) (Recognition, error) {
	var rec Recognition
	if err := json.Unmarshal(resp.Body, &rec); err != nil {
		return Recognition{}, fmt.Errorf("vision: decode: %w", err)
	}
	return rec, nil
}
