package vision

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/aggregate"
	"repro/internal/service"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate("img-1", 7)
	b := Generate("img-1", 7)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different images")
	}
	c := Generate("img-1", 8)
	if reflect.DeepEqual(a.TrueLabels, c.TrueLabels) && a.Width == c.Width {
		t.Error("different seeds produced identical images")
	}
	if len(a.TrueLabels) < 1 || len(a.TrueLabels) > 5 {
		t.Errorf("label count = %d", len(a.TrueLabels))
	}
	if !sort.StringsAreSorted(a.TrueLabels) {
		t.Error("labels not sorted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := Generate("img-rt", 42)
	data := img.Encode()
	back, err := Decode(img.ID, data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Width != img.Width || back.Height != img.Height {
		t.Errorf("dims = %dx%d, want %dx%d", back.Width, back.Height, img.Width, img.Height)
	}
	if !reflect.DeepEqual(back.TrueLabels, img.TrueLabels) {
		t.Errorf("labels = %v, want %v", back.TrueLabels, img.TrueLabels)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		img := Generate("p", seed)
		back, err := Decode("p", img.Encode())
		return err == nil && reflect.DeepEqual(back.TrueLabels, img.TrueLabels)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("x"), []byte("NOTMAGIC-------"), Generate("g", 1).Encode()[:8]} {
		if _, err := Decode("bad", data); err == nil {
			t.Errorf("Decode accepted %d garbage bytes", len(data))
		}
	}
}

func TestSharpEngineRecoversLabels(t *testing.T) {
	e := NewEngine(ProfileSharp)
	hits, total := 0, 0
	for i := 0; i < 50; i++ {
		img := Generate(fmt.Sprintf("img-%d", i), int64(i))
		rec, err := e.Recognize(img.ID, img.Encode())
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, l := range rec.LabelSet() {
			got[l] = true
		}
		for _, l := range img.TrueLabels {
			total++
			if got[l] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(total)
	if recall < 0.95 {
		t.Errorf("sharp engine recall = %.2f, want >= 0.95", recall)
	}
}

func TestEngineDeterministicPerImage(t *testing.T) {
	e := NewEngine(ProfileFast)
	img := Generate("det", 3)
	a, err := e.Recognize(img.ID, img.Encode())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Recognize(img.ID, img.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same engine and image produced different recognitions")
	}
}

func TestFastEngineNoisierThanSharp(t *testing.T) {
	sharp, fast := NewEngine(ProfileSharp), NewEngine(ProfileFast)
	score := func(e *Engine) float64 {
		var f1 float64
		n := 60
		for i := 0; i < n; i++ {
			img := Generate(fmt.Sprintf("q-%d", i), int64(1000+i))
			rec, err := e.Recognize(img.ID, img.Encode())
			if err != nil {
				t.Fatal(err)
			}
			f1 += aggregate.Score(rec.LabelSet(), img.TrueLabels).F1
		}
		return f1 / float64(n)
	}
	if s, f := score(sharp), score(fast); s <= f {
		t.Errorf("sharp F1 %.3f should beat fast F1 %.3f", s, f)
	}
}

func TestConfidencesValid(t *testing.T) {
	e := NewEngine(ProfileFast)
	img := Generate("conf", 5)
	rec, err := e.Recognize(img.ID, img.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for i, tag := range rec.Tags {
		if tag.Confidence < 0 || tag.Confidence > 1 {
			t.Errorf("confidence %v out of [0,1]", tag.Confidence)
		}
		if i > 0 && rec.Tags[i-1].Confidence < tag.Confidence {
			t.Error("tags not sorted by confidence")
		}
	}
}

func TestServiceAdapter(t *testing.T) {
	e := NewEngine(ProfileSharp)
	svc := e.Service(service.Info{Name: "vision-sharp", Category: "vision"})
	img := Generate("svc", 9)
	resp, err := svc.Invoke(context.Background(), service.Request{
		Op: "recognize", Key: img.ID, Data: img.Encode(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeRecognition(resp)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Engine != "vision-sharp" || len(rec.Tags) == 0 {
		t.Errorf("recognition = %+v", rec)
	}
}

func TestServiceErrors(t *testing.T) {
	svc := NewEngine(ProfileSharp).Service(service.Info{Name: "v", Category: "vision"})
	if _, err := svc.Invoke(context.Background(), service.Request{Op: "recognize"}); !errors.Is(err, service.ErrBadRequest) {
		t.Errorf("empty image error = %v", err)
	}
	if _, err := svc.Invoke(context.Background(), service.Request{Op: "classify", Data: []byte{1}}); !errors.Is(err, service.ErrBadRequest) {
		t.Errorf("bad op error = %v", err)
	}
	if _, err := svc.Invoke(context.Background(), service.Request{Op: "recognize", Data: []byte("junk")}); !errors.Is(err, service.ErrBadRequest) {
		t.Errorf("garbage image error = %v", err)
	}
}

func TestPayloadSizeVariesWithArea(t *testing.T) {
	small := Image{ID: "s", Width: 320, Height: 240, TrueLabels: []string{"sky"}}
	large := Image{ID: "l", Width: 1280, Height: 960, TrueLabels: []string{"sky"}}
	if len(large.Encode()) <= len(small.Encode()) {
		t.Error("larger image should encode to more bytes (latency parameter realism)")
	}
}
