package experiments

// --- E20: instrument cost, counters/gauges/histograms hot-path pricing ---

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
)

// E20Row prices one instrument operation: nanoseconds and heap
// allocations per call, measured uncontended (one goroutine) and
// contended (max(2, GOMAXPROCS) goroutines hammering the same
// instrument).
type E20Row struct {
	Instrument  string
	Mode        string // "uncontended" or "contended"
	Ops         int
	NsPerOp     float64
	AllocsPerOp float64
}

// RunE20 measures the instrument layer's hot-path cost: Counter.Inc,
// Gauge.Set, and Histogram.Observe, each uncontended and under
// multi-goroutine contention on a single instrument. The substrate
// instrumentation (search, NLU, RDF) only makes sense if these are
// nanoseconds, not microseconds, and allocation-free; the experiment
// verifies both by direct measurement rather than assumption.
func RunE20(scale Scale) ([]E20Row, Table, error) {
	ops := scale.n(2_000_000)
	// At least two goroutines even on one CPU, so the contended rows
	// always exercise cross-goroutine cache-line traffic.
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		procs = 2
	}

	c := metrics.NewCounter()
	g := metrics.NewGauge()
	h := metrics.NewHistogram()
	cases := []struct {
		name string
		op   func(i int)
	}{
		{"counter.Inc", func(int) { c.Inc() }},
		{"gauge.Set", func(i int) { g.Set(int64(i)) }},
		{"histogram.Observe", func(i int) { h.Observe(time.Duration(i%1_000_000) * time.Nanosecond) }},
	}

	measure := func(op func(int), workers int) (float64, float64) {
		perWorker := ops / workers
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		if workers == 1 {
			for i := 0; i < perWorker; i++ {
				op(i)
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						op(i)
					}
				}()
			}
			wg.Wait()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		total := perWorker * workers
		return float64(elapsed.Nanoseconds()) / float64(total),
			float64(m1.Mallocs-m0.Mallocs) / float64(total)
	}

	var rows []E20Row
	for _, tc := range cases {
		ns, allocs := measure(tc.op, 1)
		rows = append(rows, E20Row{Instrument: tc.name, Mode: "uncontended", Ops: ops, NsPerOp: ns, AllocsPerOp: allocs})
		ns, allocs = measure(tc.op, procs)
		rows = append(rows, E20Row{Instrument: tc.name, Mode: "contended", Ops: ops, NsPerOp: ns, AllocsPerOp: allocs})
	}

	t := Table{
		ID:     "E20",
		Title:  fmt.Sprintf("Instrument cost over %d operations (%d-way contention)", ops, procs),
		Claim:  "atomic counters, gauges, and the log-linear histogram cost nanoseconds per operation and zero heap allocations, so the substrate hot paths can stay instrumented permanently (§4)",
		Header: []string{"instrument", "mode", "ops", "ns_per_op", "allocs_per_op"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Instrument, r.Mode, d(int64(r.Ops)), f2(r.NsPerOp), f2(r.AllocsPerOp),
		})
	}
	t.Notes = "contended mode splits the same op count across max(2, GOMAXPROCS) goroutines hammering one shared instrument; allocations measured via runtime.ReadMemStats deltas around the hot loop"
	return rows, t, nil
}
