package experiments

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/loadgen"
	"repro/internal/service"
	"repro/internal/simsvc"
)

// E21 — chaos storm with adaptive load shedding. The loadgen harness
// drives the HTTP facade closed-loop at ~4x+ the backend's saturation
// point while a seeded chaos schedule storms the backend (5xx bursts,
// latency spikes, down-flaps), once with the shed stage disabled and once
// enabled. The claim under test is the ROADMAP's graceful-degradation
// story: without admission control the facade collapses into timeouts and
// breaker flapping (goodput ≈ 0); with the AIMD shed stage the facade
// sheds the excess as fast 429s, keeps admitted-call p99 bounded near the
// target, and recovers to pre-storm latency when the storm passes.

// e21TargetP99 is the admitted-latency target the shed controller defends.
const e21TargetP99 = 10 * time.Millisecond

// e21Timeout is the simulated user's patience: responses slower than this
// are wasted work (the goodput definition's denominator).
const e21Timeout = 25 * time.Millisecond

// E21Phase is one load phase's outcome for one configuration.
type E21Phase struct {
	Name    string
	Report  loadgen.Report
	Breaker string // primary service's breaker state at phase end
	Limit   int64  // shed limit at phase end (0 when shedding is off)
}

// E21Config is one configuration's three-phase run.
type E21Config struct {
	Shed  bool
	Pre   E21Phase
	Storm E21Phase
	Post  E21Phase
}

// e21Durations scales the phase lengths, flooring each so the controller
// and breaker get enough real time to act even at tiny test scales.
func e21Durations(scale Scale) (pre, storm, post time.Duration) {
	d := func(base, floor time.Duration) time.Duration {
		v := time.Duration(float64(base) * float64(scale))
		if v < floor {
			v = floor
		}
		return v
	}
	return d(time.Second, 200*time.Millisecond),
		d(3*time.Second, 800*time.Millisecond),
		d(1500*time.Millisecond, 400*time.Millisecond)
}

// e21Run drives one configuration (shed on or off) through pre-storm,
// storm, and post-storm phases against a fresh backend + facade rig.
func e21Run(scale Scale, shed bool) (E21Config, error) {
	// The backend: 4-way parallel, 2ms service time => ~2000 req/s of
	// capacity. 256 closed-loop workers with a 25ms budget offer well
	// over 4x that, so the rig is deep into saturation during the storm.
	svc := simsvc.New(simsvc.Config{
		Info:     service.Info{Name: "cog-primary", Category: "cog"},
		Latency:  simsvc.Constant{D: 2 * time.Millisecond},
		Capacity: 4,
		Seed:     42,
	})
	cfg := core.Config{
		Breaker:  core.BreakerConfig{Threshold: 8, Cooldown: 150 * time.Millisecond},
		Deadline: core.DeadlineConfig{Factor: 4, Floor: 15 * time.Millisecond, Cap: 50 * time.Millisecond},
		DefaultRetry: failover.RetryPolicy{
			MaxAttempts: 2,
			Backoff:     2 * time.Millisecond,
			Jitter:      failover.FullJitter,
		},
	}
	if shed {
		cfg.Shed = core.ShedConfig{
			TargetP99:   e21TargetP99,
			MaxInFlight: 64, MinInFlight: 2,
			Window:         25 * time.Millisecond,
			DecreaseFactor: 0.75,
		}
	}
	client, err := core.NewClient(cfg)
	if err != nil {
		return E21Config{}, err
	}
	defer client.Close()
	if err := client.Register(svc); err != nil {
		return E21Config{}, err
	}
	api := core.NewAPI(client)

	preD, stormD, postD := e21Durations(scale)
	newReq := loadgen.InvokeRequest("cog-primary", 1.0) // all-unique texts: no cache absorption

	phase := func(name string, workers int, dur time.Duration, chaos *loadgen.Schedule) (E21Phase, error) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		if chaos != nil {
			go chaos.Play(ctx)
		}
		rep, err := loadgen.Run(ctx, loadgen.Config{
			Handler:    api,
			NewRequest: newReq,
			Arrival:    loadgen.ClosedLoop,
			Workers:    workers,
			Duration:   dur,
			Timeout:    e21Timeout,
			ShedPause:  2 * time.Millisecond, // clients honor "try again later"
			Seed:       7,
		})
		if err != nil {
			return E21Phase{}, err
		}
		p := E21Phase{Name: name, Report: rep, Breaker: breakerState(client, "cog-primary")}
		if sh := client.Shedder(); sh != nil {
			p.Limit = sh.Limit()
		}
		// Drain stragglers (requests keep their full budget past the
		// window) so phases don't bleed into each other.
		time.Sleep(2 * e21Timeout)
		return p, nil
	}

	out := E21Config{Shed: shed}
	if out.Pre, err = phase("pre-storm", 4, preD, nil); err != nil {
		return out, err
	}
	// The storm: saturating concurrency plus a seeded schedule of fault
	// bursts against the backend. Same seed both configs — identical
	// chaos, the shed stage is the only variable.
	faults := []loadgen.Fault{
		{Name: "failburst", On: func() { svc.SetFailRate(0.7) }, Off: func() { svc.SetFailRate(0) }},
		{Name: "latspike", On: func() { svc.SetExtraLatency(40 * time.Millisecond) }, Off: func() { svc.SetExtraLatency(0) }},
		{Name: "flap", On: func() { svc.SetDown(true) }, Off: func() { svc.SetDown(false) }},
	}
	chaos := loadgen.RandomStorms(99, stormD, 3, faults)
	if out.Storm, err = phase("storm", 256, stormD, chaos); err != nil {
		return out, err
	}
	// Belt and braces: the schedule's off-events all land inside the
	// horizon, but make recovery unconditional before measuring it.
	svc.SetFailRate(0)
	svc.SetExtraLatency(0)
	svc.SetDown(false)
	if out.Post, err = phase("post-storm", 4, postD, nil); err != nil {
		return out, err
	}
	return out, nil
}

func breakerState(c *core.Client, name string) string {
	for _, st := range c.BreakerStates() {
		if st.Service == name {
			return st.State
		}
	}
	return "-"
}

// RunE21 runs the chaos/load experiment at the given scale and returns the
// structured results plus the printable table.
func RunE21(scale Scale) (unshed, shedded E21Config, table Table, err error) {
	if unshed, err = e21Run(scale, false); err != nil {
		return unshed, shedded, table, err
	}
	if shedded, err = e21Run(scale, true); err != nil {
		return unshed, shedded, table, err
	}

	table = Table{
		ID:     "E21",
		Title:  "chaos storm, adaptive load shedding",
		Claim:  "under fault storms at 4x+ saturation, AIMD admission control keeps admitted p99 bounded and goodput materially above the unshed baseline, recovering after the storm",
		Header: []string{"config", "phase", "sent", "ok", "goodput/s", "ok%", "shed", "timeout", "503", "504", "p50 ok", "p99 ok", "breaker", "limit"},
	}
	add := func(cfg E21Config) {
		label := "unshed"
		if cfg.Shed {
			label = "shed"
		}
		for _, p := range []E21Phase{cfg.Pre, cfg.Storm, cfg.Post} {
			r := p.Report
			limit := "-"
			if cfg.Shed {
				limit = fmt.Sprintf("%d", p.Limit)
			}
			table.Rows = append(table.Rows, []string{
				label, p.Name,
				fmt.Sprintf("%d", r.Sent),
				fmt.Sprintf("%d", r.OK),
				fmt.Sprintf("%.0f", r.Goodput()),
				fmt.Sprintf("%.0f%%", 100*r.OKRate()),
				fmt.Sprintf("%d", r.Shed),
				fmt.Sprintf("%d", r.Timeouts),
				fmt.Sprintf("%d", r.Status[http.StatusServiceUnavailable]),
				fmt.Sprintf("%d", r.Status[http.StatusGatewayTimeout]),
				fmtMS(r.OKLatency.Quantile(0.50)),
				fmtMS(r.OKLatency.Quantile(0.99)),
				p.Breaker, limit,
			})
		}
	}
	add(unshed)
	add(shedded)

	ratio := float64(shedded.Storm.Report.OK) / float64(max(int(unshed.Storm.Report.OK), 1))
	table.Notes = fmt.Sprintf(
		"storm goodput: shed %.0f/s vs unshed %.0f/s (%.1fx); shed storm p99(ok) %v vs target %v; post-storm p99 %v vs pre %v",
		shedded.Storm.Report.Goodput(), unshed.Storm.Report.Goodput(), ratio,
		shedded.Storm.Report.OKLatency.Quantile(0.99), e21TargetP99,
		shedded.Post.Report.OKLatency.Quantile(0.99), shedded.Pre.Report.OKLatency.Quantile(0.99))
	return unshed, shedded, table, nil
}

func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}
