package experiments

import (
	"fmt"

	"repro/internal/aggregate"
	"repro/internal/vision"
)

// --- E15: visual recognition services (Fig. 1, §2.2) ---

// E15Row is one strategy's tag-recognition quality over the image set.
type E15Row struct {
	Strategy string
	PRF      aggregate.PRF
}

// RunE15 runs both visual-recognition engines over a generated image set
// and compares each engine's label quality, and their union/intersection
// combinations, against ground truth — the image-file analogue of the E6
// text consensus ("similar types of analyses can be performed on other
// types of data such as image files", §2.2).
func RunE15(scale Scale) ([]E15Row, Table, error) {
	numImages := scale.n(200)
	sharp := vision.NewEngine(vision.ProfileSharp)
	fast := vision.NewEngine(vision.ProfileFast)
	sums := map[string]*aggregate.PRF{
		"vision-sharp": {}, "vision-fast": {}, "intersection": {}, "union": {},
	}
	add := func(dst *aggregate.PRF, s aggregate.PRF) {
		dst.TP += s.TP
		dst.FP += s.FP
		dst.FN += s.FN
	}
	for i := 0; i < numImages; i++ {
		img := vision.Generate(fmt.Sprintf("img-%04d", i), int64(9000+i))
		data := img.Encode()
		rs, err := sharp.Recognize(img.ID, data)
		if err != nil {
			return nil, Table{}, err
		}
		rf, err := fast.Recognize(img.ID, data)
		if err != nil {
			return nil, Table{}, err
		}
		ls, lf := rs.LabelSet(), rf.LabelSet()
		add(sums["vision-sharp"], aggregate.Score(ls, img.TrueLabels))
		add(sums["vision-fast"], aggregate.Score(lf, img.TrueLabels))
		add(sums["intersection"], aggregate.Score(intersect(ls, lf), img.TrueLabels))
		add(sums["union"], aggregate.Score(union(ls, lf), img.TrueLabels))
	}
	finish := func(p *aggregate.PRF) aggregate.PRF {
		out := *p
		if out.TP+out.FP > 0 {
			out.Precision = float64(out.TP) / float64(out.TP+out.FP)
		}
		if out.TP+out.FN > 0 {
			out.Recall = float64(out.TP) / float64(out.TP+out.FN)
		}
		if out.Precision+out.Recall > 0 {
			out.F1 = 2 * out.Precision * out.Recall / (out.Precision + out.Recall)
		}
		return out
	}
	var rows []E15Row
	for _, name := range []string{"vision-sharp", "vision-fast", "intersection", "union"} {
		rows = append(rows, E15Row{Strategy: name, PRF: finish(sums[name])})
	}
	t := Table{
		ID:     "E15",
		Title:  fmt.Sprintf("Visual recognition over %d images: single engines vs combinations", numImages),
		Claim:  "image files flow through the same multi-service analysis as text (Fig. 1, §2.2)",
		Header: []string{"strategy", "precision", "recall", "f1"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Strategy, f2(r.PRF.Precision), f2(r.PRF.Recall), f2(r.PRF.F1)})
	}
	t.Notes = "intersection maximizes precision, union maximizes recall — the combination trade-off applications choose per use case"
	return rows, t, nil
}

func intersect(a, b []string) []string {
	set := make(map[string]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	var out []string
	for _, x := range b {
		if set[x] {
			out = append(out, x)
		}
	}
	return out
}

func union(a, b []string) []string {
	set := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, x := range append(append([]string{}, a...), b...) {
		if !set[x] {
			set[x] = true
			out = append(out, x)
		}
	}
	return out
}
