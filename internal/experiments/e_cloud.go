package experiments

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/remotestore"
)

// E22 — sharded cloud store: aggregate throughput and p99 vs node count,
// with one node killed mid-run. Each store node models a finite backend
// (capacity-4 worker pool, 2ms service time ⇒ ~2000 req/s per node), so
// aggregate throughput is governed by node count rather than by how fast
// one in-process handler can spin. The claim under test is the sharding
// story: consistent-hash placement with R=2 replication scales write
// throughput like N/R and read throughput like N, and — the availability
// half — killing one node mid-read-storm costs zero served reads for
// N >= 2 (failover to replicas), versus the N=1 baseline where every
// post-kill read is lost.

const (
	// e22Capacity and e22Latency define one node's service model:
	// capacity/latency = ~2000 req/s per node.
	e22Capacity = 4
	e22Latency  = 2 * time.Millisecond
	// e22Writers is the closed-loop client concurrency; enough to
	// saturate 8 nodes (8 * capacity = 32 in-flight).
	e22Writers = 32
)

// E22Row is one node-count configuration's outcome.
type E22Row struct {
	Nodes    int
	Replicas int
	Quorum   int
	// Write and read phases: aggregate ops/s and client-observed p99.
	WriteRate float64
	WriteP99  time.Duration
	ReadRate  float64
	ReadP99   time.Duration
	// Kill phase: fraction of reads served while one node dies mid-run.
	KillServed float64
	KillReads  int
	Failovers  int64
	// KilledBreaker is the dead node's breaker state at phase end —
	// "open" is the machinery visibly routing around the corpse.
	KilledBreaker string
}

// e22Rig is one node-count configuration under test.
type e22Rig struct {
	cluster *remotestore.Cluster
	servers []*remotestore.Server
	urls    []string
}

func newE22Rig(n int) (*e22Rig, func(), error) {
	rig := &e22Rig{}
	var closers []func()
	for i := 0; i < n; i++ {
		srv := remotestore.NewServer(nil, remotestore.WithCapacity(e22Capacity))
		srv.SetLatency(e22Latency)
		hs := httptest.NewServer(srv.Handler())
		closers = append(closers, hs.Close)
		rig.servers = append(rig.servers, srv)
		rig.urls = append(rig.urls, hs.URL)
	}
	replicas := 2
	if replicas > n {
		replicas = n
	}
	cl, err := remotestore.NewCluster(remotestore.ClusterConfig{
		Nodes:    rig.urls,
		Replicas: replicas,
		Seed:     1,
		Workers:  2 * e22Writers,
		// CacheSize 0: reads must hit nodes or the experiment measures
		// the client cache, not the cluster.
		CacheSize: 0,
		Retry:     failover.RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond, Jitter: failover.FullJitter},
		Breaker:   core.BreakerConfig{Threshold: 4, Cooldown: 300 * time.Millisecond},
	})
	if err != nil {
		for _, c := range closers {
			c()
		}
		return nil, nil, err
	}
	rig.cluster = cl
	cleanup := func() {
		cl.Close()
		for _, c := range closers {
			c()
		}
	}
	return rig, cleanup, nil
}

// e22Drive runs ops operations through fn from e22Writers closed-loop
// workers and returns the aggregate rate and client-observed p99. fn
// receives the operation index.
func e22Drive(ops int, fn func(i int) error) (rate float64, p99 time.Duration, firstErr error) {
	var (
		mu   sync.Mutex
		lats = make([]time.Duration, 0, ops)
		next atomic.Int64
		wg   sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < e22Writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= ops {
					return
				}
				t0 := time.Now()
				err := fn(i)
				lat := time.Since(t0)
				mu.Lock()
				lats = append(lats, lat)
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		p99 = lats[(len(lats)*99)/100]
	}
	return float64(ops) / elapsed.Seconds(), p99, firstErr
}

// e22RunOne measures one node count end to end.
func e22RunOne(scale Scale, n int) (E22Row, error) {
	rig, cleanup, err := newE22Rig(n)
	if err != nil {
		return E22Row{}, err
	}
	defer cleanup()
	cl := rig.cluster
	row := E22Row{Nodes: n, Replicas: cl.Replicas(), Quorum: cl.WriteQuorum()}

	writeOps := scale.n(240)
	readOps := scale.n(480)
	killReads := scale.n(240)
	if killReads < 40 {
		killReads = 40 // enough reads on both sides of the kill
	}
	value := func(i int) string { return fmt.Sprintf("value-%d", i) }
	key := func(i int) string { return fmt.Sprintf("key-%03d", i%writeOps) }

	// Write phase: distinct keys, replicated, quorum-acknowledged.
	row.WriteRate, row.WriteP99, err = e22Drive(writeOps, func(i int) error {
		return cl.Put(key(i), []byte(value(i)))
	})
	if err != nil {
		return row, fmt.Errorf("E22 write phase (n=%d): %w", n, err)
	}
	if cl.Offline() {
		return row, fmt.Errorf("E22 write phase (n=%d): cluster went offline", n)
	}

	// Read phase: round-robin over the keys, verifying values — the
	// correctness gate that makes reduced-scale runs a real smoke test.
	row.ReadRate, row.ReadP99, err = e22Drive(readOps, func(i int) error {
		got, gerr := cl.Get(key(i))
		if gerr != nil {
			return gerr
		}
		if string(got) != value(i%writeOps) {
			return fmt.Errorf("key %s = %q, want %q", key(i), got, value(i%writeOps))
		}
		return nil
	})
	if err != nil {
		return row, fmt.Errorf("E22 read phase (n=%d): %w", n, err)
	}

	// Kill phase: keep reading while node 0 dies halfway through. Served
	// = correct value returned; for N >= 2 every key has a live replica,
	// so the machinery owes the caller 100%.
	var served, issued atomic.Int64
	half := int64(killReads / 2)
	beforeFailovers := cl.Stats().ReadFailovers
	_, _, _ = e22Drive(killReads, func(i int) error {
		if issued.Add(1) == half {
			rig.servers[0].SetDown(true)
		}
		got, gerr := cl.Get(key(i))
		if gerr == nil && string(got) == value(i%writeOps) {
			served.Add(1)
		}
		return nil // availability is the measurement, not an error
	})
	row.KillReads = killReads
	row.KillServed = float64(served.Load()) / float64(killReads)
	row.Failovers = cl.Stats().ReadFailovers - beforeFailovers
	for _, st := range cl.BreakerStates() {
		if st.Service == rig.urls[0] {
			row.KilledBreaker = st.State
		}
	}
	if row.KilledBreaker == "" {
		row.KilledBreaker = "-"
	}
	return row, nil
}

// RunE22 runs the sharded-cloud-store experiment at the given scale and
// returns the structured results plus the printable table.
func RunE22(scale Scale) ([]E22Row, Table, error) {
	counts := []int{1, 2, 4, 8}
	rows := make([]E22Row, 0, len(counts))
	for _, n := range counts {
		row, err := e22RunOne(scale, n)
		if err != nil {
			return rows, Table{}, err
		}
		rows = append(rows, row)
	}
	table := Table{
		ID:    "E22",
		Title: "sharded cloud store, throughput and kill availability vs node count",
		Claim: "consistent-hash sharding with R=2 replicated fan-out scales write throughput ~N/R and read throughput ~N over capacity-limited nodes, and killing one node mid-run costs zero read availability for N >= 2",
		Header: []string{"nodes", "R", "W", "write ops/s", "wr p99", "read ops/s", "rd p99",
			"kill reads", "served", "failovers", "dead breaker"},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.Replicas),
			fmt.Sprintf("%d", r.Quorum),
			fmt.Sprintf("%.0f", r.WriteRate),
			fmtMS(r.WriteP99),
			fmt.Sprintf("%.0f", r.ReadRate),
			fmtMS(r.ReadP99),
			fmt.Sprintf("%d", r.KillReads),
			fmt.Sprintf("%.0f%%", 100*r.KillServed),
			fmt.Sprintf("%d", r.Failovers),
			r.KilledBreaker,
		})
	}
	base := rows[0]
	last := rows[len(rows)-1]
	table.Notes = fmt.Sprintf(
		"8-node gains vs 1 node: writes %.1fx (ideal %d/R = %.0fx), reads %.1fx (ideal 8x); kill-phase reads served at N>=2: %.0f%%/%.0f%%/%.0f%% vs %.0f%% at N=1",
		last.WriteRate/base.WriteRate, last.Nodes, float64(last.Nodes)/float64(last.Replicas),
		last.ReadRate/base.ReadRate,
		100*rows[1].KillServed, 100*rows[2].KillServed, 100*rows[3].KillServed,
		100*base.KillServed)
	return rows, table, nil
}
