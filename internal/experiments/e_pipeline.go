package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/core"
	"repro/internal/nlu"
	"repro/internal/pipeline"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/simsvc"
	"repro/internal/webcorpus"
)

// --- E16: streaming analysis pipeline concurrency (Fig. 3/5) ---

// E16Row is one pipeline configuration's wall-clock outcome.
type E16Row struct {
	Label string
	// Workers is the fetch/analyze fan-out width.
	Workers int
	// Docs is how many documents flowed through the run.
	Docs    int
	Elapsed time.Duration
	// Speedup is relative to the cold 1-worker run.
	Speedup float64
	// CacheHits counts SDK response-cache hits during the run.
	CacheHits uint64
	// ServiceCalls counts NLU backend invocations during the run.
	ServiceCalls int64
}

// RunE16 runs the full analysis pipeline — search via the SDK, fetch over
// real HTTP, NLU-analyze, aggregate — at increasing fetch/analyze fan-out
// widths against simulated-latency services, then repeats the widest run on
// its warm client. Bounded concurrency turns the per-document service
// latency into near-linear speedup, and because the pipeline invokes
// everything through core.Client, the repeat run is answered entirely from
// the SDK response cache.
func RunE16(scale Scale) ([]E16Row, Table, error) {
	limit := scale.n(40)
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 7, NumDocs: 120})
	web := httptest.NewServer(corpus.Handler())
	defer web.Close()
	index := search.BuildIndex(corpus)
	const query = "market technology growth company"

	newClient := func() (*core.Client, *simsvc.Service, error) {
		client, err := core.NewClient(core.Config{CacheTTL: time.Minute})
		if err != nil {
			return nil, nil, err
		}
		sengine := search.NewEngine("search-g", index, search.TuningG)
		sinfo := service.Info{Name: "search-g", Category: "search"}
		if err := client.Register(simsvc.New(simsvc.Config{
			Info:    sinfo,
			Latency: simsvc.Constant{D: time.Millisecond},
			Handler: sengine.Service(sinfo).Invoke,
		}), core.WithCacheable()); err != nil {
			client.Close()
			return nil, nil, err
		}
		nengine := nlu.NewEngine(nlu.ProfileAlpha)
		ninfo := service.Info{Name: "nlu-alpha", Category: "nlu"}
		// 10ms dominates scheduling and race-detector overhead, so the
		// speedup sweep stays robust at small scales.
		nsim := simsvc.New(simsvc.Config{
			Info:    ninfo,
			Latency: simsvc.Constant{D: 10 * time.Millisecond},
			Handler: nengine.Service(ninfo).Invoke,
		})
		if err := client.Register(nsim, core.WithCacheable()); err != nil {
			client.Close()
			return nil, nil, err
		}
		return client, nsim, nil
	}
	run := func(client *core.Client, workers int) (*pipeline.AnalysisResult, time.Duration, error) {
		start := time.Now()
		res, err := pipeline.AnalysisConfig{
			Client:   client,
			Search:   "search-g",
			NLU:      []string{"nlu-alpha"},
			FetchURL: web.URL,
			Limit:    limit,
			Workers:  workers,
		}.Run(context.Background(), query)
		return res, time.Since(start), err
	}

	var rows []E16Row
	var base time.Duration
	var warmClient *core.Client
	var warmSim *simsvc.Service
	for _, w := range []int{1, 2, 4, 8} {
		client, nsim, err := newClient()
		if err != nil {
			return nil, Table{}, err
		}
		res, elapsed, err := run(client, w)
		if err != nil {
			client.Close()
			return nil, Table{}, err
		}
		if w == 1 {
			base = elapsed
		}
		rows = append(rows, E16Row{
			Label:        fmt.Sprintf("cold, %d worker(s)", w),
			Workers:      w,
			Docs:         len(res.Docs),
			Elapsed:      elapsed,
			Speedup:      float64(base) / float64(elapsed),
			CacheHits:    client.CacheStats().Hits,
			ServiceCalls: nsim.Invocations(),
		})
		if w == 8 {
			warmClient, warmSim = client, nsim
		} else {
			client.Close()
		}
	}

	// Warm repeat on the widest run's client: same query, same documents —
	// the SDK response cache answers every search and analysis, so the
	// backends see no new traffic.
	callsBefore := warmSim.Invocations()
	hitsBefore := warmClient.CacheStats().Hits
	res, elapsed, err := run(warmClient, 8)
	if err != nil {
		warmClient.Close()
		return nil, Table{}, err
	}
	rows = append(rows, E16Row{
		Label:        "warm repeat, 8 workers",
		Workers:      8,
		Docs:         len(res.Docs),
		Elapsed:      elapsed,
		Speedup:      float64(base) / float64(elapsed),
		CacheHits:    warmClient.CacheStats().Hits - hitsBefore,
		ServiceCalls: warmSim.Invocations() - callsBefore,
	})
	warmClient.Close()

	t := Table{
		ID:     "E16",
		Title:  fmt.Sprintf("Streaming analysis pipeline over %d documents: fan-out width sweep", rows[0].Docs),
		Claim:  "bounded-concurrency streaming turns per-document service latency into near-linear speedup, while SDK caching eliminates repeat-run traffic (Fig. 3/5)",
		Header: []string{"configuration", "elapsed", "speedup", "cache_hits", "service_calls"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Label, r.Elapsed.String(), fmt.Sprintf("%.1fx", r.Speedup), d(int64(r.CacheHits)), d(r.ServiceCalls),
		})
	}
	warm := rows[len(rows)-1]
	t.Notes = fmt.Sprintf("8 workers run %.1fx faster than 1; the warm repeat makes %d service calls (%d cache hits)",
		rows[3].Speedup, warm.ServiceCalls, warm.CacheHits)
	return rows, t, nil
}
