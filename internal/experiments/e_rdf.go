package experiments

import (
	"fmt"
	"time"

	"repro/internal/rdf"
	"repro/internal/rdf/rdfref"
)

// --- E17: inference scaling, naive vs semi-naive, join planning (§3) ---

// E17Row is one inference or join configuration's outcome. For chain/*
// cases Facts counts derived statements and Derivations counts rule
// firings (semi-naive derives each fact exactly once on a linear rule
// set; naive re-derives the whole closure every round). For join/* cases
// Facts counts result rows and Derivations is 0.
type E17Row struct {
	Case        string
	N           int
	Facts       int
	Derivations int
	Elapsed     time.Duration
}

// e17Rules is the linear reachability rule set: edge facts seed reaches,
// and reaches extends one edge at a time. Linearity is what makes
// "derives each fact once" hold for semi-naive evaluation.
func e17Rules() []rdf.Rule {
	edge := rdf.NewIRI("edge")
	reaches := rdf.NewIRI("reaches")
	x, y, z := rdf.NewVar("x"), rdf.NewVar("y"), rdf.NewVar("z")
	return []rdf.Rule{
		{
			Name:        "reach-base",
			Premises:    []rdf.Statement{{S: x, P: edge, O: y}},
			Conclusions: []rdf.Statement{{S: x, P: reaches, O: y}},
		},
		{
			Name:        "reach-step",
			Premises:    []rdf.Statement{{S: x, P: edge, O: y}, {S: y, P: reaches, O: z}},
			Conclusions: []rdf.Statement{{S: x, P: reaches, O: z}},
		},
	}
}

// e17Chain builds an n-node linear chain in a fresh interned graph.
func e17Chain(n int) (*rdf.Graph, error) {
	g := rdf.NewGraph()
	stmts := make([]rdf.Statement, 0, n-1)
	for i := 0; i < n-1; i++ {
		stmts = append(stmts, rdf.Statement{
			S: rdf.NewIRI(fmt.Sprintf("n%05d", i)),
			P: rdf.NewIRI("edge"),
			O: rdf.NewIRI(fmt.Sprintf("n%05d", i+1)),
		})
	}
	_, err := g.AddAll(stmts)
	return g, err
}

// RunE17 measures (a) reachability-closure inference over linear chains of
// growing length under naive and semi-naive evaluation, reporting rule
// firings (Derivations) and wall time, and (b) a join-order sweep over a
// three-pattern BGP: the pre-PR baseline joins in the author's pattern
// order (worst and best orders measured separately) while the interned
// store's planner picks the selective order itself.
func RunE17(scale Scale) ([]E17Row, Table, error) {
	rules := e17Rules()
	var rows []E17Row

	// (a) Chain scaling. Naive evaluation is O(rounds x closure) and
	// becomes intractable quickly, so it stops at the mid size while
	// semi-naive continues to a chain an order of magnitude longer.
	bothSizes := []int{scale.n(100), scale.n(400)}
	semiOnly := []int{scale.n(1000)}
	if scale >= 1 {
		semiOnly = append(semiOnly, 2000)
	}
	for _, n := range bothSizes {
		g, err := e17Chain(n)
		if err != nil {
			return nil, Table{}, err
		}
		start := time.Now()
		naive, err := rdf.ForwardChainNaive(g, rules, 0)
		if err != nil {
			return nil, Table{}, err
		}
		rows = append(rows, E17Row{
			Case: "chain/naive", N: n, Facts: naive.Derived,
			Derivations: naive.Derivations, Elapsed: time.Since(start),
		})
		g2, err := e17Chain(n)
		if err != nil {
			return nil, Table{}, err
		}
		start = time.Now()
		semi, err := rdf.ForwardChainStats(g2, rules, 0)
		if err != nil {
			return nil, Table{}, err
		}
		if semi.Derived != naive.Derived {
			return nil, Table{}, fmt.Errorf("e17: engines disagree at n=%d: %d vs %d", n, semi.Derived, naive.Derived)
		}
		rows = append(rows, E17Row{
			Case: "chain/semi-naive", N: n, Facts: semi.Derived,
			Derivations: semi.Derivations, Elapsed: time.Since(start),
		})
	}
	for _, n := range semiOnly {
		g, err := e17Chain(n)
		if err != nil {
			return nil, Table{}, err
		}
		start := time.Now()
		semi, err := rdf.ForwardChainStats(g, rules, n+100)
		if err != nil {
			return nil, Table{}, err
		}
		rows = append(rows, E17Row{
			Case: "chain/semi-naive", N: n, Facts: semi.Derived,
			Derivations: semi.Derivations, Elapsed: time.Since(start),
		})
	}

	// (b) Join-order sweep: people in a knows-chain, each with a type fact
	// and one of ten departments. The BGP restricts one end by department
	// and the other by type; starting from the unselective type pattern is
	// the worst order, starting from the department pattern the best.
	people := scale.n(600)
	g := rdf.NewGraph()
	ref := rdfref.New()
	for i := 0; i < people; i++ {
		p := rdf.NewIRI(fmt.Sprintf("person:%05d", i))
		for _, s := range []rdf.Statement{
			{S: p, P: rdf.NewIRI("knows"), O: rdf.NewIRI(fmt.Sprintf("person:%05d", (i+1)%people))},
			{S: p, P: rdf.NewIRI("rdf:type"), O: rdf.NewIRI("Person")},
			{S: p, P: rdf.NewIRI("dept"), O: rdf.NewIRI(fmt.Sprintf("dept:%d", i%10))},
		} {
			g.MustAdd(s)
			ref.MustAdd(s)
		}
	}
	a, bb := rdf.NewVar("a"), rdf.NewVar("b")
	knowsPat := rdf.Statement{S: a, P: rdf.NewIRI("knows"), O: bb}
	deptPat := rdf.Statement{S: a, P: rdf.NewIRI("dept"), O: rdf.NewIRI("dept:3")}
	typePat := rdf.Statement{S: bb, P: rdf.NewIRI("rdf:type"), O: rdf.NewIRI("Person")}
	worst := []rdf.Statement{typePat, knowsPat, deptPat}
	best := []rdf.Statement{deptPat, knowsPat, typePat}

	start := time.Now()
	worstRows := ref.Solve(worst)
	rows = append(rows, E17Row{Case: "join/baseline-worst-order", N: people, Facts: len(worstRows), Elapsed: time.Since(start)})
	start = time.Now()
	bestRows := ref.Solve(best)
	rows = append(rows, E17Row{Case: "join/baseline-best-order", N: people, Facts: len(bestRows), Elapsed: time.Since(start)})
	start = time.Now()
	planned := g.Solve(worst)
	rows = append(rows, E17Row{Case: "join/planner-worst-order", N: people, Facts: len(planned), Elapsed: time.Since(start)})
	if len(worstRows) != len(bestRows) || len(planned) != len(worstRows) {
		return nil, Table{}, fmt.Errorf("e17: join results disagree: %d/%d/%d", len(worstRows), len(bestRows), len(planned))
	}

	t := Table{
		ID:     "E17",
		Title:  "Inference scaling and join planning on the interned RDF store",
		Claim:  "semi-naive evaluation derives each fact once, and the join planner makes pattern order irrelevant (§3, Fig. 5)",
		Header: []string{"case", "n", "facts_or_rows", "derivations", "elapsed"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Case, d(int64(r.N)), d(int64(r.Facts)), d(int64(r.Derivations)), r.Elapsed.String(),
		})
	}
	t.Notes = "naive re-derives the whole closure every round (derivations >> facts); semi-naive derivations == facts on this rule set; the planner run was handed the worst pattern order"
	return rows, t, nil
}
