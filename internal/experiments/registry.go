package experiments

import "fmt"

// Runner executes one experiment at the given scale and returns its table.
type Runner func(Scale) (Table, error)

// Entry names a runnable experiment.
type Entry struct {
	ID    string
	Title string
	Run   Runner
}

// All returns every experiment and ablation in DESIGN.md order.
func All() []Entry {
	return []Entry{
		{"E1", "response caching", func(s Scale) (Table, error) { _, t, err := RunE1(s); return t, err }},
		{"E2", "score-based ranking", func(s Scale) (Table, error) { _, t, err := RunE2(); return t, err }},
		{"E3", "retry and failover availability", func(s Scale) (Table, error) { _, t, err := RunE3(s); return t, err }},
		{"E4", "sync vs async vs parallel invocation", func(s Scale) (Table, error) { _, t, err := RunE4(s); return t, err }},
		{"E5", "size-dependent latency prediction", func(s Scale) (Table, error) { _, t, err := RunE5(s); return t, err }},
		{"E6", "multi-service NLU consensus", func(s Scale) (Table, error) { _, t, err := RunE6(s); return t, err }},
		{"E7", "persisted analyses and quotas", func(s Scale) (Table, error) { _, t, err := RunE7(s); return t, err }},
		{"E8", "RDF inference", func(s Scale) (Table, error) { _, t, err := RunE8(s); return t, err }},
		{"E9", "encryption and compression", func(s Scale) (Table, error) { _, t, err := RunE9(s); return t, err }},
		{"E10", "local vs remote spell checking", func(s Scale) (Table, error) { _, t, err := RunE10(s); return t, err }},
		{"E11", "offline write-back and sync", func(s Scale) (Table, error) { _, t, err := RunE11(s); return t, err }},
		{"E12", "format conversion", func(s Scale) (Table, error) { _, t, err := RunE12(s); return t, err }},
		{"E13", "entity disambiguation", func(s Scale) (Table, error) { _, t, err := RunE13(s); return t, err }},
		{"E14", "redundant multi-store writes", func(s Scale) (Table, error) { _, t, err := RunE14(s); return t, err }},
		{"E15", "visual recognition services", func(s Scale) (Table, error) { _, t, err := RunE15(s); return t, err }},
		{"E16", "streaming analysis pipeline concurrency", func(s Scale) (Table, error) { _, t, err := RunE16(s); return t, err }},
		{"E17", "RDF inference scaling and join planning", func(s Scale) (Table, error) { _, t, err := RunE17(s); return t, err }},
		{"E18", "search scaling, full scan vs block-max top-k", func(s Scale) (Table, error) { _, t, err := RunE18(s); return t, err }},
		{"E19", "streaming NLU ingest, interned hot path vs reference", func(s Scale) (Table, error) { _, t, err := RunE19(s); return t, err }},
		{"E20", "instrument cost, counters/gauges/histograms", func(s Scale) (Table, error) { _, t, err := RunE20(s); return t, err }},
		{"E21", "chaos storm, adaptive load shedding", func(s Scale) (Table, error) { _, _, t, err := RunE21(s); return t, err }},
		{"E22", "sharded cloud store, throughput and kill availability vs node count", func(s Scale) (Table, error) { _, t, err := RunE22(s); return t, err }},
		{"A1", "cache design ablation", func(s Scale) (Table, error) { _, t, err := RunA1(s); return t, err }},
		{"A2", "scoring formula ablation", func(s Scale) (Table, error) { _, t, err := RunA2(s); return t, err }},
		{"A3", "latency predictor ablation", func(s Scale) (Table, error) { _, t, err := RunA3(s); return t, err }},
		{"A4", "chaining strategy ablation", func(s Scale) (Table, error) { _, t, err := RunA4(s); return t, err }},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Entry, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
