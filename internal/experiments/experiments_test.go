package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Shape assertions: each experiment must reproduce the paper claim's
// direction at reduced scale, not exact magnitudes.

const testScale = Scale(0.2)

func TestE1CachingShape(t *testing.T) {
	rows, table, err := RunE1(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatal("too few rows")
	}
	noCache := rows[0]
	full := rows[len(rows)-1]
	if noCache.HitRatio != 0 {
		t.Errorf("no-cache hit ratio = %v", noCache.HitRatio)
	}
	if full.HitRatio < 0.5 {
		t.Errorf("full-cache hit ratio = %v, want > 0.5 (Zipf)", full.HitRatio)
	}
	if full.RemoteCalls >= noCache.RemoteCalls {
		t.Errorf("remote calls did not drop: %d -> %d", noCache.RemoteCalls, full.RemoteCalls)
	}
	if full.MeanLatency >= noCache.MeanLatency {
		t.Errorf("latency did not drop: %v -> %v", noCache.MeanLatency, full.MeanLatency)
	}
	// Hit ratio must grow monotonically with cache size.
	for i := 1; i < len(rows); i++ {
		if rows[i].HitRatio+1e-9 < rows[i-1].HitRatio {
			t.Errorf("hit ratio not monotone: %+v", rows)
		}
	}
	assertRenders(t, table)
}

func TestE2RankingShape(t *testing.T) {
	rows, table, err := RunE2()
	if err != nil {
		t.Fatal(err)
	}
	// Single-factor weightings pick the obvious extremes under both
	// formulas.
	if rows[0].Eq1Winner != "fast-premium" || rows[0].Eq2Winner != "fast-premium" {
		t.Errorf("latency-only winner = %+v", rows[0])
	}
	if rows[1].Eq1Winner != "slow-budget" || rows[1].Eq2Winner != "slow-budget" {
		t.Errorf("cost-only winner = %+v", rows[1])
	}
	if rows[2].Eq1Winner != "balanced-quality" || rows[2].Eq2Winner != "balanced-quality" {
		t.Errorf("quality-only winner = %+v", rows[2])
	}
	assertRenders(t, table)
}

func TestE3FailoverShape(t *testing.T) {
	rows, table, err := RunE3(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Retry+0.02 < r.Naive {
			t.Errorf("retry (%v) below naive (%v) at p=%v", r.Retry, r.Naive, r.FailRate)
		}
		if r.ChainFailover+0.02 < r.Retry {
			t.Errorf("chain (%v) below retry (%v) at p=%v", r.ChainFailover, r.Retry, r.FailRate)
		}
	}
	worst := rows[len(rows)-1]
	if worst.FailRate < 0.5 {
		t.Fatalf("sweep did not reach 50%%")
	}
	if worst.ChainFailover < 0.95 {
		t.Errorf("chain availability at 50%% failures = %v, want > 0.95", worst.ChainFailover)
	}
	if worst.Naive > 0.6 {
		t.Errorf("naive availability at 50%% failures = %v, want ~0.5", worst.Naive)
	}
	assertRenders(t, table)
}

func TestE4AsyncShape(t *testing.T) {
	rows, table, err := RunE4(testScale)
	if err != nil {
		t.Fatal(err)
	}
	sync, async, par := rows[0].Elapsed, rows[1].Elapsed, rows[2].Elapsed
	if float64(async) > float64(sync)*0.7 {
		t.Errorf("async (%v) not meaningfully faster than sync (%v)", async, sync)
	}
	if float64(par) > float64(sync)*0.7 {
		t.Errorf("parallel (%v) not meaningfully faster than sync (%v)", par, sync)
	}
	assertRenders(t, table)
}

func TestE5PredictionShape(t *testing.T) {
	rows, table, err := RunE5(testScale)
	if err != nil {
		t.Fatal(err)
	}
	matches := 0
	var sawS1, sawS2 bool
	for _, r := range rows {
		if r.PredictChoice == r.OracleChoice {
			matches++
		}
		if r.OracleChoice == "store-s1" {
			sawS1 = true
		} else {
			sawS2 = true
		}
	}
	if !sawS1 || !sawS2 {
		t.Error("sweep does not cross the crossover")
	}
	if matches < len(rows)-1 {
		t.Errorf("prediction matched oracle on %d/%d sizes", matches, len(rows))
	}
	assertRenders(t, table)
}

func TestE6ConsensusShape(t *testing.T) {
	rows, table, err := RunE6(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E6Row{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	alpha, gamma, cons := byName["nlu-alpha"], byName["nlu-gamma"], byName["consensus>=2/3"]
	if alpha.PRF.F1 <= gamma.PRF.F1 {
		t.Errorf("alpha F1 %v should beat gamma %v", alpha.PRF.F1, gamma.PRF.F1)
	}
	if cons.PRF.Precision+0.02 < gamma.PRF.Precision {
		t.Errorf("consensus precision %v below noisy engine %v", cons.PRF.Precision, gamma.PRF.Precision)
	}
	if cons.PRF.F1+0.02 < gamma.PRF.F1 {
		t.Errorf("consensus F1 %v below noisiest engine %v", cons.PRF.F1, gamma.PRF.F1)
	}
	assertRenders(t, table)
}

func TestE7PersistShape(t *testing.T) {
	rows, table, err := RunE7(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Cached != 0 {
		t.Errorf("round 1 cached = %d", rows[0].Cached)
	}
	if rows[1].Invocations != 0 || rows[2].Invocations != 0 {
		t.Errorf("later rounds invoked the service: %+v", rows)
	}
	if rows[1].Cached == 0 {
		t.Error("round 2 served nothing from the store")
	}
	for _, r := range rows {
		if r.QuotaDenied != 0 {
			t.Errorf("quota denied %d analyses in round %d (store should prevent this)", r.QuotaDenied, r.Round)
		}
	}
	assertRenders(t, table)
}

func TestE8InferenceShape(t *testing.T) {
	rows, table, err := RunE8(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		// Chain of n has n-1 base subclass facts + 1 type fact; closure
		// adds (n-1)(n-2)/2 subclass facts + n-1 type facts.
		n := r.ChainLength
		wantDerived := (n-1)*(n-2)/2 + (n - 1)
		if r.Derived != wantDerived {
			t.Errorf("chain %d derived %d, want %d", n, r.Derived, wantDerived)
		}
		if i > 0 && r.Derived <= rows[i-1].Derived {
			t.Error("derived facts not growing with chain length")
		}
	}
	assertRenders(t, table)
}

func TestE9CodecShape(t *testing.T) {
	rows, table, err := RunE9(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]E9Row{}
	for _, r := range rows {
		byKey[r.Payload+"/"+r.Mode] = r
	}
	if byKey["text/gzip"].StoredBytes >= byKey["text/plain"].StoredBytes/3 {
		t.Errorf("gzip on text: %d vs %d plain", byKey["text/gzip"].StoredBytes, byKey["text/plain"].StoredBytes)
	}
	if byKey["random/gzip"].StoredBytes < byKey["random/plain"].StoredBytes {
		t.Error("random data should not compress")
	}
	aesOverhead := byKey["text/aes-gcm"].StoredBytes - byKey["text/plain"].StoredBytes
	if aesOverhead < 0 || aesOverhead > 64 {
		t.Errorf("aes overhead = %d bytes, want small constant", aesOverhead)
	}
	if byKey["text/gzip+aes"].StoredBytes >= byKey["text/plain"].StoredBytes/3 {
		t.Error("gzip+aes should stay compressed (compress before encrypt)")
	}
	assertRenders(t, table)
}

func TestE10LocalRemoteShape(t *testing.T) {
	rows, table, err := RunE10(testScale)
	if err != nil {
		t.Fatal(err)
	}
	local, remote := rows[0], rows[1]
	// The full-scale gap is ~40x; assert a conservative 2x so parallel
	// package execution on loaded CI machines cannot flake the shape.
	if local.PerCall*2 > remote.PerCall {
		t.Errorf("local (%v) should be >2x faster than remote (%v)", local.PerCall, remote.PerCall)
	}
	if local.Cost != 0 || remote.Cost <= 0 {
		t.Errorf("costs = %v / %v", local.Cost, remote.Cost)
	}
	assertRenders(t, table)
}

func TestE11OfflineSyncShape(t *testing.T) {
	rows, table, err := RunE11(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Lost != 0 {
			t.Errorf("lost %d writes at %d offline writes", r.Lost, r.OfflineWrites)
		}
		if r.OfflineReads == 0 {
			t.Error("offline reads all failed despite local mirror")
		}
		if r.SyncedOps > r.OfflineWrites {
			t.Errorf("synced %d > written %d", r.SyncedOps, r.OfflineWrites)
		}
	}
	assertRenders(t, table)
}

func TestE12ConvertShape(t *testing.T) {
	rows, table, err := RunE12(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.LossLess {
			t.Errorf("conversion at %d rows lost data", r.Rows)
		}
		if r.Statements != 2*r.Rows {
			t.Errorf("statements = %d, want %d", r.Statements, 2*r.Rows)
		}
	}
	assertRenders(t, table)
}

func TestE13DisambigShape(t *testing.T) {
	rows, table, err := RunE13(testScale)
	if err != nil {
		t.Fatal(err)
	}
	raw, canon := rows[0], rows[1]
	if raw.Distinct <= raw.TrueCount {
		t.Errorf("raw ingestion should proliferate: %d distinct for %d true", raw.Distinct, raw.TrueCount)
	}
	if canon.Distinct != canon.TrueCount {
		t.Errorf("disambiguated distinct = %d, want %d", canon.Distinct, canon.TrueCount)
	}
	assertRenders(t, table)
}

func TestE14RedundancyShape(t *testing.T) {
	rows, table, err := RunE14(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ReadsOK != rows[0].Reads {
		t.Errorf("healthy reads = %d/%d", rows[0].ReadsOK, rows[0].Reads)
	}
	if rows[1].ReadsOK != rows[1].Reads || rows[2].ReadsOK != rows[2].Reads {
		t.Errorf("reads under partial failure should all succeed: %+v", rows)
	}
	if rows[3].ReadsOK != 0 {
		t.Errorf("total outage still served %d reads", rows[3].ReadsOK)
	}
	assertRenders(t, table)
}

func TestA1CacheAblationShape(t *testing.T) {
	rows, table, err := RunA1(testScale)
	if err != nil {
		t.Fatal(err)
	}
	flight, naive, ttl := rows[0], rows[1], rows[2]
	if flight.BackendCalls >= naive.BackendCalls {
		t.Errorf("single-flight calls %d >= naive %d", flight.BackendCalls, naive.BackendCalls)
	}
	if ttl.BackendCalls <= flight.BackendCalls {
		t.Errorf("1ns TTL (%d) should refill more often than no-TTL single-flight (%d)", ttl.BackendCalls, flight.BackendCalls)
	}
	assertRenders(t, table)
}

func TestA2ScoreAblationShape(t *testing.T) {
	rows, table, err := RunA2(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]A2Row{}
	for _, r := range rows {
		byName[r.Scorer] = r
	}
	if byName["eq2-normalized"].MeanRegret > byName["eq1-weighted"].MeanRegret {
		t.Errorf("eq2 regret %v above eq1 %v under imbalanced scales", byName["eq2-normalized"].MeanRegret, byName["eq1-weighted"].MeanRegret)
	}
	if byName["eq2-normalized"].WinnerMatch < 0.99 {
		t.Errorf("eq2 should match the scale-free utility: %v", byName["eq2-normalized"].WinnerMatch)
	}
	assertRenders(t, table)
}

func TestA3PredictAblationShape(t *testing.T) {
	rows, table, err := RunA3(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Shape+"/"+r.Predictor] = r.MAEms
	}
	if byKey["linear/regression"] > byKey["linear/knn-3"] {
		t.Errorf("regression MAE %v above knn %v on linear latency", byKey["linear/regression"], byKey["linear/knn-3"])
	}
	assertRenders(t, table)
}

func TestA4ChainAblationShape(t *testing.T) {
	rows, table, err := RunA4(testScale)
	if err != nil {
		t.Fatal(err)
	}
	forward, backward := rows[0], rows[1]
	if backward.Facts >= forward.Facts {
		t.Errorf("backward materialized %d facts vs forward %d", backward.Facts, forward.Facts)
	}
	assertRenders(t, table)
}

func TestE15VisionShape(t *testing.T) {
	rows, table, err := RunE15(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E15Row{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	sharp, fast := byName["vision-sharp"], byName["vision-fast"]
	inter, uni := byName["intersection"], byName["union"]
	if sharp.PRF.F1 <= fast.PRF.F1 {
		t.Errorf("sharp F1 %v should beat fast %v", sharp.PRF.F1, fast.PRF.F1)
	}
	if inter.PRF.Precision+1e-9 < fast.PRF.Precision {
		t.Errorf("intersection precision %v below fast %v", inter.PRF.Precision, fast.PRF.Precision)
	}
	if uni.PRF.Recall+1e-9 < sharp.PRF.Recall {
		t.Errorf("union recall %v below sharp %v", uni.PRF.Recall, sharp.PRF.Recall)
	}
	assertRenders(t, table)
}

func TestE16PipelineShape(t *testing.T) {
	rows, table, err := RunE16(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %+v, want 4 cold widths + 1 warm repeat", rows)
	}
	for i, r := range rows {
		if r.Docs == 0 {
			t.Fatalf("row %d processed no documents: %+v", i, r)
		}
		if r.Docs != rows[0].Docs {
			t.Errorf("row %d processed %d docs, row 0 processed %d", i, r.Docs, rows[0].Docs)
		}
	}
	// Acceptance: with 4ms-latency services, 8 workers must beat 1 worker
	// by well over the 2.5x floor (the latency dominates scheduling and
	// race-detector overhead).
	eight := rows[3]
	if eight.Workers != 8 || eight.Speedup < 2.5 {
		t.Errorf("8-worker speedup = %.2fx, want >= 2.5x (%+v)", eight.Speedup, eight)
	}
	// Cold rows invoke the backend once per doc; nothing is cached yet.
	for _, r := range rows[:4] {
		if r.ServiceCalls != int64(r.Docs) {
			t.Errorf("%s: %d service calls for %d docs", r.Label, r.ServiceCalls, r.Docs)
		}
	}
	// The warm repeat is answered from the SDK response cache.
	warm := rows[4]
	if warm.ServiceCalls != 0 {
		t.Errorf("warm repeat made %d service calls, want 0", warm.ServiceCalls)
	}
	if warm.CacheHits == 0 {
		t.Error("warm repeat recorded no cache hits")
	}
	assertRenders(t, table)
}

func TestE17InferenceScalingShape(t *testing.T) {
	rows, table, err := RunE17(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byCase := map[string][]E17Row{}
	for _, r := range rows {
		byCase[r.Case] = append(byCase[r.Case], r)
	}
	naive, semi := byCase["chain/naive"], byCase["chain/semi-naive"]
	if len(naive) < 2 || len(semi) <= len(naive) {
		t.Fatalf("chain rows = %d naive / %d semi, want semi to cover more sizes", len(naive), len(semi))
	}
	for i, nr := range naive {
		sr := semi[i]
		if nr.N != sr.N || nr.Facts != sr.Facts {
			t.Errorf("engines disagree at row %d: %+v vs %+v", i, nr, sr)
		}
		// A linear chain of n nodes closes to C(n,2) reaches facts.
		if want := nr.N * (nr.N - 1) / 2; nr.Facts != want {
			t.Errorf("chain %d derived %d facts, want %d", nr.N, nr.Facts, want)
		}
		// Semi-naive derives each fact exactly once on the linear rule
		// set; naive re-derives the closure every round.
		if sr.Derivations != sr.Facts {
			t.Errorf("chain %d: semi-naive fired %d rules for %d facts", sr.N, sr.Derivations, sr.Facts)
		}
		if nr.Derivations <= sr.Derivations {
			t.Errorf("chain %d: naive fired %d rules, semi-naive %d — no re-derivation saved", nr.N, nr.Derivations, sr.Derivations)
		}
	}
	for _, c := range []string{"join/baseline-worst-order", "join/baseline-best-order", "join/planner-worst-order"} {
		jr := byCase[c]
		if len(jr) != 1 {
			t.Fatalf("join case %s has %d rows", c, len(jr))
		}
		if jr[0].Facts == 0 || jr[0].Facts != byCase["join/baseline-worst-order"][0].Facts {
			t.Errorf("join case %s returned %d rows", c, jr[0].Facts)
		}
	}
	assertRenders(t, table)
}

func TestRegistryComplete(t *testing.T) {
	entries := All()
	if len(entries) != 26 {
		t.Errorf("registry has %d entries, want 26 (E1-E22 + A1-A4)", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("incomplete entry %+v", e)
		}
	}
	if _, err := Find("E8"); err != nil {
		t.Error(err)
	}
	if _, err := Find("E99"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func assertRenders(t *testing.T, table Table) {
	t.Helper()
	var buf bytes.Buffer
	if err := table.Write(&buf); err != nil {
		t.Fatalf("table render: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, table.ID) || len(table.Rows) == 0 {
		t.Errorf("table %s rendered badly:\n%s", table.ID, out)
	}
}

func TestE18SearchScalingShape(t *testing.T) {
	rows, table, err := RunE18(Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	assertRenders(t, table)
	byCase := map[string][]E18Row{}
	for _, r := range rows {
		byCase[r.Case] = append(byCase[r.Case], r)
	}
	base, pruned := byCase["baseline/full-scan"], byCase["pruned/block-max"]
	if len(base) != 3 || len(pruned) != 3 || len(byCase["pruned/block-max+expand"]) != 3 {
		t.Fatalf("row counts per case = %d/%d/%d, want 3 sizes each",
			len(base), len(pruned), len(byCase["pruned/block-max+expand"]))
	}
	for i := range pruned {
		if pruned[i].Docs != base[i].Docs {
			t.Fatalf("size mismatch at row %d", i)
		}
		if pruned[i].Scored == 0 {
			t.Errorf("docs=%d: evaluator scored no candidates", pruned[i].Docs)
		}
		if pruned[i].Pruned+pruned[i].BlockSkips == 0 {
			t.Errorf("docs=%d: no candidates pruned — bound checks are dead", pruned[i].Docs)
		}
	}
	// RunE18 itself fails if rankings ever disagree; here only sanity on
	// the speedup direction at the largest size (timing, so lenient).
	last := len(pruned) - 1
	if pruned[last].Speedup < 1 {
		t.Logf("warning: pruned engine slower than baseline at docs=%d (speedup %.2f)",
			pruned[last].Docs, pruned[last].Speedup)
	}
}

func TestE20InstrumentCostShape(t *testing.T) {
	rows, table, err := RunE20(Scale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	assertRenders(t, table)
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (3 instruments x 2 modes)", len(rows))
	}
	modes := map[string]int{}
	for _, r := range rows {
		modes[r.Mode]++
		if r.Ops == 0 {
			t.Errorf("%s/%s ran zero ops", r.Instrument, r.Mode)
		}
		if r.NsPerOp <= 0 {
			t.Errorf("%s/%s ns_per_op = %v", r.Instrument, r.Mode, r.NsPerOp)
		}
		// The whole point: instruments never allocate on the hot path.
		// Background goroutines can smear ReadMemStats deltas slightly,
		// so allow a tiny epsilon rather than demanding exactly zero.
		if r.AllocsPerOp > 0.01 {
			t.Errorf("%s/%s allocs_per_op = %v, want ~0", r.Instrument, r.Mode, r.AllocsPerOp)
		}
	}
	if modes["uncontended"] != 3 || modes["contended"] != 3 {
		t.Errorf("mode coverage = %v, want 3 each", modes)
	}
}

func TestE21ChaosShape(t *testing.T) {
	if testing.Short() {
		t.Skip("E21 runs multi-second real-time load phases")
	}
	unshed, shed, table, err := RunE21(testScale)
	if err != nil {
		t.Fatal(err)
	}
	assertRenders(t, table)
	if len(table.Rows) != 6 {
		t.Fatalf("got %d rows, want 2 configs x 3 phases", len(table.Rows))
	}
	// Both configs must carry real load in every phase.
	for _, cfg := range []E21Config{unshed, shed} {
		for _, p := range []E21Phase{cfg.Pre, cfg.Storm, cfg.Post} {
			if p.Report.Sent == 0 {
				t.Fatalf("shed=%v phase %s sent nothing", cfg.Shed, p.Name)
			}
		}
	}
	// Shedding engaged during the storm regardless of timing conditions.
	if shed.Storm.Report.Shed == 0 {
		t.Error("shed config rejected nothing during the storm")
	}
	// The remaining legs compare real-time goodput and latency across
	// configs; race-detector instrumentation multiplies the backend's
	// 2ms service time past the latency target and client budget, so the
	// comparison is meaningless there. Run plain `make test` for them.
	if raceEnabled {
		t.Log("race detector on: skipping goodput/latency legs")
		return
	}
	// Calm phases are healthy for both configs.
	if unshed.Pre.Report.OKRate() < 0.9 || shed.Pre.Report.OKRate() < 0.9 {
		t.Errorf("pre-storm ok-rate unhealthy: unshed %.2f, shed %.2f",
			unshed.Pre.Report.OKRate(), shed.Pre.Report.OKRate())
	}
	// The tentpole claim: under the same seeded storm at saturation, the
	// shed config's goodput materially beats the unshed baseline. The
	// full-scale run shows ~4x; at this reduced scale the storm is only
	// ~800ms so the margin tightens — assert 1.5x against a floored
	// baseline so the test has teeth without becoming a benchmark.
	unshedOK := unshed.Storm.Report.OK
	if unshedOK < 1 {
		unshedOK = 1
	}
	if 2*shed.Storm.Report.OK < 3*unshedOK {
		t.Errorf("storm goodput: shed %d ok vs unshed %d ok, want >= 1.5x",
			shed.Storm.Report.OK, unshed.Storm.Report.OK)
	}
	// Shedding converts overload into fast 429s rather than timeouts.
	if shed.Storm.Report.Timeouts >= unshed.Storm.Report.Timeouts {
		t.Errorf("shed config timed out as much as unshed (%d vs %d)",
			shed.Storm.Report.Timeouts, unshed.Storm.Report.Timeouts)
	}
	// Admitted p99 stays bounded near the client budget during the storm.
	// Quantile interpolates to a bucket's upper bound, so give it half a
	// budget of slack for bucket granularity.
	if p99 := shed.Storm.Report.OKLatency.Quantile(0.99); p99 > e21Timeout+e21Timeout/2 {
		t.Errorf("shed storm p99(ok) = %v, want bounded near client budget %v", p99, e21Timeout)
	}
	// After the storm the shed facade recovers: healthy ok-rate and a p99
	// back in the same regime as pre-storm (generous 3x margin — this is
	// a recovery check, not a latency benchmark).
	if shed.Post.Report.OKRate() < 0.9 {
		t.Errorf("shed post-storm ok-rate = %.2f, want >= 0.9", shed.Post.Report.OKRate())
	}
	prep99 := shed.Pre.Report.OKLatency.Quantile(0.99)
	postp99 := shed.Post.Report.OKLatency.Quantile(0.99)
	if postp99 > 3*prep99 {
		t.Errorf("shed post-storm p99 %v did not recover near pre-storm %v", postp99, prep99)
	}
}

func TestE22CloudStoreShape(t *testing.T) {
	if testing.Short() {
		t.Skip("E22 drives real HTTP store nodes with injected latency")
	}
	rows, table, err := RunE22(testScale)
	if err != nil {
		t.Fatal(err)
	}
	assertRenders(t, table)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want node counts 1/2/4/8", len(rows))
	}
	for i, n := range []int{1, 2, 4, 8} {
		if rows[i].Nodes != n {
			t.Fatalf("row %d nodes = %d, want %d", i, rows[i].Nodes, n)
		}
		wantR := 2
		if n < 2 {
			wantR = 1
		}
		if rows[i].Replicas != wantR {
			t.Errorf("n=%d replicas = %d, want %d", n, rows[i].Replicas, wantR)
		}
		if rows[i].WriteRate <= 0 || rows[i].ReadRate <= 0 {
			t.Errorf("n=%d rates = (%v, %v), want positive", n, rows[i].WriteRate, rows[i].ReadRate)
		}
	}
	// The availability half of the claim is deterministic — replicas
	// cover every key, so a single kill must cost nothing at N >= 2.
	for _, r := range rows[1:] {
		if r.KillServed < 1.0 {
			t.Errorf("n=%d served %.0f%% of reads through the kill, want 100%%",
				r.Nodes, 100*r.KillServed)
		}
		if r.Failovers == 0 {
			t.Errorf("n=%d recorded no read failovers despite a dead node", r.Nodes)
		}
	}
	// The N=1 baseline must visibly lose its post-kill reads — if it
	// doesn't, the kill never happened and the N>=2 rows prove nothing.
	if rows[0].KillServed > 0.9 {
		t.Errorf("n=1 served %.0f%% with its only node killed mid-run, want a visible loss",
			100*rows[0].KillServed)
	}
	// The timing half (near-linear scaling) is a benchmark claim; assert
	// it only where timing is trustworthy.
	if raceEnabled {
		t.Log("race detector on: skipping throughput-scaling legs")
		return
	}
	// Reads scale ~N (no replication cost): demand a real gain at 8
	// nodes, not the ideal 8x.
	if gain := rows[3].ReadRate / rows[0].ReadRate; gain < 2.0 {
		t.Errorf("8-node read gain = %.2fx, want >= 2x", gain)
	}
	// Writes scale ~N/R (ideal 4x at N=8, R=2).
	if gain := rows[3].WriteRate / rows[0].WriteRate; gain < 1.5 {
		t.Errorf("8-node write gain = %.2fx, want >= 1.5x", gain)
	}
}
