package experiments

import (
	"fmt"
	"time"

	"repro/internal/lexicon"
	"repro/internal/search"
	"repro/internal/search/searchref"
	"repro/internal/webcorpus"
)

// --- E18: search scaling, full-scan baseline vs block-max top-k (§2.2) ---

// E18Row is one (corpus size, engine) measurement: mean per-query latency
// over the query mix, plus the pruning counters for the block-max engine
// (zero for the baseline, which scores every matching posting).
type E18Row struct {
	Case       string
	Docs       int
	MeanQuery  time.Duration
	Speedup    float64 // vs the baseline at the same corpus size
	Scored     int     // candidates fully scored, summed over the mix
	Pruned     int     // candidates abandoned by bound checks
	BlockSkips int
}

// e18Queries is the query mix: short and long, common and rare terms,
// entity aliases, and a news-restricted probe.
var e18Queries = []struct {
	q    string
	news bool
}{
	{"market", false},
	{"market technology growth investment", false},
	{"acme corporation earnings", false},
	{"germany trade policy", true},
	{"usa", false},
	{"committee schedule conference", false},
	{"lawsuit scandal crisis", true},
	{"award breakthrough technology industry sector", false},
}

// RunE18 measures query latency at growing corpus sizes for the frozen
// seed engine (full scan of every matching posting list, then sort) and
// the dictionary-coded block-max top-k engine, verifying on every query
// that the two return identical rankings before trusting the clock. A
// third series runs the block-max engine with query expansion on, pricing
// the recall the expansion layer buys.
func RunE18(scale Scale) ([]E18Row, Table, error) {
	const limit = 10
	const reps = 3
	sizes := []int{scale.n(5000), scale.n(20000), scale.n(50000)}
	var rows []E18Row
	for _, docs := range sizes {
		corpus := webcorpus.Generate(webcorpus.Config{Seed: int64(docs), NumDocs: docs})
		ref := searchref.BuildIndex(corpus)
		idx := search.BuildIndex(corpus, search.WithExpansion(lexicon.PMIConfig{}))
		refParams := searchref.Params{Scoring: searchref.BM25, K1: 1.2, B: 0.75, TitleBoost: 2}

		// Agreement check first: pruning must be lossless at this size.
		for _, q := range e18Queries {
			want := ref.Search(q.q, refParams, searchref.Options{Limit: limit, NewsOnly: q.news})
			got := idx.Search(q.q, search.TuningG, search.Options{Limit: limit, NewsOnly: q.news})
			if len(got) != len(want) {
				return nil, Table{}, fmt.Errorf("e18: engines disagree at docs=%d q=%q: %d vs %d results", docs, q.q, len(got), len(want))
			}
			for i := range got {
				if got[i].DocID != want[i].DocID {
					return nil, Table{}, fmt.Errorf("e18: engines disagree at docs=%d q=%q rank %d: %s vs %s", docs, q.q, i, got[i].DocID, want[i].DocID)
				}
			}
		}

		start := time.Now()
		for r := 0; r < reps; r++ {
			for _, q := range e18Queries {
				ref.Search(q.q, refParams, searchref.Options{Limit: limit, NewsOnly: q.news})
			}
		}
		baseMean := time.Since(start) / time.Duration(reps*len(e18Queries))
		rows = append(rows, E18Row{Case: "baseline/full-scan", Docs: docs, MeanQuery: baseMean, Speedup: 1})

		var scored, pruned, skips int
		start = time.Now()
		for r := 0; r < reps; r++ {
			for _, q := range e18Queries {
				_, st := idx.SearchStats(q.q, search.TuningG, search.Options{Limit: limit, NewsOnly: q.news})
				if r == 0 {
					scored += st.Scored
					pruned += st.Pruned
					skips += st.BlockSkips
				}
			}
		}
		prunedMean := time.Since(start) / time.Duration(reps*len(e18Queries))
		rows = append(rows, E18Row{
			Case: "pruned/block-max", Docs: docs, MeanQuery: prunedMean,
			Speedup: float64(baseMean) / float64(prunedMean),
			Scored:  scored, Pruned: pruned, BlockSkips: skips,
		})

		start = time.Now()
		for r := 0; r < reps; r++ {
			for _, q := range e18Queries {
				idx.Search(q.q, search.TuningG, search.Options{Limit: limit, NewsOnly: q.news, Expand: true})
			}
		}
		expandMean := time.Since(start) / time.Duration(reps*len(e18Queries))
		rows = append(rows, E18Row{
			Case: "pruned/block-max+expand", Docs: docs, MeanQuery: expandMean,
			Speedup: float64(baseMean) / float64(expandMean),
		})
	}

	t := Table{
		ID:     "E18",
		Title:  "Search scaling: full-scan baseline vs block-max top-k",
		Claim:  "top-k pruning keeps query latency near-flat as the corpus grows, while the full scan degrades linearly (§2.2)",
		Header: []string{"case", "docs", "mean_query", "speedup", "scored", "pruned", "block_skips"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Case, d(int64(r.Docs)), r.MeanQuery.String(), f2(r.Speedup),
			d(int64(r.Scored)), d(int64(r.Pruned)), d(int64(r.BlockSkips)),
		})
	}
	t.Notes = "identical top-k rankings verified at every size before timing; scored/pruned counters show the evaluator touching a shrinking fraction of candidates as the corpus grows"
	return rows, t, nil
}
