package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/failover"
	"repro/internal/lexicon"
	"repro/internal/nlu"
	"repro/internal/pipeline"
	"repro/internal/service"
	"repro/internal/simsvc"
	"repro/internal/spell"
	"repro/internal/webcorpus"
)

// --- E6: multi-service NLU consensus (Fig. 3, §2.1–2.2) ---

// E6Row is one strategy's entity-recognition quality over the corpus.
type E6Row struct {
	Strategy string
	PRF      aggregate.PRF
}

// RunE6 analyzes a generated corpus with three NLU engine profiles and
// compares each engine's entity quality against majority-vote consensus.
// The analysis loop runs on the streaming pipeline engine; its order
// preservation keeps every result aligned with its ground-truth document.
func RunE6(scale Scale) ([]E6Row, Table, error) {
	numDocs := scale.n(150)
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 99, NumDocs: numDocs})
	client, err := core.NewClient(core.Config{})
	if err != nil {
		return nil, Table{}, err
	}
	defer client.Close()
	names := []string{"nlu-alpha", "nlu-beta", "nlu-gamma"}
	for _, p := range []nlu.Profile{nlu.ProfileAlpha, nlu.ProfileBeta, nlu.ProfileGamma} {
		info := service.Info{Name: p.Name, Category: "nlu"}
		if err := client.Register(nlu.NewEngine(p).Service(info)); err != nil {
			return nil, Table{}, err
		}
	}
	docs := make([]docstore.SavedDoc, len(corpus.Docs))
	for i, d := range corpus.Docs {
		docs[i] = docstore.SavedDoc{URL: d.URL, Title: d.Title, Text: d.Body}
	}
	res, err := pipeline.AnalysisConfig{
		Client:  client,
		NLU:     names,
		Workers: 8,
	}.RunDocs(context.Background(), "consensus corpus", docs)
	if err != nil {
		return nil, Table{}, err
	}

	sums := make(map[string]*aggregate.PRF)
	for _, name := range append(append([]string{}, names...), "consensus>=2/3") {
		sums[name] = &aggregate.PRF{}
	}
	addPRF := func(dst *aggregate.PRF, s aggregate.PRF) {
		dst.TP += s.TP
		dst.FP += s.FP
		dst.FN += s.FN
	}
	for i, doc := range corpus.Docs {
		analyses := res.PerDoc[i]
		for j, name := range names {
			prf := aggregate.Score(aggregate.KnownOnly(analyses[j].EntityIDs()), doc.TrueEntities)
			addPRF(sums[name], prf)
		}
		cons := aggregate.Consensus(analyses)
		voted := aggregate.KnownOnly(aggregate.FilterConfident(cons, 0.5))
		addPRF(sums["consensus>=2/3"], aggregate.Score(voted, doc.TrueEntities))
	}
	finish := func(p *aggregate.PRF) aggregate.PRF {
		out := *p
		if out.TP+out.FP > 0 {
			out.Precision = float64(out.TP) / float64(out.TP+out.FP)
		}
		if out.TP+out.FN > 0 {
			out.Recall = float64(out.TP) / float64(out.TP+out.FN)
		}
		if out.Precision+out.Recall > 0 {
			out.F1 = 2 * out.Precision * out.Recall / (out.Precision + out.Recall)
		}
		return out
	}
	order := []string{"nlu-alpha", "nlu-beta", "nlu-gamma", "consensus>=2/3"}
	var rows []E6Row
	for _, name := range order {
		rows = append(rows, E6Row{Strategy: name, PRF: finish(sums[name])})
	}
	t := Table{
		ID:     "E6",
		Title:  fmt.Sprintf("Entity recognition over %d documents: single engines vs consensus", numDocs),
		Claim:  "entities identified by more services deserve higher confidence (§2.1)",
		Header: []string{"strategy", "precision", "recall", "f1"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Strategy, f2(r.PRF.Precision), f2(r.PRF.Recall), f2(r.PRF.F1)})
	}
	cons := rows[len(rows)-1].PRF
	gamma := rows[2].PRF
	t.Notes = fmt.Sprintf("consensus F1 %.2f vs noisiest single engine %.2f", cons.F1, gamma.F1)
	return rows, t, nil
}

// --- E7: persistent analysis results + quotas (§2.2) ---

// E7Row is one pass over the document set.
type E7Row struct {
	Round       int
	Invocations int64
	Cached      int
	Elapsed     time.Duration
	QuotaDenied int
}

// RunE7 analyzes the same document set three times through the analysis
// pipeline. With the analysis store only the first pass invokes the
// (quota-limited, slow) service; without it the quota runs out
// mid-workload. Quota denials surface as skipped documents in the
// pipeline's error accounting.
func RunE7(scale Scale) ([]E7Row, Table, error) {
	numDocs := scale.n(120)
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 5, NumDocs: numDocs})
	engine := nlu.NewEngine(nlu.ProfileAlpha)
	quota := service.NewQuota(numDocs+numDocs/2, time.Hour, nil) // 1.5 passes worth
	backend := simsvc.New(simsvc.Config{
		Info:    service.Info{Name: "nlu-metered", Category: "nlu"},
		Latency: simsvc.Constant{D: 500 * time.Microsecond},
		Quota:   quota,
		Handler: func(_ context.Context, req service.Request) (service.Response, error) {
			return engine.Analyze(req.Text).Encode()
		},
	})
	client, err := core.NewClient(core.Config{})
	if err != nil {
		return nil, Table{}, err
	}
	defer client.Close()
	// One attempt per call: retrying a quota denial would double-count it.
	if err := client.Register(backend, core.WithRetry(failover.RetryPolicy{MaxAttempts: 1})); err != nil {
		return nil, Table{}, err
	}
	dir, err := os.MkdirTemp("", "e7-docstore-*")
	if err != nil {
		return nil, Table{}, err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	store, err := docstore.New(dir, nil)
	if err != nil {
		return nil, Table{}, err
	}

	docs := make([]docstore.SavedDoc, len(corpus.Docs))
	for i, d := range corpus.Docs {
		docs[i] = docstore.SavedDoc{URL: d.URL, Title: d.Title, Text: d.Body}
	}
	var rows []E7Row
	for round := 1; round <= 3; round++ {
		before := backend.Invocations()
		start := time.Now()
		res, err := pipeline.AnalysisConfig{
			Client:         client,
			NLU:            []string{"nlu-metered"},
			Store:          store,
			Workers:        4,
			SkipFailedDocs: true,
		}.RunDocs(context.Background(), "re-analysis", docs)
		if err != nil {
			return nil, Table{}, err
		}
		denied := 0
		for _, skip := range res.Skipped {
			if errors.Is(skip, service.ErrQuotaExceeded) {
				denied++
			}
		}
		rows = append(rows, E7Row{
			Round:       round,
			Invocations: backend.Invocations() - before,
			Cached:      res.CachedAnalyses,
			Elapsed:     time.Since(start),
			QuotaDenied: denied,
		})
	}
	t := Table{
		ID:     "E7",
		Title:  fmt.Sprintf("Re-analyzing %d documents x3 with persisted analysis results", numDocs),
		Claim:  "persisting results means each document is analyzed once, saving latency, cost, and quota (§2.2)",
		Header: []string{"round", "service_calls", "served_from_store", "elapsed", "quota_denied"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			d(int64(r.Round)), d(r.Invocations), d(int64(r.Cached)), r.Elapsed.String(), d(int64(r.QuotaDenied)),
		})
	}
	t.Notes = fmt.Sprintf("rounds 2-3 issue %d service calls and stay within quota; round-2 speedup %.1fx",
		rows[1].Invocations+rows[2].Invocations,
		float64(rows[0].Elapsed)/float64(max64(int64(rows[1].Elapsed), 1)))
	return rows, t, nil
}

// --- E10: local vs remote services (spell checker, §3) ---

// E10Row is one deployment's per-call latency.
type E10Row struct {
	Deployment string
	PerCall    time.Duration
	Cost       float64
}

// RunE10 runs the same spell checker locally and behind a simulated remote
// service with network latency, measuring per-call cost.
func RunE10(scale Scale) ([]E10Row, Table, error) {
	calls := scale.n(300)
	checker := spell.NewChecker(lexicon.Dictionary(), nil)
	remote := simsvc.New(simsvc.Config{
		Info:    service.Info{Name: "spell-remote", Category: "spell", CostPerCall: 0.0005},
		Latency: simsvc.Lognormal{Median: 2 * time.Millisecond, Sigma: 0.2},
		Seed:    3,
		Handler: func(ctx context.Context, req service.Request) (service.Response, error) {
			return checker.Service(service.Info{Name: "spell-remote", Category: "spell"}).Invoke(ctx, req)
		},
	})
	text := "The markte in Germny grew while the economi improved."

	localStart := time.Now()
	for i := 0; i < calls; i++ {
		_ = checker.Check(text)
	}
	localElapsed := time.Since(localStart)

	remoteStart := time.Now()
	for i := 0; i < calls; i++ {
		if _, err := remote.Invoke(context.Background(), service.Request{Op: "spellcheck", Text: text}); err != nil {
			return nil, Table{}, err
		}
	}
	remoteElapsed := time.Since(remoteStart)

	rows := []E10Row{
		{Deployment: "local (in-process)", PerCall: localElapsed / time.Duration(calls), Cost: 0},
		{Deployment: "remote service", PerCall: remoteElapsed / time.Duration(calls), Cost: 0.0005},
	}
	t := Table{
		ID:     "E10",
		Title:  fmt.Sprintf("Spell checking %d calls: local checker vs remote service", calls),
		Claim:  "the local spell checker is faster (no remote communication) and free (§3)",
		Header: []string{"deployment", "per_call", "cost_per_call"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Deployment, r.PerCall.String(), f(r.Cost)})
	}
	t.Notes = fmt.Sprintf("local is %.0fx faster per call",
		float64(rows[1].PerCall)/float64(max64(int64(rows[0].PerCall), 1)))
	return rows, t, nil
}
