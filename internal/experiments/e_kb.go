package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/csvconv"
	"repro/internal/failover"
	"repro/internal/kb"
	"repro/internal/kvstore"
	"repro/internal/lexicon"
	"repro/internal/rdbms"
	"repro/internal/rdf"
	"repro/internal/remotestore"
	"repro/internal/service"
	"repro/internal/simsvc"
	"repro/internal/xrand"
)

// --- E8: RDF inference derives new facts (Fig. 4/5, §3) ---

// E8Row is one base-graph size's inference outcome.
type E8Row struct {
	ChainLength int
	BaseFacts   int
	Derived     int
	Elapsed     time.Duration
}

// RunE8 builds subclass chains of growing length plus instance data and
// measures how many facts the transitive + RDFS reasoners derive.
func RunE8(scale Scale) ([]E8Row, Table, error) {
	lengths := []int{10, 20, 40}
	if scale >= 1 {
		lengths = append(lengths, 80)
	}
	var rows []E8Row
	for _, n := range lengths {
		g := rdf.NewGraph()
		for i := 0; i < n-1; i++ {
			g.MustAdd(rdf.Statement{
				S: rdf.NewIRI(fmt.Sprintf("class:%03d", i)),
				P: rdf.NewIRI(rdf.RDFSSubClassOf),
				O: rdf.NewIRI(fmt.Sprintf("class:%03d", i+1)),
			})
		}
		// One instance at the bottom of the lattice: rdfs9 lifts it
		// through every superclass.
		g.MustAdd(rdf.Statement{
			S: rdf.NewIRI("item:leaf"),
			P: rdf.NewIRI(rdf.RDFType),
			O: rdf.NewIRI("class:000"),
		})
		base := g.Len()
		rules := append(rdf.TransitiveRules(), rdf.RDFSRules()...)
		start := time.Now()
		derived, err := rdf.ForwardChain(g, rules, 0)
		if err != nil {
			return nil, Table{}, err
		}
		rows = append(rows, E8Row{
			ChainLength: n,
			BaseFacts:   base,
			Derived:     derived,
			Elapsed:     time.Since(start),
		})
	}
	t := Table{
		ID:     "E8",
		Title:  "Forward-chained inference over subclass chains",
		Claim:  "the RDF store infers new statements from stored ones (§3, Fig. 5)",
		Header: []string{"chain_len", "base_facts", "derived_facts", "elapsed"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			d(int64(r.ChainLength)), d(int64(r.BaseFacts)), d(int64(r.Derived)), r.Elapsed.String(),
		})
	}
	last := rows[len(rows)-1]
	t.Notes = fmt.Sprintf("derived/base ratio grows ~quadratically (%.1fx at chain %d) — transitive closure",
		float64(last.Derived)/float64(last.BaseFacts), last.ChainLength)
	return rows, t, nil
}

// --- E9: encryption and compression trade-offs (§3) ---

// E9Row is one (payload, codec) cell.
type E9Row struct {
	Payload     string
	Mode        string
	InBytes     int
	StoredBytes int
	EncodeTime  time.Duration
}

// RunE9 encodes compressible and incompressible payloads through the
// codecs the knowledge base offers and reports size and time.
func RunE9(scale Scale) ([]E9Row, Table, error) {
	sizeKB := scale.n(256)
	pattern := []byte("knowledge base statement about markets and growth. ")
	text := bytes.Repeat(pattern, sizeKB*1024/len(pattern)+1)[:sizeKB*1024]
	rng := xrand.New(8)
	random := make([]byte, sizeKB*1024)
	for i := range random {
		random[i] = byte(rng.Intn(256))
	}
	enc, err := codec.NewAESGCM("kb-secret")
	if err != nil {
		return nil, Table{}, err
	}
	codecs := []struct {
		name string
		c    codec.Codec
	}{
		{"plain", codec.Identity{}},
		{"gzip", codec.Gzip{}},
		{"aes-gcm", enc},
		{"gzip+aes", codec.Chain{codec.Gzip{}, enc}},
	}
	payloads := []struct {
		name string
		data []byte
	}{
		{"text", text},
		{"random", random},
	}
	var rows []E9Row
	for _, p := range payloads {
		for _, cd := range codecs {
			start := time.Now()
			out, err := cd.c.Encode(p.data)
			if err != nil {
				return nil, Table{}, err
			}
			elapsed := time.Since(start)
			// Validate round trip.
			back, err := cd.c.Decode(out)
			if err != nil || !bytes.Equal(back, p.data) {
				return nil, Table{}, fmt.Errorf("codec %s corrupted %s payload: %v", cd.name, p.name, err)
			}
			rows = append(rows, E9Row{
				Payload: p.name, Mode: cd.name,
				InBytes: len(p.data), StoredBytes: len(out), EncodeTime: elapsed,
			})
		}
	}
	t := Table{
		ID:     "E9",
		Title:  fmt.Sprintf("Codec size/time on %dKB payloads", sizeKB),
		Claim:  "compression saves space, bandwidth, and storage charges; encryption guards confidentiality (§3)",
		Header: []string{"payload", "mode", "bytes_in", "bytes_stored", "ratio", "encode_time"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Payload, r.Mode, d(int64(r.InBytes)), d(int64(r.StoredBytes)),
			f2(float64(r.StoredBytes) / float64(r.InBytes)), r.EncodeTime.String(),
		})
	}
	t.Notes = "gzip+aes shrinks text payloads while keeping them unreadable; random data does not compress (compress before encrypting)"
	return rows, t, nil
}

// --- E11: disconnected operation and reconnection sync (§3) ---

// E11Row is one offline window's outcome.
type E11Row struct {
	OfflineWrites int
	OfflineReads  int
	SyncedOps     int
	Lost          int
	SyncTime      time.Duration
}

// RunE11 writes through the enhanced client across an outage and verifies
// that reconnection sync delivers every surviving write.
func RunE11(scale Scale) ([]E11Row, Table, error) {
	var rows []E11Row
	for _, offlineWrites := range []int{scale.n(20), scale.n(100), scale.n(400)} {
		backing := kvstore.NewMemory()
		srv := remotestore.NewServer(backing)
		hs := httptest.NewServer(srv.Handler())
		client := remotestore.NewClient(remotestore.ClientConfig{
			BaseURL: hs.URL,
			Local:   kvstore.NewMemory(),
		})
		// Online warm-up write.
		if err := client.Put("warm", []byte("up")); err != nil {
			hs.Close()
			return nil, Table{}, err
		}
		client.SetOffline(true)
		for i := 0; i < offlineWrites; i++ {
			key := fmt.Sprintf("k%04d", i%max(offlineWrites/2, 1)) // half the keys rewritten
			if err := client.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
				hs.Close()
				return nil, Table{}, err
			}
		}
		// Offline reads still served locally.
		reads := 0
		for i := 0; i < 10; i++ {
			if _, err := client.Get(fmt.Sprintf("k%04d", i%max(offlineWrites/2, 1))); err == nil {
				reads++
			}
		}
		start := time.Now()
		pushed, err := client.Sync()
		syncTime := time.Since(start)
		if err != nil {
			hs.Close()
			return nil, Table{}, err
		}
		// Verify nothing was lost: every key's final value must be
		// remote.
		lost := 0
		for i := 0; i < offlineWrites; i++ {
			key := fmt.Sprintf("k%04d", i%max(offlineWrites/2, 1))
			if _, err := backing.Get(key); err != nil {
				lost++
			}
		}
		hs.Close()
		rows = append(rows, E11Row{
			OfflineWrites: offlineWrites,
			OfflineReads:  reads,
			SyncedOps:     pushed,
			Lost:          lost,
			SyncTime:      syncTime,
		})
	}
	t := Table{
		ID:     "E11",
		Title:  "Offline write-back and reconnection synchronization",
		Claim:  "local storage serves during disconnection; contents synchronize when connectivity returns (§3)",
		Header: []string{"offline_writes", "offline_reads_ok", "synced_ops", "lost", "sync_time"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			d(int64(r.OfflineWrites)), d(int64(r.OfflineReads)), d(int64(r.SyncedOps)), d(int64(r.Lost)), r.SyncTime.String(),
		})
	}
	t.Notes = "last-writer-wins collapses superseded writes (synced_ops ~= distinct keys); zero writes lost"
	return rows, t, nil
}

// --- E12: format conversion round trips (§3) ---

// E12Row is one data size's conversion outcome.
type E12Row struct {
	Rows       int
	CSVToTable time.Duration
	TableToRDF time.Duration
	RDFToTable time.Duration
	Statements int
	LossLess   bool
}

// RunE12 rounds data through CSV -> relational -> RDF -> relational and
// times each conversion.
func RunE12(scale Scale) ([]E12Row, Table, error) {
	sizes := []int{100, 1000}
	if scale >= 1 {
		sizes = append(sizes, 10000)
	}
	var rows []E12Row
	for _, n := range sizes {
		var sb strings.Builder
		sb.WriteString("id,name,score\n")
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "r%06d,item %d,%d\n", i, i, i%100)
		}
		db := rdbms.NewDB()
		start := time.Now()
		tab, err := db.ImportCSV("data", strings.NewReader(sb.String()))
		if err != nil {
			return nil, Table{}, err
		}
		csvToTable := time.Since(start)

		start = time.Now()
		stmts, err := csvconv.TableToStatements(tab, "id", "kb:")
		if err != nil {
			return nil, Table{}, err
		}
		g := rdf.NewGraph()
		if _, err := g.AddAll(stmts); err != nil {
			return nil, Table{}, err
		}
		tableToRDF := time.Since(start)

		start = time.Now()
		back, err := csvconv.StatementsToTable(db, "spo", g.All())
		if err != nil {
			return nil, Table{}, err
		}
		rdfToTable := time.Since(start)

		rows = append(rows, E12Row{
			Rows:       n,
			CSVToTable: csvToTable,
			TableToRDF: tableToRDF,
			RDFToTable: rdfToTable,
			Statements: g.Len(),
			LossLess:   back.Len() == g.Len() && g.Len() == 2*n, // name+score per row
		})
		if err := db.Drop("data"); err != nil {
			return nil, Table{}, err
		}
		if err := db.Drop("spo"); err != nil {
			return nil, Table{}, err
		}
	}
	t := Table{
		ID:     "E12",
		Title:  "Format conversion throughput and fidelity",
		Claim:  "data converts between CSV, relational, and RDF forms without loss (§3)",
		Header: []string{"rows", "csv->table", "table->rdf", "rdf->table", "statements", "lossless"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			d(int64(r.Rows)), r.CSVToTable.String(), r.TableToRDF.String(), r.RDFToTable.String(),
			d(int64(r.Statements)), fmt.Sprintf("%v", r.LossLess),
		})
	}
	t.Notes = "conversion scales linearly in rows; every round trip lossless"
	return rows, t, nil
}

// --- E13: disambiguation prevents entity proliferation (§3) ---

// E13Row is one ingestion mode's distinct-entity count.
type E13Row struct {
	Mode      string
	Rows      int
	Distinct  int
	TrueCount int
}

// RunE13 ingests an alias-rich country dataset with and without
// disambiguation and counts distinct stored entities.
func RunE13(scale Scale) ([]E13Row, Table, error) {
	rowsN := scale.n(600)
	rng := xrand.New(13)
	countries := lexicon.Countries[:10]
	var sb strings.Builder
	sb.WriteString("country,value\n")
	for i := 0; i < rowsN; i++ {
		c := countries[rng.Intn(len(countries))]
		surface := xrand.Choice(rng, c.Surface())
		fmt.Fprintf(&sb, "%s,%d\n", surface, i)
	}
	countDistinct := func(canonicalize bool) (int, error) {
		k, err := kb.New(kb.Config{})
		if err != nil {
			return 0, err
		}
		if _, err := k.IngestCSV("facts", strings.NewReader(sb.String())); err != nil {
			return 0, err
		}
		if canonicalize {
			if _, _, err := k.CanonicalizeColumn("facts", "country"); err != nil {
				return 0, err
			}
		}
		rs, err := k.SQL("SELECT country, COUNT(*) FROM facts GROUP BY country")
		if err != nil {
			return 0, err
		}
		return len(rs.Rows), nil
	}
	rawDistinct, err := countDistinct(false)
	if err != nil {
		return nil, Table{}, err
	}
	canonDistinct, err := countDistinct(true)
	if err != nil {
		return nil, Table{}, err
	}
	rows := []E13Row{
		{Mode: "raw strings", Rows: rowsN, Distinct: rawDistinct, TrueCount: len(countries)},
		{Mode: "disambiguated", Rows: rowsN, Distinct: canonDistinct, TrueCount: len(countries)},
	}
	t := Table{
		ID:     "E13",
		Title:  "Distinct stored entities with and without disambiguation",
		Claim:  "unique IDs prevent the proliferation of redundant entries from aliases like USA/US/America (§3)",
		Header: []string{"mode", "rows", "distinct_entities", "true_entities"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Mode, d(int64(r.Rows)), d(int64(r.Distinct)), d(int64(r.TrueCount))})
	}
	t.Notes = fmt.Sprintf("disambiguation collapses %d surface forms to the %d true entities", rawDistinct, canonDistinct)
	return rows, t, nil
}

// --- E14: redundant multi-store writes survive an outage (§2.1) ---

// E14Row is one scenario's read availability.
type E14Row struct {
	Scenario string
	ReadsOK  int
	Reads    int
}

// RunE14 writes the same data to three stores redundantly, kills one store,
// and verifies reads still succeed via failover.
func RunE14(scale Scale) ([]E14Row, Table, error) {
	keys := scale.n(50)
	stores := make([]*simsvc.Service, 3)
	backings := make([]kvstore.Store, 3)
	for i := range stores {
		backing := kvstore.NewMemory()
		backings[i] = backing
		stores[i] = simsvc.New(simsvc.Config{
			Info: service.Info{Name: fmt.Sprintf("db-%d", i), Category: "storage"},
			Seed: int64(i),
			Handler: func(_ context.Context, req service.Request) (service.Response, error) {
				switch req.Op {
				case "put":
					if err := backing.Put(req.Key, req.Data); err != nil {
						return service.Response{}, err
					}
					return service.Response{}, nil
				case "get":
					data, err := backing.Get(req.Key)
					if err != nil {
						return service.Response{}, fmt.Errorf("%w: %v", service.ErrUnavailable, err)
					}
					return service.Response{Body: data}, nil
				default:
					return service.Response{}, service.ErrBadRequest
				}
			},
		})
	}
	svcList := []service.Service{stores[0], stores[1], stores[2]}
	ctx := context.Background()
	// Redundant writes to all three stores.
	for i := 0; i < keys; i++ {
		req := service.Request{Op: "put", Key: fmt.Sprintf("k%d", i), Data: []byte(fmt.Sprintf("v%d", i))}
		results := failover.InvokeAll(ctx, nil, svcList, req)
		for _, r := range results {
			if r.Err != nil {
				return nil, Table{}, r.Err
			}
		}
	}
	readAll := func() (ok int) {
		for i := 0; i < keys; i++ {
			req := service.Request{Op: "get", Key: fmt.Sprintf("k%d", i)}
			if _, _, err := failover.InvokeFirst(ctx, svcList, req); err == nil {
				ok++
			}
		}
		return ok
	}
	rows := []E14Row{{Scenario: "all stores up", ReadsOK: readAll(), Reads: keys}}
	stores[0].SetDown(true)
	rows = append(rows, E14Row{Scenario: "db-0 down", ReadsOK: readAll(), Reads: keys})
	stores[1].SetDown(true)
	rows = append(rows, E14Row{Scenario: "db-0 and db-1 down", ReadsOK: readAll(), Reads: keys})
	stores[2].SetDown(true)
	rows = append(rows, E14Row{Scenario: "all stores down", ReadsOK: readAll(), Reads: keys})

	t := Table{
		ID:     "E14",
		Title:  "Redundant storage across three databases, reads under failures",
		Claim:  "storing the same data on different cloud databases provides redundancy (§2.1)",
		Header: []string{"scenario", "reads_ok", "reads"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Scenario, d(int64(r.ReadsOK)), d(int64(r.Reads))})
	}
	t.Notes = "reads survive any single (and double) store failure; only total outage loses availability"
	return rows, t, nil
}
