package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/predict"
	"repro/internal/rank"
	"repro/internal/rdf"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// --- A1: cache design ablation (TTL, single-flight) ---

// A1Row is one cache configuration's behaviour under a concurrent stampede.
type A1Row struct {
	Config       string
	BackendCalls int
	HitRatio     float64
}

// RunA1 hammers a cold cache with concurrent identical requests and counts
// backend fills with and without single-flight, plus TTL-expiry effects.
func RunA1(scale Scale) ([]A1Row, Table, error) {
	concurrency := 16
	rounds := scale.n(40)
	run := func(useFlight bool, ttl time.Duration) (int, float64) {
		mem := cache.NewMemory[int](1024, cache.WithTTL(ttl))
		group := cache.NewGroup[int]()
		var mu sync.Mutex
		backendCalls := 0
		fill := func() (int, error) {
			mu.Lock()
			backendCalls++
			mu.Unlock()
			time.Sleep(200 * time.Microsecond) // simulated remote call
			return 42, nil
		}
		for r := 0; r < rounds; r++ {
			// A small reused key set: later rounds hit unless the TTL
			// already expired the entry.
			key := fmt.Sprintf("key-%d", r%4)
			var wg sync.WaitGroup
			for g := 0; g < concurrency; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if useFlight {
						_, _, _ = cache.GetOrFill(context.Background(), mem, group, key, fill)
						return
					}
					if _, err := mem.Get(key); err == nil {
						return
					}
					v, err := fill()
					if err == nil {
						mem.Set(key, v)
					}
				}()
			}
			wg.Wait()
		}
		return backendCalls, mem.Stats().HitRatio()
	}
	callsFlight, hitFlight := run(true, 0)
	callsNaive, hitNaive := run(false, 0)
	callsTTL, hitTTL := run(true, time.Nanosecond) // everything expires immediately
	rows := []A1Row{
		{Config: "single-flight, no TTL", BackendCalls: callsFlight, HitRatio: hitFlight},
		{Config: "no single-flight", BackendCalls: callsNaive, HitRatio: hitNaive},
		{Config: "single-flight, 1ns TTL", BackendCalls: callsTTL, HitRatio: hitTTL},
	}
	t := Table{
		ID:     "A1",
		Title:  fmt.Sprintf("Cache ablation: %d goroutines x %d cold keys", concurrency, rounds),
		Claim:  "design choice: request de-duplication on cold keys (DESIGN.md)",
		Header: []string{"config", "backend_calls", "hit_ratio"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Config, d(int64(r.BackendCalls)), f2(r.HitRatio)})
	}
	t.Notes = fmt.Sprintf("single-flight issues %d backend calls (one per key); the cold-key stampede without it issues %dx more; an aggressive TTL refills every round (%d calls)",
		callsFlight, callsNaive/max(callsFlight, 1), callsTTL)
	return rows, t, nil
}

// --- A2: scoring formula ablation (selection regret) ---

// A2Row is one scorer's mean selection regret.
type A2Row struct {
	Scorer      string
	MeanRegret  float64
	WinnerMatch float64
}

// RunA2 draws random service populations whose latency and cost scales are
// imbalanced, defines the user's true utility on normalized factors, and
// measures each scorer's regret against the true best choice.
func RunA2(scale Scale) ([]A2Row, Table, error) {
	trials := scale.n(2000)
	rng := xrand.New(42)
	userW := rank.Weights{Alpha: 1, Beta: 1, Gamma: 1}
	scorers := []struct {
		name string
		s    rank.Scorer
	}{
		{"eq1-weighted", rank.Weighted{W: userW}},
		{"eq2-normalized", rank.Normalized{W: userW}},
		{"latency-only", rank.Weighted{W: rank.Weights{Alpha: 1}}},
	}
	regret := make([]float64, len(scorers))
	matches := make([]int, len(scorers))
	trueScore := func(e rank.Estimate, all []rank.Estimate) float64 {
		// Ground-truth utility: the normalized score (scale-free by
		// construction — the user cares about relative standing).
		return rank.Normalized{W: userW}.Score(e, all)
	}
	for tr := 0; tr < trials; tr++ {
		n := 3 + rng.Intn(3)
		ests := make([]rank.Estimate, n)
		for i := range ests {
			ests[i] = rank.Estimate{
				Name:           fmt.Sprintf("svc%d", i),
				ResponseTimeMS: 10 + 490*rng.Float64(),  // big magnitudes
				Cost:           0.1 + 4.9*rng.Float64(), // small magnitudes
				Quality:        rng.Float64(),           // tiny magnitudes
			}
		}
		bestTrue := math.Inf(1)
		for _, e := range ests {
			if s := trueScore(e, ests); s < bestTrue {
				bestTrue = s
			}
		}
		for si, sc := range scorers {
			pick, err := rank.Best(ests, sc.s)
			if err != nil {
				return nil, Table{}, err
			}
			got := trueScore(pick.Estimate, ests)
			regret[si] += got - bestTrue
			if got == bestTrue {
				matches[si]++
			}
		}
	}
	var rows []A2Row
	for si, sc := range scorers {
		rows = append(rows, A2Row{
			Scorer:      sc.name,
			MeanRegret:  regret[si] / float64(trials),
			WinnerMatch: float64(matches[si]) / float64(trials),
		})
	}
	t := Table{
		ID:     "A2",
		Title:  fmt.Sprintf("Selection regret over %d random service populations (imbalanced scales)", trials),
		Claim:  "design choice: when factor magnitudes differ wildly, normalize before weighting (Eq.2)",
		Header: []string{"scorer", "mean_regret", "picks_true_best"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Scorer, f(r.MeanRegret), f2(r.WinnerMatch)})
	}
	t.Notes = "eq2 matches the scale-free utility by construction; eq1 over-weights the large-magnitude latency factor"
	return rows, t, nil
}

// --- A3: latency prediction ablation (regression vs k-NN) ---

// A3Row is one predictor's error on one latency shape.
type A3Row struct {
	Shape     string
	Predictor string
	MAEms     float64
}

// RunA3 compares the regression model against the k-NN fallback on linear
// and quadratic latency functions of the size parameter.
func RunA3(scale Scale) ([]A3Row, Table, error) {
	trainN := scale.n(64)
	shapes := []struct {
		name string
		fn   func(x float64) float64 // ms
	}{
		{"linear", func(x float64) float64 { return 2 + 0.05*x }},
		{"quadratic", func(x float64) float64 { return 2 + 0.0004*x*x }},
	}
	var rows []A3Row
	for _, shape := range shapes {
		// Train both predictors on the same noisy observations.
		reg := predict.New(predict.Config{MinObservations: 8})
		knnOnly := predict.New(predict.Config{MinObservations: 1 << 30, KNeighbors: 3}) // never fits a model
		rng := xrand.New(77)
		for i := 0; i < trainN; i++ {
			x := float64(1 + rng.Intn(200))
			noisy := shape.fn(x) * (1 + 0.05*rng.NormFloat64())
			lat := time.Duration(noisy * float64(time.Millisecond))
			reg.Observe([]float64{x}, lat)
			knnOnly.Observe([]float64{x}, lat)
		}
		for _, pr := range []struct {
			name string
			p    *predict.Predictor
		}{{"regression", reg}, {"knn-3", knnOnly}} {
			var absErr []float64
			for x := 10.0; x <= 190; x += 10 {
				got, err := pr.p.Predict([]float64{x}, nil)
				if err != nil {
					return nil, Table{}, err
				}
				gotMs := float64(got) / float64(time.Millisecond)
				absErr = append(absErr, math.Abs(gotMs-shape.fn(x)))
			}
			rows = append(rows, A3Row{Shape: shape.name, Predictor: pr.name, MAEms: stats.Mean(absErr)})
		}
	}
	t := Table{
		ID:     "A3",
		Title:  "Latency prediction error: regression vs k-NN",
		Claim:  "design choice: fit a model when data supports it, fall back to neighbours otherwise (DESIGN.md)",
		Header: []string{"latency_shape", "predictor", "mae_ms"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Shape, r.Predictor, f2(r.MAEms)})
	}
	t.Notes = "linear regression dominates on linear latency; k-NN degrades gracefully on the quadratic shape where the linear model misfits"
	return rows, t, nil
}

// --- A4: forward vs backward chaining (query cost) ---

// A4Row is one strategy's cost for one query pattern.
type A4Row struct {
	Workload string
	Strategy string
	Elapsed  time.Duration
	Facts    int
}

// RunA4 compares materializing the full closure (forward chaining) against
// goal-directed proof (backward chaining) for a single ground query over a
// large lattice.
func RunA4(scale Scale) ([]A4Row, Table, error) {
	n := scale.n(60)
	build := func() *rdf.Graph {
		g := rdf.NewGraph()
		for i := 0; i < n-1; i++ {
			g.MustAdd(rdf.Statement{
				S: rdf.NewIRI(fmt.Sprintf("c%03d", i)),
				P: rdf.NewIRI(rdf.RDFSSubClassOf),
				O: rdf.NewIRI(fmt.Sprintf("c%03d", i+1)),
			})
		}
		return g
	}
	goal := rdf.Statement{
		S: rdf.NewIRI("c000"),
		P: rdf.NewIRI(rdf.RDFSSubClassOf),
		O: rdf.NewIRI(fmt.Sprintf("c%03d", n-1)),
	}
	rules := rdf.TransitiveRules()

	gF := build()
	startF := time.Now()
	if _, err := rdf.ForwardChain(gF, rules, 0); err != nil {
		return nil, Table{}, err
	}
	if !gF.Has(goal) {
		return nil, Table{}, fmt.Errorf("forward chaining missed the goal")
	}
	forwardElapsed := time.Since(startF)

	gB := build()
	startB := time.Now()
	bindings, err := rdf.BackwardChain(gB, rules, goal, 2*n)
	if err != nil {
		return nil, Table{}, err
	}
	if len(bindings) == 0 {
		return nil, Table{}, fmt.Errorf("backward chaining missed the goal")
	}
	backwardElapsed := time.Since(startB)

	rows := []A4Row{
		{Workload: "single ground query", Strategy: "forward (materialize closure)", Elapsed: forwardElapsed, Facts: gF.Len()},
		{Workload: "single ground query", Strategy: "backward (goal-directed)", Elapsed: backwardElapsed, Facts: gB.Len()},
	}
	t := Table{
		ID:     "A4",
		Title:  fmt.Sprintf("One reachability query over a %d-class lattice", n),
		Claim:  "design choice: Jena offers forward, tabled backward, and hybrid strategies because their costs differ (§3)",
		Header: []string{"workload", "strategy", "elapsed", "stored_facts_after"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Workload, r.Strategy, r.Elapsed.String(), d(int64(r.Facts))})
	}
	t.Notes = fmt.Sprintf("backward chaining answers without materializing the %d-fact closure; forward pays once but serves later queries for free", rows[0].Facts)
	return rows, t, nil
}
