package experiments

// --- E19: NLU hot-path throughput, interned engines vs frozen reference ---

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/nlu"
	"repro/internal/nlu/nluref"
	"repro/internal/pipeline"
	"repro/internal/service"
	"repro/internal/webcorpus"
)

// E19Row is one engine generation's streaming-ingest measurement: a
// generated corpus flows through the full analysis pipeline (every
// document analyzed by all three NLU profiles, cache bypassed) and we
// record wall-clock throughput and heap allocations per document.
type E19Row struct {
	Case string
	// Docs is how many documents flowed through the run.
	Docs    int
	Elapsed time.Duration
	// DocsPerSec is pipeline throughput (each document costs three
	// engine analyses).
	DocsPerSec float64
	// AllocsPerDoc is heap allocations per document across the whole
	// run, pipeline overhead included.
	AllocsPerDoc float64
	// Speedup is DocsPerSec relative to the frozen-reference run.
	Speedup float64
}

// RunE19 streams a corpus through the full analysis pipeline twice —
// once with the frozen pre-interning NLU engines (nluref), once with the
// interned hot-path engines — and prices the rebuild in documents per
// second and allocations per document. Before any clock starts, every
// sampled document is analyzed by both generations under every profile
// and the results must be bit-identical: the speedup only counts because
// the outputs are the same.
func RunE19(scale Scale) ([]E19Row, Table, error) {
	numDocs := scale.n(300)
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 19, NumDocs: numDocs})
	docs := make([]docstore.SavedDoc, len(corpus.Docs))
	for i, d := range corpus.Docs {
		docs[i] = docstore.SavedDoc{URL: d.URL, Title: d.Title, Text: d.Body}
	}
	names := []string{"nlu-alpha", "nlu-beta", "nlu-gamma"}

	// Agreement gate: interned engines must reproduce the reference
	// exactly on a corpus sample before their speed means anything.
	newEngines := []*nlu.Engine{nlu.NewEngine(nlu.ProfileAlpha), nlu.NewEngine(nlu.ProfileBeta), nlu.NewEngine(nlu.ProfileGamma)}
	refEngines := []*nluref.Engine{nluref.NewEngine(nluref.ProfileAlpha), nluref.NewEngine(nluref.ProfileBeta), nluref.NewEngine(nluref.ProfileGamma)}
	sample := len(corpus.Docs)
	if sample > 60 {
		sample = 60
	}
	for i := 0; i < sample; i++ {
		for j := range newEngines {
			got, err := json.Marshal(newEngines[j].Analyze(corpus.Docs[i].Body))
			if err != nil {
				return nil, Table{}, err
			}
			want, err := json.Marshal(refEngines[j].Analyze(corpus.Docs[i].Body))
			if err != nil {
				return nil, Table{}, err
			}
			if string(got) != string(want) {
				return nil, Table{}, fmt.Errorf("e19: engines disagree on doc %d profile %s:\n got %s\nwant %s",
					i, names[j], got, want)
			}
		}
	}

	run := func(register func(c *core.Client) error) (time.Duration, float64, int, error) {
		client, err := core.NewClient(core.Config{})
		if err != nil {
			return 0, 0, 0, err
		}
		defer client.Close()
		if err := register(client); err != nil {
			return 0, 0, 0, err
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		res, err := pipeline.AnalysisConfig{
			Client:  client,
			NLU:     names,
			Workers: 8,
			NoCache: true,
		}.RunDocs(context.Background(), "e19 ingest", docs)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return 0, 0, 0, err
		}
		allocs := float64(m1.Mallocs-m0.Mallocs) / float64(len(docs))
		return elapsed, allocs, len(res.Docs), nil
	}

	refElapsed, refAllocs, refDocs, err := run(func(c *core.Client) error {
		for _, p := range []nluref.Profile{nluref.ProfileAlpha, nluref.ProfileBeta, nluref.ProfileGamma} {
			info := service.Info{Name: p.Name, Category: "nlu"}
			if err := c.Register(nluref.NewEngine(p).Service(info)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, Table{}, err
	}
	newElapsed, newAllocs, newDocs, err := run(func(c *core.Client) error {
		for _, p := range []nlu.Profile{nlu.ProfileAlpha, nlu.ProfileBeta, nlu.ProfileGamma} {
			info := service.Info{Name: p.Name, Category: "nlu"}
			if err := c.Register(nlu.NewEngine(p).Service(info)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, Table{}, err
	}

	refRate := float64(refDocs) / refElapsed.Seconds()
	newRate := float64(newDocs) / newElapsed.Seconds()
	rows := []E19Row{
		{Case: "baseline/nluref", Docs: refDocs, Elapsed: refElapsed, DocsPerSec: refRate, AllocsPerDoc: refAllocs, Speedup: 1},
		{Case: "interned/nlu", Docs: newDocs, Elapsed: newElapsed, DocsPerSec: newRate, AllocsPerDoc: newAllocs, Speedup: newRate / refRate},
	}

	t := Table{
		ID:     "E19",
		Title:  fmt.Sprintf("Streaming NLU ingest over %d documents: interned hot path vs frozen reference", refDocs),
		Claim:  "interning the NLU vocabulary and pooling per-document scratch raises ingest throughput and cuts allocations without changing a single output bit (§2.1–2.2)",
		Header: []string{"case", "docs", "elapsed", "docs_per_sec", "allocs_per_doc", "speedup"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Case, d(int64(r.Docs)), r.Elapsed.String(),
			fmt.Sprintf("%.0f", r.DocsPerSec), fmt.Sprintf("%.0f", r.AllocsPerDoc), fmt.Sprintf("%.1fx", r.Speedup),
		})
	}
	t.Notes = fmt.Sprintf("every document passes all three engine profiles with the SDK cache bypassed; outputs verified bit-identical on %d documents before timing; allocations include pipeline overhead", sample)
	return rows, t, nil
}
