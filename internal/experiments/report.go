// Package experiments implements the benchmark harness: one runnable
// experiment per entry in DESIGN.md's per-experiment index (E1–E14 plus
// ablations A1–A4). The paper has no numeric evaluation tables — its
// figures are architectural — so each experiment turns one of the paper's
// comparative claims into a measured table whose shape (who wins, by
// roughly what factor, where crossovers fall) validates the claim.
// cmd/benchmark prints the tables; bench_test.go wraps each experiment as a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is one experiment's printable result.
type Table struct {
	// ID is the experiment identifier ("E1").
	ID string
	// Title describes the experiment.
	Title string
	// Claim is the paper claim under test.
	Claim string
	// Header names the columns.
	Header []string
	// Rows are the measured series.
	Rows [][]string
	// Notes carries the shape verdict ("caching wins by 14x at 90% hit
	// ratio").
	Notes string
}

// Write renders the table to w.
func (t Table) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n=== %s: %s ===\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Claim != "" {
		if _, err := fmt.Fprintf(w, "claim: %s\n", t.Claim); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(t.Header, "\t")); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(tw, strings.Join(dashes(t.Header), "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if t.Notes != "" {
		if _, err := fmt.Fprintf(w, "-> %s\n", t.Notes); err != nil {
			return err
		}
	}
	return nil
}

func dashes(header []string) []string {
	out := make([]string, len(header))
	for i, h := range header {
		out[i] = strings.Repeat("-", len(h))
	}
	return out
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3g", v) }

// f2 formats a float with 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// d formats an integer.
func d(v int64) string { return fmt.Sprintf("%d", v) }
