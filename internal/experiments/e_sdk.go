package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/rank"
	"repro/internal/service"
	"repro/internal/simsvc"
	"repro/internal/xrand"
)

// Scale shrinks experiment sizes for quick runs (benchmarks use Scale < 1).
type Scale float64

func (s Scale) n(base int) int {
	if s <= 0 {
		s = 1
	}
	out := int(float64(base) * float64(s))
	if out < 1 {
		out = 1
	}
	return out
}

// --- E1: caching avoids redundant service calls (Fig. 2, §2) ---

// E1Row is one cache-size configuration's outcome.
type E1Row struct {
	CacheSize   int
	HitRatio    float64
	MeanLatency time.Duration
	RemoteCalls int64
}

// RunE1 replays a Zipf-skewed document-analysis workload against a remote
// NLU service with constant latency, sweeping the SDK cache size.
func RunE1(scale Scale) ([]E1Row, Table, error) {
	const (
		numDocs     = 400
		remoteLatMs = 2
		zipfTheta   = 1.1
	)
	requests := scale.n(3000)
	docs := make([]string, numDocs)
	for i := range docs {
		docs[i] = fmt.Sprintf("Document %d discusses the market with growth and decline in region %d.", i, i%17)
	}
	var rows []E1Row
	for _, cacheSize := range []int{0, 25, 100, 400} {
		client, err := core.NewClient(core.Config{CacheSize: max(cacheSize, 1)})
		if err != nil {
			return nil, Table{}, err
		}
		backend := simsvc.New(simsvc.Config{
			Info:    service.Info{Name: "nlu-remote", Category: "nlu", CostPerCall: 0.001},
			Latency: simsvc.Constant{D: remoteLatMs * time.Millisecond},
			Seed:    1,
		})
		opts := []core.RegisterOption{}
		if cacheSize > 0 {
			opts = append(opts, core.WithCacheable())
		}
		if err := client.Register(backend, opts...); err != nil {
			client.Close()
			return nil, Table{}, err
		}
		rng := xrand.New(7)
		zipf := xrand.NewZipf(rng, zipfTheta, uint64(numDocs))
		start := time.Now()
		for i := 0; i < requests; i++ {
			doc := docs[zipf.Next()]
			if _, err := client.Invoke(context.Background(), "nlu-remote", service.Request{Op: "analyze", Text: doc}); err != nil {
				client.Close()
				return nil, Table{}, err
			}
		}
		elapsed := time.Since(start)
		st := client.CacheStats()
		rows = append(rows, E1Row{
			CacheSize:   cacheSize,
			HitRatio:    st.HitRatio(),
			MeanLatency: elapsed / time.Duration(requests),
			RemoteCalls: backend.Invocations(),
		})
		client.Close()
	}
	t := Table{
		ID:     "E1",
		Title:  "Response caching vs cache size (Zipf workload)",
		Claim:  "caching avoids redundant service calls and cuts latency (§2)",
		Header: []string{"cache_size", "hit_ratio", "mean_latency", "remote_calls"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			d(int64(r.CacheSize)), f2(r.HitRatio), r.MeanLatency.String(), d(r.RemoteCalls),
		})
	}
	base, best := rows[0], rows[len(rows)-1]
	t.Notes = fmt.Sprintf("full cache cuts remote calls %dx and mean latency %.1fx vs no cache",
		base.RemoteCalls/max64(best.RemoteCalls, 1),
		float64(base.MeanLatency)/float64(max64(int64(best.MeanLatency), 1)))
	return rows, t, nil
}

// --- E2: score-based ranking (Equations 1 and 2, §2) ---

// E2Row is one weighting's winners under both formulas.
type E2Row struct {
	Weights   rank.Weights
	Eq1Winner string
	Eq2Winner string
}

// RunE2 ranks a fixed service population under several weightings with both
// scoring formulas.
func RunE2() ([]E2Row, Table, error) {
	// Candidates mirror real trade-offs: a fast expensive service, a slow
	// cheap one, and a balanced high-quality one.
	ests := []rank.Estimate{
		{Name: "fast-premium", ResponseTimeMS: 12, Cost: 8.0, Quality: 0.85},
		{Name: "slow-budget", ResponseTimeMS: 180, Cost: 0.4, Quality: 0.80},
		{Name: "balanced-quality", ResponseTimeMS: 60, Cost: 2.5, Quality: 0.95},
	}
	weightings := []rank.Weights{
		{Alpha: 1, Beta: 0, Gamma: 0},
		{Alpha: 0, Beta: 1, Gamma: 0},
		{Alpha: 0, Beta: 0, Gamma: 1},
		{Alpha: 1, Beta: 1, Gamma: 1},
		{Alpha: 0.01, Beta: 1, Gamma: 1},
	}
	var rows []E2Row
	for _, w := range weightings {
		b1, err := rank.Best(ests, rank.Weighted{W: w})
		if err != nil {
			return nil, Table{}, err
		}
		b2, err := rank.Best(ests, rank.Normalized{W: w})
		if err != nil {
			return nil, Table{}, err
		}
		rows = append(rows, E2Row{Weights: w, Eq1Winner: b1.Name, Eq2Winner: b2.Name})
	}
	t := Table{
		ID:     "E2",
		Title:  "Service selection under Eq.1 (weighted) and Eq.2 (normalized)",
		Claim:  "scores rank services by response time, cost, and quality with user weights (§2)",
		Header: []string{"alpha", "beta", "gamma", "eq1_winner", "eq2_winner"},
	}
	disagreements := 0
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			f(r.Weights.Alpha), f(r.Weights.Beta), f(r.Weights.Gamma), r.Eq1Winner, r.Eq2Winner,
		})
		if r.Eq1Winner != r.Eq2Winner {
			disagreements++
		}
	}
	t.Notes = fmt.Sprintf("single-factor weights pick the expected extremes; formulas disagree on %d/%d weightings (normalization rebalances raw magnitudes)", disagreements, len(rows))
	return rows, t, nil
}

// --- E3: retry + ranked failover restores availability (§2.1) ---

// E3Row is one failure rate's success ratios per strategy.
type E3Row struct {
	FailRate      float64
	Naive         float64
	Retry         float64
	ChainFailover float64
}

// RunE3 sweeps per-service transient failure rates and compares a single
// attempt, per-service retries, and a ranked failover chain of three
// services.
func RunE3(scale Scale) ([]E3Row, Table, error) {
	requests := scale.n(2000)
	var rows []E3Row
	for _, p := range []float64{0, 0.1, 0.2, 0.3, 0.5} {
		mk := func(name string, seed int64) *simsvc.Service {
			return simsvc.New(simsvc.Config{
				Info:     service.Info{Name: name, Category: "nlu"},
				FailRate: p,
				Seed:     seed,
			})
		}
		naiveSvc := mk("naive", 11)
		retrySvc := mk("retry", 22)
		chain := []failover.Step{
			{Service: mk("chain-1", 33), Policy: failover.RetryPolicy{MaxAttempts: 2}},
			{Service: mk("chain-2", 44), Policy: failover.RetryPolicy{MaxAttempts: 2}},
			{Service: mk("chain-3", 55), Policy: failover.RetryPolicy{MaxAttempts: 2}},
		}
		var naiveOK, retryOK, chainOK int
		ctx := context.Background()
		req := service.Request{Op: "analyze", Text: "doc"}
		for i := 0; i < requests; i++ {
			if _, err := naiveSvc.Invoke(ctx, req); err == nil {
				naiveOK++
			}
			if _, _, err := failover.Invoke(ctx, nil, retrySvc, req, failover.RetryPolicy{MaxAttempts: 3}); err == nil {
				retryOK++
			}
			if _, _, err := failover.Chain(ctx, nil, chain, req); err == nil {
				chainOK++
			}
		}
		n := float64(requests)
		rows = append(rows, E3Row{
			FailRate:      p,
			Naive:         float64(naiveOK) / n,
			Retry:         float64(retryOK) / n,
			ChainFailover: float64(chainOK) / n,
		})
	}
	t := Table{
		ID:     "E3",
		Title:  "Effective availability vs per-service failure rate",
		Claim:  "retrying and moving to lower-ranked services finds a responsive one (§2.1)",
		Header: []string{"fail_rate", "single_attempt", "retry_x3", "failover_chain_3x2"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{f2(r.FailRate), f2(r.Naive), f2(r.Retry), f2(r.ChainFailover)})
	}
	worst := rows[len(rows)-1]
	t.Notes = fmt.Sprintf("at %.0f%% failures the chain sustains %.1f%% availability vs %.1f%% naive",
		worst.FailRate*100, worst.ChainFailover*100, worst.Naive*100)
	return rows, t, nil
}

// --- E4: sync vs async vs parallel invocation (§2, §2.1) ---

// E4Row is one strategy's wall-clock time.
type E4Row struct {
	Strategy string
	Elapsed  time.Duration
}

// RunE4 invokes three services (5 ms each) per round, sequentially,
// asynchronously through the bounded pool, and redundantly in parallel.
func RunE4(scale Scale) ([]E4Row, Table, error) {
	rounds := scale.n(20)
	const perCall = 5 * time.Millisecond
	client, err := core.NewClient(core.Config{AsyncWorkers: 8})
	if err != nil {
		return nil, Table{}, err
	}
	defer client.Close()
	names := []string{"svc-a", "svc-b", "svc-c"}
	for i, n := range names {
		err := client.Register(simsvc.New(simsvc.Config{
			Info:    service.Info{Name: n, Category: "multi"},
			Latency: simsvc.Constant{D: perCall},
			Seed:    int64(i),
		}))
		if err != nil {
			return nil, Table{}, err
		}
	}
	ctx := context.Background()
	req := service.Request{Op: "analyze", Text: "doc"}

	syncStart := time.Now()
	for r := 0; r < rounds; r++ {
		for _, n := range names {
			if _, err := client.Invoke(ctx, n, req); err != nil {
				return nil, Table{}, err
			}
		}
	}
	syncElapsed := time.Since(syncStart)

	asyncStart := time.Now()
	for r := 0; r < rounds; r++ {
		futs := make([]interface {
			Get() (service.Response, error)
		}, 0, len(names))
		for _, n := range names {
			futs = append(futs, client.InvokeAsync(ctx, n, req))
		}
		for _, fut := range futs {
			if _, err := fut.Get(); err != nil {
				return nil, Table{}, err
			}
		}
	}
	asyncElapsed := time.Since(asyncStart)

	parStart := time.Now()
	for r := 0; r < rounds; r++ {
		results, err := client.InvokeAll(ctx, "multi", req)
		if err != nil {
			return nil, Table{}, err
		}
		for _, res := range results {
			if res.Err != nil {
				return nil, Table{}, res.Err
			}
		}
	}
	parElapsed := time.Since(parStart)

	rows := []E4Row{
		{Strategy: "synchronous (blocking)", Elapsed: syncElapsed},
		{Strategy: "async futures (pool)", Elapsed: asyncElapsed},
		{Strategy: "parallel redundant", Elapsed: parElapsed},
	}
	t := Table{
		ID:     "E4",
		Title:  fmt.Sprintf("Invoking 3 services x %d rounds (%v per call)", rounds, perCall),
		Claim:  "async calls let the application continue; parallel calls cost ~max not ~sum (§2, §2.1)",
		Header: []string{"strategy", "wall_clock", "per_round"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Strategy, r.Elapsed.String(), (r.Elapsed / time.Duration(rounds)).String()})
	}
	t.Notes = fmt.Sprintf("parallel is %.1fx faster than sequential (ideal 3x)",
		float64(syncElapsed)/float64(parElapsed))
	return rows, t, nil
}

// --- E5: size-dependent latency and parameterized prediction (§2) ---

// E5Row is one object size's outcome.
type E5Row struct {
	SizeKB        int
	S1Latency     time.Duration
	S2Latency     time.Duration
	PredictChoice string
	OracleChoice  string
}

// RunE5 trains latency predictors on two storage services with crossing
// latency curves, then checks selection on both sides of the crossover.
func RunE5(scale Scale) ([]E5Row, Table, error) {
	client, err := core.NewClient(core.Config{
		Scorer: rank.Weighted{W: rank.Weights{Alpha: 1}}, // latency-only selection
	})
	if err != nil {
		return nil, Table{}, err
	}
	defer client.Close()
	// s1 wins small objects, s2 wins large (paper §2's example).
	s1 := simsvc.New(simsvc.Config{
		Info:    service.Info{Name: "store-s1", Category: "storage"},
		Latency: simsvc.SizeLinear{Base: 200 * time.Microsecond, PerKB: 20 * time.Microsecond, Jitter: 0.05},
		Seed:    1,
	})
	s2 := simsvc.New(simsvc.Config{
		Info:    service.Info{Name: "store-s2", Category: "storage"},
		Latency: simsvc.SizeLinear{Base: 1200 * time.Microsecond, PerKB: 2 * time.Microsecond, Jitter: 0.05},
		Seed:    2,
	})
	if err := client.Register(s1); err != nil {
		return nil, Table{}, err
	}
	if err := client.Register(s2); err != nil {
		return nil, Table{}, err
	}
	// Training phase: store objects of varied sizes on both services.
	ctx := context.Background()
	trainSizes := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	trainReps := scale.n(3)
	for rep := 0; rep < trainReps; rep++ {
		for _, kb := range trainSizes {
			req := service.Request{Op: "put", Key: fmt.Sprintf("k%d", kb), Data: make([]byte, kb*1024)}
			if _, err := client.Invoke(ctx, "store-s1", req); err != nil {
				return nil, Table{}, err
			}
			if _, err := client.Invoke(ctx, "store-s2", req); err != nil {
				return nil, Table{}, err
			}
		}
	}
	// Evaluation: predict-and-select per size.
	var rows []E5Row
	correct := 0
	for _, kb := range []int{1, 8, 32, 56, 128, 512, 1024} {
		params := []float64{float64(kb * 1024)}
		p1, err := client.PredictLatency("store-s1", params)
		if err != nil {
			return nil, Table{}, err
		}
		p2, err := client.PredictLatency("store-s2", params)
		if err != nil {
			return nil, Table{}, err
		}
		choice := "store-s1"
		if p2 < p1 {
			choice = "store-s2"
		}
		// Oracle from the true latency models (no jitter).
		true1 := 200*time.Microsecond + time.Duration(kb)*20*time.Microsecond
		true2 := 1200*time.Microsecond + time.Duration(kb)*2*time.Microsecond
		oracle := "store-s1"
		if true2 < true1 {
			oracle = "store-s2"
		}
		if choice == oracle {
			correct++
		}
		rows = append(rows, E5Row{
			SizeKB: kb, S1Latency: p1, S2Latency: p2,
			PredictChoice: choice, OracleChoice: oracle,
		})
	}
	t := Table{
		ID:     "E5",
		Title:  "Latency prediction from object size; selection across the crossover",
		Claim:  "s1 has lowest latency for small objects, s2 for large; parameterized prediction picks correctly (§2)",
		Header: []string{"size_kb", "pred_s1", "pred_s2", "predicted_choice", "oracle_choice"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			d(int64(r.SizeKB)), r.S1Latency.String(), r.S2Latency.String(), r.PredictChoice, r.OracleChoice,
		})
	}
	t.Notes = fmt.Sprintf("prediction matches the oracle on %d/%d sizes (crossover ~56KB)", correct, len(rows))
	return rows, t, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
