package rdf_test

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
	"repro/internal/rdf/rdfref"
)

// Engine benchmarks comparing the interned ID store against the frozen
// pre-PR string-keyed baseline in rdfref. The two acceptance-criteria
// benchmarks live here: BenchmarkSolveJoin (allocs/op on a three-pattern
// BGP) and BenchmarkForwardChainTransitive (semi-naive vs naive closure
// on a linear chain).

// joinGraphs builds the same social-style graph in both engines:
// a knows-chain with department fan-out so the three-pattern join has a
// selective middle pattern.
func joinGraphs(n int) (*rdf.Graph, *rdfref.Graph) {
	g := rdf.NewGraph()
	ref := rdfref.New()
	add := func(s rdf.Statement) {
		g.MustAdd(s)
		ref.MustAdd(s)
	}
	knows := rdf.NewIRI("knows")
	dept := rdf.NewIRI("dept")
	typ := rdf.NewIRI("rdf:type")
	person := rdf.NewIRI("Person")
	for i := 0; i < n; i++ {
		p := rdf.NewIRI(fmt.Sprintf("person:%04d", i))
		add(rdf.Statement{S: p, P: knows, O: rdf.NewIRI(fmt.Sprintf("person:%04d", (i+1)%n))})
		add(rdf.Statement{S: p, P: typ, O: person})
		add(rdf.Statement{S: p, P: dept, O: rdf.NewIRI(fmt.Sprintf("dept:%d", i%10))})
	}
	return g, ref
}

// joinBGP is the three-pattern basic graph pattern both engines solve:
// chase the knows edge, then restrict both ends by department constants.
func joinBGP() []rdf.Statement {
	return []rdf.Statement{
		{S: rdf.NewVar("a"), P: rdf.NewIRI("knows"), O: rdf.NewVar("b")},
		{S: rdf.NewVar("a"), P: rdf.NewIRI("dept"), O: rdf.NewIRI("dept:3")},
		{S: rdf.NewVar("b"), P: rdf.NewIRI("rdf:type"), O: rdf.NewIRI("Person")},
	}
}

// BenchmarkSolveJoin measures a three-pattern BGP join. The acceptance
// criterion for the interned store is >=10x fewer allocs/op than the
// string-keyed baseline (sub-benchmark baseline-stringstore).
func BenchmarkSolveJoin(b *testing.B) {
	g, ref := joinGraphs(500)
	bgp := joinBGP()
	b.Run("baseline-stringstore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := ref.Solve(bgp); len(got) != 50 {
				b.Fatalf("got %d bindings, want 50", len(got))
			}
		}
	})
	b.Run("bindings", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := g.Solve(bgp); len(got) != 50 {
				b.Fatalf("got %d bindings, want 50", len(got))
			}
		}
	})
	b.Run("rows", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := g.SolveRows(bgp); len(got.Rows) != 50 {
				b.Fatalf("got %d rows, want 50", len(got.Rows))
			}
		}
	})
}

// chainStatements returns the edge facts of a linear n-node chain
// n0 -edge-> n1 -edge-> ... -edge-> n(n-1).
func chainStatements(n int) []rdf.Statement {
	edge := rdf.NewIRI("edge")
	stmts := make([]rdf.Statement, 0, n-1)
	for i := 0; i < n-1; i++ {
		stmts = append(stmts, rdf.Statement{
			S: rdf.NewIRI(fmt.Sprintf("n%04d", i)),
			P: edge,
			O: rdf.NewIRI(fmt.Sprintf("n%04d", i+1)),
		})
	}
	return stmts
}

// BenchmarkForwardChainTransitive computes reachability over a 1000-node
// linear chain (full closure: C(1000,2) = 499500 derived facts). The
// semi-naive sub-benchmark runs to fixpoint; full naive closure at this
// size takes minutes on the pre-PR baseline, so the cross-engine
// comparison (acceptance criterion: semi-naive >=5x faster than the
// pre-PR naive baseline, guarded by TestRDFInferenceShape) runs all
// three engines capped at the same chainRoundCap rounds. naive-stringstore
// is the frozen pre-PR baseline; naive is the naive strategy on the
// interned store, isolating index gains from the semi-naive delta gains.
func BenchmarkForwardChainTransitive(b *testing.B) {
	const n = 1000
	stmts := chainStatements(n)
	rules := reachRules()
	b.Run("semi-naive", func(b *testing.B) {
		wantDerived := n * (n - 1) / 2
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := rdf.NewGraph()
			if _, err := g.AddAll(stmts); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			stats, err := rdf.ForwardChainStats(g, rules, n+100)
			if err != nil {
				b.Fatal(err)
			}
			if stats.Derived != wantDerived {
				b.Fatalf("derived %d, want %d", stats.Derived, wantDerived)
			}
		}
	})
	b.Run("roundcap/semi-naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := rdf.NewGraph()
			if _, err := g.AddAll(stmts); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			stats, _ := rdf.ForwardChainStats(g, rules, chainRoundCap)
			if stats.Rounds != chainRoundCap || stats.Derived == 0 {
				b.Fatalf("stats = %+v", stats)
			}
		}
	})
	b.Run("roundcap/naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := rdf.NewGraph()
			if _, err := g.AddAll(stmts); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			stats, _ := rdf.ForwardChainNaive(g, rules, chainRoundCap)
			if stats.Rounds != chainRoundCap || stats.Derived == 0 {
				b.Fatalf("stats = %+v", stats)
			}
		}
	})
	b.Run("roundcap/naive-stringstore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ref := rdfref.New()
			for _, s := range stmts {
				ref.MustAdd(s)
			}
			b.StartTimer()
			derived, _ := rdfref.ForwardChain(ref, rules, chainRoundCap)
			if derived == 0 {
				b.Fatal("derived nothing")
			}
		}
	})
}

// chainRoundCap bounds the naive engines in the cross-engine comparison:
// every engine computes the same first chainRoundCap rounds of the
// closure (rdfref derives slightly more per round because it feeds one
// rule's conclusions to the next within a round), keeping the pre-PR
// baseline's quadratic re-derivation cost measurable in seconds rather
// than minutes.
const chainRoundCap = 60

// BenchmarkMatchTwoBound measures the two-bound pattern the composite
// indexes were added for: (S, P, ?) binds directly off the spo posting
// list with no residual filter scan.
func BenchmarkMatchTwoBound(b *testing.B) {
	g, ref := joinGraphs(500)
	pat := rdf.Statement{S: rdf.NewIRI("person:0123"), P: rdf.NewIRI("knows")}
	b.Run("baseline-stringstore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := ref.Match(pat); len(got) != 1 {
				b.Fatalf("got %d statements, want 1", len(got))
			}
		}
	})
	b.Run("interned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := g.Match(pat); len(got) != 1 {
				b.Fatalf("got %d statements, want 1", len(got))
			}
		}
	})
}
