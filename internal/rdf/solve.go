package rdf

// The basic-graph-pattern solver. Patterns compile to ID form (cpat), a
// greedy selectivity planner picks the join order from index statistics,
// and a depth-first executor joins entirely over uint32 IDs in a single
// reusable row — no candidate maps, no string keys, no sorting, no
// Binding maps until (and unless) the caller asks for them. The same
// executor powers Solve/Query and, with per-premise fact sources, the
// semi-naive forward chainer in reason.go.

import (
	"sort"
	"time"
)

// Position roles inside a compiled pattern.
const (
	cConst uint8 = iota // interned constant term
	cVar                // variable, bound through a row slot
	cWild               // zero term: matches anything, binds nothing
)

// premSrc selects which fact set a compiled pattern scans. Plain solving
// always scans the full graph; the semi-naive chainer splits premises
// across delta/old/full (see forwardChainLocked).
type premSrc uint8

const (
	srcFull  premSrc = iota // every stored statement
	srcOld                  // stored statements minus the current delta
	srcDelta                // only the previous round's new statements
)

// cpat is one compiled pattern: per position either an interned constant
// ID, a variable slot, or a wildcard.
type cpat struct {
	kind [3]uint8
	id   [3]uint32
	slot [3]int
	src  premSrc
	// dead marks a pattern whose constant term is absent from the
	// dictionary: it can never match, so the whole BGP is empty.
	dead bool
}

// compileBGP translates patterns into cpats over a shared variable-slot
// space, returning variable names in first-appearance order. When intern
// is true missing constants are added to the dictionary (rule compilation,
// under the write lock: a premise constant may only start matching once
// another rule derives it); otherwise a missing constant marks the
// pattern dead. Caller holds the appropriate lock.
func (g *Graph) compileBGP(patterns []Statement, intern bool) ([]cpat, []string) {
	var vars []string
	slots := make(map[string]int)
	pats := make([]cpat, len(patterns))
	for pi, p := range patterns {
		cp := &pats[pi]
		for i, t := range [3]Term{p.S, p.P, p.O} {
			switch {
			case t.IsVar():
				cp.kind[i] = cVar
				sl, ok := slots[t.Value]
				if !ok {
					sl = len(vars)
					slots[t.Value] = sl
					vars = append(vars, t.Value)
				}
				cp.slot[i] = sl
			case t.Zero():
				cp.kind[i] = cWild
			default:
				cp.kind[i] = cConst
				if intern {
					cp.id[i] = g.dict.Intern(t)
				} else if id, ok := g.dict.Lookup(t); ok {
					cp.id[i] = id
				} else {
					cp.dead = true
				}
			}
		}
	}
	return pats, vars
}

// planOrder greedily orders patterns by estimated result cardinality:
// repeatedly pick the cheapest un-placed pattern given the variables
// already bound, then mark its variables bound. Delta-source premises are
// always placed first — the delta is the smallest relation by
// construction, and scanning it in an inner loop would cost |delta| per
// outer row. Caller holds a lock.
func (g *Graph) planOrder(pats []cpat, nvars int, deltaLen int) []int {
	order := make([]int, 0, len(pats))
	used := make([]bool, len(pats))
	boundSlots := make([]bool, nvars)
	for len(order) < len(pats) {
		best, bestEst, bestDelta := -1, 0.0, false
		for i := range pats {
			if used[i] {
				continue
			}
			est := g.estimate(&pats[i], boundSlots)
			isDelta := pats[i].src == srcDelta
			if isDelta && float64(deltaLen) < est {
				est = float64(deltaLen)
			}
			if best < 0 || (isDelta && !bestDelta) || (isDelta == bestDelta && est < bestEst) {
				best, bestEst, bestDelta = i, est, isDelta
			}
		}
		used[best] = true
		order = append(order, best)
		for i := 0; i < 3; i++ {
			if pats[best].kind[i] == cVar {
				boundSlots[pats[best].slot[i]] = true
			}
		}
	}
	return order
}

// estimate predicts how many statements the pattern will scan given the
// already-bound variable set. Constant positions give exact counts from
// the indexes; each bound-variable position scales by the expected
// selectivity of an equality on that position (one over the number of
// distinct terms there). Caller holds a lock.
func (g *Graph) estimate(p *cpat, boundSlots []bool) float64 {
	if p.dead {
		return 0
	}
	want := triple{wildID, wildID, wildID}
	for i := 0; i < 3; i++ {
		if p.kind[i] == cConst {
			want[i] = p.id[i]
		}
	}
	s, pp, o := want[0], want[1], want[2]
	var est float64
	switch {
	case s != wildID && pp != wildID && o != wildID:
		est = 1
	case s != wildID && pp != wildID:
		est = float64(len(g.spo[s][pp]))
	case pp != wildID && o != wildID:
		est = float64(len(g.pos[pp][o]))
	case s != wildID && o != wildID:
		est = float64(len(g.osp[o][s]))
	case s != wildID:
		est = float64(g.nS[s])
	case pp != wildID:
		est = float64(g.nP[pp])
	case o != wildID:
		est = float64(g.nO[o])
	default:
		est = float64(len(g.stmts))
	}
	for i := 0; i < 3; i++ {
		if p.kind[i] != cVar || !boundSlots[p.slot[i]] {
			continue
		}
		var distinct int
		switch i {
		case 0:
			distinct = len(g.spo)
		case 1:
			distinct = len(g.pos)
		case 2:
			distinct = len(g.osp)
		}
		if distinct > 1 {
			est /= float64(distinct)
		}
	}
	return est
}

// solveExec runs one compiled BGP depth-first in planned order. row holds
// the current variable assignment (wildID = unbound) and is reused across
// the whole search; emit receives it for each complete solution and must
// copy what it keeps.
type solveExec struct {
	g         *Graph
	pats      []cpat
	order     []int
	row       []uint32
	deltaList []triple
	deltaSet  map[triple]struct{}
	emit      func(row []uint32)
}

func (e *solveExec) run() {
	for i := range e.pats {
		if e.pats[i].dead {
			return
		}
	}
	for i := range e.row {
		e.row[i] = wildID
	}
	e.step(0)
}

func (e *solveExec) step(k int) {
	if k == len(e.order) {
		e.emit(e.row)
		return
	}
	p := &e.pats[e.order[k]]
	var want triple
	for i := 0; i < 3; i++ {
		switch p.kind[i] {
		case cConst:
			want[i] = p.id[i]
		case cVar:
			want[i] = e.row[p.slot[i]]
		default:
			want[i] = wildID
		}
	}
	visit := func(t triple) {
		// Bind this pattern's unbound variable slots; a slot bound twice
		// within the pattern (e.g. "?x p ?x") must agree with itself.
		var boundHere [3]int
		nb := 0
		ok := true
		for i := 0; i < 3; i++ {
			if p.kind[i] != cVar {
				continue
			}
			sl := p.slot[i]
			if e.row[sl] == wildID {
				e.row[sl] = t[i]
				boundHere[nb] = sl
				nb++
			} else if e.row[sl] != t[i] {
				ok = false
				break
			}
		}
		if ok {
			e.step(k + 1)
		}
		for i := 0; i < nb; i++ {
			e.row[boundHere[i]] = wildID
		}
	}
	switch p.src {
	case srcDelta:
		for _, t := range e.deltaList {
			if tripleMatches(want, t) {
				visit(t)
			}
		}
	case srcOld:
		e.g.forEach(want, func(t triple) {
			if _, in := e.deltaSet[t]; !in {
				visit(t)
			}
		})
	default:
		e.g.forEach(want, visit)
	}
}

func tripleMatches(want, t triple) bool {
	return (want[0] == wildID || want[0] == t[0]) &&
		(want[1] == wildID || want[1] == t[1]) &&
		(want[2] == wildID || want[2] == t[2])
}

// Solutions is the compact tabular result of SolveRows: Vars names the
// columns (variables in first-appearance order) and each row binds them
// positionally. All rows share one flat backing array.
type Solutions struct {
	Vars []string
	Rows [][]Term
}

// SolveRows finds all solutions of the basic graph pattern and returns
// them in compact tabular form — the allocation-light counterpart of
// Solve for callers (Query, benchmarks) that do not need map bindings.
// No patterns means one empty solution. Row order is unspecified; Query
// sorts its projection.
func (g *Graph) SolveRows(patterns []Statement) Solutions {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if o := g.obs; o != nil {
		start := time.Now()
		defer func() {
			o.solve.Observe(time.Since(start))
			o.patterns.Add(uint64(len(patterns)))
		}()
	}
	pats, vars := g.compileBGP(patterns, false)
	nv := len(vars)
	exec := solveExec{
		g:     g,
		pats:  pats,
		order: g.planOrder(pats, nv, 0),
		row:   make([]uint32, nv),
	}
	var flatIDs []uint32
	count := 0
	exec.emit = func(row []uint32) {
		flatIDs = append(flatIDs, row...)
		count++
	}
	exec.run()
	if count == 0 {
		return Solutions{Vars: vars}
	}
	flat := make([]Term, len(flatIDs))
	for i, id := range flatIDs {
		flat[i] = g.dict.Value(id)
	}
	rows := make([][]Term, count)
	for i := range rows {
		rows[i] = flat[i*nv : (i+1)*nv : (i+1)*nv]
	}
	return Solutions{Vars: vars, Rows: rows}
}

// Solve finds all bindings satisfying every pattern (a basic graph
// pattern). Patterns are joined in planner-chosen order — most selective
// first by index-estimated cardinality — so the result set is the same as
// the old left-to-right join but its order is unspecified.
func (g *Graph) Solve(patterns []Statement) []Binding {
	sols := g.SolveRows(patterns)
	if len(sols.Rows) == 0 {
		return nil
	}
	out := make([]Binding, len(sols.Rows))
	for i, row := range sols.Rows {
		b := make(Binding, len(sols.Vars))
		for j, v := range sols.Vars {
			b[v] = row[j]
		}
		out[i] = b
	}
	return out
}

// sortRows orders equal-length term rows lexicographically in place.
func sortRows(rows [][]Term) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if c := compareTerm(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}
