package rdf

import (
	"fmt"
	"testing"
)

func benchGraph(n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.MustAdd(st(fmt.Sprintf("s%d", i%100), fmt.Sprintf("p%d", i%10), fmt.Sprintf("o%d", i)))
	}
	return g
}

func BenchmarkGraphAdd(b *testing.B) {
	g := NewGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Add(st(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphMatchBySubject(b *testing.B) {
	g := benchGraph(10000)
	pattern := Statement{S: NewIRI("s42")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.Match(pattern); len(got) == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkSolveTwoPatternJoin(b *testing.B) {
	g := NewGraph()
	for i := 0; i < 500; i++ {
		g.MustAdd(st(fmt.Sprintf("a%d", i), "knows", fmt.Sprintf("a%d", i+1)))
	}
	patterns := []Statement{
		{S: NewVar("x"), P: NewIRI("knows"), O: NewVar("y")},
		{S: NewVar("y"), P: NewIRI("knows"), O: NewVar("z")},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.Solve(patterns); len(got) == 0 {
			b.Fatal("no solutions")
		}
	}
}

func BenchmarkForwardChainTransitive20(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := NewGraph()
		for j := 0; j < 19; j++ {
			g.MustAdd(st(fmt.Sprintf("c%02d", j), RDFSSubClassOf, fmt.Sprintf("c%02d", j+1)))
		}
		if _, err := ForwardChain(g, TransitiveRules(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBackwardChainGroundGoal(b *testing.B) {
	g := NewGraph()
	n := 30
	for j := 0; j < n-1; j++ {
		g.MustAdd(st(fmt.Sprintf("c%02d", j), RDFSSubClassOf, fmt.Sprintf("c%02d", j+1)))
	}
	goal := st("c00", RDFSSubClassOf, fmt.Sprintf("c%02d", n-1))
	rules := TransitiveRules()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bindings, err := BackwardChain(g, rules, goal, 2*n)
		if err != nil || len(bindings) == 0 {
			b.Fatalf("(%v, %v)", bindings, err)
		}
	}
}

func BenchmarkQueryBGP(b *testing.B) {
	g := benchGraph(5000)
	q := "SELECT ?s ?o WHERE { ?s <p3> ?o }"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := g.Query(q)
		if err != nil || len(res.Rows) == 0 {
			b.Fatalf("(%v, %v)", len(res.Rows), err)
		}
	}
}
