package rdf

import (
	"strings"
	"testing"
)

// FuzzParseQuery drives the SPARQL-subset parser and tokenizer with
// arbitrary input (go test -fuzz=FuzzParseQuery ./internal/rdf). The
// parser must never panic; on accepted input the parsed structure must
// satisfy its own invariants, and running the query against a small graph
// must stay well-behaved.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"SELECT ?a ?b WHERE { ?a <p> ?b }",
		"SELECT * WHERE { ?s <rdf:type> <Person> . ?s <name> \"Alice A.\" }",
		`SELECT ?s WHERE { ?s <name> "dot . inside" }`,
		"SELECT ?x WHERE { <a b> ?x _:blank }",
		"select ?x where { ?x ?y ?z }",
		"SELECT ?x WHERE { \"unterminated }",
		"SELECT ?x WHERE { <unterminated }",
		"SELECT ?where WHERE { ?where <p> ?where }",
		"SELECT ?x WHERE { . . . }",
		"SELECT ?x WHERE { ?x <p> \"\" }",
		"SELECT ?x WHERE { ?x <p.q> <r.s> }",
		"SELECT WHERE { }",
		"SELECT ?x WHERE { ?x <p> ?y . }",
		"SELECT ?x\nWHERE\t{ ?x <p> ?y }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	g := NewGraph()
	g.MustAdd(Statement{S: NewIRI("a"), P: NewIRI("p"), O: NewLiteral("dot . inside")})
	g.MustAdd(Statement{S: NewIRI("a"), P: NewIRI("p"), O: NewIRI("b")})
	f.Fuzz(func(t *testing.T, q string) {
		vars, patterns, err := parseQuery(q)
		if err != nil {
			if _, qerr := g.Query(q); qerr == nil {
				t.Fatalf("parseQuery rejected %q but Query accepted it", q)
			}
			return
		}
		if len(patterns) == 0 {
			t.Fatalf("parseQuery(%q) accepted a query with no patterns", q)
		}
		for _, v := range vars {
			if v == "" {
				t.Fatalf("parseQuery(%q) produced an empty variable name", q)
			}
			if strings.ContainsAny(v, " \t\n") {
				t.Fatalf("parseQuery(%q) produced variable %q with whitespace", q, v)
			}
		}
		for _, p := range patterns {
			for _, term := range []Term{p.S, p.P, p.O} {
				if term.Zero() {
					t.Fatalf("parseQuery(%q) produced a zero term in %s", q, p)
				}
			}
		}
		// A parseable query must execute without panicking; semantic
		// errors (unknown selected variable) are still allowed.
		_, _ = g.Query(q)
	})
}

// FuzzSplitTerms targets the pattern tokenizer directly: quoted literals,
// angle-bracket IRIs, and whitespace handling.
func FuzzSplitTerms(f *testing.F) {
	for _, s := range []string{
		`?s <name> "Alice A."`,
		`<a> <b c> "d e"`,
		`"unterminated`,
		`<unterminated`,
		"a\tb\nc",
		`"" <> ?`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		fields, err := splitTerms(s)
		if err != nil {
			return
		}
		for _, field := range fields {
			if field == "" {
				t.Fatalf("splitTerms(%q) produced an empty field", s)
			}
		}
	})
}
