package rdf

import (
	"fmt"
	"strings"
)

// Binding maps variable names to terms.
type Binding map[string]Term

// clone copies a binding.
func (b Binding) clone() Binding {
	out := make(Binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// substitute applies the binding to a pattern, grounding bound variables.
func substitute(p Statement, b Binding) Statement {
	return Statement{S: substTerm(p.S, b), P: substTerm(p.P, b), O: substTerm(p.O, b)}
}

func substTerm(t Term, b Binding) Term {
	if t.IsVar() {
		if v, ok := b[t.Value]; ok {
			return v
		}
	}
	return t
}

// unify extends binding b so that pattern p matches ground statement s,
// returning nil when unification fails.
func unify(p, s Statement, b Binding) Binding {
	out := b
	cloned := false
	bindOne := func(pt, st Term) bool {
		if !pt.IsVar() {
			return pt.Zero() || pt == st
		}
		if cur, ok := out[pt.Value]; ok {
			return cur == st
		}
		if !cloned {
			out = out.clone()
			cloned = true
		}
		out[pt.Value] = st
		return true
	}
	if !bindOne(p.S, s.S) || !bindOne(p.P, s.P) || !bindOne(p.O, s.O) {
		return nil
	}
	if !cloned {
		out = out.clone()
	}
	return out
}

// QueryResult is the tabular output of a SPARQL-like query.
type QueryResult struct {
	Vars []string
	Rows [][]Term
}

// Query runs a SPARQL-like query of the form
//
//	SELECT ?a ?b WHERE { ?a <pred> ?b . ?b <other> "literal" }
//
// Only basic graph patterns are supported (the subset the knowledge base
// needs). SELECT * selects every variable in order of first appearance.
func (g *Graph) Query(q string) (QueryResult, error) {
	vars, patterns, err := parseQuery(q)
	if err != nil {
		return QueryResult{}, err
	}
	patternVars := make(map[string]bool)
	var patternOrder []string
	for _, p := range patterns {
		for _, t := range []Term{p.S, p.P, p.O} {
			if t.IsVar() && !patternVars[t.Value] {
				patternVars[t.Value] = true
				patternOrder = append(patternOrder, t.Value)
			}
		}
	}
	if len(vars) == 0 { // SELECT *
		vars = patternOrder
	} else {
		for _, v := range vars {
			if !patternVars[v] {
				return QueryResult{}, fmt.Errorf("rdf: selected variable ?%s does not appear in WHERE", v)
			}
		}
	}
	sols := g.SolveRows(patterns)
	res := QueryResult{Vars: vars}
	if len(sols.Rows) == 0 {
		return res, nil
	}
	// Project the solver columns onto the SELECT list, then sort and
	// dedupe adjacent duplicates — same result set as the old
	// string-keyed dedupe, without building a key per row.
	colIdx := make([]int, len(vars))
	for i, v := range vars {
		for j, sv := range sols.Vars {
			if sv == v {
				colIdx[i] = j
				break
			}
		}
	}
	nv := len(vars)
	flat := make([]Term, 0, len(sols.Rows)*nv)
	for _, row := range sols.Rows {
		for _, ci := range colIdx {
			flat = append(flat, row[ci])
		}
	}
	rows := make([][]Term, len(sols.Rows))
	for i := range rows {
		rows[i] = flat[i*nv : (i+1)*nv : (i+1)*nv]
	}
	sortRows(rows)
	for i, row := range rows {
		if i == 0 || !rowsEqual(row, res.Rows[len(res.Rows)-1]) {
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func rowsEqual(a, b []Term) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// parseQuery parses "SELECT ?x ?y WHERE { pattern . pattern }".
func parseQuery(q string) (vars []string, patterns []Statement, err error) {
	trimmed := strings.TrimSpace(q)
	upper := strings.ToUpper(trimmed)
	if !strings.HasPrefix(upper, "SELECT") {
		return nil, nil, fmt.Errorf("rdf: query must start with SELECT")
	}
	// Locate the WHERE keyword as the token immediately before the brace
	// (a variable may legitimately be named ?where).
	braceIdx := strings.Index(trimmed, "{")
	if braceIdx < 0 {
		return nil, nil, fmt.Errorf("rdf: query missing WHERE clause")
	}
	beforeBrace := strings.TrimSpace(trimmed[:braceIdx])
	if !strings.HasSuffix(strings.ToUpper(beforeBrace), "WHERE") {
		return nil, nil, fmt.Errorf("rdf: query missing WHERE")
	}
	whereIdx := len(beforeBrace) - len("WHERE")
	head := strings.TrimSpace(trimmed[len("SELECT"):whereIdx])
	if head != "*" {
		for _, f := range strings.Fields(head) {
			if !strings.HasPrefix(f, "?") || len(f) < 2 {
				return nil, nil, fmt.Errorf("rdf: bad select item %q", f)
			}
			vars = append(vars, f[1:])
		}
		if len(vars) == 0 {
			return nil, nil, fmt.Errorf("rdf: SELECT needs variables or *")
		}
	}
	rest := strings.TrimSpace(trimmed[whereIdx+len("WHERE"):])
	if !strings.HasPrefix(rest, "{") || !strings.HasSuffix(rest, "}") {
		return nil, nil, fmt.Errorf("rdf: WHERE clause must be braced")
	}
	body := rest[1 : len(rest)-1]
	for _, part := range splitPatterns(body) {
		p, err := parsePattern(part)
		if err != nil {
			return nil, nil, err
		}
		patterns = append(patterns, p)
	}
	if len(patterns) == 0 {
		return nil, nil, fmt.Errorf("rdf: empty WHERE clause")
	}
	return vars, patterns, nil
}

// splitPatterns splits on '.' separators that are outside quotes and IRI
// brackets.
func splitPatterns(body string) []string {
	var parts []string
	var cur strings.Builder
	inQuote, inIRI := false, false
	for i := 0; i < len(body); i++ {
		ch := body[i]
		switch {
		case ch == '"' && !inIRI:
			inQuote = !inQuote
			cur.WriteByte(ch)
		case ch == '<' && !inQuote:
			inIRI = true
			cur.WriteByte(ch)
		case ch == '>' && !inQuote:
			inIRI = false
			cur.WriteByte(ch)
		case ch == '.' && !inQuote && !inIRI:
			if s := strings.TrimSpace(cur.String()); s != "" {
				parts = append(parts, s)
			}
			cur.Reset()
		default:
			cur.WriteByte(ch)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		parts = append(parts, s)
	}
	return parts
}

// parsePattern parses "term term term".
func parsePattern(s string) (Statement, error) {
	fields, err := splitTerms(s)
	if err != nil {
		return Statement{}, err
	}
	if len(fields) != 3 {
		return Statement{}, fmt.Errorf("rdf: pattern %q needs 3 terms, has %d", s, len(fields))
	}
	var out [3]Term
	for i, f := range fields {
		t, err := ParseTerm(f)
		if err != nil {
			return Statement{}, err
		}
		out[i] = t
	}
	return Statement{S: out[0], P: out[1], O: out[2]}, nil
}

// splitTerms tokenizes a pattern respecting quoted literals and IRIs with
// spaces.
func splitTerms(s string) ([]string, error) {
	var out []string
	i := 0
	n := len(s)
	for i < n {
		for i < n && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n') {
			i++
		}
		if i >= n {
			break
		}
		switch s[i] {
		case '"':
			j := i + 1
			for j < n && s[j] != '"' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("rdf: unterminated literal in %q", s)
			}
			out = append(out, s[i:j+1])
			i = j + 1
		case '<':
			j := i + 1
			for j < n && s[j] != '>' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("rdf: unterminated IRI in %q", s)
			}
			out = append(out, s[i:j+1])
			i = j + 1
		default:
			j := i
			for j < n && s[j] != ' ' && s[j] != '\t' && s[j] != '\n' {
				j++
			}
			out = append(out, s[i:j])
			i = j
		}
	}
	return out, nil
}
