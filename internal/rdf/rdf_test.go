package rdf

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func st(s, p, o string) Statement {
	return Statement{S: NewIRI(s), P: NewIRI(p), O: NewIRI(o)}
}

func TestAddHasRemove(t *testing.T) {
	g := NewGraph()
	s := st("java:HashMap", "implements", "java:Map")
	added, err := g.Add(s)
	if err != nil || !added {
		t.Fatalf("Add = (%v, %v)", added, err)
	}
	if !g.Has(s) {
		t.Error("Has = false after Add")
	}
	added, err = g.Add(s)
	if err != nil || added {
		t.Errorf("duplicate Add = (%v, %v), want (false, nil)", added, err)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
	if !g.Remove(s) {
		t.Error("Remove = false")
	}
	if g.Has(s) || g.Len() != 0 {
		t.Error("statement survived Remove")
	}
	if g.Remove(s) {
		t.Error("second Remove = true")
	}
}

func TestAddRejectsNonGround(t *testing.T) {
	g := NewGraph()
	if _, err := g.Add(Statement{S: NewVar("x"), P: NewIRI("p"), O: NewIRI("o")}); err == nil {
		t.Error("variable statement stored")
	}
	if _, err := g.Add(Statement{}); err == nil {
		t.Error("zero statement stored")
	}
}

func TestLiteralAndIRIDistinct(t *testing.T) {
	g := NewGraph()
	g.MustAdd(Statement{S: NewIRI("s"), P: NewIRI("p"), O: NewIRI("v")})
	g.MustAdd(Statement{S: NewIRI("s"), P: NewIRI("p"), O: NewLiteral("v")})
	if g.Len() != 2 {
		t.Errorf("Len = %d, want 2 (IRI and literal objects distinct)", g.Len())
	}
}

func TestMatchPatterns(t *testing.T) {
	g := NewGraph()
	g.MustAdd(st("alice", "knows", "bob"))
	g.MustAdd(st("alice", "knows", "carol"))
	g.MustAdd(st("bob", "knows", "carol"))
	g.MustAdd(st("alice", "likes", "go"))

	if got := g.Match(Statement{S: NewIRI("alice")}); len(got) != 3 {
		t.Errorf("Match(alice,*,*) = %d, want 3", len(got))
	}
	if got := g.Match(Statement{P: NewIRI("knows")}); len(got) != 3 {
		t.Errorf("Match(*,knows,*) = %d, want 3", len(got))
	}
	if got := g.Match(Statement{O: NewIRI("carol")}); len(got) != 2 {
		t.Errorf("Match(*,*,carol) = %d, want 2", len(got))
	}
	if got := g.Match(Statement{S: NewIRI("alice"), P: NewIRI("knows")}); len(got) != 2 {
		t.Errorf("Match(alice,knows,*) = %d, want 2", len(got))
	}
	if got := g.Match(Statement{}); len(got) != 4 {
		t.Errorf("Match(*,*,*) = %d, want 4", len(got))
	}
	if got := g.Match(st("nobody", "knows", "anything")); len(got) != 0 {
		t.Errorf("no-match returned %d", len(got))
	}
	// Variables act as wildcards in Match.
	if got := g.Match(Statement{S: NewVar("x"), P: NewIRI("likes"), O: NewVar("y")}); len(got) != 1 {
		t.Errorf("var pattern = %d, want 1", len(got))
	}
}

func TestSolveJoin(t *testing.T) {
	g := NewGraph()
	g.MustAdd(st("alice", "knows", "bob"))
	g.MustAdd(st("bob", "knows", "carol"))
	g.MustAdd(st("carol", "knows", "dave"))
	// Friends of friends of alice.
	bindings := g.Solve([]Statement{
		{S: NewIRI("alice"), P: NewIRI("knows"), O: NewVar("x")},
		{S: NewVar("x"), P: NewIRI("knows"), O: NewVar("y")},
	})
	if len(bindings) != 1 {
		t.Fatalf("bindings = %v", bindings)
	}
	if bindings[0]["x"].Value != "bob" || bindings[0]["y"].Value != "carol" {
		t.Errorf("binding = %v", bindings[0])
	}
}

func TestSolveSharedVariableConsistency(t *testing.T) {
	g := NewGraph()
	g.MustAdd(st("a", "p", "b"))
	g.MustAdd(st("b", "q", "c"))
	g.MustAdd(st("x", "p", "y"))
	g.MustAdd(st("z", "q", "w"))
	// ?m must be the same in both patterns: only a->b->c chains.
	bindings := g.Solve([]Statement{
		{S: NewVar("s"), P: NewIRI("p"), O: NewVar("m")},
		{S: NewVar("m"), P: NewIRI("q"), O: NewVar("o")},
	})
	if len(bindings) != 1 {
		t.Fatalf("bindings = %v, want 1", bindings)
	}
}

func TestQuerySelect(t *testing.T) {
	g := NewGraph()
	g.MustAdd(st("alice", "rdf:type", "Person"))
	g.MustAdd(st("bob", "rdf:type", "Person"))
	g.MustAdd(st("acme", "rdf:type", "Company"))
	res, err := g.Query("SELECT ?who WHERE { ?who <rdf:type> <Person> }")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vars) != 1 || res.Vars[0] != "who" {
		t.Errorf("Vars = %v", res.Vars)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("Rows = %v", res.Rows)
	}
	if res.Rows[0][0].Value != "alice" || res.Rows[1][0].Value != "bob" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestQueryMultiPattern(t *testing.T) {
	g := NewGraph()
	g.MustAdd(st("alice", "worksFor", "acme"))
	g.MustAdd(st("acme", "locatedIn", "us"))
	g.MustAdd(st("bob", "worksFor", "globex"))
	g.MustAdd(st("globex", "locatedIn", "de"))
	res, err := g.Query("SELECT ?p ?c WHERE { ?p <worksFor> ?e . ?e <locatedIn> ?c }")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestQueryLiterals(t *testing.T) {
	g := NewGraph()
	g.MustAdd(Statement{S: NewIRI("alice"), P: NewIRI("name"), O: NewLiteral("Alice A.")})
	res, err := g.Query(`SELECT ?n WHERE { <alice> <name> ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Value != "Alice A." || res.Rows[0][0].Kind != Literal {
		t.Errorf("rows = %v", res.Rows)
	}
	// Literal with a dot inside must not break pattern splitting.
	res, err = g.Query(`SELECT ?s WHERE { ?s <name> "Alice A." }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("literal match rows = %v", res.Rows)
	}
}

func TestQuerySelectStar(t *testing.T) {
	g := NewGraph()
	g.MustAdd(st("a", "p", "b"))
	res, err := g.Query("SELECT * WHERE { ?s <p> ?o }")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vars) != 2 || res.Vars[0] != "s" || res.Vars[1] != "o" {
		t.Errorf("Vars = %v", res.Vars)
	}
}

func TestQueryErrors(t *testing.T) {
	g := NewGraph()
	bad := []string{
		"FIND ?x WHERE { ?x <p> ?y }",
		"SELECT ?x { ?x <p> ?y }",
		"SELECT ?x WHERE ?x <p> ?y",
		"SELECT x WHERE { ?x <p> ?y }",
		"SELECT ?x WHERE { }",
		"SELECT ?x WHERE { ?x <p> }",
		"SELECT ?z WHERE { ?x <p> ?y }",
		"SELECT WHERE { ?x <p> ?y }",
	}
	for _, q := range bad {
		if _, err := g.Query(q); err == nil {
			t.Errorf("Query(%q) succeeded, want error", q)
		}
	}
}

func TestTransitiveReasoner(t *testing.T) {
	g := NewGraph()
	// Class lattice: dachshund < dog < mammal < animal.
	g.MustAdd(st("dachshund", RDFSSubClassOf, "dog"))
	g.MustAdd(st("dog", RDFSSubClassOf, "mammal"))
	g.MustAdd(st("mammal", RDFSSubClassOf, "animal"))
	added, err := ForwardChain(g, TransitiveRules(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// New: dachshund<mammal, dachshund<animal, dog<animal.
	if added != 3 {
		t.Errorf("derived %d facts, want 3", added)
	}
	if !g.Has(st("dachshund", RDFSSubClassOf, "animal")) {
		t.Error("transitive closure incomplete")
	}
}

func TestRDFSRulesDeriveTypes(t *testing.T) {
	g := NewGraph()
	g.MustAdd(st("employs", RDFSDomain, "Company"))
	g.MustAdd(st("employs", RDFSRange, "Person"))
	g.MustAdd(st("acme", "employs", "alice"))
	g.MustAdd(st("Person", RDFSSubClassOf, "Agent"))
	if _, err := ForwardChain(g, RDFSRules(), 0); err != nil {
		t.Fatal(err)
	}
	for _, want := range []Statement{
		st("acme", RDFType, "Company"), // rdfs2
		st("alice", RDFType, "Person"), // rdfs3
		st("alice", RDFType, "Agent"),  // rdfs9 via rdfs3
	} {
		if !g.Has(want) {
			t.Errorf("missing derived fact %s", want)
		}
	}
}

func TestRDFS7PropertyInheritance(t *testing.T) {
	g := NewGraph()
	g.MustAdd(st("hasCEO", RDFSSubPropertyOf, "hasEmployee"))
	g.MustAdd(st("acme", "hasCEO", "alice"))
	if _, err := ForwardChain(g, RDFSRules(), 0); err != nil {
		t.Fatal(err)
	}
	if !g.Has(st("acme", "hasEmployee", "alice")) {
		t.Error("rdfs7 inheritance missing")
	}
}

func TestUserDefinedRuleForward(t *testing.T) {
	g := NewGraph()
	g.MustAdd(st("alice", "parentOf", "bob"))
	g.MustAdd(st("bob", "parentOf", "carol"))
	grandparent := Rule{
		Name: "grandparent",
		Premises: []Statement{
			{S: NewVar("x"), P: NewIRI("parentOf"), O: NewVar("y")},
			{S: NewVar("y"), P: NewIRI("parentOf"), O: NewVar("z")},
		},
		Conclusions: []Statement{
			{S: NewVar("x"), P: NewIRI("grandparentOf"), O: NewVar("z")},
		},
	}
	added, err := ForwardChain(g, []Rule{grandparent}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || !g.Has(st("alice", "grandparentOf", "carol")) {
		t.Errorf("grandparent rule derived %d", added)
	}
}

func TestForwardChainIdempotent(t *testing.T) {
	g := NewGraph()
	g.MustAdd(st("a", RDFSSubClassOf, "b"))
	g.MustAdd(st("b", RDFSSubClassOf, "c"))
	if _, err := ForwardChain(g, TransitiveRules(), 0); err != nil {
		t.Fatal(err)
	}
	added, err := ForwardChain(g, TransitiveRules(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Errorf("second run derived %d new facts, want 0", added)
	}
}

func TestRuleValidation(t *testing.T) {
	bad := Rule{
		Name:        "bad",
		Premises:    []Statement{{S: NewVar("x"), P: NewIRI("p"), O: NewVar("y")}},
		Conclusions: []Statement{{S: NewVar("x"), P: NewIRI("q"), O: NewVar("z")}}, // z unbound
	}
	if err := bad.Validate(); err == nil {
		t.Error("unbound conclusion variable accepted")
	}
	if _, err := ForwardChain(NewGraph(), []Rule{bad}, 0); err == nil {
		t.Error("ForwardChain accepted invalid rule")
	}
}

func TestBackwardChainFacts(t *testing.T) {
	g := NewGraph()
	g.MustAdd(st("alice", "knows", "bob"))
	g.MustAdd(st("alice", "knows", "carol"))
	bindings, err := BackwardChain(g, nil, Statement{S: NewIRI("alice"), P: NewIRI("knows"), O: NewVar("who")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 2 {
		t.Fatalf("bindings = %v", bindings)
	}
}

func TestBackwardChainViaRule(t *testing.T) {
	g := NewGraph()
	g.MustAdd(st("alice", "parentOf", "bob"))
	g.MustAdd(st("bob", "parentOf", "carol"))
	grandparent := Rule{
		Name: "grandparent",
		Premises: []Statement{
			{S: NewVar("x"), P: NewIRI("parentOf"), O: NewVar("y")},
			{S: NewVar("y"), P: NewIRI("parentOf"), O: NewVar("z")},
		},
		Conclusions: []Statement{
			{S: NewVar("x"), P: NewIRI("grandparentOf"), O: NewVar("z")},
		},
	}
	// The fact is NOT materialized; backward chaining must derive it.
	bindings, err := BackwardChain(g, []Rule{grandparent},
		Statement{S: NewIRI("alice"), P: NewIRI("grandparentOf"), O: NewVar("g")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 1 || bindings[0]["g"].Value != "carol" {
		t.Errorf("bindings = %v", bindings)
	}
	// Ground goal that holds.
	bindings, err = BackwardChain(g, []Rule{grandparent}, st("alice", "grandparentOf", "carol"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 1 {
		t.Errorf("ground goal bindings = %v", bindings)
	}
	// Ground goal that does not hold.
	bindings, err = BackwardChain(g, []Rule{grandparent}, st("bob", "grandparentOf", "alice"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 0 {
		t.Errorf("false goal bindings = %v", bindings)
	}
}

func TestBackwardChainRecursiveRuleTerminates(t *testing.T) {
	g := NewGraph()
	g.MustAdd(st("a", "edge", "b"))
	g.MustAdd(st("b", "edge", "c"))
	g.MustAdd(st("c", "edge", "a")) // cycle
	reach := []Rule{
		{
			Name:        "reach-base",
			Premises:    []Statement{{S: NewVar("x"), P: NewIRI("edge"), O: NewVar("y")}},
			Conclusions: []Statement{{S: NewVar("x"), P: NewIRI("reaches"), O: NewVar("y")}},
		},
		{
			Name: "reach-step",
			Premises: []Statement{
				{S: NewVar("x"), P: NewIRI("edge"), O: NewVar("m")},
				{S: NewVar("m"), P: NewIRI("reaches"), O: NewVar("y")},
			},
			Conclusions: []Statement{{S: NewVar("x"), P: NewIRI("reaches"), O: NewVar("y")}},
		},
	}
	bindings, err := BackwardChain(g, reach, st("a", "reaches", "c"), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) == 0 {
		t.Error("a should reach c")
	}
}

func TestParseTerm(t *testing.T) {
	tests := []struct {
		in   string
		want Term
	}{
		{"<http://x/y>", NewIRI("http://x/y")},
		{`"hello world"`, NewLiteral("hello world")},
		{"_:b1", NewBlank("b1")},
		{"?x", NewVar("x")},
		{"bare", NewIRI("bare")},
	}
	for _, tt := range tests {
		got, err := ParseTerm(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParseTerm(%q) = (%v, %v), want %v", tt.in, got, err, tt.want)
		}
	}
	if _, err := ParseTerm("  "); err == nil {
		t.Error("empty term accepted")
	}
}

func TestStatementString(t *testing.T) {
	s := Statement{S: NewIRI("a"), P: NewIRI("b"), O: NewLiteral("c")}
	if got := s.String(); !strings.Contains(got, "<a>") || !strings.Contains(got, `"c"`) {
		t.Errorf("String = %q", got)
	}
}

func TestGraphConcurrent(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.MustAdd(st(fmt.Sprintf("s%d", w), fmt.Sprintf("p%d", i%10), fmt.Sprintf("o%d", i)))
				g.Match(Statement{S: NewIRI(fmt.Sprintf("s%d", w))})
			}
		}(w)
	}
	wg.Wait()
	if g.Len() != 8*200 {
		t.Errorf("Len = %d, want 1600", g.Len())
	}
}

func TestForwardChainLargeLattice(t *testing.T) {
	// Chain of 50 classes: closure should be n*(n-1)/2 total subclass
	// facts.
	g := NewGraph()
	n := 50
	for i := 0; i < n-1; i++ {
		g.MustAdd(st(fmt.Sprintf("c%02d", i), RDFSSubClassOf, fmt.Sprintf("c%02d", i+1)))
	}
	if _, err := ForwardChain(g, TransitiveRules(), 0); err != nil {
		t.Fatal(err)
	}
	want := n * (n - 1) / 2
	if g.Len() != want {
		t.Errorf("closure size = %d, want %d", g.Len(), want)
	}
}
