// Package rdfref is the frozen pre-interning reference implementation of
// the RDF substrate: a string-keyed triple store with per-position key-set
// indexes, a left-to-right backtracking Solve, and a naive
// recompute-the-world forward chainer. It exists for two jobs and is
// deliberately not optimized:
//
//   - Equivalence oracle: it is small enough to be trivially correct, so
//     the ID-based engine in package rdf is tested against it over
//     randomized workloads (internal/rdf/oracle_test.go).
//   - Performance baseline: benchmarks and the TestRDFInferenceShape
//     guard measure the interned store's join planner and semi-naive
//     evaluation against this seed-state engine, the same way the cache
//     and middleware guards keep a hand-inlined replica of their seed
//     paths.
//
// The matching/solving semantics mirror package rdf exactly: zero terms
// and variables are wildcards in Match, Solve unifies shared variables
// across patterns, and ForwardChain applies every rule against the full
// graph each round until no new statement appears.
package rdfref

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rdf"
)

func termKey(t rdf.Term) string {
	return string([]byte{byte('0' + t.Kind)}) + "\x00" + t.Value
}

func stmtKey(s rdf.Statement) string {
	return termKey(s.S) + "\x01" + termKey(s.P) + "\x01" + termKey(s.O)
}

// Graph is the pre-PR string-keyed indexed triple store, safe for
// concurrent use (the mutex is part of the measured seed path).
type Graph struct {
	mu    sync.RWMutex
	stmts map[string]rdf.Statement
	byS   map[string]map[string]struct{} // subject key -> statement keys
	byP   map[string]map[string]struct{}
	byO   map[string]map[string]struct{}
}

// New returns an empty reference graph.
func New() *Graph {
	return &Graph{
		stmts: make(map[string]rdf.Statement),
		byS:   make(map[string]map[string]struct{}),
		byP:   make(map[string]map[string]struct{}),
		byO:   make(map[string]map[string]struct{}),
	}
}

// Add inserts a ground statement, reporting whether it was new.
func (g *Graph) Add(s rdf.Statement) (bool, error) {
	if !s.Ground() {
		return false, fmt.Errorf("rdfref: cannot store non-ground statement %s", s)
	}
	k := stmtKey(s)
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.stmts[k]; dup {
		return false, nil
	}
	g.stmts[k] = s
	addIndex(g.byS, termKey(s.S), k)
	addIndex(g.byP, termKey(s.P), k)
	addIndex(g.byO, termKey(s.O), k)
	return true, nil
}

// MustAdd is Add that panics on error.
func (g *Graph) MustAdd(s rdf.Statement) {
	if _, err := g.Add(s); err != nil {
		panic(err)
	}
}

// Remove deletes a statement, reporting whether it was present.
func (g *Graph) Remove(s rdf.Statement) bool {
	k := stmtKey(s)
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.stmts[k]; !ok {
		return false
	}
	delete(g.stmts, k)
	delIndex(g.byS, termKey(s.S), k)
	delIndex(g.byP, termKey(s.P), k)
	delIndex(g.byO, termKey(s.O), k)
	return true
}

// Has reports whether the ground statement is stored.
func (g *Graph) Has(s rdf.Statement) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.stmts[stmtKey(s)]
	return ok
}

// Len returns the number of stored statements.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.stmts)
}

// All returns every statement, sorted for determinism.
func (g *Graph) All() []rdf.Statement {
	g.mu.RLock()
	out := make([]rdf.Statement, 0, len(g.stmts))
	for _, s := range g.stmts {
		out = append(out, s)
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return stmtKey(out[i]) < stmtKey(out[j]) })
	return out
}

// Match returns all statements matching the pattern, where variable or
// zero terms match anything.
func (g *Graph) Match(pattern rdf.Statement) []rdf.Statement {
	g.mu.RLock()
	defer g.mu.RUnlock()
	candidates := g.candidateKeys(pattern)
	var out []rdf.Statement
	for k := range candidates {
		s := g.stmts[k]
		if matches(pattern, s) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return stmtKey(out[i]) < stmtKey(out[j]) })
	return out
}

// candidateKeys picks the smallest index set covering the pattern. The
// all-wildcard branch materializes a copy of the whole statement map —
// preserved as-is because this is the seed behavior the interned store's
// iterator was built to replace.
func (g *Graph) candidateKeys(pattern rdf.Statement) map[string]struct{} {
	var opts []map[string]struct{}
	if bound(pattern.S) {
		opts = append(opts, g.byS[termKey(pattern.S)])
	}
	if bound(pattern.P) {
		opts = append(opts, g.byP[termKey(pattern.P)])
	}
	if bound(pattern.O) {
		opts = append(opts, g.byO[termKey(pattern.O)])
	}
	if len(opts) == 0 {
		all := make(map[string]struct{}, len(g.stmts))
		for k := range g.stmts {
			all[k] = struct{}{}
		}
		return all
	}
	best := opts[0]
	for _, o := range opts[1:] {
		if len(o) < len(best) {
			best = o
		}
	}
	if best == nil {
		return map[string]struct{}{}
	}
	return best
}

func bound(t rdf.Term) bool { return !t.IsVar() && !t.Zero() }

func matches(pattern, s rdf.Statement) bool {
	return termMatches(pattern.S, s.S) && termMatches(pattern.P, s.P) && termMatches(pattern.O, s.O)
}

func termMatches(p, t rdf.Term) bool {
	if !bound(p) {
		return true
	}
	return p == t
}

func addIndex(idx map[string]map[string]struct{}, key, stmt string) {
	set := idx[key]
	if set == nil {
		set = make(map[string]struct{})
		idx[key] = set
	}
	set[stmt] = struct{}{}
}

func delIndex(idx map[string]map[string]struct{}, key, stmt string) {
	if set := idx[key]; set != nil {
		delete(set, stmt)
		if len(set) == 0 {
			delete(idx, key)
		}
	}
}

func substitute(p rdf.Statement, b rdf.Binding) rdf.Statement {
	return rdf.Statement{S: substTerm(p.S, b), P: substTerm(p.P, b), O: substTerm(p.O, b)}
}

func substTerm(t rdf.Term, b rdf.Binding) rdf.Term {
	if t.IsVar() {
		if v, ok := b[t.Value]; ok {
			return v
		}
	}
	return t
}

func clone(b rdf.Binding) rdf.Binding {
	out := make(rdf.Binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

func unify(p, s rdf.Statement, b rdf.Binding) rdf.Binding {
	out := b
	cloned := false
	bindOne := func(pt, st rdf.Term) bool {
		if !pt.IsVar() {
			return pt.Zero() || pt == st
		}
		if cur, ok := out[pt.Value]; ok {
			return cur == st
		}
		if !cloned {
			out = clone(out)
			cloned = true
		}
		out[pt.Value] = st
		return true
	}
	if !bindOne(p.S, s.S) || !bindOne(p.P, s.P) || !bindOne(p.O, s.O) {
		return nil
	}
	if !cloned {
		out = clone(out)
	}
	return out
}

// Solve finds all bindings satisfying every pattern, joining patterns
// strictly left to right with backtracking (no reordering): the author's
// pattern order is the join order, which is what makes this the baseline
// for the planner's join-order sweep.
func (g *Graph) Solve(patterns []rdf.Statement) []rdf.Binding {
	results := []rdf.Binding{{}}
	for _, p := range patterns {
		var next []rdf.Binding
		for _, b := range results {
			ground := substitute(p, b)
			for _, s := range g.Match(ground) {
				if nb := unify(ground, s, b); nb != nil {
					next = append(next, nb)
				}
			}
		}
		results = next
		if len(results) == 0 {
			return nil
		}
	}
	return results
}

// ForwardChain applies the rules naively to fixpoint: every round re-joins
// every rule against the full graph and re-derives the facts of all
// previous rounds, which is exactly the O(rounds x full-graph join) cost
// profile the semi-naive evaluator in package rdf eliminates. It returns
// the number of new statements.
func ForwardChain(g *Graph, rules []rdf.Rule, maxIterations int) (int, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return 0, err
		}
	}
	if maxIterations <= 0 {
		maxIterations = 1000
	}
	totalNew := 0
	for iter := 0; iter < maxIterations; iter++ {
		newThisRound := 0
		for _, rule := range rules {
			for _, b := range g.Solve(rule.Premises) {
				for _, c := range rule.Conclusions {
					ground := substitute(c, b)
					if !ground.Ground() {
						return totalNew, fmt.Errorf("rdfref: rule %s produced non-ground %s", rule.Name, ground)
					}
					added, err := g.Add(ground)
					if err != nil {
						return totalNew, err
					}
					if added {
						newThisRound++
					}
				}
			}
		}
		totalNew += newThisRound
		if newThisRound == 0 {
			return totalNew, nil
		}
	}
	return totalNew, fmt.Errorf("rdfref: forward chaining did not converge in %d iterations", maxIterations)
}
