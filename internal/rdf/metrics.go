package rdf

import (
	"repro/internal/metrics"
)

// rdfObs bundles a graph's instruments. All fields are nil-safe, so an
// uninstrumented graph (obs == nil) pays one nil check per Solve or
// ForwardChain call and nothing per triple.
type rdfObs struct {
	solve    *metrics.Histogram
	chain    *metrics.Histogram
	patterns *metrics.Counter
	rounds   *metrics.Counter
	derived  *metrics.Counter
}

// Instrument registers the graph's instrument families in set and turns
// on query- and inference-path instrumentation: Solve and ForwardChain
// latency histograms, plan pattern-count and chain rounds/derived
// counters, and a live dictionary-size gauge. Calling it with a nil set
// detaches the instruments again. Safe for concurrent use with readers
// and writers; the instruments themselves are lock-free.
func (g *Graph) Instrument(set *metrics.Set) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if set == nil {
		g.obs = nil
		g.dict.WatchLen(nil)
		return
	}
	g.obs = &rdfObs{
		solve: set.Histogram("richsdk_rdf_solve_seconds",
			"Latency of basic-graph-pattern solves (planner + join execution)."),
		chain: set.Histogram("richsdk_rdf_chain_seconds",
			"Latency of semi-naive forward-chaining runs."),
		patterns: set.Counter("richsdk_rdf_solve_patterns_total",
			"Triple patterns planned across all solves."),
		rounds: set.Counter("richsdk_rdf_chain_rounds_total",
			"Forward-chaining rounds evaluated."),
		derived: set.Counter("richsdk_rdf_chain_derived_total",
			"Facts derived by forward chaining."),
	}
	g.dict.WatchLen(set.Gauge("richsdk_intern_dict_size",
		"Distinct terms in an interned symbol table.",
		metrics.Label{Name: "dict", Value: "rdf"}))
}
