package rdf_test

import (
	"fmt"

	"repro/internal/rdf"
)

// The paper's statement example: subject, predicate, object.
func ExampleGraph_Query() {
	g := rdf.NewGraph()
	g.MustAdd(rdf.Statement{
		S: rdf.NewIRI("java:HashMap"),
		P: rdf.NewIRI("implements"),
		O: rdf.NewIRI("java:Map"),
	})
	res, err := g.Query("SELECT ?what WHERE { <java:HashMap> <implements> ?what }")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Rows[0][0].Value)
	// Output: java:Map
}

// Forward chaining materializes the transitive closure.
func ExampleForwardChain() {
	g := rdf.NewGraph()
	g.MustAdd(rdf.Statement{S: rdf.NewIRI("dachshund"), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: rdf.NewIRI("dog")})
	g.MustAdd(rdf.Statement{S: rdf.NewIRI("dog"), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: rdf.NewIRI("animal")})
	derived, err := rdf.ForwardChain(g, rdf.TransitiveRules(), 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(derived, g.Has(rdf.Statement{
		S: rdf.NewIRI("dachshund"), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: rdf.NewIRI("animal"),
	}))
	// Output: 1 true
}

// Backward chaining proves a goal without materializing the closure.
func ExampleBackwardChain() {
	g := rdf.NewGraph()
	g.MustAdd(rdf.Statement{S: rdf.NewIRI("alice"), P: rdf.NewIRI("parentOf"), O: rdf.NewIRI("bob")})
	g.MustAdd(rdf.Statement{S: rdf.NewIRI("bob"), P: rdf.NewIRI("parentOf"), O: rdf.NewIRI("carol")})
	grandparent := rdf.Rule{
		Name: "grandparent",
		Premises: []rdf.Statement{
			{S: rdf.NewVar("x"), P: rdf.NewIRI("parentOf"), O: rdf.NewVar("y")},
			{S: rdf.NewVar("y"), P: rdf.NewIRI("parentOf"), O: rdf.NewVar("z")},
		},
		Conclusions: []rdf.Statement{
			{S: rdf.NewVar("x"), P: rdf.NewIRI("grandparentOf"), O: rdf.NewVar("z")},
		},
	}
	goal := rdf.Statement{S: rdf.NewIRI("alice"), P: rdf.NewIRI("grandparentOf"), O: rdf.NewVar("who")}
	bindings, err := rdf.BackwardChain(g, []rdf.Rule{grandparent}, goal, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(bindings[0]["who"].Value)
	// Output: carol
}
