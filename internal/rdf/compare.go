package rdf

// wildID marks an unbound position in internal ID patterns and an unbound
// variable slot in solver rows. Dictionary IDs are assigned densely from
// zero (intern.Dict's contract), so they can never collide with it.
const wildID = ^uint32(0)

// compareTerm orders terms by (Kind, Value) without building key strings;
// it backs the sorted deterministic contract of Match/All/Query.
func compareTerm(a, b Term) int {
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	if a.Value != b.Value {
		if a.Value < b.Value {
			return -1
		}
		return 1
	}
	return 0
}

// compareStatement orders statements by (S, P, O) term order.
func compareStatement(a, b Statement) int {
	if c := compareTerm(a.S, b.S); c != 0 {
		return c
	}
	if c := compareTerm(a.P, b.P); c != 0 {
		return c
	}
	return compareTerm(a.O, b.O)
}
