package rdf_test

// Equivalence oracle: the interned ID-based engine is exercised against
// the frozen string-keyed reference implementation (internal/rdf/rdfref)
// over randomized statement sets, proving the rewrite semantics-
// preserving for Add/Remove/Match/Solve/Query/ForwardChain/BackwardChain.
// Term values stay in [a-z0-9:] so the reference's key-string ordering
// coincides with the new engine's (Kind, Value) ordering and sorted
// outputs can be compared exactly.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/rdf"
	"repro/internal/rdf/rdfref"
)

// oracleVocab yields a small colliding vocabulary: joins and duplicate
// adds happen constantly.
func oracleTerm(rng *rand.Rand, pool string, n int) rdf.Term {
	v := fmt.Sprintf("%s%d", pool, rng.Intn(n))
	switch pool {
	case "lit":
		return rdf.NewLiteral(v)
	case "bl":
		return rdf.NewBlank(v)
	default:
		return rdf.NewIRI(v)
	}
}

func oracleStatement(rng *rand.Rand) rdf.Statement {
	s := oracleTerm(rng, "s", 12)
	if rng.Intn(8) == 0 {
		s = oracleTerm(rng, "bl", 4)
	}
	o := oracleTerm(rng, "o", 12)
	switch rng.Intn(6) {
	case 0:
		o = oracleTerm(rng, "lit", 6)
	case 1:
		o = oracleTerm(rng, "s", 12) // subject/object overlap for joins
	}
	return rdf.Statement{S: s, P: oracleTerm(rng, "p", 5), O: o}
}

// oraclePattern masks random positions of a statement with zero terms or
// variables.
func oraclePattern(rng *rand.Rand, vars bool) rdf.Statement {
	p := oracleStatement(rng)
	mask := rng.Intn(8)
	wild := func(name string) rdf.Term {
		if vars && rng.Intn(2) == 0 {
			return rdf.NewVar(name)
		}
		return rdf.Term{}
	}
	if mask&1 != 0 {
		p.S = wild("vs")
	}
	if mask&2 != 0 {
		p.P = wild("vp")
	}
	if mask&4 != 0 {
		p.O = wild("vo")
	}
	return p
}

func stmtsEqual(t *testing.T, op string, got, want []rdf.Statement) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d statements, reference has %d", op, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %s, reference %s", op, i, got[i], want[i])
		}
	}
}

// bindingSet canonicalizes a binding list for set comparison (Solve row
// order is unspecified in the new engine).
func bindingSet(bs []rdf.Binding) []string {
	out := make([]string, 0, len(bs))
	for _, b := range bs {
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s := ""
		for _, k := range keys {
			s += k + "=" + b[k].String() + ";"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func bindingsEqual(t *testing.T, op string, got, want []rdf.Binding) {
	t.Helper()
	gs, ws := bindingSet(got), bindingSet(want)
	if len(gs) != len(ws) {
		t.Fatalf("%s: %d bindings, reference has %d\n got: %v\n ref: %v", op, len(gs), len(ws), gs, ws)
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("%s: binding %d = %q, reference %q", op, i, gs[i], ws[i])
		}
	}
}

func oracleBGP(rng *rand.Rand) []rdf.Statement {
	// 2-3 patterns chained through shared variables, mimicking the rule
	// premise shapes the reasoners use.
	v := rdf.NewVar
	n := 2 + rng.Intn(2)
	pats := make([]rdf.Statement, 0, n)
	prev := v("x0")
	for i := 0; i < n; i++ {
		next := v(fmt.Sprintf("x%d", i+1))
		p := rdf.Statement{S: prev, P: oracleTerm(rng, "p", 5), O: next}
		if rng.Intn(4) == 0 {
			p.O = oracleTerm(rng, "o", 12)
		}
		if rng.Intn(6) == 0 {
			p.P = v("vp")
		}
		pats = append(pats, p)
		prev = next
	}
	return pats
}

func TestOracleStoreAndSolve(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := rdf.NewGraph()
			ref := rdfref.New()
			for step := 0; step < 400; step++ {
				s := oracleStatement(rng)
				if rng.Intn(4) == 0 {
					if got, want := g.Remove(s), ref.Remove(s); got != want {
						t.Fatalf("Remove(%s) = %v, reference %v", s, got, want)
					}
				} else {
					ga, gerr := g.Add(s)
					ra, rerr := ref.Add(s)
					if ga != ra || (gerr == nil) != (rerr == nil) {
						t.Fatalf("Add(%s) = (%v, %v), reference (%v, %v)", s, ga, gerr, ra, rerr)
					}
				}
				if got, want := g.Has(s), ref.Has(s); got != want {
					t.Fatalf("Has(%s) = %v, reference %v", s, got, want)
				}
				if g.Len() != ref.Len() {
					t.Fatalf("Len = %d, reference %d", g.Len(), ref.Len())
				}
				if step%20 == 0 {
					stmtsEqual(t, "All", g.All(), ref.All())
				}
				pat := oraclePattern(rng, true)
				stmtsEqual(t, fmt.Sprintf("Match(%s)", pat), g.Match(pat), ref.Match(pat))
			}
			for trial := 0; trial < 60; trial++ {
				bgp := oracleBGP(rng)
				bindingsEqual(t, fmt.Sprintf("Solve(%v)", bgp), g.Solve(bgp), ref.Solve(bgp))
			}
			// Solve edge cases: empty BGP yields one empty binding in both
			// engines, an impossible constant pattern yields none.
			bindingsEqual(t, "Solve(empty)", g.Solve(nil), ref.Solve(nil))
			missing := []rdf.Statement{{S: rdf.NewIRI("never-stored"), P: rdf.NewVar("p"), O: rdf.NewVar("o")}}
			bindingsEqual(t, "Solve(missing)", g.Solve(missing), ref.Solve(missing))
		})
	}
}

func TestOracleQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := rdf.NewGraph()
	ref := rdfref.New()
	for i := 0; i < 300; i++ {
		s := oracleStatement(rng)
		g.MustAdd(s)
		ref.MustAdd(s)
	}
	queries := []struct {
		q    string
		vars []string
		bgp  []rdf.Statement
	}{
		{
			q:    "SELECT ?a ?b WHERE { ?a <p0> ?b }",
			vars: []string{"a", "b"},
			bgp:  []rdf.Statement{{S: rdf.NewVar("a"), P: rdf.NewIRI("p0"), O: rdf.NewVar("b")}},
		},
		{
			q:    "SELECT ?a ?c WHERE { ?a <p1> ?b . ?b <p2> ?c }",
			vars: []string{"a", "c"},
			bgp: []rdf.Statement{
				{S: rdf.NewVar("a"), P: rdf.NewIRI("p1"), O: rdf.NewVar("b")},
				{S: rdf.NewVar("b"), P: rdf.NewIRI("p2"), O: rdf.NewVar("c")},
			},
		},
		{
			q:    "SELECT ?b WHERE { ?b ?p \"lit0\" }",
			vars: []string{"b"},
			bgp:  []rdf.Statement{{S: rdf.NewVar("b"), P: rdf.NewVar("p"), O: rdf.NewLiteral("lit0")}},
		},
	}
	for _, tc := range queries {
		res, err := g.Query(tc.q)
		if err != nil {
			t.Fatalf("Query(%q): %v", tc.q, err)
		}
		// Reference result: project the reference Solve onto the selected
		// variables, dedupe, and sort — the documented Query contract.
		seen := map[string]bool{}
		var want [][]rdf.Term
		for _, b := range ref.Solve(tc.bgp) {
			row := make([]rdf.Term, len(tc.vars))
			key := ""
			for i, v := range tc.vars {
				row[i] = b[v]
				key += b[v].String() + "|"
			}
			if !seen[key] {
				seen[key] = true
				want = append(want, row)
			}
		}
		sort.Slice(want, func(i, j int) bool {
			for k := range want[i] {
				a, b := want[i][k], want[j][k]
				if a.Kind != b.Kind {
					return a.Kind < b.Kind
				}
				if a.Value != b.Value {
					return a.Value < b.Value
				}
			}
			return false
		})
		if len(res.Rows) != len(want) {
			t.Fatalf("Query(%q): %d rows, reference %d", tc.q, len(res.Rows), len(want))
		}
		for i := range want {
			for k := range want[i] {
				if res.Rows[i][k] != want[i][k] {
					t.Fatalf("Query(%q): row %d col %d = %v, reference %v", tc.q, i, k, res.Rows[i][k], want[i][k])
				}
			}
		}
	}
}

// reachRules is the linear-recursive reachability rule set used across
// the chain workloads.
func reachRules() []rdf.Rule {
	v := rdf.NewVar
	edge := rdf.NewIRI("edge")
	reaches := rdf.NewIRI("reaches")
	return []rdf.Rule{
		{
			Name:        "reach-base",
			Premises:    []rdf.Statement{{S: v("x"), P: edge, O: v("y")}},
			Conclusions: []rdf.Statement{{S: v("x"), P: reaches, O: v("y")}},
		},
		{
			Name: "reach-step",
			Premises: []rdf.Statement{
				{S: v("x"), P: edge, O: v("m")},
				{S: v("m"), P: reaches, O: v("y")},
			},
			Conclusions: []rdf.Statement{{S: v("x"), P: reaches, O: v("y")}},
		},
	}
}

func TestOracleForwardChain(t *testing.T) {
	ruleSets := map[string][]rdf.Rule{
		"transitive": rdf.TransitiveRules(),
		"rdfs":       rdf.RDFSRules(),
		"reach":      reachRules(),
	}
	for name, rules := range ruleSets {
		rules := rules
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				rng := rand.New(rand.NewSource(seed * 7))
				g := rdf.NewGraph()
				ref := rdfref.New()
				node := func() string { return fmt.Sprintf("n%d", rng.Intn(10)) }
				for i := 0; i < 40; i++ {
					var s rdf.Statement
					switch rng.Intn(5) {
					case 0:
						s = rdf.Statement{S: rdf.NewIRI(node()), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: rdf.NewIRI(node())}
					case 1:
						s = rdf.Statement{S: rdf.NewIRI("p" + node()), P: rdf.NewIRI(rdf.RDFSDomain), O: rdf.NewIRI(node())}
					case 2:
						s = rdf.Statement{S: rdf.NewIRI(node()), P: rdf.NewIRI("p" + node()), O: rdf.NewIRI(node())}
					case 3:
						s = rdf.Statement{S: rdf.NewIRI(node()), P: rdf.NewIRI("edge"), O: rdf.NewIRI(node())}
					default:
						s = oracleStatement(rng)
					}
					g.MustAdd(s)
					ref.MustAdd(s)
				}
				gn, gerr := rdf.ForwardChain(g, rules, 0)
				rn, rerr := rdfref.ForwardChain(ref, rules, 0)
				if gerr != nil || rerr != nil {
					t.Fatalf("seed %d: chain errors %v / %v", seed, gerr, rerr)
				}
				if gn != rn {
					t.Fatalf("seed %d: derived %d, reference %d", seed, gn, rn)
				}
				stmtsEqual(t, "closure", g.All(), ref.All())

				// Chaining a converged graph again derives nothing.
				if again, err := rdf.ForwardChain(g, rules, 0); err != nil || again != 0 {
					t.Fatalf("seed %d: re-chain = (%d, %v), want (0, nil)", seed, again, err)
				}
			}
		})
	}
}

func TestOracleNaiveMatchesSemiNaive(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed * 13))
		var facts []rdf.Statement
		for i := 0; i < 30; i++ {
			facts = append(facts, rdf.Statement{
				S: rdf.NewIRI(fmt.Sprintf("n%d", rng.Intn(12))),
				P: rdf.NewIRI("edge"),
				O: rdf.NewIRI(fmt.Sprintf("n%d", rng.Intn(12))),
			})
		}
		gSemi, gNaive := rdf.NewGraph(), rdf.NewGraph()
		if _, err := gSemi.AddAll(facts); err != nil {
			t.Fatal(err)
		}
		if _, err := gNaive.AddAll(facts); err != nil {
			t.Fatal(err)
		}
		semi, err := rdf.ForwardChainStats(gSemi, reachRules(), 0)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := rdf.ForwardChainNaive(gNaive, reachRules(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if semi.Derived != naive.Derived || gSemi.Len() != gNaive.Len() {
			t.Fatalf("seed %d: semi-naive derived %d (len %d), naive %d (len %d)",
				seed, semi.Derived, gSemi.Len(), naive.Derived, gNaive.Len())
		}
		stmtsEqual(t, "fixpoint", gSemi.All(), gNaive.All())
		if semi.Derivations > naive.Derivations {
			t.Errorf("seed %d: semi-naive made %d derivations, naive only %d",
				seed, semi.Derivations, naive.Derivations)
		}
	}
}

func TestOracleBackwardChain(t *testing.T) {
	// Reference for the backward chainer: materialize the closure with the
	// reference forward chainer, then Match the goal against it. Edges are
	// kept acyclic (low index -> high index): the prover's tabling is
	// documented as approximate under cycles (a pre-existing limitation,
	// unrelated to the interned store), and the oracle's job is to show
	// the store rewrite preserved the prover's behavior where it is exact.
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed * 31))
		g := rdf.NewGraph()
		ref := rdfref.New()
		for i := 0; i < 15; i++ {
			a, b := rng.Intn(8), rng.Intn(8)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			s := rdf.Statement{
				S: rdf.NewIRI(fmt.Sprintf("n%d", a)),
				P: rdf.NewIRI("edge"),
				O: rdf.NewIRI(fmt.Sprintf("n%d", b)),
			}
			g.MustAdd(s)
			ref.MustAdd(s)
		}
		if _, err := rdfref.ForwardChain(ref, reachRules(), 0); err != nil {
			t.Fatal(err)
		}
		goals := []rdf.Statement{
			{S: rdf.NewIRI("n0"), P: rdf.NewIRI("reaches"), O: rdf.NewVar("who")},
			{S: rdf.NewVar("who"), P: rdf.NewIRI("reaches"), O: rdf.NewIRI("n1")},
		}
		for _, goal := range goals {
			got, err := rdf.BackwardChain(g, reachRules(), goal, 64)
			if err != nil {
				t.Fatal(err)
			}
			// Expected: every distinct binding of the goal against the
			// materialized closure.
			varName := "who"
			seen := map[string]bool{}
			var want []rdf.Binding
			for _, m := range ref.Match(goal) {
				var bound rdf.Term
				if goal.S.IsVar() {
					bound = m.S
				} else {
					bound = m.O
				}
				if !seen[bound.String()] {
					seen[bound.String()] = true
					want = append(want, rdf.Binding{varName: bound})
				}
			}
			bindingsEqual(t, fmt.Sprintf("seed %d BackwardChain(%s)", seed, goal), got, want)
		}
	}
}
