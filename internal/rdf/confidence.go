package rdf

import (
	"fmt"
	"sync"
)

// The paper's future work (§5): "determining accuracy levels of data
// stored within the personalized knowledge base, using these accuracy
// levels during the process of inferring new facts, and assigning accuracy
// levels to newly inferred facts". Confidences attaches an accuracy level
// in (0, 1] to each statement; ForwardChainConfidence propagates levels
// through inference: a derived fact's confidence is the minimum of its
// premises' confidences scaled by the rule's own confidence, and a fact
// derivable several ways keeps its best-supported level.

// Confidences tracks per-statement accuracy levels alongside a Graph. It
// is safe for concurrent use.
type Confidences struct {
	mu     sync.RWMutex
	levels map[string]float64
	// def is the level assumed for statements never assigned one.
	def float64
}

// NewConfidences returns a tracker whose unassigned statements default to
// defaultLevel (clamped to (0, 1]; 0 means 1.0, i.e. trusted).
func NewConfidences(defaultLevel float64) *Confidences {
	if defaultLevel <= 0 || defaultLevel > 1 {
		defaultLevel = 1
	}
	return &Confidences{levels: make(map[string]float64), def: defaultLevel}
}

// Set assigns a confidence level to a statement. Levels outside (0, 1]
// are rejected.
func (c *Confidences) Set(s Statement, level float64) error {
	if level <= 0 || level > 1 {
		return fmt.Errorf("rdf: confidence %v out of (0, 1]", level)
	}
	c.mu.Lock()
	c.levels[s.key()] = level
	c.mu.Unlock()
	return nil
}

// Get returns a statement's confidence level (the default if unassigned).
func (c *Confidences) Get(s Statement) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if l, ok := c.levels[s.key()]; ok {
		return l
	}
	return c.def
}

// raise lifts a statement's level to at least `level` (facts derivable in
// several ways keep their best support).
func (c *Confidences) raise(s Statement, level float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.levels[s.key()]; !ok || level > cur {
		c.levels[s.key()] = level
	}
}

// ConfidentRule pairs a rule with the rule's own confidence: how much an
// application trusts conclusions drawn by it even from perfect premises.
type ConfidentRule struct {
	Rule
	// Confidence in (0, 1]; 0 is treated as 1.
	Confidence float64
}

// ForwardChainConfidence forward-chains the rules to fixpoint, assigning
// each derived statement the confidence
//
//	ruleConfidence * min(premise confidences)
//
// and keeping the maximum over alternative derivations. It returns the
// number of statements whose confidence was newly assigned or raised.
// Iteration continues while any level rises, so confidence flows through
// multi-step derivations; minThreshold discards derivations weaker than
// the threshold (0 keeps everything).
func ForwardChainConfidence(g *Graph, conf *Confidences, rules []ConfidentRule, minThreshold float64, maxIterations int) (int, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return 0, err
		}
	}
	if maxIterations <= 0 {
		maxIterations = 1000
	}
	changed := 0
	for iter := 0; iter < maxIterations; iter++ {
		roundChanged := 0
		for _, rule := range rules {
			rc := rule.Confidence
			if rc <= 0 || rc > 1 {
				rc = 1
			}
			for _, b := range g.Solve(rule.Premises) {
				// The derivation's support: the weakest premise.
				support := rc
				for _, p := range rule.Premises {
					ground := substitute(p, b)
					level := conf.Get(ground)
					if level*rc < support {
						support = level * rc
					}
				}
				if support < minThreshold {
					continue
				}
				for _, cl := range rule.Conclusions {
					ground := substitute(cl, b)
					if !ground.Ground() {
						return changed, fmt.Errorf("rdf: rule %s produced non-ground %s", rule.Name, ground)
					}
					added, err := g.Add(ground)
					if err != nil {
						return changed, err
					}
					before := 0.0
					if !added {
						before = conf.Get(ground)
					}
					conf.raise(ground, support)
					if added || conf.Get(ground) > before {
						roundChanged++
					}
				}
			}
		}
		changed += roundChanged
		if roundChanged == 0 {
			return changed, nil
		}
	}
	return changed, fmt.Errorf("rdf: confidence chaining did not converge in %d iterations", maxIterations)
}
