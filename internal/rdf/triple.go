// Package rdf implements the RDF triple-store substrate of the
// personalized knowledge base — the role Apache Jena plays in the paper. A
// statement has a subject, predicate, and object (paper §3); the store
// indexes statements by each position, answers pattern queries with
// variables, runs a SPARQL-like basic-graph-pattern query language, and
// provides the reasoners the paper lists: a transitive reasoner for class
// and property lattices, an RDF-Schema rule reasoner, and a generic rule
// reasoner supporting user-defined rules with forward chaining and
// backward chaining.
package rdf

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// TermKind classifies RDF terms.
type TermKind int

// Term kinds. Var terms appear only in query/rule patterns, never in
// stored statements.
const (
	IRI TermKind = iota + 1
	Literal
	Blank
	Var
)

// Term is one RDF term.
type Term struct {
	Kind  TermKind
	Value string
}

// Convenience constructors.
func NewIRI(v string) Term     { return Term{Kind: IRI, Value: v} }
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }
func NewBlank(v string) Term   { return Term{Kind: Blank, Value: v} }
func NewVar(v string) Term     { return Term{Kind: Var, Value: v} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == Var }

// Zero reports whether the term is the zero Term (wildcard in Match).
func (t Term) Zero() bool { return t.Kind == 0 && t.Value == "" }

// String renders the term in a Turtle-like syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Literal:
		return fmt.Sprintf("%q", t.Value)
	case Blank:
		return "_:" + t.Value
	case Var:
		return "?" + t.Value
	default:
		return "_"
	}
}

// key is the interning key: kind-tagged value. Kind fits one byte; avoid
// fmt to keep Match/Solve hot paths allocation-light.
func (t Term) key() string {
	return string([]byte{byte('0' + t.Kind)}) + "\x00" + t.Value
}

// Statement is one RDF triple. The paper's example: in "The Java HashMap
// class implements the Java Map interface", the subject is "Java HashMap
// class", the predicate "implements", and the object "Java Map interface".
type Statement struct {
	S, P, O Term
}

// String renders the statement Turtle-style.
func (s Statement) String() string {
	return fmt.Sprintf("%s %s %s .", s.S, s.P, s.O)
}

func (s Statement) key() string {
	return s.S.key() + "\x01" + s.P.key() + "\x01" + s.O.key()
}

// Ground reports whether the statement contains no variables or zero terms.
func (s Statement) Ground() bool {
	for _, t := range []Term{s.S, s.P, s.O} {
		if t.IsVar() || t.Zero() {
			return false
		}
	}
	return true
}

// Graph is an indexed triple store, safe for concurrent use.
type Graph struct {
	mu    sync.RWMutex
	stmts map[string]Statement
	byS   map[string]map[string]struct{} // subject key -> statement keys
	byP   map[string]map[string]struct{}
	byO   map[string]map[string]struct{}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		stmts: make(map[string]Statement),
		byS:   make(map[string]map[string]struct{}),
		byP:   make(map[string]map[string]struct{}),
		byO:   make(map[string]map[string]struct{}),
	}
}

// Add inserts a ground statement. It reports whether the statement was new
// and errors on non-ground statements.
func (g *Graph) Add(s Statement) (bool, error) {
	if !s.Ground() {
		return false, fmt.Errorf("rdf: cannot store non-ground statement %s", s)
	}
	k := s.key()
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.stmts[k]; dup {
		return false, nil
	}
	g.stmts[k] = s
	addIndex(g.byS, s.S.key(), k)
	addIndex(g.byP, s.P.key(), k)
	addIndex(g.byO, s.O.key(), k)
	return true, nil
}

// MustAdd is Add that panics on error, for literal test/setup data.
func (g *Graph) MustAdd(s Statement) {
	if _, err := g.Add(s); err != nil {
		panic(err)
	}
}

// AddAll inserts many statements, returning how many were new.
func (g *Graph) AddAll(stmts []Statement) (int, error) {
	added := 0
	for _, s := range stmts {
		ok, err := g.Add(s)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

// Remove deletes a statement, reporting whether it was present.
func (g *Graph) Remove(s Statement) bool {
	k := s.key()
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.stmts[k]; !ok {
		return false
	}
	delete(g.stmts, k)
	delIndex(g.byS, s.S.key(), k)
	delIndex(g.byP, s.P.key(), k)
	delIndex(g.byO, s.O.key(), k)
	return true
}

// Has reports whether the ground statement is stored.
func (g *Graph) Has(s Statement) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.stmts[s.key()]
	return ok
}

// Len returns the number of stored statements.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.stmts)
}

// All returns every statement, sorted for determinism.
func (g *Graph) All() []Statement {
	g.mu.RLock()
	out := make([]Statement, 0, len(g.stmts))
	for _, s := range g.stmts {
		out = append(out, s)
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// Match returns all statements matching the pattern, where variable or
// zero terms match anything. The most selective available index drives the
// scan.
func (g *Graph) Match(pattern Statement) []Statement {
	g.mu.RLock()
	defer g.mu.RUnlock()
	candidates := g.candidateKeys(pattern)
	var out []Statement
	for k := range candidates {
		s := g.stmts[k]
		if matches(pattern, s) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// candidateKeys picks the smallest index set covering the pattern; caller
// holds at least a read lock.
func (g *Graph) candidateKeys(pattern Statement) map[string]struct{} {
	type idxOpt struct {
		set map[string]struct{}
	}
	var opts []idxOpt
	if bound(pattern.S) {
		opts = append(opts, idxOpt{g.byS[pattern.S.key()]})
	}
	if bound(pattern.P) {
		opts = append(opts, idxOpt{g.byP[pattern.P.key()]})
	}
	if bound(pattern.O) {
		opts = append(opts, idxOpt{g.byO[pattern.O.key()]})
	}
	if len(opts) == 0 {
		all := make(map[string]struct{}, len(g.stmts))
		for k := range g.stmts {
			all[k] = struct{}{}
		}
		return all
	}
	best := opts[0].set
	for _, o := range opts[1:] {
		if len(o.set) < len(best) {
			best = o.set
		}
	}
	if best == nil {
		return map[string]struct{}{}
	}
	return best
}

func bound(t Term) bool { return !t.IsVar() && !t.Zero() }

func matches(pattern, s Statement) bool {
	return termMatches(pattern.S, s.S) && termMatches(pattern.P, s.P) && termMatches(pattern.O, s.O)
}

func termMatches(p, t Term) bool {
	if !bound(p) {
		return true
	}
	return p == t
}

func addIndex(idx map[string]map[string]struct{}, key, stmt string) {
	set := idx[key]
	if set == nil {
		set = make(map[string]struct{})
		idx[key] = set
	}
	set[stmt] = struct{}{}
}

func delIndex(idx map[string]map[string]struct{}, key, stmt string) {
	if set := idx[key]; set != nil {
		delete(set, stmt)
		if len(set) == 0 {
			delete(idx, key)
		}
	}
}

// ParseTerm parses a Turtle-like term: <iri>, "literal", _:blank, ?var, or
// a bare word (treated as an IRI).
func ParseTerm(s string) (Term, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return Term{}, fmt.Errorf("rdf: empty term")
	case strings.HasPrefix(s, "<") && strings.HasSuffix(s, ">"):
		return NewIRI(s[1 : len(s)-1]), nil
	case strings.HasPrefix(s, "\"") && strings.HasSuffix(s, "\"") && len(s) >= 2:
		return NewLiteral(s[1 : len(s)-1]), nil
	case strings.HasPrefix(s, "_:"):
		return NewBlank(s[2:]), nil
	case strings.HasPrefix(s, "?"):
		return NewVar(s[1:]), nil
	default:
		return NewIRI(s), nil
	}
}
