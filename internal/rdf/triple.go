// Package rdf implements the RDF triple-store substrate of the
// personalized knowledge base — the role Apache Jena plays in the paper. A
// statement has a subject, predicate, and object (paper §3); the store
// indexes statements by each position, answers pattern queries with
// variables, runs a SPARQL-like basic-graph-pattern query language, and
// provides the reasoners the paper lists: a transitive reasoner for class
// and property lattices, an RDF-Schema rule reasoner, and a generic rule
// reasoner supporting user-defined rules with forward chaining and
// backward chaining.
//
// Internally the store interns every term to a uint32 through a term
// dictionary and keeps statements as [3]uint32 ID triples in three
// composite positional indexes (SPO, POS, OSP), so pattern matching,
// joins, and inference run over integer IDs; term bytes are only touched
// at the public API boundary. See DESIGN.md "RDF store internals".
package rdf

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/intern"
)

// TermKind classifies RDF terms.
type TermKind int

// Term kinds. Var terms appear only in query/rule patterns, never in
// stored statements.
const (
	IRI TermKind = iota + 1
	Literal
	Blank
	Var
)

// Term is one RDF term.
type Term struct {
	Kind  TermKind
	Value string
}

// Convenience constructors.
func NewIRI(v string) Term     { return Term{Kind: IRI, Value: v} }
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }
func NewBlank(v string) Term   { return Term{Kind: Blank, Value: v} }
func NewVar(v string) Term     { return Term{Kind: Var, Value: v} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == Var }

// Zero reports whether the term is the zero Term (wildcard in Match).
func (t Term) Zero() bool { return t.Kind == 0 && t.Value == "" }

// String renders the term in a Turtle-like syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Literal:
		return fmt.Sprintf("%q", t.Value)
	case Blank:
		return "_:" + t.Value
	case Var:
		return "?" + t.Value
	default:
		return "_"
	}
}

// key is a kind-tagged map key for external per-statement bookkeeping
// (Confidences, the prover's tables). The store itself no longer keys
// anything by strings — statements live as interned ID triples.
func (t Term) key() string {
	return string([]byte{byte('0' + t.Kind)}) + "\x00" + t.Value
}

// Statement is one RDF triple. The paper's example: in "The Java HashMap
// class implements the Java Map interface", the subject is "Java HashMap
// class", the predicate "implements", and the object "Java Map interface".
type Statement struct {
	S, P, O Term
}

// String renders the statement Turtle-style.
func (s Statement) String() string {
	return fmt.Sprintf("%s %s %s .", s.S, s.P, s.O)
}

func (s Statement) key() string {
	return s.S.key() + "\x01" + s.P.key() + "\x01" + s.O.key()
}

// Ground reports whether the statement contains no variables or zero terms.
func (s Statement) Ground() bool {
	for _, t := range []Term{s.S, s.P, s.O} {
		if t.IsVar() || t.Zero() {
			return false
		}
	}
	return true
}

// triple is a statement in interned form: dictionary IDs for S, P, O.
type triple = [3]uint32

// Graph is an indexed triple store, safe for concurrent use.
//
// Statements are interned ID triples. The three composite indexes each
// cover one rotation of the triple — spo (s→p→objects), pos (p→o→
// subjects), osp (o→s→predicates) — so every one- and two-bound pattern
// shape binds directly to a posting list with no residual filter scan,
// and the per-position count maps give the join planner exact
// cardinalities for bound constants.
type Graph struct {
	mu    sync.RWMutex
	dict  *intern.Dict[Term]
	stmts map[triple]struct{}
	spo   map[uint32]map[uint32][]uint32
	pos   map[uint32]map[uint32][]uint32
	osp   map[uint32]map[uint32][]uint32
	// Per-term statement counts by position, for selectivity estimates.
	nS, nP, nO map[uint32]int
	// obs holds the graph's instruments (nil until Instrument attaches
	// them); guarded by mu like everything else here.
	obs *rdfObs
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		dict:  intern.NewDict[Term](),
		stmts: make(map[triple]struct{}),
		spo:   make(map[uint32]map[uint32][]uint32),
		pos:   make(map[uint32]map[uint32][]uint32),
		osp:   make(map[uint32]map[uint32][]uint32),
		nS:    make(map[uint32]int),
		nP:    make(map[uint32]int),
		nO:    make(map[uint32]int),
	}
}

// Add inserts a ground statement. It reports whether the statement was new
// and errors on non-ground statements.
func (g *Graph) Add(s Statement) (bool, error) {
	if !s.Ground() {
		return false, fmt.Errorf("rdf: cannot store non-ground statement %s", s)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addLocked(triple{g.dict.Intern(s.S), g.dict.Intern(s.P), g.dict.Intern(s.O)}), nil
}

// addLocked inserts an interned triple; caller holds the write lock.
func (g *Graph) addLocked(t triple) bool {
	if _, dup := g.stmts[t]; dup {
		return false
	}
	g.stmts[t] = struct{}{}
	postingAdd(g.spo, t[0], t[1], t[2])
	postingAdd(g.pos, t[1], t[2], t[0])
	postingAdd(g.osp, t[2], t[0], t[1])
	g.nS[t[0]]++
	g.nP[t[1]]++
	g.nO[t[2]]++
	return true
}

// MustAdd is Add that panics on error, for literal test/setup data.
func (g *Graph) MustAdd(s Statement) {
	if _, err := g.Add(s); err != nil {
		panic(err)
	}
}

// AddAll inserts many statements under one lock, returning how many were
// new.
func (g *Graph) AddAll(stmts []Statement) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	added := 0
	for _, s := range stmts {
		if !s.Ground() {
			return added, fmt.Errorf("rdf: cannot store non-ground statement %s", s)
		}
		if g.addLocked(triple{g.dict.Intern(s.S), g.dict.Intern(s.P), g.dict.Intern(s.O)}) {
			added++
		}
	}
	return added, nil
}

// Remove deletes a statement, reporting whether it was present. Dictionary
// entries are kept: term IDs stay valid for the graph's lifetime.
func (g *Graph) Remove(s Statement) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	t, ok := g.lookupTriple(s)
	if !ok {
		return false
	}
	if _, ok := g.stmts[t]; !ok {
		return false
	}
	delete(g.stmts, t)
	postingDel(g.spo, t[0], t[1], t[2])
	postingDel(g.pos, t[1], t[2], t[0])
	postingDel(g.osp, t[2], t[0], t[1])
	countDec(g.nS, t[0])
	countDec(g.nP, t[1])
	countDec(g.nO, t[2])
	return true
}

// Has reports whether the ground statement is stored.
func (g *Graph) Has(s Statement) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	t, ok := g.lookupTriple(s)
	if !ok {
		return false
	}
	_, ok = g.stmts[t]
	return ok
}

// Len returns the number of stored statements.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.stmts)
}

// All returns every statement, sorted for determinism.
func (g *Graph) All() []Statement {
	g.mu.RLock()
	out := make([]Statement, 0, len(g.stmts))
	for t := range g.stmts {
		out = append(out, g.statement(t))
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return compareStatement(out[i], out[j]) < 0 })
	return out
}

// Match returns all statements matching the pattern, where variable or
// zero terms match anything, sorted for determinism. The matching itself
// is a direct index walk over interned IDs; only the result materializes
// terms.
func (g *Graph) Match(pattern Statement) []Statement {
	g.mu.RLock()
	var out []Statement
	if want, ok := g.compileMatch(pattern); ok {
		g.forEach(want, func(t triple) {
			out = append(out, g.statement(t))
		})
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return compareStatement(out[i], out[j]) < 0 })
	return out
}

// lookupTriple interns nothing: a miss on any position means the
// statement cannot be stored. Caller holds a lock.
func (g *Graph) lookupTriple(s Statement) (triple, bool) {
	si, ok := g.dict.Lookup(s.S)
	if !ok {
		return triple{}, false
	}
	pi, ok := g.dict.Lookup(s.P)
	if !ok {
		return triple{}, false
	}
	oi, ok := g.dict.Lookup(s.O)
	if !ok {
		return triple{}, false
	}
	return triple{si, pi, oi}, true
}

// compileMatch translates a pattern to an ID pattern (wildID per unbound
// position). ok is false when a bound term is absent from the dictionary,
// i.e. the pattern cannot match anything. Caller holds a lock.
func (g *Graph) compileMatch(pattern Statement) (triple, bool) {
	want := triple{wildID, wildID, wildID}
	for i, t := range [3]Term{pattern.S, pattern.P, pattern.O} {
		if !bound(t) {
			continue
		}
		id, ok := g.dict.Lookup(t)
		if !ok {
			return want, false
		}
		want[i] = id
	}
	return want, true
}

// statement materializes an interned triple. Caller holds a lock.
func (g *Graph) statement(t triple) Statement {
	return Statement{S: g.dict.Value(t[0]), P: g.dict.Value(t[1]), O: g.dict.Value(t[2])}
}

// forEach calls fn for every stored triple matching the ID pattern
// (wildID positions match anything). Each bound-position combination
// binds to exactly one index rotation, so there is never a residual
// filter and never a per-call candidate set; the all-wildcard case walks
// the statement map directly. Caller holds at least a read lock; fn must
// not mutate the graph.
func (g *Graph) forEach(want triple, fn func(triple)) {
	s, p, o := want[0], want[1], want[2]
	switch {
	case s != wildID && p != wildID && o != wildID:
		if _, ok := g.stmts[want]; ok {
			fn(want)
		}
	case s != wildID && p != wildID:
		for _, oo := range g.spo[s][p] {
			fn(triple{s, p, oo})
		}
	case p != wildID && o != wildID:
		for _, ss := range g.pos[p][o] {
			fn(triple{ss, p, o})
		}
	case s != wildID && o != wildID:
		for _, pp := range g.osp[o][s] {
			fn(triple{s, pp, o})
		}
	case s != wildID:
		for pp, list := range g.spo[s] {
			for _, oo := range list {
				fn(triple{s, pp, oo})
			}
		}
	case p != wildID:
		for oo, list := range g.pos[p] {
			for _, ss := range list {
				fn(triple{ss, p, oo})
			}
		}
	case o != wildID:
		for ss, list := range g.osp[o] {
			for _, pp := range list {
				fn(triple{ss, pp, o})
			}
		}
	default:
		for t := range g.stmts {
			fn(t)
		}
	}
}

func bound(t Term) bool { return !t.IsVar() && !t.Zero() }

func matches(pattern, s Statement) bool {
	return termMatches(pattern.S, s.S) && termMatches(pattern.P, s.P) && termMatches(pattern.O, s.O)
}

func termMatches(p, t Term) bool {
	if !bound(p) {
		return true
	}
	return p == t
}

// postingAdd appends c to the a→b posting list.
func postingAdd(idx map[uint32]map[uint32][]uint32, a, b, c uint32) {
	inner := idx[a]
	if inner == nil {
		inner = make(map[uint32][]uint32)
		idx[a] = inner
	}
	inner[b] = append(inner[b], c)
}

// postingDel swap-removes c from the a→b posting list, pruning emptied
// levels. Posting lists are unordered; public results sort on the way out.
func postingDel(idx map[uint32]map[uint32][]uint32, a, b, c uint32) {
	inner := idx[a]
	list := inner[b]
	for i, v := range list {
		if v == c {
			last := len(list) - 1
			list[i] = list[last]
			list = list[:last]
			break
		}
	}
	if len(list) == 0 {
		delete(inner, b)
		if len(inner) == 0 {
			delete(idx, a)
		}
	} else {
		inner[b] = list
	}
}

func countDec(counts map[uint32]int, id uint32) {
	if counts[id] <= 1 {
		delete(counts, id)
	} else {
		counts[id]--
	}
}

// ParseTerm parses a Turtle-like term: <iri>, "literal", _:blank, ?var, or
// a bare word (treated as an IRI).
func ParseTerm(s string) (Term, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return Term{}, fmt.Errorf("rdf: empty term")
	case strings.HasPrefix(s, "<") && strings.HasSuffix(s, ">"):
		return NewIRI(s[1 : len(s)-1]), nil
	case strings.HasPrefix(s, "\"") && strings.HasSuffix(s, "\"") && len(s) >= 2:
		return NewLiteral(s[1 : len(s)-1]), nil
	case strings.HasPrefix(s, "_:"):
		return NewBlank(s[2:]), nil
	case strings.HasPrefix(s, "?"):
		return NewVar(s[1:]), nil
	default:
		return NewIRI(s), nil
	}
}
