package rdf

import (
	"fmt"
)

// Well-known vocabulary IRIs.
const (
	RDFType           = "rdf:type"
	RDFSSubClassOf    = "rdfs:subClassOf"
	RDFSSubPropertyOf = "rdfs:subPropertyOf"
	RDFSDomain        = "rdfs:domain"
	RDFSRange         = "rdfs:range"
)

// Rule is one user-defined inference rule: when every premise matches (with
// consistent variable bindings), each conclusion is asserted. This is the
// paper's "generic rule reasoner that supports user-defined rules".
type Rule struct {
	Name        string
	Premises    []Statement
	Conclusions []Statement
}

// Validate checks that every conclusion variable is bound by some premise.
func (r Rule) Validate() error {
	bound := make(map[string]bool)
	for _, p := range r.Premises {
		for _, t := range []Term{p.S, p.P, p.O} {
			if t.IsVar() {
				bound[t.Value] = true
			}
		}
	}
	for _, c := range r.Conclusions {
		for _, t := range []Term{c.S, c.P, c.O} {
			if t.IsVar() && !bound[t.Value] {
				return fmt.Errorf("rdf: rule %s: conclusion variable ?%s unbound", r.Name, t.Value)
			}
		}
	}
	return nil
}

// ForwardChain applies the rules to the graph until fixpoint, asserting
// every derivable statement. It returns the number of new statements and
// supports the paper's Figure 5 loop: analysis results enter the store,
// inference generates new facts. maxIterations bounds runaway rule sets
// (0 means 1000).
func ForwardChain(g *Graph, rules []Rule, maxIterations int) (int, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return 0, err
		}
	}
	if maxIterations <= 0 {
		maxIterations = 1000
	}
	totalNew := 0
	for iter := 0; iter < maxIterations; iter++ {
		newThisRound := 0
		for _, rule := range rules {
			for _, b := range g.Solve(rule.Premises) {
				for _, c := range rule.Conclusions {
					ground := substitute(c, b)
					if !ground.Ground() {
						return totalNew, fmt.Errorf("rdf: rule %s produced non-ground %s", rule.Name, ground)
					}
					added, err := g.Add(ground)
					if err != nil {
						return totalNew, err
					}
					if added {
						newThisRound++
					}
				}
			}
		}
		totalNew += newThisRound
		if newThisRound == 0 {
			return totalNew, nil
		}
	}
	return totalNew, fmt.Errorf("rdf: forward chaining did not converge in %d iterations", maxIterations)
}

// BackwardChain proves goal (a pattern, possibly with variables) against
// the graph plus rules, goal-directed with tabling: in-progress goal shapes
// cut cycles, and completed goals' answers are cached and reused. This is
// the paper's "tabled backward chaining" execution strategy.
//
// The tabling is approximate: answers cached for a goal that completed
// under a cycle cut may under-report bindings for adversarially
// mutually-recursive rule sets. For linear-recursive rules (transitivity,
// subsumption, reachability — everything this repository uses) results are
// complete; when in doubt, ForwardChain materializes the exact fixpoint.
func BackwardChain(g *Graph, rules []Rule, goal Statement, maxDepth int) ([]Binding, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	if maxDepth <= 0 {
		maxDepth = 32
	}
	p := &prover{
		g:          g,
		rules:      rules,
		maxDepth:   maxDepth,
		inProgress: make(map[string]bool),
		solved:     make(map[string][]Statement),
	}
	return p.prove(goal, Binding{}, 0), nil
}

type prover struct {
	g          *Graph
	rules      []Rule
	maxDepth   int
	inProgress map[string]bool
	// solved tables completed goals: canonical pattern -> the ground
	// statements that satisfy it. Without answer tabling, recursive rules
	// (transitivity) recompute each subgoal's closure at every use and
	// the search is exponential in the derivation depth.
	solved map[string][]Statement
}

// prove returns bindings extending b under which goal holds.
func (p *prover) prove(goal Statement, b Binding, depth int) []Binding {
	if depth > p.maxDepth {
		return nil
	}
	ground := substitute(goal, b)
	// Goals are tabled by shape: variable names are canonicalized to
	// positional placeholders so a renamed copy of a goal (the same
	// pattern at a deeper recursion level) shares its tabling slot.
	key := canonicalGoalKey(ground)
	// Answer table: a completed goal's satisfying statements are reused
	// instead of re-derived.
	if stmts, done := p.solved[key]; done {
		var results []Binding
		for _, s := range stmts {
			if nb := unify(ground, s, b); nb != nil {
				results = append(results, nb)
			}
		}
		return dedupeBindings(results)
	}
	var results []Binding
	var stmts []Statement
	seenStmt := make(map[string]bool)
	record := func(nb Binding) {
		results = append(results, nb)
		s := substitute(ground, nb)
		if s.Ground() && !seenStmt[s.key()] {
			seenStmt[s.key()] = true
			stmts = append(stmts, s)
		}
	}
	// Facts.
	for _, s := range p.g.Match(ground) {
		if nb := unify(ground, s, b); nb != nil {
			record(nb)
		}
	}
	// Rules: cut cycles by refusing to re-enter a goal shape already
	// being proven on this path. Re-entrant results are incomplete, so
	// they are NOT recorded in the answer table.
	if p.inProgress[key] {
		return results
	}
	p.inProgress[key] = true
	defer delete(p.inProgress, key)
	for _, rule := range p.rules {
		renamed := renameRule(rule, depth)
		for _, c := range renamed.Conclusions {
			// Unify the goal with the conclusion in a fresh scope.
			nb := unifyPatterns(ground, c, Binding{})
			if nb == nil {
				continue
			}
			// Prove all premises under the rule-scope binding.
			premiseBindings := p.proveAll(renamed.Premises, nb, depth+1)
			for _, pb := range premiseBindings {
				// Project the rule-scope solution back onto the goal's
				// variables.
				final := b.clone()
				solved := substitute(substitute(c, pb), pb)
				if merged := unify(ground, solved, final); merged != nil {
					record(merged)
				}
			}
		}
	}
	results = dedupeBindings(results)
	// The goal completed at top-of-path: its answers are final for this
	// BackwardChain invocation.
	p.solved[key] = stmts
	return results
}

func (p *prover) proveAll(premises []Statement, b Binding, depth int) []Binding {
	results := []Binding{b}
	for _, prem := range premises {
		var next []Binding
		for _, cur := range results {
			next = append(next, p.prove(prem, cur, depth)...)
		}
		results = next
		if len(results) == 0 {
			return nil
		}
	}
	return results
}

// unifyPatterns unifies two patterns (either may contain variables),
// binding goal variables to conclusion terms and vice versa. Only bindings
// of the second pattern's variables are recorded (rule scope).
func unifyPatterns(goal, concl Statement, b Binding) Binding {
	out := b.clone()
	pairs := [][2]Term{{goal.S, concl.S}, {goal.P, concl.P}, {goal.O, concl.O}}
	for _, pair := range pairs {
		gt, ct := pair[0], pair[1]
		switch {
		case ct.IsVar():
			if cur, ok := out[ct.Value]; ok {
				if !gt.IsVar() && cur != gt {
					return nil
				}
			} else if !gt.IsVar() && !gt.Zero() {
				out[ct.Value] = gt
			}
		case gt.IsVar() || gt.Zero():
			// Goal variable against a ground conclusion term: fine, the
			// final unify after proving will bind it.
		default:
			if gt != ct {
				return nil
			}
		}
	}
	return out
}

// renameRule makes rule variables depth-unique to avoid capture.
func renameRule(r Rule, depth int) Rule {
	suffix := fmt.Sprintf("#%d", depth)
	ren := func(t Term) Term {
		if t.IsVar() {
			return NewVar(t.Value + suffix)
		}
		return t
	}
	out := Rule{Name: r.Name}
	for _, p := range r.Premises {
		out.Premises = append(out.Premises, Statement{S: ren(p.S), P: ren(p.P), O: ren(p.O)})
	}
	for _, c := range r.Conclusions {
		out.Conclusions = append(out.Conclusions, Statement{S: ren(c.S), P: ren(c.P), O: ren(c.O)})
	}
	return out
}

// canonicalGoalKey renders a goal with variable names replaced by
// positional placeholders (first distinct variable -> ?0, second -> ?1,
// ...), so structurally identical goals that differ only in variable
// naming share one tabling slot while repeated-variable patterns such as
// "?x p ?x" stay distinct from "?x p ?y".
func canonicalGoalKey(s Statement) string {
	names := make(map[string]int, 3)
	part := func(t Term) string {
		if t.Zero() {
			return "?_"
		}
		if t.IsVar() {
			id, ok := names[t.Value]
			if !ok {
				id = len(names)
				names[t.Value] = id
			}
			return fmt.Sprintf("?%d", id)
		}
		return t.key()
	}
	return part(s.S) + "\x01" + part(s.P) + "\x01" + part(s.O)
}

func dedupeBindings(bs []Binding) []Binding {
	seen := make(map[string]bool, len(bs))
	var out []Binding
	for _, b := range bs {
		key := bindingKey(b)
		if !seen[key] {
			seen[key] = true
			out = append(out, b)
		}
	}
	return out
}

func bindingKey(b Binding) string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	// Insertion-order independence.
	sortStrings(keys)
	var sb []byte
	for _, k := range keys {
		sb = append(sb, k...)
		sb = append(sb, 0)
		sb = append(sb, b[k].key()...)
		sb = append(sb, 1)
	}
	return string(sb)
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TransitiveRules returns the transitive reasoner's rule set for class and
// property lattices (paper: "a transitive reasoner with support for storing
// and traversing class and property lattices").
func TransitiveRules() []Rule {
	return []Rule{
		{
			Name: "subclass-transitive",
			Premises: []Statement{
				{S: NewVar("a"), P: NewIRI(RDFSSubClassOf), O: NewVar("b")},
				{S: NewVar("b"), P: NewIRI(RDFSSubClassOf), O: NewVar("c")},
			},
			Conclusions: []Statement{
				{S: NewVar("a"), P: NewIRI(RDFSSubClassOf), O: NewVar("c")},
			},
		},
		{
			Name: "subproperty-transitive",
			Premises: []Statement{
				{S: NewVar("a"), P: NewIRI(RDFSSubPropertyOf), O: NewVar("b")},
				{S: NewVar("b"), P: NewIRI(RDFSSubPropertyOf), O: NewVar("c")},
			},
			Conclusions: []Statement{
				{S: NewVar("a"), P: NewIRI(RDFSSubPropertyOf), O: NewVar("c")},
			},
		},
	}
}

// RDFSRules returns the RDF-Schema entailment subset the paper's "RDF
// Schema rule reasoner" implements: rdfs2 (domain), rdfs3 (range), rdfs5
// (subPropertyOf transitivity), rdfs7 (property inheritance), rdfs9 (class
// membership inheritance), rdfs11 (subClassOf transitivity).
func RDFSRules() []Rule {
	v := NewVar
	iri := NewIRI
	return []Rule{
		{
			Name: "rdfs2-domain",
			Premises: []Statement{
				{S: v("p"), P: iri(RDFSDomain), O: v("c")},
				{S: v("x"), P: v("p"), O: v("y")},
			},
			Conclusions: []Statement{{S: v("x"), P: iri(RDFType), O: v("c")}},
		},
		{
			Name: "rdfs3-range",
			Premises: []Statement{
				{S: v("p"), P: iri(RDFSRange), O: v("c")},
				{S: v("x"), P: v("p"), O: v("y")},
			},
			Conclusions: []Statement{{S: v("y"), P: iri(RDFType), O: v("c")}},
		},
		{
			Name: "rdfs5-subproperty-transitive",
			Premises: []Statement{
				{S: v("p"), P: iri(RDFSSubPropertyOf), O: v("q")},
				{S: v("q"), P: iri(RDFSSubPropertyOf), O: v("r")},
			},
			Conclusions: []Statement{{S: v("p"), P: iri(RDFSSubPropertyOf), O: v("r")}},
		},
		{
			Name: "rdfs7-subproperty-inheritance",
			Premises: []Statement{
				{S: v("p"), P: iri(RDFSSubPropertyOf), O: v("q")},
				{S: v("x"), P: v("p"), O: v("y")},
			},
			Conclusions: []Statement{{S: v("x"), P: v("q"), O: v("y")}},
		},
		{
			Name: "rdfs9-subclass-membership",
			Premises: []Statement{
				{S: v("c"), P: iri(RDFSSubClassOf), O: v("d")},
				{S: v("x"), P: iri(RDFType), O: v("c")},
			},
			Conclusions: []Statement{{S: v("x"), P: iri(RDFType), O: v("d")}},
		},
		{
			Name: "rdfs11-subclass-transitive",
			Premises: []Statement{
				{S: v("c"), P: iri(RDFSSubClassOf), O: v("d")},
				{S: v("d"), P: iri(RDFSSubClassOf), O: v("e")},
			},
			Conclusions: []Statement{{S: v("c"), P: iri(RDFSSubClassOf), O: v("e")}},
		},
	}
}
