package rdf

import (
	"fmt"
	"time"
)

// Well-known vocabulary IRIs.
const (
	RDFType           = "rdf:type"
	RDFSSubClassOf    = "rdfs:subClassOf"
	RDFSSubPropertyOf = "rdfs:subPropertyOf"
	RDFSDomain        = "rdfs:domain"
	RDFSRange         = "rdfs:range"
)

// Rule is one user-defined inference rule: when every premise matches (with
// consistent variable bindings), each conclusion is asserted. This is the
// paper's "generic rule reasoner that supports user-defined rules".
type Rule struct {
	Name        string
	Premises    []Statement
	Conclusions []Statement
}

// Validate checks that every conclusion variable is bound by some premise.
func (r Rule) Validate() error {
	bound := make(map[string]bool)
	for _, p := range r.Premises {
		for _, t := range []Term{p.S, p.P, p.O} {
			if t.IsVar() {
				bound[t.Value] = true
			}
		}
	}
	for _, c := range r.Conclusions {
		for _, t := range []Term{c.S, c.P, c.O} {
			if t.IsVar() && !bound[t.Value] {
				return fmt.Errorf("rdf: rule %s: conclusion variable ?%s unbound", r.Name, t.Value)
			}
		}
	}
	return nil
}

// ChainStats reports forward-chaining work: Rounds is the number of
// evaluation rounds run, Derived the number of new statements added to
// the graph, and Derivations the number of conclusion instantiations
// produced — Derivations minus Derived is pure re-derivation waste. On
// linear-recursive rule sets semi-naive evaluation produces each fact
// exactly once, so Derivations == Derived; the naive strategy re-derives
// the entire closure every round.
type ChainStats struct {
	Rounds      int
	Derived     int
	Derivations int
}

// ForwardChain applies the rules to the graph until fixpoint, asserting
// every derivable statement. It returns the number of new statements and
// supports the paper's Figure 5 loop: analysis results enter the store,
// inference generates new facts. maxIterations bounds runaway rule sets
// (0 means 1000).
//
// Evaluation is semi-naive: each round joins rule premises only against
// the delta derived in the previous round (see ForwardChainStats).
func ForwardChain(g *Graph, rules []Rule, maxIterations int) (int, error) {
	stats, err := ForwardChainStats(g, rules, maxIterations)
	return stats.Derived, err
}

// ForwardChainStats is ForwardChain with delta accounting. Each round a
// rule with premises P1..Pk is evaluated once per premise index i, with
// Pi scanning only the previous round's delta, P1..Pi-1 the pre-delta
// graph, and Pi+1..Pk the full graph — every premise combination that
// includes at least one delta fact is enumerated exactly once, and
// combinations entirely inside the older graph (already derived in an
// earlier round) are never revisited. Facts derived in a round become the
// next round's delta; the initial delta is the whole graph, making round
// one equivalent to a naive round. On non-convergence the stats
// accumulated so far are returned alongside the error.
func ForwardChainStats(g *Graph, rules []Rule, maxIterations int) (ChainStats, error) {
	var stats ChainStats
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return stats, err
		}
	}
	if maxIterations <= 0 {
		maxIterations = 1000
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if o := g.obs; o != nil {
		start := time.Now()
		defer func() {
			o.chain.Observe(time.Since(start))
			o.rounds.Add(uint64(stats.Rounds))
			o.derived.Add(uint64(stats.Derived))
		}()
	}
	compiled, err := g.compileRules(rules)
	if err != nil {
		return stats, err
	}
	deltaList := make([]triple, 0, len(g.stmts))
	for t := range g.stmts {
		deltaList = append(deltaList, t)
	}
	deltaSet := make(map[triple]struct{}, len(deltaList))
	for _, t := range deltaList {
		deltaSet[t] = struct{}{}
	}
	for round := 0; round < maxIterations; round++ {
		newList, newSet := g.chainRound(compiled, deltaList, deltaSet, &stats)
		stats.Rounds++
		if len(newList) == 0 {
			return stats, nil
		}
		for _, t := range newList {
			g.addLocked(t)
		}
		stats.Derived += len(newList)
		deltaList, deltaSet = newList, newSet
	}
	return stats, fmt.Errorf("rdf: forward chaining did not converge in %d iterations", maxIterations)
}

// ForwardChainNaive is the pre-semi-naive evaluation strategy, kept as
// the measured baseline for experiment E17 and TestRDFInferenceShape:
// every round joins every rule against the full graph, re-deriving the
// whole closure so far. It buffers each round's conclusions exactly like
// the semi-naive evaluator, so both strategies add the same fact set in
// every round and differ only in Derivations and work done. On
// non-convergence the stats so far are returned alongside the error.
func ForwardChainNaive(g *Graph, rules []Rule, maxIterations int) (ChainStats, error) {
	var stats ChainStats
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return stats, err
		}
	}
	if maxIterations <= 0 {
		maxIterations = 1000
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	compiled, err := g.compileRules(rules)
	if err != nil {
		return stats, err
	}
	for round := 0; round < maxIterations; round++ {
		newList, _ := g.chainRound(compiled, nil, nil, &stats)
		stats.Rounds++
		if len(newList) == 0 {
			return stats, nil
		}
		for _, t := range newList {
			g.addLocked(t)
		}
		stats.Derived += len(newList)
	}
	return stats, fmt.Errorf("rdf: forward chaining did not converge in %d iterations", maxIterations)
}

// crule is a rule compiled to ID form over a shared variable-slot space:
// premises and conclusions reference the same slots, so a premise
// solution row instantiates conclusions without any map lookups.
type crule struct {
	name  string
	prem  []cpat
	concl []cpat
	nvars int
}

// compileRules interns every rule constant (caller holds the write lock).
// Interning rather than looking up matters: a premise constant that no
// stored fact mentions yet may start matching once another rule derives
// it, so its ID must exist up front.
func (g *Graph) compileRules(rules []Rule) ([]crule, error) {
	compiled := make([]crule, len(rules))
	for i, r := range rules {
		all := make([]Statement, 0, len(r.Premises)+len(r.Conclusions))
		all = append(all, r.Premises...)
		all = append(all, r.Conclusions...)
		pats, vars := g.compileBGP(all, true)
		compiled[i] = crule{
			name:  r.Name,
			prem:  pats[:len(r.Premises)],
			concl: pats[len(r.Premises):],
			nvars: len(vars),
		}
		for ci, c := range compiled[i].concl {
			for pos := 0; pos < 3; pos++ {
				if c.kind[pos] == cWild {
					return nil, fmt.Errorf("rdf: rule %s produced non-ground %s", r.Name, r.Conclusions[ci])
				}
			}
		}
	}
	return compiled, nil
}

// chainRound evaluates one round of every rule, buffering conclusions
// instead of mutating the graph mid-join. With a nil deltaSet it runs one
// naive round (all premises over the full graph); otherwise it runs the
// semi-naive premise-splitting described on ForwardChainStats. It returns
// the new (deduplicated, not-yet-stored) triples. Caller holds the write
// lock.
func (g *Graph) chainRound(compiled []crule, deltaList []triple, deltaSet map[triple]struct{}, stats *ChainStats) ([]triple, map[triple]struct{}) {
	var newList []triple
	newSet := make(map[triple]struct{})
	for ri := range compiled {
		r := &compiled[ri]
		variants := 1
		if deltaSet != nil && len(r.prem) > 0 {
			variants = len(r.prem)
		}
		pats := make([]cpat, len(r.prem))
		row := make([]uint32, r.nvars)
		for v := 0; v < variants; v++ {
			copy(pats, r.prem)
			if deltaSet != nil {
				for j := range pats {
					switch {
					case j < v:
						pats[j].src = srcOld
					case j == v:
						pats[j].src = srcDelta
					default:
						pats[j].src = srcFull
					}
				}
			}
			exec := solveExec{
				g:         g,
				pats:      pats,
				order:     g.planOrder(pats, r.nvars, len(deltaList)),
				row:       row,
				deltaList: deltaList,
				deltaSet:  deltaSet,
			}
			exec.emit = func(row []uint32) {
				for _, c := range r.concl {
					stats.Derivations++
					var t triple
					for pos := 0; pos < 3; pos++ {
						if c.kind[pos] == cConst {
							t[pos] = c.id[pos]
						} else {
							t[pos] = row[c.slot[pos]]
						}
					}
					if _, in := g.stmts[t]; in {
						continue
					}
					if _, in := newSet[t]; in {
						continue
					}
					newSet[t] = struct{}{}
					newList = append(newList, t)
				}
			}
			exec.run()
		}
	}
	return newList, newSet
}

// BackwardChain proves goal (a pattern, possibly with variables) against
// the graph plus rules, goal-directed with tabling: in-progress goal shapes
// cut cycles, and completed goals' answers are cached and reused. This is
// the paper's "tabled backward chaining" execution strategy.
//
// The tabling is approximate: answers cached for a goal that completed
// under a cycle cut may under-report bindings for adversarially
// mutually-recursive rule sets. For linear-recursive rules (transitivity,
// subsumption, reachability — everything this repository uses) results are
// complete; when in doubt, ForwardChain materializes the exact fixpoint.
func BackwardChain(g *Graph, rules []Rule, goal Statement, maxDepth int) ([]Binding, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	if maxDepth <= 0 {
		maxDepth = 32
	}
	p := &prover{
		g:          g,
		rules:      rules,
		maxDepth:   maxDepth,
		inProgress: make(map[string]bool),
		solved:     make(map[string][]Statement),
	}
	return p.prove(goal, Binding{}, 0), nil
}

type prover struct {
	g          *Graph
	rules      []Rule
	maxDepth   int
	inProgress map[string]bool
	// solved tables completed goals: canonical pattern -> the ground
	// statements that satisfy it. Without answer tabling, recursive rules
	// (transitivity) recompute each subgoal's closure at every use and
	// the search is exponential in the derivation depth.
	solved map[string][]Statement
}

// prove returns bindings extending b under which goal holds.
func (p *prover) prove(goal Statement, b Binding, depth int) []Binding {
	if depth > p.maxDepth {
		return nil
	}
	ground := substitute(goal, b)
	// Goals are tabled by shape: variable names are canonicalized to
	// positional placeholders so a renamed copy of a goal (the same
	// pattern at a deeper recursion level) shares its tabling slot.
	key := canonicalGoalKey(ground)
	// Answer table: a completed goal's satisfying statements are reused
	// instead of re-derived.
	if stmts, done := p.solved[key]; done {
		var results []Binding
		for _, s := range stmts {
			if nb := unify(ground, s, b); nb != nil {
				results = append(results, nb)
			}
		}
		return dedupeBindings(results)
	}
	var results []Binding
	var stmts []Statement
	seenStmt := make(map[string]bool)
	record := func(nb Binding) {
		results = append(results, nb)
		s := substitute(ground, nb)
		if s.Ground() && !seenStmt[s.key()] {
			seenStmt[s.key()] = true
			stmts = append(stmts, s)
		}
	}
	// Facts.
	for _, s := range p.g.Match(ground) {
		if nb := unify(ground, s, b); nb != nil {
			record(nb)
		}
	}
	// Rules: cut cycles by refusing to re-enter a goal shape already
	// being proven on this path. Re-entrant results are incomplete, so
	// they are NOT recorded in the answer table.
	if p.inProgress[key] {
		return results
	}
	p.inProgress[key] = true
	defer delete(p.inProgress, key)
	for _, rule := range p.rules {
		renamed := renameRule(rule, depth)
		for _, c := range renamed.Conclusions {
			// Unify the goal with the conclusion in a fresh scope.
			nb := unifyPatterns(ground, c, Binding{})
			if nb == nil {
				continue
			}
			// Prove all premises under the rule-scope binding.
			premiseBindings := p.proveAll(renamed.Premises, nb, depth+1)
			for _, pb := range premiseBindings {
				// Project the rule-scope solution back onto the goal's
				// variables.
				final := b.clone()
				solved := substitute(substitute(c, pb), pb)
				if merged := unify(ground, solved, final); merged != nil {
					record(merged)
				}
			}
		}
	}
	results = dedupeBindings(results)
	// The goal completed at top-of-path: its answers are final for this
	// BackwardChain invocation.
	p.solved[key] = stmts
	return results
}

func (p *prover) proveAll(premises []Statement, b Binding, depth int) []Binding {
	results := []Binding{b}
	for _, prem := range premises {
		var next []Binding
		for _, cur := range results {
			next = append(next, p.prove(prem, cur, depth)...)
		}
		results = next
		if len(results) == 0 {
			return nil
		}
	}
	return results
}

// unifyPatterns unifies two patterns (either may contain variables),
// binding goal variables to conclusion terms and vice versa. Only bindings
// of the second pattern's variables are recorded (rule scope).
func unifyPatterns(goal, concl Statement, b Binding) Binding {
	out := b.clone()
	pairs := [][2]Term{{goal.S, concl.S}, {goal.P, concl.P}, {goal.O, concl.O}}
	for _, pair := range pairs {
		gt, ct := pair[0], pair[1]
		switch {
		case ct.IsVar():
			if cur, ok := out[ct.Value]; ok {
				if !gt.IsVar() && cur != gt {
					return nil
				}
			} else if !gt.IsVar() && !gt.Zero() {
				out[ct.Value] = gt
			}
		case gt.IsVar() || gt.Zero():
			// Goal variable against a ground conclusion term: fine, the
			// final unify after proving will bind it.
		default:
			if gt != ct {
				return nil
			}
		}
	}
	return out
}

// renameRule makes rule variables depth-unique to avoid capture.
func renameRule(r Rule, depth int) Rule {
	suffix := fmt.Sprintf("#%d", depth)
	ren := func(t Term) Term {
		if t.IsVar() {
			return NewVar(t.Value + suffix)
		}
		return t
	}
	out := Rule{Name: r.Name}
	for _, p := range r.Premises {
		out.Premises = append(out.Premises, Statement{S: ren(p.S), P: ren(p.P), O: ren(p.O)})
	}
	for _, c := range r.Conclusions {
		out.Conclusions = append(out.Conclusions, Statement{S: ren(c.S), P: ren(c.P), O: ren(c.O)})
	}
	return out
}

// canonicalGoalKey renders a goal with variable names replaced by
// positional placeholders (first distinct variable -> ?0, second -> ?1,
// ...), so structurally identical goals that differ only in variable
// naming share one tabling slot while repeated-variable patterns such as
// "?x p ?x" stay distinct from "?x p ?y".
func canonicalGoalKey(s Statement) string {
	names := make(map[string]int, 3)
	part := func(t Term) string {
		if t.Zero() {
			return "?_"
		}
		if t.IsVar() {
			id, ok := names[t.Value]
			if !ok {
				id = len(names)
				names[t.Value] = id
			}
			return fmt.Sprintf("?%d", id)
		}
		return t.key()
	}
	return part(s.S) + "\x01" + part(s.P) + "\x01" + part(s.O)
}

func dedupeBindings(bs []Binding) []Binding {
	seen := make(map[string]bool, len(bs))
	var out []Binding
	for _, b := range bs {
		key := bindingKey(b)
		if !seen[key] {
			seen[key] = true
			out = append(out, b)
		}
	}
	return out
}

func bindingKey(b Binding) string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	// Insertion-order independence.
	sortStrings(keys)
	var sb []byte
	for _, k := range keys {
		sb = append(sb, k...)
		sb = append(sb, 0)
		sb = append(sb, b[k].key()...)
		sb = append(sb, 1)
	}
	return string(sb)
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TransitiveRules returns the transitive reasoner's rule set for class and
// property lattices (paper: "a transitive reasoner with support for storing
// and traversing class and property lattices").
func TransitiveRules() []Rule {
	return []Rule{
		{
			Name: "subclass-transitive",
			Premises: []Statement{
				{S: NewVar("a"), P: NewIRI(RDFSSubClassOf), O: NewVar("b")},
				{S: NewVar("b"), P: NewIRI(RDFSSubClassOf), O: NewVar("c")},
			},
			Conclusions: []Statement{
				{S: NewVar("a"), P: NewIRI(RDFSSubClassOf), O: NewVar("c")},
			},
		},
		{
			Name: "subproperty-transitive",
			Premises: []Statement{
				{S: NewVar("a"), P: NewIRI(RDFSSubPropertyOf), O: NewVar("b")},
				{S: NewVar("b"), P: NewIRI(RDFSSubPropertyOf), O: NewVar("c")},
			},
			Conclusions: []Statement{
				{S: NewVar("a"), P: NewIRI(RDFSSubPropertyOf), O: NewVar("c")},
			},
		},
	}
}

// RDFSRules returns the RDF-Schema entailment subset the paper's "RDF
// Schema rule reasoner" implements: rdfs2 (domain), rdfs3 (range), rdfs5
// (subPropertyOf transitivity), rdfs7 (property inheritance), rdfs9 (class
// membership inheritance), rdfs11 (subClassOf transitivity).
func RDFSRules() []Rule {
	v := NewVar
	iri := NewIRI
	return []Rule{
		{
			Name: "rdfs2-domain",
			Premises: []Statement{
				{S: v("p"), P: iri(RDFSDomain), O: v("c")},
				{S: v("x"), P: v("p"), O: v("y")},
			},
			Conclusions: []Statement{{S: v("x"), P: iri(RDFType), O: v("c")}},
		},
		{
			Name: "rdfs3-range",
			Premises: []Statement{
				{S: v("p"), P: iri(RDFSRange), O: v("c")},
				{S: v("x"), P: v("p"), O: v("y")},
			},
			Conclusions: []Statement{{S: v("y"), P: iri(RDFType), O: v("c")}},
		},
		{
			Name: "rdfs5-subproperty-transitive",
			Premises: []Statement{
				{S: v("p"), P: iri(RDFSSubPropertyOf), O: v("q")},
				{S: v("q"), P: iri(RDFSSubPropertyOf), O: v("r")},
			},
			Conclusions: []Statement{{S: v("p"), P: iri(RDFSSubPropertyOf), O: v("r")}},
		},
		{
			Name: "rdfs7-subproperty-inheritance",
			Premises: []Statement{
				{S: v("p"), P: iri(RDFSSubPropertyOf), O: v("q")},
				{S: v("x"), P: v("p"), O: v("y")},
			},
			Conclusions: []Statement{{S: v("x"), P: v("q"), O: v("y")}},
		},
		{
			Name: "rdfs9-subclass-membership",
			Premises: []Statement{
				{S: v("c"), P: iri(RDFSSubClassOf), O: v("d")},
				{S: v("x"), P: iri(RDFType), O: v("c")},
			},
			Conclusions: []Statement{{S: v("x"), P: iri(RDFType), O: v("d")}},
		},
		{
			Name: "rdfs11-subclass-transitive",
			Premises: []Statement{
				{S: v("c"), P: iri(RDFSSubClassOf), O: v("d")},
				{S: v("d"), P: iri(RDFSSubClassOf), O: v("e")},
			},
			Conclusions: []Statement{{S: v("c"), P: iri(RDFSSubClassOf), O: v("e")}},
		},
	}
}
