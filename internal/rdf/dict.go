package rdf

// wildID marks an unbound position in internal ID patterns and an unbound
// variable slot in solver rows. Dictionary IDs are assigned densely from
// zero, so they can never collide with it.
const wildID = ^uint32(0)

// termDict is the two-way symbol table at the heart of the interned
// store: each distinct Term is assigned a dense uint32 ID on first sight,
// after which statements, indexes, and join rows handle IDs only — term
// bytes are touched once at the boundary, never inside a join.
//
// IDs are never reclaimed: Remove leaves dictionary entries in place so
// IDs stay stable for compiled rule patterns and concurrent readers. The
// dictionary grows with the number of distinct terms ever seen, which for
// this workload (a per-user knowledge base) is bounded by the vocabulary,
// not the statement count. Synchronization is the owning Graph's lock.
type termDict struct {
	ids   map[Term]uint32
	terms []Term
}

func newTermDict() *termDict {
	return &termDict{ids: make(map[Term]uint32)}
}

// intern returns t's ID, assigning the next free one on first sight.
func (d *termDict) intern(t Term) uint32 {
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := uint32(len(d.terms))
	d.ids[t] = id
	d.terms = append(d.terms, t)
	return id
}

// lookup returns t's ID without assigning one. A miss means no stored
// statement can contain t.
func (d *termDict) lookup(t Term) (uint32, bool) {
	id, ok := d.ids[t]
	return id, ok
}

// term maps an ID back to its Term.
func (d *termDict) term(id uint32) Term { return d.terms[id] }

// compareTerm orders terms by (Kind, Value) without building key strings;
// it backs the sorted deterministic contract of Match/All/Query.
func compareTerm(a, b Term) int {
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	if a.Value != b.Value {
		if a.Value < b.Value {
			return -1
		}
		return 1
	}
	return 0
}

// compareStatement orders statements by (S, P, O) term order.
func compareStatement(a, b Statement) int {
	if c := compareTerm(a.S, b.S); c != 0 {
		return c
	}
	if c := compareTerm(a.P, b.P); c != 0 {
		return c
	}
	return compareTerm(a.O, b.O)
}
