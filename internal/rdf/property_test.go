package rdf

import (
	"fmt"
	"testing"
	"testing/quick"
)

// Property tests on the triple store's core invariants.

func genStatement(a, b, c uint8) Statement {
	return st(fmt.Sprintf("s%d", a%16), fmt.Sprintf("p%d", b%8), fmt.Sprintf("o%d", c%16))
}

func TestAddMatchConsistencyProperty(t *testing.T) {
	// Property: after adding any set of statements, every added statement
	// is found by Has, by a fully-bound Match, and by each single-position
	// pattern.
	f := func(triples [][3]uint8) bool {
		g := NewGraph()
		for _, tr := range triples {
			s := genStatement(tr[0], tr[1], tr[2])
			if _, err := g.Add(s); err != nil {
				return false
			}
		}
		for _, tr := range triples {
			s := genStatement(tr[0], tr[1], tr[2])
			if !g.Has(s) {
				return false
			}
			if len(g.Match(s)) != 1 {
				return false
			}
			found := false
			for _, m := range g.Match(Statement{S: s.S}) {
				if m == s {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddRemoveRoundTripProperty(t *testing.T) {
	// Property: adding then removing a statement restores Len and makes
	// every index forget it.
	f := func(a, b, c uint8, extra [][3]uint8) bool {
		g := NewGraph()
		for _, tr := range extra {
			if _, err := g.Add(genStatement(tr[0], tr[1], tr[2])); err != nil {
				return false
			}
		}
		before := g.Len()
		s := genStatement(a, b, c)
		added, err := g.Add(s)
		if err != nil {
			return false
		}
		if !added {
			// Already present via extra; removal then drops it.
			g.Remove(s)
			return g.Len() == before-1 && !g.Has(s)
		}
		g.Remove(s)
		if g.Len() != before || g.Has(s) {
			return false
		}
		for _, m := range g.Match(Statement{P: s.P}) {
			if m == s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchSubsetOfAllProperty(t *testing.T) {
	// Property: any pattern's matches are a subset of All() and each
	// result actually matches the pattern.
	f := func(triples [][3]uint8, ps, pp, po uint8, maskBits uint8) bool {
		g := NewGraph()
		for _, tr := range triples {
			if _, err := g.Add(genStatement(tr[0], tr[1], tr[2])); err != nil {
				return false
			}
		}
		pattern := genStatement(ps, pp, po)
		if maskBits&1 != 0 {
			pattern.S = Term{}
		}
		if maskBits&2 != 0 {
			pattern.P = Term{}
		}
		if maskBits&4 != 0 {
			pattern.O = Term{}
		}
		all := make(map[string]bool)
		for _, s := range g.All() {
			all[s.key()] = true
		}
		for _, m := range g.Match(pattern) {
			if !all[m.key()] {
				return false
			}
			if bound(pattern.S) && m.S != pattern.S {
				return false
			}
			if bound(pattern.P) && m.P != pattern.P {
				return false
			}
			if bound(pattern.O) && m.O != pattern.O {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForwardChainMonotoneProperty(t *testing.T) {
	// Property: forward chaining only adds statements (never removes) and
	// every original statement survives.
	f := func(links []uint8) bool {
		g := NewGraph()
		var originals []Statement
		for i, l := range links {
			s := st(fmt.Sprintf("c%d", l%12), RDFSSubClassOf, fmt.Sprintf("c%d", (l+uint8(i)+1)%12))
			if s.S == s.O {
				continue
			}
			if _, err := g.Add(s); err != nil {
				return false
			}
			originals = append(originals, s)
		}
		before := g.Len()
		if _, err := ForwardChain(g, TransitiveRules(), 0); err != nil {
			return false
		}
		if g.Len() < before {
			return false
		}
		for _, s := range originals {
			if !g.Has(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
