package rdf

import (
	"fmt"
	"testing"

	"repro/internal/metrics"
)

func TestInstrumentRecordsSolveAndChain(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 20; i++ {
		g.MustAdd(st(fmt.Sprintf("n%d", i), "next", fmt.Sprintf("n%d", i+1)))
	}
	set := metrics.NewSet()
	g.Instrument(set)

	patterns := []Statement{
		{S: NewVar("a"), P: NewIRI("next"), O: NewVar("b")},
		{S: NewVar("b"), P: NewIRI("next"), O: NewVar("c")},
	}
	if got := g.Solve(patterns); len(got) == 0 {
		t.Fatal("no solutions for two-hop pattern")
	}

	hist := set.Histogram("richsdk_rdf_solve_seconds", "")
	if got := hist.Snapshot().Count; got != 1 {
		t.Errorf("solve histogram count = %d, want 1", got)
	}
	if got := set.Counter("richsdk_rdf_solve_patterns_total", "").Value(); got != 2 {
		t.Errorf("patterns counter = %d, want 2", got)
	}

	rules := []Rule{{
		Name:        "trans",
		Premises:    []Statement{{S: NewVar("x"), P: NewIRI("next"), O: NewVar("y")}, {S: NewVar("y"), P: NewIRI("next"), O: NewVar("z")}},
		Conclusions: []Statement{{S: NewVar("x"), P: NewIRI("reach"), O: NewVar("z")}},
	}}
	stats, err := ForwardChainStats(g, rules, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Derived == 0 {
		t.Fatal("chain derived nothing; test premise broken")
	}
	if got := set.Histogram("richsdk_rdf_chain_seconds", "").Snapshot().Count; got != 1 {
		t.Errorf("chain histogram count = %d, want 1", got)
	}
	if got := set.Counter("richsdk_rdf_chain_rounds_total", "").Value(); got != uint64(stats.Rounds) {
		t.Errorf("rounds counter = %d, want %d", got, stats.Rounds)
	}
	if got := set.Counter("richsdk_rdf_chain_derived_total", "").Value(); got != uint64(stats.Derived) {
		t.Errorf("derived counter = %d, want %d", got, stats.Derived)
	}
	gauge := set.Gauge("richsdk_intern_dict_size", "", metrics.Label{Name: "dict", Value: "rdf"})
	if got := gauge.Value(); got != int64(g.dict.Len()) {
		t.Errorf("dict gauge = %d, want %d", got, g.dict.Len())
	}
}

func TestInstrumentNilDetaches(t *testing.T) {
	g := NewGraph()
	g.MustAdd(st("a", "p", "b"))
	set := metrics.NewSet()
	g.Instrument(set)
	g.Solve([]Statement{{S: NewVar("s"), P: NewIRI("p"), O: NewVar("o")}})
	hist := set.Histogram("richsdk_rdf_solve_seconds", "")
	if got := hist.Snapshot().Count; got != 1 {
		t.Fatalf("solve histogram count = %d, want 1", got)
	}
	g.Instrument(nil)
	g.Solve([]Statement{{S: NewVar("s"), P: NewIRI("p"), O: NewVar("o")}})
	if got := hist.Snapshot().Count; got != 1 {
		t.Errorf("detached graph still recorded: count = %d, want 1", got)
	}
	// Dictionary growth after detach must not move the (detached) gauge.
	gauge := set.Gauge("richsdk_intern_dict_size", "", metrics.Label{Name: "dict", Value: "rdf"})
	before := gauge.Value()
	g.MustAdd(st("fresh-subject", "fresh-pred", "fresh-object"))
	if got := gauge.Value(); got != before {
		t.Errorf("detached dict gauge moved: %d -> %d", before, got)
	}
}
