package rdf

import (
	"math"
	"testing"
)

func confRule(name string, conf float64) ConfidentRule {
	return ConfidentRule{
		Confidence: conf,
		Rule: Rule{
			Name: name,
			Premises: []Statement{
				{S: NewVar("x"), P: NewIRI("parentOf"), O: NewVar("y")},
				{S: NewVar("y"), P: NewIRI("parentOf"), O: NewVar("z")},
			},
			Conclusions: []Statement{
				{S: NewVar("x"), P: NewIRI("grandparentOf"), O: NewVar("z")},
			},
		},
	}
}

func TestConfidencesSetGetDefault(t *testing.T) {
	c := NewConfidences(0.8)
	s := st("a", "p", "b")
	if got := c.Get(s); got != 0.8 {
		t.Errorf("default = %v, want 0.8", got)
	}
	if err := c.Set(s, 0.6); err != nil {
		t.Fatal(err)
	}
	if got := c.Get(s); got != 0.6 {
		t.Errorf("Get = %v, want 0.6", got)
	}
	if err := c.Set(s, 0); err == nil {
		t.Error("level 0 accepted")
	}
	if err := c.Set(s, 1.1); err == nil {
		t.Error("level 1.1 accepted")
	}
}

func TestConfidencesDefaultClamped(t *testing.T) {
	c := NewConfidences(-1)
	if got := c.Get(st("a", "p", "b")); got != 1 {
		t.Errorf("clamped default = %v, want 1", got)
	}
}

func TestDerivedConfidenceIsMinTimesRule(t *testing.T) {
	g := NewGraph()
	conf := NewConfidences(1)
	p1 := st("alice", "parentOf", "bob")
	p2 := st("bob", "parentOf", "carol")
	g.MustAdd(p1)
	g.MustAdd(p2)
	if err := conf.Set(p1, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := conf.Set(p2, 0.6); err != nil {
		t.Fatal(err)
	}
	changed, err := ForwardChainConfidence(g, conf, []ConfidentRule{confRule("gp", 0.5)}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 {
		t.Fatal("nothing derived")
	}
	derived := st("alice", "grandparentOf", "carol")
	if !g.Has(derived) {
		t.Fatal("fact not derived")
	}
	// min(0.9, 0.6) * 0.5 = 0.3
	if got := conf.Get(derived); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("derived confidence = %v, want 0.3", got)
	}
}

func TestAlternativeDerivationKeepsBest(t *testing.T) {
	g := NewGraph()
	conf := NewConfidences(1)
	// Two rules deriving the same fact from differently trusted premises.
	weak := st("x", "weakSign", "y")
	strong := st("x", "strongSign", "y")
	g.MustAdd(weak)
	g.MustAdd(strong)
	if err := conf.Set(weak, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := conf.Set(strong, 0.9); err != nil {
		t.Fatal(err)
	}
	mk := func(name, pred string) ConfidentRule {
		return ConfidentRule{
			Confidence: 1,
			Rule: Rule{
				Name:        name,
				Premises:    []Statement{{S: NewVar("a"), P: NewIRI(pred), O: NewVar("b")}},
				Conclusions: []Statement{{S: NewVar("a"), P: NewIRI("related"), O: NewVar("b")}},
			},
		}
	}
	if _, err := ForwardChainConfidence(g, conf, []ConfidentRule{mk("w", "weakSign"), mk("s", "strongSign")}, 0, 0); err != nil {
		t.Fatal(err)
	}
	derived := st("x", "related", "y")
	if got := conf.Get(derived); got != 0.9 {
		t.Errorf("best-derivation confidence = %v, want 0.9", got)
	}
}

func TestConfidenceFlowsThroughChains(t *testing.T) {
	// a->b->c->d subclass chain with decreasing trust: the transitive
	// closure fact a<d carries the weakest link's level.
	g := NewGraph()
	conf := NewConfidences(1)
	links := []struct {
		s Statement
		l float64
	}{
		{st("a", RDFSSubClassOf, "b"), 1.0},
		{st("b", RDFSSubClassOf, "c"), 0.5},
		{st("c", RDFSSubClassOf, "d"), 0.8},
	}
	for _, lk := range links {
		g.MustAdd(lk.s)
		if err := conf.Set(lk.s, lk.l); err != nil {
			t.Fatal(err)
		}
	}
	rules := make([]ConfidentRule, 0, len(TransitiveRules()))
	for _, r := range TransitiveRules() {
		rules = append(rules, ConfidentRule{Rule: r, Confidence: 1})
	}
	if _, err := ForwardChainConfidence(g, conf, rules, 0, 0); err != nil {
		t.Fatal(err)
	}
	ad := st("a", RDFSSubClassOf, "d")
	if !g.Has(ad) {
		t.Fatal("closure fact missing")
	}
	if got := conf.Get(ad); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("chain confidence = %v, want 0.5 (weakest link)", got)
	}
}

func TestThresholdPrunesWeakDerivations(t *testing.T) {
	g := NewGraph()
	conf := NewConfidences(1)
	p1 := st("alice", "parentOf", "bob")
	p2 := st("bob", "parentOf", "carol")
	g.MustAdd(p1)
	g.MustAdd(p2)
	if err := conf.Set(p1, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := ForwardChainConfidence(g, conf, []ConfidentRule{confRule("gp", 1)}, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	if g.Has(st("alice", "grandparentOf", "carol")) {
		t.Error("sub-threshold derivation asserted")
	}
}

func TestConfidenceChainIdempotent(t *testing.T) {
	g := NewGraph()
	conf := NewConfidences(1)
	g.MustAdd(st("a", "parentOf", "b"))
	g.MustAdd(st("b", "parentOf", "c"))
	rules := []ConfidentRule{confRule("gp", 0.9)}
	if _, err := ForwardChainConfidence(g, conf, rules, 0, 0); err != nil {
		t.Fatal(err)
	}
	changed, err := ForwardChainConfidence(g, conf, rules, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 {
		t.Errorf("second run changed %d levels, want 0", changed)
	}
}

func TestConfidenceRuleValidation(t *testing.T) {
	bad := ConfidentRule{Rule: Rule{
		Name:        "bad",
		Premises:    []Statement{{S: NewVar("x"), P: NewIRI("p"), O: NewVar("y")}},
		Conclusions: []Statement{{S: NewVar("z"), P: NewIRI("q"), O: NewVar("y")}},
	}}
	if _, err := ForwardChainConfidence(NewGraph(), NewConfidences(1), []ConfidentRule{bad}, 0, 0); err == nil {
		t.Error("invalid rule accepted")
	}
}
