package codec

import (
	"strings"
	"testing"
)

var benchPayload = []byte(strings.Repeat("knowledge base statement about markets. ", 256))

func benchCodec(b *testing.B, c Codec) {
	b.Helper()
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPayload)))
	for i := 0; i < b.N; i++ {
		enc, err := c.Encode(benchPayload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGzipRoundTrip(b *testing.B) { benchCodec(b, Gzip{}) }

func BenchmarkAESGCMRoundTrip(b *testing.B) {
	c, err := NewAESGCM("bench key")
	if err != nil {
		b.Fatal(err)
	}
	benchCodec(b, c)
}

func BenchmarkChainGzipAESRoundTrip(b *testing.B) {
	enc, err := NewAESGCM("bench key")
	if err != nil {
		b.Fatal(err)
	}
	benchCodec(b, Chain{Gzip{}, enc})
}
