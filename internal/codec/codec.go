// Package codec provides the encryption and compression envelopes the
// personalized knowledge base applies before persisting data or sending it
// to a remote store (paper §3: encrypt before storing so confidential data
// cannot leak even from an untrusted store; compress before sending to save
// bandwidth and storage charges). Encryption is AES-256-GCM (authenticated);
// compression is gzip. Codecs compose: Chain(Compress, Encrypt) compresses
// then encrypts, which is the correct order (ciphertext does not compress).
package codec

import (
	"bytes"
	"compress/gzip"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// Codec transforms byte payloads symmetrically.
type Codec interface {
	// Encode transforms plaintext into the stored form.
	Encode(data []byte) ([]byte, error)
	// Decode inverts Encode.
	Decode(data []byte) ([]byte, error)
}

// Identity passes data through unchanged.
type Identity struct{}

var _ Codec = Identity{}

// Encode implements Codec.
func (Identity) Encode(data []byte) ([]byte, error) { return data, nil }

// Decode implements Codec.
func (Identity) Decode(data []byte) ([]byte, error) { return data, nil }

// Gzip compresses with gzip at the given level.
type Gzip struct {
	// Level is a compress/gzip level; 0 means gzip.DefaultCompression.
	Level int
}

var _ Codec = Gzip{}

// Encode implements Codec.
func (g Gzip) Encode(data []byte) ([]byte, error) {
	level := g.Level
	if level == 0 {
		level = gzip.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, level)
	if err != nil {
		return nil, fmt.Errorf("codec: gzip level: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return nil, fmt.Errorf("codec: gzip write: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("codec: gzip close: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (g Gzip) Decode(data []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("codec: gzip open: %w", err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("codec: gzip read: %w", err)
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("codec: gzip close: %w", err)
	}
	return out, nil
}

// AESGCM encrypts with AES-256-GCM. Construct with NewAESGCM.
type AESGCM struct {
	aead cipher.AEAD
}

var _ Codec = (*AESGCM)(nil)

// NewAESGCM derives a 256-bit key from the passphrase (SHA-256) and returns
// an authenticated encryption codec.
func NewAESGCM(passphrase string) (*AESGCM, error) {
	if passphrase == "" {
		return nil, errors.New("codec: empty passphrase")
	}
	key := sha256.Sum256([]byte(passphrase))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("codec: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("codec: gcm: %w", err)
	}
	return &AESGCM{aead: aead}, nil
}

// Encode implements Codec: output is nonce || ciphertext.
func (a *AESGCM) Encode(data []byte) ([]byte, error) {
	nonce := make([]byte, a.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("codec: nonce: %w", err)
	}
	return a.aead.Seal(nonce, nonce, data, nil), nil
}

// Decode implements Codec. Tampered or wrongly keyed data fails
// authentication.
func (a *AESGCM) Decode(data []byte) ([]byte, error) {
	ns := a.aead.NonceSize()
	if len(data) < ns {
		return nil, errors.New("codec: ciphertext too short")
	}
	out, err := a.aead.Open(nil, data[:ns], data[ns:], nil)
	if err != nil {
		return nil, fmt.Errorf("codec: decrypt: %w", err)
	}
	return out, nil
}

// Chain composes codecs: Encode applies them left to right, Decode right to
// left.
type Chain []Codec

var _ Codec = Chain(nil)

// Encode implements Codec.
func (c Chain) Encode(data []byte) ([]byte, error) {
	var err error
	for _, step := range c {
		data, err = step.Encode(data)
		if err != nil {
			return nil, err
		}
	}
	return data, nil
}

// Decode implements Codec.
func (c Chain) Decode(data []byte) ([]byte, error) {
	var err error
	for i := len(c) - 1; i >= 0; i-- {
		data, err = c[i].Decode(data)
		if err != nil {
			return nil, err
		}
	}
	return data, nil
}
