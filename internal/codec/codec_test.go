package codec

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, c Codec, data []byte) []byte {
	t.Helper()
	enc, err := c.Encode(data)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return dec
}

func TestIdentityRoundTrip(t *testing.T) {
	data := []byte("hello")
	if got := roundTrip(t, Identity{}, data); !bytes.Equal(got, data) {
		t.Errorf("round trip = %q", got)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	data := []byte(strings.Repeat("the market improved. ", 100))
	if got := roundTrip(t, Gzip{}, data); !bytes.Equal(got, data) {
		t.Error("gzip round trip corrupted data")
	}
}

func TestGzipShrinksRepetitiveData(t *testing.T) {
	data := []byte(strings.Repeat("abcdefgh", 1000))
	enc, err := Gzip{}.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(data)/4 {
		t.Errorf("compressed %d -> %d, expected strong shrink", len(data), len(enc))
	}
}

func TestGzipLevels(t *testing.T) {
	data := []byte(strings.Repeat("compress me please ", 500))
	fast, err := Gzip{Level: 1}.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Gzip{Level: 9}.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) > len(fast) {
		t.Errorf("level 9 (%d) larger than level 1 (%d)", len(best), len(fast))
	}
}

func TestGzipDecodeGarbage(t *testing.T) {
	if _, err := (Gzip{}).Decode([]byte("definitely not gzip")); err == nil {
		t.Error("expected error decoding garbage")
	}
}

func TestAESGCMRoundTrip(t *testing.T) {
	c, err := NewAESGCM("secret passphrase")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("confidential knowledge base record")
	if got := roundTrip(t, c, data); !bytes.Equal(got, data) {
		t.Error("AES round trip corrupted data")
	}
}

func TestAESGCMCiphertextDiffers(t *testing.T) {
	c, err := NewAESGCM("k")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("same plaintext")
	e1, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(e1, e2) {
		t.Error("two encryptions identical — nonce reuse")
	}
	if bytes.Contains(e1, data) {
		t.Error("plaintext visible in ciphertext")
	}
}

func TestAESGCMWrongKeyFails(t *testing.T) {
	c1, err := NewAESGCM("right")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewAESGCM("wrong")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c1.Encode([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Decode(enc); err == nil {
		t.Error("wrong key decrypted successfully")
	}
}

func TestAESGCMTamperDetected(t *testing.T) {
	c, err := NewAESGCM("k")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.Encode([]byte("authentic"))
	if err != nil {
		t.Fatal(err)
	}
	enc[len(enc)-1] ^= 0xFF
	if _, err := c.Decode(enc); err == nil {
		t.Error("tampered ciphertext accepted")
	}
}

func TestAESGCMShortCiphertext(t *testing.T) {
	c, err := NewAESGCM("k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short ciphertext accepted")
	}
}

func TestAESGCMEmptyPassphrase(t *testing.T) {
	if _, err := NewAESGCM(""); err == nil {
		t.Error("empty passphrase accepted")
	}
}

func TestChainCompressThenEncrypt(t *testing.T) {
	enc, err := NewAESGCM("key")
	if err != nil {
		t.Fatal(err)
	}
	chain := Chain{Gzip{}, enc}
	data := []byte(strings.Repeat("knowledge base statement. ", 200))
	out := roundTrip(t, chain, data)
	if !bytes.Equal(out, data) {
		t.Error("chain round trip corrupted data")
	}
	// Compression must happen before encryption: the result should be
	// much smaller than the plaintext despite encryption overhead.
	encoded, err := chain.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(encoded) >= len(data)/2 {
		t.Errorf("chain output %d of %d bytes — compression likely after encryption", len(encoded), len(data))
	}
}

func TestChainEmpty(t *testing.T) {
	data := []byte("untouched")
	if got := roundTrip(t, Chain{}, data); !bytes.Equal(got, data) {
		t.Error("empty chain altered data")
	}
}

func TestRoundTripProperty(t *testing.T) {
	enc, err := NewAESGCM("prop")
	if err != nil {
		t.Fatal(err)
	}
	codecs := map[string]Codec{
		"identity": Identity{},
		"gzip":     Gzip{},
		"aes":      enc,
		"chain":    Chain{Gzip{}, enc},
	}
	for name, c := range codecs {
		c := c
		t.Run(name, func(t *testing.T) {
			f := func(data []byte) bool {
				e, err := c.Encode(data)
				if err != nil {
					return false
				}
				d, err := c.Decode(e)
				if err != nil {
					return false
				}
				if len(data) == 0 {
					return len(d) == 0
				}
				return bytes.Equal(d, data)
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}
