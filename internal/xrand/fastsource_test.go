package xrand

import (
	"math"
	"math/rand"
	"testing"
)

var equivalenceSeeds = []int64{
	0, 1, -1, 2, 42, 19, 89482311,
	mersenne - 1, mersenne, mersenne + 1, -mersenne,
	math.MaxInt64, math.MinInt64, math.MinInt64 + 1,
	1<<40 + 12345, -(1<<40 + 12345),
}

// TestFastSourceMatchesMathRand locks the reimplementation to math/rand
// bit for bit: raw Uint64/Int63 streams, a mid-stream reseed, and the
// derived rand.Rand distributions must all agree exactly.
func TestFastSourceMatchesMathRand(t *testing.T) {
	for _, seed := range equivalenceSeeds {
		ref := rand.NewSource(seed).(rand.Source64)
		got := newFastSource(seed)
		for i := 0; i < 2000; i++ {
			if g, w := got.Uint64(), ref.Uint64(); g != w {
				t.Fatalf("seed %d: Uint64 #%d = %d, want %d", seed, i, g, w)
			}
		}
		for i := 0; i < 100; i++ {
			if g, w := got.Int63(), ref.Int63(); g != w {
				t.Fatalf("seed %d: Int63 #%d = %d, want %d", seed, i, g, w)
			}
		}
		// Reseed mid-stream: both must rewind to the same state.
		ref.Seed(seed + 7)
		got.Seed(seed + 7)
		for i := 0; i < 700; i++ {
			if g, w := got.Uint64(), ref.Uint64(); g != w {
				t.Fatalf("seed %d: post-reseed Uint64 #%d = %d, want %d", seed, i, g, w)
			}
		}
	}
}

func TestFastSourceMatchesRandDistributions(t *testing.T) {
	for _, seed := range equivalenceSeeds {
		ref := rand.New(rand.NewSource(seed))
		got := rand.New(newFastSource(seed))
		for i := 0; i < 300; i++ {
			if g, w := got.Float64(), ref.Float64(); g != w {
				t.Fatalf("seed %d: Float64 #%d = %v, want %v", seed, i, g, w)
			}
			if g, w := got.NormFloat64(), ref.NormFloat64(); g != w {
				t.Fatalf("seed %d: NormFloat64 #%d = %v, want %v", seed, i, g, w)
			}
			if g, w := got.ExpFloat64(), ref.ExpFloat64(); g != w {
				t.Fatalf("seed %d: ExpFloat64 #%d = %v, want %v", seed, i, g, w)
			}
			if g, w := got.Intn(i+1), ref.Intn(i+1); g != w {
				t.Fatalf("seed %d: Intn(%d) = %d, want %d", seed, i+1, g, w)
			}
		}
		gp, wp := got.Perm(50), ref.Perm(50)
		for i := range gp {
			if gp[i] != wp[i] {
				t.Fatalf("seed %d: Perm[%d] = %d, want %d", seed, i, gp[i], wp[i])
			}
		}
	}
}

func BenchmarkSeedFast(b *testing.B) {
	s := newFastSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}

func BenchmarkSeedMathRand(b *testing.B) {
	s := rand.NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}
