// Package xrand provides seeded, deterministic random-number helpers used by
// the simulation substrates: latency distributions (lognormal), skewed key
// popularity (Zipf), and reproducible shuffles.
//
// Every generator is explicitly seeded; nothing in this package reads global
// randomness, so simulations and benchmarks are reproducible run to run.
package xrand

import (
	"math"
	"math/rand"
)

// Source is a deterministic random source. It wraps math/rand with the
// distributions the simulators need. Source is NOT safe for concurrent use;
// create one per goroutine or guard externally.
type Source struct {
	rng *rand.Rand
}

// New returns a Source seeded with seed. The underlying generator is a
// bit-identical reimplementation of rand.NewSource with much cheaper
// seeding (see fastsource.go); every stream it produces is exactly the
// stream rand.New(rand.NewSource(seed)) would.
func New(seed int64) *Source {
	return &Source{rng: rand.New(newFastSource(seed))}
}

// Reseed rewinds the source to the exact state New(seed) would produce,
// letting hot paths keep one Source per worker instead of allocating a
// fresh generator (and its ~5KB state table) for every item.
func (s *Source) Reseed(seed int64) { s.rng.Seed(seed) }

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform value in [0, n). n must be > 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// NormFloat64 returns a standard normal sample.
func (s *Source) NormFloat64() float64 { return s.rng.NormFloat64() }

// Lognormal returns a sample from a lognormal distribution with the given
// location mu and scale sigma (parameters of the underlying normal). It is
// the standard model for service response times: right-skewed with a long
// tail.
func (s *Source) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.rng.NormFloat64())
}

// Exponential returns a sample from an exponential distribution with the
// given mean. mean must be > 0.
func (s *Source) Exponential(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// Bernoulli reports true with probability p (clamped to [0, 1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomly reorders n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Zipf generates values in [0, n) with a Zipfian popularity skew: rank r is
// drawn with probability proportional to 1/(r+1)^theta. It models the
// highly skewed key popularity typical of cache workloads.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a Zipf generator over [0, n) with skew theta (> 1 per
// math/rand's parameterization; 1.07 is the YCSB default).
func NewZipf(src *Source, theta float64, n uint64) *Zipf {
	if theta <= 1 {
		theta = 1.0001
	}
	return &Zipf{z: rand.NewZipf(src.rng, theta, 1, n-1)}
}

// Next returns the next Zipf-distributed value.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// Choice returns a pseudo-random element of items. It panics if items is
// empty, mirroring slice indexing semantics.
func Choice[T any](s *Source, items []T) T {
	return items[s.Intn(len(items))]
}

// Sample returns k distinct pseudo-random elements of items (reservoir
// sampling). If k >= len(items) a shuffled copy of items is returned.
func Sample[T any](s *Source, items []T, k int) []T {
	if k >= len(items) {
		out := make([]T, len(items))
		copy(out, items)
		s.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	out := make([]T, k)
	copy(out, items[:k])
	for i := k; i < len(items); i++ {
		j := s.Intn(i + 1)
		if j < k {
			out[j] = items[i]
		}
	}
	return out
}
