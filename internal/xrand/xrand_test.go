package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := true
	a2 := New(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestLognormalPositiveAndSkewed(t *testing.T) {
	s := New(1)
	var sum float64
	n := 20000
	var med []bool
	for i := 0; i < n; i++ {
		v := s.Lognormal(0, 1)
		if v <= 0 {
			t.Fatalf("lognormal sample %v <= 0", v)
		}
		sum += v
		med = append(med, v < 1)
	}
	mean := sum / float64(n)
	// E[lognormal(0,1)] = exp(0.5) ~= 1.6487
	if math.Abs(mean-math.Exp(0.5)) > 0.1 {
		t.Errorf("mean = %v, want ~%v", mean, math.Exp(0.5))
	}
	// Median should be ~exp(0)=1, i.e. about half of samples below 1.
	below := 0
	for _, b := range med {
		if b {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("fraction below median = %v, want ~0.5", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(2)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += s.Exponential(5)
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.3 {
		t.Errorf("mean = %v, want ~5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(3)
	if s.Bernoulli(0) {
		t.Error("Bernoulli(0) = true")
	}
	if !s.Bernoulli(1) {
		t.Error("Bernoulli(1) = false")
	}
	if s.Bernoulli(-0.5) {
		t.Error("Bernoulli(-0.5) = true")
	}
	if !s.Bernoulli(1.5) {
		t.Error("Bernoulli(1.5) = false")
	}
	hits := 0
	n := 10000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("Bernoulli(0.3) frequency = %v", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(4)
	z := NewZipf(s, 1.1, 1000)
	counts := make(map[uint64]int)
	n := 50000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("Zipf value %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 should dominate: far more popular than rank 100.
	if counts[0] <= counts[100]*5 {
		t.Errorf("Zipf not skewed: count[0]=%d count[100]=%d", counts[0], counts[100])
	}
}

func TestZipfThetaClamped(t *testing.T) {
	s := New(5)
	z := NewZipf(s, 0.5, 10) // invalid theta gets clamped, must not panic
	for i := 0; i < 100; i++ {
		if v := z.Next(); v >= 10 {
			t.Fatalf("value %d out of range", v)
		}
	}
}

func TestChoiceAndSample(t *testing.T) {
	s := New(6)
	items := []string{"a", "b", "c", "d", "e"}
	seen := make(map[string]bool)
	for i := 0; i < 200; i++ {
		seen[Choice(s, items)] = true
	}
	if len(seen) != 5 {
		t.Errorf("Choice over 200 draws hit %d items, want all 5", len(seen))
	}

	sub := Sample(s, items, 3)
	if len(sub) != 3 {
		t.Fatalf("Sample size = %d, want 3", len(sub))
	}
	uniq := make(map[string]bool)
	for _, x := range sub {
		uniq[x] = true
	}
	if len(uniq) != 3 {
		t.Errorf("Sample has duplicates: %v", sub)
	}

	all := Sample(s, items, 10)
	if len(all) != 5 {
		t.Errorf("oversized Sample = %d items, want 5", len(all))
	}
	// Original must not be mutated by the shuffle.
	if items[0] != "a" || items[4] != "e" {
		t.Errorf("Sample mutated input: %v", items)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(7)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}
