package xrand

import (
	"math/rand"
	"sync"
)

// fastSource is a drop-in replacement for math/rand's additive-lagged-
// Fibonacci source (rand.NewSource) that produces the bit-identical
// output stream but seeds several times faster. Seeding dominates when a
// generator is rewound per work item (one Reseed per document on the NLU
// hot path): math/rand fills its 607-word state with 1841 serially
// dependent Lehmer steps, each paying a divide-based Schrage reduction.
// Here the reduction is a Mersenne fold (the modulus is 2^31-1, so
// t mod m folds to (t>>31)+(t&m)) and the state fill runs as three
// independent chains stepping by 48271^3, which the CPU can pipeline
// where the single chain cannot.
//
// The generator state after seeding must match math/rand's exactly:
// vec[i] = u_i(seed) XOR cooked[i], where u_i is a pure function of the
// seed and cooked is math/rand's unexported rngCooked table. The table
// is recovered at init time from an actual rand.NewSource — see
// recoverCooked — so no generated constants are duplicated here and any
// upstream change to the table would surface immediately in the
// equivalence tests rather than silently diverge.
const (
	lfsrLen  = 607
	lfsrTap  = 273
	mersenne = 1<<31 - 1 // modulus of the Lehmer seeding generator
)

// lehmerStep computes 48271*x mod 2^31-1 for x in [1, 2^31-2], the exact
// function of math/rand's seedrand, using a Mersenne fold instead of
// Schrage's decomposition. 48271*x < 2^47, so one fold brings the value
// under 2^31+2^16 and a single conditional subtract canonicalizes it.
func lehmerStep(x uint32) uint32 {
	t := uint64(x) * 48271
	t = (t >> 31) + (t & mersenne)
	if t >= mersenne {
		t -= mersenne
	}
	return uint32(t)
}

// mulmod31 returns a*b mod 2^31-1 for a, b < 2^31. The product can reach
// 2^62, so it takes two folds.
func mulmod31(a, b uint32) uint32 {
	t := uint64(a) * uint64(b)
	t = (t >> 31) + (t & mersenne)
	t = (t >> 31) + (t & mersenne)
	if t >= mersenne {
		t -= mersenne
	}
	return uint32(t)
}

// lehmerStep3 and lehmerStep6 are 48271^3 and 48271^6 mod 2^31-1: the
// per-chain multipliers that let six interleaved chains cover the
// sequence x1,x2,x3,... two vec entries (six values) per round, each
// chain advancing independently so the multiplies pipeline.
var (
	lehmerStep3 = mulmod31(mulmod31(48271, 48271), 48271)
	lehmerStep6 = mulmod31(lehmerStep3, lehmerStep3)
)

// seedInit normalizes the seed exactly as math/rand does and runs the 20
// warm-up Lehmer steps, returning the state from which vec is filled.
func seedInit(seed int64) uint32 {
	seed %= mersenne
	if seed < 0 {
		seed += mersenne
	}
	if seed == 0 {
		seed = 89482311
	}
	x := uint32(seed)
	for i := 0; i < 20; i++ {
		x = lehmerStep(x)
	}
	return x
}

var (
	cookedOnce sync.Once
	cooked     [lfsrLen]uint64
)

// recoverCooked reconstructs math/rand's unexported rngCooked seeding
// table from the observable output stream of a genuinely seeded source.
// The additive generator writes each of its 607 slots exactly once per
// 607 outputs, and every output is vec[feed] + vec[tap] where the tap
// operand is either still the initial value or a previous output:
//
//	step k (1-based): feed_k = (334-k) mod 607, tap_k = 607-k
//	k in [1, 273]:    out_k = V0[334-k] + V0[607-k]   (both initial)
//	k in [274, 607]:  out_k = V0[feed_k] + out_{k-273}
//
// The second band solves directly for the initial slots [0,60] and
// [334,606]; substituting the recovered [334,606] back into the first
// band yields [61,333]. XORing the full initial state V0 with the known
// pure-seed component u_i(seed) isolates the table.
func recoverCooked() {
	src := rand.NewSource(1).(rand.Source64)
	var out [lfsrLen + 1]uint64
	for k := 1; k <= lfsrLen; k++ {
		out[k] = src.Uint64()
	}
	const feed0 = lfsrLen - lfsrTap // 334
	var v0 [lfsrLen]uint64
	for k := lfsrTap + 1; k <= lfsrLen; k++ {
		v0[(feed0-k+2*lfsrLen)%lfsrLen] = out[k] - out[k-lfsrTap]
	}
	for k := 1; k <= lfsrTap; k++ {
		v0[feed0-k] = out[k] - v0[lfsrLen-k]
	}
	x := seedInit(1)
	for i := 0; i < lfsrLen; i++ {
		x = lehmerStep(x)
		u := uint64(x) << 40
		x = lehmerStep(x)
		u ^= uint64(x) << 20
		x = lehmerStep(x)
		u ^= uint64(x)
		cooked[i] = v0[i] ^ u
	}
}

type fastSource struct {
	vec  [lfsrLen]uint64
	tap  int
	feed int
}

func newFastSource(seed int64) *fastSource {
	s := &fastSource{}
	s.Seed(seed)
	return s
}

// Seed initializes the generator to the exact state rand.NewSource(seed)
// produces.
func (s *fastSource) Seed(seed int64) {
	cookedOnce.Do(recoverCooked)
	s.tap = 0
	s.feed = lfsrLen - lfsrTap
	x := seedInit(seed)
	a := lehmerStep(x)
	b := lehmerStep(a)
	c := lehmerStep(b)
	d := mulmod31(lehmerStep3, a)
	e := mulmod31(lehmerStep3, b)
	f := mulmod31(lehmerStep3, c)
	i := 0
	for ; i+1 < lfsrLen; i += 2 {
		s.vec[i] = uint64(a)<<40 ^ uint64(b)<<20 ^ uint64(c) ^ cooked[i]
		s.vec[i+1] = uint64(d)<<40 ^ uint64(e)<<20 ^ uint64(f) ^ cooked[i+1]
		a = mulmod31(lehmerStep6, a)
		b = mulmod31(lehmerStep6, b)
		c = mulmod31(lehmerStep6, c)
		d = mulmod31(lehmerStep6, d)
		e = mulmod31(lehmerStep6, e)
		f = mulmod31(lehmerStep6, f)
	}
	// lfsrLen is odd: the last entry comes from the first chain triple.
	s.vec[i] = uint64(a)<<40 ^ uint64(b)<<20 ^ uint64(c) ^ cooked[i]
}

// Uint64 advances the additive generator one step, mirroring
// rngSource.Uint64 (uint64 addition wraps identically to int64).
func (s *fastSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += lfsrLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += lfsrLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return x
}

// Int63 returns the low 63 bits, mirroring rngSource.Int63.
func (s *fastSource) Int63() int64 {
	return int64(s.Uint64() &^ (1 << 63))
}
