package integration

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/kb"
	"repro/internal/kvstore"
	"repro/internal/lexicon"
	"repro/internal/nlu"
	"repro/internal/pipeline"
	"repro/internal/predict"
	"repro/internal/rdf"
	"repro/internal/remotestore"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/simsvc"
	"repro/internal/spell"
	"repro/internal/vision"
	"repro/internal/webcorpus"
)

// buildFullClient wires every built-in service family into one SDK client,
// matching cmd/richsdk-server's production wiring (tiny latencies for test
// speed).
func buildFullClient(t *testing.T) (*core.Client, *webcorpus.Corpus) {
	t.Helper()
	client, err := core.NewClient(core.Config{CacheTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	for i, p := range []nlu.Profile{nlu.ProfileAlpha, nlu.ProfileBeta, nlu.ProfileGamma} {
		engine := nlu.NewEngine(p)
		info := service.Info{Name: p.Name, Category: "nlu", CostPerCall: 0.001 * float64(i+1)}
		sim := simsvc.New(simsvc.Config{
			Info:    info,
			Latency: simsvc.Constant{D: time.Duration(i+1) * time.Millisecond},
			Seed:    int64(i),
			Handler: engine.Service(info).Invoke,
		})
		if err := client.Register(sim, core.WithCacheable(),
			core.WithRetry(failover.RetryPolicy{MaxAttempts: 2})); err != nil {
			t.Fatal(err)
		}
	}
	corpus := webcorpus.Generate(webcorpus.Config{Seed: 123, NumDocs: 120})
	index := search.BuildIndex(corpus)
	for i, cfg := range []struct {
		name   string
		params search.Params
	}{{"search-g", search.TuningG}, {"search-b", search.TuningB}} {
		engine := search.NewEngine(cfg.name, index, cfg.params)
		info := service.Info{Name: cfg.name, Category: "search", CostPerCall: 0.0005}
		sim := simsvc.New(simsvc.Config{
			Info:    info,
			Latency: simsvc.Constant{D: time.Millisecond},
			Seed:    int64(100 + i),
			Handler: engine.Service(info).Invoke,
		})
		if err := client.Register(sim, core.WithCacheable()); err != nil {
			t.Fatal(err)
		}
	}
	checker := spell.NewChecker(lexicon.Dictionary(), nil)
	if err := client.Register(checker.Service(service.Info{Name: "spell", Category: "spell"}), core.WithCacheable()); err != nil {
		t.Fatal(err)
	}
	for i, p := range []vision.Profile{vision.ProfileSharp, vision.ProfileFast} {
		engine := vision.NewEngine(p)
		info := service.Info{Name: p.Name, Category: "vision", CostPerCall: 0.002}
		sim := simsvc.New(simsvc.Config{
			Info:    info,
			Latency: simsvc.Constant{D: time.Duration(i+1) * time.Millisecond},
			Seed:    int64(200 + i),
			Handler: engine.Service(info).Invoke,
		})
		if err := client.Register(sim, core.WithCacheable()); err != nil {
			t.Fatal(err)
		}
	}
	return client, corpus
}

// TestHTTPFacadeFullStack drives the SDK purely over HTTP, the way an
// application in another language would (paper §2).
func TestHTTPFacadeFullStack(t *testing.T) {
	client, _ := buildFullClient(t)
	srv := httptest.NewServer(core.NewAPI(client))
	defer srv.Close()

	post := func(path string, body any) map[string]json.RawMessage {
		t.Helper()
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("%s -> HTTP %d: %s", path, resp.StatusCode, raw)
		}
		var out map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// 1. Search through the facade.
	searchOut := post("/v1/invoke", map[string]any{
		"service": "search-g",
		"request": map[string]any{"op": "search", "query": "Acme market growth", "params": map[string]string{"limit": "5"}},
	})
	// Body is []byte and therefore base64 in JSON: decode through the
	// Response envelope exactly as a foreign-language client would.
	var sresp service.Response
	rawSearch, _ := json.Marshal(searchOut)
	if err := json.Unmarshal(rawSearch, &sresp); err != nil {
		t.Fatal(err)
	}
	results, err := search.DecodeResults(sresp)
	if err != nil {
		t.Fatal(err)
	}
	if len(results.Results) == 0 {
		t.Fatal("search returned nothing")
	}

	// 2. NLU category invocation with ranked failover.
	nluOut := post("/v1/invoke-category", map[string]any{
		"category": "nlu",
		"request":  map[string]any{"op": "analyze", "text": "Acme Corporation reported excellent growth in Germany."},
	})
	var wrapped struct {
		Response service.Response `json:"response"`
	}
	raw, _ := json.Marshal(nluOut)
	if err := json.Unmarshal(raw, &wrapped); err != nil {
		t.Fatal(err)
	}
	analysis, err := nlu.DecodeAnalysis(wrapped.Response)
	if err != nil {
		t.Fatal(err)
	}
	if len(analysis.Entities) == 0 {
		t.Error("facade NLU analysis found no entities")
	}

	// 3. Vision through the facade (binary payload via JSON []byte).
	img := vision.Generate("itest", 5)
	visionOut := post("/v1/invoke", map[string]any{
		"service": "vision-sharp",
		"request": map[string]any{"op": "recognize", "key": img.ID, "data": img.Encode()},
	})
	var vresp service.Response
	raw, _ = json.Marshal(visionOut)
	if err := json.Unmarshal(raw, &vresp); err != nil {
		t.Fatal(err)
	}
	rec, err := vision.DecodeRecognition(vresp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tags) == 0 {
		t.Error("vision returned no tags")
	}

	// 4. Ranking endpoint covers every category.
	for _, cat := range []string{"nlu", "search", "vision"} {
		out := post("/v1/rank", map[string]any{"category": cat})
		if len(out["ranked"]) == 0 {
			t.Errorf("rank(%s) empty", cat)
		}
	}

	// 5. Stats reflect the traffic.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Services []struct {
			Name  string `json:"Name"`
			Count int    `json:"Count"`
		} `json:"services"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range stats.Services {
		total += s.Count
	}
	if total == 0 {
		t.Error("no monitored invocations recorded")
	}
}

func mustField(t *testing.T, m map[string]json.RawMessage, key string) json.RawMessage {
	t.Helper()
	v, ok := m[key]
	if !ok {
		t.Fatalf("missing field %q in %v", key, m)
	}
	return v
}

// TestSearchAnalyzeAggregateKBPipeline runs the paper's full analytics
// pipeline in-process: search -> fetch over HTTP -> extract -> multi-
// service analysis -> consensus -> aggregate sentiment -> knowledge base
// facts -> inference -> cloud persistence with offline sync.
func TestSearchAnalyzeAggregateKBPipeline(t *testing.T) {
	client, corpus := buildFullClient(t)
	web := httptest.NewServer(corpus.Handler())
	defer web.Close()
	ctx := context.Background()

	// The knowledge base doubles as the pipeline's sentiment sink: the
	// aggregated per-entity sentiment becomes RDF facts as the stream
	// drains.
	base, err := kb.New(kb.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}

	// Search via the SDK, fetch each hit over real HTTP, and analyze with
	// every NLU service — the Fig. 3 loop, on the streaming engine with a
	// bounded fan-out. Search and analysis calls stay cached and monitored
	// because the pipeline invokes them through the same client.
	res, err := pipeline.AnalysisConfig{
		Client:     client,
		Search:     "search-g",
		NLU:        []string{"nlu-alpha", "nlu-beta", "nlu-gamma"},
		FetchURL:   web.URL,
		Limit:      10,
		Workers:    4,
		Sentiments: base.StoreWebSentiments,
	}.Run(ctx, "market technology growth")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) == 0 {
		t.Fatal("no search results")
	}
	perDoc := res.PerDoc

	// Consensus-based quality rating (paper §5 future work) feeds the
	// SDK's quality scores.
	ratings := aggregate.RateByConsensus(perDoc, 0.5)
	if len(ratings) != 3 {
		t.Fatalf("ratings = %+v", ratings)
	}
	for _, r := range ratings {
		client.Monitor(r.Service).RecordQuality(r.Agreement)
	}
	// Quality now influences ranking.
	ranked, err := client.Rank("nlu", service.Request{Op: "analyze", Text: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked = %+v", ranked)
	}

	// The sink already turned the aggregated sentiment into facts.
	if len(res.Sentiments) == 0 {
		t.Fatal("no aggregated sentiments")
	}
	moods, err := base.Query("SELECT ?e ?m WHERE { ?e <kb:webSentiment> ?m }")
	if err != nil {
		t.Fatal(err)
	}
	if len(moods.Rows) != len(res.Sentiments) {
		t.Fatalf("sink stored %d webSentiment facts, want %d", len(moods.Rows), len(res.Sentiments))
	}
	// A user rule over the web-derived facts.
	err = base.AddRule(rdf.Rule{
		Name: "pr-risk",
		Premises: []rdf.Statement{
			{S: rdf.NewVar("e"), P: rdf.NewIRI("kb:webSentiment"), O: rdf.NewLiteral("unfavorable")},
		},
		Conclusions: []rdf.Statement{
			{S: rdf.NewVar("e"), P: rdf.NewIRI("kb:needsAttention"), O: rdf.NewLiteral("true")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Infer(); err != nil {
		t.Fatal(err)
	}

	// Persist the knowledge remotely with an outage in the middle.
	cloud := remotestore.NewServer(kvstore.NewMemory())
	cloudSrv := httptest.NewServer(cloud.Handler())
	defer cloudSrv.Close()
	rclient := remotestore.NewClient(remotestore.ClientConfig{
		BaseURL: cloudSrv.URL,
		Local:   kvstore.NewMemory(),
	})
	cloud.SetDown(true)
	graphCSV := new(bytes.Buffer)
	for i, stmt := range base.Graph().All() {
		fmt.Fprintf(graphCSV, "%s\n", stmt)
		if i == 0 {
			// First write trips the outage detector.
			if err := rclient.Put("kb-snapshot", graphCSV.Bytes()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := rclient.Put("kb-snapshot", graphCSV.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !rclient.Offline() {
		t.Fatal("client should be offline during the outage")
	}
	cloud.SetDown(false)
	if _, err := rclient.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := rclient.Get("kb-snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, graphCSV.Bytes()) {
		t.Error("cloud snapshot does not match the knowledge base export")
	}

	// Spell-check a note through the SDK for good measure.
	resp, err := client.Invoke(ctx, "spell", service.Request{Op: "spellcheck", Text: "the markte improved"})
	if err != nil {
		t.Fatal(err)
	}
	corrs, err := spell.DecodeCorrections(resp)
	if err != nil || len(corrs) != 1 {
		t.Errorf("spell through SDK = (%v, %v)", corrs, err)
	}

	// The whole pipeline ran against monitored services: one search
	// engine, three NLU engines, and the spell checker.
	if len(client.Stats()) < 5 {
		t.Errorf("expected stats for >= 5 services, got %d", len(client.Stats()))
	}
}

// TestKBConfidencePipeline exercises accuracy levels end to end: dubious
// web-derived facts stay quarantined below the trust threshold.
func TestKBConfidencePipeline(t *testing.T) {
	base, err := kb.New(kb.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	// Trusted taxonomy, dubious web claim.
	if err := base.AddFactWithConfidence("kb:acme", rdf.RDFSSubClassOf, "kb:company", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := base.AddFactWithConfidence("kb:company", rdf.RDFSSubClassOf, "kb:organization", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := base.AddFactWithConfidence("kb:organization", rdf.RDFSSubClassOf, "kb:shell-scheme", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := base.InferWithConfidence(0.5); err != nil {
		t.Fatal(err)
	}
	trusted := rdf.Statement{S: rdf.NewIRI("kb:acme"), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: rdf.NewIRI("kb:organization")}
	dubious := rdf.Statement{S: rdf.NewIRI("kb:acme"), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: rdf.NewIRI("kb:shell-scheme")}
	if !base.Graph().Has(trusted) {
		t.Error("trusted closure missing")
	}
	if base.Graph().Has(dubious) {
		t.Error("dubious inference asserted despite threshold")
	}
}

// TestBreakerAndDeadlineThroughFacade exercises the two new pipeline stages
// end to end over HTTP, the way richsdk-server deploys them: a scripted
// outage trips the circuit breaker (503 + /v1/breakers reports it open),
// recovery closes it, and a service that turns unresponsive after training
// is cut off by the predicted-latency deadline (504).
func TestBreakerAndDeadlineThroughFacade(t *testing.T) {
	client, err := core.NewClient(core.Config{
		Breaker:      core.BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond},
		Deadline:     core.DeadlineConfig{Factor: 2, Floor: 30 * time.Millisecond},
		Predict:      predict.Config{MinObservations: 2},
		DefaultRetry: failover.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	flaky := simsvc.New(simsvc.Config{Info: service.Info{Name: "flaky", Category: "nlu"}})
	if err := client.Register(flaky); err != nil {
		t.Fatal(err)
	}
	var hang atomic.Bool
	moody := service.Func{
		Meta: service.Info{Name: "moody", Category: "search"},
		Fn: func(ctx context.Context, req service.Request) (service.Response, error) {
			if hang.Load() {
				<-ctx.Done()
				return service.Response{}, fmt.Errorf("hung: %w: %w", service.ErrUnavailable, ctx.Err())
			}
			time.Sleep(2 * time.Millisecond)
			return service.Response{Body: []byte("ok")}, nil
		},
	}
	if err := client.Register(moody); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(core.NewAPI(client))
	defer srv.Close()

	invoke := func(svc, text string) int {
		t.Helper()
		body, _ := json.Marshal(map[string]any{
			"service": svc,
			"request": map[string]any{"op": "x", "text": text},
		})
		resp, err := http.Post(srv.URL+"/v1/invoke", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return resp.StatusCode
	}

	// Trip the breaker with a scripted outage.
	flaky.SetDown(true)
	for i := 0; i < 2; i++ {
		if got := invoke("flaky", "x"); got != http.StatusServiceUnavailable {
			t.Fatalf("outage invoke %d -> HTTP %d, want 503", i, got)
		}
	}
	before := flaky.Invocations()
	if got := invoke("flaky", "x"); got != http.StatusServiceUnavailable {
		t.Fatalf("tripped invoke -> HTTP %d, want 503", got)
	}
	if flaky.Invocations() != before {
		t.Error("open breaker still reached the service")
	}
	bresp, err := http.Get(srv.URL + "/v1/breakers")
	if err != nil {
		t.Fatal(err)
	}
	var breakers struct {
		Breakers []core.BreakerState `json:"breakers"`
	}
	if err := json.NewDecoder(bresp.Body).Decode(&breakers); err != nil {
		t.Fatal(err)
	}
	_ = bresp.Body.Close()
	if len(breakers.Breakers) != 1 || breakers.Breakers[0].Service != "flaky" || breakers.Breakers[0].State != "open" {
		t.Errorf("/v1/breakers = %+v, want flaky open", breakers.Breakers)
	}

	// Recovery: after the cooldown the half-open probe closes the breaker.
	flaky.SetDown(false)
	time.Sleep(60 * time.Millisecond)
	if got := invoke("flaky", "probe"); got != http.StatusOK {
		t.Fatalf("probe -> HTTP %d, want 200", got)
	}

	// Train the moody service fast, then hang it: the predicted-latency
	// deadline converts the hang into a 504 instead of a stuck request.
	for i := 0; i < 4; i++ {
		if got := invoke("moody", fmt.Sprintf("warm %d", i)); got != http.StatusOK {
			t.Fatalf("warmup %d -> HTTP %d, want 200", i, got)
		}
	}
	hang.Store(true)
	start := time.Now()
	if got := invoke("moody", "now hang"); got != http.StatusGatewayTimeout {
		t.Fatalf("hung invoke -> HTTP %d, want 504", got)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("hung request took %v; deadline should have bounded it", elapsed)
	}
}
