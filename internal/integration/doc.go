// Package integration holds cross-module end-to-end tests: the full rich
// SDK wired with NLU, search, vision, and spell services behind its HTTP
// façade, exercised the way a non-Go application would use it, plus the
// complete web-search → fetch → analyze → aggregate → knowledge-base
// pipeline in one flow. There is no library code here.
package integration
