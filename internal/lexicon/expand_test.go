package lexicon

import (
	"testing"
)

func expansionTerms(s []Expansion) []string {
	out := make([]string, len(s))
	for i, e := range s {
		out[i] = e.Term
	}
	return out
}

func hasTerm(s []Expansion, term string) bool {
	for _, e := range s {
		if e.Term == term {
			return true
		}
	}
	return false
}

func TestExpanderGazetteerSynonyms(t *testing.T) {
	x := NewExpander()
	got := x.Expand("usa", 10)
	if !hasTerm(got, "america") {
		t.Errorf("Expand(usa) = %v, want to contain america", expansionTerms(got))
	}
	if !hasTerm(got, "united") || !hasTerm(got, "states") {
		t.Errorf("Expand(usa) = %v, want multi-word surface tokens united/states", expansionTerms(got))
	}
	if hasTerm(got, "usa") {
		t.Error("Expand(usa) returned the term itself")
	}
	for _, e := range got {
		if e.Weight <= 0 || e.Weight > 1 {
			t.Errorf("expansion %q has weight %v outside (0,1]", e.Term, e.Weight)
		}
	}
	// Aliases expand back toward the canonical name's tokens.
	if got := x.Expand("acme", 10); !hasTerm(got, "corporation") {
		t.Errorf("Expand(acme) = %v, want corporation", expansionTerms(got))
	}
	// Unknown terms expand to nothing without a co-occurrence table.
	if got := x.Expand("zzzunknown", 10); len(got) != 0 {
		t.Errorf("Expand(zzzunknown) = %v, want empty", expansionTerms(got))
	}
}

func TestExpanderCapAndOrder(t *testing.T) {
	x := NewExpander()
	full := x.Expand("usa", 10)
	if len(full) < 2 {
		t.Fatalf("need >= 2 expansions for the cap test, got %v", expansionTerms(full))
	}
	capped := x.Expand("usa", 1)
	if len(capped) != 1 {
		t.Fatalf("Expand(usa, 1) returned %d terms", len(capped))
	}
	if capped[0] != full[0] {
		t.Errorf("cap changed the strongest expansion: %v vs %v", capped[0], full[0])
	}
	for i := 1; i < len(full); i++ {
		a, b := full[i-1], full[i]
		if a.Weight < b.Weight || (a.Weight == b.Weight && a.Term >= b.Term) {
			t.Errorf("expansions out of order at %d: %v then %v", i, a, b)
		}
	}
	if got := x.Expand("usa", 0); got != nil {
		t.Errorf("Expand with max 0 = %v, want nil", got)
	}
}

func TestPMIBuilder(t *testing.T) {
	b := NewPMIBuilder(PMIConfig{Window: 3, MinCount: 3, MaxNeighbors: 4, MinPMI: 0.5})
	// "coffee beans" always co-occur; "coffee" and "tax" never share a
	// window; background terms spread evenly.
	for i := 0; i < 20; i++ {
		b.AddDoc([]string{"coffee", "beans", "roast", "filler1", "filler2", "filler3", "tax", "policy"})
		b.AddDoc([]string{"tax", "policy", "filler1", "filler2", "filler4", "filler3"})
	}
	table := b.Build()
	if !hasTerm(table["coffee"], "beans") {
		t.Errorf("coffee neighbors = %v, want beans", expansionTerms(table["coffee"]))
	}
	if hasTerm(table["coffee"], "tax") {
		t.Errorf("coffee neighbors = %v, tax never co-occurs within the window", expansionTerms(table["coffee"]))
	}
	if !hasTerm(table["tax"], "policy") {
		t.Errorf("tax neighbors = %v, want policy", expansionTerms(table["tax"]))
	}
	for term, ns := range table {
		if len(ns) > 4 {
			t.Errorf("%q has %d neighbors, cap is 4", term, len(ns))
		}
		for _, e := range ns {
			if e.Weight <= 0 || e.Weight >= 1 {
				t.Errorf("%q -> %q weight %v outside (0,1)", term, e.Term, e.Weight)
			}
		}
	}
}

func TestPMIBuilderDeterministic(t *testing.T) {
	build := func() map[string][]Expansion {
		b := NewPMIBuilder(PMIConfig{Window: 4, MinCount: 2, MinPMI: 0.1})
		for i := 0; i < 10; i++ {
			b.AddDoc([]string{"alpha", "beta", "gamma", "delta", "alpha", "beta"})
			b.AddDoc([]string{"gamma", "delta", "epsilon", "zeta"})
		}
		return b.Build()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("table sizes differ: %d vs %d", len(a), len(b))
	}
	for term, ns := range a {
		other := b[term]
		if len(ns) != len(other) {
			t.Fatalf("%q neighbor counts differ", term)
		}
		for i := range ns {
			if ns[i] != other[i] {
				t.Errorf("%q neighbor %d: %v vs %v", term, i, ns[i], other[i])
			}
		}
	}
}

func TestExpanderWithCooccurrence(t *testing.T) {
	x := NewExpander().WithCooccurrence(map[string][]Expansion{
		"market":  {{Term: "economy", Weight: 0.6}},
		"america": {{Term: "usa", Weight: 0.3}}, // weaker than the synonym link
	})
	if got := x.Expand("market", 5); !hasTerm(got, "economy") {
		t.Errorf("Expand(market) = %v, want economy from the co-occurrence table", expansionTerms(got))
	}
	// Synonym weight (0.8) wins over the weaker co-occurrence weight.
	got := x.Expand("america", 5)
	for _, e := range got {
		if e.Term == "usa" && e.Weight != synonymWeight {
			t.Errorf("america -> usa weight %v, want synonym weight %v", e.Weight, synonymWeight)
		}
	}
}
