package lexicon

import (
	"math"
	"sort"
	"strings"

	"repro/internal/intern"
)

// This file is the query-expansion layer: a synonym/alias table seeded
// from the entity gazetteer plus a corpus-derived PMI co-occurrence
// ("c-token") table built at index time. Search engines expand query
// terms through an Expander so that, e.g., a query for "usa" also
// retrieves documents that only say "america" — with a weight below the
// original term's so exact matches still dominate. The expansion weight
// and breadth are tuned per engine profile, which is one of the axes on
// which the G/B/Y search tunings genuinely diverge.

// Expansion is one weighted expansion term. Weight is a relatedness
// confidence in (0, 1]; engines multiply it by their own expansion
// weight before scoring.
type Expansion struct {
	Term   string
	Weight float64
}

// synonymWeight is the relatedness assigned to token pairs drawn from
// the same gazetteer entity's surface forms ("usa" ↔ "america"). Alias
// identity is strong evidence, so it sits near the top of the scale.
const synonymWeight = 0.8

// Expander merges the two expansion sources behind one lookup. The
// synonym table is static (built from the gazetteer); the co-occurrence
// table is optional and corpus-derived (see PMIBuilder). An Expander is
// immutable after construction and safe for concurrent use.
type Expander struct {
	syn  map[string][]Expansion
	cooc map[string][]Expansion
}

// NewExpander builds an expander over the gazetteer synonym table with
// no co-occurrence source. Use WithCooccurrence to attach one.
func NewExpander() *Expander {
	return &Expander{syn: synonymTable()}
}

// WithCooccurrence returns a copy of x that also consults the given
// corpus-derived table (term → neighbors, as produced by
// PMIBuilder.Build).
func (x *Expander) WithCooccurrence(table map[string][]Expansion) *Expander {
	return &Expander{syn: x.syn, cooc: table}
}

// Expand returns up to max expansion terms for term, strongest first
// (weight descending, then term ascending for determinism). The term
// itself is never returned. Synonym and co-occurrence candidates are
// merged; a term suggested by both keeps its larger weight.
func (x *Expander) Expand(term string, max int) []Expansion {
	if max <= 0 {
		return nil
	}
	merged := make(map[string]float64)
	for _, e := range x.syn[term] {
		if e.Weight > merged[e.Term] {
			merged[e.Term] = e.Weight
		}
	}
	for _, e := range x.cooc[term] {
		if e.Weight > merged[e.Term] {
			merged[e.Term] = e.Weight
		}
	}
	delete(merged, term)
	if len(merged) == 0 {
		return nil
	}
	out := make([]Expansion, 0, len(merged))
	for t, w := range merged {
		out = append(out, Expansion{Term: t, Weight: w})
	}
	sortExpansions(out)
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// sortExpansions orders by weight descending, term ascending.
func sortExpansions(s []Expansion) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Weight != s[j].Weight {
			return s[i].Weight > s[j].Weight
		}
		return s[i].Term < s[j].Term
	})
}

// synonymTable links every content token of an entity's surface forms to
// every other content token of the same entity: "usa", "america",
// "united", and "states" all expand to one another because they are
// surface forms (or parts of surface forms) of country:us. Tokens are
// lower-cased; stopwords and single-character tokens are dropped, the
// same filter the search index applies.
func synonymTable() map[string][]Expansion {
	stop := StopwordSet()
	weights := make(map[string]map[string]float64)
	for _, e := range AllEntities() {
		tokens := surfaceTokens(e, stop)
		for _, a := range tokens {
			for _, b := range tokens {
				if a == b {
					continue
				}
				m := weights[a]
				if m == nil {
					m = make(map[string]float64)
					weights[a] = m
				}
				if synonymWeight > m[b] {
					m[b] = synonymWeight
				}
			}
		}
	}
	table := make(map[string][]Expansion, len(weights))
	for term, m := range weights {
		s := make([]Expansion, 0, len(m))
		for t, w := range m {
			s = append(s, Expansion{Term: t, Weight: w})
		}
		sortExpansions(s)
		table[term] = s
	}
	return table
}

// surfaceTokens returns the deduplicated content tokens of every surface
// form of e, in first-seen order.
func surfaceTokens(e Entity, stop map[string]bool) []string {
	var out []string
	seen := make(map[string]bool)
	for _, surface := range e.Surface() {
		for _, f := range strings.Fields(strings.ToLower(surface)) {
			f = strings.Trim(f, "'.,")
			if len(f) < 2 || stop[f] || seen[f] {
				continue
			}
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// PMIConfig tunes the corpus-derived co-occurrence table.
type PMIConfig struct {
	// Window is the co-occurrence window in tokens: a pair is observed
	// when two distinct terms appear within Window positions of each
	// other. 0 means 8.
	Window int
	// MinCount drops pairs observed fewer times (noise floor). 0 means 3.
	MinCount int
	// MaxNeighbors caps each term's neighbor list. 0 means 8.
	MaxNeighbors int
	// MinPMI drops pairs whose pointwise mutual information is below the
	// floor; only clearly positive associations survive. 0 means 1.0.
	MinPMI float64
}

func (c PMIConfig) fill() PMIConfig {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.MinCount <= 0 {
		c.MinCount = 3
	}
	if c.MaxNeighbors <= 0 {
		c.MaxNeighbors = 8
	}
	if c.MinPMI <= 0 {
		c.MinPMI = 1.0
	}
	return c
}

// PMIBuilder accumulates windowed term co-occurrence counts over a token
// stream (the search index feeds it each document's filtered tokens at
// build time) and turns them into a c-token table: for each term, the
// terms it is most associated with by pointwise mutual information,
//
//	PMI(x, y) = log( count(x,y) · N / (count(x) · count(y)) ),
//
// where N is the total number of pair observations. Terms are interned
// through the shared intern.Dict so the pair counters are a compact
// uint64-keyed map rather than string-pair keys.
type PMIBuilder struct {
	cfg   PMIConfig
	dict  *intern.Dict[string]
	occ   []int
	pairs map[uint64]int
	total int
}

// NewPMIBuilder returns an empty builder.
func NewPMIBuilder(cfg PMIConfig) *PMIBuilder {
	return &PMIBuilder{
		cfg:   cfg.fill(),
		dict:  intern.NewDict[string](),
		pairs: make(map[uint64]int),
	}
}

func (b *PMIBuilder) intern(t string) uint32 {
	id := b.dict.Intern(t)
	if int(id) == len(b.occ) {
		b.occ = append(b.occ, 0)
	}
	return id
}

// AddDoc observes one document's tokens, in order. The caller filters
// stopwords; the builder only windows and counts.
func (b *PMIBuilder) AddDoc(tokens []string) {
	w := b.cfg.Window
	ids := make([]uint32, len(tokens))
	for i, t := range tokens {
		id := b.intern(t)
		ids[i] = id
		b.occ[id]++
	}
	for i, x := range ids {
		end := i + w
		if end >= len(ids) {
			end = len(ids) - 1
		}
		for j := i + 1; j <= end; j++ {
			y := ids[j]
			if x == y {
				continue
			}
			lo, hi := x, y
			if lo > hi {
				lo, hi = hi, lo
			}
			b.pairs[uint64(lo)<<32|uint64(hi)]++
			b.total++
		}
	}
}

// Build computes the c-token table from the accumulated counts. Weights
// map PMI monotonically into (0, 1) via pmi/(1+pmi), so a just-above-
// floor association weighs around 0.5 and weights approach 1 only for
// extreme associations — comparable to, but never exceeding, the
// gazetteer synonym weight. The result is deterministic for a given
// input sequence regardless of map iteration order.
func (b *PMIBuilder) Build() map[string][]Expansion {
	type neighbor struct {
		term uint32
		pmi  float64
	}
	byTerm := make(map[uint32][]neighbor)
	n := float64(b.total)
	for key, c := range b.pairs {
		if c < b.cfg.MinCount {
			continue
		}
		x, y := uint32(key>>32), uint32(key)
		pmi := math.Log(float64(c) * n / (float64(b.occ[x]) * float64(b.occ[y])))
		if pmi < b.cfg.MinPMI {
			continue
		}
		byTerm[x] = append(byTerm[x], neighbor{y, pmi})
		byTerm[y] = append(byTerm[y], neighbor{x, pmi})
	}
	table := make(map[string][]Expansion, len(byTerm))
	for id, ns := range byTerm {
		s := make([]Expansion, 0, len(ns))
		for _, nb := range ns {
			s = append(s, Expansion{Term: b.dict.Value(nb.term), Weight: nb.pmi / (1 + nb.pmi)})
		}
		sortExpansions(s)
		if len(s) > b.cfg.MaxNeighbors {
			s = s[:b.cfg.MaxNeighbors]
		}
		table[b.dict.Value(id)] = s
	}
	return table
}
