// Package lexicon holds the shared linguistic data used by the NLU engines,
// the synthetic web corpus, and the spell checker: an entity gazetteer
// (countries with aliases, companies, people), a sentiment lexicon,
// stopwords, and a general vocabulary. Centralizing the data keeps the
// generator and the analyzers consistent, which is what lets experiments
// score NLU output against ground truth.
package lexicon

import (
	"sort"
	"strings"
)

// EntityKind classifies gazetteer entries.
type EntityKind int

// Entity kinds.
const (
	KindCountry EntityKind = iota + 1
	KindCompany
	KindPerson
	KindCity
)

// String returns the kind's conventional NER label.
func (k EntityKind) String() string {
	switch k {
	case KindCountry:
		return "Country"
	case KindCompany:
		return "Company"
	case KindPerson:
		return "Person"
	case KindCity:
		return "City"
	default:
		return "Unknown"
	}
}

// Entity is one gazetteer entry: a canonical ID, a display name, a kind,
// and the aliases under which text may refer to it. The paper's running
// example: "United States of America" is also referred to as USA, US,
// United States, America, and the states.
type Entity struct {
	// ID is the canonical identifier, unique across the gazetteer.
	ID string
	// Name is the canonical display name.
	Name string
	// Kind classifies the entity.
	Kind EntityKind
	// Aliases are alternative surface forms, canonical name excluded.
	Aliases []string
	// Website, DBpedia and Yago are the linked-data style URLs the
	// disambiguator returns, mirroring the paper's Watson example.
	Website string
	DBpedia string
	Yago    string
}

// Surface returns every surface form: the canonical name plus all aliases.
func (e Entity) Surface() []string {
	out := make([]string, 0, len(e.Aliases)+1)
	out = append(out, e.Name)
	out = append(out, e.Aliases...)
	return out
}

// Countries is the country gazetteer.
var Countries = []Entity{
	{ID: "country:us", Name: "United States", Kind: KindCountry,
		Aliases: []string{"United States of America", "USA", "US", "America", "the states"},
		Website: "http://www.usa.gov/", DBpedia: "http://dbpedia.org/resource/United_States",
		Yago: "http://yago-knowledge.org/resource/United_States"},
	{ID: "country:uk", Name: "United Kingdom", Kind: KindCountry,
		Aliases: []string{"UK", "Britain", "Great Britain", "England"},
		DBpedia: "http://dbpedia.org/resource/United_Kingdom"},
	{ID: "country:de", Name: "Germany", Kind: KindCountry,
		Aliases: []string{"Deutschland", "Federal Republic of Germany"},
		DBpedia: "http://dbpedia.org/resource/Germany"},
	{ID: "country:fr", Name: "France", Kind: KindCountry,
		Aliases: []string{"French Republic"},
		DBpedia: "http://dbpedia.org/resource/France"},
	{ID: "country:jp", Name: "Japan", Kind: KindCountry,
		Aliases: []string{"Nippon"},
		DBpedia: "http://dbpedia.org/resource/Japan"},
	{ID: "country:cn", Name: "China", Kind: KindCountry,
		Aliases: []string{"PRC", "People's Republic of China"},
		DBpedia: "http://dbpedia.org/resource/China"},
	{ID: "country:in", Name: "India", Kind: KindCountry,
		Aliases: []string{"Republic of India", "Bharat"},
		DBpedia: "http://dbpedia.org/resource/India"},
	{ID: "country:br", Name: "Brazil", Kind: KindCountry,
		Aliases: []string{"Brasil"},
		DBpedia: "http://dbpedia.org/resource/Brazil"},
	{ID: "country:ca", Name: "Canada", Kind: KindCountry,
		DBpedia: "http://dbpedia.org/resource/Canada"},
	{ID: "country:au", Name: "Australia", Kind: KindCountry,
		Aliases: []string{"Commonwealth of Australia", "Oz"},
		DBpedia: "http://dbpedia.org/resource/Australia"},
	{ID: "country:ru", Name: "Russia", Kind: KindCountry,
		Aliases: []string{"Russian Federation"},
		DBpedia: "http://dbpedia.org/resource/Russia"},
	{ID: "country:it", Name: "Italy", Kind: KindCountry,
		Aliases: []string{"Italian Republic"},
		DBpedia: "http://dbpedia.org/resource/Italy"},
	{ID: "country:es", Name: "Spain", Kind: KindCountry,
		Aliases: []string{"Kingdom of Spain"},
		DBpedia: "http://dbpedia.org/resource/Spain"},
	{ID: "country:mx", Name: "Mexico", Kind: KindCountry,
		Aliases: []string{"United Mexican States"},
		DBpedia: "http://dbpedia.org/resource/Mexico"},
	{ID: "country:kr", Name: "South Korea", Kind: KindCountry,
		Aliases: []string{"Republic of Korea", "Korea"},
		DBpedia: "http://dbpedia.org/resource/South_Korea"},
	{ID: "country:nl", Name: "Netherlands", Kind: KindCountry,
		Aliases: []string{"Holland"},
		DBpedia: "http://dbpedia.org/resource/Netherlands"},
	{ID: "country:ch", Name: "Switzerland", Kind: KindCountry,
		Aliases: []string{"Swiss Confederation"},
		DBpedia: "http://dbpedia.org/resource/Switzerland"},
	{ID: "country:se", Name: "Sweden", Kind: KindCountry,
		DBpedia: "http://dbpedia.org/resource/Sweden"},
	{ID: "country:no", Name: "Norway", Kind: KindCountry,
		DBpedia: "http://dbpedia.org/resource/Norway"},
	{ID: "country:eg", Name: "Egypt", Kind: KindCountry,
		Aliases: []string{"Arab Republic of Egypt"},
		DBpedia: "http://dbpedia.org/resource/Egypt"},
	{ID: "country:za", Name: "South Africa", Kind: KindCountry,
		DBpedia: "http://dbpedia.org/resource/South_Africa"},
	{ID: "country:ar", Name: "Argentina", Kind: KindCountry,
		DBpedia: "http://dbpedia.org/resource/Argentina"},
	{ID: "country:gr", Name: "Greece", Kind: KindCountry,
		Aliases: []string{"Hellenic Republic", "Hellas"},
		DBpedia: "http://dbpedia.org/resource/Greece"},
	{ID: "country:tr", Name: "Turkey", Kind: KindCountry,
		Aliases: []string{"Turkiye"},
		DBpedia: "http://dbpedia.org/resource/Turkey"},
	{ID: "country:pl", Name: "Poland", Kind: KindCountry,
		DBpedia: "http://dbpedia.org/resource/Poland"},
	{ID: "country:pt", Name: "Portugal", Kind: KindCountry,
		DBpedia: "http://dbpedia.org/resource/Portugal"},
	{ID: "country:ie", Name: "Ireland", Kind: KindCountry,
		DBpedia: "http://dbpedia.org/resource/Ireland"},
	{ID: "country:sg", Name: "Singapore", Kind: KindCountry,
		DBpedia: "http://dbpedia.org/resource/Singapore"},
	{ID: "country:th", Name: "Thailand", Kind: KindCountry,
		Aliases: []string{"Siam"},
		DBpedia: "http://dbpedia.org/resource/Thailand"},
	{ID: "country:vn", Name: "Vietnam", Kind: KindCountry,
		DBpedia: "http://dbpedia.org/resource/Vietnam"},
}

// Companies is the company gazetteer. Names are synthetic to keep the
// corpus self-contained while exercising multi-word matching.
var Companies = []Entity{
	{ID: "company:acme", Name: "Acme Corporation", Kind: KindCompany, Aliases: []string{"Acme", "Acme Corp"}},
	{ID: "company:globex", Name: "Globex Industries", Kind: KindCompany, Aliases: []string{"Globex"}},
	{ID: "company:initech", Name: "Initech Systems", Kind: KindCompany, Aliases: []string{"Initech"}},
	{ID: "company:umbra", Name: "Umbra Analytics", Kind: KindCompany, Aliases: []string{"Umbra"}},
	{ID: "company:vertex", Name: "Vertex Capital", Kind: KindCompany, Aliases: []string{"Vertex"}},
	{ID: "company:solara", Name: "Solara Energy", Kind: KindCompany, Aliases: []string{"Solara"}},
	{ID: "company:nimbus", Name: "Nimbus Cloud Services", Kind: KindCompany, Aliases: []string{"Nimbus Cloud", "Nimbus"}},
	{ID: "company:quanta", Name: "Quanta Robotics", Kind: KindCompany, Aliases: []string{"Quanta"}},
	{ID: "company:helix", Name: "Helix Biotech", Kind: KindCompany, Aliases: []string{"Helix"}},
	{ID: "company:orion", Name: "Orion Logistics", Kind: KindCompany, Aliases: []string{"Orion"}},
	{ID: "company:zephyr", Name: "Zephyr Airlines", Kind: KindCompany, Aliases: []string{"Zephyr Air", "Zephyr"}},
	{ID: "company:aurora", Name: "Aurora Motors", Kind: KindCompany, Aliases: []string{"Aurora"}},
	{ID: "company:cobalt", Name: "Cobalt Mining Group", Kind: KindCompany, Aliases: []string{"Cobalt Group"}},
	{ID: "company:pinnacle", Name: "Pinnacle Foods", Kind: KindCompany, Aliases: []string{"Pinnacle"}},
	{ID: "company:stratos", Name: "Stratos Media", Kind: KindCompany, Aliases: []string{"Stratos"}},
	{ID: "company:kestrel", Name: "Kestrel Defense", Kind: KindCompany, Aliases: []string{"Kestrel"}},
	{ID: "company:meridian", Name: "Meridian Bank", Kind: KindCompany, Aliases: []string{"Meridian"}},
	{ID: "company:tidal", Name: "Tidal Shipping", Kind: KindCompany, Aliases: []string{"Tidal"}},
	{ID: "company:ember", Name: "Ember Semiconductors", Kind: KindCompany, Aliases: []string{"Ember Semi", "Ember"}},
	{ID: "company:lattice", Name: "Lattice Pharmaceuticals", Kind: KindCompany, Aliases: []string{"Lattice Pharma", "Lattice"}},
}

// People is the person gazetteer (synthetic public figures).
var People = []Entity{
	{ID: "person:akira-tanaka", Name: "Akira Tanaka", Kind: KindPerson, Aliases: []string{"Tanaka"}},
	{ID: "person:maria-silva", Name: "Maria Silva", Kind: KindPerson, Aliases: []string{"Silva"}},
	{ID: "person:john-whitfield", Name: "John Whitfield", Kind: KindPerson, Aliases: []string{"Whitfield"}},
	{ID: "person:elena-petrova", Name: "Elena Petrova", Kind: KindPerson, Aliases: []string{"Petrova"}},
	{ID: "person:omar-hassan", Name: "Omar Hassan", Kind: KindPerson, Aliases: []string{"Hassan"}},
	{ID: "person:ingrid-larsen", Name: "Ingrid Larsen", Kind: KindPerson, Aliases: []string{"Larsen"}},
	{ID: "person:wei-zhang", Name: "Wei Zhang", Kind: KindPerson, Aliases: []string{"Zhang"}},
	{ID: "person:priya-sharma", Name: "Priya Sharma", Kind: KindPerson, Aliases: []string{"Sharma"}},
	{ID: "person:carlos-mendez", Name: "Carlos Mendez", Kind: KindPerson, Aliases: []string{"Mendez"}},
	{ID: "person:fatima-almasri", Name: "Fatima Almasri", Kind: KindPerson, Aliases: []string{"Almasri"}},
	{ID: "person:david-okafor", Name: "David Okafor", Kind: KindPerson, Aliases: []string{"Okafor"}},
	{ID: "person:sofia-rossi", Name: "Sofia Rossi", Kind: KindPerson, Aliases: []string{"Rossi"}},
}

// Positive and Negative are the sentiment lexicon; each word carries unit
// weight. "very"-style intensifiers and "not"-style negators are handled by
// the analyzer, not listed here.
var Positive = []string{
	"good", "great", "excellent", "outstanding", "impressive", "strong",
	"successful", "profitable", "innovative", "reliable", "robust",
	"efficient", "beneficial", "promising", "favorable", "positive",
	"remarkable", "superb", "wonderful", "thriving", "booming", "soaring",
	"praised", "acclaimed", "celebrated", "admired", "trusted", "respected",
	"growth", "gain", "gains", "improvement", "improved", "improving",
	"breakthrough", "milestone", "record", "surge", "surged", "rally",
	"optimistic", "confident", "stable", "healthy", "vibrant", "leading",
	"award", "awarded", "win", "wins", "won", "victory", "triumph",
	"upgrade", "upgraded", "expansion", "expanding", "recovery",
	"recovered", "rebound", "exceeded", "beat", "beats", "outperformed",
	"flourishing", "prosperous", "landmark", "pioneering", "best",
}

// Negative sentiment words.
var Negative = []string{
	"bad", "poor", "terrible", "awful", "disappointing", "weak",
	"failed", "failing", "failure", "unprofitable", "unreliable",
	"inefficient", "harmful", "troubling", "unfavorable", "negative",
	"alarming", "dire", "dismal", "struggling", "collapsing", "plunging",
	"criticized", "condemned", "blamed", "distrusted", "scandal",
	"loss", "losses", "decline", "declined", "declining", "downturn",
	"crisis", "setback", "slump", "crash", "crashed", "selloff",
	"pessimistic", "uncertain", "unstable", "unhealthy", "stagnant",
	"lawsuit", "fine", "fined", "penalty", "defeat", "defeated",
	"downgrade", "downgraded", "layoffs", "recession", "bankruptcy",
	"missed", "underperformed", "shrinking", "deteriorating", "worst",
	"fraud", "corruption", "breach", "outage", "recall", "delays",
}

// Intensifiers amplify the following sentiment word.
var Intensifiers = []string{"very", "extremely", "highly", "incredibly", "exceptionally", "remarkably"}

// Negators flip the polarity of the following sentiment word.
var Negators = []string{"not", "never", "no", "hardly", "barely", "neither", "nor", "without"}

// Stopwords are excluded from keyword extraction.
var Stopwords = []string{
	"a", "an", "the", "and", "or", "but", "if", "then", "else", "when",
	"at", "by", "for", "with", "about", "against", "between", "into",
	"through", "during", "before", "after", "above", "below", "to",
	"from", "up", "down", "in", "out", "on", "off", "over", "under",
	"again", "further", "once", "here", "there", "all", "any", "both",
	"each", "few", "more", "most", "other", "some", "such", "only",
	"own", "same", "so", "than", "too", "very", "can", "will", "just",
	"should", "now", "is", "are", "was", "were", "be", "been", "being",
	"have", "has", "had", "having", "do", "does", "did", "doing",
	"would", "could", "ought", "i", "you", "he", "she", "it", "we",
	"they", "them", "their", "this", "that", "these", "those", "of",
	"as", "its", "his", "her", "my", "your", "our", "not", "no", "also",
	"said", "says", "according", "reported", "week", "year", "today",
	"yesterday", "tomorrow", "meanwhile", "monday", "tuesday",
	"wednesday", "thursday", "friday", "saturday", "sunday", "january",
	"february", "march", "april", "may", "june", "july", "august",
	"september", "october", "november", "december",
}

// Vocabulary is the neutral filler vocabulary used by the corpus generator
// and the spell-check dictionary.
var Vocabulary = []string{
	"market", "economy", "industry", "technology", "company", "government",
	"report", "analysis", "quarter", "revenue", "earnings", "product",
	"service", "customer", "investor", "shares", "stock", "price",
	"percent", "billion", "million", "announcement", "statement",
	"official", "minister", "president", "executive", "director",
	"strategy", "project", "development", "research", "science",
	"energy", "climate", "policy", "trade", "export", "import",
	"agreement", "partnership", "merger", "acquisition", "investment",
	"infrastructure", "manufacturing", "production", "supply", "demand",
	"employment", "inflation", "interest", "currency", "budget",
	"regulation", "compliance", "security", "privacy", "data",
	"platform", "software", "hardware", "network", "internet",
	"artificial", "intelligence", "learning", "model", "algorithm",
	"cloud", "computing", "storage", "database", "application",
	"mobile", "device", "sensor", "vehicle", "battery", "solar",
	"hospital", "health", "medicine", "vaccine", "treatment",
	"education", "university", "student", "school", "training",
	"transport", "aviation", "railway", "shipping", "logistics",
	"agriculture", "food", "water", "mineral", "resource",
	"election", "parliament", "senate", "court", "justice",
	"committee", "council", "summit", "conference", "forum",
	"launch", "release", "update", "version", "feature",
	"quarterly", "annual", "monthly", "daily", "global",
	"regional", "local", "national", "international", "domestic",
	"analyst", "economist", "scientist", "engineer", "researcher",
	"consumer", "citizen", "community", "public", "private",
}

// CommonWords are everyday verbs and function words that belong in the
// spell-check dictionary but are neither stopwords nor topic vocabulary.
var CommonWords = []string{
	"grew", "grow", "grows", "growing", "rose", "rise", "rises", "rising",
	"fell", "fall", "falls", "falling", "made", "make", "makes", "making",
	"took", "take", "takes", "taking", "gave", "give", "gives", "giving",
	"held", "hold", "holds", "holding", "came", "come", "comes", "coming",
	"went", "go", "goes", "going", "saw", "see", "sees", "seeing",
	"while", "since", "until", "although", "though", "because", "despite",
	"among", "amid", "across", "toward", "towards", "within", "beyond",
	"new", "old", "big", "small", "large", "high", "low", "long", "short",
	"first", "second", "third", "last", "next", "early", "late", "recent",
	"many", "much", "several", "various", "major", "minor", "key", "main",
	"people", "person", "group", "team", "member", "leader", "worker",
	"place", "area", "region", "country", "city", "world", "state",
	"time", "day", "month", "period", "moment", "decade", "century",
	"way", "part", "number", "amount", "level", "rate", "share", "value",
	"plan", "plans", "deal", "deals", "talks", "meeting", "review",
	"expect", "expects", "expected", "continue", "continued", "remain",
	"remained", "become", "became", "show", "showed", "shows", "include",
	"includes", "including", "provide", "provides", "provided", "use",
	"used", "uses", "using", "work", "works", "worked", "working",
}

// AllEntities returns the concatenated gazetteer, sorted by ID.
func AllEntities() []Entity {
	out := make([]Entity, 0, len(Countries)+len(Companies)+len(People))
	out = append(out, Countries...)
	out = append(out, Companies...)
	out = append(out, People...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns a lookup from entity ID to entity.
func ByID() map[string]Entity {
	m := make(map[string]Entity)
	for _, e := range AllEntities() {
		m[e.ID] = e
	}
	return m
}

// AliasIndex returns a lookup from lower-cased surface form to entity ID.
// Ambiguous surfaces (used by several entities) map to the first entity in
// gazetteer order; the disambiguator refines these with context.
func AliasIndex() map[string]string {
	m := make(map[string]string)
	for _, e := range AllEntities() {
		for _, s := range e.Surface() {
			key := strings.ToLower(s)
			if _, exists := m[key]; !exists {
				m[key] = e.ID
			}
		}
	}
	return m
}

// StopwordSet returns the stopwords as a set.
func StopwordSet() map[string]bool {
	m := make(map[string]bool, len(Stopwords))
	for _, w := range Stopwords {
		m[w] = true
	}
	return m
}

// SentimentWeights returns the full sentiment lexicon as word -> weight
// (+1 positive, -1 negative).
func SentimentWeights() map[string]float64 {
	m := make(map[string]float64, len(Positive)+len(Negative))
	for _, w := range Positive {
		m[w] = 1
	}
	for _, w := range Negative {
		m[w] = -1
	}
	return m
}

// Dictionary returns the spell-check dictionary: vocabulary, stopwords,
// sentiment words, and all single-word entity surface forms, lower-cased
// and de-duplicated.
func Dictionary() []string {
	set := make(map[string]bool)
	add := func(words []string) {
		for _, w := range words {
			for _, part := range strings.Fields(w) {
				set[strings.ToLower(part)] = true
			}
		}
	}
	add(Vocabulary)
	add(CommonWords)
	add(Stopwords)
	add(Positive)
	add(Negative)
	add(Intensifiers)
	add(Negators)
	for _, e := range AllEntities() {
		add(e.Surface())
	}
	out := make([]string, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}
