package lexicon

import (
	"strings"
	"testing"
)

func TestEntityIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range AllEntities() {
		if seen[e.ID] {
			t.Errorf("duplicate entity ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Name == "" {
			t.Errorf("entity %s has empty name", e.ID)
		}
		if e.Kind.String() == "Unknown" {
			t.Errorf("entity %s has unknown kind", e.ID)
		}
	}
	if len(seen) < 50 {
		t.Errorf("gazetteer has %d entities, want >= 50", len(seen))
	}
}

func TestAliasIndexResolvesUSAliases(t *testing.T) {
	idx := AliasIndex()
	// The paper's running example: all these refer to the same country.
	for _, alias := range []string{"united states of america", "usa", "us", "america", "united states", "the states"} {
		if got := idx[alias]; got != "country:us" {
			t.Errorf("AliasIndex[%q] = %q, want country:us", alias, got)
		}
	}
}

func TestAliasIndexLowercased(t *testing.T) {
	idx := AliasIndex()
	for key := range idx {
		if key != strings.ToLower(key) {
			t.Errorf("index key %q not lower-cased", key)
		}
	}
}

func TestSentimentLexiconDisjoint(t *testing.T) {
	pos := make(map[string]bool)
	for _, w := range Positive {
		pos[w] = true
	}
	for _, w := range Negative {
		if pos[w] {
			t.Errorf("word %q is both positive and negative", w)
		}
	}
	weights := SentimentWeights()
	if weights["good"] != 1 || weights["bad"] != -1 {
		t.Error("SentimentWeights basic entries wrong")
	}
	if len(weights) != len(Positive)+len(Negative) {
		t.Errorf("weights has %d entries, want %d", len(weights), len(Positive)+len(Negative))
	}
}

func TestStopwordSet(t *testing.T) {
	s := StopwordSet()
	for _, w := range []string{"the", "and", "of"} {
		if !s[w] {
			t.Errorf("stopword %q missing", w)
		}
	}
	if s["market"] {
		t.Error("content word in stopwords")
	}
}

func TestDictionaryContents(t *testing.T) {
	d := Dictionary()
	set := make(map[string]bool, len(d))
	for i, w := range d {
		if w != strings.ToLower(w) {
			t.Errorf("dictionary word %q not lower-cased", w)
		}
		if set[w] {
			t.Errorf("duplicate dictionary word %q", w)
		}
		set[w] = true
		if i > 0 && d[i-1] > w {
			t.Error("dictionary not sorted")
		}
	}
	for _, w := range []string{"market", "germany", "acme", "good", "bad", "the"} {
		if !set[w] {
			t.Errorf("dictionary missing %q", w)
		}
	}
	if len(d) < 400 {
		t.Errorf("dictionary has %d words, want >= 400", len(d))
	}
}

func TestByID(t *testing.T) {
	m := ByID()
	us, ok := m["country:us"]
	if !ok || us.Name != "United States" {
		t.Errorf("ByID country:us = %+v", us)
	}
	if us.DBpedia == "" || us.Yago == "" || us.Website == "" {
		t.Error("US entity missing linked-data URLs (paper example)")
	}
}

func TestSurfaceIncludesCanonical(t *testing.T) {
	e := Entity{Name: "X", Aliases: []string{"Y"}}
	s := e.Surface()
	if len(s) != 2 || s[0] != "X" || s[1] != "Y" {
		t.Errorf("Surface = %v", s)
	}
}
