package rdbms

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Column is one column definition.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered column list.
type Schema []Column

// Index returns the position of the named column (case-insensitive), or
// -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Row is one tuple, aligned with the table's schema.
type Row []Value

// Table is one relational table with optional hash indexes. It is safe for
// concurrent use.
type Table struct {
	name   string
	schema Schema

	mu      sync.RWMutex
	rows    []Row
	indexes map[string]map[string][]int // column -> value-string -> row ids
}

// NewTable creates a table. Column names must be unique (case-insensitive).
func NewTable(name string, schema Schema) (*Table, error) {
	if name == "" {
		return nil, errors.New("rdbms: empty table name")
	}
	if len(schema) == 0 {
		return nil, errors.New("rdbms: empty schema")
	}
	seen := make(map[string]bool, len(schema))
	for _, c := range schema {
		lc := strings.ToLower(c.Name)
		if c.Name == "" {
			return nil, errors.New("rdbms: empty column name")
		}
		if seen[lc] {
			return nil, fmt.Errorf("rdbms: duplicate column %q", c.Name)
		}
		seen[lc] = true
	}
	return &Table{
		name:    name,
		schema:  append(Schema(nil), schema...),
		indexes: make(map[string]map[string][]int),
	}, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns a copy of the schema.
func (t *Table) Schema() Schema { return append(Schema(nil), t.schema...) }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert appends a row after type-checking it against the schema.
func (t *Table) Insert(row Row) error {
	if len(row) != len(t.schema) {
		return fmt.Errorf("rdbms: row has %d values, schema has %d columns", len(row), len(t.schema))
	}
	for i, v := range row {
		if v.Null {
			continue
		}
		want := t.schema[i].Type
		if v.Type != want {
			// Int literals are acceptable for float columns.
			if want == TypeFloat && v.Type == TypeInt {
				row[i] = FloatV(float64(v.Int))
				continue
			}
			return fmt.Errorf("rdbms: column %q wants %s, got %s", t.schema[i].Name, want, v.Type)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.rows)
	t.rows = append(t.rows, append(Row(nil), row...))
	for col, idx := range t.indexes {
		ci := t.schema.Index(col)
		key := row[ci].String()
		idx[key] = append(idx[key], id)
	}
	return nil
}

// CreateIndex builds a hash index on the named column. Idempotent.
func (t *Table) CreateIndex(column string) error {
	ci := t.schema.Index(column)
	if ci < 0 {
		return fmt.Errorf("rdbms: no column %q", column)
	}
	col := strings.ToLower(column)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[col]; ok {
		return nil
	}
	idx := make(map[string][]int)
	for id, row := range t.rows {
		key := row[ci].String()
		idx[key] = append(idx[key], id)
	}
	t.indexes[col] = idx
	return nil
}

// HasIndex reports whether the column is indexed.
func (t *Table) HasIndex(column string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[strings.ToLower(column)]
	return ok
}

// scan calls fn for every live row id and row. Callers must not mutate the
// row. Held under read lock.
func (t *Table) scan(fn func(id int, row Row) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for id, row := range t.rows {
		if row == nil { // deleted
			continue
		}
		if err := fn(id, row); err != nil {
			return err
		}
	}
	return nil
}

// lookup returns the row ids matching value in the indexed column, or
// (nil, false) if the column is not indexed.
func (t *Table) lookup(column string, v Value) ([]int, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[strings.ToLower(column)]
	if !ok {
		return nil, false
	}
	ids := idx[v.String()]
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		if t.rows[id] != nil {
			out = append(out, id)
		}
	}
	return out, true
}

// row returns a copy of the row with the given id, or nil if deleted.
func (t *Table) row(id int) Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || id >= len(t.rows) || t.rows[id] == nil {
		return nil
	}
	return append(Row(nil), t.rows[id]...)
}

// update replaces columns of the row with the given id.
func (t *Table) update(id int, setCols []int, vals []Value) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := t.rows[id]
	if row == nil {
		return
	}
	for k, ci := range setCols {
		// Maintain indexes on changed columns.
		colName := strings.ToLower(t.schema[ci].Name)
		if idx, ok := t.indexes[colName]; ok {
			oldKey := row[ci].String()
			ids := idx[oldKey]
			for j, rid := range ids {
				if rid == id {
					idx[oldKey] = append(ids[:j], ids[j+1:]...)
					break
				}
			}
			newKey := vals[k].String()
			idx[newKey] = append(idx[newKey], id)
		}
		row[ci] = vals[k]
	}
}

// delete tombstones the row with the given id.
func (t *Table) delete(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := t.rows[id]
	if row == nil {
		return
	}
	for col, idx := range t.indexes {
		ci := t.schema.Index(col)
		key := row[ci].String()
		ids := idx[key]
		for j, rid := range ids {
			if rid == id {
				idx[key] = append(ids[:j], ids[j+1:]...)
				break
			}
		}
	}
	t.rows[id] = nil
}

// Rows returns a deep copy of all live rows in insertion order.
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, 0, len(t.rows))
	for _, row := range t.rows {
		if row != nil {
			out = append(out, append(Row(nil), row...))
		}
	}
	return out
}

// DB is a named collection of tables. It is safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// Create adds a new table. Duplicate names (case-insensitive) error.
func (db *DB) Create(name string, schema Schema) (*Table, error) {
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[key]; dup {
		return nil, fmt.Errorf("rdbms: table %q already exists", name)
	}
	db.tables[key] = t
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("rdbms: no table %q", name)
	}
	return t, nil
}

// Drop removes the named table.
func (db *DB) Drop(name string) error {
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[key]; !ok {
		return fmt.Errorf("rdbms: no table %q", name)
	}
	delete(db.tables, key)
	return nil
}

// Names returns the table names in sorted order.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.name)
	}
	sort.Strings(out)
	return out
}
