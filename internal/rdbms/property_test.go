package rdbms

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// Property tests on the relational engine's core invariants.

func TestInsertCountProperty(t *testing.T) {
	// Property: after inserting n rows, COUNT(*) is n and SELECT * yields
	// n rows.
	f := func(values []int16) bool {
		db := NewDB()
		if _, err := db.Exec("CREATE TABLE t (v INT)"); err != nil {
			return false
		}
		for _, v := range values {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t (v) VALUES (%d)", v)); err != nil {
				return false
			}
		}
		rs, err := db.Exec("SELECT COUNT(*) FROM t")
		if err != nil || rs.Rows[0][0].Int != int64(len(values)) {
			return false
		}
		all, err := db.Exec("SELECT * FROM t")
		return err == nil && len(all.Rows) == len(values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWherePartitionProperty(t *testing.T) {
	// Property: for any pivot, rows(v < p) + rows(v >= p) == total.
	f := func(values []int16, pivot int16) bool {
		db := NewDB()
		if _, err := db.Exec("CREATE TABLE t (v INT)"); err != nil {
			return false
		}
		for _, v := range values {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t (v) VALUES (%d)", v)); err != nil {
				return false
			}
		}
		lt, err := db.Exec(fmt.Sprintf("SELECT COUNT(*) FROM t WHERE v < %d", pivot))
		if err != nil {
			return false
		}
		ge, err := db.Exec(fmt.Sprintf("SELECT COUNT(*) FROM t WHERE v >= %d", pivot))
		if err != nil {
			return false
		}
		return lt.Rows[0][0].Int+ge.Rows[0][0].Int == int64(len(values))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOrderBySortedProperty(t *testing.T) {
	// Property: ORDER BY v ASC returns a non-decreasing sequence with the
	// same multiset of values.
	f := func(values []int16) bool {
		db := NewDB()
		if _, err := db.Exec("CREATE TABLE t (v INT)"); err != nil {
			return false
		}
		counts := map[int16]int{}
		for _, v := range values {
			counts[v]++
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t (v) VALUES (%d)", v)); err != nil {
				return false
			}
		}
		rs, err := db.Exec("SELECT v FROM t ORDER BY v ASC")
		if err != nil || len(rs.Rows) != len(values) {
			return false
		}
		for i, row := range rs.Rows {
			v := int16(row[0].Int)
			counts[v]--
			if i > 0 && rs.Rows[i-1][0].Int > row[0].Int {
				return false
			}
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeleteComplementProperty(t *testing.T) {
	// Property: DELETE WHERE v = x removes exactly the rows COUNT said it
	// would.
	f := func(values []uint8, target uint8) bool {
		db := NewDB()
		if _, err := db.Exec("CREATE TABLE t (v INT)"); err != nil {
			return false
		}
		for _, v := range values {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t (v) VALUES (%d)", v%8)); err != nil {
				return false
			}
		}
		x := target % 8
		before, err := db.Exec(fmt.Sprintf("SELECT COUNT(*) FROM t WHERE v = %d", x))
		if err != nil {
			return false
		}
		if _, err := db.Exec(fmt.Sprintf("DELETE FROM t WHERE v = %d", x)); err != nil {
			return false
		}
		after, err := db.Exec("SELECT COUNT(*) FROM t")
		if err != nil {
			return false
		}
		return after.Rows[0][0].Int == int64(len(values))-before.Rows[0][0].Int
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSVExportImportIdentityProperty(t *testing.T) {
	// Property: export/import round trips preserve row count and values
	// for text-safe data.
	f := func(names []uint8) bool {
		db := NewDB()
		if _, err := db.Exec("CREATE TABLE t (name TEXT, v INT)"); err != nil {
			return false
		}
		for i, n := range names {
			q := fmt.Sprintf("INSERT INTO t (name, v) VALUES ('n%d', %d)", n, i)
			if _, err := db.Exec(q); err != nil {
				return false
			}
		}
		tab, err := db.Table("t")
		if err != nil {
			return false
		}
		var out strings.Builder
		if err := tab.ExportCSV(&out); err != nil {
			return false
		}
		db2 := NewDB()
		tab2, err := db2.ImportCSV("t", strings.NewReader(out.String()))
		if err != nil {
			return false
		}
		return tab2.Len() == tab.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
