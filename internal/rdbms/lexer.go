package rdbms

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies SQL tokens.
type tokKind int

const (
	tokIdent tokKind = iota + 1
	tokNumber
	tokString
	tokOp      // = != <> < <= > >=
	tokPunct   // ( ) , * ;
	tokKeyword // uppercase-normalized reserved word
	tokEOF
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true,
	"INTO": true, "VALUES": true, "CREATE": true, "TABLE": true,
	"UPDATE": true, "SET": true, "DELETE": true, "ORDER": true,
	"BY": true, "ASC": true, "DESC": true, "LIMIT": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"GROUP": true, "INDEX": true, "ON": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true, "DISTINCT": true,
}

type token struct {
	kind tokKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

// lex tokenizes a SQL statement.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		ch := input[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			i++
		case ch == '\'':
			j := i + 1
			var sb strings.Builder
			for j < n {
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("rdbms: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case ch >= '0' && ch <= '9' || (ch == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' && startsValue(toks)):
			j := i + 1
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case isIdentByte(ch):
			j := i
			for j < n && (isIdentByte(input[j]) || input[j] >= '0' && input[j] <= '9') {
				j++
			}
			word := input[i:j]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		case ch == '=' || ch == '<' || ch == '>' || ch == '!':
			op := string(ch)
			if i+1 < n && (input[i+1] == '=' || (ch == '<' && input[i+1] == '>')) {
				op += string(input[i+1])
				i++
			}
			if op == "!" {
				return nil, fmt.Errorf("rdbms: stray '!' at %d", i)
			}
			toks = append(toks, token{kind: tokOp, text: op, pos: i})
			i++
		case ch == '(' || ch == ')' || ch == ',' || ch == '*' || ch == ';':
			toks = append(toks, token{kind: tokPunct, text: string(ch), pos: i})
			i++
		default:
			if unicode.IsPrint(rune(ch)) {
				return nil, fmt.Errorf("rdbms: unexpected character %q at %d", ch, i)
			}
			return nil, fmt.Errorf("rdbms: unexpected byte 0x%02x at %d", ch, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b == '_'
}

// startsValue reports whether a '-' at the current position begins a
// negative number (after operators, commas, parens, keywords) rather than
// an infix minus (unsupported anyway).
func startsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	switch last.kind {
	case tokOp, tokKeyword:
		return true
	case tokPunct:
		return last.text == "(" || last.text == ","
	default:
		return false
	}
}
