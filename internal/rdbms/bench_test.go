package rdbms

import (
	"fmt"
	"strings"
	"testing"
)

func benchDB(b *testing.B, rows int, index bool) *DB {
	b.Helper()
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE bench (id INT, name TEXT, score FLOAT)"); err != nil {
		b.Fatal(err)
	}
	if index {
		if _, err := db.Exec("CREATE INDEX ON bench (name)"); err != nil {
			b.Fatal(err)
		}
	}
	t, err := db.Table("bench")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		row := Row{IntV(int64(i)), TextV(fmt.Sprintf("name%d", i%500)), FloatV(float64(i % 100))}
		if err := t.Insert(row); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkParseSelect(b *testing.B) {
	q := "SELECT id, name FROM bench WHERE score > 50 AND name = 'name7' ORDER BY id DESC LIMIT 10"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	db := benchDB(b, 0, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf("INSERT INTO bench (id, name, score) VALUES (%d, 'n%d', %d)", i, i, i%100)
		if _, err := db.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectScan10k(b *testing.B) {
	db := benchDB(b, 10000, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Exec("SELECT id FROM bench WHERE name = 'name42'")
		if err != nil || len(rs.Rows) == 0 {
			b.Fatalf("(%d, %v)", len(rs.Rows), err)
		}
	}
}

func BenchmarkSelectIndexed10k(b *testing.B) {
	db := benchDB(b, 10000, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Exec("SELECT id FROM bench WHERE name = 'name42'")
		if err != nil || len(rs.Rows) == 0 {
			b.Fatalf("(%d, %v)", len(rs.Rows), err)
		}
	}
}

func BenchmarkAggregateGroupBy(b *testing.B) {
	db := benchDB(b, 10000, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Exec("SELECT score, COUNT(*), AVG(id) FROM bench GROUP BY score")
		if err != nil || len(rs.Rows) != 100 {
			b.Fatalf("(%d, %v)", len(rs.Rows), err)
		}
	}
}

func BenchmarkImportCSV1k(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("id,name,score\n")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "%d,item%d,%d.5\n", i, i, i%100)
	}
	data := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := NewDB()
		if _, err := db.ImportCSV("t", strings.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
