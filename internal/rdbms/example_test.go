package rdbms_test

import (
	"fmt"

	"repro/internal/rdbms"
)

func ExampleDB_Exec() {
	db := rdbms.NewDB()
	mustExec := func(q string) rdbms.ResultSet {
		rs, err := db.Exec(q)
		if err != nil {
			panic(err)
		}
		return rs
	}
	mustExec("CREATE TABLE revenue (country TEXT, year INT, amount FLOAT)")
	mustExec("INSERT INTO revenue (country, year, amount) VALUES ('country:us', 2025, 139), ('country:de', 2025, 93)")
	rs := mustExec("SELECT country, amount FROM revenue WHERE year = 2025 ORDER BY amount DESC LIMIT 1")
	fmt.Println(rs.Rows[0][0].Text, rs.Rows[0][1].Float)
	// Output: country:us 139
}

func ExampleDB_Exec_aggregates() {
	db := rdbms.NewDB()
	if _, err := db.Exec("CREATE TABLE t (g TEXT, v INT)"); err != nil {
		panic(err)
	}
	if _, err := db.Exec("INSERT INTO t (g, v) VALUES ('a', 1), ('a', 3), ('b', 10)"); err != nil {
		panic(err)
	}
	rs, err := db.Exec("SELECT g, COUNT(*), AVG(v) FROM t GROUP BY g ORDER BY g")
	if err != nil {
		panic(err)
	}
	for _, row := range rs.Rows {
		fmt.Println(row[0].Text, row[1].Int, row[2].Float)
	}
	// Output:
	// a 2 2
	// b 1 10
}
