package rdbms

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ImportCSV reads CSV with a header row into a new table, inferring column
// types from the data: a column where every non-empty cell parses as an
// integer becomes INT, else FLOAT if numeric, else BOOL if boolean, else
// TEXT. This is the knowledge base's "data in CSV files can be added to a
// relational database table" conversion.
func (db *DB) ImportCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("rdbms: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("rdbms: csv for %q has no header", name)
	}
	header := records[0]
	body := records[1:]
	schema := make(Schema, len(header))
	for ci, col := range header {
		schema[ci] = Column{Name: col, Type: inferType(body, ci)}
	}
	t, err := db.Create(name, schema)
	if err != nil {
		return nil, err
	}
	for ri, rec := range body {
		row := make(Row, len(schema))
		for ci := range schema {
			v, err := Coerce(rec[ci], schema[ci].Type)
			if err != nil {
				return nil, fmt.Errorf("rdbms: csv row %d: %w", ri+2, err)
			}
			row[ci] = v
		}
		if err := t.Insert(row); err != nil {
			return nil, fmt.Errorf("rdbms: csv row %d: %w", ri+2, err)
		}
	}
	return t, nil
}

func inferType(body [][]string, ci int) Type {
	sawAny := false
	isInt, isFloat, isBool := true, true, true
	for _, rec := range body {
		if ci >= len(rec) || rec[ci] == "" {
			continue
		}
		sawAny = true
		cell := rec[ci]
		if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
			isInt = false
		}
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			isFloat = false
		}
		if _, err := strconv.ParseBool(cell); err != nil {
			isBool = false
		}
	}
	switch {
	case !sawAny:
		return TypeText
	case isInt:
		return TypeInt
	case isFloat:
		return TypeFloat
	case isBool:
		return TypeBool
	default:
		return TypeText
	}
}

// ExportCSV writes the table as CSV with a header row — the knowledge
// base's export path to MATLAB, Excel, Python, and R (paper §3).
func (t *Table) ExportCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	schema := t.Schema()
	header := make([]string, len(schema))
	for i, c := range schema {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("rdbms: write header: %w", err)
	}
	for _, row := range t.Rows() {
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("rdbms: write row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("rdbms: flush: %w", err)
	}
	return nil
}

// ExportResultCSV writes a query result as CSV with a header row.
func ExportResultCSV(rs ResultSet, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rs.Columns); err != nil {
		return fmt.Errorf("rdbms: write header: %w", err)
	}
	for _, row := range rs.Rows {
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("rdbms: write row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("rdbms: flush: %w", err)
	}
	return nil
}
