package rdbms

import (
	"fmt"
	"strconv"
	"strings"
)

// Stmt is a parsed SQL statement.
type Stmt interface{ isStmt() }

// CreateStmt is CREATE TABLE name (col TYPE, ...).
type CreateStmt struct {
	Table  string
	Schema Schema
}

// CreateIndexStmt is CREATE INDEX ON table (column).
type CreateIndexStmt struct {
	Table  string
	Column string
}

// InsertStmt is INSERT INTO table [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string // empty means schema order
	Rows    [][]Value
}

// SelectItem is one projection: a column, * (Star), or an aggregate.
type SelectItem struct {
	Star   bool
	Column string
	Agg    string // COUNT, SUM, AVG, MIN, MAX; empty for plain column
}

// SelectStmt is SELECT items FROM table [WHERE expr] [GROUP BY col]
// [ORDER BY col [ASC|DESC]] [LIMIT n].
type SelectStmt struct {
	Table   string
	Items   []SelectItem
	Where   Expr
	GroupBy string
	OrderBy string
	Desc    bool
	Limit   int // -1 means no limit
}

// UpdateStmt is UPDATE table SET col = v, ... [WHERE expr].
type UpdateStmt struct {
	Table   string
	Columns []string
	Values  []Value
	Where   Expr
}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (CreateStmt) isStmt()      {}
func (CreateIndexStmt) isStmt() {}
func (InsertStmt) isStmt()      {}
func (SelectStmt) isStmt()      {}
func (UpdateStmt) isStmt()      {}
func (DeleteStmt) isStmt()      {}

// Expr is a WHERE-clause expression over a row.
type Expr interface {
	Eval(row Row, schema Schema) (Value, error)
}

// ColRef references a column by name.
type ColRef struct{ Name string }

// Lit is a literal value.
type Lit struct{ V Value }

// Binary applies an operator: comparison or AND/OR.
type Binary struct {
	Op   string
	L, R Expr
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// Eval implements Expr.
func (c ColRef) Eval(row Row, schema Schema) (Value, error) {
	i := schema.Index(c.Name)
	if i < 0 {
		return Value{}, fmt.Errorf("rdbms: no column %q", c.Name)
	}
	return row[i], nil
}

// Eval implements Expr.
func (l Lit) Eval(Row, Schema) (Value, error) { return l.V, nil }

// Eval implements Expr.
func (b Binary) Eval(row Row, schema Schema) (Value, error) {
	lv, err := b.L.Eval(row, schema)
	if err != nil {
		return Value{}, err
	}
	switch b.Op {
	case "AND", "OR":
		if lv.Type != TypeBool || lv.Null {
			return Value{}, fmt.Errorf("rdbms: %s needs boolean operands", b.Op)
		}
		// Short circuit.
		if b.Op == "AND" && !lv.Bool {
			return BoolV(false), nil
		}
		if b.Op == "OR" && lv.Bool {
			return BoolV(true), nil
		}
		rv, err := b.R.Eval(row, schema)
		if err != nil {
			return Value{}, err
		}
		if rv.Type != TypeBool || rv.Null {
			return Value{}, fmt.Errorf("rdbms: %s needs boolean operands", b.Op)
		}
		return rv, nil
	}
	rv, err := b.R.Eval(row, schema)
	if err != nil {
		return Value{}, err
	}
	// SQL semantics: comparisons with NULL are false.
	if lv.Null || rv.Null {
		return BoolV(false), nil
	}
	cmp, err := Compare(lv, rv)
	if err != nil {
		return Value{}, err
	}
	switch b.Op {
	case "=":
		return BoolV(cmp == 0), nil
	case "!=", "<>":
		return BoolV(cmp != 0), nil
	case "<":
		return BoolV(cmp < 0), nil
	case "<=":
		return BoolV(cmp <= 0), nil
	case ">":
		return BoolV(cmp > 0), nil
	case ">=":
		return BoolV(cmp >= 0), nil
	default:
		return Value{}, fmt.Errorf("rdbms: unknown operator %q", b.Op)
	}
}

// Eval implements Expr.
func (n Not) Eval(row Row, schema Schema) (Value, error) {
	v, err := n.E.Eval(row, schema)
	if err != nil {
		return Value{}, err
	}
	if v.Type != TypeBool || v.Null {
		return Value{}, fmt.Errorf("rdbms: NOT needs a boolean operand")
	}
	return BoolV(!v.Bool), nil
}

// parser consumes tokens.
type parser struct {
	toks []token
	pos  int
}

// Parse parses one SQL statement.
func Parse(input string) (Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().kind == tokPunct && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("rdbms: trailing input at %d: %q", p.peek().pos, p.peek().text)
	}
	return stmt, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) accept(kind tokKind, text string) bool {
	t := p.peek()
	if t.kind == kind && (text == "" || t.text == text) {
		p.pos++
		return true
	}
	return false
}
func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.peek()
	if t.kind == kind && (text == "" || t.text == text) {
		p.pos++
		return t, nil
	}
	return token{}, fmt.Errorf("rdbms: expected %q at %d, got %q", text, t.pos, t.text)
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	return "", fmt.Errorf("rdbms: expected identifier at %d, got %q", t.pos, t.text)
}

func (p *parser) statement() (Stmt, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("rdbms: expected statement at %d, got %q", t.pos, t.text)
	}
	switch t.text {
	case "CREATE":
		return p.create()
	case "INSERT":
		return p.insert()
	case "SELECT":
		return p.selectStmt()
	case "UPDATE":
		return p.update()
	case "DELETE":
		return p.deleteStmt()
	default:
		return nil, fmt.Errorf("rdbms: unsupported statement %q", t.text)
	}
}

func (p *parser) create() (Stmt, error) {
	p.next() // CREATE
	if p.accept(tokKeyword, "INDEX") {
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return CreateIndexStmt{Table: table, Column: col}, nil
	}
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var schema Schema
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		typeTok := p.next()
		if typeTok.kind != tokIdent && typeTok.kind != tokKeyword {
			return nil, fmt.Errorf("rdbms: expected type at %d", typeTok.pos)
		}
		ty, err := ParseType(typeTok.text)
		if err != nil {
			return nil, err
		}
		schema = append(schema, Column{Name: col, Type: ty})
		if p.accept(tokPunct, ",") {
			continue
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		break
	}
	return CreateStmt{Table: table, Schema: schema}, nil
}

func (p *parser) insert() (Stmt, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.accept(tokPunct, "(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if p.accept(tokPunct, ",") {
				continue
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Value
	for {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var row []Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.accept(tokPunct, ",") {
				continue
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
		rows = append(rows, row)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	return InsertStmt{Table: table, Columns: cols, Rows: rows}, nil
}

func (p *parser) literal() (Value, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Value{}, fmt.Errorf("rdbms: bad number %q: %w", t.text, err)
			}
			return FloatV(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("rdbms: bad number %q: %w", t.text, err)
		}
		return IntV(n), nil
	case tokString:
		return TextV(t.text), nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			return Value{Null: true}, nil
		case "TRUE":
			return BoolV(true), nil
		case "FALSE":
			return BoolV(false), nil
		}
	}
	return Value{}, fmt.Errorf("rdbms: expected literal at %d, got %q", t.pos, t.text)
}

func (p *parser) selectStmt() (Stmt, error) {
	p.next() // SELECT
	stmt := SelectStmt{Limit: -1}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Table = table
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.GroupBy = col
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.OrderBy = col
		if p.accept(tokKeyword, "DESC") {
			stmt.Desc = true
		} else {
			p.accept(tokKeyword, "ASC")
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("rdbms: LIMIT needs a number at %d", t.pos)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("rdbms: bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

var aggNames = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) selectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokPunct && t.text == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	if t.kind == tokKeyword && aggNames[t.text] {
		agg := p.next().text
		if _, err := p.expect(tokPunct, "("); err != nil {
			return SelectItem{}, err
		}
		var col string
		if p.accept(tokPunct, "*") {
			if agg != "COUNT" {
				return SelectItem{}, fmt.Errorf("rdbms: %s(*) is not supported", agg)
			}
			col = "*"
		} else {
			c, err := p.ident()
			if err != nil {
				return SelectItem{}, err
			}
			col = c
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Agg: agg, Column: col}, nil
	}
	col, err := p.ident()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Column: col}, nil
}

func (p *parser) update() (Stmt, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	stmt := UpdateStmt{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		stmt.Columns = append(stmt.Columns, col)
		stmt.Values = append(stmt.Values, v)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) deleteStmt() (Stmt, error) {
	p.next() // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := DeleteStmt{Table: table}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

// expr parses OR-level expressions (lowest precedence).
func (p *parser) expr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	if p.accept(tokPunct, "(") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	left, err := p.operand()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp {
		p.next()
		right, err := p.operand()
		if err != nil {
			return nil, err
		}
		return Binary{Op: t.text, L: left, R: right}, nil
	}
	return left, nil
}

func (p *parser) operand() (Expr, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.next()
		return ColRef{Name: t.text}, nil
	}
	v, err := p.literal()
	if err != nil {
		return nil, err
	}
	return Lit{V: v}, nil
}
