// Package rdbms implements the relational storage substrate of the
// personalized knowledge base — the role MySQL plays in the paper. It is a
// small in-memory relational engine with typed columns, a SQL subset
// (CREATE TABLE, INSERT, SELECT with WHERE/ORDER BY/LIMIT and aggregates,
// UPDATE, DELETE), hash indexes, and CSV import/export for the knowledge
// base's format conversions.
package rdbms

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Type is a column type.
type Type int

// Column types.
const (
	TypeInt Type = iota + 1
	TypeFloat
	TypeText
	TypeBool
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	default:
		return "UNKNOWN"
	}
}

// ParseType parses a SQL type name (case-insensitive, with common aliases).
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT":
		return TypeInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL":
		return TypeFloat, nil
	case "TEXT", "VARCHAR", "STRING", "CHAR":
		return TypeText, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	default:
		return 0, fmt.Errorf("rdbms: unknown type %q", s)
	}
}

// Value is a typed cell value. A Value with Null true carries no payload.
type Value struct {
	Type  Type
	Null  bool
	Int   int64
	Float float64
	Text  string
	Bool  bool
}

// Convenience constructors.
func IntV(v int64) Value     { return Value{Type: TypeInt, Int: v} }
func FloatV(v float64) Value { return Value{Type: TypeFloat, Float: v} }
func TextV(v string) Value   { return Value{Type: TypeText, Text: v} }
func BoolV(v bool) Value     { return Value{Type: TypeBool, Bool: v} }
func NullV(t Type) Value     { return Value{Type: t, Null: true} }

// String renders the value for display and CSV export.
func (v Value) String() string {
	if v.Null {
		return ""
	}
	switch v.Type {
	case TypeInt:
		return strconv.FormatInt(v.Int, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case TypeBool:
		return strconv.FormatBool(v.Bool)
	default:
		return v.Text
	}
}

// AsFloat converts numeric values to float64 for aggregation.
func (v Value) AsFloat() (float64, error) {
	if v.Null {
		return 0, errors.New("rdbms: NULL is not numeric")
	}
	switch v.Type {
	case TypeInt:
		return float64(v.Int), nil
	case TypeFloat:
		return v.Float, nil
	default:
		return 0, fmt.Errorf("rdbms: %s is not numeric", v.Type)
	}
}

// Compare orders two values of compatible types: -1, 0, +1. NULLs sort
// before everything and equal each other.
func Compare(a, b Value) (int, error) {
	if a.Null && b.Null {
		return 0, nil
	}
	if a.Null {
		return -1, nil
	}
	if b.Null {
		return 1, nil
	}
	// Numeric cross-type comparison.
	if (a.Type == TypeInt || a.Type == TypeFloat) && (b.Type == TypeInt || b.Type == TypeFloat) {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.Type != b.Type {
		return 0, fmt.Errorf("rdbms: cannot compare %s with %s", a.Type, b.Type)
	}
	switch a.Type {
	case TypeText:
		return strings.Compare(a.Text, b.Text), nil
	case TypeBool:
		switch {
		case a.Bool == b.Bool:
			return 0, nil
		case !a.Bool:
			return -1, nil
		default:
			return 1, nil
		}
	default:
		return 0, fmt.Errorf("rdbms: cannot compare %s", a.Type)
	}
}

// Coerce converts a raw string into a value of the target type, used by CSV
// import and literal binding. Empty strings become NULL.
func Coerce(raw string, t Type) (Value, error) {
	if raw == "" {
		return NullV(t), nil
	}
	switch t {
	case TypeInt:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("rdbms: %q is not an INT: %w", raw, err)
		}
		return IntV(n), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return Value{}, fmt.Errorf("rdbms: %q is not a FLOAT: %w", raw, err)
		}
		return FloatV(f), nil
	case TypeBool:
		b, err := strconv.ParseBool(strings.ToLower(raw))
		if err != nil {
			return Value{}, fmt.Errorf("rdbms: %q is not a BOOL: %w", raw, err)
		}
		return BoolV(b), nil
	default:
		return TextV(raw), nil
	}
}
