package rdbms

import (
	"fmt"
	"sort"
	"strings"
)

// ResultSet is the output of a query: named columns and rows.
type ResultSet struct {
	Columns []string
	Rows    []Row
}

// Exec parses and executes one SQL statement against the database. Writes
// return an empty ResultSet with Rows nil; SELECTs return data.
func (db *DB) Exec(sql string) (ResultSet, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return ResultSet{}, err
	}
	switch s := stmt.(type) {
	case CreateStmt:
		if _, err := db.Create(s.Table, s.Schema); err != nil {
			return ResultSet{}, err
		}
		return ResultSet{}, nil
	case CreateIndexStmt:
		t, err := db.Table(s.Table)
		if err != nil {
			return ResultSet{}, err
		}
		return ResultSet{}, t.CreateIndex(s.Column)
	case InsertStmt:
		return ResultSet{}, db.execInsert(s)
	case SelectStmt:
		return db.execSelect(s)
	case UpdateStmt:
		return ResultSet{}, db.execUpdate(s)
	case DeleteStmt:
		return ResultSet{}, db.execDelete(s)
	default:
		return ResultSet{}, fmt.Errorf("rdbms: unhandled statement %T", stmt)
	}
}

func (db *DB) execInsert(s InsertStmt) error {
	t, err := db.Table(s.Table)
	if err != nil {
		return err
	}
	schema := t.Schema()
	colIdx := make([]int, 0, len(schema))
	if len(s.Columns) == 0 {
		for i := range schema {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, c := range s.Columns {
			i := schema.Index(c)
			if i < 0 {
				return fmt.Errorf("rdbms: no column %q in %s", c, s.Table)
			}
			colIdx = append(colIdx, i)
		}
	}
	for _, vals := range s.Rows {
		if len(vals) != len(colIdx) {
			return fmt.Errorf("rdbms: %d values for %d columns", len(vals), len(colIdx))
		}
		row := make(Row, len(schema))
		for i := range row {
			row[i] = NullV(schema[i].Type)
		}
		for k, ci := range colIdx {
			v := vals[k]
			if v.Null {
				row[ci] = NullV(schema[ci].Type)
				continue
			}
			row[ci] = v
		}
		if err := t.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

// matchIDs returns the candidate row ids for a WHERE clause, using an index
// when the clause is a simple equality on an indexed column, else a full
// scan. The bool reports whether filtering is still required.
func matchIDs(t *Table, where Expr) ([]int, bool) {
	if b, ok := where.(Binary); ok && b.Op == "=" {
		if col, ok := b.L.(ColRef); ok {
			if lit, ok := b.R.(Lit); ok {
				if ids, indexed := t.lookup(col.Name, lit.V); indexed {
					return ids, false
				}
			}
		}
	}
	var ids []int
	_ = t.scan(func(id int, _ Row) error {
		ids = append(ids, id)
		return nil
	})
	return ids, where != nil
}

func filterRows(t *Table, where Expr) ([]Row, error) {
	ids, needFilter := matchIDs(t, where)
	schema := t.Schema()
	out := make([]Row, 0, len(ids))
	for _, id := range ids {
		row := t.row(id)
		if row == nil {
			continue
		}
		if needFilter {
			v, err := where.Eval(row, schema)
			if err != nil {
				return nil, err
			}
			if v.Null || v.Type != TypeBool || !v.Bool {
				continue
			}
		}
		out = append(out, row)
	}
	return out, nil
}

func (db *DB) execSelect(s SelectStmt) (ResultSet, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return ResultSet{}, err
	}
	schema := t.Schema()
	rows, err := filterRows(t, s.Where)
	if err != nil {
		return ResultSet{}, err
	}

	hasAgg := false
	for _, it := range s.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	if hasAgg || s.GroupBy != "" {
		return aggregateSelect(s, schema, rows)
	}

	// Plain projection.
	var cols []string
	var idxs []int
	for _, it := range s.Items {
		if it.Star {
			for i, c := range schema {
				cols = append(cols, c.Name)
				idxs = append(idxs, i)
			}
			continue
		}
		i := schema.Index(it.Column)
		if i < 0 {
			return ResultSet{}, fmt.Errorf("rdbms: no column %q", it.Column)
		}
		cols = append(cols, schema[i].Name)
		idxs = append(idxs, i)
	}
	if s.OrderBy != "" {
		oi := schema.Index(s.OrderBy)
		if oi < 0 {
			return ResultSet{}, fmt.Errorf("rdbms: no column %q", s.OrderBy)
		}
		var sortErr error
		sort.SliceStable(rows, func(i, j int) bool {
			cmp, err := Compare(rows[i][oi], rows[j][oi])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if s.Desc {
				return cmp > 0
			}
			return cmp < 0
		})
		if sortErr != nil {
			return ResultSet{}, sortErr
		}
	}
	if s.Limit >= 0 && len(rows) > s.Limit {
		rows = rows[:s.Limit]
	}
	out := ResultSet{Columns: cols, Rows: make([]Row, len(rows))}
	for ri, row := range rows {
		pr := make(Row, len(idxs))
		for k, i := range idxs {
			pr[k] = row[i]
		}
		out.Rows[ri] = pr
	}
	return out, nil
}

func aggregateSelect(s SelectStmt, schema Schema, rows []Row) (ResultSet, error) {
	// Validate items: with GROUP BY, plain columns must be the group
	// column; without, only aggregates are allowed.
	groupIdx := -1
	if s.GroupBy != "" {
		groupIdx = schema.Index(s.GroupBy)
		if groupIdx < 0 {
			return ResultSet{}, fmt.Errorf("rdbms: no column %q", s.GroupBy)
		}
	}
	for _, it := range s.Items {
		if it.Agg == "" {
			if it.Star {
				return ResultSet{}, fmt.Errorf("rdbms: * not allowed with aggregates")
			}
			if groupIdx < 0 || !strings.EqualFold(it.Column, s.GroupBy) {
				return ResultSet{}, fmt.Errorf("rdbms: column %q must appear in GROUP BY", it.Column)
			}
		}
	}
	groups := make(map[string][]Row)
	var order []string
	for _, row := range rows {
		key := ""
		if groupIdx >= 0 {
			key = row[groupIdx].String()
		}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], row)
	}
	if groupIdx < 0 && len(groups) == 0 {
		groups[""] = nil
		order = append(order, "")
	}
	sort.Strings(order)

	var cols []string
	for _, it := range s.Items {
		if it.Agg != "" {
			cols = append(cols, fmt.Sprintf("%s(%s)", it.Agg, it.Column))
		} else {
			cols = append(cols, schema[groupIdx].Name)
		}
	}
	out := ResultSet{Columns: cols}
	for _, key := range order {
		grows := groups[key]
		res := make(Row, len(s.Items))
		for k, it := range s.Items {
			if it.Agg == "" {
				if len(grows) > 0 {
					res[k] = grows[0][groupIdx]
				} else {
					res[k] = TextV(key)
				}
				continue
			}
			v, err := applyAgg(it, schema, grows)
			if err != nil {
				return ResultSet{}, err
			}
			res[k] = v
		}
		out.Rows = append(out.Rows, res)
	}
	if s.Limit >= 0 && len(out.Rows) > s.Limit {
		out.Rows = out.Rows[:s.Limit]
	}
	return out, nil
}

func applyAgg(it SelectItem, schema Schema, rows []Row) (Value, error) {
	if it.Agg == "COUNT" {
		if it.Column == "*" {
			return IntV(int64(len(rows))), nil
		}
		ci := schema.Index(it.Column)
		if ci < 0 {
			return Value{}, fmt.Errorf("rdbms: no column %q", it.Column)
		}
		n := int64(0)
		for _, r := range rows {
			if !r[ci].Null {
				n++
			}
		}
		return IntV(n), nil
	}
	ci := schema.Index(it.Column)
	if ci < 0 {
		return Value{}, fmt.Errorf("rdbms: no column %q", it.Column)
	}
	var sum float64
	var count int
	var minV, maxV Value
	for _, r := range rows {
		v := r[ci]
		if v.Null {
			continue
		}
		switch it.Agg {
		case "SUM", "AVG":
			f, err := v.AsFloat()
			if err != nil {
				return Value{}, err
			}
			sum += f
			count++
		case "MIN":
			if count == 0 {
				minV = v
			} else if cmp, err := Compare(v, minV); err != nil {
				return Value{}, err
			} else if cmp < 0 {
				minV = v
			}
			count++
		case "MAX":
			if count == 0 {
				maxV = v
			} else if cmp, err := Compare(v, maxV); err != nil {
				return Value{}, err
			} else if cmp > 0 {
				maxV = v
			}
			count++
		default:
			return Value{}, fmt.Errorf("rdbms: unknown aggregate %q", it.Agg)
		}
	}
	switch it.Agg {
	case "SUM":
		return FloatV(sum), nil
	case "AVG":
		if count == 0 {
			return NullV(TypeFloat), nil
		}
		return FloatV(sum / float64(count)), nil
	case "MIN":
		if count == 0 {
			return Value{Null: true}, nil
		}
		return minV, nil
	default: // MAX
		if count == 0 {
			return Value{Null: true}, nil
		}
		return maxV, nil
	}
}

func (db *DB) execUpdate(s UpdateStmt) error {
	t, err := db.Table(s.Table)
	if err != nil {
		return err
	}
	schema := t.Schema()
	setCols := make([]int, len(s.Columns))
	vals := make([]Value, len(s.Values))
	for k, c := range s.Columns {
		ci := schema.Index(c)
		if ci < 0 {
			return fmt.Errorf("rdbms: no column %q", c)
		}
		setCols[k] = ci
		v := s.Values[k]
		if !v.Null && v.Type != schema[ci].Type {
			if schema[ci].Type == TypeFloat && v.Type == TypeInt {
				v = FloatV(float64(v.Int))
			} else {
				return fmt.Errorf("rdbms: column %q wants %s, got %s", c, schema[ci].Type, v.Type)
			}
		}
		if v.Null {
			v = NullV(schema[ci].Type)
		}
		vals[k] = v
	}
	ids, needFilter := matchIDs(t, s.Where)
	for _, id := range ids {
		row := t.row(id)
		if row == nil {
			continue
		}
		if needFilter {
			v, err := s.Where.Eval(row, schema)
			if err != nil {
				return err
			}
			if v.Null || v.Type != TypeBool || !v.Bool {
				continue
			}
		}
		t.update(id, setCols, vals)
	}
	return nil
}

func (db *DB) execDelete(s DeleteStmt) error {
	t, err := db.Table(s.Table)
	if err != nil {
		return err
	}
	schema := t.Schema()
	ids, needFilter := matchIDs(t, s.Where)
	for _, id := range ids {
		row := t.row(id)
		if row == nil {
			continue
		}
		if needFilter {
			v, err := s.Where.Eval(row, schema)
			if err != nil {
				return err
			}
			if v.Null || v.Type != TypeBool || !v.Bool {
				continue
			}
		}
		t.delete(id)
	}
	return nil
}
