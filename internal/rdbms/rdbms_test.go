package rdbms

import (
	"fmt"
	"strings"
	"testing"
)

// mustExec runs SQL and fails the test on error.
func mustExec(t *testing.T, db *DB, sql string) ResultSet {
	t.Helper()
	rs, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return rs
}

func seededDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, "CREATE TABLE people (name TEXT, age INT, score FLOAT, active BOOL)")
	mustExec(t, db, "INSERT INTO people (name, age, score, active) VALUES "+
		"('alice', 30, 9.5, TRUE), ('bob', 25, 7.25, FALSE), ('carol', 35, 8.0, TRUE), ('dave', 25, NULL, TRUE)")
	return db
}

func TestCreateAndInsertSelect(t *testing.T) {
	db := seededDB(t)
	rs := mustExec(t, db, "SELECT * FROM people")
	if len(rs.Rows) != 4 || len(rs.Columns) != 4 {
		t.Fatalf("result = %+v", rs)
	}
	if rs.Columns[0] != "name" || rs.Columns[3] != "active" {
		t.Errorf("columns = %v", rs.Columns)
	}
}

func TestSelectProjection(t *testing.T) {
	db := seededDB(t)
	rs := mustExec(t, db, "SELECT name, age FROM people WHERE name = 'alice'")
	if len(rs.Rows) != 1 || rs.Rows[0][0].Text != "alice" || rs.Rows[0][1].Int != 30 {
		t.Errorf("result = %+v", rs)
	}
}

func TestWhereComparisons(t *testing.T) {
	db := seededDB(t)
	tests := []struct {
		where string
		want  int
	}{
		{"age = 25", 2},
		{"age != 25", 2},
		{"age <> 25", 2},
		{"age > 25", 2},
		{"age >= 25", 4},
		{"age < 30", 2},
		{"age <= 30", 3},
		{"active = TRUE", 3},
		{"score > 8.0", 1},
		{"name > 'bob'", 2},
	}
	for _, tt := range tests {
		rs := mustExec(t, db, "SELECT name FROM people WHERE "+tt.where)
		if len(rs.Rows) != tt.want {
			t.Errorf("WHERE %s returned %d rows, want %d", tt.where, len(rs.Rows), tt.want)
		}
	}
}

func TestWhereBooleanLogic(t *testing.T) {
	db := seededDB(t)
	rs := mustExec(t, db, "SELECT name FROM people WHERE age = 25 AND active = FALSE")
	if len(rs.Rows) != 1 || rs.Rows[0][0].Text != "bob" {
		t.Errorf("AND result = %+v", rs)
	}
	rs = mustExec(t, db, "SELECT name FROM people WHERE age = 30 OR age = 35")
	if len(rs.Rows) != 2 {
		t.Errorf("OR returned %d rows", len(rs.Rows))
	}
	rs = mustExec(t, db, "SELECT name FROM people WHERE NOT (age = 25)")
	if len(rs.Rows) != 2 {
		t.Errorf("NOT returned %d rows", len(rs.Rows))
	}
	rs = mustExec(t, db, "SELECT name FROM people WHERE (age = 25 OR age = 30) AND active = TRUE")
	if len(rs.Rows) != 2 {
		t.Errorf("parenthesized returned %d rows", len(rs.Rows))
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	db := seededDB(t)
	// dave has NULL score; NULL comparisons never match.
	rs := mustExec(t, db, "SELECT name FROM people WHERE score > 0")
	if len(rs.Rows) != 3 {
		t.Errorf("NULL score matched: %d rows", len(rs.Rows))
	}
	rs = mustExec(t, db, "SELECT name FROM people WHERE score = NULL")
	if len(rs.Rows) != 0 {
		t.Errorf("= NULL matched %d rows", len(rs.Rows))
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := seededDB(t)
	rs := mustExec(t, db, "SELECT name FROM people ORDER BY age ASC LIMIT 2")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	// bob and dave both 25; stable order keeps insertion order.
	if rs.Rows[0][0].Text != "bob" || rs.Rows[1][0].Text != "dave" {
		t.Errorf("order = %v, %v", rs.Rows[0][0].Text, rs.Rows[1][0].Text)
	}
	rs = mustExec(t, db, "SELECT name FROM people ORDER BY age DESC LIMIT 1")
	if rs.Rows[0][0].Text != "carol" {
		t.Errorf("DESC first = %v", rs.Rows[0][0].Text)
	}
}

func TestAggregates(t *testing.T) {
	db := seededDB(t)
	rs := mustExec(t, db, "SELECT COUNT(*), COUNT(score), SUM(age), AVG(age), MIN(age), MAX(age) FROM people")
	row := rs.Rows[0]
	if row[0].Int != 4 {
		t.Errorf("COUNT(*) = %v", row[0])
	}
	if row[1].Int != 3 { // NULL score excluded
		t.Errorf("COUNT(score) = %v", row[1])
	}
	if row[2].Float != 115 {
		t.Errorf("SUM(age) = %v", row[2])
	}
	if row[3].Float != 28.75 {
		t.Errorf("AVG(age) = %v", row[3])
	}
	if row[4].Int != 25 || row[5].Int != 35 {
		t.Errorf("MIN/MAX = %v/%v", row[4], row[5])
	}
}

func TestGroupBy(t *testing.T) {
	db := seededDB(t)
	rs := mustExec(t, db, "SELECT age, COUNT(*) FROM people GROUP BY age ORDER BY age")
	if len(rs.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(rs.Rows))
	}
	// Groups sorted by key string: "25", "30", "35".
	if rs.Rows[0][0].Int != 25 || rs.Rows[0][1].Int != 2 {
		t.Errorf("group 25 = %+v", rs.Rows[0])
	}
}

func TestGroupByRequiresGroupedColumn(t *testing.T) {
	db := seededDB(t)
	if _, err := db.Exec("SELECT name, COUNT(*) FROM people GROUP BY age"); err == nil {
		t.Error("ungrouped column accepted")
	}
}

func TestAggregatesEmptyTable(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE empty (x INT)")
	rs := mustExec(t, db, "SELECT COUNT(*), AVG(x), MIN(x) FROM empty")
	row := rs.Rows[0]
	if row[0].Int != 0 {
		t.Errorf("COUNT = %v", row[0])
	}
	if !row[1].Null || !row[2].Null {
		t.Errorf("empty AVG/MIN should be NULL: %+v", row)
	}
}

func TestUpdate(t *testing.T) {
	db := seededDB(t)
	mustExec(t, db, "UPDATE people SET age = 26, active = TRUE WHERE name = 'bob'")
	rs := mustExec(t, db, "SELECT age, active FROM people WHERE name = 'bob'")
	if rs.Rows[0][0].Int != 26 || !rs.Rows[0][1].Bool {
		t.Errorf("updated row = %+v", rs.Rows[0])
	}
	// Update without WHERE touches everything.
	mustExec(t, db, "UPDATE people SET score = 1.0")
	rs = mustExec(t, db, "SELECT COUNT(*) FROM people WHERE score = 1.0")
	if rs.Rows[0][0].Int != 4 {
		t.Errorf("bulk update hit %v rows", rs.Rows[0][0])
	}
}

func TestDelete(t *testing.T) {
	db := seededDB(t)
	mustExec(t, db, "DELETE FROM people WHERE age = 25")
	rs := mustExec(t, db, "SELECT COUNT(*) FROM people")
	if rs.Rows[0][0].Int != 2 {
		t.Errorf("after delete COUNT = %v", rs.Rows[0][0])
	}
	mustExec(t, db, "DELETE FROM people")
	rs = mustExec(t, db, "SELECT COUNT(*) FROM people")
	if rs.Rows[0][0].Int != 0 {
		t.Errorf("after bulk delete COUNT = %v", rs.Rows[0][0])
	}
}

func TestIndexedLookupMatchesScan(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE kv (k TEXT, v INT)")
	for i := 0; i < 200; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO kv (k, v) VALUES ('key%d', %d)", i%20, i))
	}
	scan := mustExec(t, db, "SELECT v FROM kv WHERE k = 'key7'")
	mustExec(t, db, "CREATE INDEX ON kv (k)")
	tab, err := db.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	if !tab.HasIndex("k") {
		t.Fatal("index not created")
	}
	indexed := mustExec(t, db, "SELECT v FROM kv WHERE k = 'key7'")
	if len(scan.Rows) != len(indexed.Rows) {
		t.Errorf("scan %d rows, indexed %d rows", len(scan.Rows), len(indexed.Rows))
	}
}

func TestIndexMaintainedAcrossMutations(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE kv (k TEXT, v INT)")
	mustExec(t, db, "CREATE INDEX ON kv (k)")
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES ('a', 1), ('a', 2), ('b', 3)")
	mustExec(t, db, "DELETE FROM kv WHERE v = 1")
	rs := mustExec(t, db, "SELECT v FROM kv WHERE k = 'a'")
	if len(rs.Rows) != 1 || rs.Rows[0][0].Int != 2 {
		t.Errorf("after delete: %+v", rs)
	}
	mustExec(t, db, "UPDATE kv SET k = 'c' WHERE v = 2")
	rs = mustExec(t, db, "SELECT v FROM kv WHERE k = 'c'")
	if len(rs.Rows) != 1 {
		t.Errorf("after update: %+v", rs)
	}
	rs = mustExec(t, db, "SELECT v FROM kv WHERE k = 'a'")
	if len(rs.Rows) != 0 {
		t.Errorf("stale index entry: %+v", rs)
	}
}

func TestTypeChecking(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (n INT)")
	if _, err := db.Exec("INSERT INTO t (n) VALUES ('text')"); err == nil {
		t.Error("text into INT accepted")
	}
	// Int into float is fine.
	mustExec(t, db, "CREATE TABLE f (x FLOAT)")
	mustExec(t, db, "INSERT INTO f (x) VALUES (3)")
	rs := mustExec(t, db, "SELECT x FROM f")
	if rs.Rows[0][0].Float != 3 {
		t.Errorf("coerced value = %+v", rs.Rows[0][0])
	}
}

func TestStringEscaping(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE q (s TEXT)")
	mustExec(t, db, "INSERT INTO q (s) VALUES ('it''s quoted')")
	rs := mustExec(t, db, "SELECT s FROM q")
	if rs.Rows[0][0].Text != "it's quoted" {
		t.Errorf("escaped string = %q", rs.Rows[0][0].Text)
	}
}

func TestNegativeNumbers(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE n (x INT)")
	mustExec(t, db, "INSERT INTO n (x) VALUES (-5), (3)")
	rs := mustExec(t, db, "SELECT x FROM n WHERE x < 0")
	if len(rs.Rows) != 1 || rs.Rows[0][0].Int != -5 {
		t.Errorf("negative = %+v", rs)
	}
}

func TestParseErrors(t *testing.T) {
	db := seededDB(t)
	bad := []string{
		"SELEC name FROM people",
		"SELECT FROM people",
		"SELECT name people",
		"INSERT people VALUES (1)",
		"CREATE TABLE (x INT)",
		"SELECT name FROM people WHERE",
		"SELECT name FROM people LIMIT x",
		"SELECT name FROM people; SELECT 1",
		"UPDATE people SET",
		"INSERT INTO people (name) VALUES ('x',)",
		"SELECT name FROM people WHERE name = 'unterminated",
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", sql)
		}
	}
}

func TestSemanticErrors(t *testing.T) {
	db := seededDB(t)
	bad := []string{
		"SELECT nope FROM people",
		"SELECT name FROM ghosts",
		"INSERT INTO people (ghost) VALUES (1)",
		"INSERT INTO people (name) VALUES (1, 2)",
		"SELECT name FROM people ORDER BY ghost",
		"SELECT SUM(name) FROM people",
		"CREATE TABLE people (x INT)",
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", sql)
		}
	}
}

func TestDropAndNames(t *testing.T) {
	db := seededDB(t)
	if got := db.Names(); len(got) != 1 || got[0] != "people" {
		t.Errorf("Names = %v", got)
	}
	if err := db.Drop("PEOPLE"); err != nil { // case-insensitive
		t.Fatal(err)
	}
	if err := db.Drop("people"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestCSVImportExportRoundTrip(t *testing.T) {
	db := NewDB()
	in := "name,age,score,active\nalice,30,9.5,true\nbob,25,7.25,false\ncarol,,8,true\n"
	tab, err := db.ImportCSV("folks", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	schema := tab.Schema()
	wantTypes := []Type{TypeText, TypeInt, TypeFloat, TypeBool}
	for i, wt := range wantTypes {
		if schema[i].Type != wt {
			t.Errorf("column %s inferred %s, want %s", schema[i].Name, schema[i].Type, wt)
		}
	}
	// carol's empty age is NULL.
	rs := mustExec(t, db, "SELECT COUNT(age) FROM folks")
	if rs.Rows[0][0].Int != 2 {
		t.Errorf("COUNT(age) = %v", rs.Rows[0][0])
	}
	var out strings.Builder
	if err := tab.ExportCSV(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "name,age,score,active\n") {
		t.Errorf("export header = %q", got)
	}
	if !strings.Contains(got, "alice,30,9.5,true") {
		t.Errorf("export missing alice row: %q", got)
	}
	// Re-import the export: same row count.
	db2 := NewDB()
	tab2, err := db2.ImportCSV("folks", strings.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Len() != tab.Len() {
		t.Errorf("round trip rows = %d, want %d", tab2.Len(), tab.Len())
	}
}

func TestExportResultCSV(t *testing.T) {
	db := seededDB(t)
	rs := mustExec(t, db, "SELECT name, age FROM people ORDER BY age DESC LIMIT 1")
	var out strings.Builder
	if err := ExportResultCSV(rs, &out); err != nil {
		t.Fatal(err)
	}
	want := "name,age\ncarol,35\n"
	if out.String() != want {
		t.Errorf("csv = %q, want %q", out.String(), want)
	}
}

func TestImportCSVErrors(t *testing.T) {
	db := NewDB()
	if _, err := db.ImportCSV("x", strings.NewReader("")); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := db.ImportCSV("y", strings.NewReader("a,b\n1,2,3\n")); err == nil {
		t.Error("ragged csv accepted")
	}
}

func TestMultiRowInsert(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE m (x INT)")
	mustExec(t, db, "INSERT INTO m (x) VALUES (1), (2), (3)")
	rs := mustExec(t, db, "SELECT COUNT(*) FROM m")
	if rs.Rows[0][0].Int != 3 {
		t.Errorf("COUNT = %v", rs.Rows[0][0])
	}
}

func TestInsertSchemaOrder(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE s (a INT, b TEXT)")
	mustExec(t, db, "INSERT INTO s VALUES (1, 'one')")
	rs := mustExec(t, db, "SELECT b FROM s WHERE a = 1")
	if rs.Rows[0][0].Text != "one" {
		t.Errorf("row = %+v", rs.Rows[0])
	}
}
