package kb

import (
	"math"
	"testing"

	"repro/internal/rdf"
)

func TestAddFactWithConfidence(t *testing.T) {
	k := newKB(t, Config{})
	if err := k.AddFactWithConfidence("kb:report", "kb:claims", "kb:fact-x", 0.7); err != nil {
		t.Fatal(err)
	}
	if got := k.FactConfidence("kb:report", "kb:claims", "kb:fact-x"); got != 0.7 {
		t.Errorf("confidence = %v, want 0.7", got)
	}
	// Unset facts default to fully trusted.
	if err := k.AddFact("kb:a", "kb:p", "kb:b"); err != nil {
		t.Fatal(err)
	}
	if got := k.FactConfidence("kb:a", "kb:p", "kb:b"); got != 1 {
		t.Errorf("default confidence = %v, want 1", got)
	}
	if err := k.AddFactWithConfidence("kb:x", "kb:p", "kb:y", 1.5); err == nil {
		t.Error("out-of-range level accepted")
	}
}

func TestInferWithConfidencePropagatesLevels(t *testing.T) {
	k := newKB(t, Config{})
	// dachshund < dog is certain; dog < animal came from a dubious
	// source. The inferred dachshund < animal must inherit the doubt.
	if err := k.AddFactWithConfidence("kb:dachshund", rdf.RDFSSubClassOf, "kb:dog", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := k.AddFactWithConfidence("kb:dog", rdf.RDFSSubClassOf, "kb:animal", 0.4); err != nil {
		t.Fatal(err)
	}
	changed, err := k.InferWithConfidence(0)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 {
		t.Fatal("nothing inferred")
	}
	got := k.FactConfidence("kb:dachshund", rdf.RDFSSubClassOf, "kb:animal")
	if math.Abs(got-0.4) > 1e-12 {
		t.Errorf("inferred confidence = %v, want 0.4 (weakest premise)", got)
	}
}

func TestInferWithConfidenceThreshold(t *testing.T) {
	k := newKB(t, Config{})
	if err := k.AddFactWithConfidence("kb:a", rdf.RDFSSubClassOf, "kb:b", 0.2); err != nil {
		t.Fatal(err)
	}
	if err := k.AddFactWithConfidence("kb:b", rdf.RDFSSubClassOf, "kb:c", 0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := k.InferWithConfidence(0.5); err != nil {
		t.Fatal(err)
	}
	goal := rdf.Statement{
		S: rdf.NewIRI("kb:a"),
		P: rdf.NewIRI(rdf.RDFSSubClassOf),
		O: rdf.NewIRI("kb:c"),
	}
	if k.Graph().Has(goal) {
		t.Error("sub-threshold inference asserted")
	}
}
