// Package kb implements the personalized knowledge base built on top of
// the rich SDK (paper §3). It stores data in multiple forms — relational
// tables, a key-value store, an RDF triple store, and CSV files — converts
// between them, disambiguates entities so aliases do not proliferate as
// redundant records, spell-checks text locally, performs statistical
// analysis and regression prediction, stores analysis results as RDF
// statements, and infers new facts from them (the Figure 5 loop:
// ingest → disambiguate → analyze → store results in RDF → infer). Data can
// be encrypted and compressed before persisting, and an enhanced remote
// store client provides cloud persistence with disconnected operation.
package kb

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/aggregate"
	"repro/internal/codec"
	"repro/internal/csvconv"
	"repro/internal/kvstore"
	"repro/internal/nlu"
	"repro/internal/pipeline"
	"repro/internal/rdbms"
	"repro/internal/rdf"
	"repro/internal/remotestore"
	"repro/internal/spell"
	"repro/internal/stats"
)

// Config configures a knowledge base.
type Config struct {
	// Dir is the root directory for CSV exports and local persistence.
	// Empty means no file persistence.
	Dir string
	// Passphrase, when non-empty, encrypts persisted payloads
	// (AES-256-GCM).
	Passphrase string
	// Compress gzip-compresses persisted payloads (before encryption).
	Compress bool
	// Remote, if non-nil, is the cloud store used by SaveRemote/
	// LoadRemote — a single-node *remotestore.Client or a sharded
	// *remotestore.Cluster, behind the same Store interface.
	Remote remotestore.Store
	// Dictionary overrides the spell-check dictionary. Nil uses the
	// built-in lexicon dictionary.
	Dictionary []string
}

// KB is a personalized knowledge base. Its components are individually
// safe for concurrent use; compound operations (ingest + convert) are not
// transactional.
type KB struct {
	cfg    Config
	db     *rdbms.DB
	graph  *rdf.Graph
	kv     kvstore.Store
	disamb *nlu.Disambiguator
	spell  *spell.Checker
	cdc    codec.Codec
	conf   *rdf.Confidences

	ruleMu sync.Mutex
	rules  []rdf.Rule
	// composed caches TransitiveRules + RDFSRules + user rules so Infer
	// and Prove don't rebuild (and ForwardChain doesn't re-validate) the
	// slice on every Fig. 5 cycle; AddRule invalidates it.
	composed []rdf.Rule
}

// New creates a knowledge base from cfg.
func New(cfg Config) (*KB, error) {
	var chain codec.Chain
	if cfg.Compress {
		chain = append(chain, codec.Gzip{})
	}
	if cfg.Passphrase != "" {
		enc, err := codec.NewAESGCM(cfg.Passphrase)
		if err != nil {
			return nil, fmt.Errorf("kb: %w", err)
		}
		chain = append(chain, enc)
	}
	var cdc codec.Codec = codec.Identity{}
	if len(chain) > 0 {
		cdc = chain
	}
	dict := cfg.Dictionary
	if dict == nil {
		dict = defaultDictionary()
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("kb: create dir: %w", err)
		}
	}
	return &KB{
		cfg:    cfg,
		db:     rdbms.NewDB(),
		graph:  rdf.NewGraph(),
		kv:     kvstore.NewMemory(),
		disamb: nlu.NewDisambiguator(),
		spell:  spell.NewChecker(dict, nil),
		cdc:    cdc,
	}, nil
}

// DB exposes the relational store.
func (k *KB) DB() *rdbms.DB { return k.db }

// Graph exposes the RDF store.
func (k *KB) Graph() *rdf.Graph { return k.graph }

// KV exposes the key-value store.
func (k *KB) KV() kvstore.Store { return k.kv }

// Disambiguator exposes the entity disambiguator.
func (k *KB) Disambiguator() *nlu.Disambiguator { return k.disamb }

// --- Ingestion and SQL ---

// IngestCSV loads CSV (with a header) into a new relational table.
func (k *KB) IngestCSV(table string, r io.Reader) (*rdbms.Table, error) {
	return k.db.ImportCSV(table, r)
}

// IngestCSVFile loads a CSV file into a new relational table.
func (k *KB) IngestCSVFile(table, path string) (*rdbms.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kb: open %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	return k.IngestCSV(table, f)
}

// SQL executes a SQL statement against the relational store.
func (k *KB) SQL(query string) (rdbms.ResultSet, error) {
	return k.db.Exec(query)
}

// --- Facts and inference ---

// AddFact enters a new fact as an RDF statement — the paper: "it is also
// very easy for users to enter new facts into the personal knowledge
// base". Subject and predicate are IRIs; the object is stored as an IRI if
// it looks like one (contains ':') and a literal otherwise.
func (k *KB) AddFact(subject, predicate, object string) error {
	o := rdf.NewLiteral(object)
	if looksLikeIRI(object) {
		o = rdf.NewIRI(object)
	}
	_, err := k.graph.Add(rdf.Statement{
		S: rdf.NewIRI(subject),
		P: rdf.NewIRI(predicate),
		O: o,
	})
	return err
}

func looksLikeIRI(s string) bool {
	for _, r := range s {
		if r == ':' {
			return true
		}
		if r == ' ' {
			return false
		}
	}
	return false
}

// AddRule registers a user-defined inference rule.
func (k *KB) AddRule(r rdf.Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	k.ruleMu.Lock()
	k.rules = append(k.rules, r)
	k.composed = nil
	k.ruleMu.Unlock()
	return nil
}

// allRules returns the cached composition of the built-in reasoners
// (transitive + RDFS) with the user rules, rebuilding it only after
// AddRule. Callers must not mutate the returned slice.
func (k *KB) allRules() []rdf.Rule {
	k.ruleMu.Lock()
	defer k.ruleMu.Unlock()
	if k.composed == nil {
		rules := append([]rdf.Rule{}, rdf.TransitiveRules()...)
		rules = append(rules, rdf.RDFSRules()...)
		k.composed = append(rules, k.rules...)
	}
	return k.composed
}

// Infer forward-chains the built-in reasoners (transitive + RDFS) plus all
// user rules to fixpoint and returns how many new facts were derived.
func (k *KB) Infer() (int, error) {
	return rdf.ForwardChain(k.graph, k.allRules(), 0)
}

// Prove backward-chains a goal against facts plus user rules.
func (k *KB) Prove(goal rdf.Statement) ([]rdf.Binding, error) {
	return rdf.BackwardChain(k.graph, k.allRules(), goal, 0)
}

// Query runs a SPARQL-like query against the RDF store.
func (k *KB) Query(q string) (rdf.QueryResult, error) {
	return k.graph.Query(q)
}

// --- Disambiguation ---

// Disambiguate resolves a surface form to its canonical entity.
func (k *KB) Disambiguate(surface string) (nlu.Resolution, bool) {
	return k.disamb.Resolve(surface)
}

// CanonicalizeColumn rewrites a table column in place, replacing each
// surface form with its canonical entity ID where one resolves. It returns
// (resolved, unresolved) counts. This is what prevents "the proliferation
// of redundant database entries" from alias variation (paper §3).
func (k *KB) CanonicalizeColumn(table, column string) (resolved, unresolved int, err error) {
	t, err := k.db.Table(table)
	if err != nil {
		return 0, 0, err
	}
	schema := t.Schema()
	ci := schema.Index(column)
	if ci < 0 {
		return 0, 0, fmt.Errorf("kb: no column %q in %s", column, table)
	}
	if schema[ci].Type != rdbms.TypeText {
		return 0, 0, fmt.Errorf("kb: column %q is not TEXT", column)
	}
	// Collect distinct surfaces, then rewrite via SQL updates so indexes
	// stay consistent.
	surfaces := make(map[string]bool)
	for _, row := range t.Rows() {
		if !row[ci].Null {
			surfaces[row[ci].Text] = true
		}
	}
	for s := range surfaces {
		r, ok := k.disamb.Resolve(s)
		if !ok {
			unresolved++
			continue
		}
		resolved++
		q := fmt.Sprintf("UPDATE %s SET %s = '%s' WHERE %s = '%s'",
			table, column, escapeSQL(r.EntityID), column, escapeSQL(s))
		if _, err := k.db.Exec(q); err != nil {
			return resolved, unresolved, fmt.Errorf("kb: canonicalize: %w", err)
		}
	}
	return resolved, unresolved, nil
}

func escapeSQL(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

// --- Spell checking ---

// SpellCheck flags unknown words in text with suggestions, using the local
// checker (paper §3: faster than remote services and free).
func (k *KB) SpellCheck(text string) []spell.Correction {
	return k.spell.Check(text)
}

// --- Statistics and the Figure 5 loop ---

// Regress fits y = a + b*x over two numeric columns.
func (k *KB) Regress(table, xCol, yCol string) (stats.LinearModel, error) {
	xs, ys, err := k.numericColumns(table, xCol, yCol)
	if err != nil {
		return stats.LinearModel{}, err
	}
	return stats.FitLinear(xs, ys)
}

// Summarize computes descriptive statistics over a numeric column.
func (k *KB) Summarize(table, col string) (stats.Summary, error) {
	xs, _, err := k.numericColumns(table, col, col)
	if err != nil {
		return stats.Summary{}, err
	}
	return stats.Summarize(xs)
}

func (k *KB) numericColumns(table, xCol, yCol string) (xs, ys []float64, err error) {
	t, err := k.db.Table(table)
	if err != nil {
		return nil, nil, err
	}
	schema := t.Schema()
	xi, yi := schema.Index(xCol), schema.Index(yCol)
	if xi < 0 || yi < 0 {
		return nil, nil, fmt.Errorf("kb: missing column %q or %q", xCol, yCol)
	}
	for _, row := range t.Rows() {
		if row[xi].Null || row[yi].Null {
			continue
		}
		x, err := row[xi].AsFloat()
		if err != nil {
			return nil, nil, err
		}
		y, err := row[yi].AsFloat()
		if err != nil {
			return nil, nil, err
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return xs, ys, nil
}

// AnalyzeAndStore runs the paper's Figure 5 analysis step: fit a
// regression over (xCol, yCol), predict y at each of predictAt, and store
// the key mathematical results as RDF statements under ns — making them
// available to the inference engine ("mathematical analysis combined with
// inferencing on the RDF store can generate new knowledge beyond that
// produced by just the mathematical analysis itself").
func (k *KB) AnalyzeAndStore(table, xCol, yCol, ns string, predictAt []float64) (stats.LinearModel, error) {
	m, err := k.Regress(table, xCol, yCol)
	if err != nil {
		return stats.LinearModel{}, err
	}
	analysis := ns + "analysis/" + table + "/" + yCol
	facts := []rdf.Statement{
		{S: rdf.NewIRI(analysis), P: rdf.NewIRI(ns + "kind"), O: rdf.NewLiteral("linear-regression")},
		{S: rdf.NewIRI(analysis), P: rdf.NewIRI(ns + "table"), O: rdf.NewLiteral(table)},
		{S: rdf.NewIRI(analysis), P: rdf.NewIRI(ns + "slope"), O: rdf.NewLiteral(formatFloat(m.Slope))},
		{S: rdf.NewIRI(analysis), P: rdf.NewIRI(ns + "intercept"), O: rdf.NewLiteral(formatFloat(m.Intercept))},
		{S: rdf.NewIRI(analysis), P: rdf.NewIRI(ns + "r2"), O: rdf.NewLiteral(formatFloat(m.R2))},
		{S: rdf.NewIRI(analysis), P: rdf.NewIRI(ns + "trend"), O: rdf.NewLiteral(trendLabel(m.Slope))},
	}
	// The per-prediction fact generation is the Fig. 5 "store analysis
	// results in RDF" half: it streams through the same bounded-concurrency
	// engine as the web analysis loop, and the engine's order preservation
	// keeps the fact stream aligned with predictAt.
	p := pipeline.New(context.Background())
	predictions := pipeline.Via(pipeline.Source(p, "predictAt", predictAt),
		pipeline.Stage[float64, []rdf.Statement]{
			Name:    "predict",
			Workers: 4,
			Fn: func(_ context.Context, x float64) ([]rdf.Statement, error) {
				pred := rdf.NewIRI(fmt.Sprintf("%sprediction/%s/%s/%s", ns, table, yCol, formatFloat(x)))
				return []rdf.Statement{
					{S: pred, P: rdf.NewIRI(ns + "ofAnalysis"), O: rdf.NewIRI(analysis)},
					{S: pred, P: rdf.NewIRI(ns + "x"), O: rdf.NewLiteral(formatFloat(x))},
					{S: pred, P: rdf.NewIRI(ns + "y"), O: rdf.NewLiteral(formatFloat(m.Predict(x)))},
				}, nil
			},
		})
	col := pipeline.Collect(predictions, "facts")
	if err := p.Wait(); err != nil {
		return stats.LinearModel{}, err
	}
	for _, fs := range col.Items() {
		facts = append(facts, fs...)
	}
	if _, err := k.graph.AddAll(facts); err != nil {
		return stats.LinearModel{}, err
	}
	return m, nil
}

// StoreWebSentiments records aggregated per-entity web sentiment as RDF
// facts, labeling each entity favorable, neutral, or unfavorable. Its
// signature matches pipeline.AnalysisConfig.Sentiments, so a knowledge
// base plugs directly into the analysis pipeline as its sink.
func (k *KB) StoreWebSentiments(_ context.Context, sentiments []aggregate.EntitySentiment) error {
	for _, s := range sentiments {
		mood := "neutral"
		if s.MeanScore > 0.15 {
			mood = "favorable"
		} else if s.MeanScore < -0.15 {
			mood = "unfavorable"
		}
		if err := k.AddFact(s.EntityID, "kb:webSentiment", mood); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', 10, 64) }

func trendLabel(slope float64) string {
	switch {
	case slope > 0:
		return "increasing"
	case slope < 0:
		return "decreasing"
	default:
		return "flat"
	}
}

// --- Conversions ---

// TableToRDF converts a table's rows into RDF statements under ns and adds
// them to the graph, returning how many statements were added.
func (k *KB) TableToRDF(table, subjectCol, ns string) (int, error) {
	t, err := k.db.Table(table)
	if err != nil {
		return 0, err
	}
	stmts, err := csvconv.TableToStatements(t, subjectCol, ns)
	if err != nil {
		return 0, err
	}
	return k.graph.AddAll(stmts)
}

// RDFToTable materializes the entire graph as a subject/predicate/object
// table.
func (k *KB) RDFToTable(table string) (*rdbms.Table, error) {
	return csvconv.StatementsToTable(k.db, table, k.graph.All())
}

// ExportTableCSV writes a table as CSV into the KB directory and returns
// the path.
func (k *KB) ExportTableCSV(table string) (string, error) {
	if k.cfg.Dir == "" {
		return "", fmt.Errorf("kb: no directory configured")
	}
	t, err := k.db.Table(table)
	if err != nil {
		return "", err
	}
	path := filepath.Join(k.cfg.Dir, table+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("kb: create %s: %w", path, err)
	}
	if err := t.ExportCSV(f); err != nil {
		_ = f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("kb: close %s: %w", path, err)
	}
	return path, nil
}

// ExportGraphCSV writes the RDF store as subject/predicate/object CSV and
// returns the path.
func (k *KB) ExportGraphCSV(name string) (string, error) {
	if k.cfg.Dir == "" {
		return "", fmt.Errorf("kb: no directory configured")
	}
	path := filepath.Join(k.cfg.Dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("kb: create %s: %w", path, err)
	}
	if err := csvconv.StatementsToCSV(f, k.graph.All()); err != nil {
		_ = f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("kb: close %s: %w", path, err)
	}
	return path, nil
}

// --- Persistence (encrypted/compressed) ---

// SaveLocal persists a payload under the KB directory, transformed by the
// configured compression/encryption chain.
func (k *KB) SaveLocal(name string, data []byte) error {
	if k.cfg.Dir == "" {
		return fmt.Errorf("kb: no directory configured")
	}
	enc, err := k.cdc.Encode(data)
	if err != nil {
		return fmt.Errorf("kb: encode: %w", err)
	}
	path := filepath.Join(k.cfg.Dir, name+".bin")
	if err := os.WriteFile(path, enc, 0o600); err != nil {
		return fmt.Errorf("kb: write %s: %w", path, err)
	}
	return nil
}

// LoadLocal reads and decodes a payload written by SaveLocal.
func (k *KB) LoadLocal(name string) ([]byte, error) {
	path := filepath.Join(k.cfg.Dir, name+".bin")
	enc, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("kb: read %s: %w", path, err)
	}
	data, err := k.cdc.Decode(enc)
	if err != nil {
		return nil, fmt.Errorf("kb: decode: %w", err)
	}
	return data, nil
}

// SaveRemote stores a payload in the configured cloud store through the
// enhanced client (which applies its own codec, caching, and offline
// queueing).
func (k *KB) SaveRemote(key string, data []byte) error {
	if k.cfg.Remote == nil {
		return fmt.Errorf("kb: no remote store configured")
	}
	return k.cfg.Remote.Put(key, data)
}

// LoadRemote retrieves a payload from the cloud store.
func (k *KB) LoadRemote(key string) ([]byte, error) {
	if k.cfg.Remote == nil {
		return nil, fmt.Errorf("kb: no remote store configured")
	}
	return k.cfg.Remote.Get(key)
}

func defaultDictionary() []string {
	return lexiconDictionary()
}
