package kb

import (
	"repro/internal/nlu"
	"repro/internal/rdf"
)

// Accuracy levels on facts (the paper's §5 future work, implemented): each
// fact may carry a confidence in (0, 1]; inference propagates levels so
// newly inferred facts are only as trusted as their weakest support.

// AddFactWithConfidence enters a fact with an accuracy level.
func (k *KB) AddFactWithConfidence(subject, predicate, object string, level float64) error {
	if err := k.AddFact(subject, predicate, object); err != nil {
		return err
	}
	return k.confidences().Set(k.factStatement(subject, predicate, object), level)
}

// FactConfidence returns the accuracy level of a fact (1 if never set).
func (k *KB) FactConfidence(subject, predicate, object string) float64 {
	return k.confidences().Get(k.factStatement(subject, predicate, object))
}

// InferWithConfidence forward-chains the built-in reasoners plus user
// rules while propagating accuracy levels: derived facts get
// min(premise levels) and facts derivable several ways keep their best
// level. Derivations weaker than minThreshold are discarded. It returns
// how many facts were newly asserted or had their level raised.
func (k *KB) InferWithConfidence(minThreshold float64) (int, error) {
	base := k.allRules()
	rules := make([]rdf.ConfidentRule, 0, len(base))
	for _, r := range base {
		rules = append(rules, rdf.ConfidentRule{Rule: r, Confidence: 1})
	}
	return rdf.ForwardChainConfidence(k.graph, k.confidences(), rules, minThreshold, 0)
}

// AddRelations stores extracted entity relations (paper §2.1's
// relationship extraction) as RDF facts carrying their extraction
// confidence as the fact's accuracy level, making them first-class inputs
// to confidence-aware inference. It returns how many facts were added.
func (k *KB) AddRelations(relations []nlu.Relation) (int, error) {
	added := 0
	for _, r := range relations {
		stmt := rdf.Statement{
			S: rdf.NewIRI(r.SubjectID),
			P: rdf.NewIRI(r.Predicate),
			O: rdf.NewIRI(r.ObjectID),
		}
		ok, err := k.graph.Add(stmt)
		if err != nil {
			return added, err
		}
		level := r.Confidence
		if level <= 0 || level > 1 {
			level = 1
		}
		if err := k.confidences().Set(stmt, level); err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

func (k *KB) confidences() *rdf.Confidences {
	if k.conf == nil {
		k.conf = rdf.NewConfidences(1)
	}
	return k.conf
}

func (k *KB) factStatement(subject, predicate, object string) rdf.Statement {
	o := rdf.NewLiteral(object)
	if looksLikeIRI(object) {
		o = rdf.NewIRI(object)
	}
	return rdf.Statement{S: rdf.NewIRI(subject), P: rdf.NewIRI(predicate), O: o}
}
