package kb

import "repro/internal/lexicon"

// lexiconDictionary is indirected for testability.
func lexiconDictionary() []string { return lexicon.Dictionary() }
