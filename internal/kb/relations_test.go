package kb

import (
	"testing"

	"repro/internal/nlu"
	"repro/internal/rdf"
)

func TestAddRelationsStoresFactsWithConfidence(t *testing.T) {
	k := newKB(t, Config{})
	engine := nlu.NewEngine(nlu.ProfileAlpha)
	a := engine.Analyze("Acme Corporation acquired Globex Industries.")
	if len(a.Relations) == 0 {
		t.Fatal("no relations extracted")
	}
	added, err := k.AddRelations(a.Relations)
	if err != nil {
		t.Fatal(err)
	}
	if added != len(a.Relations) {
		t.Errorf("added = %d, want %d", added, len(a.Relations))
	}
	res, err := k.Query("SELECT ?who WHERE { <company:acme> <kb:acquired> ?who }")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Value != "company:globex" {
		t.Errorf("rows = %v", res.Rows)
	}
	// The fact carries the extraction confidence as its accuracy level.
	level := k.FactConfidence("company:acme", "kb:acquired", "company:globex")
	if level != a.Relations[0].Confidence {
		t.Errorf("level = %v, want %v", level, a.Relations[0].Confidence)
	}
}

func TestRelationsFeedConfidentInference(t *testing.T) {
	k := newKB(t, Config{})
	// A weakly extracted acquisition plus a trusted rule: ownership
	// follows acquisition, but only above the trust threshold.
	if _, err := k.AddRelations([]nlu.Relation{
		{SubjectID: "company:acme", Predicate: "kb:acquired", ObjectID: "company:globex", Confidence: 0.3},
	}); err != nil {
		t.Fatal(err)
	}
	err := k.AddRule(rdf.Rule{
		Name: "ownership",
		Premises: []rdf.Statement{
			{S: rdf.NewVar("a"), P: rdf.NewIRI("kb:acquired"), O: rdf.NewVar("b")},
		},
		Conclusions: []rdf.Statement{
			{S: rdf.NewVar("a"), P: rdf.NewIRI("kb:owns"), O: rdf.NewVar("b")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.InferWithConfidence(0.5); err != nil {
		t.Fatal(err)
	}
	owns := rdf.Statement{S: rdf.NewIRI("company:acme"), P: rdf.NewIRI("kb:owns"), O: rdf.NewIRI("company:globex")}
	if k.Graph().Has(owns) {
		t.Error("low-confidence relation produced an above-threshold inference")
	}
	// With the threshold relaxed the inference lands, carrying the level.
	if _, err := k.InferWithConfidence(0); err != nil {
		t.Fatal(err)
	}
	if !k.Graph().Has(owns) {
		t.Fatal("inference missing at zero threshold")
	}
	if got := k.FactConfidence("company:acme", "kb:owns", "company:globex"); got != 0.3 {
		t.Errorf("inferred level = %v, want 0.3", got)
	}
}

func TestAddRelationsDuplicate(t *testing.T) {
	k := newKB(t, Config{})
	r := nlu.Relation{SubjectID: "a:1", Predicate: "kb:praised", ObjectID: "a:2", Confidence: 0.8}
	if _, err := k.AddRelations([]nlu.Relation{r, r}); err != nil {
		t.Fatal(err)
	}
	added, err := k.AddRelations([]nlu.Relation{r})
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Errorf("re-adding counted %d new facts", added)
	}
}
