package kb

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
)

// benchKB builds a knowledge base with a subclass chain, one instance at
// the bottom, and a handful of user rules — enough that Infer and Prove
// exercise both the composed-rule cache and the reasoners.
func benchKB(b *testing.B, chain int) *KB {
	b.Helper()
	k, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < chain-1; i++ {
		if err := k.AddFact(fmt.Sprintf("class:%03d", i), rdf.RDFSSubClassOf, fmt.Sprintf("class:%03d", i+1)); err != nil {
			b.Fatal(err)
		}
	}
	if err := k.AddFact("item:leaf", rdf.RDFType, "class:000"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		err := k.AddRule(rdf.Rule{
			Name:        fmt.Sprintf("tag-%d", i),
			Premises:    []rdf.Statement{{S: rdf.NewVar("x"), P: rdf.NewIRI(fmt.Sprintf("p%d", i)), O: rdf.NewVar("y")}},
			Conclusions: []rdf.Statement{{S: rdf.NewVar("x"), P: rdf.NewIRI("tagged"), O: rdf.NewVar("y")}},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return k
}

// BenchmarkKBInfer measures repeated Infer calls on a converged KB: after
// the first call every subsequent one pays only the composed-rule cache
// lookup (PR 5: AddRule invalidates, Infer no longer rebuilds the slice)
// plus a no-op chaining round.
func BenchmarkKBInfer(b *testing.B) {
	k := benchKB(b, 40)
	if _, err := k.Infer(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Infer(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKBProve measures goal-directed proof on the cached rule set.
func BenchmarkKBProve(b *testing.B) {
	k := benchKB(b, 40)
	goal := rdf.Statement{
		S: rdf.NewIRI("item:leaf"),
		P: rdf.NewIRI(rdf.RDFType),
		O: rdf.NewIRI("class:020"),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bindings, err := k.Prove(goal)
		if err != nil {
			b.Fatal(err)
		}
		if len(bindings) == 0 {
			b.Fatal("goal not proven")
		}
	}
}
