package kb

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/remotestore"
)

const salesCSV = "country,year,revenue\nUSA,2024,100\nUnited States,2025,120\nAmerica,2026,140\nGermany,2024,80\nGermany,2025,90\n"

func newKB(t *testing.T, cfg Config) *KB {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	k, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestIngestAndSQL(t *testing.T) {
	k := newKB(t, Config{})
	if _, err := k.IngestCSV("sales", strings.NewReader(salesCSV)); err != nil {
		t.Fatal(err)
	}
	rs, err := k.SQL("SELECT COUNT(*) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].Int != 5 {
		t.Errorf("COUNT = %v", rs.Rows[0][0])
	}
}

func TestIngestCSVFile(t *testing.T) {
	k := newKB(t, Config{})
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tab, err := k.IngestCSVFile("t", path)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Errorf("rows = %d", tab.Len())
	}
}

func TestAddFactAndQuery(t *testing.T) {
	k := newKB(t, Config{})
	if err := k.AddFact("kb:acme", "kb:locatedIn", "country:us"); err != nil {
		t.Fatal(err)
	}
	if err := k.AddFact("kb:acme", "kb:motto", "move fast"); err != nil {
		t.Fatal(err)
	}
	res, err := k.Query("SELECT ?where WHERE { <kb:acme> <kb:locatedIn> ?where }")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Value != "country:us" || res.Rows[0][0].Kind != rdf.IRI {
		t.Errorf("rows = %v", res.Rows)
	}
	// Plain text object stays a literal.
	res, err = k.Query("SELECT ?m WHERE { <kb:acme> <kb:motto> ?m }")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Kind != rdf.Literal {
		t.Errorf("motto kind = %v, want literal", res.Rows[0][0].Kind)
	}
}

func TestCanonicalizeColumnCollapsesAliases(t *testing.T) {
	// The paper's proliferation example: USA / United States / America
	// must become one entity.
	k := newKB(t, Config{})
	if _, err := k.IngestCSV("sales", strings.NewReader(salesCSV)); err != nil {
		t.Fatal(err)
	}
	before, err := k.SQL("SELECT country, COUNT(*) FROM sales GROUP BY country")
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Rows) != 4 { // USA, United States, America, Germany
		t.Fatalf("before groups = %d, want 4", len(before.Rows))
	}
	resolved, unresolved, err := k.CanonicalizeColumn("sales", "country")
	if err != nil {
		t.Fatal(err)
	}
	if resolved != 4 || unresolved != 0 {
		t.Errorf("resolved/unresolved = %d/%d", resolved, unresolved)
	}
	after, err := k.SQL("SELECT country, COUNT(*) FROM sales GROUP BY country")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != 2 { // country:us, country:de
		t.Errorf("after groups = %d, want 2: %+v", len(after.Rows), after.Rows)
	}
	us, err := k.SQL("SELECT COUNT(*) FROM sales WHERE country = 'country:us'")
	if err != nil {
		t.Fatal(err)
	}
	if us.Rows[0][0].Int != 3 {
		t.Errorf("US rows = %v, want 3", us.Rows[0][0])
	}
}

func TestCanonicalizeColumnErrors(t *testing.T) {
	k := newKB(t, Config{})
	if _, err := k.IngestCSV("t", strings.NewReader("n\n1\n")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := k.CanonicalizeColumn("ghost", "n"); err == nil {
		t.Error("missing table accepted")
	}
	if _, _, err := k.CanonicalizeColumn("t", "ghost"); err == nil {
		t.Error("missing column accepted")
	}
	if _, _, err := k.CanonicalizeColumn("t", "n"); err == nil {
		t.Error("non-text column accepted")
	}
}

func TestSpellCheck(t *testing.T) {
	k := newKB(t, Config{})
	corrs := k.SpellCheck("The markte in Germny grew.")
	if len(corrs) != 2 {
		t.Fatalf("corrections = %+v", corrs)
	}
	if corrs[0].Suggestion != "market" || corrs[1].Suggestion != "germany" {
		t.Errorf("suggestions = %+v", corrs)
	}
}

func TestRegressAndSummarize(t *testing.T) {
	k := newKB(t, Config{})
	csv := "x,y\n1,10\n2,20\n3,30\n4,40\n"
	if _, err := k.IngestCSV("pts", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	m, err := k.Regress("pts", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if m.Slope < 9.99 || m.Slope > 10.01 {
		t.Errorf("slope = %v, want 10", m.Slope)
	}
	s, err := k.Summarize("pts", "y")
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 25 || s.N != 4 {
		t.Errorf("summary = %+v", s)
	}
}

func TestFigure5LoopAnalyzeStoreInfer(t *testing.T) {
	// Ingest -> regression -> results as RDF -> user rule infers new
	// knowledge from the analysis results.
	k := newKB(t, Config{})
	csv := "year,revenue\n2022,100\n2023,110\n2024,121\n2025,133\n"
	if _, err := k.IngestCSV("growth", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	m, err := k.AnalyzeAndStore("growth", "year", "revenue", "kb:", []float64{2026})
	if err != nil {
		t.Fatal(err)
	}
	if m.Slope <= 0 {
		t.Fatalf("slope = %v, want positive", m.Slope)
	}
	// The trend fact is in the graph.
	res, err := k.Query("SELECT ?a WHERE { ?a <kb:trend> \"increasing\" }")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("trend facts = %v", res.Rows)
	}
	// User rule: increasing-trend analyses mark their table as growing.
	rule := rdf.Rule{
		Name: "growing-table",
		Premises: []rdf.Statement{
			{S: rdf.NewVar("a"), P: rdf.NewIRI("kb:trend"), O: rdf.NewLiteral("increasing")},
			{S: rdf.NewVar("a"), P: rdf.NewIRI("kb:table"), O: rdf.NewVar("t")},
		},
		Conclusions: []rdf.Statement{
			{S: rdf.NewVar("t"), P: rdf.NewIRI("kb:classifiedAs"), O: rdf.NewLiteral("growing")},
		},
	}
	if err := k.AddRule(rule); err != nil {
		t.Fatal(err)
	}
	added, err := k.Infer()
	if err != nil {
		t.Fatal(err)
	}
	if added < 1 {
		t.Errorf("inference derived %d facts, want >= 1", added)
	}
	res, err = k.Query("SELECT ?t WHERE { ?t <kb:classifiedAs> \"growing\" }")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Value != "growth" {
		t.Errorf("classified = %v", res.Rows)
	}
	// Predictions are queryable.
	res, err = k.Query("SELECT ?p ?y WHERE { ?p <kb:ofAnalysis> <kb:analysis/growth/revenue> . ?p <kb:y> ?y }")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("predictions = %v", res.Rows)
	}
}

func TestProveBackward(t *testing.T) {
	k := newKB(t, Config{})
	if err := k.AddFact("kb:dachshund", rdf.RDFSSubClassOf, "kb:dog"); err != nil {
		t.Fatal(err)
	}
	if err := k.AddFact("kb:dog", rdf.RDFSSubClassOf, "kb:animal"); err != nil {
		t.Fatal(err)
	}
	goal := rdf.Statement{
		S: rdf.NewIRI("kb:dachshund"),
		P: rdf.NewIRI(rdf.RDFSSubClassOf),
		O: rdf.NewIRI("kb:animal"),
	}
	bindings, err := k.Prove(goal)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) == 0 {
		t.Error("transitive goal not provable")
	}
}

func TestTableToRDFAndBack(t *testing.T) {
	k := newKB(t, Config{})
	if _, err := k.IngestCSV("sales", strings.NewReader(salesCSV)); err != nil {
		t.Fatal(err)
	}
	n, err := k.TableToRDF("sales", "country", "kb:")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no statements added")
	}
	tab, err := k.RDFToTable("triples")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != k.Graph().Len() {
		t.Errorf("table rows = %d, graph = %d", tab.Len(), k.Graph().Len())
	}
}

func TestExports(t *testing.T) {
	dir := t.TempDir()
	k := newKB(t, Config{Dir: dir})
	if _, err := k.IngestCSV("sales", strings.NewReader(salesCSV)); err != nil {
		t.Fatal(err)
	}
	if err := k.AddFact("kb:a", "kb:p", "v"); err != nil {
		t.Fatal(err)
	}
	tp, err := k.ExportTableCSV("sales")
	if err != nil {
		t.Fatal(err)
	}
	gp, err := k.ExportGraphCSV("graph")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{tp, gp} {
		data, err := os.ReadFile(p)
		if err != nil || len(data) == 0 {
			t.Errorf("export %s unreadable: %v", p, err)
		}
	}
}

func TestSaveLoadLocalEncryptedCompressed(t *testing.T) {
	dir := t.TempDir()
	k := newKB(t, Config{Dir: dir, Passphrase: "kb secret", Compress: true})
	payload := []byte(strings.Repeat("private knowledge. ", 100))
	if err := k.SaveLocal("notes", payload); err != nil {
		t.Fatal(err)
	}
	// The on-disk form must be neither plaintext nor oversized.
	raw, err := os.ReadFile(filepath.Join(dir, "notes.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "private knowledge") {
		t.Error("plaintext on disk despite encryption")
	}
	if len(raw) >= len(payload) {
		t.Errorf("stored %d bytes for %d plaintext — compression ineffective", len(raw), len(payload))
	}
	got, err := k.LoadLocal("notes")
	if err != nil || string(got) != string(payload) {
		t.Errorf("round trip failed: %v", err)
	}
}

func TestWrongPassphraseFails(t *testing.T) {
	dir := t.TempDir()
	k1 := newKB(t, Config{Dir: dir, Passphrase: "right"})
	if err := k1.SaveLocal("x", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	k2 := newKB(t, Config{Dir: dir, Passphrase: "wrong"})
	if _, err := k2.LoadLocal("x"); err == nil {
		t.Error("wrong passphrase decrypted")
	}
}

func TestRemoteSaveLoad(t *testing.T) {
	srv := remotestore.NewServer(nil)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := remotestore.NewClient(remotestore.ClientConfig{BaseURL: hs.URL})
	k := newKB(t, Config{Remote: client})
	if err := k.SaveRemote("fact", []byte("cloud data")); err != nil {
		t.Fatal(err)
	}
	got, err := k.LoadRemote("fact")
	if err != nil || string(got) != "cloud data" {
		t.Errorf("LoadRemote = (%q, %v)", got, err)
	}
}

func TestRemoteUnconfigured(t *testing.T) {
	k := newKB(t, Config{})
	if err := k.SaveRemote("k", nil); err == nil {
		t.Error("SaveRemote without remote accepted")
	}
	if _, err := k.LoadRemote("k"); err == nil {
		t.Error("LoadRemote without remote accepted")
	}
}

func TestUserSynonymsFlowIntoCanonicalization(t *testing.T) {
	k := newKB(t, Config{})
	k.Disambiguator().AddSynonym("big blue", "company:ibm")
	csv := "vendor,spend\nBig Blue,10\nbig blue,20\n"
	if _, err := k.IngestCSV("spend", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	resolved, _, err := k.CanonicalizeColumn("spend", "vendor")
	if err != nil {
		t.Fatal(err)
	}
	if resolved != 2 {
		t.Errorf("resolved = %d, want 2", resolved)
	}
	rs, err := k.SQL("SELECT COUNT(*) FROM spend WHERE vendor = 'company:ibm'")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].Int != 2 {
		t.Errorf("canonical rows = %v", rs.Rows[0][0])
	}
}

func TestAddRuleValidation(t *testing.T) {
	k := newKB(t, Config{})
	bad := rdf.Rule{
		Name:        "bad",
		Premises:    []rdf.Statement{{S: rdf.NewVar("x"), P: rdf.NewIRI("p"), O: rdf.NewVar("y")}},
		Conclusions: []rdf.Statement{{S: rdf.NewVar("z"), P: rdf.NewIRI("q"), O: rdf.NewVar("y")}},
	}
	if err := k.AddRule(bad); err == nil {
		t.Error("invalid rule accepted")
	}
}
