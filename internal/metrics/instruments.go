package metrics

// Second-generation instrument layer: allocation-free atomic counters,
// gauges, and a lock-free log-linear latency histogram, grouped into
// labeled families by a Set and rendered in Prometheus exposition format
// through the TextWriter (expfmt.go).
//
// Instruments are nil-safe by contract: every method on a nil *Counter,
// *Gauge, or *Histogram is inert, so an uninstrumented substrate — one
// whose owner never attached a Set — pays a single nil check on its hot
// path and nothing else. That is what lets the search, RDF, and NLU
// engines carry instrumentation hooks unconditionally while library
// callers that never look at /metrics get the uninstrumented cost.

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil Counter is inert.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a zeroed counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (queue depths, dictionary
// sizes, in-flight work). The zero value is ready to use; a nil Gauge is
// inert.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a zeroed gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (negative to subtract).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: log-linear over nanoseconds. Values below
// histSubCount get one exact bucket each; above that, every power-of-two
// octave is split into histSubCount linear sub-buckets, so any recorded
// value sits in a bucket whose width is at most 1/histSubCount (6.25%)
// of its magnitude. The layout is fixed at compile time — every
// histogram shares it, which is what makes snapshots mergeable by plain
// bucket-wise addition.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits // linear sub-buckets per octave
	// histMaxExp is the last full-resolution octave: values at or above
	// 2^(histMaxExp+1) ns (~2.4 hours) clamp into the final bucket, which
	// therefore only bounds its contents from below. Latencies that long
	// are failures of a different kind.
	histMaxExp = 42
	// histNumBuckets: histSubCount exact small-value buckets plus
	// histSubCount per octave for exponents histSubBits..histMaxExp.
	histNumBuckets = (histMaxExp - histSubBits + 2) * histSubCount
)

// bucketIndex maps a nanosecond value to its bucket. Non-positive values
// land in bucket 0; values past the clamp ceiling land in the last
// bucket.
func bucketIndex(v int64) int {
	if v < histSubCount {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	if exp > histMaxExp {
		return histNumBuckets - 1
	}
	return (exp-histSubBits+1)<<histSubBits + int(v>>(exp-histSubBits)) - histSubCount
}

// bucketUpper returns the largest nanosecond value bucket i holds
// (ignoring the final bucket's clamped overflow).
func bucketUpper(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	exp := i>>histSubBits + histSubBits - 1
	sub := i & (histSubCount - 1)
	return int64(histSubCount+sub+1)<<(exp-histSubBits) - 1
}

// Histogram is a lock-free latency distribution: fixed log-linear bucket
// layout, one atomic increment per bucket per observation, zero
// allocations per Observe. It is safe for unsynchronized concurrent use;
// a nil Histogram is inert. The zero value is ready to use.
type Histogram struct {
	sum     atomic.Int64 // nanoseconds
	buckets [histNumBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe folds one latency in: two atomic adds, no allocation, no lock.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.sum.Add(int64(d))
	h.buckets[bucketIndex(int64(d))].Add(1)
}

// Snapshot copies the current distribution. Buckets are read one by one
// while writers may be running, so a snapshot taken under concurrent
// Observe calls can lag individual observations; Count is defined as the
// sum of the snapshot's buckets, keeping Count, Quantile, and the
// rendered cumulative buckets exactly consistent with each other.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Buckets: make([]uint64, histNumBuckets)}
	if h == nil {
		return s
	}
	s.Sum = time.Duration(h.sum.Load())
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	return s
}

// HistSnapshot is a point-in-time copy of a histogram. Snapshots from
// different histograms merge by bucket-wise addition (the layout is
// global), which is how per-shard or per-engine distributions roll up.
type HistSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Buckets []uint64 // len histNumBuckets, same global layout everywhere
}

// Merge folds o into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
}

// Mean returns the average observed latency, 0 with no data.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns the q-th quantile (q in [0, 1]) as an exact rank
// selection over the bucketed data: the value returned is the upper
// bound of the bucket holding the rank-⌈q·n⌉ observation, so it is
// exact up to the bucket's width (≤ 6.25% of the value) and never an
// extrapolation. 0 with no data.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(bucketUpper(histNumBuckets - 1))
}

// Set is a registry of instrument families: each family has a name, a
// help string, a type, and one instrument per label set. Registration
// (the Counter/Gauge/Histogram methods) takes a lock and may allocate;
// the returned instruments are the lock-free hot-path handles. Families
// render on /metrics in registration order via Expose. A nil Set returns
// nil (inert) instruments, so "instrument when given a Set, stay silent
// otherwise" needs no branching at the call site.
type Set struct {
	mu       sync.Mutex
	families []*family
	index    map[string]*family
}

type family struct {
	name, help, typ string
	insts           []setInstrument
}

type setInstrument struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewSet returns an empty instrument set.
func NewSet() *Set {
	return &Set{index: make(map[string]*family)}
}

// lookup finds or creates the family and the instrument slot for the
// label set, enforcing one type per family name. It returns the existing
// instrument when the same name and labels were registered before, so
// labeled families can be built incrementally from several call sites.
func (s *Set) lookup(name, help, typ string, labels []Label) *setInstrument {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.index[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		s.index[name] = f
		s.families = append(s.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: family %s registered as %s, requested as %s", name, f.typ, typ))
	}
	for i := range f.insts {
		if labelsEqual(f.insts[i].labels, labels) {
			return &f.insts[i]
		}
	}
	cp := make([]Label, len(labels))
	copy(cp, labels)
	f.insts = append(f.insts, setInstrument{labels: cp})
	return &f.insts[len(f.insts)-1]
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or retrieves) the counter for name and labels. A
// nil Set returns a nil (inert) counter.
func (s *Set) Counter(name, help string, labels ...Label) *Counter {
	if s == nil {
		return nil
	}
	in := s.lookup(name, help, "counter", labels)
	if in.c == nil {
		in.c = NewCounter()
	}
	return in.c
}

// Gauge registers (or retrieves) the gauge for name and labels. A nil
// Set returns a nil (inert) gauge.
func (s *Set) Gauge(name, help string, labels ...Label) *Gauge {
	if s == nil {
		return nil
	}
	in := s.lookup(name, help, "gauge", labels)
	if in.g == nil {
		in.g = NewGauge()
	}
	return in.g
}

// Histogram registers (or retrieves) the histogram for name and labels.
// A nil Set returns a nil (inert) histogram.
func (s *Set) Histogram(name, help string, labels ...Label) *Histogram {
	if s == nil {
		return nil
	}
	in := s.lookup(name, help, "histogram", labels)
	if in.h == nil {
		in.h = NewHistogram()
	}
	return in.h
}

// Expose renders every family, in registration order, through t. A nil
// Set renders nothing.
func (s *Set) Expose(t *TextWriter) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.families {
		t.Family(f.name, f.help, f.typ)
		for i := range f.insts {
			in := &f.insts[i]
			switch f.typ {
			case "counter":
				t.Metric(f.name, float64(in.c.Value()), in.labels...)
			case "gauge":
				t.Metric(f.name, float64(in.g.Value()), in.labels...)
			case "histogram":
				WriteHistogram(t, f.name, in.h.Snapshot(), in.labels...)
			}
		}
	}
}
