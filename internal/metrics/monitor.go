// Package metrics implements the rich SDK's service-monitoring substrate:
// it collects data on service performance (latency), availability, and
// response quality, keeps latency histories for distribution comparison,
// and records latency as a function of user-supplied latency parameters so
// that invocation latency can be predicted (paper §2).
package metrics

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
)

// Observation is one completed service invocation.
type Observation struct {
	// Latency is how long the invocation took.
	Latency time.Duration
	// Err is the invocation error, nil on success.
	Err error
	// Params are the latency parameters for this invocation (for example
	// the size of an argument passed to the service). May be nil.
	Params []float64
	// Attempts is how many transport attempts the invocation made; values
	// below 1 count as a single attempt. Attempts beyond the first
	// accumulate in the monitor's retry counter.
	Attempts int
	// At is when the invocation completed. Zero means "now".
	At time.Time
}

// Snapshot is a point-in-time summary of a monitor's collected data.
type Snapshot struct {
	Name         string
	Count        uint64
	Failures     uint64
	Retries      uint64  // transport attempts beyond each invocation's first
	Availability float64 // successes / total, 1 when no data
	MeanLatency  time.Duration
	EWMALatency  time.Duration
	P50Latency   time.Duration
	P95Latency   time.Duration
	P99Latency   time.Duration
	MinLatency   time.Duration
	MaxLatency   time.Duration
	MeanQuality  float64 // 0 when never rated
	QualityCount uint64
}

// Monitor collects observations for a single service. It is safe for
// concurrent use.
type Monitor struct {
	name string

	// hist holds the full latency distribution of successful invocations
	// in log-linear buckets. It is lock-free and unsampled: Snapshot
	// quantiles read from it, while the sampled reservoir below remains
	// the distribution-comparison API (LatencyHistory/PercentileLatency).
	hist *Histogram

	mu           sync.Mutex
	clk          clock.Clock
	history      *stats.Reservoir // latency sample in milliseconds
	ewma         *stats.EWMA      // smoothed latency in milliseconds
	count        uint64
	failures     uint64
	retries      uint64
	sumLatencyMS float64
	minMS        float64
	maxMS        float64

	qualitySum   float64
	qualityCount uint64

	// Parameterized latency records: params[i] produced latencyMS[i].
	paramObs   [][]float64
	paramLatMS []float64
	maxParam   int // bound on retained parameterized observations

	recent []timedObs // bounded ring of recent observations for windows
	rpos   int
}

type timedObs struct {
	at    time.Time
	latMS float64
	ok    bool
}

const (
	defaultHistorySize = 2048
	defaultRecentSize  = 4096
	defaultMaxParamObs = 8192
	defaultEWMAAlpha   = 0.2
)

// Option configures a Monitor.
type Option func(*Monitor)

// WithClock sets the clock used to timestamp observations.
func WithClock(c clock.Clock) Option { return func(m *Monitor) { m.clk = c } }

// WithHistorySize bounds the retained latency sample.
func WithHistorySize(n int) Option {
	return func(m *Monitor) {
		if n > 0 {
			m.history = stats.NewReservoir(n, rand.New(rand.NewSource(int64(n))).Float64)
		}
	}
}

// WithEWMAAlpha sets the smoothing factor for the exponentially weighted
// latency average.
func WithEWMAAlpha(alpha float64) Option {
	return func(m *Monitor) { m.ewma = stats.NewEWMA(alpha) }
}

// WithMaxParamObservations bounds the number of retained parameterized
// latency observations.
func WithMaxParamObservations(n int) Option {
	return func(m *Monitor) {
		if n > 0 {
			m.maxParam = n
		}
	}
}

// WithRecentSize bounds the ring of timestamped recent observations that
// backs WindowAvailability. The ring's capacity and the query window
// interact: WindowAvailability(d) only sees observations that are both
// newer than d and among the last n recorded, so a ring smaller than the
// observation rate times d silently narrows the effective window. Size the
// ring for the longest window queried at the peak recording rate; the
// default is 4096 observations.
func WithRecentSize(n int) Option {
	return func(m *Monitor) {
		if n > 0 {
			m.recent = make([]timedObs, 0, n)
		}
	}
}

// NewMonitor returns a Monitor for the named service.
func NewMonitor(name string, opts ...Option) *Monitor {
	m := &Monitor{
		name:     name,
		hist:     NewHistogram(),
		clk:      clock.Real(),
		history:  stats.NewReservoir(defaultHistorySize, rand.New(rand.NewSource(1)).Float64),
		ewma:     stats.NewEWMA(defaultEWMAAlpha),
		maxParam: defaultMaxParamObs,
		recent:   make([]timedObs, 0, defaultRecentSize),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Name returns the monitored service's name.
func (m *Monitor) Name() string { return m.name }

// Record folds an observation into the monitor.
func (m *Monitor) Record(o Observation) {
	ms := float64(o.Latency) / float64(time.Millisecond)
	at := o.At
	if at.IsZero() {
		at = m.clk.Now()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.count++
	if o.Attempts > 1 {
		m.retries += uint64(o.Attempts - 1)
	}
	if o.Err != nil {
		m.failures++
	} else {
		// Latency statistics track successful invocations only: a fast
		// failure says nothing about how long a successful call takes.
		m.hist.Observe(o.Latency)
		m.history.Observe(ms)
		m.ewma.Observe(ms)
		m.sumLatencyMS += ms
		if m.count-m.failures == 1 || ms < m.minMS {
			m.minMS = ms
		}
		if ms > m.maxMS {
			m.maxMS = ms
		}
		if len(o.Params) > 0 && len(m.paramObs) < m.maxParam {
			cp := make([]float64, len(o.Params))
			copy(cp, o.Params)
			m.paramObs = append(m.paramObs, cp)
			m.paramLatMS = append(m.paramLatMS, ms)
		}
	}
	obs := timedObs{at: at, latMS: ms, ok: o.Err == nil}
	if len(m.recent) < cap(m.recent) {
		m.recent = append(m.recent, obs)
	} else {
		m.recent[m.rpos] = obs
		m.rpos = (m.rpos + 1) % len(m.recent)
	}
}

// RecordQuality folds a user-supplied quality rating for this service.
// Higher values indicate higher quality (paper §2: "users can provide
// methods to rate the quality of different services").
func (m *Monitor) RecordQuality(q float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.qualitySum += q
	m.qualityCount++
}

// Count returns the total number of recorded invocations.
func (m *Monitor) Count() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}

// Retries returns the total number of transport attempts beyond each
// invocation's first — how much retrying the failure handler has done on
// this service's behalf.
func (m *Monitor) Retries() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retries
}

// Availability returns the fraction of recorded invocations that succeeded,
// or 1 if nothing has been recorded (optimistic default: an unknown service
// is assumed healthy until observed otherwise).
func (m *Monitor) Availability() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count == 0 {
		return 1
	}
	return float64(m.count-m.failures) / float64(m.count)
}

// MeanLatency returns the mean latency of successful invocations, or 0 with
// no data.
func (m *Monitor) MeanLatency() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	succ := m.count - m.failures
	if succ == 0 {
		return 0
	}
	return time.Duration(m.sumLatencyMS / float64(succ) * float64(time.Millisecond))
}

// EWMALatency returns the exponentially weighted latency average, or 0 with
// no data.
func (m *Monitor) EWMALatency() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.ewma.Initialized() {
		return 0
	}
	return time.Duration(m.ewma.Value() * float64(time.Millisecond))
}

// PercentileLatency returns the p-th latency percentile (0-100) from the
// retained history, or 0 with no data.
func (m *Monitor) PercentileLatency(p float64) time.Duration {
	m.mu.Lock()
	sample := m.history.Sample()
	m.mu.Unlock()
	v, err := stats.Percentile(sample, p)
	if err != nil {
		return 0
	}
	return time.Duration(v * float64(time.Millisecond))
}

// MeanQuality returns the mean recorded quality rating and how many ratings
// back it. A zero count means the service has never been rated.
func (m *Monitor) MeanQuality() (mean float64, count uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.qualityCount == 0 {
		return 0, 0
	}
	return m.qualitySum / float64(m.qualityCount), m.qualityCount
}

// LatencyHistory returns the retained latency sample in milliseconds. The
// paper's SDK "maintains histories of latencies allowing users to compare
// latency distributions".
func (m *Monitor) LatencyHistory() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.history.Sample()
}

// ParamObservations returns the recorded (latency parameters, latency in
// milliseconds) pairs for latency prediction. The returned slices are
// copies.
func (m *Monitor) ParamObservations() (params [][]float64, latencyMS []float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	params = make([][]float64, len(m.paramObs))
	for i, p := range m.paramObs {
		cp := make([]float64, len(p))
		copy(cp, p)
		params[i] = cp
	}
	latencyMS = make([]float64, len(m.paramLatMS))
	copy(latencyMS, m.paramLatMS)
	return params, latencyMS
}

// WindowAvailability returns the success fraction over observations made in
// the trailing window d, or 1 if the window holds no observations.
func (m *Monitor) WindowAvailability(d time.Duration) float64 {
	cutoff := m.clk.Now().Add(-d)
	m.mu.Lock()
	defer m.mu.Unlock()
	var total, ok int
	for _, o := range m.recent {
		if o.at.Before(cutoff) {
			continue
		}
		total++
		if o.ok {
			ok++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}

// LatencyDistribution returns the full bucketed latency distribution of
// successful invocations. Snapshots share a global bucket layout, so
// distributions from different monitors can be rolled up with Merge.
func (m *Monitor) LatencyDistribution() HistSnapshot {
	return m.hist.Snapshot()
}

// Snapshot returns a point-in-time summary.
//
// P50/P95/P99 are exact bucketed quantiles over every successful
// invocation, read from the monitor's lock-free histogram: each is the
// upper bound of the log-linear bucket (width ≤ 6.25% of the value)
// holding that rank, with no sampling error. Earlier versions
// interpolated them from the sampled reservoir, which could drift once
// the observation count exceeded the reservoir size; the reservoir now
// backs only the distribution-comparison API (LatencyHistory,
// PercentileLatency).
func (m *Monitor) Snapshot() Snapshot {
	m.mu.Lock()
	s := Snapshot{
		Name:         m.name,
		Count:        m.count,
		Failures:     m.failures,
		Retries:      m.retries,
		MinLatency:   time.Duration(m.minMS * float64(time.Millisecond)),
		MaxLatency:   time.Duration(m.maxMS * float64(time.Millisecond)),
		QualityCount: m.qualityCount,
	}
	if m.count > 0 {
		s.Availability = float64(m.count-m.failures) / float64(m.count)
	} else {
		s.Availability = 1
	}
	if succ := m.count - m.failures; succ > 0 {
		s.MeanLatency = time.Duration(m.sumLatencyMS / float64(succ) * float64(time.Millisecond))
	}
	if m.ewma.Initialized() {
		s.EWMALatency = time.Duration(m.ewma.Value() * float64(time.Millisecond))
	}
	if m.qualityCount > 0 {
		s.MeanQuality = m.qualitySum / float64(m.qualityCount)
	}
	m.mu.Unlock()

	// Quantiles come from the bucketed histogram — exact rank selection
	// over all observations, not the sampled reservoir.
	hs := m.hist.Snapshot()
	s.P50Latency = hs.Quantile(0.50)
	s.P95Latency = hs.Quantile(0.95)
	s.P99Latency = hs.Quantile(0.99)
	return s
}
