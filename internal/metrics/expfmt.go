package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// TextWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4): one optional HELP/TYPE header per family followed by
// sample lines `name{label="value",...} 1.5`. It keeps no state beyond the
// current family name, so families must be written contiguously.
type TextWriter struct {
	w   io.Writer
	err error
}

// NewTextWriter returns a TextWriter emitting to w.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: w}
}

// Err returns the first write error encountered, if any. Subsequent calls
// after an error are no-ops, so callers can render a whole page and check
// once at the end.
func (t *TextWriter) Err() error { return t.err }

func (t *TextWriter) printf(format string, args ...any) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

// Family emits the HELP and TYPE header for a metric family. typ must be
// one of "counter", "gauge", "summary", "histogram", or "untyped".
func (t *TextWriter) Family(name, help, typ string) {
	t.printf("# HELP %s %s\n", name, escapeHelp(help))
	t.printf("# TYPE %s %s\n", name, typ)
}

// Label is one name="value" pair on a sample line.
type Label struct {
	Name  string
	Value string
}

// Metric emits one sample line for the family. Labels render in the given
// order; values that are NaN or infinite render in Prometheus notation.
func (t *TextWriter) Metric(name string, value float64, labels ...Label) {
	if t.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	t.printf("%s %s\n", sb.String(), formatValue(value))
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// The escape replacers are package-level: strings.NewReplacer builds its
// lookup machinery lazily but the Replacer value itself is a per-call
// allocation when constructed inline, and /metrics renders hundreds of
// escaped strings per scrape. A shared Replacer is safe for concurrent
// use.
var (
	helpReplacer  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelReplacer = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeHelp(s string) string { return helpReplacer.Replace(s) }

func escapeLabel(s string) string { return labelReplacer.Replace(s) }

// WriteSnapshots renders per-service monitor snapshots as a set of metric
// families named <prefix>_*, one sample per snapshot labelled
// <label>="<name>". Latency renders as a summary in seconds with P50/P95/P99
// quantiles plus the _sum/_count convention derived from the mean. The same
// renderer serves SDK service monitors (prefix "richsdk_service",
// label "service") and pipeline stage monitors (prefix "richsdk_pipeline_stage",
// label "stage").
func WriteSnapshots(t *TextWriter, prefix, label string, snaps []Snapshot) {
	t.Family(prefix+"_invocations_total", "Total invocations recorded.", "counter")
	for _, s := range snaps {
		t.Metric(prefix+"_invocations_total", float64(s.Count), Label{label, s.Name})
	}
	t.Family(prefix+"_failures_total", "Invocations that returned an error.", "counter")
	for _, s := range snaps {
		t.Metric(prefix+"_failures_total", float64(s.Failures), Label{label, s.Name})
	}
	t.Family(prefix+"_retries_total", "Transport attempts beyond each invocation's first.", "counter")
	for _, s := range snaps {
		t.Metric(prefix+"_retries_total", float64(s.Retries), Label{label, s.Name})
	}
	t.Family(prefix+"_availability", "Success fraction over all recorded invocations.", "gauge")
	for _, s := range snaps {
		t.Metric(prefix+"_availability", s.Availability, Label{label, s.Name})
	}
	lat := prefix + "_latency_seconds"
	t.Family(lat, "Latency of successful invocations.", "summary")
	for _, s := range snaps {
		succ := s.Count - s.Failures
		t.Metric(lat, seconds(s.P50Latency), Label{label, s.Name}, Label{"quantile", "0.5"})
		t.Metric(lat, seconds(s.P95Latency), Label{label, s.Name}, Label{"quantile", "0.95"})
		t.Metric(lat, seconds(s.P99Latency), Label{label, s.Name}, Label{"quantile", "0.99"})
		t.Metric(lat+"_sum", seconds(s.MeanLatency)*float64(succ), Label{label, s.Name})
		t.Metric(lat+"_count", float64(succ), Label{label, s.Name})
	}
	t.Family(prefix+"_quality_ratings_total", "User-supplied quality ratings recorded.", "counter")
	for _, s := range snaps {
		t.Metric(prefix+"_quality_ratings_total", float64(s.QualityCount), Label{label, s.Name})
	}
	t.Family(prefix+"_quality_mean", "Mean user-supplied quality rating (0 when never rated).", "gauge")
	for _, s := range snaps {
		t.Metric(prefix+"_quality_mean", s.MeanQuality, Label{label, s.Name})
	}
}

func seconds(d time.Duration) float64 { return d.Seconds() }

// expoMinExp is the smallest power-of-two boundary rendered as an `le`
// bucket on the exposition page: 2^10−1 ns ≈ 1µs. Everything faster
// accumulates into that first cumulative bucket; the in-memory histogram
// keeps full sub-microsecond resolution regardless — the ladder only
// throttles how many lines a scrape carries.
const expoMinExp = 10

// WriteHistogram renders one histogram sample set in true Prometheus
// histogram exposition format: cumulative `le` buckets at every power of
// two from ~1µs to ~73min (le in seconds), a `+Inf` bucket equal to
// `_count`, and the `_sum`/`_count` pair. The `le` label is appended
// after the caller's labels.
func WriteHistogram(t *TextWriter, name string, s HistSnapshot, labels ...Label) {
	if len(s.Buckets) < histNumBuckets {
		b := make([]uint64, histNumBuckets)
		copy(b, s.Buckets)
		s.Buckets = b
	}
	bucket := name + "_bucket"
	lbls := make([]Label, len(labels)+1)
	copy(lbls, labels)
	var cum uint64
	next := 0
	for e := expoMinExp; e <= histMaxExp; e++ {
		end := (e - histSubBits + 1) << histSubBits // first bucket past upper 2^e−1
		for ; next < end; next++ {
			cum += s.Buckets[next]
		}
		lbls[len(labels)] = Label{"le", formatValue(float64(int64(1)<<e-1) / 1e9)}
		t.Metric(bucket, float64(cum), lbls...)
	}
	lbls[len(labels)] = Label{"le", "+Inf"}
	t.Metric(bucket, float64(s.Count), lbls...)
	t.Metric(name+"_sum", seconds(s.Sum), labels...)
	t.Metric(name+"_count", float64(s.Count), labels...)
}
