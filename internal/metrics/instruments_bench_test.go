package metrics

import (
	"io"
	"strings"
	"testing"
	"time"
)

func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewGauge()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := 123 * time.Microsecond
		for pb.Next() {
			h.Observe(d)
		}
	})
}

func BenchmarkHistogramSnapshot(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 100000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		if s.Count == 0 {
			b.Fatal("empty")
		}
	}
}

// oldEscapeLabel is the pre-hoist implementation kept for comparison: it
// built a strings.Replacer on every call.
func oldEscapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func BenchmarkEscapeLabel(b *testing.B) {
	in := `a "quoted" value with \backslashes\ and` + "\nnewlines"
	b.Run("hoisted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			escapeLabel(in)
		}
	})
	b.Run("per-call", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			oldEscapeLabel(in)
		}
	})
	b.Run("hoisted-clean", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			escapeLabel("no-escaping-needed")
		}
	})
}

func BenchmarkSetExpose(b *testing.B) {
	s := NewSet()
	for _, shard := range []string{"a", "b", "c", "d"} {
		s.Counter("richsdk_bench_hits_total", "Hits.", Label{"shard", shard}).Add(7)
		s.Gauge("richsdk_bench_depth", "Depth.", Label{"shard", shard}).Set(3)
		h := s.Histogram("richsdk_bench_lat_seconds", "Latency.", Label{"shard", shard})
		for i := 0; i < 1000; i++ {
			h.Observe(time.Duration(i) * time.Microsecond)
		}
	}
	tw := NewTextWriter(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Expose(tw)
	}
	if err := tw.Err(); err != nil {
		b.Fatal(err)
	}
}
