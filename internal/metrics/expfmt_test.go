package metrics

import (
	"bytes"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseExposition is a strict line-oriented parser for the subset of the
// Prometheus text format the writer emits. It returns sample values keyed
// by "name{labels}" and fails the test on any malformed line.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]Inf|[0-9eE+.-]+)$`)
	labelRe := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
	typed := map[string]string{}
	samples := map[string]float64{}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			continue
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Fatalf("line %d: bad metric type %q", i+1, parts[3])
			}
			typed[parts[2]] = parts[3]
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", i+1, line)
			}
			if m[2] != "" {
				for _, l := range strings.Split(m[2][1:len(m[2])-1], ",") {
					if !labelRe.MatchString(l) {
						t.Fatalf("line %d: malformed label %q", i+1, l)
					}
				}
			}
			base := strings.TrimSuffix(strings.TrimSuffix(m[1], "_sum"), "_count")
			if _, ok := typed[m[1]]; !ok {
				if _, ok := typed[base]; !ok {
					t.Fatalf("line %d: sample %q has no TYPE header", i+1, m[1])
				}
			}
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil && m[3] != "NaN" && m[3] != "+Inf" && m[3] != "-Inf" {
				t.Fatalf("line %d: bad value %q", i+1, m[3])
			}
			samples[m[1]+m[2]] = v
		}
	}
	return samples
}

func TestTextWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTextWriter(&buf)
	tw.Family("demo_total", "A counter with \"quotes\" and\nnewline help.", "counter")
	tw.Metric("demo_total", 3, Label{"svc", `we"ird\name`}, Label{"mode", "fast"})
	tw.Family("demo_gauge", "A gauge.", "gauge")
	tw.Metric("demo_gauge", math.NaN())
	tw.Metric("demo_gauge", math.Inf(1), Label{"kind", "up"})
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.String())
	if got := samples[`demo_total{svc="we\"ird\\name",mode="fast"}`]; got != 3 {
		t.Errorf("escaped sample = %v, want 3 (have %v)", got, samples)
	}
	if !strings.Contains(buf.String(), `\n`) || strings.Count(buf.String(), "# HELP demo_total") != 1 {
		t.Errorf("help escaping wrong:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "demo_gauge NaN") {
		t.Errorf("NaN rendering wrong:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `demo_gauge{kind="up"} +Inf`) {
		t.Errorf("+Inf rendering wrong:\n%s", buf.String())
	}
}

func TestWriteSnapshots(t *testing.T) {
	m := NewMonitor("nlu-alpha")
	for i := 0; i < 100; i++ {
		m.Record(Observation{Latency: time.Duration(i+1) * time.Millisecond})
	}
	m.Record(Observation{Latency: time.Millisecond, Err: errBoom, Attempts: 3})
	m.RecordQuality(0.8)
	idle := NewMonitor("idle-svc")

	var buf bytes.Buffer
	tw := NewTextWriter(&buf)
	WriteSnapshots(tw, "richsdk_service", "service", []Snapshot{m.Snapshot(), idle.Snapshot()})
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.String())

	want := map[string]float64{
		`richsdk_service_invocations_total{service="nlu-alpha"}`:     101,
		`richsdk_service_failures_total{service="nlu-alpha"}`:        1,
		`richsdk_service_retries_total{service="nlu-alpha"}`:         2,
		`richsdk_service_latency_seconds_count{service="nlu-alpha"}`: 100,
		`richsdk_service_quality_ratings_total{service="nlu-alpha"}`: 1,
		`richsdk_service_invocations_total{service="idle-svc"}`:      0,
		`richsdk_service_availability{service="idle-svc"}`:           1,
	}
	for k, v := range want {
		if got, ok := samples[k]; !ok || got != v {
			t.Errorf("%s = %v (present=%v), want %v", k, got, ok, v)
		}
	}
	p50 := samples[`richsdk_service_latency_seconds{service="nlu-alpha",quantile="0.5"}`]
	p99 := samples[`richsdk_service_latency_seconds{service="nlu-alpha",quantile="0.99"}`]
	if p50 <= 0 || p99 < p50 {
		t.Errorf("quantiles implausible: p50=%v p99=%v", p50, p99)
	}
	if avail := samples[`richsdk_service_availability{service="nlu-alpha"}`]; avail <= 0.98 || avail >= 1 {
		t.Errorf("availability = %v, want ~100/101", avail)
	}
}
