package metrics

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestBucketIndexLayout(t *testing.T) {
	// Small values get exact buckets.
	for v := int64(0); v < histSubCount; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
		if got := bucketUpper(int(v)); got != v {
			t.Fatalf("bucketUpper(%d) = %d, want %d", v, got, v)
		}
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("bucketIndex(-5) = %d, want 0", got)
	}
	// Past the clamp ceiling everything lands in the last bucket.
	if got := bucketIndex(1 << 60); got != histNumBuckets-1 {
		t.Fatalf("bucketIndex(1<<60) = %d, want %d", got, histNumBuckets-1)
	}
	// Buckets tile the range: index is monotone, upper bounds contain
	// their values, and relative width stays within 1/histSubCount.
	rng := rand.New(rand.NewSource(42))
	values := []int64{15, 16, 17, 31, 32, 33, 1000, 1023, 1024, 1 << 20, 1<<42 - 1, 1 << 42, 1<<43 - 1}
	for i := 0; i < 10000; i++ {
		values = append(values, rng.Int63n(1<<43))
	}
	for _, v := range values {
		i := bucketIndex(v)
		if i < 0 || i >= histNumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		up := bucketUpper(i)
		if v > up {
			t.Fatalf("value %d above its bucket upper %d (bucket %d)", v, up, i)
		}
		if i > 0 {
			lo := bucketUpper(i-1) + 1
			if v < lo {
				t.Fatalf("value %d below its bucket lower %d (bucket %d)", v, lo, i)
			}
			if width := up - lo + 1; v >= histSubCount && float64(width) > float64(v)/float64(histSubCount)+1 {
				t.Fatalf("bucket %d width %d too coarse for value %d", i, width, v)
			}
		}
	}
	// bucketUpper is strictly increasing over the whole layout.
	for i := 1; i < histNumBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucketUpper not increasing at %d: %d <= %d", i, bucketUpper(i), bucketUpper(i-1))
		}
	}
}

func TestNilInstrumentsInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	h.Observe(time.Second)
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	var set *Set
	if set.Counter("x", "") != nil || set.Gauge("x", "") != nil || set.Histogram("x", "") != nil {
		t.Fatal("nil set must hand out nil instruments")
	}
	var sb strings.Builder
	set.Expose(NewTextWriter(&sb))
	if sb.Len() != 0 {
		t.Fatal("nil set exposed output")
	}
}

func TestCounterGauge(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	g := NewGauge()
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramObserveSnapshot(t *testing.T) {
	h := NewHistogram()
	var want time.Duration
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * time.Millisecond
		h.Observe(d)
		want += d
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	if m := s.Mean(); m != want/1000 {
		t.Fatalf("mean = %v, want %v", m, want/1000)
	}
	// Quantiles are exact up to bucket width (≤ 6.25%): the true P50 of
	// 1..1000ms is 500ms, P99 is 990ms.
	for _, tc := range []struct {
		q    float64
		true float64 // ms
	}{{0.5, 500}, {0.95, 950}, {0.99, 990}, {1.0, 1000}} {
		got := float64(s.Quantile(tc.q)) / float64(time.Millisecond)
		if got < tc.true || got > tc.true*(1+1.0/histSubCount) {
			t.Fatalf("Quantile(%v) = %vms, want within [%v, %v]ms", tc.q, got, tc.true, tc.true*1.0625)
		}
	}
	if got := s.Quantile(0); got <= 0 || got > time.Duration(1.07*float64(time.Millisecond)) {
		t.Fatalf("Quantile(0) = %v, want ~1ms", got)
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile should be 0")
	}
	if (HistSnapshot{}).Mean() != 0 {
		t.Fatal("empty snapshot mean should be 0")
	}
}

func TestHistogramClamp(t *testing.T) {
	h := NewHistogram()
	h.Observe(100 * time.Hour) // beyond the ~2.4h ceiling
	h.Observe(-time.Second)    // negative folds into bucket 0
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.Buckets[histNumBuckets-1] != 1 || s.Buckets[0] != 1 {
		t.Fatal("clamped observations not in edge buckets")
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(10 * time.Second)))
		all.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := all.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum {
		t.Fatalf("merge count/sum = %d/%v, want %d/%v", merged.Count, merged.Sum, want.Count, want.Sum)
	}
	for i := range want.Buckets {
		if merged.Buckets[i] != want.Buckets[i] {
			t.Fatalf("merge bucket %d = %d, want %d", i, merged.Buckets[i], want.Buckets[i])
		}
	}
}

func TestSetFamilies(t *testing.T) {
	s := NewSet()
	c1 := s.Counter("hits_total", "Hits.", Label{"shard", "a"})
	c2 := s.Counter("hits_total", "Hits.", Label{"shard", "b"})
	if c1 == c2 {
		t.Fatal("distinct label sets must get distinct counters")
	}
	if again := s.Counter("hits_total", "Hits.", Label{"shard", "a"}); again != c1 {
		t.Fatal("same name+labels must be idempotent")
	}
	g := s.Gauge("depth", "Depth.")
	if again := s.Gauge("depth", "Depth."); again != g {
		t.Fatal("gauge registration must be idempotent")
	}
	h := s.Histogram("lat_seconds", "Latency.")
	if again := s.Histogram("lat_seconds", "Latency."); again != h {
		t.Fatal("histogram registration must be idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch on a family name must panic")
		}
	}()
	s.Gauge("hits_total", "oops")
}

func TestSetExpose(t *testing.T) {
	s := NewSet()
	s.Counter("richsdk_test_hits_total", "Hits.", Label{"shard", "a"}).Add(3)
	s.Counter("richsdk_test_hits_total", "Hits.", Label{"shard", "b"}).Add(5)
	s.Gauge("richsdk_test_depth", "Depth.").Set(-2)
	h := s.Histogram("richsdk_test_lat_seconds", "Latency.")
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Microsecond)
	h.Observe(2 * time.Second)

	var sb strings.Builder
	tw := NewTextWriter(&sb)
	s.Expose(tw)
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE richsdk_test_hits_total counter",
		`richsdk_test_hits_total{shard="a"} 3`,
		`richsdk_test_hits_total{shard="b"} 5`,
		"# TYPE richsdk_test_depth gauge",
		"richsdk_test_depth -2",
		"# TYPE richsdk_test_lat_seconds histogram",
		`richsdk_test_lat_seconds_bucket{le="+Inf"} 3`,
		"richsdk_test_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families render in registration order.
	if strings.Index(out, "richsdk_test_hits_total") > strings.Index(out, "richsdk_test_depth") {
		t.Fatal("families out of registration order")
	}
}

func TestWriteHistogramCumulative(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		h.Observe(time.Duration(rng.Int63n(int64(30 * time.Second))))
	}
	h.Observe(0)              // below the first le boundary
	h.Observe(99 * time.Hour) // clamped: appears only in +Inf
	snap := h.Snapshot()

	var sb strings.Builder
	tw := NewTextWriter(&sb)
	tw.Family("x_seconds", "X.", "histogram")
	WriteHistogram(tw, "x_seconds", snap, Label{"k", "v"})
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	var last float64 = -1
	var infVal, countVal float64 = -1, -1
	for _, line := range strings.Split(sb.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "x_seconds_bucket"):
			var v float64
			if _, err := fmtSscan(line, &v); err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < last {
				t.Fatalf("cumulative buckets decreased: %q after %v", line, last)
			}
			last = v
			if strings.Contains(line, `le="+Inf"`) {
				infVal = v
			}
		case strings.HasPrefix(line, "x_seconds_count"):
			if _, err := fmtSscan(line, &countVal); err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
		}
	}
	if infVal < 0 || countVal < 0 {
		t.Fatalf("missing +Inf or _count line:\n%s", sb.String())
	}
	if infVal != countVal || infVal != float64(snap.Count) {
		t.Fatalf("+Inf bucket %v != _count %v (snapshot count %d)", infVal, countVal, snap.Count)
	}
}

// fmtSscan pulls the trailing float off an exposition line.
func fmtSscan(line string, v *float64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	f, err := strconv.ParseFloat(line[i+1:], 64)
	*v = f
	return 1, err
}
