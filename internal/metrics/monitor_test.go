package metrics

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

var errBoom = errors.New("boom")

func TestMonitorBasicStats(t *testing.T) {
	m := NewMonitor("svc")
	for _, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		m.Record(Observation{Latency: d})
	}
	if got := m.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := m.Availability(); got != 1 {
		t.Errorf("Availability = %v, want 1", got)
	}
	if got := m.MeanLatency(); got != 20*time.Millisecond {
		t.Errorf("MeanLatency = %v, want 20ms", got)
	}
	if got := m.PercentileLatency(50); got != 20*time.Millisecond {
		t.Errorf("P50 = %v, want 20ms", got)
	}
}

func TestMonitorAvailability(t *testing.T) {
	m := NewMonitor("svc")
	m.Record(Observation{Latency: time.Millisecond})
	m.Record(Observation{Latency: time.Millisecond, Err: errBoom})
	m.Record(Observation{Latency: time.Millisecond, Err: errBoom})
	m.Record(Observation{Latency: time.Millisecond})
	if got := m.Availability(); got != 0.5 {
		t.Errorf("Availability = %v, want 0.5", got)
	}
}

func TestMonitorEmptyDefaults(t *testing.T) {
	m := NewMonitor("svc")
	if got := m.Availability(); got != 1 {
		t.Errorf("empty Availability = %v, want 1 (optimistic)", got)
	}
	if got := m.MeanLatency(); got != 0 {
		t.Errorf("empty MeanLatency = %v, want 0", got)
	}
	if got := m.EWMALatency(); got != 0 {
		t.Errorf("empty EWMALatency = %v, want 0", got)
	}
	if got := m.PercentileLatency(99); got != 0 {
		t.Errorf("empty PercentileLatency = %v, want 0", got)
	}
	if mean, n := m.MeanQuality(); mean != 0 || n != 0 {
		t.Errorf("empty MeanQuality = (%v, %d), want (0, 0)", mean, n)
	}
}

func TestMonitorFailuresExcludedFromLatency(t *testing.T) {
	m := NewMonitor("svc")
	m.Record(Observation{Latency: 10 * time.Millisecond})
	// A slow failure must not drag the success latency stats.
	m.Record(Observation{Latency: 10 * time.Second, Err: errBoom})
	if got := m.MeanLatency(); got != 10*time.Millisecond {
		t.Errorf("MeanLatency = %v, want 10ms (failure excluded)", got)
	}
}

func TestMonitorQuality(t *testing.T) {
	m := NewMonitor("svc")
	m.RecordQuality(0.8)
	m.RecordQuality(0.6)
	mean, n := m.MeanQuality()
	if n != 2 || mean != 0.7 {
		t.Errorf("MeanQuality = (%v, %d), want (0.7, 2)", mean, n)
	}
}

func TestMonitorParamObservations(t *testing.T) {
	m := NewMonitor("svc")
	m.Record(Observation{Latency: 5 * time.Millisecond, Params: []float64{1024}})
	m.Record(Observation{Latency: 10 * time.Millisecond, Params: []float64{2048}})
	m.Record(Observation{Latency: time.Millisecond, Err: errBoom, Params: []float64{4096}}) // failed: excluded
	params, lats := m.ParamObservations()
	if len(params) != 2 || len(lats) != 2 {
		t.Fatalf("got %d param observations, want 2", len(params))
	}
	if params[0][0] != 1024 || lats[0] != 5 {
		t.Errorf("first observation = (%v, %v), want ([1024], 5)", params[0], lats[0])
	}
	// Returned slices must be copies.
	params[0][0] = -1
	p2, _ := m.ParamObservations()
	if p2[0][0] != 1024 {
		t.Error("ParamObservations returned a shared slice")
	}
}

func TestMonitorParamObservationsBounded(t *testing.T) {
	m := NewMonitor("svc", WithMaxParamObservations(3))
	for i := 0; i < 10; i++ {
		m.Record(Observation{Latency: time.Millisecond, Params: []float64{float64(i)}})
	}
	params, _ := m.ParamObservations()
	if len(params) != 3 {
		t.Errorf("retained %d param observations, want 3", len(params))
	}
}

func TestMonitorParamsCopiedOnRecord(t *testing.T) {
	m := NewMonitor("svc")
	p := []float64{7}
	m.Record(Observation{Latency: time.Millisecond, Params: p})
	p[0] = 99
	params, _ := m.ParamObservations()
	if params[0][0] != 7 {
		t.Error("Record aliased caller's params slice")
	}
}

func TestWindowAvailability(t *testing.T) {
	v := clock.NewVirtual(time.Unix(1000, 0))
	m := NewMonitor("svc", WithClock(v))
	m.Record(Observation{Latency: time.Millisecond, Err: errBoom})
	v.Advance(time.Hour)
	m.Record(Observation{Latency: time.Millisecond})
	m.Record(Observation{Latency: time.Millisecond})
	// Window covering only the recent successes.
	if got := m.WindowAvailability(30 * time.Minute); got != 1 {
		t.Errorf("WindowAvailability(30m) = %v, want 1", got)
	}
	// Window covering everything.
	if got := m.WindowAvailability(2 * time.Hour); got != 2.0/3.0 {
		t.Errorf("WindowAvailability(2h) = %v, want 2/3", got)
	}
	// Window covering nothing is optimistic.
	v.Advance(24 * time.Hour)
	if got := m.WindowAvailability(time.Minute); got != 1 {
		t.Errorf("empty WindowAvailability = %v, want 1", got)
	}
}

func TestWithRecentSize(t *testing.T) {
	v := clock.NewVirtual(time.Unix(1000, 0))
	m := NewMonitor("svc", WithClock(v), WithRecentSize(2))
	// An old failure followed by enough successes to push it out of the
	// 2-slot ring: the window query can no longer see it even though the
	// time window covers it.
	m.Record(Observation{Latency: time.Millisecond, Err: errBoom})
	m.Record(Observation{Latency: time.Millisecond})
	m.Record(Observation{Latency: time.Millisecond})
	if got := m.WindowAvailability(time.Hour); got != 1 {
		t.Errorf("WindowAvailability = %v, want 1 after failure evicted", got)
	}

	// Non-positive sizes keep the default.
	d := NewMonitor("svc", WithRecentSize(0))
	if cap(d.recent) != defaultRecentSize {
		t.Errorf("WithRecentSize(0) capacity = %d, want default %d", cap(d.recent), defaultRecentSize)
	}
}

func TestSnapshot(t *testing.T) {
	m := NewMonitor("svc")
	m.Record(Observation{Latency: 10 * time.Millisecond})
	m.Record(Observation{Latency: 30 * time.Millisecond})
	m.Record(Observation{Latency: time.Millisecond, Err: errBoom})
	m.RecordQuality(0.9)
	s := m.Snapshot()
	if s.Name != "svc" || s.Count != 3 || s.Failures != 1 {
		t.Errorf("Snapshot identity = %+v", s)
	}
	if s.MeanLatency != 20*time.Millisecond {
		t.Errorf("MeanLatency = %v, want 20ms", s.MeanLatency)
	}
	if s.MinLatency != 10*time.Millisecond || s.MaxLatency != 30*time.Millisecond {
		t.Errorf("Min/Max = %v/%v, want 10ms/30ms", s.MinLatency, s.MaxLatency)
	}
	if s.Availability < 0.66 || s.Availability > 0.67 {
		t.Errorf("Availability = %v, want ~0.667", s.Availability)
	}
	if s.MeanQuality != 0.9 || s.QualityCount != 1 {
		t.Errorf("quality = (%v, %d), want (0.9, 1)", s.MeanQuality, s.QualityCount)
	}
	if s.P50Latency == 0 || s.P99Latency == 0 {
		t.Error("percentiles missing from snapshot")
	}
}

func TestMonitorConcurrentAccess(t *testing.T) {
	m := NewMonitor("svc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				var err error
				if i%10 == 0 {
					err = errBoom
				}
				m.Record(Observation{Latency: time.Duration(i) * time.Microsecond, Err: err, Params: []float64{float64(i)}})
				m.RecordQuality(0.5)
				_ = m.Availability()
				_ = m.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if got := m.Count(); got != 4000 {
		t.Errorf("Count = %d, want 4000", got)
	}
}

func TestRegistryLazyAndStable(t *testing.T) {
	r := NewRegistry()
	a := r.Monitor("a")
	if a2 := r.Monitor("a"); a2 != a {
		t.Error("Monitor returned a different instance for the same name")
	}
	r.Monitor("b")
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v, want [a b]", names)
	}
}

func TestRegistrySnapshots(t *testing.T) {
	r := NewRegistry()
	r.Monitor("z").Record(Observation{Latency: time.Millisecond})
	r.Monitor("a").Record(Observation{Latency: 2 * time.Millisecond})
	snaps := r.Snapshots()
	if len(snaps) != 2 || snaps[0].Name != "a" || snaps[1].Name != "z" {
		t.Errorf("Snapshots order wrong: %v", snaps)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g%4))
			for i := 0; i < 200; i++ {
				r.Monitor(name).Record(Observation{Latency: time.Microsecond})
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.Names()); got != 4 {
		t.Errorf("registered %d services, want 4", got)
	}
	var total uint64
	for _, s := range r.Snapshots() {
		total += s.Count
	}
	if total != 3200 {
		t.Errorf("total observations = %d, want 3200", total)
	}
}

func TestRetriesAccumulateAttemptsBeyondFirst(t *testing.T) {
	m := NewMonitor("svc")
	m.Record(Observation{Latency: time.Millisecond, Attempts: 1})
	m.Record(Observation{Latency: time.Millisecond, Attempts: 3})
	m.Record(Observation{Latency: time.Millisecond, Attempts: 0}) // clamped to one attempt
	m.Record(Observation{Latency: time.Millisecond, Err: errBoom, Attempts: 2})
	if got := m.Retries(); got != 3 {
		t.Errorf("Retries() = %d, want 3", got)
	}
	if snap := m.Snapshot(); snap.Retries != 3 {
		t.Errorf("Snapshot().Retries = %d, want 3", snap.Retries)
	}
}
