package metrics

import (
	"sort"
	"sync"
)

// Registry maps service names to their monitors. It is safe for concurrent
// use and creates monitors lazily.
type Registry struct {
	mu       sync.RWMutex
	monitors map[string]*Monitor
	opts     []Option
}

// NewRegistry returns a Registry whose lazily created monitors use opts.
func NewRegistry(opts ...Option) *Registry {
	return &Registry{monitors: make(map[string]*Monitor), opts: opts}
}

// Monitor returns the monitor for name, creating it on first use.
func (r *Registry) Monitor(name string) *Monitor {
	r.mu.RLock()
	m, ok := r.monitors[name]
	r.mu.RUnlock()
	if ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.monitors[name]; ok {
		return m
	}
	m = NewMonitor(name, r.opts...)
	r.monitors[name] = m
	return m
}

// Names returns the registered service names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.monitors))
	for n := range r.monitors {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshots returns a snapshot for every registered service, sorted by
// service name.
func (r *Registry) Snapshots() []Snapshot {
	names := r.Names()
	out := make([]Snapshot, 0, len(names))
	for _, n := range names {
		out = append(out, r.Monitor(n).Snapshot())
	}
	return out
}
