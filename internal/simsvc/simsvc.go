// Package simsvc simulates remote services with controllable latency,
// failure, cost, and quota behaviour. The paper's SDK was evaluated against
// proprietary cloud services (Watson, Bing, cloud data stores); this
// package is the substitution: it wraps any in-process handler in a service
// whose externally observable behaviour — response time as a function of
// request parameters, transient failures, unresponsiveness, per-period
// invocation quotas — matches what a remote cognitive service exhibits,
// while staying fully deterministic under a fixed seed.
package simsvc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/service"
	"repro/internal/xrand"
)

// LatencyModel produces a latency sample for a request.
type LatencyModel interface {
	// Sample returns how long the simulated service takes to handle req.
	Sample(req service.Request, src *xrand.Source) time.Duration
}

// Constant is a fixed latency.
type Constant struct{ D time.Duration }

var _ LatencyModel = Constant{}

// Sample implements LatencyModel.
func (c Constant) Sample(service.Request, *xrand.Source) time.Duration { return c.D }

// Lognormal samples latency from a lognormal distribution with the given
// median and sigma (shape). Lognormal matches the right-skewed, long-tailed
// response times of real web services.
type Lognormal struct {
	Median time.Duration
	Sigma  float64
}

var _ LatencyModel = Lognormal{}

// Sample implements LatencyModel.
func (l Lognormal) Sample(_ service.Request, src *xrand.Source) time.Duration {
	f := src.Lognormal(0, l.Sigma)
	return time.Duration(float64(l.Median) * f)
}

// SizeLinear models latency that grows linearly with the request's argument
// size: latency = Base + PerKB * size/1024. This is the paper's motivating
// example: "the time for storing an object of size a will generally
// increase with a", with different services having different slopes.
type SizeLinear struct {
	Base  time.Duration
	PerKB time.Duration
	// Jitter, if non-zero, multiplies the sample by a lognormal factor
	// with the given sigma so observations are noisy like real services.
	Jitter float64
}

var _ LatencyModel = SizeLinear{}

// Sample implements LatencyModel.
func (s SizeLinear) Sample(req service.Request, src *xrand.Source) time.Duration {
	d := s.Base + time.Duration(float64(s.PerKB)*float64(req.ArgSize())/1024)
	if s.Jitter > 0 {
		d = time.Duration(float64(d) * src.Lognormal(0, s.Jitter))
	}
	return d
}

// Config configures a simulated service.
type Config struct {
	// Info is the service's metadata (name, category, cost model).
	Info service.Info
	// Handler implements the service's actual logic. It may be nil, in
	// which case the service echoes an empty response.
	Handler func(ctx context.Context, req service.Request) (service.Response, error)
	// Latency produces per-request latency. Nil means zero latency.
	Latency LatencyModel
	// FailRate is the probability in [0,1] that an invocation fails with
	// service.ErrUnavailable after its latency elapses.
	FailRate float64
	// HangRate is the probability in [0,1] that the service becomes
	// unresponsive for the invocation: it blocks until HangDuration (or
	// the context deadline) elapses and then fails. Models the paper's
	// "remote services can sometimes be unresponsive".
	HangRate float64
	// HangDuration bounds how long a hung invocation blocks. Zero means
	// 30 seconds.
	HangDuration time.Duration
	// Quota, if non-nil, is consumed on every invocation attempt.
	Quota *service.Quota
	// Capacity bounds how many invocations are serviced concurrently,
	// modeling a backend with finite parallelism: excess invocations
	// queue for a slot before their latency elapses, so observed latency
	// grows with offered load once demand exceeds Capacity — the
	// saturation behavior real cognitive services exhibit and the load
	// experiments attack. Zero means unlimited (latency independent of
	// load, the pre-chaos behavior). Queued waiters respect context
	// cancellation.
	Capacity int
	// Seed seeds the service's private RNG. Services with the same seed
	// and request stream behave identically.
	Seed int64
	// Clock is the timeline for sleeps. Nil means the real clock; a
	// virtual clock makes whole simulations instantaneous.
	Clock clock.Clock
	// Down, while true, makes every invocation fail immediately. It can
	// be toggled at runtime via SetDown to script outages.
	Down bool
}

// Service is a simulated remote service. It implements service.Service and
// is safe for concurrent use.
type Service struct {
	cfg   Config
	clk   clock.Clock
	slots chan struct{} // capacity semaphore; nil when unlimited

	mu       sync.Mutex // guards rng and the mutable chaos knobs below
	rng      *xrand.Source
	down     bool
	latency  LatencyModel
	extraLat time.Duration
	failRate float64

	invocations int64
}

var _ service.Service = (*Service)(nil)

// New returns a simulated service from cfg.
func New(cfg Config) *Service {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real()
	}
	if cfg.HangDuration == 0 {
		cfg.HangDuration = 30 * time.Second
	}
	s := &Service{
		cfg:      cfg,
		clk:      clk,
		rng:      xrand.New(cfg.Seed),
		down:     cfg.Down,
		latency:  cfg.Latency,
		failRate: cfg.FailRate,
	}
	if cfg.Capacity > 0 {
		s.slots = make(chan struct{}, cfg.Capacity)
	}
	return s
}

// Info implements service.Service.
func (s *Service) Info() service.Info { return s.cfg.Info }

// SetDown toggles a scripted outage: while down, every invocation fails
// immediately with service.ErrUnavailable.
func (s *Service) SetDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

// SetFailRate rescripts the transient-failure probability at runtime, so a
// chaos controller can inject 5xx bursts mid-run. The RNG stream is shared
// with the construction-time FailRate, so a service whose rate never
// changes behaves bit-identically to one built with that rate.
func (s *Service) SetFailRate(p float64) {
	s.mu.Lock()
	s.failRate = p
	s.mu.Unlock()
}

// SetLatencyModel replaces the latency model at runtime (a chaos latency
// regime change). A nil model means zero latency.
func (s *Service) SetLatencyModel(m LatencyModel) {
	s.mu.Lock()
	s.latency = m
	s.mu.Unlock()
}

// SetExtraLatency injects a fixed additive latency spike on top of the
// model's sample for every subsequent invocation. Zero clears the spike.
func (s *Service) SetExtraLatency(d time.Duration) {
	s.mu.Lock()
	s.extraLat = d
	s.mu.Unlock()
}

// Invocations returns how many invocations have been attempted.
func (s *Service) Invocations() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.invocations
}

// Invoke implements service.Service: it enforces the quota, queues for a
// capacity slot, samples and waits out the latency, injects failures and
// hangs, and finally delegates to the handler.
func (s *Service) Invoke(ctx context.Context, req service.Request) (service.Response, error) {
	s.mu.Lock()
	s.invocations++
	down := s.down
	lat := time.Duration(0)
	if s.latency != nil {
		lat = s.latency.Sample(req, s.rng)
	}
	lat += s.extraLat
	fail := s.failRate > 0 && s.rng.Bernoulli(s.failRate)
	hang := s.cfg.HangRate > 0 && s.rng.Bernoulli(s.cfg.HangRate)
	s.mu.Unlock()

	if down {
		return service.Response{}, fmt.Errorf("simsvc: %s is down: %w", s.cfg.Info.Name, service.ErrUnavailable)
	}
	if s.cfg.Quota != nil && !s.cfg.Quota.Take() {
		return service.Response{}, fmt.Errorf("simsvc: %s: %w", s.cfg.Info.Name, service.ErrQuotaExceeded)
	}
	if s.slots != nil {
		select {
		case s.slots <- struct{}{}:
			defer func() { <-s.slots }()
		case <-ctx.Done():
			return service.Response{}, fmt.Errorf("simsvc: %s: queued at capacity: %w", s.cfg.Info.Name, ctx.Err())
		}
	}
	if hang {
		select {
		case <-ctx.Done():
			return service.Response{}, fmt.Errorf("simsvc: %s unresponsive: %w: %w", s.cfg.Info.Name, service.ErrUnavailable, ctx.Err())
		case <-s.clk.After(s.cfg.HangDuration):
			return service.Response{}, fmt.Errorf("simsvc: %s unresponsive: %w", s.cfg.Info.Name, service.ErrUnavailable)
		}
	}
	if lat > 0 {
		select {
		case <-ctx.Done():
			return service.Response{}, fmt.Errorf("simsvc: %s: %w", s.cfg.Info.Name, ctx.Err())
		case <-s.clk.After(lat):
		}
	}
	if fail {
		return service.Response{}, fmt.Errorf("simsvc: %s transient failure: %w", s.cfg.Info.Name, service.ErrUnavailable)
	}
	if s.cfg.Handler == nil {
		return service.Response{}, nil
	}
	return s.cfg.Handler(ctx, req)
}
