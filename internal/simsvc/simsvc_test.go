package simsvc

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/service"
	"repro/internal/xrand"
)

func TestConstantLatencyModel(t *testing.T) {
	m := Constant{D: 25 * time.Millisecond}
	if got := m.Sample(service.Request{}, xrand.New(1)); got != 25*time.Millisecond {
		t.Errorf("Sample = %v, want 25ms", got)
	}
}

func TestLognormalLatencyModel(t *testing.T) {
	m := Lognormal{Median: 40 * time.Millisecond, Sigma: 0.3}
	src := xrand.New(1)
	below := 0
	n := 5000
	for i := 0; i < n; i++ {
		d := m.Sample(service.Request{}, src)
		if d <= 0 {
			t.Fatalf("non-positive latency %v", d)
		}
		if d < 40*time.Millisecond {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("median check: %v below, want ~0.5", frac)
	}
}

func TestSizeLinearModel(t *testing.T) {
	m := SizeLinear{Base: 10 * time.Millisecond, PerKB: time.Millisecond}
	small := service.Request{Data: make([]byte, 1024)}
	large := service.Request{Data: make([]byte, 1024*100)}
	src := xrand.New(1)
	ds := m.Sample(small, src)
	dl := m.Sample(large, src)
	if ds != 11*time.Millisecond {
		t.Errorf("small = %v, want 11ms", ds)
	}
	if dl != 110*time.Millisecond {
		t.Errorf("large = %v, want 110ms", dl)
	}
}

func TestSizeLinearJitterVariance(t *testing.T) {
	m := SizeLinear{Base: 10 * time.Millisecond, PerKB: 0, Jitter: 0.3}
	src := xrand.New(1)
	a := m.Sample(service.Request{}, src)
	b := m.Sample(service.Request{}, src)
	if a == b {
		t.Error("jittered samples identical")
	}
}

func TestQuotaEnforcement(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	q := service.NewQuota(3, time.Hour, v)
	for i := 0; i < 3; i++ {
		if !q.Take() {
			t.Fatalf("Take %d failed within quota", i)
		}
	}
	if q.Take() {
		t.Error("Take beyond quota succeeded")
	}
	if q.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", q.Remaining())
	}
	// New period resets the quota.
	v.Advance(2 * time.Hour)
	if q.Remaining() != 3 {
		t.Errorf("Remaining after period = %d, want 3", q.Remaining())
	}
	if !q.Take() {
		t.Error("Take in new period failed")
	}
}

func TestServiceHappyPath(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	svc := New(Config{
		Info:    service.Info{Name: "sim", Category: "test"},
		Latency: Constant{D: 0},
		Clock:   v,
		Handler: func(_ context.Context, req service.Request) (service.Response, error) {
			return service.Response{Body: []byte("ok:" + req.Text)}, nil
		},
	})
	resp, err := svc.Invoke(context.Background(), service.Request{Text: "x"})
	if err != nil || string(resp.Body) != "ok:x" {
		t.Errorf("Invoke = (%q, %v)", resp.Body, err)
	}
	if svc.Invocations() != 1 {
		t.Errorf("Invocations = %d, want 1", svc.Invocations())
	}
}

func TestServiceLatencyOnVirtualClock(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	svc := New(Config{
		Info:    service.Info{Name: "sim", Category: "test"},
		Latency: Constant{D: 50 * time.Millisecond},
		Clock:   v,
	})
	done := make(chan error, 1)
	go func() {
		_, err := svc.Invoke(context.Background(), service.Request{})
		done <- err
	}()
	// The invocation must be blocked until virtual time advances.
	select {
	case <-done:
		t.Fatal("invocation completed before latency elapsed")
	case <-time.After(20 * time.Millisecond):
	}
	for v.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(50 * time.Millisecond)
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Invoke error = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("invocation did not complete after Advance")
	}
}

func TestServiceFailureInjectionRate(t *testing.T) {
	svc := New(Config{
		Info:     service.Info{Name: "flaky", Category: "test"},
		FailRate: 0.3,
		Seed:     7,
	})
	fails := 0
	n := 2000
	for i := 0; i < n; i++ {
		if _, err := svc.Invoke(context.Background(), service.Request{}); err != nil {
			if !errors.Is(err, service.ErrUnavailable) {
				t.Fatalf("unexpected error type: %v", err)
			}
			fails++
		}
	}
	frac := float64(fails) / float64(n)
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("failure rate = %v, want ~0.3", frac)
	}
}

func TestServiceDeterministicUnderSeed(t *testing.T) {
	mk := func() *Service {
		return New(Config{Info: service.Info{Name: "d", Category: "t"}, FailRate: 0.5, Seed: 42})
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		_, errA := a.Invoke(context.Background(), service.Request{})
		_, errB := b.Invoke(context.Background(), service.Request{})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("invocation %d diverged: %v vs %v", i, errA, errB)
		}
	}
}

func TestServiceDownToggle(t *testing.T) {
	svc := New(Config{Info: service.Info{Name: "s", Category: "t"}})
	if _, err := svc.Invoke(context.Background(), service.Request{}); err != nil {
		t.Fatalf("up service failed: %v", err)
	}
	svc.SetDown(true)
	if _, err := svc.Invoke(context.Background(), service.Request{}); !errors.Is(err, service.ErrUnavailable) {
		t.Errorf("down service error = %v, want ErrUnavailable", err)
	}
	svc.SetDown(false)
	if _, err := svc.Invoke(context.Background(), service.Request{}); err != nil {
		t.Errorf("restored service failed: %v", err)
	}
}

func TestServiceQuotaExceeded(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	svc := New(Config{
		Info:  service.Info{Name: "q", Category: "t"},
		Quota: service.NewQuota(2, time.Hour, v),
		Clock: v,
	})
	for i := 0; i < 2; i++ {
		if _, err := svc.Invoke(context.Background(), service.Request{}); err != nil {
			t.Fatalf("within quota: %v", err)
		}
	}
	if _, err := svc.Invoke(context.Background(), service.Request{}); !errors.Is(err, service.ErrQuotaExceeded) {
		t.Errorf("error = %v, want ErrQuotaExceeded", err)
	}
}

func TestServiceHangRespectsContext(t *testing.T) {
	svc := New(Config{
		Info:         service.Info{Name: "hang", Category: "t"},
		HangRate:     1,
		HangDuration: time.Hour,
		Seed:         1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := svc.Invoke(ctx, service.Request{})
	if !errors.Is(err, service.ErrUnavailable) {
		t.Errorf("error = %v, want ErrUnavailable", err)
	}
	if !strings.Contains(err.Error(), "unresponsive") {
		t.Errorf("error %q should mention unresponsiveness", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("hang did not respect context deadline")
	}
}

func TestServiceContextCancelDuringLatency(t *testing.T) {
	svc := New(Config{
		Info:    service.Info{Name: "slow", Category: "t"},
		Latency: Constant{D: time.Hour},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := svc.Invoke(ctx, service.Request{})
	if err == nil {
		t.Fatal("expected context error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want DeadlineExceeded", err)
	}
}

func TestServiceNilHandlerEmptyResponse(t *testing.T) {
	svc := New(Config{Info: service.Info{Name: "empty", Category: "t"}})
	resp, err := svc.Invoke(context.Background(), service.Request{})
	if err != nil || resp.Body != nil {
		t.Errorf("Invoke = (%v, %v), want empty response", resp, err)
	}
}

func TestServiceRuntimeChaosSetters(t *testing.T) {
	s := New(Config{Info: service.Info{Name: "c"}, Seed: 7})
	ctx := context.Background()

	// Baseline: no latency, no failures.
	if _, err := s.Invoke(ctx, service.Request{}); err != nil {
		t.Fatalf("baseline Invoke: %v", err)
	}

	// A scripted 5xx burst: every call fails until the rate is cleared.
	s.SetFailRate(1)
	if _, err := s.Invoke(ctx, service.Request{}); !errors.Is(err, service.ErrUnavailable) {
		t.Fatalf("under failrate 1 want ErrUnavailable, got %v", err)
	}
	s.SetFailRate(0)
	if _, err := s.Invoke(ctx, service.Request{}); err != nil {
		t.Fatalf("after clearing failrate: %v", err)
	}

	// A latency regime change plus an additive spike, observed on a
	// virtual clock via context cancellation: with 5ms model + 10ms
	// extra, a 1ms-deadline call must be cut short by its context.
	clk := clock.NewVirtual(time.Unix(0, 0))
	s2 := New(Config{Info: service.Info{Name: "c2"}, Seed: 7, Clock: clk})
	s2.SetLatencyModel(Constant{D: 5 * time.Millisecond})
	s2.SetExtraLatency(10 * time.Millisecond)
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := s2.Invoke(cctx, service.Request{})
		done <- err
	}()
	for clk.Pending() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("spiked call: want context.Canceled, got %v", err)
	}
	// Clearing both knobs restores the instant path.
	s2.SetLatencyModel(nil)
	s2.SetExtraLatency(0)
	if _, err := s2.Invoke(ctx, service.Request{}); err != nil {
		t.Fatalf("after clearing latency knobs: %v", err)
	}
}

func TestServiceCapacityQueueing(t *testing.T) {
	// Capacity 1 with a real 20ms service time: two concurrent calls must
	// serialize, so the pair takes >= ~2x the single-call latency.
	s := New(Config{
		Info:     service.Info{Name: "cap"},
		Latency:  Constant{D: 20 * time.Millisecond},
		Capacity: 1,
		Seed:     1,
	})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Invoke(context.Background(), service.Request{}); err != nil {
				t.Errorf("Invoke: %v", err)
			}
		}()
	}
	wg.Wait()
	if el := time.Since(start); el < 35*time.Millisecond {
		t.Errorf("2 calls through capacity 1 finished in %v, want >= ~40ms (queueing)", el)
	}
}

func TestServiceCapacityQueueRespectsContext(t *testing.T) {
	// One call holds the only slot (hung on a virtual clock); a second
	// call queued for the slot must abort when its context is cancelled.
	clk := clock.NewVirtual(time.Unix(0, 0))
	s := New(Config{
		Info:     service.Info{Name: "cap"},
		Latency:  Constant{D: time.Hour},
		Capacity: 1,
		Seed:     1,
		Clock:    clk,
	})
	holder := make(chan error, 1)
	go func() {
		_, err := s.Invoke(context.Background(), service.Request{})
		holder <- err
	}()
	for clk.Pending() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := s.Invoke(ctx, service.Request{})
		queued <- err
	}()
	time.Sleep(2 * time.Millisecond) // let the second call reach the queue
	cancel()
	err := <-queued
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("queued call: want context.Canceled, got %v", err)
	}
	if !strings.Contains(err.Error(), "queued at capacity") {
		t.Errorf("queued call error %q should mention the capacity queue", err)
	}
	clk.Advance(time.Hour)
	if err := <-holder; err != nil {
		t.Fatalf("holder: %v", err)
	}
}
