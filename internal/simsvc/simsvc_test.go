package simsvc

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/service"
	"repro/internal/xrand"
)

func TestConstantLatencyModel(t *testing.T) {
	m := Constant{D: 25 * time.Millisecond}
	if got := m.Sample(service.Request{}, xrand.New(1)); got != 25*time.Millisecond {
		t.Errorf("Sample = %v, want 25ms", got)
	}
}

func TestLognormalLatencyModel(t *testing.T) {
	m := Lognormal{Median: 40 * time.Millisecond, Sigma: 0.3}
	src := xrand.New(1)
	below := 0
	n := 5000
	for i := 0; i < n; i++ {
		d := m.Sample(service.Request{}, src)
		if d <= 0 {
			t.Fatalf("non-positive latency %v", d)
		}
		if d < 40*time.Millisecond {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("median check: %v below, want ~0.5", frac)
	}
}

func TestSizeLinearModel(t *testing.T) {
	m := SizeLinear{Base: 10 * time.Millisecond, PerKB: time.Millisecond}
	small := service.Request{Data: make([]byte, 1024)}
	large := service.Request{Data: make([]byte, 1024*100)}
	src := xrand.New(1)
	ds := m.Sample(small, src)
	dl := m.Sample(large, src)
	if ds != 11*time.Millisecond {
		t.Errorf("small = %v, want 11ms", ds)
	}
	if dl != 110*time.Millisecond {
		t.Errorf("large = %v, want 110ms", dl)
	}
}

func TestSizeLinearJitterVariance(t *testing.T) {
	m := SizeLinear{Base: 10 * time.Millisecond, PerKB: 0, Jitter: 0.3}
	src := xrand.New(1)
	a := m.Sample(service.Request{}, src)
	b := m.Sample(service.Request{}, src)
	if a == b {
		t.Error("jittered samples identical")
	}
}

func TestQuotaEnforcement(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	q := service.NewQuota(3, time.Hour, v)
	for i := 0; i < 3; i++ {
		if !q.Take() {
			t.Fatalf("Take %d failed within quota", i)
		}
	}
	if q.Take() {
		t.Error("Take beyond quota succeeded")
	}
	if q.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", q.Remaining())
	}
	// New period resets the quota.
	v.Advance(2 * time.Hour)
	if q.Remaining() != 3 {
		t.Errorf("Remaining after period = %d, want 3", q.Remaining())
	}
	if !q.Take() {
		t.Error("Take in new period failed")
	}
}

func TestServiceHappyPath(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	svc := New(Config{
		Info:    service.Info{Name: "sim", Category: "test"},
		Latency: Constant{D: 0},
		Clock:   v,
		Handler: func(_ context.Context, req service.Request) (service.Response, error) {
			return service.Response{Body: []byte("ok:" + req.Text)}, nil
		},
	})
	resp, err := svc.Invoke(context.Background(), service.Request{Text: "x"})
	if err != nil || string(resp.Body) != "ok:x" {
		t.Errorf("Invoke = (%q, %v)", resp.Body, err)
	}
	if svc.Invocations() != 1 {
		t.Errorf("Invocations = %d, want 1", svc.Invocations())
	}
}

func TestServiceLatencyOnVirtualClock(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	svc := New(Config{
		Info:    service.Info{Name: "sim", Category: "test"},
		Latency: Constant{D: 50 * time.Millisecond},
		Clock:   v,
	})
	done := make(chan error, 1)
	go func() {
		_, err := svc.Invoke(context.Background(), service.Request{})
		done <- err
	}()
	// The invocation must be blocked until virtual time advances.
	select {
	case <-done:
		t.Fatal("invocation completed before latency elapsed")
	case <-time.After(20 * time.Millisecond):
	}
	for v.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(50 * time.Millisecond)
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Invoke error = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("invocation did not complete after Advance")
	}
}

func TestServiceFailureInjectionRate(t *testing.T) {
	svc := New(Config{
		Info:     service.Info{Name: "flaky", Category: "test"},
		FailRate: 0.3,
		Seed:     7,
	})
	fails := 0
	n := 2000
	for i := 0; i < n; i++ {
		if _, err := svc.Invoke(context.Background(), service.Request{}); err != nil {
			if !errors.Is(err, service.ErrUnavailable) {
				t.Fatalf("unexpected error type: %v", err)
			}
			fails++
		}
	}
	frac := float64(fails) / float64(n)
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("failure rate = %v, want ~0.3", frac)
	}
}

func TestServiceDeterministicUnderSeed(t *testing.T) {
	mk := func() *Service {
		return New(Config{Info: service.Info{Name: "d", Category: "t"}, FailRate: 0.5, Seed: 42})
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		_, errA := a.Invoke(context.Background(), service.Request{})
		_, errB := b.Invoke(context.Background(), service.Request{})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("invocation %d diverged: %v vs %v", i, errA, errB)
		}
	}
}

func TestServiceDownToggle(t *testing.T) {
	svc := New(Config{Info: service.Info{Name: "s", Category: "t"}})
	if _, err := svc.Invoke(context.Background(), service.Request{}); err != nil {
		t.Fatalf("up service failed: %v", err)
	}
	svc.SetDown(true)
	if _, err := svc.Invoke(context.Background(), service.Request{}); !errors.Is(err, service.ErrUnavailable) {
		t.Errorf("down service error = %v, want ErrUnavailable", err)
	}
	svc.SetDown(false)
	if _, err := svc.Invoke(context.Background(), service.Request{}); err != nil {
		t.Errorf("restored service failed: %v", err)
	}
}

func TestServiceQuotaExceeded(t *testing.T) {
	v := clock.NewVirtual(time.Unix(0, 0))
	svc := New(Config{
		Info:  service.Info{Name: "q", Category: "t"},
		Quota: service.NewQuota(2, time.Hour, v),
		Clock: v,
	})
	for i := 0; i < 2; i++ {
		if _, err := svc.Invoke(context.Background(), service.Request{}); err != nil {
			t.Fatalf("within quota: %v", err)
		}
	}
	if _, err := svc.Invoke(context.Background(), service.Request{}); !errors.Is(err, service.ErrQuotaExceeded) {
		t.Errorf("error = %v, want ErrQuotaExceeded", err)
	}
}

func TestServiceHangRespectsContext(t *testing.T) {
	svc := New(Config{
		Info:         service.Info{Name: "hang", Category: "t"},
		HangRate:     1,
		HangDuration: time.Hour,
		Seed:         1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := svc.Invoke(ctx, service.Request{})
	if !errors.Is(err, service.ErrUnavailable) {
		t.Errorf("error = %v, want ErrUnavailable", err)
	}
	if !strings.Contains(err.Error(), "unresponsive") {
		t.Errorf("error %q should mention unresponsiveness", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("hang did not respect context deadline")
	}
}

func TestServiceContextCancelDuringLatency(t *testing.T) {
	svc := New(Config{
		Info:    service.Info{Name: "slow", Category: "t"},
		Latency: Constant{D: time.Hour},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := svc.Invoke(ctx, service.Request{})
	if err == nil {
		t.Fatal("expected context error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want DeadlineExceeded", err)
	}
}

func TestServiceNilHandlerEmptyResponse(t *testing.T) {
	svc := New(Config{Info: service.Info{Name: "empty", Category: "t"}})
	resp, err := svc.Invoke(context.Background(), service.Request{})
	if err != nil || resp.Body != nil {
		t.Errorf("Invoke = (%v, %v), want empty response", resp, err)
	}
}
