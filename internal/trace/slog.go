package trace

import (
	"context"
	"log/slog"
)

// LogHandler is an slog.Handler middleware that stamps every record
// emitted under a traced context with the current trace and span IDs, so
// structured event logs join up with the trace store: grep a log line's
// trace_id, fetch /v1/traces/{id}, and see the invocation's whole journey.
type LogHandler struct {
	inner slog.Handler
}

var _ slog.Handler = LogHandler{}

// NewLogHandler wraps inner with trace/span correlation.
func NewLogHandler(inner slog.Handler) LogHandler {
	return LogHandler{inner: inner}
}

// Enabled implements slog.Handler.
func (h LogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler, adding trace_id and span_id when ctx
// carries a recording span.
func (h LogHandler) Handle(ctx context.Context, r slog.Record) error {
	if sp := SpanFromContext(ctx); sp.Recording() {
		r.AddAttrs(
			slog.String("trace_id", sp.TraceID()),
			slog.Int("span_id", sp.SpanID()),
		)
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs implements slog.Handler.
func (h LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return LogHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler.
func (h LogHandler) WithGroup(name string) slog.Handler {
	return LogHandler{inner: h.inner.WithGroup(name)}
}
