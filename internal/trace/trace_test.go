package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"testing"
	"time"
)

func newTestTracer(t *testing.T, opts ...Option) *Tracer {
	t.Helper()
	tr := New(opts...)
	t.Cleanup(tr.Close)
	return tr
}

func TestSpanTree(t *testing.T) {
	tr := newTestTracer(t, WithPreciseTimestamps())
	ctx, root := tr.Start(context.Background(), "invoke")
	if !root.Recording() {
		t.Fatal("root span not recording at sample rate 1")
	}
	root.SetAttr("service", "nlu-alpha")

	child := root.Child("cache")
	child.SetAttr("cache", "miss")
	grand := child.Child("retry")
	grand.SetInt("attempts", 2)
	grand.SetError(errors.New("boom"))
	grand.End()
	child.End()

	// A nested StartSpan under the same context joins the trace.
	nested := tr.StartSpan(ctx, "nested")
	if nested.TraceID() != root.TraceID() {
		t.Fatalf("nested span trace %q, want %q", nested.TraceID(), root.TraceID())
	}
	nested.End()
	root.End()

	got, ok := tr.Trace(root.TraceID())
	if !ok {
		t.Fatalf("trace %s not stored", root.TraceID())
	}
	if got.Name != "invoke" {
		t.Errorf("root name = %q, want invoke", got.Name)
	}
	if len(got.Spans) != 4 {
		t.Fatalf("stored %d spans, want 4", len(got.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range got.Spans {
		byName[s.Name] = s
	}
	if byName["invoke"].ParentID != 0 {
		t.Errorf("root parent = %d, want 0", byName["invoke"].ParentID)
	}
	if byName["cache"].ParentID != byName["invoke"].ID {
		t.Errorf("cache parent = %d, want root %d", byName["cache"].ParentID, byName["invoke"].ID)
	}
	if byName["retry"].ParentID != byName["cache"].ID {
		t.Errorf("retry parent = %d, want cache %d", byName["retry"].ParentID, byName["cache"].ID)
	}
	if byName["nested"].ParentID != byName["invoke"].ID {
		t.Errorf("nested parent = %d, want root %d", byName["nested"].ParentID, byName["invoke"].ID)
	}
	if byName["retry"].Error != "boom" {
		t.Errorf("retry error = %q, want boom", byName["retry"].Error)
	}
	wantAttr(t, byName["invoke"], "service", "nlu-alpha")
	wantAttr(t, byName["cache"], "cache", "miss")
	wantAttr(t, byName["retry"], "attempts", "2")
	if byName["invoke"].Duration <= 0 {
		t.Errorf("root duration = %v, want > 0 with precise timestamps", byName["invoke"].Duration)
	}
}

func wantAttr(t *testing.T, s SpanData, key, value string) {
	t.Helper()
	for _, a := range s.Attrs {
		if a.Key == key {
			if a.Value != value {
				t.Errorf("span %s attr %s = %q, want %q", s.Name, key, a.Value, value)
			}
			return
		}
	}
	t.Errorf("span %s has no attr %s", s.Name, key)
}

func TestHeadSampling(t *testing.T) {
	tr := newTestTracer(t, WithSampleRate(0.5))
	seq := []float64{0.4, 0.6, 0.1, 0.9} // alternate: sampled, not, sampled, not
	i := 0
	tr.randf = func() float64 { v := seq[i%len(seq)]; i++; return v }

	var sampled int
	for range seq {
		sp := tr.StartSpan(context.Background(), "op")
		if sp.Recording() {
			sampled++
		}
		sp.End()
	}
	if sampled != 2 {
		t.Errorf("sampled %d of 4, want 2", sampled)
	}
	st := tr.Stats()
	if st.Sampled != 2 || st.Unsampled != 2 {
		t.Errorf("stats = %+v, want 2 sampled / 2 unsampled", st)
	}

	// Children of an unsampled root are no-ops all the way down.
	tr.randf = func() float64 { return 1 }
	ctx, sp := tr.Start(context.Background(), "op")
	if sp.Recording() {
		t.Fatal("span sampled at effective rate 0")
	}
	if child := tr.StartSpan(ctx, "child"); child.Recording() {
		t.Error("child of unsampled root is recording")
	}
}

func TestSampleRateZeroAndNilTracer(t *testing.T) {
	tr := newTestTracer(t, WithSampleRate(0))
	if tr.Enabled() {
		t.Error("rate-0 tracer reports enabled")
	}
	_, sp := tr.Start(context.Background(), "op")
	sp.SetAttr("k", "v")
	sp.SetError(errors.New("x"))
	sp.End()
	if got := tr.Traces(); len(got) != 0 {
		t.Errorf("rate-0 tracer stored %d traces", len(got))
	}

	var nilT *Tracer
	if nilT.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	ctx, sp := nilT.Start(context.Background(), "op")
	sp.Child("c").End()
	sp.End()
	nilT.Close()
	if nilT.Traces() != nil || nilT.Stats() != (Stats{}) {
		t.Error("nil tracer not inert")
	}
	if _, ok := nilT.Trace("deadbeef"); ok {
		t.Error("nil tracer returned a trace")
	}
	if SpanFromContext(ctx).Recording() {
		t.Error("nil tracer leaked a span into the context")
	}
}

func TestRingEvictionAndRecycling(t *testing.T) {
	tr := newTestTracer(t, WithCapacity(4))
	var ids []string
	for i := 0; i < 10; i++ {
		sp := tr.StartSpan(context.Background(), fmt.Sprintf("op-%d", i))
		ids = append(ids, sp.TraceID())
		sp.Child("work").End()
		sp.End()
	}
	got := tr.Traces()
	if len(got) != 4 {
		t.Fatalf("stored %d traces, want capacity 4", len(got))
	}
	// Newest first: op-9 .. op-6.
	for i, s := range got {
		want := fmt.Sprintf("op-%d", 9-i)
		if s.Name != want {
			t.Errorf("traces[%d] = %s, want %s", i, s.Name, want)
		}
		if s.Spans != 2 {
			t.Errorf("traces[%d] has %d spans, want 2", i, s.Spans)
		}
	}
	// Evicted traces are gone; recycled records must not resurrect them.
	if _, ok := tr.Trace(ids[0]); ok {
		t.Error("evicted trace still retrievable")
	}
	if _, ok := tr.Trace(ids[9]); !ok {
		t.Error("latest trace not retrievable")
	}
	if st := tr.Stats(); st.Sampled != 10 || st.Stored != 4 {
		t.Errorf("stats = %+v, want 10 sampled / 4 stored", st)
	}
}

func TestMaxSpansDropsOverflow(t *testing.T) {
	tr := newTestTracer(t, WithMaxSpans(3))
	sp := tr.StartSpan(context.Background(), "root")
	kept := sp.Child("a")
	dropped := sp.Child("b") // budget (3) exhausted: root + a + b claims, b over
	if !kept.Recording() {
		t.Fatal("span within budget not recording")
	}
	over := sp.Child("c")
	if over.Recording() {
		t.Error("span beyond budget is recording")
	}
	kept.End()
	dropped.End()
	sp.End()

	got, ok := tr.Trace(sp.TraceID())
	if !ok {
		t.Fatal("trace not stored")
	}
	if len(got.Spans) != 3 {
		t.Errorf("stored %d spans, want 3", len(got.Spans))
	}
	if got.DroppedSpans != 1 {
		t.Errorf("dropped = %d, want 1", got.DroppedSpans)
	}
	if st := tr.Stats(); st.DroppedSpans != 1 {
		t.Errorf("stats dropped = %d, want 1", st.DroppedSpans)
	}
}

func TestAttrOverflowDropped(t *testing.T) {
	tr := newTestTracer(t)
	sp := tr.StartSpan(context.Background(), "root")
	for i := 0; i < maxSpanAttrs+5; i++ {
		sp.SetInt(fmt.Sprintf("k%d", i), int64(i))
	}
	sp.End()
	got, _ := tr.Trace(sp.TraceID())
	if len(got.Spans[0].Attrs) != maxSpanAttrs {
		t.Errorf("kept %d attrs, want %d", len(got.Spans[0].Attrs), maxSpanAttrs)
	}
}

func TestZeroSpanIsInert(t *testing.T) {
	var sp Span
	if sp.Recording() || sp.TraceID() != "" || sp.SpanID() != 0 {
		t.Error("zero span not inert")
	}
	sp.SetAttr("k", "v")
	sp.SetInt("k", 1)
	sp.SetDuration("k", time.Second)
	sp.SetError(errors.New("x"))
	child := sp.Child("c")
	child.End()
	sp.End()
	if child.Recording() {
		t.Error("child of zero span records")
	}
	ctx := ContextWithSpan(context.Background(), sp)
	if SpanFromContext(ctx).Recording() {
		t.Error("zero span stored in context")
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := newTestTracer(t, WithMaxSpans(256))
	sp := tr.StartSpan(context.Background(), "pipeline")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				c := sp.Child("item")
				c.SetInt("worker", int64(i))
				c.End()
			}
		}(i)
	}
	wg.Wait()
	sp.End()
	got, ok := tr.Trace(sp.TraceID())
	if !ok {
		t.Fatal("trace not stored")
	}
	if len(got.Spans) != 1+8*20 {
		t.Errorf("stored %d spans, want %d", len(got.Spans), 1+8*20)
	}
	// Concurrent readers against concurrent new traces.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			s := tr.StartSpan(context.Background(), "op")
			s.Child("w").End()
			s.End()
		}
	}()
	for i := 0; i < 50; i++ {
		for _, s := range tr.Traces() {
			if _, ok := tr.Trace(s.ID); !ok {
				// A trace may be evicted between list and get; that is
				// fine, we only exercise the locking.
				continue
			}
		}
		tr.Stats()
	}
	<-done
}

func TestCoarseClockAdvances(t *testing.T) {
	tr := newTestTracer(t, WithClockInterval(time.Millisecond))
	sp := tr.StartSpan(context.Background(), "slow")
	time.Sleep(20 * time.Millisecond)
	sp.End()
	got, _ := tr.Trace(sp.TraceID())
	if d := got.Spans[0].Duration; d < 5*time.Millisecond {
		t.Errorf("coarse duration = %v, want >= 5ms after a 20ms sleep", d)
	}
	if got.Start.IsZero() {
		t.Error("trace start not stamped")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	tr := New()
	tr.StartSpan(context.Background(), "op").End()
	tr.Close()
	tr.Close()
	// Spans after Close still work off the last clock value.
	sp := tr.StartSpan(context.Background(), "after")
	sp.End()
	if _, ok := tr.Trace(sp.TraceID()); !ok {
		t.Error("span after Close not stored")
	}
}

func TestTraceJSONShape(t *testing.T) {
	tr := newTestTracer(t)
	sp := tr.StartSpan(context.Background(), "invoke")
	sp.SetAttr("service", "spell")
	sp.Child("cache").End()
	sp.End()
	got, _ := tr.Trace(sp.TraceID())
	raw, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceID string `json:"traceId"`
		Spans   []struct {
			ID       int     `json:"id"`
			ParentID int     `json:"parentId"`
			Name     string  `json:"name"`
			Dur      float64 `json:"durationMs"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.TraceID != sp.TraceID() || len(decoded.Spans) != 2 {
		t.Errorf("JSON round trip lost data: %s", raw)
	}
}

func TestLogHandlerCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(slog.NewJSONHandler(&buf, nil)))
	tr := newTestTracer(t)

	ctx, sp := tr.Start(context.Background(), "invoke")
	logger.InfoContext(ctx, "traced event", "k", "v")
	sp.End()
	logger.InfoContext(context.Background(), "untraced event")

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2", len(lines))
	}
	var traced map[string]any
	if err := json.Unmarshal(lines[0], &traced); err != nil {
		t.Fatal(err)
	}
	if traced["trace_id"] != sp.TraceID() {
		t.Errorf("trace_id = %v, want %s", traced["trace_id"], sp.TraceID())
	}
	if traced["span_id"] != float64(1) {
		t.Errorf("span_id = %v, want 1", traced["span_id"])
	}
	if traced["k"] != "v" {
		t.Errorf("user attr lost: %v", traced)
	}
	var untraced map[string]any
	if err := json.Unmarshal(lines[1], &untraced); err != nil {
		t.Fatal(err)
	}
	if _, ok := untraced["trace_id"]; ok {
		t.Error("untraced record carries trace_id")
	}

	// Level gating and attr/group wrapping still delegate.
	var buf2 bytes.Buffer
	h := NewLogHandler(slog.NewJSONHandler(&buf2, &slog.HandlerOptions{Level: slog.LevelWarn}))
	if h.Enabled(context.Background(), slog.LevelInfo) {
		t.Error("handler enabled below inner level")
	}
	wrapped := slog.New(h.WithAttrs([]slog.Attr{slog.String("svc", "x")}).(slog.Handler))
	ctx2, sp2 := tr.Start(context.Background(), "op")
	wrapped.WarnContext(ctx2, "warn")
	sp2.End()
	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf2.Bytes()), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["svc"] != "x" || rec["trace_id"] != sp2.TraceID() {
		t.Errorf("WithAttrs wrapper lost correlation or attrs: %v", rec)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	tr := New()
	defer tr.Close()
	ctx := context.Background()
	b.Run("root+child", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := tr.StartSpan(ctx, "invoke")
			c := sp.Child("cache")
			c.SetAttr("cache", "hit")
			c.End()
			sp.End()
		}
	})
	var nilT *Tracer
	b.Run("nil-tracer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := nilT.StartSpan(ctx, "invoke")
			c := sp.Child("cache")
			c.End()
			sp.End()
		}
	})
}
