// Package trace implements the rich SDK's invocation-tracing substrate:
// context-propagated spans with trace/span/parent identity, per-span
// annotations and errors, configurable head sampling, and a bounded
// ring store holding the most recent finished traces for inspection
// (the HTTP façade's /v1/traces endpoints).
//
// The paper's SDK is built around "monitoring and data collection";
// aggregate monitors (internal/metrics) answer "how is this service
// doing?", traces answer "what happened to this one invocation?" — which
// middleware stages ran, in what order, with what outcome.
//
// Design for the hot path. A traced cache hit must not noticeably slow
// the SDK's fastest path, so the per-span cost is kept to a handful of
// plain stores:
//
//   - Span is a value (record pointer + slot index), never heap-allocated;
//     the zero Span is a valid no-op, so untraced paths pay one nil check.
//   - Each trace's spans live in one preallocated slot array owned by a
//     pooled record; starting a span is an atomic slot claim plus field
//     stores, with no per-span allocation once the pool is warm.
//   - Timestamps come from a coarse clock — an atomic nanosecond value a
//     background ticker refreshes (default every millisecond) — instead of
//     a time.Now call per event. Sub-millisecond spans therefore read as
//     zero duration; WithPreciseTimestamps restores time.Now for offline
//     analysis where fidelity beats throughput.
//   - The ring store takes one short mutex hold per finished trace
//     (publish) and per reader snapshot; live span recording never locks.
//
// A span must End before its root does: ending the root publishes the
// trace to the ring, after which its record must no longer be written.
package trace

import (
	"context"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for New.
const (
	// DefaultCapacity is how many finished traces the ring retains.
	DefaultCapacity = 64
	// DefaultMaxSpans bounds the spans recorded per trace; spans beyond
	// it are counted as dropped.
	DefaultMaxSpans = 1024
	// DefaultClockInterval is the coarse clock's refresh period.
	DefaultClockInterval = time.Millisecond
)

// Attr is one span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// spanSlot is one span's storage inside its trace's record. Slots are
// written by the single goroutine driving that span (claiming a slot is
// atomic; everything after is plain stores) and become readable when the
// trace publishes.
type spanSlot struct {
	name    string
	parent  int32 // slot index of the parent span, -1 for the root
	startNS int64 // unix nanoseconds
	durNS   int64
	err     string
	attrs   []Attr // reused across record recycling; reset to len 0
}

// record holds one trace in flight or in the ring. Records are pooled:
// publish hands the evicted record back for the next trace to reuse.
type record struct {
	t      *Tracer
	id     uint64
	nspans atomic.Int32
	drops  atomic.Int32
	spans  []spanSlot
}

// Span is a live handle to one span of one trace. It is a small value —
// copy it freely. The zero Span records nothing and all its methods are
// no-ops, so call sites need no tracing-enabled branches. A Span's
// mutating methods (SetAttr, SetError, End) must be driven by one
// goroutine; concurrent *children* of one span are fine.
type Span struct {
	rec *record
	idx int32
}

// Recording reports whether the span is live and recording.
func (s Span) Recording() bool { return s.rec != nil }

// TraceID returns the span's trace ID as a 16-digit hex string, or "" for
// a non-recording span.
func (s Span) TraceID() string {
	if s.rec == nil {
		return ""
	}
	return formatID(s.rec.id)
}

// SpanID returns the span's ID within its trace (1-based; 0 for a
// non-recording span).
func (s Span) SpanID() int {
	if s.rec == nil {
		return 0
	}
	return int(s.idx) + 1
}

// Child starts a child span. The returned span may be a no-op when the
// parent is not recording or the trace's span budget is exhausted.
func (s Span) Child(name string) Span {
	if s.rec == nil {
		return Span{}
	}
	rec := s.rec
	idx := rec.nspans.Add(1) - 1
	if int(idx) >= len(rec.spans) {
		rec.drops.Add(1)
		return Span{}
	}
	sl := &rec.spans[idx]
	sl.name = name
	sl.parent = s.idx
	sl.startNS = rec.t.now()
	sl.durNS = 0
	sl.err = ""
	sl.attrs = sl.attrs[:0]
	return Span{rec: rec, idx: idx}
}

// SetAttr annotates the span. Attributes beyond the per-span budget are
// dropped silently; keep them few and load-bearing.
func (s Span) SetAttr(key, value string) {
	if s.rec == nil {
		return
	}
	sl := &s.rec.spans[s.idx]
	if len(sl.attrs) < maxSpanAttrs {
		sl.attrs = append(sl.attrs, Attr{Key: key, Value: value})
	}
}

// maxSpanAttrs bounds annotations per span.
const maxSpanAttrs = 8

// SetInt annotates the span with an integer value.
func (s Span) SetInt(key string, v int64) {
	if s.rec == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// SetDuration annotates the span with a duration in milliseconds.
func (s Span) SetDuration(key string, d time.Duration) {
	if s.rec == nil {
		return
	}
	s.SetAttr(key, strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64))
}

// SetError records err on the span. A nil err records nothing.
func (s Span) SetError(err error) {
	if s.rec == nil || err == nil {
		return
	}
	s.rec.spans[s.idx].err = err.Error()
}

// End stamps the span's duration. Ending the root span publishes the
// whole trace to the tracer's ring store; every other span of the trace
// must End before the root does.
func (s Span) End() {
	if s.rec == nil {
		return
	}
	sl := &s.rec.spans[s.idx]
	sl.durNS = s.rec.t.now() - sl.startNS
	if s.idx == 0 {
		s.rec.t.publish(s.rec)
	}
}

// spanKey carries the current Span in a context.
type spanKey struct{}

// ContextWithSpan returns ctx carrying sp; a non-recording sp returns ctx
// unchanged.
func ContextWithSpan(ctx context.Context, sp Span) context.Context {
	if sp.rec == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or a no-op Span.
func SpanFromContext(ctx context.Context) Span {
	sp, _ := ctx.Value(spanKey{}).(Span)
	return sp
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithSampleRate sets head sampling: the probability, in [0, 1], that a
// new root span starts a recorded trace. Rates at or above 1 record
// everything; at or below 0 nothing.
func WithSampleRate(rate float64) Option {
	return func(t *Tracer) { t.rate = rate }
}

// WithCapacity bounds how many finished traces the ring store retains.
func WithCapacity(n int) Option {
	return func(t *Tracer) {
		if n > 0 {
			t.capacity = n
		}
	}
}

// WithMaxSpans bounds the spans recorded per trace; the rest are counted
// as dropped on the trace.
func WithMaxSpans(n int) Option {
	return func(t *Tracer) {
		if n > 0 {
			t.maxSpans = n
		}
	}
}

// WithPreciseTimestamps makes every span start/end call time.Now instead
// of reading the coarse clock — exact sub-millisecond durations at a
// per-event cost the SDK's fast paths notice.
func WithPreciseTimestamps() Option {
	return func(t *Tracer) { t.precise = true }
}

// WithClockInterval sets the coarse clock's refresh period (and thereby
// span timestamp resolution).
func WithClockInterval(d time.Duration) Option {
	return func(t *Tracer) {
		if d > 0 {
			t.tick = d
		}
	}
}

// Stats is a point-in-time summary of a tracer's activity.
type Stats struct {
	// Sampled counts traces recorded and published to the ring.
	Sampled uint64 `json:"sampled"`
	// Unsampled counts root spans the head sampler declined.
	Unsampled uint64 `json:"unsampled"`
	// DroppedSpans counts spans discarded because their trace exceeded
	// the per-trace span budget.
	DroppedSpans uint64 `json:"droppedSpans"`
	// Stored is how many finished traces the ring currently holds.
	Stored int `json:"stored"`
}

// Tracer creates spans and stores finished traces. It is safe for
// concurrent use. A nil *Tracer is valid and records nothing.
type Tracer struct {
	rate     float64
	capacity int
	maxSpans int
	precise  bool
	tick     time.Duration
	randf    func() float64 // sampling source; swappable in tests

	coarse    atomic.Int64
	clockOnce sync.Once
	stop      chan struct{}
	closeOnce sync.Once

	unsampled    atomic.Uint64
	droppedSpans atomic.Uint64

	pool sync.Pool

	mu       sync.Mutex
	ring     []*record
	pos      int
	finished uint64
}

// New returns a Tracer sampling every trace into a DefaultCapacity-deep
// ring, DefaultMaxSpans spans per trace, with millisecond-resolution
// timestamps. Call Close when done to stop the tracer's clock.
func New(opts ...Option) *Tracer {
	t := &Tracer{
		rate:     1,
		capacity: DefaultCapacity,
		maxSpans: DefaultMaxSpans,
		tick:     DefaultClockInterval,
		randf:    rand.Float64,
		stop:     make(chan struct{}),
	}
	for _, o := range opts {
		o(t)
	}
	t.ring = make([]*record, t.capacity)
	t.pool.New = func() any {
		return &record{t: t, spans: make([]spanSlot, t.maxSpans)}
	}
	return t
}

// Close stops the tracer's background clock. Stored traces remain
// readable; new spans after Close keep the last clock value.
func (t *Tracer) Close() {
	if t == nil {
		return
	}
	t.closeOnce.Do(func() { close(t.stop) })
}

// Enabled reports whether the tracer can record anything: non-nil with a
// positive sample rate.
func (t *Tracer) Enabled() bool { return t != nil && t.rate > 0 }

// now returns the current span timestamp in unix nanoseconds.
func (t *Tracer) now() int64 {
	if t.precise {
		return time.Now().UnixNano()
	}
	return t.coarse.Load()
}

// startClock seeds the coarse clock and, unless timestamps are precise,
// starts the ticker goroutine refreshing it.
func (t *Tracer) startClock() {
	t.coarse.Store(time.Now().UnixNano())
	if t.precise {
		return
	}
	go func() {
		tk := time.NewTicker(t.tick)
		defer tk.Stop()
		for {
			select {
			case <-t.stop:
				return
			case now := <-tk.C:
				t.coarse.Store(now.UnixNano())
			}
		}
	}()
}

// StartSpan starts a span without deriving a new context. If ctx already
// carries a recording span the new span joins that trace as its child;
// otherwise it is a root, subject to head sampling. Use Start when
// downstream code must see the span in the context.
func (t *Tracer) StartSpan(ctx context.Context, name string) Span {
	if t == nil {
		return Span{}
	}
	if parent := SpanFromContext(ctx); parent.rec != nil {
		return parent.Child(name)
	}
	if t.rate <= 0 || (t.rate < 1 && t.randf() >= t.rate) {
		t.unsampled.Add(1)
		return Span{}
	}
	t.clockOnce.Do(t.startClock)
	rec := t.pool.Get().(*record)
	rec.id = rand.Uint64() | 1
	rec.nspans.Store(1)
	rec.drops.Store(0)
	sl := &rec.spans[0]
	sl.name = name
	sl.parent = -1
	sl.startNS = t.now()
	sl.durNS = 0
	sl.err = ""
	sl.attrs = sl.attrs[:0]
	return Span{rec: rec}
}

// Start starts a span as StartSpan does and returns a context carrying
// it, so nested work (and nested SDK invocations) joins the same trace.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, Span) {
	sp := t.StartSpan(ctx, name)
	return ContextWithSpan(ctx, sp), sp
}

// publish moves a finished trace into the ring, evicting (and recycling)
// the oldest.
func (t *Tracer) publish(rec *record) {
	if int(rec.drops.Load()) > 0 {
		t.droppedSpans.Add(uint64(rec.drops.Load()))
	}
	t.mu.Lock()
	old := t.ring[t.pos]
	t.ring[t.pos] = rec
	t.pos = (t.pos + 1) % len(t.ring)
	t.finished++
	t.mu.Unlock()
	if old != nil {
		t.pool.Put(old)
	}
}

// Stats returns the tracer's activity counters. Nil tracers report zero.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	s := Stats{
		Unsampled:    t.unsampled.Load(),
		DroppedSpans: t.droppedSpans.Load(),
	}
	t.mu.Lock()
	s.Sampled = t.finished
	for _, r := range t.ring {
		if r != nil {
			s.Stored++
		}
	}
	t.mu.Unlock()
	return s
}

// SpanData is one exported span of a finished trace.
type SpanData struct {
	// ID is the span's 1-based ID within its trace; ParentID is the
	// parent's ID, 0 for the root.
	ID       int           `json:"id"`
	ParentID int           `json:"parentId"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"-"`
	// DurationMS mirrors Duration for JSON consumers.
	DurationMS float64 `json:"durationMs"`
	Attrs      []Attr  `json:"attrs,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// Trace is one exported finished trace: its spans in start order (the
// root is always Spans[0]).
type Trace struct {
	ID           string        `json:"traceId"`
	Name         string        `json:"name"` // root span name
	Start        time.Time     `json:"start"`
	Duration     time.Duration `json:"-"`
	DurationMS   float64       `json:"durationMs"`
	DroppedSpans int           `json:"droppedSpans,omitempty"`
	Spans        []SpanData    `json:"spans"`
}

// Summary describes one stored trace for listings.
type Summary struct {
	ID         string    `json:"traceId"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"durationMs"`
	Spans      int       `json:"spans"`
	Error      string    `json:"error,omitempty"`
}

// Traces lists the stored traces, newest first.
func (t *Tracer) Traces() []Summary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Summary, 0, len(t.ring))
	for i := 0; i < len(t.ring); i++ {
		// Walk backward from the most recently published slot.
		rec := t.ring[((t.pos-1-i)%len(t.ring)+len(t.ring))%len(t.ring)]
		if rec == nil {
			continue
		}
		root := &rec.spans[0]
		out = append(out, Summary{
			ID:         formatID(rec.id),
			Name:       root.name,
			Start:      time.Unix(0, root.startNS),
			DurationMS: float64(root.durNS) / float64(time.Millisecond),
			Spans:      spanCount(rec),
			Error:      root.err,
		})
	}
	return out
}

// Trace returns the stored trace with the given ID.
func (t *Tracer) Trace(id string) (*Trace, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, rec := range t.ring {
		if rec == nil || formatID(rec.id) != id {
			continue
		}
		n := spanCount(rec)
		root := &rec.spans[0]
		tr := &Trace{
			ID:           formatID(rec.id),
			Name:         root.name,
			Start:        time.Unix(0, root.startNS),
			Duration:     time.Duration(root.durNS),
			DurationMS:   float64(root.durNS) / float64(time.Millisecond),
			DroppedSpans: int(rec.drops.Load()),
			Spans:        make([]SpanData, 0, n),
		}
		for i := 0; i < n; i++ {
			sl := &rec.spans[i]
			sd := SpanData{
				ID:         i + 1,
				ParentID:   int(sl.parent) + 1,
				Name:       sl.name,
				Start:      time.Unix(0, sl.startNS),
				Duration:   time.Duration(sl.durNS),
				DurationMS: float64(sl.durNS) / float64(time.Millisecond),
				Error:      sl.err,
			}
			if len(sl.attrs) > 0 {
				sd.Attrs = append([]Attr(nil), sl.attrs...)
			}
			tr.Spans = append(tr.Spans, sd)
		}
		return tr, true
	}
	return nil, false
}

// spanCount returns how many slots of rec hold spans. Callers hold t.mu.
func spanCount(rec *record) int {
	n := int(rec.nspans.Load())
	if n > len(rec.spans) {
		n = len(rec.spans)
	}
	return n
}

// formatID renders a trace ID as fixed-width hex.
func formatID(id uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}
