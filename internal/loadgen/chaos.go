package loadgen

import (
	"context"
	"sort"
	"time"

	"repro/internal/xrand"
)

// Event is one scripted chaos action, fired At after the schedule starts.
type Event struct {
	At   time.Duration
	Name string
	Do   func()
}

// Schedule is a deterministic sequence of chaos events. Build one with
// NewSchedule (events are sorted by At), then Play it alongside a load
// run. The schedule owns no clock state between plays, so the same
// schedule replays identically.
type Schedule struct {
	events []Event
}

// NewSchedule returns a schedule of the given events, sorted by At.
func NewSchedule(events ...Event) *Schedule {
	s := &Schedule{events: append([]Event(nil), events...)}
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].At < s.events[j].At })
	return s
}

// Events returns the schedule in firing order, for logging and reports.
func (s *Schedule) Events() []Event { return append([]Event(nil), s.events...) }

// Play fires the events at their offsets from now, returning when the
// last has fired or ctx is cancelled. Run it in a goroutine next to
// loadgen.Run to storm a live load run.
func (s *Schedule) Play(ctx context.Context) {
	start := time.Now()
	for _, ev := range s.events {
		wait := ev.At - time.Since(start)
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
		if ctx.Err() != nil {
			return
		}
		ev.Do()
	}
}

// Storm is the basic on/off pair: on fires at `at`, off fires at
// `at+dur`. Name both events after the fault for readable schedules.
func Storm(at, dur time.Duration, name string, on, off func()) []Event {
	return []Event{
		{At: at, Name: name + ":on", Do: on},
		{At: at + dur, Name: name + ":off", Do: off},
	}
}

// Fault is one injectable fault mode for RandomStorms: a named on/off
// toggle (flip a service down, set a fail rate, add a latency spike, start
// a slow drip).
type Fault struct {
	Name string
	On   func()
	Off  func()
}

// RandomStorms builds a deterministic seeded schedule of n storms over
// horizon: each storm picks a fault uniformly, a start uniform in the
// horizon, and a duration exponential around horizon/(2n), clamped so
// every storm's off-event lands inside the horizon. The same seed and
// fault list always produce the same schedule — chaos that reproduces.
func RandomStorms(seed int64, horizon time.Duration, n int, faults []Fault) *Schedule {
	src := xrand.New(seed)
	var events []Event
	for i := 0; i < n && len(faults) > 0; i++ {
		f := faults[src.Intn(len(faults))]
		at := time.Duration(src.Float64() * float64(horizon))
		mean := float64(horizon) / float64(2*n)
		dur := time.Duration(src.Exponential(mean))
		if dur < time.Millisecond {
			dur = time.Millisecond
		}
		if at+dur > horizon {
			dur = horizon - at
		}
		events = append(events, Storm(at, dur, f.Name, f.On, f.Off)...)
	}
	return NewSchedule(events...)
}
