// Package loadgen is the closed-loop chaos/load harness: it drives an
// http.Handler — normally the rich SDK's HTTP facade (core.API) — at high
// concurrency with open- or closed-loop arrival models, classifies every
// response into goodput / shed / timeout / error, and scripts deterministic
// fault storms into the simulated backends through a seeded chaos schedule.
// It exists to attack the resilience stack the paper prescribes (breakers,
// predicted-latency deadlines, retries, quotas) and to measure whether the
// facade degrades gracefully — fast 429s from the adaptive shed stage —
// instead of collapsing when offered load exceeds capacity.
//
// The generator calls the handler in-process (httptest recorders, no
// sockets), so a run measures the facade and middleware chain itself, with
// zero kernel networking noise and full determinism under a fixed seed.
package loadgen

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/xrand"
)

// Arrival selects the load model.
type Arrival int

const (
	// ClosedLoop runs Workers synchronous callers back to back: each
	// worker issues its next request the moment the previous response
	// lands. Offered load self-limits to Workers / latency — the classic
	// benchmark loop, and the model that saturates a backend hardest at a
	// given concurrency.
	ClosedLoop Arrival = iota
	// OpenLoop fires requests on a Poisson process at Rate per second
	// regardless of completions, bounded by Workers outstanding; arrivals
	// that find every worker busy are counted as Dropped. Open loops
	// model independent users and expose queueing collapse that closed
	// loops hide.
	OpenLoop
)

// Config configures one load run.
type Config struct {
	// Handler receives every generated request. Required.
	Handler http.Handler
	// NewRequest builds the i-th request; src is a per-worker seeded RNG
	// for request diversity. Required. It must build a fresh request
	// (fresh body) every call.
	NewRequest func(i int, src *xrand.Source) *http.Request
	// Arrival selects the load model. Default ClosedLoop.
	Arrival Arrival
	// Workers is the concurrency: loop workers (closed) or the bound on
	// outstanding requests (open). Zero means 8.
	Workers int
	// Rate is the open-loop arrival rate in requests/second. Required
	// for OpenLoop, ignored for ClosedLoop.
	Rate float64
	// Duration bounds the run. Zero means 1 second.
	Duration time.Duration
	// Timeout is the per-request client budget: a response slower than
	// this counts as a Timeout even if it eventually carries 200,
	// because the simulated user has given up. Zero means no budget.
	Timeout time.Duration
	// ShedPause is how long a closed-loop worker waits after a 429
	// before its next request — a client honoring "try again later".
	// Zero means no pause (the worker spins on rejections, the most
	// hostile client possible).
	ShedPause time.Duration
	// Seed seeds request generation (per-worker streams derive from it).
	Seed int64
}

// Report is the outcome of one load run.
type Report struct {
	// Elapsed is the measured wall-clock span of the run.
	Elapsed time.Duration
	// Sent counts requests issued; Sent == OK + Shed + Timeouts + errors.
	Sent int64
	// OK counts 200 responses that landed within Timeout — the goodput
	// numerator.
	OK int64
	// Shed counts 429 responses (admission control or quota): fast,
	// cheap rejections, the graceful-degradation currency.
	Shed int64
	// Timeouts counts requests whose response missed the client budget,
	// whatever status eventually arrived.
	Timeouts int64
	// Dropped counts open-loop arrivals that found all Workers busy.
	Dropped int64
	// Status histograms every HTTP status received (within budget).
	Status map[int]int64
	// OKLatency is the latency distribution of OK responses only.
	OKLatency metrics.HistSnapshot
	// AdmittedLatency is the latency distribution of every non-shed
	// response, including errors — what a caller actually waited.
	AdmittedLatency metrics.HistSnapshot
}

// Goodput returns OK responses per second of run time.
func (r Report) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / r.Elapsed.Seconds()
}

// OKRate returns the fraction of sent requests that became goodput.
func (r Report) OKRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.OK) / float64(r.Sent)
}

// collector accumulates classifications from all workers.
type collector struct {
	mu       sync.Mutex
	sent     int64
	ok       int64
	shed     int64
	timeouts int64
	dropped  int64
	status   map[int]int64

	okLat  *metrics.Histogram
	admLat *metrics.Histogram
}

func newCollector() *collector {
	return &collector{
		status: make(map[int]int64),
		okLat:  metrics.NewHistogram(),
		admLat: metrics.NewHistogram(),
	}
}

// record classifies one completed request.
func (c *collector) record(status int, lat time.Duration, timedOut bool) {
	c.mu.Lock()
	c.sent++
	switch {
	case timedOut:
		c.timeouts++
	case status == http.StatusTooManyRequests:
		c.shed++
		c.status[status]++
	default:
		c.status[status]++
		c.admLat.Observe(lat)
		if status == http.StatusOK {
			c.ok++
			c.okLat.Observe(lat)
		}
	}
	c.mu.Unlock()
}

func (c *collector) report(elapsed time.Duration) Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	status := make(map[int]int64, len(c.status))
	for k, v := range c.status {
		status[k] = v
	}
	return Report{
		Elapsed:         elapsed,
		Sent:            c.sent,
		OK:              c.ok,
		Shed:            c.shed,
		Timeouts:        c.timeouts,
		Dropped:         c.dropped,
		Status:          status,
		OKLatency:       c.okLat.Snapshot(),
		AdmittedLatency: c.admLat.Snapshot(),
	}
}

// Run executes one load run against cfg.Handler and returns its Report.
// The run ends at cfg.Duration or when ctx is cancelled, whichever comes
// first; in-flight requests are allowed to finish.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.Handler == nil {
		return Report{}, errors.New("loadgen: Config.Handler is required")
	}
	if cfg.NewRequest == nil {
		return Report{}, errors.New("loadgen: Config.NewRequest is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Arrival == OpenLoop && cfg.Rate <= 0 {
		return Report{}, errors.New("loadgen: OpenLoop requires Rate > 0")
	}

	col := newCollector()
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	switch cfg.Arrival {
	case OpenLoop:
		runOpen(runCtx, cfg, col)
	default:
		runClosed(runCtx, cfg, col)
	}
	return col.report(time.Since(start)), nil
}

// issue sends one request through the handler under the client budget and
// classifies the outcome, returning the HTTP status observed.
func issue(ctx context.Context, cfg Config, col *collector, req *http.Request) int {
	rctx := ctx
	var cancel context.CancelFunc
	if cfg.Timeout > 0 {
		// The budget intentionally outlives the run window: a request
		// issued at the deadline's edge still gets its full Timeout.
		rctx, cancel = context.WithTimeout(context.WithoutCancel(ctx), cfg.Timeout)
		defer cancel()
	}
	rec := httptest.NewRecorder()
	t0 := time.Now()
	cfg.Handler.ServeHTTP(rec, req.WithContext(rctx))
	lat := time.Since(t0)
	timedOut := cfg.Timeout > 0 && lat >= cfg.Timeout
	col.record(rec.Code, lat, timedOut)
	return rec.Code
}

// runClosed runs Workers back-to-back request loops until ctx expires.
func runClosed(ctx context.Context, cfg Config, col *collector) {
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := xrand.New(cfg.Seed + int64(w)*7919)
			for i := 0; ctx.Err() == nil; i++ {
				status := issue(ctx, cfg, col, cfg.NewRequest(i, src))
				if status == http.StatusTooManyRequests && cfg.ShedPause > 0 {
					t := time.NewTimer(cfg.ShedPause)
					select {
					case <-ctx.Done():
						t.Stop()
					case <-t.C:
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// runOpen fires Poisson arrivals at cfg.Rate, each handled by a slot from
// a Workers-sized pool; arrivals with no free slot are dropped.
func runOpen(ctx context.Context, cfg Config, col *collector) {
	slots := make(chan struct{}, cfg.Workers)
	arrivals := xrand.New(cfg.Seed)
	src := xrand.New(cfg.Seed + 1)
	var wg sync.WaitGroup
	i := 0
	for ctx.Err() == nil {
		gap := time.Duration(arrivals.Exponential(1/cfg.Rate) * float64(time.Second))
		t := time.NewTimer(gap)
		select {
		case <-ctx.Done():
			t.Stop()
		case <-t.C:
		}
		if ctx.Err() != nil {
			break
		}
		req := cfg.NewRequest(i, src)
		i++
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				issue(ctx, cfg, col, req)
			}()
		default:
			col.mu.Lock()
			col.sent++
			col.dropped++
			col.mu.Unlock()
		}
	}
	wg.Wait()
}
