package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"repro/internal/service"
	"repro/internal/xrand"
)

// InvokeRequest returns a NewRequest builder producing POST /v1/invoke
// calls against svc, with per-request text varied from the worker's RNG so
// the facade's cache sees a controlled mix instead of one infinitely-hot
// key. uniqueFrac in [0, 1] is the fraction of requests carrying a
// never-repeating text (cache misses); the rest draw from a small hot set.
func InvokeRequest(svc string, uniqueFrac float64) func(i int, src *xrand.Source) *http.Request {
	return func(i int, src *xrand.Source) *http.Request {
		var text string
		if src.Bernoulli(uniqueFrac) {
			text = fmt.Sprintf("unique-%d-%d", src.Int63(), i)
		} else {
			text = fmt.Sprintf("hot-%d", src.Intn(16))
		}
		body, _ := json.Marshal(map[string]any{
			"service": svc,
			"request": service.Request{Op: "analyze", Text: text},
		})
		req := httptest.NewRequest("POST", "/v1/invoke", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		return req
	}
}
