package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xrand"
)

func getReq(i int, src *xrand.Source) *http.Request {
	return httptest.NewRequest("GET", "/ping", nil)
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

func TestClosedLoopAllOK(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Handler:    okHandler(),
		NewRequest: getReq,
		Workers:    4,
		Duration:   50 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 {
		t.Fatal("closed loop sent no requests")
	}
	if rep.OK != rep.Sent {
		t.Errorf("OK = %d, Sent = %d: want all OK against a 200 handler", rep.OK, rep.Sent)
	}
	if rep.Goodput() <= 0 {
		t.Errorf("Goodput = %v, want > 0", rep.Goodput())
	}
	if rep.OKLatency.Count != uint64(rep.OK) {
		t.Errorf("OKLatency.Count = %d, want %d", rep.OKLatency.Count, rep.OK)
	}
}

func TestShedClassification(t *testing.T) {
	var n atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 0 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	rep, err := Run(context.Background(), Config{
		Handler:    h,
		NewRequest: getReq,
		Workers:    2,
		Duration:   30 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Error("alternating 429 handler produced no Shed classifications")
	}
	if rep.OK+rep.Shed != rep.Sent {
		t.Errorf("OK(%d) + Shed(%d) != Sent(%d)", rep.OK, rep.Shed, rep.Sent)
	}
	// Shed responses never enter the admitted-latency distribution.
	if rep.AdmittedLatency.Count != uint64(rep.OK) {
		t.Errorf("AdmittedLatency.Count = %d, want %d (OK only)", rep.AdmittedLatency.Count, rep.OK)
	}
}

func TestTimeoutClassification(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(time.Second):
		}
		w.WriteHeader(http.StatusOK)
	})
	rep, err := Run(context.Background(), Config{
		Handler:    h,
		NewRequest: getReq,
		Workers:    2,
		Duration:   40 * time.Millisecond,
		Timeout:    5 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 || rep.Timeouts != rep.Sent {
		t.Errorf("Timeouts = %d, Sent = %d: a 1s handler under a 5ms budget must time out every request", rep.Timeouts, rep.Sent)
	}
	if rep.OK != 0 {
		t.Errorf("OK = %d, want 0", rep.OK)
	}
}

func TestOpenLoopDropsWhenSaturated(t *testing.T) {
	block := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-block:
		}
		w.WriteHeader(http.StatusOK)
	})
	defer close(block)
	rep, err := Run(context.Background(), Config{
		Handler:    h,
		NewRequest: getReq,
		Arrival:    OpenLoop,
		Rate:       2000,
		Workers:    2,
		Duration:   50 * time.Millisecond,
		Timeout:    200 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2000/s arrivals into 2 permanently-blocked workers: nearly every
	// arrival finds the pool busy.
	if rep.Dropped == 0 {
		t.Errorf("open loop at saturation dropped nothing (sent %d)", rep.Sent)
	}
}

func TestOpenLoopRateShape(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Handler:    okHandler(),
		NewRequest: getReq,
		Arrival:    OpenLoop,
		Rate:       500,
		Workers:    64,
		Duration:   200 * time.Millisecond,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~100 arrivals expected; accept a wide band — this is a shape test,
	// not a statistics exam.
	if rep.Sent < 30 || rep.Sent > 300 {
		t.Errorf("open loop at 500/s for 200ms sent %d, want roughly 100", rep.Sent)
	}
	if rep.OK != rep.Sent-rep.Dropped {
		t.Errorf("OK = %d, want Sent-Dropped = %d", rep.OK, rep.Sent-rep.Dropped)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{NewRequest: getReq}); err == nil {
		t.Error("missing Handler should error")
	}
	if _, err := Run(context.Background(), Config{Handler: okHandler()}); err == nil {
		t.Error("missing NewRequest should error")
	}
	if _, err := Run(context.Background(), Config{Handler: okHandler(), NewRequest: getReq, Arrival: OpenLoop}); err == nil {
		t.Error("OpenLoop without Rate should error")
	}
}

func TestScheduleFiresInOrderAndIsDeterministic(t *testing.T) {
	var fired []string
	var mu chan struct{} = make(chan struct{}, 1)
	add := func(name string) func() {
		return func() {
			mu <- struct{}{}
			fired = append(fired, name)
			<-mu
		}
	}
	s := NewSchedule(
		Event{At: 20 * time.Millisecond, Name: "b", Do: add("b")},
		Event{At: 5 * time.Millisecond, Name: "a", Do: add("a")},
		Event{At: 30 * time.Millisecond, Name: "c", Do: add("c")},
	)
	s.Play(context.Background())
	if len(fired) != 3 || fired[0] != "a" || fired[1] != "b" || fired[2] != "c" {
		t.Errorf("fired = %v, want [a b c]", fired)
	}

	// RandomStorms: same seed, same schedule.
	faults := []Fault{{Name: "down", On: func() {}, Off: func() {}}, {Name: "lat", On: func() {}, Off: func() {}}}
	s1 := RandomStorms(11, time.Second, 4, faults).Events()
	s2 := RandomStorms(11, time.Second, 4, faults).Events()
	if len(s1) != len(s2) || len(s1) != 8 {
		t.Fatalf("schedules have %d/%d events, want 8 each", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].At != s2[i].At || s1[i].Name != s2[i].Name {
			t.Errorf("event %d differs: %v@%v vs %v@%v", i, s1[i].Name, s1[i].At, s2[i].Name, s2[i].At)
		}
		if s1[i].At > time.Second {
			t.Errorf("event %d at %v exceeds the horizon", i, s1[i].At)
		}
	}
}

func TestSchedulePlayRespectsContext(t *testing.T) {
	fired := false
	s := NewSchedule(Event{At: time.Hour, Name: "never", Do: func() { fired = true }})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	s.Play(ctx)
	if fired {
		t.Error("event fired despite cancelled context")
	}
	if time.Since(start) > time.Second {
		t.Error("Play did not return promptly on cancel")
	}
}
