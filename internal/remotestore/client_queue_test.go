package remotestore

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/kvstore"
)

// TestOfflineQueueBounded is the regression test for the unbounded
// write-back queue: before the cap, a client left offline long enough
// queued every write forever. Now the queue holds at most MaxPending
// distinct keys, evicting oldest-first and counting the drops.
func TestOfflineQueueBounded(t *testing.T) {
	_, c, _ := newPair(t, ClientConfig{Local: kvstore.NewMemory(), MaxPending: 10})
	c.SetOffline(true)
	for i := 0; i < 100; i++ {
		if err := c.Put(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.PendingWrites(); got != 10 {
		t.Fatalf("PendingWrites = %d, want 10 (cap) — queue is unbounded", got)
	}
	if got := c.Stats().DroppedWrites; got != 90 {
		t.Fatalf("DroppedWrites = %d, want 90", got)
	}
	// The survivors are the newest 10 keys.
	pushed, err := c.Sync()
	if err != nil || pushed != 10 {
		t.Fatalf("Sync = (%d, %v), want (10, nil)", pushed, err)
	}
	keys, err := c.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 10 || keys[0] != "k090" || keys[9] != "k099" {
		t.Fatalf("synced keys = %v, want k090..k099", keys)
	}
}

// TestOfflineQueueCoalesces checks the other half of the fix: re-writing a
// queued key must replace the entry in place, not consume another slot, so
// a workload hammering few keys never hits the cap at all.
func TestOfflineQueueCoalesces(t *testing.T) {
	_, c, _ := newPair(t, ClientConfig{Local: kvstore.NewMemory(), MaxPending: 4})
	c.SetOffline(true)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i%3)
		if err := c.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.PendingWrites(); got != 3 {
		t.Fatalf("PendingWrites = %d, want 3 (one per distinct key)", got)
	}
	if got := c.Stats().DroppedWrites; got != 0 {
		t.Fatalf("DroppedWrites = %d, want 0 — coalescing must not evict", got)
	}
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	// Each key holds its latest value (writes 47, 48, 49 → k2, k0, k1).
	for key, want := range map[string]string{"k0": "v48", "k1": "v49", "k2": "v47"} {
		v, err := c.Get(key)
		if err != nil || string(v) != want {
			t.Fatalf("Get(%s) = (%q, %v), want %q", key, v, err, want)
		}
	}
}

// TestOfflineQueueUnbounded preserves the opt-out: MaxPending < 0 restores
// grow-without-limit for callers that prefer memory pressure to drops.
func TestOfflineQueueUnbounded(t *testing.T) {
	_, c, _ := newPair(t, ClientConfig{Local: kvstore.NewMemory(), MaxPending: -1})
	c.SetOffline(true)
	const n = DefaultMaxPending + 100
	for i := 0; i < n; i++ {
		if err := c.Put(fmt.Sprintf("k%05d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.PendingWrites(); got != n {
		t.Fatalf("PendingWrites = %d, want %d", got, n)
	}
	if got := c.Stats().DroppedWrites; got != 0 {
		t.Fatalf("DroppedWrites = %d, want 0", got)
	}
}

// TestSyncRequeuePrefersNewerWrite drives the requeue merge: a write
// queued while a failing Sync is in flight must survive the requeue of the
// older drained entry for the same key.
func TestSyncRequeuePrefersNewerWrite(t *testing.T) {
	srv, c, _ := newPair(t, ClientConfig{Local: kvstore.NewMemory()})
	c.SetOffline(true)
	if err := c.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	srv.SetDown(true)
	if pushed, err := c.Sync(); err == nil || pushed != 0 {
		t.Fatalf("Sync against down server = (%d, %v), want error", pushed, err)
	}
	// Still offline after the failed sync; write the newer value.
	if !c.Offline() {
		t.Fatal("client should be offline after failed sync")
	}
	if err := c.Put("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got := c.PendingWrites(); got != 1 {
		t.Fatalf("PendingWrites = %d, want 1 (requeued entry coalesced)", got)
	}
	srv.SetDown(false)
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("k")
	if err != nil || string(v) != "new" {
		t.Fatalf("Get(k) = (%q, %v), want \"new\"", v, err)
	}
}

// TestContextCancelsRemoteIO verifies the context threading: a cancelled
// context aborts the in-flight request instead of waiting out the HTTP
// timeout.
func TestContextCancelsRemoteIO(t *testing.T) {
	srv, c, _ := newPair(t, ClientConfig{Timeout: 30 * time.Second})
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	srv.SetLatency(10 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.GetCtx(ctx, "k")
	if err == nil {
		t.Fatal("GetCtx should fail when the context expires")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("GetCtx took %v — context cancellation not honoured", elapsed)
	}
	// Context expiry is a transport-level failure: the client goes
	// offline, same as a connection drop.
	if !c.Offline() {
		t.Error("client should be offline after cancelled remote read")
	}
}

// TestSyncCtxInterrupts verifies SyncCtx requeues the remainder when the
// context dies mid-replay.
func TestSyncCtxInterrupts(t *testing.T) {
	_, c, _ := newPair(t, ClientConfig{Local: kvstore.NewMemory()})
	c.SetOffline(true)
	for i := 0; i < 5; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pushed, err := c.SyncCtx(ctx)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("SyncCtx(cancelled) error = %v, want context.Canceled", err)
	}
	if pushed != 0 {
		t.Fatalf("pushed = %d, want 0", pushed)
	}
	if got := c.PendingWrites(); got != 5 {
		t.Fatalf("PendingWrites = %d, want 5 (all requeued)", got)
	}
	if !c.Offline() {
		t.Error("client should be offline after interrupted sync")
	}
}
