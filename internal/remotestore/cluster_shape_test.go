package remotestore

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/kvstore"
)

// TestCloudStoreShape is the tier-1 guard for the sharded cloud store
// (ISSUE 10 acceptance): a sharded N=4/R=2 client must agree key-for-key
// with a single-node oracle, show ≥2x aggregate write throughput at 4
// nodes vs 1, and serve 100% of reads with one node killed.
//
// On the throughput leg's replication settings: at R=2/W=2 every write
// costs two node requests, so 4 nodes vs 1 (where R collapses to 1) has an
// ideal gain of exactly 2.0x — no margin for a ≥2x assertion. The scaling
// leg therefore runs at R=1 (ideal gain 4x, asserted ≥2x) and a separate
// R=2 leg asserts the replicated gain stays meaningfully above 1x. The
// equivalence and kill legs run at the specified N=4/R=2.
func TestCloudStoreShape(t *testing.T) {
	t.Run("OracleEquivalence", testShapeOracleEquivalence)
	t.Run("KillOneNodeReads", testShapeKillOneNodeReads)
	t.Run("Throughput4v1", testShapeThroughput)
}

func testShapeOracleEquivalence(t *testing.T) {
	// Oracle: the plain single-node enhanced client.
	oracleSrv := NewServer(nil)
	ohs := httptest.NewServer(oracleSrv.Handler())
	defer ohs.Close()
	oracle := NewClient(ClientConfig{BaseURL: ohs.URL})

	tc := newTestCluster(t, 4, nil)
	const n = 60
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := []byte(fmt.Sprintf("value-%d-%s", i, string(rune('a'+i%26))))
		if err := oracle.Put(k, v); err != nil {
			t.Fatal(err)
		}
		if err := tc.cl.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites and deletes must track too.
	for i := 0; i < n; i += 7 {
		k := fmt.Sprintf("key-%03d", i)
		if err := oracle.Put(k, []byte("rewritten")); err != nil {
			t.Fatal(err)
		}
		if err := tc.cl.Put(k, []byte("rewritten")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 3; i < n; i += 11 {
		k := fmt.Sprintf("key-%03d", i)
		if err := oracle.Delete(k); err != nil {
			t.Fatal(err)
		}
		if err := tc.cl.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	oracleKeys, err := oracle.Keys()
	if err != nil {
		t.Fatal(err)
	}
	clusterKeys, err := tc.cl.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(oracleKeys) != len(clusterKeys) {
		t.Fatalf("key sets differ: oracle %d, cluster %d", len(oracleKeys), len(clusterKeys))
	}
	for i := range oracleKeys {
		if oracleKeys[i] != clusterKeys[i] {
			t.Fatalf("Keys()[%d]: oracle %q, cluster %q", i, oracleKeys[i], clusterKeys[i])
		}
	}
	for _, k := range oracleKeys {
		want, err := oracle.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.cl.Get(k)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get(%s): cluster (%q, %v), oracle %q", k, got, err, want)
		}
	}
	// Deleted keys are absent from both.
	for i := 3; i < n; i += 11 {
		k := fmt.Sprintf("key-%03d", i)
		if _, err := tc.cl.Get(k); err == nil {
			t.Fatalf("deleted key %s still readable on cluster", k)
		}
	}
}

func testShapeKillOneNodeReads(t *testing.T) {
	// CacheSize 0: the client cache would mask failover.
	tc := newTestCluster(t, 4, func(c *ClusterConfig) { c.CacheSize = 0 })
	const n = 50
	for i := 0; i < n; i++ {
		if err := tc.cl.Put(fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	tc.servers[1].SetDown(true) // kill one node
	served := 0
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%03d", i)
		got, err := tc.cl.Get(k)
		if err == nil && string(got) == fmt.Sprintf("v-%d", i) {
			served++
		} else {
			t.Errorf("Get(%s) with node down = (%q, %v)", k, got, err)
		}
	}
	if served != n {
		t.Fatalf("served %d/%d reads with one node down, want 100%%", served, n)
	}
}

// shapeServers builds n capacity-limited, latency-injected store nodes —
// the model under which aggregate throughput is governed by node count
// (each node serves `capacity` requests per `latency`), so the sharding
// gain is machine-independent.
func shapeServers(t *testing.T, n int, capacity int, latency time.Duration) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := NewServer(nil, WithCapacity(capacity))
		srv.SetLatency(latency)
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		urls[i] = hs.URL
	}
	return urls
}

// shapeWriteRate drives `writers` concurrent writers through cl for `ops`
// distinct-key puts and returns the duration.
func shapeWriteRate(t *testing.T, cl *Cluster, ops, writers int, tag string) time.Duration {
	t.Helper()
	var wg sync.WaitGroup
	start := time.Now()
	perWriter := ops / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("%s-w%d-%d", tag, w, i)
				if err := cl.Put(key, []byte("shape-payload")); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

func testShapeThroughput(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-sensitive; run without -race")
	}
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	const (
		capacity = 4
		latency  = 2 * time.Millisecond
		ops      = 240
		writers  = 24
	)
	mkCluster := func(urls []string, replicas int) *Cluster {
		cl, err := NewCluster(ClusterConfig{
			Nodes:    urls,
			Replicas: replicas,
			Seed:     1,
			Workers:  32,
			Retry:    failover.RetryPolicy{MaxAttempts: 1},
			Breaker:  core.BreakerConfig{Threshold: -1},
			Local:    kvstore.NewMemory(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		return cl
	}
	one := mkCluster(shapeServers(t, 1, capacity, latency), 1)
	fourR1 := mkCluster(shapeServers(t, 4, capacity, latency), 1)
	fourR2 := mkCluster(shapeServers(t, 4, capacity, latency), 2)

	// Alternate measurement order and keep each configuration's best
	// batch, so a scheduling hiccup in one round cannot decide the ratio.
	best := map[string]time.Duration{}
	observe := func(name string, d time.Duration) {
		if cur, ok := best[name]; !ok || d < cur {
			best[name] = d
		}
	}
	for round := 0; round < 3; round++ {
		tag := fmt.Sprintf("r%d", round)
		if round%2 == 0 {
			observe("n1", shapeWriteRate(t, one, ops, writers, "n1-"+tag))
			observe("n4r1", shapeWriteRate(t, fourR1, ops, writers, "n4r1-"+tag))
			observe("n4r2", shapeWriteRate(t, fourR2, ops, writers, "n4r2-"+tag))
		} else {
			observe("n4r2", shapeWriteRate(t, fourR2, ops, writers, "n4r2-"+tag))
			observe("n4r1", shapeWriteRate(t, fourR1, ops, writers, "n4r1-"+tag))
			observe("n1", shapeWriteRate(t, one, ops, writers, "n1-"+tag))
		}
	}
	if one.Offline() || fourR1.Offline() || fourR2.Offline() {
		t.Fatal("a cluster went offline during the throughput leg — writes were queued, not measured")
	}
	rateOf := func(name string) float64 { return float64(ops) / best[name].Seconds() }
	r1Gain := rateOf("n4r1") / rateOf("n1")
	r2Gain := rateOf("n4r2") / rateOf("n1")
	t.Logf("write throughput: 1 node %.0f ops/s, 4 nodes R=1 %.0f ops/s (%.2fx), 4 nodes R=2 %.0f ops/s (%.2fx)",
		rateOf("n1"), rateOf("n4r1"), r1Gain, rateOf("n4r2"), r2Gain)
	if r1Gain < 2.0 {
		t.Errorf("4-node R=1 aggregate write throughput gain = %.2fx, want >= 2x (ideal 4x)", r1Gain)
	}
	if r2Gain < 1.3 {
		t.Errorf("4-node R=2 aggregate write throughput gain = %.2fx, want >= 1.3x (ideal 2x)", r2Gain)
	}
}
