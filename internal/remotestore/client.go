package remotestore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/codec"
	"repro/internal/kvstore"
)

// ErrNotFound is returned by Get for absent keys.
var ErrNotFound = errors.New("remotestore: not found")

// ErrOffline is returned when an operation needs the remote store but the
// client is offline and no local fallback exists.
var ErrOffline = errors.New("remotestore: offline")

// Stats counts client activity.
type Stats struct {
	RemoteGets    int64
	RemotePuts    int64
	CacheHits     int64
	OfflineWrites int64
	SyncedWrites  int64
	BytesSent     int64
}

// ClientConfig configures an enhanced data store client.
type ClientConfig struct {
	// BaseURL locates the cloud store ("http://host:port").
	BaseURL string
	// Codec transforms values before upload (typically Chain{Gzip,
	// AESGCM}). Nil means Identity.
	Codec codec.Codec
	// CacheSize bounds the client-side read cache (entries); 0 disables
	// caching.
	CacheSize int
	// CacheTTL expires cached reads; 0 means no expiry.
	CacheTTL time.Duration
	// Local, if non-nil, mirrors every write locally so reads keep
	// working while disconnected (the paper's local storage service).
	Local kvstore.Store
	// Timeout bounds each HTTP request. 0 means 10 seconds.
	Timeout time.Duration
}

// pendingWrite is one write queued while offline.
type pendingWrite struct {
	key    string
	value  []byte // encoded (post-codec) value; nil means delete
	seq    int64
	delete bool
}

// Client is the enhanced data store client. It is safe for concurrent use.
type Client struct {
	cfg  ClientConfig
	http *http.Client
	cdc  codec.Codec

	// memcache is sharded so concurrent cached reads contend per shard,
	// not on one global mutex.
	memcache *cache.Sharded[[]byte]

	mu      sync.Mutex
	offline bool
	pending []pendingWrite
	seq     int64

	stats struct {
		remoteGets, remotePuts, cacheHits, offlineWrites, syncedWrites, bytesSent int64
	}
}

// NewClient returns an enhanced client for the store at cfg.BaseURL.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Second
	}
	cdc := cfg.Codec
	if cdc == nil {
		cdc = codec.Identity{}
	}
	c := &Client{
		cfg:  cfg,
		http: &http.Client{Timeout: cfg.Timeout},
		cdc:  cdc,
	}
	if cfg.CacheSize > 0 {
		c.memcache = cache.NewSharded[[]byte](cfg.CacheSize, cache.WithTTL(cfg.CacheTTL))
	}
	return c
}

// SetOffline switches the client into (or out of) offline mode. Going
// offline is also automatic when a request fails at the transport level.
// Coming back online does NOT sync automatically; call Sync.
func (c *Client) SetOffline(offline bool) {
	c.mu.Lock()
	c.offline = offline
	c.mu.Unlock()
}

// Offline reports the current mode.
func (c *Client) Offline() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.offline
}

// Stats returns a snapshot of activity counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		RemoteGets:    c.stats.remoteGets,
		RemotePuts:    c.stats.remotePuts,
		CacheHits:     c.stats.cacheHits,
		OfflineWrites: c.stats.offlineWrites,
		SyncedWrites:  c.stats.syncedWrites,
		BytesSent:     c.stats.bytesSent,
	}
}

// PendingWrites returns how many writes await synchronization.
func (c *Client) PendingWrites() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Put stores value under key: encoded via the codec, mirrored to local
// storage, cached, and sent to the remote store — or queued if offline.
func (c *Client) Put(key string, value []byte) error {
	encoded, err := c.cdc.Encode(value)
	if err != nil {
		return fmt.Errorf("remotestore: encode: %w", err)
	}
	if c.cfg.Local != nil {
		if err := c.cfg.Local.Put(key, encoded); err != nil {
			return fmt.Errorf("remotestore: local mirror: %w", err)
		}
	}
	if c.memcache != nil {
		cp := make([]byte, len(value))
		copy(cp, value)
		c.memcache.Set(key, cp)
	}
	if c.Offline() {
		c.queueWrite(key, encoded, false)
		return nil
	}
	if err := c.remotePut(key, encoded); err != nil {
		if isTransport(err) {
			c.SetOffline(true)
			c.queueWrite(key, encoded, false)
			return nil
		}
		return err
	}
	return nil
}

// Get returns the value for key: from the client cache, then the remote
// store, then (offline) the local mirror.
func (c *Client) Get(key string) ([]byte, error) {
	if c.memcache != nil {
		if v, err := c.memcache.Get(key); err == nil {
			c.mu.Lock()
			c.stats.cacheHits++
			c.mu.Unlock()
			out := make([]byte, len(v))
			copy(out, v)
			return out, nil
		}
	}
	if !c.Offline() {
		encoded, err := c.remoteGet(key)
		switch {
		case err == nil:
			value, err := c.cdc.Decode(encoded)
			if err != nil {
				return nil, fmt.Errorf("remotestore: decode: %w", err)
			}
			if c.memcache != nil {
				cp := make([]byte, len(value))
				copy(cp, value)
				c.memcache.Set(key, cp)
			}
			return value, nil
		case errors.Is(err, ErrNotFound):
			return nil, err
		case isTransport(err):
			c.SetOffline(true)
		default:
			return nil, err
		}
	}
	// Offline fallback: the local mirror.
	if c.cfg.Local != nil {
		encoded, err := c.cfg.Local.Get(key)
		if err == nil {
			value, err := c.cdc.Decode(encoded)
			if err != nil {
				return nil, fmt.Errorf("remotestore: decode local: %w", err)
			}
			return value, nil
		}
		if errors.Is(err, kvstore.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, err
	}
	return nil, ErrOffline
}

// Delete removes key remotely (or queues the delete while offline) and
// drops it from the cache and local mirror.
func (c *Client) Delete(key string) error {
	if c.memcache != nil {
		c.memcache.Delete(key)
	}
	if c.cfg.Local != nil {
		if err := c.cfg.Local.Delete(key); err != nil {
			return fmt.Errorf("remotestore: local delete: %w", err)
		}
	}
	if c.Offline() {
		c.queueWrite(key, nil, true)
		return nil
	}
	if err := c.remoteDelete(key); err != nil {
		if isTransport(err) {
			c.SetOffline(true)
			c.queueWrite(key, nil, true)
			return nil
		}
		return err
	}
	return nil
}

// Sync marks the client online and flushes queued writes in sequence
// order, collapsing superseded writes to the same key (last writer wins).
// It returns how many operations were pushed.
func (c *Client) Sync() (int, error) {
	c.mu.Lock()
	c.offline = false
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	if len(pending) == 0 {
		return 0, nil
	}
	// Last write per key wins.
	latest := make(map[string]pendingWrite, len(pending))
	for _, w := range pending {
		cur, ok := latest[w.key]
		if !ok || w.seq > cur.seq {
			latest[w.key] = w
		}
	}
	ordered := make([]pendingWrite, 0, len(latest))
	for _, w := range latest {
		ordered = append(ordered, w)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
	pushed := 0
	for i, w := range ordered {
		var err error
		if w.delete {
			err = c.remoteDelete(w.key)
		} else {
			err = c.remotePut(w.key, w.value)
		}
		if err != nil {
			// Requeue what has not been pushed and go back offline.
			c.mu.Lock()
			c.offline = true
			c.pending = append(ordered[i:], c.pending...)
			c.mu.Unlock()
			return pushed, fmt.Errorf("remotestore: sync interrupted: %w", err)
		}
		pushed++
		c.mu.Lock()
		c.stats.syncedWrites++
		c.mu.Unlock()
	}
	return pushed, nil
}

// Keys lists the remote store's keys (requires connectivity).
func (c *Client) Keys() ([]string, error) {
	if c.Offline() {
		if c.cfg.Local != nil {
			return c.cfg.Local.Keys()
		}
		return nil, ErrOffline
	}
	resp, err := c.http.Get(c.cfg.BaseURL + "/keys")
	if err != nil {
		c.SetOffline(true)
		if c.cfg.Local != nil {
			return c.cfg.Local.Keys()
		}
		return nil, fmt.Errorf("remotestore: %w: %v", ErrOffline, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, &remoteError{status: resp.StatusCode, msg: "keys"}
	}
	var keys []string
	if err := jsonDecode(resp.Body, &keys); err != nil {
		return nil, err
	}
	return keys, nil
}

func (c *Client) queueWrite(key string, encoded []byte, del bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	c.pending = append(c.pending, pendingWrite{key: key, value: encoded, seq: c.seq, delete: del})
	c.stats.offlineWrites++
}

func (c *Client) remotePut(key string, encoded []byte) error {
	req, err := http.NewRequest(http.MethodPut, c.cfg.BaseURL+"/kv/"+key, bytes.NewReader(encoded))
	if err != nil {
		return fmt.Errorf("remotestore: build put: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return &transportError{err}
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		if resp.StatusCode == http.StatusServiceUnavailable {
			return &transportError{&remoteError{status: resp.StatusCode, msg: "put"}}
		}
		return &remoteError{status: resp.StatusCode, msg: "put"}
	}
	c.mu.Lock()
	c.stats.remotePuts++
	c.stats.bytesSent += int64(len(encoded))
	c.mu.Unlock()
	return nil
}

func (c *Client) remoteGet(key string) ([]byte, error) {
	resp, err := c.http.Get(c.cfg.BaseURL + "/kv/" + key)
	if err != nil {
		return nil, &transportError{err}
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	case http.StatusServiceUnavailable:
		return nil, &transportError{&remoteError{status: resp.StatusCode, msg: "get"}}
	default:
		return nil, &remoteError{status: resp.StatusCode, msg: "get"}
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("remotestore: read body: %w", err)
	}
	c.mu.Lock()
	c.stats.remoteGets++
	c.mu.Unlock()
	return data, nil
}

func (c *Client) remoteDelete(key string) error {
	req, err := http.NewRequest(http.MethodDelete, c.cfg.BaseURL+"/kv/"+key, nil)
	if err != nil {
		return fmt.Errorf("remotestore: build delete: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return &transportError{err}
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		if resp.StatusCode == http.StatusServiceUnavailable {
			return &transportError{&remoteError{status: resp.StatusCode, msg: "delete"}}
		}
		return &remoteError{status: resp.StatusCode, msg: "delete"}
	}
	return nil
}

// transportError marks failures that indicate lost connectivity (as opposed
// to application errors like 404).
type transportError struct{ err error }

func (t *transportError) Error() string { return "remotestore: transport: " + t.err.Error() }
func (t *transportError) Unwrap() error { return t.err }

func isTransport(err error) bool {
	var te *transportError
	return errors.As(err, &te)
}

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}

func jsonDecode(r io.Reader, v any) error {
	if err := json.NewDecoder(io.LimitReader(r, 16<<20)).Decode(v); err != nil {
		return fmt.Errorf("remotestore: decode: %w", err)
	}
	return nil
}
