package remotestore

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/codec"
	"repro/internal/kvstore"
)

// ErrNotFound is returned by Get for absent keys.
var ErrNotFound = errors.New("remotestore: not found")

// ErrOffline is returned when an operation needs the remote store but the
// client is offline and no local fallback exists.
var ErrOffline = errors.New("remotestore: offline")

// Store is the enhanced data store surface shared by the single-node
// Client and the sharded Cluster, so kb/docstore callers can take either
// without caring how many servers sit behind it.
type Store interface {
	Put(key string, value []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	Keys() ([]string, error)
	Sync() (int, error)
	SetOffline(offline bool)
	Offline() bool
	PendingWrites() int
}

var _ Store = (*Client)(nil)

// Stats counts client activity. ReadFailovers is only meaningful for the
// Cluster (reads served by a non-primary replica); it stays zero on the
// single-node Client.
type Stats struct {
	RemoteGets    int64
	RemotePuts    int64
	CacheHits     int64
	OfflineWrites int64
	SyncedWrites  int64
	DroppedWrites int64
	BytesSent     int64
	ReadFailovers int64
}

// ClientConfig configures an enhanced data store client.
type ClientConfig struct {
	// BaseURL locates the cloud store ("http://host:port").
	BaseURL string
	// Codec transforms values before upload (typically Chain{Gzip,
	// AESGCM}). Nil means Identity.
	Codec codec.Codec
	// CacheSize bounds the client-side read cache (entries); 0 disables
	// caching.
	CacheSize int
	// CacheTTL expires cached reads; 0 means no expiry.
	CacheTTL time.Duration
	// Local, if non-nil, mirrors every write locally so reads keep
	// working while disconnected (the paper's local storage service).
	Local kvstore.Store
	// Timeout bounds each HTTP request. 0 means 10 seconds.
	Timeout time.Duration
	// MaxPending caps the offline write-back queue (distinct keys).
	// 0 means DefaultMaxPending; negative means unbounded (the pre-cap
	// behaviour, for callers that would rather grow than drop).
	MaxPending int
}

// pendingWrite is one write queued while offline.
type pendingWrite struct {
	key    string
	value  []byte // encoded (post-codec) value; nil means delete
	seq    int64
	delete bool
}

// Client is the enhanced data store client. It is safe for concurrent use.
type Client struct {
	cfg ClientConfig
	tr  transport
	cdc codec.Codec

	// memcache is sharded so concurrent cached reads contend per shard,
	// not on one global mutex.
	memcache *cache.Sharded[[]byte]

	mu      sync.Mutex
	offline bool
	queue   *writeQueue

	stats struct {
		remoteGets, remotePuts, cacheHits, offlineWrites, syncedWrites, bytesSent int64
	}
}

// NewClient returns an enhanced client for the store at cfg.BaseURL.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Second
	}
	cdc := cfg.Codec
	if cdc == nil {
		cdc = codec.Identity{}
	}
	maxPending := cfg.MaxPending
	if maxPending == 0 {
		maxPending = DefaultMaxPending
	}
	c := &Client{
		cfg:   cfg,
		tr:    transport{base: cfg.BaseURL, http: &http.Client{Timeout: cfg.Timeout}},
		cdc:   cdc,
		queue: newWriteQueue(maxPending),
	}
	if cfg.CacheSize > 0 {
		c.memcache = cache.NewSharded[[]byte](cfg.CacheSize, cache.WithTTL(cfg.CacheTTL))
	}
	return c
}

// SetOffline switches the client into (or out of) offline mode. Going
// offline is also automatic when a request fails at the transport level.
// Coming back online does NOT sync automatically; call Sync.
func (c *Client) SetOffline(offline bool) {
	c.mu.Lock()
	c.offline = offline
	c.mu.Unlock()
}

// Offline reports the current mode.
func (c *Client) Offline() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.offline
}

// Stats returns a snapshot of activity counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		RemoteGets:    c.stats.remoteGets,
		RemotePuts:    c.stats.remotePuts,
		CacheHits:     c.stats.cacheHits,
		OfflineWrites: c.stats.offlineWrites,
		SyncedWrites:  c.stats.syncedWrites,
		DroppedWrites: c.queue.dropped,
		BytesSent:     c.stats.bytesSent,
	}
}

// PendingWrites returns how many writes await synchronization.
func (c *Client) PendingWrites() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queue.len()
}

// Put stores value under key: encoded via the codec, mirrored to local
// storage, cached, and sent to the remote store — or queued if offline.
func (c *Client) Put(key string, value []byte) error {
	return c.PutCtx(context.Background(), key, value)
}

// PutCtx is Put with cancellation of the in-flight upload.
func (c *Client) PutCtx(ctx context.Context, key string, value []byte) error {
	encoded, err := c.cdc.Encode(value)
	if err != nil {
		return fmt.Errorf("remotestore: encode: %w", err)
	}
	if c.cfg.Local != nil {
		if err := c.cfg.Local.Put(key, encoded); err != nil {
			return fmt.Errorf("remotestore: local mirror: %w", err)
		}
	}
	if c.memcache != nil {
		cp := make([]byte, len(value))
		copy(cp, value)
		c.memcache.Set(key, cp)
	}
	if c.Offline() {
		c.queueWrite(key, encoded, false)
		return nil
	}
	if err := c.remotePut(ctx, key, encoded); err != nil {
		if isTransport(err) {
			c.SetOffline(true)
			c.queueWrite(key, encoded, false)
			return nil
		}
		return err
	}
	return nil
}

// Get returns the value for key: from the client cache, then the remote
// store, then (offline) the local mirror.
func (c *Client) Get(key string) ([]byte, error) {
	return c.GetCtx(context.Background(), key)
}

// GetCtx is Get with cancellation of the in-flight download.
func (c *Client) GetCtx(ctx context.Context, key string) ([]byte, error) {
	if c.memcache != nil {
		if v, err := c.memcache.Get(key); err == nil {
			c.mu.Lock()
			c.stats.cacheHits++
			c.mu.Unlock()
			out := make([]byte, len(v))
			copy(out, v)
			return out, nil
		}
	}
	if !c.Offline() {
		encoded, err := c.remoteGet(ctx, key)
		switch {
		case err == nil:
			value, err := c.cdc.Decode(encoded)
			if err != nil {
				return nil, fmt.Errorf("remotestore: decode: %w", err)
			}
			if c.memcache != nil {
				cp := make([]byte, len(value))
				copy(cp, value)
				c.memcache.Set(key, cp)
			}
			return value, nil
		case errors.Is(err, ErrNotFound):
			return nil, err
		case isTransport(err):
			c.SetOffline(true)
		default:
			return nil, err
		}
	}
	// Offline fallback: the local mirror.
	if c.cfg.Local != nil {
		encoded, err := c.cfg.Local.Get(key)
		if err == nil {
			value, err := c.cdc.Decode(encoded)
			if err != nil {
				return nil, fmt.Errorf("remotestore: decode local: %w", err)
			}
			return value, nil
		}
		if errors.Is(err, kvstore.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, err
	}
	return nil, ErrOffline
}

// Delete removes key remotely (or queues the delete while offline) and
// drops it from the cache and local mirror.
func (c *Client) Delete(key string) error {
	return c.DeleteCtx(context.Background(), key)
}

// DeleteCtx is Delete with cancellation of the in-flight request.
func (c *Client) DeleteCtx(ctx context.Context, key string) error {
	if c.memcache != nil {
		c.memcache.Delete(key)
	}
	if c.cfg.Local != nil {
		if err := c.cfg.Local.Delete(key); err != nil {
			return fmt.Errorf("remotestore: local delete: %w", err)
		}
	}
	if c.Offline() {
		c.queueWrite(key, nil, true)
		return nil
	}
	if err := c.remoteDelete(ctx, key); err != nil {
		if isTransport(err) {
			c.SetOffline(true)
			c.queueWrite(key, nil, true)
			return nil
		}
		return err
	}
	return nil
}

// Sync marks the client online and flushes queued writes in sequence
// order. The queue coalesces writes per key as they are enqueued (last
// writer wins), so every drained entry is live. It returns how many
// operations were pushed.
func (c *Client) Sync() (int, error) {
	return c.SyncCtx(context.Background())
}

// SyncCtx is Sync with cancellation: a cancelled context interrupts the
// replay, requeues the remainder, and puts the client back offline.
func (c *Client) SyncCtx(ctx context.Context) (int, error) {
	c.mu.Lock()
	c.offline = false
	ordered := c.queue.drain()
	c.mu.Unlock()
	if len(ordered) == 0 {
		return 0, nil
	}
	pushed := 0
	for i, w := range ordered {
		err := ctx.Err()
		if err == nil {
			if w.delete {
				err = c.remoteDelete(ctx, w.key)
			} else {
				err = c.remotePut(ctx, w.key, w.value)
			}
		}
		if err != nil {
			// Requeue what has not been pushed and go back offline.
			c.mu.Lock()
			c.offline = true
			c.queue.requeue(ordered[i:])
			c.mu.Unlock()
			return pushed, fmt.Errorf("remotestore: sync interrupted: %w", err)
		}
		pushed++
		c.mu.Lock()
		c.stats.syncedWrites++
		c.mu.Unlock()
	}
	return pushed, nil
}

// Keys lists the remote store's keys (requires connectivity).
func (c *Client) Keys() ([]string, error) {
	return c.KeysCtx(context.Background())
}

// KeysCtx is Keys with cancellation of the in-flight request.
func (c *Client) KeysCtx(ctx context.Context) ([]string, error) {
	if c.Offline() {
		if c.cfg.Local != nil {
			return c.cfg.Local.Keys()
		}
		return nil, ErrOffline
	}
	keys, err := c.tr.keys(ctx)
	if err != nil {
		if isTransport(err) {
			c.SetOffline(true)
			if c.cfg.Local != nil {
				return c.cfg.Local.Keys()
			}
			return nil, fmt.Errorf("remotestore: %w: %v", ErrOffline, err)
		}
		return nil, err
	}
	return keys, nil
}

func (c *Client) queueWrite(key string, encoded []byte, del bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queue.push(key, encoded, del)
	c.stats.offlineWrites++
}

func (c *Client) remotePut(ctx context.Context, key string, encoded []byte) error {
	if err := c.tr.put(ctx, key, encoded); err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.remotePuts++
	c.stats.bytesSent += int64(len(encoded))
	c.mu.Unlock()
	return nil
}

func (c *Client) remoteGet(ctx context.Context, key string) ([]byte, error) {
	data, err := c.tr.get(ctx, key)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.stats.remoteGets++
	c.mu.Unlock()
	return data, nil
}

func (c *Client) remoteDelete(ctx context.Context, key string) error {
	return c.tr.del(ctx, key)
}
