package remotestore

import "sort"

// DefaultMaxPending bounds the offline write-back queue when
// ClientConfig.MaxPending is zero. During a long outage a busy client can
// queue writes far faster than a reconnect will ever drain them; an
// unbounded queue turns an availability incident into a memory incident.
const DefaultMaxPending = 4096

// writeQueue is the offline write-back queue: an ordered, per-key-coalesced
// buffer of writes awaiting Sync. A later write to a key already queued
// replaces the queued entry in place (the remote store only ever needs the
// final value — replaying superseded versions wastes uplink), so the queue
// holds at most one entry per key. When even that exceeds max, the oldest
// entry is dropped and counted; the local mirror still has the value, so a
// drop trades durability-on-reconnect for bounded memory, which is the
// right trade during an unbounded outage.
//
// Callers hold the owning client's mutex; writeQueue does no locking.
type writeQueue struct {
	max     int // <= 0 means unbounded
	entries []pendingWrite
	index   map[string]int // key -> position in entries
	seq     int64
	dropped int64
}

func newWriteQueue(max int) *writeQueue {
	return &writeQueue{max: max, index: make(map[string]int)}
}

// push queues a write (or delete), coalescing onto an existing entry for
// the same key. Returns true if an unrelated older entry was evicted to
// make room.
func (q *writeQueue) push(key string, encoded []byte, del bool) (evicted bool) {
	q.seq++
	w := pendingWrite{key: key, value: encoded, seq: q.seq, delete: del}
	if i, ok := q.index[key]; ok {
		// Coalesce: the newer write supersedes the queued one but keeps
		// its ring position — Sync replays in seq order, and the
		// superseded seq is gone.
		q.entries[i] = w
		return false
	}
	if q.max > 0 && len(q.entries) >= q.max {
		oldest := q.entries[0]
		delete(q.index, oldest.key)
		q.entries = q.entries[1:]
		for k, i := range q.index {
			q.index[k] = i - 1
		}
		q.dropped++
		evicted = true
	}
	q.index[key] = len(q.entries)
	q.entries = append(q.entries, w)
	return evicted
}

// drain removes and returns every queued write in seq order.
func (q *writeQueue) drain() []pendingWrite {
	out := q.entries
	q.entries = nil
	q.index = make(map[string]int)
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// requeue returns drained entries to the queue after a failed Sync. An
// entry whose key was re-written while the Sync was in flight is discarded
// (the in-queue write is newer). Requeued entries keep their original seq,
// so a later drain still replays oldest-first.
func (q *writeQueue) requeue(entries []pendingWrite) {
	if len(entries) == 0 {
		return
	}
	newer := q.entries
	q.entries = make([]pendingWrite, 0, len(entries)+len(newer))
	q.index = make(map[string]int, len(entries)+len(newer))
	for _, w := range entries {
		q.index[w.key] = len(q.entries)
		q.entries = append(q.entries, w)
	}
	for _, w := range newer {
		if i, ok := q.index[w.key]; ok {
			q.entries[i] = w
			continue
		}
		q.index[w.key] = len(q.entries)
		q.entries = append(q.entries, w)
	}
	// Enforce the cap after merging; over-cap entries drop oldest-first.
	if q.max > 0 {
		for len(q.entries) > q.max {
			oldest := q.entries[0]
			delete(q.index, oldest.key)
			q.entries = q.entries[1:]
			for k, i := range q.index {
				q.index[k] = i - 1
			}
			q.dropped++
		}
	}
}

func (q *writeQueue) len() int { return len(q.entries) }
