package remotestore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Handler exposes the cluster through the same HTTP surface a single
// store node serves (PUT/GET/DELETE /kv/{key}, GET /keys), plus
// POST /sync to drain the offline queue and GET /cluster for membership
// and breaker state — so cmd/cloudstore can front a sharded cluster
// without callers noticing the difference.
func (cl *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(io.LimitReader(r.Body, DefaultMaxObjectBytes+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if int64(len(data)) > DefaultMaxObjectBytes {
			http.Error(w, fmt.Sprintf("object exceeds %d-byte limit", int64(DefaultMaxObjectBytes)), http.StatusRequestEntityTooLarge)
			return
		}
		if err := cl.PutCtx(r.Context(), r.PathValue("key"), data); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		data, err := cl.GetCtx(r.Context(), r.PathValue("key"))
		switch {
		case err == nil:
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(data)
		case errors.Is(err, ErrNotFound):
			http.NotFound(w, r)
		case errors.Is(err, ErrOffline):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusBadGateway)
		}
	})
	mux.HandleFunc("DELETE /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		if err := cl.DeleteCtx(r.Context(), r.PathValue("key")); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /keys", func(w http.ResponseWriter, r *http.Request) {
		keys, err := cl.KeysCtx(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(keys)
	})
	mux.HandleFunc("POST /sync", func(w http.ResponseWriter, r *http.Request) {
		pushed, err := cl.SyncCtx(r.Context())
		w.Header().Set("Content-Type", "application/json")
		status := http.StatusOK
		var msg string
		if err != nil {
			status = http.StatusBadGateway
			msg = err.Error()
		}
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(map[string]any{"pushed": pushed, "error": msg})
	})
	mux.HandleFunc("GET /cluster", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"nodes":       cl.Nodes(),
			"replicas":    cl.Replicas(),
			"writeQuorum": cl.WriteQuorum(),
			"offline":     cl.Offline(),
			"pending":     cl.PendingWrites(),
			"breakers":    cl.BreakerStates(),
		})
	})
	return mux
}
