package remotestore

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/kvstore"
)

func newPair(t *testing.T, cfg ClientConfig) (*Server, *Client, *httptest.Server) {
	t.Helper()
	srv := NewServer(nil)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	cfg.BaseURL = hs.URL
	return srv, NewClient(cfg), hs
}

func TestPutGetDeleteRoundTrip(t *testing.T) {
	_, c, _ := newPair(t, ClientConfig{})
	if err := c.Put("k1", []byte("value one")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("k1")
	if err != nil || string(v) != "value one" {
		t.Errorf("Get = (%q, %v)", v, err)
	}
	if err := c.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("after delete Get = %v, want ErrNotFound", err)
	}
}

func TestGetMissing(t *testing.T) {
	_, c, _ := newPair(t, ClientConfig{})
	if _, err := c.Get("never"); !errors.Is(err, ErrNotFound) {
		t.Errorf("error = %v, want ErrNotFound", err)
	}
}

func TestKeys(t *testing.T) {
	_, c, _ := newPair(t, ClientConfig{})
	for _, k := range []string{"b", "a", "c"} {
		if err := c.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := c.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != "a" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestClientCacheAvoidsRemoteGets(t *testing.T) {
	srv, c, _ := newPair(t, ClientConfig{CacheSize: 16})
	if err := c.Put("hot", []byte("data")); err != nil {
		t.Fatal(err)
	}
	before := srv.Requests()
	for i := 0; i < 10; i++ {
		if _, err := c.Get("hot"); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Requests() != before {
		t.Errorf("remote requests grew by %d, want 0 (cache)", srv.Requests()-before)
	}
	if st := c.Stats(); st.CacheHits != 10 {
		t.Errorf("CacheHits = %d, want 10", st.CacheHits)
	}
}

func TestEncryptionHidesPlaintextFromServer(t *testing.T) {
	enc, err := codec.NewAESGCM("kb secret")
	if err != nil {
		t.Fatal(err)
	}
	backing := kvstore.NewMemory()
	srv := NewServer(backing)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := NewClient(ClientConfig{BaseURL: hs.URL, Codec: enc})
	secret := []byte("very confidential fact")
	if err := c.Put("s", secret); err != nil {
		t.Fatal(err)
	}
	stored, err := backing.Get("s")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(stored, secret) {
		t.Error("plaintext visible to the remote store")
	}
	got, err := c.Get("s")
	if err != nil || !bytes.Equal(got, secret) {
		t.Errorf("round trip = (%q, %v)", got, err)
	}
}

func TestCompressionReducesBytesSent(t *testing.T) {
	srvPlain, cPlain, _ := newPair(t, ClientConfig{})
	srvGz, cGz, _ := newPair(t, ClientConfig{Codec: codec.Gzip{}})
	payload := []byte(strings.Repeat("compressible knowledge base text. ", 200))
	if err := cPlain.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	if err := cGz.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	if srvGz.BytesIn() >= srvPlain.BytesIn()/2 {
		t.Errorf("gzip sent %d bytes vs %d plain — no real saving", srvGz.BytesIn(), srvPlain.BytesIn())
	}
	got, err := cGz.Get("k")
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("round trip failed: %v", err)
	}
}

func TestOfflineWritesQueueAndSync(t *testing.T) {
	srv, c, _ := newPair(t, ClientConfig{Local: kvstore.NewMemory()})
	c.SetOffline(true)
	for i, kv := range [][2]string{{"a", "1"}, {"b", "2"}, {"a", "3"}} {
		if err := c.Put(kv[0], []byte(kv[1])); err != nil {
			t.Fatalf("offline put %d: %v", i, err)
		}
	}
	// The queue coalesces per key at enqueue time, so the second write to
	// "a" replaced the first instead of appending.
	if got := c.PendingWrites(); got != 2 {
		t.Errorf("PendingWrites = %d, want 2", got)
	}
	if got := c.Stats().OfflineWrites; got != 3 {
		t.Errorf("OfflineWrites = %d, want 3", got)
	}
	if srv.Requests() != 0 {
		t.Errorf("server saw %d requests while offline", srv.Requests())
	}
	// Reads keep working from the local mirror.
	v, err := c.Get("a")
	if err != nil || string(v) != "3" {
		t.Errorf("offline Get = (%q, %v)", v, err)
	}
	pushed, err := c.Sync()
	if err != nil {
		t.Fatal(err)
	}
	// Per-key coalescing collapsed the two writes to "a".
	if pushed != 2 {
		t.Errorf("pushed = %d, want 2", pushed)
	}
	if c.PendingWrites() != 0 {
		t.Errorf("pending after sync = %d", c.PendingWrites())
	}
	// Remote now has the final values.
	c2 := NewClient(ClientConfig{BaseURL: c.cfg.BaseURL})
	v, err = c2.Get("a")
	if err != nil || string(v) != "3" {
		t.Errorf("post-sync Get(a) = (%q, %v)", v, err)
	}
	v, err = c2.Get("b")
	if err != nil || string(v) != "2" {
		t.Errorf("post-sync Get(b) = (%q, %v)", v, err)
	}
}

func TestOfflineDeleteSyncs(t *testing.T) {
	_, c, _ := newPair(t, ClientConfig{Local: kvstore.NewMemory()})
	if err := c.Put("gone", []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.SetOffline(true)
	if err := c.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("gone"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted key survives sync: %v", err)
	}
}

func TestAutoOfflineOnOutage(t *testing.T) {
	srv, c, _ := newPair(t, ClientConfig{Local: kvstore.NewMemory()})
	srv.SetDown(true)
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put during outage should queue, got %v", err)
	}
	if !c.Offline() {
		t.Error("client did not switch to offline on outage")
	}
	if c.PendingWrites() != 1 {
		t.Errorf("PendingWrites = %d", c.PendingWrites())
	}
	srv.SetDown(false)
	pushed, err := c.Sync()
	if err != nil || pushed != 1 {
		t.Errorf("Sync = (%d, %v)", pushed, err)
	}
	v, err := c.Get("k")
	if err != nil || string(v) != "v" {
		t.Errorf("post-recovery Get = (%q, %v)", v, err)
	}
}

func TestSyncInterruptedRequeues(t *testing.T) {
	srv, c, _ := newPair(t, ClientConfig{Local: kvstore.NewMemory()})
	c.SetOffline(true)
	if err := c.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	srv.SetDown(true)
	if _, err := c.Sync(); err == nil {
		t.Fatal("Sync during outage should fail")
	}
	if !c.Offline() {
		t.Error("client should return to offline after failed sync")
	}
	if c.PendingWrites() != 1 {
		t.Errorf("write lost: pending = %d", c.PendingWrites())
	}
	srv.SetDown(false)
	if pushed, err := c.Sync(); err != nil || pushed != 1 {
		t.Errorf("retry Sync = (%d, %v)", pushed, err)
	}
}

func TestServerLatencyInjection(t *testing.T) {
	srv, c, _ := newPair(t, ClientConfig{})
	srv.SetLatency(30 * time.Millisecond)
	start := time.Now()
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("elapsed = %v, latency not applied", elapsed)
	}
}

func TestLocalMirrorFasterPathExists(t *testing.T) {
	// With a local mirror and the client offline, reads are served with
	// zero remote requests — the paper's local storage-during-
	// disconnection story.
	srv, c, _ := newPair(t, ClientConfig{Local: kvstore.NewMemory()})
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.SetOffline(true)
	before := srv.Requests()
	for i := 0; i < 5; i++ {
		if _, err := c.Get("k"); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Requests() != before {
		t.Error("offline reads hit the remote store")
	}
}

func TestOfflineNoFallbackErrors(t *testing.T) {
	_, c, _ := newPair(t, ClientConfig{})
	c.SetOffline(true)
	if _, err := c.Get("k"); !errors.Is(err, ErrOffline) {
		t.Errorf("error = %v, want ErrOffline", err)
	}
}
