package remotestore

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestLatencyCancelReleasesHandler is the regression test for the
// context-blind latency sleep: with a 2s injected latency and a client that
// is already gone, the handler must return almost immediately instead of
// pinning its goroutine for the full injected duration. On the pre-fix code
// (bare time.Sleep) this test times out the 500ms budget.
func TestLatencyCancelReleasesHandler(t *testing.T) {
	srv := NewServer(nil)
	srv.SetLatency(2 * time.Second)
	h := srv.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client has already disconnected
	req := httptest.NewRequest("GET", "/kv/some-key", nil).WithContext(ctx)

	start := time.Now()
	h.ServeHTTP(httptest.NewRecorder(), req)
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("handler held for %v after client cancel; want near-immediate return", el)
	}
}

// TestPutOversizedRejected413 is the regression test for silent
// truncation: a body over the object limit must be rejected with 413 and
// must NOT be stored. On the pre-fix code the server stored the first
// maxBytes bytes and answered success.
func TestPutOversizedRejected413(t *testing.T) {
	srv := NewServer(nil, WithMaxBytes(1024))
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	big := bytes.Repeat([]byte("x"), 2048)
	req, _ := http.NewRequest("PUT", hs.URL+"/kv/big", bytes.NewReader(big))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT status = %d, want 413", resp.StatusCode)
	}
	if got, _ := http.Get(hs.URL + "/kv/big"); got.StatusCode != http.StatusNotFound {
		t.Fatalf("oversized object was stored (GET = %d), want 404", got.StatusCode)
	}
	if n := srv.BytesIn(); n != 0 {
		t.Errorf("rejected payload counted toward BytesIn (%d), want 0", n)
	}
}

// TestPutExactLimitRoundTrips pins the boundary: a body of exactly the
// limit is accepted and round-trips byte-identically.
func TestPutExactLimitRoundTrips(t *testing.T) {
	srv := NewServer(nil, WithMaxBytes(1024))
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	body := bytes.Repeat([]byte("y"), 1024)
	req, _ := http.NewRequest("PUT", hs.URL+"/kv/edge", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("exact-limit PUT status = %d, want 204", resp.StatusCode)
	}
	got, err := http.Get(hs.URL + "/kv/edge")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(got.Body)
	got.Body.Close()
	if !bytes.Equal(data, body) {
		t.Fatalf("round-trip mismatch: got %d bytes, want %d identical bytes", len(data), len(body))
	}
}

// TestServerFailRateInjection scripts a random-5xx burst and verifies it is
// total at rate 1, absent at rate 0, and deterministic under a fixed seed.
func TestServerFailRateInjection(t *testing.T) {
	srv := NewServer(nil, WithSeed(42))
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	put := func(k string) int {
		req, _ := http.NewRequest("PUT", hs.URL+"/kv/"+k, strings.NewReader("v"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	srv.SetFailRate(1)
	if code := put("a"); code != http.StatusServiceUnavailable {
		t.Fatalf("at failrate 1 status = %d, want 503", code)
	}
	srv.SetFailRate(0)
	if code := put("b"); code != http.StatusNoContent {
		t.Fatalf("at failrate 0 status = %d, want 204", code)
	}
}

// TestSlowDripBody verifies the slow-drip chaos mode: the full body still
// arrives, but paced across inter-chunk delays.
func TestSlowDripBody(t *testing.T) {
	srv := NewServer(nil)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	body := bytes.Repeat([]byte("d"), 64)
	req, _ := http.NewRequest("PUT", hs.URL+"/kv/drip", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	srv.SetSlowDrip(16, 5*time.Millisecond) // 64 bytes => 4 chunks, 3 delays
	start := time.Now()
	got, err := http.Get(hs.URL + "/kv/drip")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(got.Body)
	got.Body.Close()
	el := time.Since(start)
	if !bytes.Equal(data, body) {
		t.Fatalf("dripped body mismatch: got %d bytes", len(data))
	}
	if el < 12*time.Millisecond {
		t.Errorf("dripped GET took %v, want >= ~15ms across 3 inter-chunk delays", el)
	}

	srv.SetSlowDrip(0, 0)
	got2, err := http.Get(hs.URL + "/kv/drip")
	if err != nil {
		t.Fatal(err)
	}
	data2, _ := io.ReadAll(got2.Body)
	got2.Body.Close()
	if !bytes.Equal(data2, body) {
		t.Fatalf("post-drip body mismatch")
	}
}
