// Package remotestore implements the cloud data store substrate and the
// paper's "enhanced data store client" ([11] in the paper): a key-value
// store served over HTTP with injectable latency and outages, and a client
// adding client-side caching, encryption, compression, offline write-back,
// and reconnection synchronization (paper §3: "when the personalized
// knowledge base becomes disconnected from a cloud data store ... it may be
// appropriate to synchronize the contents of local storage and the cloud
// data store after connectivity ... is re-established").
package remotestore

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
	"repro/internal/xrand"
)

// DefaultMaxObjectBytes bounds PUT payloads unless overridden with
// WithMaxBytes. Real cloud stores reject oversized objects (S3: 5 GB per
// single PUT) rather than silently truncating them.
const DefaultMaxObjectBytes = 64 << 20

// Server is a simulated cloud key-value store:
//
//	PUT    /kv/{key}   body -> 204 | 413 when the body exceeds the object limit
//	GET    /kv/{key}   -> 200 body | 404
//	DELETE /kv/{key}   -> 204
//	GET    /keys       -> JSON array of keys
//
// Latency, outages, random 5xx bursts, and slow-drip response bodies are
// injectable so experiments and the chaos controller can script remote
// conditions.
type Server struct {
	store    kvstore.Store
	maxBytes int64
	sem      chan struct{} // nil means unlimited concurrency

	mu        sync.Mutex // guards the chaos knobs and their shared RNG
	latency   time.Duration
	down      bool
	failRate  float64
	rng       *xrand.Source
	dripChunk int
	dripDelay time.Duration

	requests atomic.Int64
	bytesIn  atomic.Int64
}

// ServerOption configures optional server behaviour.
type ServerOption func(*Server)

// WithMaxBytes overrides the per-object PUT size limit.
func WithMaxBytes(n int64) ServerOption {
	return func(s *Server) { s.maxBytes = n }
}

// WithSeed seeds the server's fault-injection RNG (default seed 1), so
// scripted 5xx bursts are reproducible run to run.
func WithSeed(seed int64) ServerOption {
	return func(s *Server) { s.rng = xrand.New(seed) }
}

// WithCapacity bounds how many requests the node serves concurrently;
// excess requests queue (respecting the request context) rather than fail.
// Real store nodes have finite worker pools — modelling that is what makes
// aggregate throughput grow with node count in the sharding experiments
// instead of one in-process node absorbing unlimited parallelism.
func WithCapacity(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.sem = make(chan struct{}, n)
		}
	}
}

// NewServer wraps store as a cloud store. A nil store gets a fresh
// in-memory one.
func NewServer(store kvstore.Store, opts ...ServerOption) *Server {
	if store == nil {
		store = kvstore.NewMemory()
	}
	s := &Server{store: store, maxBytes: DefaultMaxObjectBytes, rng: xrand.New(1)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// SetLatency injects a fixed service-side latency per request. The sleep
// watches the request context, so a client that disconnects (or times out)
// mid-latency releases its handler goroutine immediately instead of
// pinning it for the full injected duration.
func (s *Server) SetLatency(d time.Duration) {
	s.mu.Lock()
	s.latency = d
	s.mu.Unlock()
}

// SetDown scripts an outage: while down every request returns 503.
func (s *Server) SetDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

// SetFailRate scripts a random-5xx burst: each request independently fails
// with 503 with probability p, drawn from the server's seeded RNG.
func (s *Server) SetFailRate(p float64) {
	s.mu.Lock()
	s.failRate = p
	s.mu.Unlock()
}

// SetSlowDrip makes GET /kv/{key} responses drip out in chunk-byte writes
// separated by delay — the classic misbehaving-backend mode that holds
// client connections open. chunk <= 0 or delay <= 0 disables dripping.
func (s *Server) SetSlowDrip(chunk int, delay time.Duration) {
	s.mu.Lock()
	s.dripChunk, s.dripDelay = chunk, delay
	s.mu.Unlock()
}

// Requests returns how many requests the server has handled.
func (s *Server) Requests() int64 { return s.requests.Load() }

// BytesIn returns the total payload bytes received, the quantity cloud
// stores meter for network and storage charges.
func (s *Server) BytesIn() int64 { return s.bytesIn.Load() }

// Handler returns the server's http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	wrap := func(fn http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			s.requests.Add(1)
			if s.sem != nil {
				select {
				case s.sem <- struct{}{}:
					defer func() { <-s.sem }()
				case <-r.Context().Done():
					return
				}
			}
			s.mu.Lock()
			lat, down := s.latency, s.down
			fail := s.failRate > 0 && s.rng.Bernoulli(s.failRate)
			s.mu.Unlock()
			if lat > 0 {
				// Sleep on a timer racing the request context: a
				// disconnected or cancelled client must not pin this
				// goroutine for the whole injected latency.
				t := time.NewTimer(lat)
				select {
				case <-r.Context().Done():
					t.Stop()
					return
				case <-t.C:
				}
			}
			if down || fail {
				http.Error(w, "store unavailable", http.StatusServiceUnavailable)
				return
			}
			fn(w, r)
		}
	}
	mux.HandleFunc("PUT /kv/{key}", wrap(func(w http.ResponseWriter, r *http.Request) {
		// Read one byte past the limit: landing there means the body is
		// oversized, and the correct answer is 413, not a silently
		// truncated object stored with success.
		data, err := io.ReadAll(io.LimitReader(r.Body, s.maxBytes+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if int64(len(data)) > s.maxBytes {
			http.Error(w, fmt.Sprintf("object exceeds %d-byte limit", s.maxBytes), http.StatusRequestEntityTooLarge)
			return
		}
		s.bytesIn.Add(int64(len(data)))
		if err := s.store.Put(r.PathValue("key"), data); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mux.HandleFunc("GET /kv/{key}", wrap(func(w http.ResponseWriter, r *http.Request) {
		data, err := s.store.Get(r.PathValue("key"))
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		s.mu.Lock()
		chunk, delay := s.dripChunk, s.dripDelay
		s.mu.Unlock()
		if chunk <= 0 || delay <= 0 {
			_, _ = w.Write(data)
			return
		}
		// Slow-drip mode: emit the body chunk by chunk, flushing between
		// writes, bailing out if the client goes away.
		fl, _ := w.(http.Flusher)
		for len(data) > 0 {
			n := chunk
			if n > len(data) {
				n = len(data)
			}
			if _, err := w.Write(data[:n]); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
			data = data[n:]
			if len(data) == 0 {
				return
			}
			t := time.NewTimer(delay)
			select {
			case <-r.Context().Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
	}))
	mux.HandleFunc("DELETE /kv/{key}", wrap(func(w http.ResponseWriter, r *http.Request) {
		if err := s.store.Delete(r.PathValue("key")); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mux.HandleFunc("GET /keys", wrap(func(w http.ResponseWriter, r *http.Request) {
		keys, err := s.store.Keys()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(keys); err != nil {
			// Header already written; nothing more to do.
			_ = err
		}
	}))
	return mux
}

// ErrRemote classifies remote failures for the client.
type remoteError struct {
	status int
	msg    string
}

func (e *remoteError) Error() string {
	return fmt.Sprintf("remotestore: HTTP %d: %s", e.status, e.msg)
}
