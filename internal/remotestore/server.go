// Package remotestore implements the cloud data store substrate and the
// paper's "enhanced data store client" ([11] in the paper): a key-value
// store served over HTTP with injectable latency and outages, and a client
// adding client-side caching, encryption, compression, offline write-back,
// and reconnection synchronization (paper §3: "when the personalized
// knowledge base becomes disconnected from a cloud data store ... it may be
// appropriate to synchronize the contents of local storage and the cloud
// data store after connectivity ... is re-established").
package remotestore

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
)

// Server is a simulated cloud key-value store:
//
//	PUT    /kv/{key}   body -> 204
//	GET    /kv/{key}   -> 200 body | 404
//	DELETE /kv/{key}   -> 204
//	GET    /keys       -> JSON array of keys
//
// Latency and outages are injectable so experiments can script remote
// conditions.
type Server struct {
	store kvstore.Store

	mu      sync.RWMutex
	latency time.Duration
	down    bool

	requests atomic.Int64
	bytesIn  atomic.Int64
}

// NewServer wraps store as a cloud store. A nil store gets a fresh
// in-memory one.
func NewServer(store kvstore.Store) *Server {
	if store == nil {
		store = kvstore.NewMemory()
	}
	return &Server{store: store}
}

// SetLatency injects a fixed service-side latency per request.
func (s *Server) SetLatency(d time.Duration) {
	s.mu.Lock()
	s.latency = d
	s.mu.Unlock()
}

// SetDown scripts an outage: while down every request returns 503.
func (s *Server) SetDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

// Requests returns how many requests the server has handled.
func (s *Server) Requests() int64 { return s.requests.Load() }

// BytesIn returns the total payload bytes received, the quantity cloud
// stores meter for network and storage charges.
func (s *Server) BytesIn() int64 { return s.bytesIn.Load() }

// Handler returns the server's http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	wrap := func(fn http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			s.requests.Add(1)
			s.mu.RLock()
			lat, down := s.latency, s.down
			s.mu.RUnlock()
			if lat > 0 {
				time.Sleep(lat)
			}
			if down {
				http.Error(w, "store unavailable", http.StatusServiceUnavailable)
				return
			}
			fn(w, r)
		}
	}
	mux.HandleFunc("PUT /kv/{key}", wrap(func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.bytesIn.Add(int64(len(data)))
		if err := s.store.Put(r.PathValue("key"), data); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mux.HandleFunc("GET /kv/{key}", wrap(func(w http.ResponseWriter, r *http.Request) {
		data, err := s.store.Get(r.PathValue("key"))
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
	}))
	mux.HandleFunc("DELETE /kv/{key}", wrap(func(w http.ResponseWriter, r *http.Request) {
		if err := s.store.Delete(r.PathValue("key")); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mux.HandleFunc("GET /keys", wrap(func(w http.ResponseWriter, r *http.Request) {
		keys, err := s.store.Keys()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(keys); err != nil {
			// Header already written; nothing more to do.
			_ = err
		}
	}))
	return mux
}

// ErrRemote classifies remote failures for the client.
type remoteError struct {
	status int
	msg    string
}

func (e *remoteError) Error() string {
	return fmt.Sprintf("remotestore: HTTP %d: %s", e.status, e.msg)
}
