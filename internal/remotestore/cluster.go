package remotestore

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/future"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/ring"
	"repro/internal/service"
)

// ErrNoQuorum is returned (wrapped) when a replicated write cannot reach
// its write quorum and the failure is not a connectivity loss that the
// offline queue can absorb.
var ErrNoQuorum = errors.New("remotestore: write quorum not reached")

// ClusterConfig configures a sharded, replicated cloud-store client.
type ClusterConfig struct {
	// Nodes are the member store base URLs ("http://host:port"). The node
	// name used for placement, breakers, and metrics is the URL itself.
	Nodes []string
	// Replicas is R: how many nodes hold each key (primary + R-1
	// successors on the ring). 0 means 2; clamped to len(Nodes).
	Replicas int
	// WriteQuorum is W: how many replica acks a write waits for before
	// returning. 0 means R (fully synchronous); clamped to [1, R]. The
	// remaining R-W acks complete in the background and are observed as
	// replication lag.
	WriteQuorum int
	// VirtualNodes and Seed configure ring placement; every client of the
	// same cluster must use identical values. Zero VirtualNodes means
	// ring.DefaultVirtualNodes.
	VirtualNodes int
	Seed         uint64
	// Codec, CacheSize, CacheTTL, Local, Timeout, and MaxPending carry
	// the enhanced-client behaviours unchanged (see ClientConfig).
	Codec      codec.Codec
	CacheSize  int
	CacheTTL   time.Duration
	Local      kvstore.Store
	Timeout    time.Duration
	MaxPending int
	// Breaker configures the per-node circuit breakers. Zero Threshold
	// means 4 consecutive transient failures with a 2s cooldown; negative
	// disables breaking.
	Breaker core.BreakerConfig
	// Retry is the per-node retry policy. Zero MaxAttempts means 2
	// attempts with 5ms full-jitter backoff.
	Retry failover.RetryPolicy
	// Workers bounds the fan-out pool. 0 means 2x node count (min 4).
	Workers int
	// Metrics, if non-nil, receives the cluster's instruments (per-node
	// request/error counters, fan-out and replication-lag histograms,
	// ring-membership and pending-write gauges).
	Metrics *metrics.Set
	// Clock drives breaker cooldowns and retry backoff; nil means real.
	Clock clock.Clock
}

// nodeAck is one replica's response to a fan-out write.
type nodeAck struct {
	node string
	err  error
	at   time.Duration // since fan-out start
}

// Cluster is the sharded cloud-store client: the enhanced Client surface
// (caching, codec, local mirror, offline write-back) over N remotestore
// nodes with consistent-hash placement, R-way replicated writes, and
// read failover. It is safe for concurrent use.
type Cluster struct {
	replicas int
	quorum   int
	cdc      codec.Codec
	local    kvstore.Store
	clk      clock.Clock
	retry    failover.RetryPolicy
	breakers *core.BreakerSet // nil when breaking disabled
	pool     *future.Pool

	ring *ring.Ring

	nmu   sync.RWMutex
	nodes map[string]*transport

	memcache *cache.Sharded[[]byte]

	mu      sync.Mutex
	offline bool
	queue   *writeQueue

	stats struct {
		remoteGets, remotePuts, cacheHits, offlineWrites, syncedWrites, bytesSent int64
		readFailovers                                                             int64
	}

	inst clusterInstruments
}

// clusterInstruments groups the cluster's metrics. Every field is nil-safe
// (a nil *metrics.Set yields inert instruments).
type clusterInstruments struct {
	set       *metrics.Set
	fanoutLat *metrics.Histogram
	replLag   *metrics.Histogram
	failovers *metrics.Counter
	dropped   *metrics.Counter
	ringNodes *metrics.Gauge
	pending   *metrics.Gauge

	mu       sync.Mutex
	requests map[string]*metrics.Counter
	errors   map[string]*metrics.Counter
}

func newClusterInstruments(set *metrics.Set) clusterInstruments {
	return clusterInstruments{
		set: set,
		fanoutLat: set.Histogram("cloudstore_fanout_latency_ns",
			"Time for a replicated write to reach its write quorum."),
		replLag: set.Histogram("cloudstore_replication_lag_ns",
			"First-ack to last-ack spread of a replicated write."),
		failovers: set.Counter("cloudstore_read_failovers_total",
			"Reads served by a non-primary replica after a primary failure."),
		dropped: set.Counter("cloudstore_dropped_writes_total",
			"Offline writes evicted from the full write-back queue."),
		ringNodes: set.Gauge("cloudstore_ring_nodes",
			"Current consistent-hash ring membership."),
		pending: set.Gauge("cloudstore_pending_writes",
			"Writes queued for synchronization."),
		requests: make(map[string]*metrics.Counter),
		errors:   make(map[string]*metrics.Counter),
	}
}

func (ci *clusterInstruments) forNode(node string) (req, errs *metrics.Counter) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if c, ok := ci.requests[node]; ok {
		return c, ci.errors[node]
	}
	lbl := metrics.Label{Name: "node", Value: node}
	req = ci.set.Counter("cloudstore_node_requests_total",
		"Requests issued to each store node.", lbl)
	errs = ci.set.Counter("cloudstore_node_errors_total",
		"Requests to each store node that failed after retries (a not-found answer is not an error).", lbl)
	ci.requests[node] = req
	ci.errors[node] = errs
	return req, errs
}

// NewCluster returns a sharded client over cfg.Nodes. At least one node is
// required.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("remotestore: cluster needs at least one node")
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Second
	}
	cdc := cfg.Codec
	if cdc == nil {
		cdc = codec.Identity{}
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real()
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 2
	}
	if replicas > len(cfg.Nodes) {
		replicas = len(cfg.Nodes)
	}
	quorum := cfg.WriteQuorum
	if quorum <= 0 || quorum > replicas {
		quorum = replicas
	}
	retry := cfg.Retry
	if retry.MaxAttempts == 0 {
		retry = failover.RetryPolicy{MaxAttempts: 2, Backoff: 5 * time.Millisecond, Jitter: failover.FullJitter}
	}
	var breakers *core.BreakerSet
	brCfg := cfg.Breaker
	if brCfg.Threshold == 0 {
		brCfg = core.BreakerConfig{Threshold: 4, Cooldown: 2 * time.Second}
	}
	if brCfg.Threshold > 0 {
		breakers = core.NewBreakerSet(brCfg, clk)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2 * len(cfg.Nodes)
		if workers < 4 {
			workers = 4
		}
	}
	pool, err := future.NewPool(workers, workers*4)
	if err != nil {
		return nil, err
	}
	maxPending := cfg.MaxPending
	if maxPending == 0 {
		maxPending = DefaultMaxPending
	}
	ringOpts := []ring.Option{ring.WithSeed(cfg.Seed)}
	if cfg.VirtualNodes > 0 {
		ringOpts = append(ringOpts, ring.WithVirtualNodes(cfg.VirtualNodes))
	}
	cl := &Cluster{
		replicas: replicas,
		quorum:   quorum,
		cdc:      cdc,
		local:    cfg.Local,
		clk:      clk,
		retry:    retry,
		breakers: breakers,
		pool:     pool,
		ring:     ring.New(ringOpts...),
		nodes:    make(map[string]*transport, len(cfg.Nodes)),
		queue:    newWriteQueue(maxPending),
		inst:     newClusterInstruments(cfg.Metrics),
	}
	if cfg.CacheSize > 0 {
		cl.memcache = cache.NewSharded[[]byte](cfg.CacheSize, cache.WithTTL(cfg.CacheTTL))
	}
	httpc := &http.Client{Timeout: cfg.Timeout}
	for _, n := range cfg.Nodes {
		cl.addNode(n, httpc)
	}
	return cl, nil
}

var _ Store = (*Cluster)(nil)

func (cl *Cluster) addNode(name string, httpc *http.Client) {
	cl.nmu.Lock()
	if _, ok := cl.nodes[name]; !ok {
		cl.nodes[name] = &transport{base: name, http: httpc}
		cl.ring.Add(name)
	}
	cl.nmu.Unlock()
	cl.inst.ringNodes.Set(int64(cl.ring.Len()))
}

// AddNode joins a store node to the ring. New keys start landing on it
// immediately; call Rebalance to move existing replicas onto it.
func (cl *Cluster) AddNode(name string) {
	cl.nmu.RLock()
	var httpc *http.Client
	for _, tr := range cl.nodes {
		httpc = tr.http
		break
	}
	cl.nmu.RUnlock()
	if httpc == nil {
		httpc = &http.Client{Timeout: 10 * time.Second}
	}
	cl.addNode(name, httpc)
}

// RemoveNode leaves a node. Keys it held remain on their surviving
// replicas; call Rebalance to restore full replication on the remaining
// members.
func (cl *Cluster) RemoveNode(name string) {
	cl.nmu.Lock()
	delete(cl.nodes, name)
	cl.ring.Remove(name)
	cl.nmu.Unlock()
	cl.inst.ringNodes.Set(int64(cl.ring.Len()))
}

// Nodes returns the current members, sorted.
func (cl *Cluster) Nodes() []string { return cl.ring.Nodes() }

// Replicas returns R.
func (cl *Cluster) Replicas() int { return cl.replicas }

// WriteQuorum returns W.
func (cl *Cluster) WriteQuorum() int { return cl.quorum }

// Close releases the fan-out pool, waiting for in-flight background
// replication to finish.
func (cl *Cluster) Close() { cl.pool.Close() }

// SetOffline switches the cluster client into (or out of) offline mode.
// Like the single-node client, going offline is automatic when a write
// cannot reach quorum for connectivity reasons; coming back online does
// not sync automatically.
func (cl *Cluster) SetOffline(offline bool) {
	cl.mu.Lock()
	cl.offline = offline
	cl.mu.Unlock()
}

// Offline reports the current mode.
func (cl *Cluster) Offline() bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.offline
}

// PendingWrites returns how many writes await synchronization.
func (cl *Cluster) PendingWrites() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.queue.len()
}

// Stats returns a snapshot of activity counters. RemotePuts/RemoteGets
// count per-node operations, so one replicated write at R=2 counts two
// puts.
func (cl *Cluster) Stats() Stats {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return Stats{
		RemoteGets:    cl.stats.remoteGets,
		RemotePuts:    cl.stats.remotePuts,
		CacheHits:     cl.stats.cacheHits,
		OfflineWrites: cl.stats.offlineWrites,
		SyncedWrites:  cl.stats.syncedWrites,
		DroppedWrites: cl.queue.dropped,
		BytesSent:     cl.stats.bytesSent,
		ReadFailovers: cl.stats.readFailovers,
	}
}

// BreakerStates summarizes the per-node circuit breakers (empty when
// breaking is disabled).
func (cl *Cluster) BreakerStates() []core.BreakerState {
	if cl.breakers == nil {
		return nil
	}
	return cl.breakers.States()
}

// owners returns key's replica set, primary first.
func (cl *Cluster) owners(key string) []string {
	return cl.ring.LookupN(key, cl.replicas)
}

func (cl *Cluster) transportFor(node string) *transport {
	cl.nmu.RLock()
	defer cl.nmu.RUnlock()
	return cl.nodes[node]
}

// wrapNodeErr tags a node-level failure. Transport failures gain
// service.ErrUnavailable so the shared breaker and retry machinery — which
// classify transients by that sentinel — treat them as such, while
// isTransport keeps matching through the second %w.
func wrapNodeErr(node string, err error) error {
	if isTransport(err) {
		return fmt.Errorf("remotestore: node %s: %w: %w", node, service.ErrUnavailable, err)
	}
	return fmt.Errorf("remotestore: node %s: %w", node, err)
}

// unreachable reports failures that mean the node (or quorum) could not be
// reached, as opposed to the node answering with an application error.
func unreachable(err error) bool {
	return errors.Is(err, service.ErrUnavailable) || errors.Is(err, core.ErrBreakerOpen)
}

// nodeDo runs one node operation through the per-node breaker and retry
// policy. It never uses the fan-out pool, so callers already running on a
// pool worker (Sync drains, Rebalance copies) can call it without
// deadlocking the pool against itself.
func (cl *Cluster) nodeDo(ctx context.Context, node string, op func(ctx context.Context, tr *transport) error) error {
	tr := cl.transportFor(node)
	if tr == nil {
		return fmt.Errorf("remotestore: node %s: %w", node, core.ErrBreakerOpen)
	}
	var br *core.Breaker
	if cl.breakers != nil {
		br = cl.breakers.For(node)
		if !br.Allow() {
			return fmt.Errorf("remotestore: node %s: %w", node, core.ErrBreakerOpen)
		}
	}
	req, errc := cl.inst.forNode(node)
	req.Inc()
	_, _, err := failover.InvokeFunc(ctx, cl.clk, func(ctx context.Context) (service.Response, error) {
		if err := op(ctx, tr); err != nil {
			return service.Response{}, wrapNodeErr(node, err)
		}
		return service.Response{}, nil
	}, cl.retry)
	if br != nil {
		br.Record(err)
	}
	if err != nil && !errors.Is(err, ErrNotFound) {
		// Not-found is an expected application answer — counting it as a
		// node error would make routine probes inflate a healthy node's
		// error rate.
		errc.Inc()
	}
	return err
}

// Put stores value under key, replicated to R nodes; it returns once W
// replicas acknowledge.
func (cl *Cluster) Put(key string, value []byte) error {
	return cl.PutCtx(context.Background(), key, value)
}

// PutCtx is Put with cancellation of the in-flight fan-out.
func (cl *Cluster) PutCtx(ctx context.Context, key string, value []byte) error {
	encoded, err := cl.cdc.Encode(value)
	if err != nil {
		return fmt.Errorf("remotestore: encode: %w", err)
	}
	if cl.local != nil {
		if err := cl.local.Put(key, encoded); err != nil {
			return fmt.Errorf("remotestore: local mirror: %w", err)
		}
	}
	if cl.memcache != nil {
		cp := make([]byte, len(value))
		copy(cp, value)
		cl.memcache.Set(key, cp)
	}
	if cl.Offline() {
		cl.queueWrite(key, encoded, false)
		return nil
	}
	return cl.replicate(ctx, key, encoded, false)
}

// Delete removes key from its replicas (quorum semantics as Put).
func (cl *Cluster) Delete(key string) error {
	return cl.DeleteCtx(context.Background(), key)
}

// DeleteCtx is Delete with cancellation.
func (cl *Cluster) DeleteCtx(ctx context.Context, key string) error {
	if cl.memcache != nil {
		cl.memcache.Delete(key)
	}
	if cl.local != nil {
		if err := cl.local.Delete(key); err != nil {
			return fmt.Errorf("remotestore: local delete: %w", err)
		}
	}
	if cl.Offline() {
		cl.queueWrite(key, nil, true)
		return nil
	}
	return cl.replicate(ctx, key, nil, true)
}

// nodeWrite performs one put-or-delete on one node, folding the per-node
// stats in on success.
func (cl *Cluster) nodeWrite(ctx context.Context, node, key string, encoded []byte, del bool) error {
	err := cl.nodeDo(ctx, node, func(ctx context.Context, tr *transport) error {
		if del {
			return tr.del(ctx, key)
		}
		return tr.put(ctx, key, encoded)
	})
	if err == nil && !del {
		cl.mu.Lock()
		cl.stats.remotePuts++
		cl.stats.bytesSent += int64(len(encoded))
		cl.mu.Unlock()
	}
	return err
}

// replicate fans a write out to key's R owners in parallel on the bounded
// pool and returns once W of them acknowledge. The remaining acks drain in
// a background goroutine that records the write's replication lag. A write
// that cannot reach quorum because nodes are unreachable queues for Sync
// and flips the client offline (mirroring the single-node client's
// transport-failure behaviour); any other failure is returned.
func (cl *Cluster) replicate(ctx context.Context, key string, encoded []byte, del bool) error {
	owners := cl.owners(key)
	if len(owners) == 0 {
		return errors.New("remotestore: no nodes in ring")
	}
	need := cl.quorum
	if need > len(owners) {
		need = len(owners)
	}
	start := cl.clk.Now()
	acks := make(chan nodeAck, len(owners))
	for _, node := range owners {
		node := node
		// Submit, not SubmitCtx: the op function must run even if ctx is
		// already dead (it sends exactly one ack; the quorum accounting
		// below relies on len(owners) sends). Cancellation still cuts the
		// actual I/O short through the request context.
		future.Submit(cl.pool, func() (struct{}, error) {
			err := cl.nodeWrite(ctx, node, key, encoded, del)
			acks <- nodeAck{node: node, err: err, at: cl.clk.Since(start)}
			return struct{}{}, nil
		})
	}
	got, failed := 0, 0
	var errs []error
	var firstAck, lastAck time.Duration
	consumed := 0
	for consumed < len(owners) {
		a := <-acks
		consumed++
		if a.err == nil {
			if got == 0 {
				firstAck = a.at
			}
			if a.at > lastAck {
				lastAck = a.at
			}
			got++
			if got == need {
				break
			}
		} else {
			failed++
			errs = append(errs, a.err)
			if len(owners)-failed < need {
				break
			}
		}
	}
	if got >= need {
		cl.inst.fanoutLat.Observe(cl.clk.Since(start))
		if remaining := len(owners) - consumed; remaining > 0 {
			// Drain stragglers off the caller's critical path, observing
			// the first-ack-to-last-replica spread as replication lag.
			go func(first, last time.Duration) {
				for i := 0; i < remaining; i++ {
					a := <-acks
					if a.err == nil && a.at > last {
						last = a.at
					}
				}
				cl.inst.replLag.Observe(last - first)
			}(firstAck, lastAck)
		} else {
			cl.inst.replLag.Observe(lastAck - firstAck)
		}
		return nil
	}
	err := fmt.Errorf("%w: %d/%d acks from %v: %w", ErrNoQuorum, got, need, owners, errors.Join(errs...))
	for _, e := range errs {
		if unreachable(e) {
			cl.SetOffline(true)
			cl.queueWrite(key, encoded, del)
			return nil
		}
	}
	return err
}

// Get returns the value for key: from the cache, then the primary, then —
// on transport error, open breaker, or a stale miss — the remaining
// replicas in ring order. NotFound is only authoritative after every
// reachable replica has denied the key. Unlike the single-node client a
// failed replica read does not flip the whole client offline: other shards
// are likely still healthy.
func (cl *Cluster) Get(key string) ([]byte, error) {
	return cl.GetCtx(context.Background(), key)
}

// GetCtx is Get with cancellation.
func (cl *Cluster) GetCtx(ctx context.Context, key string) ([]byte, error) {
	if cl.memcache != nil {
		if v, err := cl.memcache.Get(key); err == nil {
			cl.mu.Lock()
			cl.stats.cacheHits++
			cl.mu.Unlock()
			out := make([]byte, len(v))
			copy(out, v)
			return out, nil
		}
	}
	if !cl.Offline() {
		owners := cl.owners(key)
		sawNotFound := false
		var lastErr error
		for i, node := range owners {
			var data []byte
			err := cl.nodeDo(ctx, node, func(ctx context.Context, tr *transport) error {
				var gerr error
				data, gerr = tr.get(ctx, key)
				return gerr
			})
			switch {
			case err == nil:
				if i > 0 {
					cl.mu.Lock()
					cl.stats.readFailovers++
					cl.mu.Unlock()
					cl.inst.failovers.Inc()
				}
				cl.mu.Lock()
				cl.stats.remoteGets++
				cl.mu.Unlock()
				value, derr := cl.cdc.Decode(data)
				if derr != nil {
					return nil, fmt.Errorf("remotestore: decode: %w", derr)
				}
				if cl.memcache != nil {
					cp := make([]byte, len(value))
					copy(cp, value)
					cl.memcache.Set(key, cp)
				}
				return value, nil
			case errors.Is(err, ErrNotFound):
				// This replica answered and does not have the key. With
				// W<R it may simply have missed the write; keep asking.
				sawNotFound = true
			default:
				lastErr = err
			}
		}
		if sawNotFound {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		if lastErr != nil && !unreachable(lastErr) {
			return nil, lastErr
		}
		// Every replica unreachable: fall through to the local mirror.
	}
	if cl.local != nil {
		encoded, err := cl.local.Get(key)
		if err == nil {
			value, derr := cl.cdc.Decode(encoded)
			if derr != nil {
				return nil, fmt.Errorf("remotestore: decode local: %w", derr)
			}
			return value, nil
		}
		if errors.Is(err, kvstore.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, err
	}
	return nil, ErrOffline
}

// Keys scatter-gathers /keys from every node in parallel and returns the
// sorted, de-duplicated union. Because every key lives on R nodes, the
// merge stays complete with up to R-1 nodes unreachable; beyond that it
// falls back to the local mirror (if any) or reports the failure.
func (cl *Cluster) Keys() ([]string, error) {
	return cl.KeysCtx(context.Background())
}

// KeysCtx is Keys with cancellation.
func (cl *Cluster) KeysCtx(ctx context.Context) ([]string, error) {
	if cl.Offline() {
		if cl.local != nil {
			return cl.local.Keys()
		}
		return nil, ErrOffline
	}
	nodes := cl.ring.Nodes()
	if len(nodes) == 0 {
		return nil, errors.New("remotestore: no nodes in ring")
	}
	futs := make([]*future.Future[[]string], len(nodes))
	for i, node := range nodes {
		node := node
		futs[i] = future.Submit(cl.pool, func() ([]string, error) {
			var keys []string
			err := cl.nodeDo(ctx, node, func(ctx context.Context, tr *transport) error {
				var kerr error
				keys, kerr = tr.keys(ctx)
				return kerr
			})
			return keys, err
		})
	}
	lists := make([][]string, 0, len(nodes))
	var errs []error
	for _, f := range futs {
		keys, err := f.Get()
		if err != nil {
			errs = append(errs, err)
			continue
		}
		lists = append(lists, keys)
	}
	if len(errs) > 0 {
		for _, e := range errs {
			if !unreachable(e) {
				return nil, e
			}
		}
		if len(errs) >= cl.replicas {
			// Too many nodes down: some keys may have lost every replica,
			// so the merge would be silently incomplete.
			if cl.local != nil {
				return cl.local.Keys()
			}
			return nil, fmt.Errorf("remotestore: keys: %d/%d nodes unreachable: %w",
				len(errs), len(nodes), errors.Join(errs...))
		}
	}
	return mergeSorted(lists), nil
}

// mergeSorted merges per-node sorted key lists into one sorted,
// de-duplicated slice with a k-way merge (k = live nodes, each list
// already sorted by the node's kvstore).
func mergeSorted(lists [][]string) []string {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]string, 0, total)
	idx := make([]int, len(lists))
	for {
		best := -1
		for i, l := range lists {
			if idx[i] >= len(l) {
				continue
			}
			if best == -1 || l[idx[i]] < lists[best][idx[best]] {
				best = i
			}
		}
		if best == -1 {
			return out
		}
		k := lists[best][idx[best]]
		idx[best]++
		if len(out) == 0 || out[len(out)-1] != k {
			out = append(out, k)
		}
	}
}

func (cl *Cluster) queueWrite(key string, encoded []byte, del bool) {
	cl.mu.Lock()
	evicted := cl.queue.push(key, encoded, del)
	cl.stats.offlineWrites++
	n := cl.queue.len()
	cl.mu.Unlock()
	cl.inst.pending.Set(int64(n))
	if evicted {
		cl.inst.dropped.Inc()
	}
}

// Sync marks the cluster online and drains the offline queue with
// per-node pipelining: each node receives its writes in seq order on its
// own pool task, nodes progress concurrently, and a write counts as synced
// once W of its owners acknowledge. Writes that miss quorum requeue and
// flip the client back offline. Returns how many writes synced.
func (cl *Cluster) Sync() (int, error) {
	return cl.SyncCtx(context.Background())
}

// SyncCtx is Sync with cancellation.
func (cl *Cluster) SyncCtx(ctx context.Context) (int, error) {
	cl.mu.Lock()
	cl.offline = false
	ordered := cl.queue.drain()
	cl.mu.Unlock()
	cl.inst.pending.Set(0)
	if len(ordered) == 0 {
		return 0, nil
	}
	// Per-node sub-queues: writes stay in seq order within each node
	// (later writes to a node must not land before earlier ones), while
	// distinct nodes drain concurrently.
	type syncItem struct {
		w    *pendingWrite
		acks *atomic.Int32
	}
	items := make([]syncItem, len(ordered))
	perNode := make(map[string][]syncItem)
	for i := range ordered {
		items[i] = syncItem{w: &ordered[i], acks: new(atomic.Int32)}
		for _, node := range cl.owners(ordered[i].key) {
			perNode[node] = append(perNode[node], items[i])
		}
	}
	futs := make([]*future.Future[struct{}], 0, len(perNode))
	for node, queue := range perNode {
		node, queue := node, queue
		futs = append(futs, future.Submit(cl.pool, func() (struct{}, error) {
			for _, it := range queue {
				if ctx.Err() != nil {
					return struct{}{}, nil
				}
				if err := cl.nodeWrite(ctx, node, it.w.key, it.w.value, it.w.delete); err == nil {
					it.acks.Add(1)
				}
			}
			return struct{}{}, nil
		}))
	}
	for _, f := range futs {
		_, _ = f.Get()
	}
	need := int32(cl.quorum)
	pushed := 0
	var requeue []pendingWrite
	for _, it := range items {
		owners := len(cl.owners(it.w.key))
		n := need
		if int32(owners) < n {
			n = int32(owners)
		}
		if it.acks.Load() >= n {
			pushed++
			cl.mu.Lock()
			cl.stats.syncedWrites++
			cl.mu.Unlock()
			continue
		}
		requeue = append(requeue, *it.w)
	}
	if len(requeue) > 0 {
		cl.mu.Lock()
		cl.offline = true
		cl.queue.requeue(requeue)
		n := cl.queue.len()
		cl.mu.Unlock()
		cl.inst.pending.Set(int64(n))
		if ctx.Err() != nil {
			return pushed, fmt.Errorf("remotestore: sync interrupted: %w", ctx.Err())
		}
		return pushed, fmt.Errorf("remotestore: sync interrupted: %d writes below quorum", len(requeue))
	}
	return pushed, nil
}

// Rebalance re-replicates every key onto its current owners, for use after
// AddNode/RemoveNode. For each key it reads the stored (post-codec) bytes
// from a current holder and copies them raw to any owner in the new
// placement — raw, because re-encoding through a randomized codec (AES-GCM)
// would make replicas diverge byte-wise for no reason. Stale copies on
// former owners are left behind (they stop being read, and the next write
// to the key refreshes only the new owners); reclaiming them is a storage
// concern, not a correctness one. Returns how many keys were copied to at
// least one new owner.
func (cl *Cluster) Rebalance(ctx context.Context) (int, error) {
	keys, err := cl.KeysCtx(ctx)
	if err != nil {
		return 0, fmt.Errorf("remotestore: rebalance: %w", err)
	}
	nodes := cl.ring.Nodes()
	moved := 0
	var mu sync.Mutex
	futs := make([]*future.Future[struct{}], 0, len(keys))
	var firstErr error
	for _, key := range keys {
		key := key
		// Each per-key task runs nodeDo directly — never nested pool
		// submits, which could deadlock the pool against itself.
		futs = append(futs, future.Submit(cl.pool, func() (struct{}, error) {
			owners := cl.owners(key)
			// Find the bytes: owners first (common case: key already in
			// place), then any other node (the key's pre-change holders).
			var raw []byte
			found := false
			tryRead := func(node string) {
				if found {
					return
				}
				err := cl.nodeDo(ctx, node, func(ctx context.Context, tr *transport) error {
					data, gerr := tr.get(ctx, key)
					if gerr == nil {
						raw = data
					}
					return gerr
				})
				if err == nil {
					found = true
				}
			}
			for _, n := range owners {
				tryRead(n)
			}
			for _, n := range nodes {
				tryRead(n)
			}
			if !found {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("remotestore: rebalance: key %q unreadable on all nodes", key)
				}
				mu.Unlock()
				return struct{}{}, nil
			}
			copied := false
			for _, n := range owners {
				// Unconditional idempotent put: cheaper than probing each
				// owner for presence first, and self-healing for replicas
				// that silently lost the key.
				err := cl.nodeDo(ctx, n, func(ctx context.Context, tr *transport) error {
					return tr.put(ctx, key, raw)
				})
				if err == nil {
					copied = true
				} else {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
			if copied {
				mu.Lock()
				moved++
				mu.Unlock()
			}
			return struct{}{}, nil
		}))
	}
	for _, f := range futs {
		_, _ = f.Get()
	}
	return moved, firstErr
}
